package repro

import (
	"os"
	"testing"

	"repro/internal/cgrammar"
	"repro/internal/core"
	"repro/internal/fmlr"
	"repro/internal/harness"
	"repro/internal/preprocessor"
)

// TestStreamSpeedRatchet is the streaming-pipeline performance ratchet: the
// stream-fused parse (preprocessor chunks feeding the engine's cursor fast
// path) must not regress more than 10% against the materialized segment-slab
// parse on the benchmark corpus. At introduction streaming measured ~1.7x
// *faster* than materialized (see BENCH_parse.json's "streaming" block), so
// this trips only if the fast path stops engaging or its bookkeeping grows
// pathological. The comparison is in-process and relative — both arms run
// interleaved on the same machine in the same state, minima compared — so it
// is immune to cross-machine baseline drift. It runs only when
// STREAM_RATCHET=1 (CI's bench-smoke job); timing assertions are too noisy
// for the default test run.
func TestStreamSpeedRatchet(t *testing.T) {
	if os.Getenv("STREAM_RATCHET") != "1" {
		t.Skip("set STREAM_RATCHET=1 to run the streaming ratchet")
	}
	c := getCorpus()
	lang := cgrammar.MustLoad()
	prep := func(noStream bool) (*core.Tool, []*preprocessor.Unit) {
		tool := core.New(core.Config{FS: c.FS, IncludePaths: harness.IncludePaths, NoStream: noStream})
		units := make([]*preprocessor.Unit, 0, len(c.CFiles))
		for _, cf := range c.CFiles {
			u, err := tool.Preprocess(cf)
			if err != nil {
				t.Fatal(err)
			}
			units = append(units, u)
		}
		return tool, units
	}
	streamTool, streamUnits := prep(false)
	matTool, matUnits := prep(true)

	// The differential suite proves the modes byte-identical; here just pin
	// that the streaming arm actually streams, so the timing comparison
	// cannot silently become streaming-vs-streaming.
	probe := fmlr.New(streamTool.Space(), lang, fmlr.OptAll).ParseUnit(streamUnits[0])
	if probe.Stats.TokensStreamed == 0 {
		t.Fatal("streaming arm streamed no tokens; ratchet is vacuous")
	}

	run := func(tool *core.Tool, units []*preprocessor.Unit, opts fmlr.Options) int64 {
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, u := range units {
					if res := fmlr.New(tool.Space(), lang, opts).ParseUnit(u); res.AST == nil {
						b.Fatal("parse failed")
					}
				}
			}
		})
		return r.NsPerOp()
	}
	matOpts := fmlr.OptAll
	matOpts.NoStream = true

	// Interleave the arms and keep each arm's fastest round: minima are far
	// more stable than means under CI scheduling noise.
	const rounds = 4
	minStream, minMat := int64(1<<62), int64(1<<62)
	for i := 0; i < rounds; i++ {
		if v := run(streamTool, streamUnits, fmlr.OptAll); v < minStream {
			minStream = v
		}
		if v := run(matTool, matUnits, matOpts); v < minMat {
			minMat = v
		}
	}
	ratio := float64(minStream) / float64(minMat)
	t.Logf("parse ns/op: streaming %d, materialized %d, ratio %.3f (%.2fx)",
		minStream, minMat, ratio, 1/ratio)
	if ratio > 1.10 {
		t.Errorf("streaming parse regressed: %d ns/op vs materialized %d ns/op (ratio %.3f exceeds the 1.10 ratchet)",
			minStream, minMat, ratio)
	}
}
