// Package repro's root benchmarks regenerate every table and figure of the
// paper's evaluation (§6) over the synthetic Linux-like corpus. Run with:
//
//	go test -bench . -benchmem
//
// Each benchmark prints the corresponding table/figure once (on the first
// iteration) and then times the underlying experiment, so `-bench`
// simultaneously reproduces the artifact and measures it. See EXPERIMENTS.md
// for the paper-vs-measured discussion.
package repro

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/cgrammar"
	"repro/internal/cond"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/fmlr"
	"repro/internal/harness"
	"repro/internal/hcache"
	"repro/internal/preprocessor"
	"repro/internal/sat"
	"repro/internal/stats"
)

// benchCorpus is shared across benchmarks (generation is deterministic).
var (
	corpusOnce  sync.Once
	benchCorpus *corpus.Corpus
)

func getCorpus() *corpus.Corpus {
	corpusOnce.Do(func() {
		benchCorpus = corpus.Generate(corpus.Params{Seed: 1, CFiles: 24, GenHeaders: 16})
	})
	return benchCorpus
}

var printOnce sync.Map

// printFirst emits the rendered artifact once per benchmark name.
func printFirst(b *testing.B, name, artifact string) {
	if _, loaded := printOnce.LoadOrStore(name, true); !loaded {
		fmt.Printf("\n===== %s =====\n%s\n", name, artifact)
	}
	_ = b
}

// BenchmarkTable2a regenerates the developer's view of preprocessor usage
// (paper Table 2a) and times the raw-text analysis.
func BenchmarkTable2a(b *testing.B) {
	b.ReportAllocs()
	c := getCorpus()
	printFirst(b, "Table 2a", harness.Table2a(c))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.DeveloperView()
	}
}

// BenchmarkTable2b regenerates the most-included-headers ranking (paper
// Table 2b).
func BenchmarkTable2b(b *testing.B) {
	b.ReportAllocs()
	c := getCorpus()
	printFirst(b, "Table 2b", harness.Table2b(c))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.InclusionCounts()
	}
}

// BenchmarkTable3 regenerates the tool's view of preprocessor usage (paper
// Table 3) and times one full instrumented corpus preprocessing+parsing
// sweep per iteration.
func BenchmarkTable3(b *testing.B) {
	b.ReportAllocs()
	c := getCorpus()
	results := harness.Run(c, harness.RunConfig{Parser: fmlr.OptAll})
	printFirst(b, "Table 3", harness.Table3(results))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		harness.Run(c, harness.RunConfig{Parser: fmlr.OptAll})
	}
}

// BenchmarkFigure8 regenerates Figure 8a's subparser-count table; the
// sub-benchmarks time each optimization level (the ablation the paper's
// design calls for).
func BenchmarkFigure8(b *testing.B) {
	b.ReportAllocs()
	c := getCorpus()
	const kill = 1000
	rows := harness.Figure8(c, kill)
	printFirst(b, "Figure 8a", harness.RenderFigure8a(rows, kill))
	for _, lv := range harness.Levels {
		b.Run(lv.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				harness.Run(c, harness.RunConfig{Parser: lv.Opts, KillSwitch: kill})
			}
		})
	}
}

// BenchmarkFigure8b regenerates the cumulative subparser-count
// distributions (paper Figure 8b).
func BenchmarkFigure8b(b *testing.B) {
	b.ReportAllocs()
	c := getCorpus()
	printFirst(b, "Figure 8b", harness.Figure8b(c, 1000, 10))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		harness.Run(c, harness.RunConfig{Parser: fmlr.OptAll, KillSwitch: 1000})
	}
}

// BenchmarkFigure9 regenerates the SuperC vs TypeChef latency comparison
// (paper Figure 9); sub-benchmarks time the two tools separately. Both arms
// run the same 12-unit corpus slice: the SAT-backed baseline's tail units
// take minutes each at the full corpus size (the Figure 9 knee itself), so
// the artifact loop uses the smaller slice and the knee still shows.
func BenchmarkFigure9(b *testing.B) {
	b.ReportAllocs()
	c := fig9Corpus()
	printFirst(b, "Figure 9", harness.RenderFigure9(harness.Figure9(c), 10))
	b.Run("SuperC", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			harness.Run(c, harness.RunConfig{Mode: cond.ModeBDD, Parser: fmlr.OptAll})
		}
	})
	b.Run("TypeChef", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			harness.Run(c, harness.RunConfig{Mode: cond.ModeSAT, Parser: fmlr.OptFollowOnly})
		}
	})
}

var (
	fig9Once sync.Once
	fig9C    *corpus.Corpus
)

func fig9Corpus() *corpus.Corpus {
	fig9Once.Do(func() {
		fig9C = corpus.Generate(corpus.Params{Seed: 1, CFiles: 12, GenHeaders: 16})
	})
	return fig9C
}

// BenchmarkFigure10 regenerates the latency-breakdown-by-stage table (paper
// Figure 10) and times the instrumented SuperC sweep.
func BenchmarkFigure10(b *testing.B) {
	b.ReportAllocs()
	c := getCorpus()
	printFirst(b, "Figure 10", harness.Figure10(c))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		harness.Run(c, harness.RunConfig{Mode: cond.ModeBDD, Parser: fmlr.OptAll})
	}
}

// BenchmarkGccBaseline regenerates the single-configuration baseline
// comparison (paper §6.3's gcc measurement).
func BenchmarkGccBaseline(b *testing.B) {
	b.ReportAllocs()
	c := getCorpus()
	printFirst(b, "gcc baseline", harness.RenderGcc(c))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		harness.GccBaseline(c, map[string]string{"CONFIG_64BIT": "1"})
	}
}

// BenchmarkCondBDDvsSAT isolates the presence-condition-representation
// ablation behind Figure 9's gap: identical feasibility workloads on BDDs
// versus naive-CNF + DPLL.
func BenchmarkCondBDDvsSAT(b *testing.B) {
	b.ReportAllocs()
	workload := func(s *cond.Space) {
		// The common shapes: conditional-sequence chains and
		// hoisting cross-products.
		acc := s.True()
		for i := 0; i < 16; i++ {
			v := s.Var(fmt.Sprintf("CONFIG_%02d", i))
			acc = s.AndNot(acc, v)
			s.IsFalse(acc)
			s.IsFalse(s.And(acc, v))
		}
	}
	b.Run("BDD", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			workload(cond.NewSpace(cond.ModeBDD))
		}
	})
	b.Run("SAT", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			workload(cond.NewSpace(cond.ModeSAT))
		}
	})
}

// BenchmarkFollowSetVsNaive isolates the token-follow-set ablation on the
// paper's Figure 6 construct.
func BenchmarkFollowSetVsNaive(b *testing.B) {
	b.ReportAllocs()
	src := figure6(12)
	run := func(b *testing.B, opts fmlr.Options) {
		opts.KillSwitch = 100000
		tool := core.New(core.Config{FS: preprocessor.MapFS{}, Parser: &opts})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := tool.ParseString("fig6.c", src)
			if err != nil || (res.AST == nil && !res.Parse.Killed) {
				b.Fatalf("parse failed: %v", err)
			}
		}
	}
	b.Run("FollowSet", func(b *testing.B) { run(b, fmlr.OptAll) })
	b.Run("Naive", func(b *testing.B) { run(b, fmlr.OptMAPR) })
}

// BenchmarkHoistTrim isolates infeasible-branch trimming during hoisting:
// nested conditionals over the same variable collapse when trimming is on
// (it always is; the benchmark documents its cost profile).
func BenchmarkHoistTrim(b *testing.B) {
	b.ReportAllocs()
	var src string
	src += "#define WRAP(x) (x)\n"
	src += "int v = WRAP(\n"
	for i := 0; i < 6; i++ {
		src += "#ifdef A\n1 +\n#else\n2 +\n#endif\n"
	}
	src += "0);\n"
	tool := core.New(core.Config{FS: preprocessor.MapFS{}})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := tool.ParseString("hoist.c", src)
		if err != nil || res.AST == nil {
			b.Fatalf("parse failed: %v", err)
		}
	}
}

// BenchmarkCompleteGranularity contrasts parsing the Figure 6 construct
// (which depends on initializer-list members being complete syntactic
// units) against a statement-sequence workload that only needs
// statement-level merging — the §5.1 granularity trade-off.
func BenchmarkCompleteGranularity(b *testing.B) {
	b.ReportAllocs()
	stmtSrc := func(n int) string {
		s := "void f(void) {\nint acc;\n"
		for i := 0; i < n; i++ {
			s += fmt.Sprintf("#ifdef CONFIG_S%02d\nacc += %d;\n#endif\n", i, i)
		}
		s += "}\n"
		return s
	}
	tool := core.New(core.Config{FS: preprocessor.MapFS{}})
	b.Run("InitializerMembers", func(b *testing.B) {
		src := figure6(12)
		for i := 0; i < b.N; i++ {
			if res, err := tool.ParseString("a.c", src); err != nil || res.AST == nil {
				b.Fatal("parse failed")
			}
		}
	})
	b.Run("Statements", func(b *testing.B) {
		src := stmtSrc(12)
		for i := 0; i < b.N; i++ {
			if res, err := tool.ParseString("b.c", src); err != nil || res.AST == nil {
				b.Fatal("parse failed")
			}
		}
	})
}

// BenchmarkNaiveCNFBlowup demonstrates the TypeChef-tail mechanism in
// isolation: naive CNF conversion cost explodes with condition complexity
// while the BDD representation stays flat (§6.3's knee).
func BenchmarkNaiveCNFBlowup(b *testing.B) {
	b.ReportAllocs()
	build := func(width int) *sat.Expr {
		var ors []*sat.Expr
		for i := 0; i < width; i++ {
			ors = append(ors, sat.And(
				sat.Var(fmt.Sprintf("A%d", i)), sat.Var(fmt.Sprintf("B%d", i))))
		}
		return sat.Or(ors...)
	}
	for _, width := range []int{4, 8, 12} {
		b.Run(fmt.Sprintf("width%d", width), func(b *testing.B) {
			e := build(width)
			for i := 0; i < b.N; i++ {
				if _, _, ok := sat.NaiveCNF(e, 0); !ok {
					b.Fatal("conversion failed")
				}
			}
		})
	}
}

// BenchmarkPreprocessOnly and BenchmarkParseOnly time the two stages
// separately over the corpus, the decomposition behind Figure 10.
func BenchmarkPreprocessOnly(b *testing.B) {
	b.ReportAllocs()
	c := getCorpus()
	tool := core.New(core.Config{FS: c.FS, IncludePaths: harness.IncludePaths})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, cf := range c.CFiles {
			if _, err := tool.Preprocess(cf); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkParseOnly(b *testing.B) {
	b.ReportAllocs()
	c := getCorpus()
	tool := core.New(core.Config{FS: c.FS, IncludePaths: harness.IncludePaths})
	units := make([]*preprocessor.Unit, 0, len(c.CFiles))
	for _, cf := range c.CFiles {
		u, err := tool.Preprocess(cf)
		if err != nil {
			b.Fatal(err)
		}
		units = append(units, u)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, u := range units {
			engine := fmlr.New(tool.Space(), cgrammar.MustLoad(), fmlr.OptAll)
			if res := engine.ParseUnit(u); res.AST == nil {
				b.Fatal("parse failed")
			}
		}
	}
}

// BenchmarkParallelHarness sweeps the worker-pool width over the full
// instrumented corpus run and reports the harness metrics as benchmark
// metrics. On a multicore machine the -j 4 row should show ≥2x the
// units/sec of -j 1 with identical per-unit results (the parallel
// harness's tentpole invariant, asserted by internal/harness's race
// tests); on a single-core machine the rows coincide.
func BenchmarkParallelHarness(b *testing.B) {
	b.ReportAllocs()
	c := getCorpus()
	widths := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		widths = append(widths, n)
	}
	for _, j := range widths {
		b.Run(fmt.Sprintf("j%d", j), func(b *testing.B) {
			var m harness.Metrics
			units := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var results []harness.UnitResult
				results, m = harness.RunMetered(context.Background(), c,
					harness.RunConfig{Parser: fmlr.OptAll, Jobs: j})
				units += len(results)
			}
			b.StopTimer()
			if m.FailedUnits > 0 {
				b.Fatalf("%d units failed", m.FailedUnits)
			}
			b.ReportMetric(float64(units)/b.Elapsed().Seconds(), "units/sec")
			b.ReportMetric(float64(m.MaxInFlight), "max-in-flight")
			b.ReportMetric(float64(m.Forks)/float64(m.Units), "forks/unit")
			hits, _ := cgrammar.TableCacheStats()
			b.ReportMetric(float64(hits), "table-cache-hits")
		})
	}
}

// BenchmarkCorpusLatencyCDF reports the per-unit latency distribution as
// benchmark metrics (p50/p99 in ms), complementing Figure 9's CDF.
func BenchmarkCorpusLatencyCDF(b *testing.B) {
	b.ReportAllocs()
	c := getCorpus()
	b.ResetTimer()
	var sample *stats.Sample
	for i := 0; i < b.N; i++ {
		results := harness.Run(c, harness.RunConfig{Parser: fmlr.OptAll})
		sample = &stats.Sample{}
		for j := range results {
			sample.AddDuration(results[j].TotalTime)
		}
	}
	if sample != nil {
		b.ReportMetric(1e3*sample.Percentile(0.5), "p50-ms/unit")
		b.ReportMetric(1e3*sample.Percentile(0.99), "p99-ms/unit")
	}
}

func figure6(n int) string {
	s := "static int (*check_part[])(struct parsed_partitions *) = {\n"
	for i := 0; i < n; i++ {
		s += fmt.Sprintf("#ifdef CONFIG_PART_%02d\n\tcheck_%02d,\n#endif\n", i, i)
	}
	s += "\t((void *)0)\n};\n"
	return s
}

// headerCacheCorpus builds the header-cache workload: every unit includes
// the same set of define-heavy guarded headers (100% sharing, the shape of
// Table 2b's popular kernel headers) with a small unit body, so header
// preprocessing dominates and cross-unit reuse is what is measured.
func headerCacheCorpus() (preprocessor.MapFS, []string) {
	fs := preprocessor.MapFS{}
	const headers, units = 6, 16
	for h := 0; h < headers; h++ {
		src := fmt.Sprintf("#ifndef GEN%d_H\n#define GEN%d_H\n", h, h)
		for d := 0; d < 150; d++ {
			src += fmt.Sprintf("#define H%d_MACRO_%d (%d + %d)\n", h, d, h, d)
		}
		for d := 0; d < 10; d++ {
			src += fmt.Sprintf("extern int h%d_sym_%d;\n", h, d)
		}
		src += "#endif\n"
		fs[fmt.Sprintf("include/gen%d.h", h)] = src
	}
	var cfiles []string
	for u := 0; u < units; u++ {
		src := ""
		for h := 0; h < headers; h++ {
			src += fmt.Sprintf("#include <gen%d.h>\n", h)
		}
		src += fmt.Sprintf("int unit%d = H0_MACRO_%d;\n", u, u)
		name := fmt.Sprintf("unit%d.c", u)
		fs[name] = src
		cfiles = append(cfiles, name)
	}
	return fs, cfiles
}

// BenchmarkHeaderCache measures the shared cross-unit header cache on a
// corpus where every unit includes the same headers: cached must beat
// uncached by well over the 1.5x acceptance bar. A fresh cache per
// iteration keeps the measurement honest (the first unit records, the
// remaining units replay).
func BenchmarkHeaderCache(b *testing.B) {
	b.ReportAllocs()
	fs, cfiles := headerCacheCorpus()
	sweep := func(b *testing.B, cache *hcache.Cache) {
		for _, cf := range cfiles {
			tool := core.New(core.Config{FS: fs, IncludePaths: []string{"include"}, HeaderCache: cache})
			if _, err := tool.Preprocess(cf); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("uncached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sweep(b, nil)
		}
	})
	b.Run("cached", func(b *testing.B) {
		var last *hcache.Cache
		for i := 0; i < b.N; i++ {
			last = hcache.New(hcache.Options{})
			sweep(b, last)
		}
		s := last.Stats()
		b.ReportMetric(float64(s.HeaderHits), "hits")
		b.ReportMetric(float64(s.BytesSaved), "bytes-saved")
	})
}
