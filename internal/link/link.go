// Package link implements the whole-corpus variability-aware linker: it
// joins per-unit conditional link facts — presence-conditioned definitions,
// tentative definitions, extern declarations, and references of external
// symbols — and reports the cross-unit bug classes no single-configuration
// toolchain can see:
//
//   - undef-ref: some configuration references a symbol no unit defines;
//   - multidef: some configuration links two non-tentative definitions;
//   - type-mismatch: a declaration or definition's type conflicts with
//     another unit's under an overlapping configuration.
//
// Facts carry their conditions as space-independent cond.Formula values
// (each unit builds its BDD variables in its own first-use order), and the
// linker composes them in one fresh ModeBDD space, canonicalizing across
// unit spaces through hcache.Canon ids so equal boolean functions import
// once regardless of which unit exported them. Every finding is SAT-gated,
// carries a concrete witness configuration re-verified on the independent
// SAT evaluation route, and the finding list is a total deterministic order
// — a pure function of the fact set, byte-stable at any worker count.
package link

import (
	"fmt"
	"sort"

	"repro/internal/cond"
	"repro/internal/hcache"
)

// FactKind classifies one conditional link fact.
type FactKind uint8

// Fact kinds. The order is part of the canonical fact order (codec and
// linker both sort by it), so new kinds append.
const (
	KindDef       FactKind = iota // non-tentative external definition
	KindTentative                 // tentative definition (uninitialized, non-extern object)
	KindDecl                      // extern declaration or function prototype
	KindRef                       // reference resolving outside the unit's internal names
)

var kindNames = [...]string{"def", "tentative", "decl", "ref"}

// String returns the kind's wire-stable name.
func (k FactKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Fact is one sighting of an external symbol in one unit: the kind, the
// source anchor, the canonical type signature (definitions, tentatives, and
// declarations only; "" for references), and the presence condition under
// which the sighting exists, exported from the unit's space.
type Fact struct {
	Kind FactKind
	File string
	Line int
	Col  int
	Sig  string
	Cond *cond.Formula
}

// Symbol groups one external symbol's facts within a unit, sorted in
// canonical fact order.
type Symbol struct {
	Name  string
	Facts []Fact
}

// Facts is one compilation unit's conditional link facts: symbols sorted by
// name, facts per symbol in canonical order. Extraction
// (analysis.ExtractLinkFacts) guarantees the ordering; Normalize restores
// it for hand-built or decoded fact sets.
type Facts struct {
	Unit    string
	Symbols []Symbol
}

// Normalize sorts symbols by name and each symbol's facts canonically, so
// Encode output and Link input order are pure functions of the fact set.
func (f *Facts) Normalize() {
	sort.Slice(f.Symbols, func(i, j int) bool { return f.Symbols[i].Name < f.Symbols[j].Name })
	for i := range f.Symbols {
		facts := f.Symbols[i].Facts
		sort.Slice(facts, func(a, b int) bool { return factLess(facts[a], facts[b]) })
	}
}

func factLess(a, b Fact) bool {
	switch {
	case a.Kind != b.Kind:
		return a.Kind < b.Kind
	case a.File != b.File:
		return a.File < b.File
	case a.Line != b.Line:
		return a.Line < b.Line
	case a.Col != b.Col:
		return a.Col < b.Col
	default:
		return a.Sig < b.Sig
	}
}

// Count returns the total number of facts.
func (f *Facts) Count() int {
	n := 0
	for _, s := range f.Symbols {
		n += len(s.Facts)
	}
	return n
}

// Finding is one linker diagnostic: the family, the symbol, the anchor site
// (always a fact site of one input unit), the other site involved for the
// pairwise families, and the SAT-gated condition with its witness.
type Finding struct {
	Family string // "undef-ref", "multidef", or "type-mismatch"
	Symbol string

	Unit string // unit owning the anchor site
	File string
	Line int
	Col  int

	OtherUnit string // second site (multidef, type-mismatch); "" otherwise
	OtherFile string
	OtherLine int
	OtherCol  int

	SigA string // anchor site's signature (type-mismatch); "" otherwise
	SigB string // other site's signature (type-mismatch); "" otherwise

	Cond            cond.Cond // in the linker's space; not serialized
	CondStr         string
	Witness         map[string]bool
	WitnessVerified bool
}

// Message renders the finding's human-readable message. Both the in-process
// CLI path and the daemon wire path build diagnostics through it, so the
// two render byte-identically.
func (f *Finding) Message() string {
	switch f.Family {
	case "undef-ref":
		return fmt.Sprintf("symbol %q is referenced under configurations where no unit defines it", f.Symbol)
	case "multidef":
		return fmt.Sprintf("symbol %q is also defined at %s under an overlapping configuration",
			f.Symbol, f.otherPos())
	case "type-mismatch":
		return fmt.Sprintf("symbol %q has type %q here but %q at %s under an overlapping configuration",
			f.Symbol, f.SigA, f.SigB, f.otherPos())
	}
	return fmt.Sprintf("symbol %q: %s", f.Symbol, f.Family)
}

func (f *Finding) otherPos() string {
	return fmt.Sprintf("%s:%d:%d", f.OtherFile, f.OtherLine, f.OtherCol)
}

// Pass returns the analysis pass name the finding surfaces under.
func (f *Finding) Pass() string { return "link/" + f.Family }

// Stats counts what one link run did.
type Stats struct {
	Units           int // fact sets joined
	Symbols         int // distinct external symbols
	Facts           int // total facts
	SATChecks       int // satisfiability gates evaluated
	Findings        int
	ByFamily        map[string]int
	WitnessChecks   int // witnesses extracted and independently re-verified
	WitnessFailures int // witnesses the independent evaluation rejected
}

// Result is one corpus-wide link run: findings in total deterministic
// order, plus the run's counters. Space is the linker's own ModeBDD space
// that every Finding.Cond lives in.
type Result struct {
	Findings []Finding
	Stats    Stats
	Space    *cond.Space
}

// site is one fact joined corpus-wide: the owning unit plus the fact with
// its condition imported into the linker's space.
type site struct {
	unit string
	fact Fact
	cond cond.Cond
}

func siteLess(a, b site) bool {
	switch {
	case a.unit != b.unit:
		return a.unit < b.unit
	case a.fact.File != b.fact.File:
		return a.fact.File < b.fact.File
	case a.fact.Line != b.fact.Line:
		return a.fact.Line < b.fact.Line
	case a.fact.Col != b.fact.Col:
		return a.fact.Col < b.fact.Col
	case a.fact.Kind != b.fact.Kind:
		return a.fact.Kind < b.fact.Kind
	default:
		return a.fact.Sig < b.fact.Sig
	}
}

// Link joins the units' facts corpus-wide and reports every SAT-gated
// finding. canon canonicalizes conditions across unit spaces; nil gets a
// fresh canonicalizer. The input slices are not modified; units sharing a
// Unit name contribute independently (their facts simply join).
func Link(units []*Facts, canon *hcache.Canon) *Result {
	if canon == nil {
		canon = hcache.NewCanon()
	}
	space := cond.NewSpace(cond.ModeBDD)
	im := space.NewImporter()
	// Conditions import once per boolean function: the Canon id is the
	// cross-space identity, so equal conditions exported from different unit
	// spaces (different formula pointers, different variable orders) land on
	// the same imported cond — and the linker's variable order stays a pure
	// function of the sorted fact stream.
	byID := make(map[string]cond.Cond)
	importCond := func(f *cond.Formula) cond.Cond {
		if f == nil {
			return space.True()
		}
		id := canon.ID(f)
		if c, ok := byID[id]; ok {
			return c
		}
		c := im.Import(f)
		byID[id] = c
		return c
	}

	res := &Result{Space: space, Stats: Stats{ByFamily: make(map[string]int)}}

	// Gather sites per symbol in deterministic order: units sorted by name,
	// symbols and facts already canonically ordered within each unit.
	ordered := make([]*Facts, 0, len(units))
	for _, u := range units {
		if u != nil {
			ordered = append(ordered, u)
		}
	}
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Unit < ordered[j].Unit })
	bySym := make(map[string][]site)
	var names []string
	for _, u := range ordered {
		res.Stats.Units++
		for _, s := range u.Symbols {
			if _, seen := bySym[s.Name]; !seen {
				names = append(names, s.Name)
			}
			for _, f := range s.Facts {
				bySym[s.Name] = append(bySym[s.Name], site{unit: u.Unit, fact: f, cond: importCond(f.Cond)})
				res.Stats.Facts++
			}
		}
	}
	sort.Strings(names)
	res.Stats.Symbols = len(names)

	sat := func(c cond.Cond) bool {
		res.Stats.SATChecks++
		return !space.IsFalse(c)
	}

	for _, name := range names {
		sites := append([]site(nil), bySym[name]...)
		sort.SliceStable(sites, siteSorter(sites))

		var defs, providers, typed []site // defs: non-tentative; providers: defs+tentatives
		var refs []site
		provided := space.False()
		for _, s := range sites {
			switch s.fact.Kind {
			case KindDef:
				defs = append(defs, s)
				providers = append(providers, s)
				provided = space.Or(provided, s.cond)
			case KindTentative:
				providers = append(providers, s)
				provided = space.Or(provided, s.cond)
			case KindRef:
				refs = append(refs, s)
			}
			if s.fact.Sig != "" && s.fact.Kind != KindRef {
				typed = append(typed, s)
			}
		}
		_ = providers

		// undef-ref: each reference site whose condition escapes the union
		// of all defining conditions is reachable in a configuration that
		// fails to link.
		for _, r := range refs {
			miss := space.AndNot(r.cond, provided)
			if !sat(miss) {
				continue
			}
			res.report(Finding{
				Family: "undef-ref", Symbol: name,
				Unit: r.unit, File: r.fact.File, Line: r.fact.Line, Col: r.fact.Col,
				Cond: miss,
			})
		}

		// multidef: two non-tentative definitions whose conditions overlap
		// coexist in some configuration's link. The finding anchors at the
		// later site (sorted order) and names the earlier one.
		for i := 0; i < len(defs); i++ {
			for j := i + 1; j < len(defs); j++ {
				both := space.And(defs[i].cond, defs[j].cond)
				if !sat(both) {
					continue
				}
				res.report(Finding{
					Family: "multidef", Symbol: name,
					Unit: defs[j].unit, File: defs[j].fact.File, Line: defs[j].fact.Line, Col: defs[j].fact.Col,
					OtherUnit: defs[i].unit, OtherFile: defs[i].fact.File, OtherLine: defs[i].fact.Line, OtherCol: defs[i].fact.Col,
					Cond: both,
				})
			}
		}

		// type-mismatch: signatures partition the typed sites; two groups
		// with different signatures and overlapping conditions conflict. One
		// finding per signature pair, anchored at each group's first site.
		groups := sigGroups(space, typed)
		for i := 0; i < len(groups); i++ {
			for j := i + 1; j < len(groups); j++ {
				both := space.And(groups[i].cond, groups[j].cond)
				if !sat(both) {
					continue
				}
				a, b := groups[j].first, groups[i].first
				res.report(Finding{
					Family: "type-mismatch", Symbol: name,
					Unit: a.unit, File: a.fact.File, Line: a.fact.Line, Col: a.fact.Col,
					OtherUnit: b.unit, OtherFile: b.fact.File, OtherLine: b.fact.Line, OtherCol: b.fact.Col,
					SigA: a.fact.Sig, SigB: b.fact.Sig,
					Cond: both,
				})
			}
		}
	}

	sortFindings(res.Findings)
	return res
}

func siteSorter(sites []site) func(i, j int) bool {
	return func(i, j int) bool { return siteLess(sites[i], sites[j]) }
}

// sigGroup is the sites sharing one signature, with their disjoined
// condition and the first site in canonical order as the group's anchor.
type sigGroup struct {
	sig   string
	cond  cond.Cond
	first site
}

func sigGroups(space *cond.Space, typed []site) []sigGroup {
	idx := make(map[string]int)
	var out []sigGroup
	for _, s := range typed {
		i, ok := idx[s.fact.Sig]
		if !ok {
			idx[s.fact.Sig] = len(out)
			out = append(out, sigGroup{sig: s.fact.Sig, cond: s.cond, first: s})
			continue
		}
		out[i].cond = space.Or(out[i].cond, s.cond)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].sig < out[j].sig })
	return out
}

// report attaches the condition rendering and the doubly-checked witness,
// then records the finding. Conditions are rendered in the linker's space;
// the witness is re-verified by exporting the condition to the
// space-independent formula and evaluating its SAT expression — the same
// independent route the per-unit analysis driver uses.
func (r *Result) report(f Finding) {
	f.CondStr = r.Space.String(f.Cond)
	w, ok := r.Space.SatOne(f.Cond)
	if !ok {
		return // SAT gate raced nothing: IsFalse passed, so this cannot happen
	}
	f.Witness = w
	f.WitnessVerified = r.Space.Export(f.Cond).Expr().Eval(w)
	r.Stats.WitnessChecks++
	if !f.WitnessVerified {
		r.Stats.WitnessFailures++
	}
	r.Findings = append(r.Findings, f)
	r.Stats.Findings++
	r.Stats.ByFamily[f.Family]++
}

// sortFindings orders findings totally: symbol, family, anchor site, other
// site, signatures, condition — every field that appears in the output, so
// equal fact sets render byte-identically.
func sortFindings(fs []Finding) {
	sort.SliceStable(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		switch {
		case a.Symbol != b.Symbol:
			return a.Symbol < b.Symbol
		case a.Family != b.Family:
			return a.Family < b.Family
		case a.File != b.File:
			return a.File < b.File
		case a.Line != b.Line:
			return a.Line < b.Line
		case a.Col != b.Col:
			return a.Col < b.Col
		case a.OtherFile != b.OtherFile:
			return a.OtherFile < b.OtherFile
		case a.OtherLine != b.OtherLine:
			return a.OtherLine < b.OtherLine
		case a.OtherCol != b.OtherCol:
			return a.OtherCol < b.OtherCol
		case a.SigA != b.SigA:
			return a.SigA < b.SigA
		case a.SigB != b.SigB:
			return a.SigB < b.SigB
		default:
			return a.CondStr < b.CondStr
		}
	})
}
