package link

import (
	"bytes"
	"encoding/gob"
	"testing"

	"repro/internal/cond"
	"repro/internal/hcache"
)

func sampleFacts() *Facts {
	shared := fvar("CONFIG_A")
	f := &Facts{Unit: "u.c", Symbols: []Symbol{
		{Name: "alpha", Facts: []Fact{
			{Kind: KindDef, File: "u.c", Line: 1, Col: 5, Sig: "int @ ( )", Cond: shared},
			{Kind: KindRef, File: "u.c", Line: 7, Col: 3, Cond: fand(shared, fvar("CONFIG_B"))},
		}},
		{Name: "beta", Facts: []Fact{
			{Kind: KindTentative, File: "u.c", Line: 2, Col: 1, Sig: "long @", Cond: fnot(shared)},
			{Kind: KindDecl, File: "u.c", Line: 3, Col: 1, Sig: "long @", Cond: nil},
		}},
	}}
	f.Normalize()
	return f
}

func TestCodecRoundTrip(t *testing.T) {
	f := sampleFacts()
	data, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeFacts(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Unit != f.Unit || len(got.Symbols) != len(f.Symbols) {
		t.Fatalf("shape mismatch: %+v", got)
	}
	for i, s := range f.Symbols {
		gs := got.Symbols[i]
		if gs.Name != s.Name || len(gs.Facts) != len(s.Facts) {
			t.Fatalf("symbol %d mismatch: %+v vs %+v", i, gs, s)
		}
		for j, fa := range s.Facts {
			ga := gs.Facts[j]
			if ga.Kind != fa.Kind || ga.File != fa.File || ga.Line != fa.Line || ga.Col != fa.Col || ga.Sig != fa.Sig {
				t.Errorf("fact %s[%d] mismatch: %+v vs %+v", s.Name, j, ga, fa)
			}
			switch {
			case (fa.Cond == nil) != (ga.Cond == nil):
				t.Errorf("fact %s[%d] cond nilness differs", s.Name, j)
			case fa.Cond != nil && ga.Cond.String() != fa.Cond.String():
				t.Errorf("fact %s[%d] cond %s != %s", s.Name, j, ga.Cond, fa.Cond)
			}
		}
	}
	// Encoding is deterministic: same facts, same bytes.
	data2, err := got.Encode()
	if err != nil {
		t.Fatal(err)
	}
	data3, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data3) {
		t.Error("re-encoding the same value changed bytes")
	}
	if !bytes.Equal(data, data2) {
		t.Error("decode/encode round trip changed bytes")
	}
}

func TestCodecSharingPreserved(t *testing.T) {
	f := sampleFacts()
	got, err := roundTrip(f)
	if err != nil {
		t.Fatal(err)
	}
	// alpha's two facts share the CONFIG_A subformula; decoding must restore
	// pointer sharing, not expand the DAG into trees.
	a := got.Symbols[0].Facts[0].Cond
	b := got.Symbols[0].Facts[1].Cond
	if b.Op != cond.FAnd || b.Args[0] != a {
		t.Fatalf("shared subformula not restored by pointer: %v vs %v", a, b)
	}
}

func roundTrip(f *Facts) (*Facts, error) {
	data, err := f.Encode()
	if err != nil {
		return nil, err
	}
	return DecodeFacts(data)
}

// poisoned gob payloads must error, never panic.
func TestCodecPoisonedPayloads(t *testing.T) {
	encode := func(w *wireFacts) []byte {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(w); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	cases := map[string][]byte{
		"not gob":   []byte("definitely not a gob stream"),
		"truncated": nil, // filled below
		"forward formula arg": encode(&wireFacts{
			Nodes: []wireFNode{{Op: uint8(cond.FNot), Args: []int32{1}}, {Op: uint8(cond.FTrue)}},
		}),
		"self formula arg": encode(&wireFacts{
			Nodes: []wireFNode{{Op: uint8(cond.FAnd), Args: []int32{0, 0}}},
		}),
		"negative formula arg": encode(&wireFacts{
			Nodes: []wireFNode{{Op: uint8(cond.FNot), Args: []int32{-2}}},
		}),
		"bad op": encode(&wireFacts{
			Nodes: []wireFNode{{Op: 250}},
		}),
		"cond index out of range": encode(&wireFacts{
			Symbols: []wireSymbol{{Name: "x", Facts: []wireFact{{Cond: 5}}}},
		}),
		"bad kind": encode(&wireFacts{
			Symbols: []wireSymbol{{Name: "x", Facts: []wireFact{{Kind: 99, Cond: -1}}}},
		}),
	}
	good, err := sampleFacts().Encode()
	if err != nil {
		t.Fatal(err)
	}
	cases["truncated"] = good[:len(good)/2]
	for name, data := range cases {
		if _, err := DecodeFacts(data); err == nil {
			t.Errorf("%s: decode succeeded, want error", name)
		}
	}
}

// FuzzFactsCodec drives DecodeFacts with arbitrary bytes (must never panic;
// anything it accepts must re-encode and decode to the same byte form) —
// seeded into the CI fuzz smoke alongside the parser fuzzers.
func FuzzFactsCodec(f *testing.F) {
	good, err := sampleFacts().Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte("garbage"))
	f.Add(good[:len(good)/2])
	f.Fuzz(func(t *testing.T, data []byte) {
		facts, err := DecodeFacts(data)
		if err != nil {
			return
		}
		re, err := facts.Encode()
		if err != nil {
			t.Fatalf("accepted payload failed to re-encode: %v", err)
		}
		if _, err := DecodeFacts(re); err != nil {
			t.Fatalf("re-encoded payload failed to decode: %v", err)
		}
	})
}

// TestCanonIDStability: the same boolean function exported from two spaces
// with different variable-creation orders must canonicalize to one id — the
// property that lets the linker join conditions across unit spaces.
func TestCanonIDStability(t *testing.T) {
	exportFrom := func(order []string) *cond.Formula {
		s := cond.NewSpace(cond.ModeBDD)
		vars := make(map[string]cond.Cond)
		for _, n := range order {
			vars[n] = s.Var(n)
		}
		// (A & B) | !C built from differently-ordered spaces.
		c := s.Or(s.And(vars["A"], vars["B"]), s.Not(vars["C"]))
		return s.Export(c)
	}
	f1 := exportFrom([]string{"A", "B", "C"})
	f2 := exportFrom([]string{"C", "B", "A"})
	canon := hcache.NewCanon()
	id1, id2 := canon.ID(f1), canon.ID(f2)
	if id1 != id2 {
		t.Fatalf("equal functions got distinct canon ids: %q vs %q", id1, id2)
	}
	// A genuinely different function must not collide.
	s := cond.NewSpace(cond.ModeBDD)
	other := s.Export(s.And(s.Var("A"), s.Var("C")))
	if id3 := canon.ID(other); id3 == id1 {
		t.Fatalf("distinct functions share a canon id: %q", id3)
	}
	// The codec round trip preserves the function, hence the id.
	facts := &Facts{Unit: "u.c", Symbols: []Symbol{{Name: "s", Facts: []Fact{
		{Kind: KindDef, File: "u.c", Line: 1, Col: 1, Cond: f1},
	}}}}
	got, err := roundTrip(facts)
	if err != nil {
		t.Fatal(err)
	}
	if id := canon.ID(got.Symbols[0].Facts[0].Cond); id != id1 {
		t.Fatalf("round trip changed canon id: %q vs %q", id, id1)
	}
}
