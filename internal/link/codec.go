package link

// This file serializes link facts for the daemon's durable fact store
// (internal/store) and the /v1/link wire. Conditions are cond.Formula DAGs
// with pointer sharing; the wire form flattens every formula of a Facts
// value into one indexed node table so the sharing survives the round trip
// (a gob of the raw pointer graph would expand shared subformulas into
// trees, and repeated conditions — the common case, since one #ifdef guards
// many declarations — would encode once per fact instead of once).
//
// Decoding is defensive: the payload may come from a corrupt or hostile
// store, so every index is bounds-checked (arguments may only reference
// earlier table entries, forcing the DAG acyclic) and every opcode is range
// checked. Poisoned payloads produce errors, never panics.

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"repro/internal/cond"
)

// wireFacts is the persisted form of Facts.
type wireFacts struct {
	Unit    string
	Nodes   []wireFNode // formula DAG table shared by every fact condition
	Symbols []wireSymbol
}

// wireFNode is one formula node; Args index strictly earlier Nodes entries.
type wireFNode struct {
	Op   uint8
	Name string
	Args []int32
}

type wireSymbol struct {
	Name  string
	Facts []wireFact
}

type wireFact struct {
	Kind uint8
	File string
	Line int32
	Col  int32
	Sig  string
	Cond int32 // index into wireFacts.Nodes; -1 when the fact carries none
}

// formulaTable flattens formulas into an indexed node list, memoizing on
// pointer identity so shared subformulas encode once.
type formulaTable struct {
	nodes []wireFNode
	memo  map[*cond.Formula]int32
}

func (t *formulaTable) add(f *cond.Formula) int32 {
	if f == nil {
		return -1
	}
	if i, ok := t.memo[f]; ok {
		return i
	}
	args := make([]int32, len(f.Args))
	for i, a := range f.Args {
		args[i] = t.add(a)
	}
	idx := int32(len(t.nodes))
	t.nodes = append(t.nodes, wireFNode{Op: uint8(f.Op), Name: f.Name, Args: args})
	t.memo[f] = idx
	return idx
}

// rebuildFormulas converts a node table back into formulas, restoring
// sharing and rejecting malformed tables.
func rebuildFormulas(nodes []wireFNode) ([]*cond.Formula, error) {
	out := make([]*cond.Formula, len(nodes))
	for i, n := range nodes {
		if n.Op > uint8(cond.FOr) {
			return nil, fmt.Errorf("link: unknown formula op %d at node %d", n.Op, i)
		}
		f := &cond.Formula{Op: cond.FOp(n.Op), Name: n.Name}
		if len(n.Args) > 0 {
			f.Args = make([]*cond.Formula, len(n.Args))
			for j, a := range n.Args {
				if a < 0 || int(a) >= i {
					return nil, fmt.Errorf("link: formula arg %d out of range at node %d", a, i)
				}
				f.Args[j] = out[a]
			}
		}
		out[i] = f
	}
	return out, nil
}

func formulaAt(table []*cond.Formula, i int32) (*cond.Formula, error) {
	if i == -1 {
		return nil, nil
	}
	if i < 0 || int(i) >= len(table) {
		return nil, fmt.Errorf("link: formula index %d out of range", i)
	}
	return table[i], nil
}

// Encode serializes the facts. Callers should Normalize first (extraction
// already emits canonical order) so equal fact sets encode byte-identically
// — the property the daemon's restart-stability guarantee rests on.
func (f *Facts) Encode() ([]byte, error) {
	t := &formulaTable{memo: make(map[*cond.Formula]int32)}
	w := wireFacts{Unit: f.Unit, Symbols: make([]wireSymbol, len(f.Symbols))}
	for i, s := range f.Symbols {
		ws := wireSymbol{Name: s.Name, Facts: make([]wireFact, len(s.Facts))}
		for j, fa := range s.Facts {
			ws.Facts[j] = wireFact{
				Kind: uint8(fa.Kind),
				File: fa.File,
				Line: int32(fa.Line),
				Col:  int32(fa.Col),
				Sig:  fa.Sig,
				Cond: t.add(fa.Cond),
			}
		}
		w.Symbols[i] = ws
	}
	w.Nodes = t.nodes
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&w); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeFacts deserializes an Encode payload, validating every index and
// opcode so corrupt store entries surface as errors.
func DecodeFacts(data []byte) (*Facts, error) {
	var w wireFacts
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return nil, fmt.Errorf("link: decode facts: %w", err)
	}
	table, err := rebuildFormulas(w.Nodes)
	if err != nil {
		return nil, err
	}
	out := &Facts{Unit: w.Unit, Symbols: make([]Symbol, len(w.Symbols))}
	for i, ws := range w.Symbols {
		s := Symbol{Name: ws.Name, Facts: make([]Fact, len(ws.Facts))}
		for j, wf := range ws.Facts {
			if wf.Kind > uint8(KindRef) {
				return nil, fmt.Errorf("link: unknown fact kind %d for symbol %q", wf.Kind, ws.Name)
			}
			c, err := formulaAt(table, wf.Cond)
			if err != nil {
				return nil, err
			}
			s.Facts[j] = Fact{
				Kind: FactKind(wf.Kind),
				File: wf.File,
				Line: int(wf.Line),
				Col:  int(wf.Col),
				Sig:  wf.Sig,
				Cond: c,
			}
		}
		out.Symbols[i] = s
	}
	return out, nil
}
