package link

import (
	"testing"

	"repro/internal/cond"
	"repro/internal/hcache"
)

// fvar/fnot/fand build small formulas directly — unit extraction is tested
// in internal/analysis; here the linker is fed hand-built facts.
func fvar(n string) *cond.Formula { return &cond.Formula{Op: cond.FVar, Name: n} }
func fnot(f *cond.Formula) *cond.Formula {
	return &cond.Formula{Op: cond.FNot, Args: []*cond.Formula{f}}
}
func fand(a, b *cond.Formula) *cond.Formula {
	return &cond.Formula{Op: cond.FAnd, Args: []*cond.Formula{a, b}}
}
func ftrue() *cond.Formula { return &cond.Formula{Op: cond.FTrue} }

func findings(r *Result, family string) []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Family == family {
			out = append(out, f)
		}
	}
	return out
}

func TestLinkUndefRef(t *testing.T) {
	// a.c references work() always; b.c defines it only under CONFIG_WORK.
	a := &Facts{Unit: "a.c", Symbols: []Symbol{{Name: "work", Facts: []Fact{
		{Kind: KindRef, File: "a.c", Line: 3, Col: 5, Cond: ftrue()},
	}}}}
	b := &Facts{Unit: "b.c", Symbols: []Symbol{{Name: "work", Facts: []Fact{
		{Kind: KindDef, File: "b.c", Line: 10, Col: 6, Sig: "void @ ( )", Cond: fvar("CONFIG_WORK")},
	}}}}
	r := Link([]*Facts{a, b}, nil)
	ur := findings(r, "undef-ref")
	if len(ur) != 1 {
		t.Fatalf("undef-ref findings = %d, want 1\n%+v", len(ur), r.Findings)
	}
	f := ur[0]
	if f.Symbol != "work" || f.File != "a.c" || f.Line != 3 {
		t.Errorf("bad anchor: %+v", f)
	}
	if !f.WitnessVerified {
		t.Errorf("witness not verified: %+v", f)
	}
	if f.Witness["CONFIG_WORK"] {
		t.Errorf("witness should falsify CONFIG_WORK: %v", f.Witness)
	}
	// The miss condition must exclude the defining config.
	if r.Space.Eval(f.Cond, map[string]bool{"CONFIG_WORK": true}) {
		t.Errorf("miss condition true under CONFIG_WORK: %s", f.CondStr)
	}
}

func TestLinkUndefRefCovered(t *testing.T) {
	// Reference and definition guarded by the same macro: no finding.
	a := &Facts{Unit: "a.c", Symbols: []Symbol{{Name: "work", Facts: []Fact{
		{Kind: KindRef, File: "a.c", Line: 3, Col: 5, Cond: fvar("W")},
	}}}}
	b := &Facts{Unit: "b.c", Symbols: []Symbol{{Name: "work", Facts: []Fact{
		{Kind: KindDef, File: "b.c", Line: 10, Col: 6, Cond: fvar("W")},
	}}}}
	r := Link([]*Facts{a, b}, nil)
	if len(r.Findings) != 0 {
		t.Fatalf("findings = %+v, want none", r.Findings)
	}
	if r.Stats.SATChecks == 0 {
		t.Error("expected SAT gates to have run")
	}
}

func TestLinkTentativeResolvesRef(t *testing.T) {
	a := &Facts{Unit: "a.c", Symbols: []Symbol{{Name: "counter", Facts: []Fact{
		{Kind: KindRef, File: "a.c", Line: 4, Col: 1, Cond: ftrue()},
	}}}}
	b := &Facts{Unit: "b.c", Symbols: []Symbol{{Name: "counter", Facts: []Fact{
		{Kind: KindTentative, File: "b.c", Line: 1, Col: 5, Sig: "int @", Cond: ftrue()},
	}}}}
	r := Link([]*Facts{a, b}, nil)
	if n := len(findings(r, "undef-ref")); n != 0 {
		t.Fatalf("tentative definition should satisfy references; findings=%+v", r.Findings)
	}
}

func TestLinkMultidef(t *testing.T) {
	// Two real definitions overlapping on DUP; tentatives never conflict.
	a := &Facts{Unit: "a.c", Symbols: []Symbol{{Name: "init", Facts: []Fact{
		{Kind: KindDef, File: "a.c", Line: 1, Col: 5, Sig: "int @ ( )", Cond: ftrue()},
	}}}}
	b := &Facts{Unit: "b.c", Symbols: []Symbol{{Name: "init", Facts: []Fact{
		{Kind: KindDef, File: "b.c", Line: 2, Col: 5, Sig: "int @ ( )", Cond: fvar("DUP")},
		{Kind: KindTentative, File: "b.c", Line: 9, Col: 1, Cond: ftrue()},
	}}}}
	r := Link([]*Facts{a, b}, nil)
	md := findings(r, "multidef")
	if len(md) != 1 {
		t.Fatalf("multidef findings = %d, want 1\n%+v", len(md), r.Findings)
	}
	f := md[0]
	if f.File != "b.c" || f.OtherFile != "a.c" {
		t.Errorf("anchor should be the later site: %+v", f)
	}
	if !f.WitnessVerified || !f.Witness["DUP"] {
		t.Errorf("witness must enable DUP and verify: %+v", f)
	}
}

func TestLinkMultidefDisjoint(t *testing.T) {
	a := &Facts{Unit: "a.c", Symbols: []Symbol{{Name: "init", Facts: []Fact{
		{Kind: KindDef, File: "a.c", Line: 1, Col: 5, Cond: fvar("A")},
	}}}}
	b := &Facts{Unit: "b.c", Symbols: []Symbol{{Name: "init", Facts: []Fact{
		{Kind: KindDef, File: "b.c", Line: 2, Col: 5, Cond: fnot(fvar("A"))},
	}}}}
	r := Link([]*Facts{a, b}, nil)
	if len(r.Findings) != 0 {
		t.Fatalf("disjoint definitions must not conflict: %+v", r.Findings)
	}
}

func TestLinkTypeMismatch(t *testing.T) {
	a := &Facts{Unit: "a.c", Symbols: []Symbol{{Name: "size", Facts: []Fact{
		{Kind: KindDecl, File: "a.c", Line: 2, Col: 12, Sig: "int @", Cond: ftrue()},
	}}}}
	b := &Facts{Unit: "b.c", Symbols: []Symbol{{Name: "size", Facts: []Fact{
		{Kind: KindDef, File: "b.c", Line: 5, Col: 6, Sig: "long @", Cond: fvar("BIG")},
	}}}}
	r := Link([]*Facts{a, b}, nil)
	tm := findings(r, "type-mismatch")
	if len(tm) != 1 {
		t.Fatalf("type-mismatch findings = %d, want 1\n%+v", len(tm), r.Findings)
	}
	f := tm[0]
	if f.SigA == f.SigB {
		t.Errorf("signatures should differ: %+v", f)
	}
	if !f.WitnessVerified || !f.Witness["BIG"] {
		t.Errorf("witness must enable BIG and verify: %+v", f)
	}
	// Disjoint variants of the same symbol are fine.
	b2 := &Facts{Unit: "b.c", Symbols: []Symbol{{Name: "size", Facts: []Fact{
		{Kind: KindDef, File: "b.c", Line: 5, Col: 6, Sig: "long @", Cond: fvar("BIG")},
	}}}}
	a2 := &Facts{Unit: "a.c", Symbols: []Symbol{{Name: "size", Facts: []Fact{
		{Kind: KindDecl, File: "a.c", Line: 2, Col: 12, Sig: "int @", Cond: fnot(fvar("BIG"))},
	}}}}
	if r2 := Link([]*Facts{a2, b2}, nil); len(r2.Findings) != 0 {
		t.Fatalf("disjoint type variants must not conflict: %+v", r2.Findings)
	}
}

func TestLinkDeterministicOrder(t *testing.T) {
	mk := func() []*Facts {
		a := &Facts{Unit: "a.c", Symbols: []Symbol{
			{Name: "x", Facts: []Fact{{Kind: KindRef, File: "a.c", Line: 1, Col: 1, Cond: fvar("P")}}},
			{Name: "y", Facts: []Fact{{Kind: KindDef, File: "a.c", Line: 2, Col: 1, Sig: "int @", Cond: ftrue()}}},
		}}
		b := &Facts{Unit: "b.c", Symbols: []Symbol{
			{Name: "y", Facts: []Fact{{Kind: KindDef, File: "b.c", Line: 3, Col: 1, Sig: "long @", Cond: fand(fvar("Q"), fvar("R"))}}},
		}}
		return []*Facts{a, b}
	}
	render := func(r *Result) []string {
		var out []string
		for _, f := range r.Findings {
			out = append(out, f.Pass()+" "+f.Message()+" when "+f.CondStr)
		}
		return out
	}
	units := mk()
	base := render(Link(units, nil))
	if len(base) == 0 {
		t.Fatal("expected findings")
	}
	// Reversed unit order and a shared canon must give identical output.
	rev := mk()
	rev[0], rev[1] = rev[1], rev[0]
	canon := hcache.NewCanon()
	got := render(Link(rev, canon))
	if len(got) != len(base) {
		t.Fatalf("lengths differ: %v vs %v", got, base)
	}
	for i := range base {
		if got[i] != base[i] {
			t.Errorf("finding %d differs:\n  %s\n  %s", i, base[i], got[i])
		}
	}
	// Second run through the same canon (warm id cache) is also identical.
	again := render(Link(mk(), canon))
	for i := range base {
		if again[i] != base[i] {
			t.Errorf("canon-warm finding %d differs:\n  %s\n  %s", i, base[i], again[i])
		}
	}
}

func TestLinkNilAndEmptyUnits(t *testing.T) {
	r := Link([]*Facts{nil, {Unit: "empty.c"}}, nil)
	if len(r.Findings) != 0 || r.Stats.Units != 1 {
		t.Fatalf("stats = %+v, findings = %+v", r.Stats, r.Findings)
	}
	if r = Link(nil, nil); len(r.Findings) != 0 {
		t.Fatalf("nil corpus: %+v", r.Findings)
	}
}

func TestNormalizeCanonicalOrder(t *testing.T) {
	f := &Facts{Unit: "u.c", Symbols: []Symbol{
		{Name: "z", Facts: []Fact{
			{Kind: KindRef, File: "u.c", Line: 9, Col: 1},
			{Kind: KindDef, File: "u.c", Line: 2, Col: 1},
		}},
		{Name: "a"},
	}}
	f.Normalize()
	if f.Symbols[0].Name != "a" || f.Symbols[1].Name != "z" {
		t.Fatalf("symbols not sorted: %+v", f.Symbols)
	}
	if f.Symbols[1].Facts[0].Kind != KindDef {
		t.Fatalf("facts not in canonical order: %+v", f.Symbols[1].Facts)
	}
	if f.Count() != 2 {
		t.Fatalf("Count = %d, want 2", f.Count())
	}
}
