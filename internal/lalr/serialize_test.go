package lalr

import (
	"bytes"
	"encoding/gob"
	"testing"
)

// TestRoundTripPreservesSemanticLinkage asserts that decode reconstructs
// the exact production order, labels, and precedence declarations, so that
// index- and label-keyed semantic actions attach to the same productions on
// a decoded table as on the freshly built one.
func TestRoundTripPreservesSemanticLinkage(t *testing.T) {
	g := NewGrammar()
	g.Terminal("NUM")
	g.Precedence(AssocLeft, "+")
	g.Precedence(AssocLeft, "*")
	g.Terminal("-")
	g.SetStart("E")
	g.Rule("E", "E", "+", "E").WithLabel("add")
	g.Rule("E", "E", "*", "E").WithLabel("mul")
	g.Rule("E", "-", "E").WithLabel("neg").WithPrec(g, "*")
	g.Rule("E", "NUM").WithLabel("num")
	tbl := mustBuild(t, g)

	var buf bytes.Buffer
	if err := tbl.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	lg := loaded.Grammar
	if len(lg.prods) != len(g.prods) {
		t.Fatalf("production count: %d vs %d", len(lg.prods), len(g.prods))
	}
	for i, p := range g.prods {
		lp := lg.prods[i]
		if lp.Index != p.Index || lp.Label != p.Label || lp.Lhs != p.Lhs || lp.Prec != p.Prec {
			t.Errorf("production %d: %+v vs %+v", i, lp, p)
		}
		if g.ProdString(p) != lg.ProdString(lp) {
			t.Errorf("production %d: %q vs %q", i, lg.ProdString(lp), g.ProdString(p))
		}
	}
	// Precedence/associativity declarations survive the round trip.
	for sym, lvl := range g.prec {
		if lg.prec[sym] != lvl {
			t.Errorf("prec[%s] = %d, want %d", g.Name(sym), lg.prec[sym], lvl)
		}
	}
	for sym, a := range g.assoc {
		if lg.assoc[sym] != a {
			t.Errorf("assoc[%s] = %d, want %d", g.Name(sym), lg.assoc[sym], a)
		}
	}
	if lg.precLevel != g.precLevel {
		t.Errorf("precLevel = %d, want %d", lg.precLevel, g.precLevel)
	}
}

func TestReadTableRejectsVersionMismatch(t *testing.T) {
	g := exprGrammar()
	tbl := mustBuild(t, g)
	var buf bytes.Buffer
	if err := tbl.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	var wt wireTable
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&wt); err != nil {
		t.Fatal(err)
	}
	wt.Version = wireVersion + 1
	var out bytes.Buffer
	if err := gob.NewEncoder(&out).Encode(&wt); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTable(&out); err == nil {
		t.Error("future-version table decoded without error")
	}
}

func TestReadTableRejectsDanglingReduce(t *testing.T) {
	g := exprGrammar()
	tbl := mustBuild(t, g)
	var buf bytes.Buffer
	if err := tbl.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	var wt wireTable
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&wt); err != nil {
		t.Fatal(err)
	}
	// Point one reduce action past the production list: the decoded table
	// would dispatch a nonexistent semantic action.
	patched := false
	for s := range wt.Actions {
		for i, act := range wt.Actions[s] {
			if act.Kind == ActionReduce {
				wt.Actions[s][i].Target = len(wt.Prods) + 3
				patched = true
				break
			}
		}
		if patched {
			break
		}
	}
	if !patched {
		t.Fatal("no reduce action found to corrupt")
	}
	var out bytes.Buffer
	if err := gob.NewEncoder(&out).Encode(&wt); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTable(&out); err == nil {
		t.Error("table with dangling reduce decoded without error")
	}
}
