package lalr

import "fmt"

// ParseSymbols runs a plain (single-configuration) LR parse over a terminal
// sequence, invoking onReduce for each reduction. The input must not include
// the $end terminal; it is appended implicitly. This runner exercises the
// tables independently of the FMLR engine and serves as the parsing half of
// the gcc-like baseline.
func (t *Table) ParseSymbols(input []Symbol, onReduce func(*Production)) error {
	g := t.Grammar
	stack := []int{0}
	pos := 0
	cur := func() Symbol {
		if pos < len(input) {
			return input[pos]
		}
		return g.eof
	}
	for steps := 0; ; steps++ {
		st := stack[len(stack)-1]
		la := cur()
		act := t.Actions[st][la]
		switch act.Kind {
		case ActionShift:
			stack = append(stack, act.Target)
			pos++
		case ActionReduce:
			p := g.prods[act.Target]
			stack = stack[:len(stack)-len(p.Rhs)]
			top := stack[len(stack)-1]
			next := t.Gotos[top][p.Lhs]
			if next < 0 {
				return fmt.Errorf("lalr: missing goto for %s in state %d", g.Name(p.Lhs), top)
			}
			stack = append(stack, next)
			if onReduce != nil {
				onReduce(p)
			}
		case ActionAccept:
			return nil
		default:
			return fmt.Errorf("lalr: parse error at position %d on %s (state %d)", pos, g.Name(la), st)
		}
	}
}

// TableStats summarizes a generated table.
type TableStats struct {
	States      int
	Productions int
	Terminals   int
	Nonterms    int
	Conflicts   int
}

// Stats returns summary statistics for the table.
func (t *Table) Stats() TableStats {
	terms := 0
	for s := range t.Grammar.names {
		if t.Grammar.isTerminal[s] {
			terms++
		}
	}
	return TableStats{
		States:      t.NumStates,
		Productions: len(t.Grammar.prods),
		Terminals:   terms,
		Nonterms:    len(t.Grammar.names) - terms,
		Conflicts:   len(t.Conflicts),
	}
}
