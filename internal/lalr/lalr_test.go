package lalr

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// exprGrammar is the classic ambiguous expression grammar disambiguated by
// precedence declarations.
func exprGrammar() *Grammar {
	g := NewGrammar()
	for _, t := range []string{"NUM", "+", "-", "*", "/", "(", ")"} {
		g.Terminal(t)
	}
	g.Precedence(AssocLeft, "+", "-")
	g.Precedence(AssocLeft, "*", "/")
	g.SetStart("E")
	g.Rule("E", "E", "+", "E").WithLabel("add")
	g.Rule("E", "E", "-", "E").WithLabel("sub")
	g.Rule("E", "E", "*", "E").WithLabel("mul")
	g.Rule("E", "E", "/", "E").WithLabel("div")
	g.Rule("E", "(", "E", ")").WithLabel("paren")
	g.Rule("E", "NUM").WithLabel("num")
	return g
}

func mustBuild(t *testing.T, g *Grammar) *Table {
	t.Helper()
	tbl, err := Build(g)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return tbl
}

func symsOf(t *testing.T, g *Grammar, names ...string) []Symbol {
	t.Helper()
	var out []Symbol
	for _, n := range names {
		s, ok := g.Lookup(n)
		if !ok {
			t.Fatalf("unknown symbol %q", n)
		}
		out = append(out, s)
	}
	return out
}

// parseLabels parses and returns the reduction labels in order.
func parseLabels(t *testing.T, tbl *Table, input []Symbol) ([]string, error) {
	t.Helper()
	var labels []string
	err := tbl.ParseSymbols(input, func(p *Production) {
		labels = append(labels, p.Label)
	})
	return labels, err
}

func TestExprGrammarPrecedence(t *testing.T) {
	g := exprGrammar()
	tbl := mustBuild(t, g)
	// Precedence resolves all conflicts; none should remain unresolved.
	if len(tbl.Conflicts) != 0 {
		t.Errorf("unresolved conflicts: %v", tbl.Conflicts)
	}

	// 1 + 2 * 3 must reduce mul before add.
	labels, err := parseLabels(t, tbl, symsOf(t, g, "NUM", "+", "NUM", "*", "NUM"))
	if err != nil {
		t.Fatal(err)
	}
	got := strings.Join(labels, " ")
	if got != "num num num mul add" {
		t.Errorf("1+2*3 reduced as %q", got)
	}

	// 1 * 2 + 3 must reduce mul first (left operand).
	labels, err = parseLabels(t, tbl, symsOf(t, g, "NUM", "*", "NUM", "+", "NUM"))
	if err != nil {
		t.Fatal(err)
	}
	got = strings.Join(labels, " ")
	if got != "num num mul num add" {
		t.Errorf("1*2+3 reduced as %q", got)
	}

	// Left associativity: 1 - 2 - 3 is (1-2)-3.
	labels, err = parseLabels(t, tbl, symsOf(t, g, "NUM", "-", "NUM", "-", "NUM"))
	if err != nil {
		t.Fatal(err)
	}
	got = strings.Join(labels, " ")
	if got != "num num sub num sub" {
		t.Errorf("1-2-3 reduced as %q", got)
	}
}

func TestExprGrammarParens(t *testing.T) {
	g := exprGrammar()
	tbl := mustBuild(t, g)
	labels, err := parseLabels(t, tbl, symsOf(t, g, "(", "NUM", "+", "NUM", ")", "*", "NUM"))
	if err != nil {
		t.Fatal(err)
	}
	got := strings.Join(labels, " ")
	if got != "num num add paren num mul" {
		t.Errorf("(1+2)*3 reduced as %q", got)
	}
}

func TestParseErrors(t *testing.T) {
	g := exprGrammar()
	tbl := mustBuild(t, g)
	bad := [][]string{
		{"NUM", "NUM"},
		{"+", "NUM"},
		{"(", "NUM"},
		{"NUM", "+"},
		{")"},
		{},
	}
	for _, names := range bad {
		if _, err := parseLabels(t, tbl, symsOf(t, g, names...)); err == nil {
			t.Errorf("%v: expected parse error", names)
		}
	}
}

func TestEpsilonProductions(t *testing.T) {
	// S -> A B ; A -> 'a' | ε ; B -> 'b'
	g := NewGrammar()
	g.Terminal("a")
	g.Terminal("b")
	g.SetStart("S")
	g.Rule("S", "A", "B")
	g.Rule("A", "a").WithLabel("A-a")
	g.Rule("A").WithLabel("A-eps")
	g.Rule("B", "b").WithLabel("B-b")
	tbl := mustBuild(t, g)

	labels, err := parseLabels(t, tbl, symsOf(t, g, "b"))
	if err != nil {
		t.Fatalf("b: %v", err)
	}
	if strings.Join(labels, " ") != "A-eps B-b S" {
		t.Errorf("b reduced as %v", labels)
	}
	labels, err = parseLabels(t, tbl, symsOf(t, g, "a", "b"))
	if err != nil {
		t.Fatalf("ab: %v", err)
	}
	if strings.Join(labels, " ") != "A-a B-b S" {
		t.Errorf("ab reduced as %v", labels)
	}
}

func TestLeftRecursiveList(t *testing.T) {
	// The LR-friendly left-recursive list: L -> L ',' x | x
	g := NewGrammar()
	g.Terminal("x")
	g.Terminal(",")
	g.SetStart("L")
	g.Rule("L", "L", ",", "x").WithLabel("cons")
	g.Rule("L", "x").WithLabel("single")
	tbl := mustBuild(t, g)
	input := symsOf(t, g, "x", ",", "x", ",", "x", ",", "x")
	labels, err := parseLabels(t, tbl, input)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(labels, " ") != "single cons cons cons" {
		t.Errorf("list reduced as %v", labels)
	}
}

func TestDanglingElseResolvedToShift(t *testing.T) {
	// The classic dangling-else: default shift binds else to the nearest if.
	g := NewGrammar()
	for _, t := range []string{"if", "else", "expr", "stmt"} {
		g.Terminal(t)
	}
	g.SetStart("S")
	g.Rule("S", "if", "expr", "S").WithLabel("if")
	g.Rule("S", "if", "expr", "S", "else", "S").WithLabel("ifelse")
	g.Rule("S", "stmt").WithLabel("stmt")
	tbl := mustBuild(t, g)

	// One shift/reduce conflict is expected, resolved in favor of shift.
	srConflicts := 0
	for _, c := range tbl.Conflicts {
		if c.Kind == "shift/reduce" {
			srConflicts++
			if c.Chosen.Kind != ActionShift {
				t.Errorf("dangling else resolved to %v", c.Chosen)
			}
		}
	}
	if srConflicts == 0 {
		t.Error("expected a dangling-else shift/reduce conflict")
	}

	// if e if e s else s: else must attach to the inner if.
	labels, err := parseLabels(t, tbl, symsOf(t, g,
		"if", "expr", "if", "expr", "stmt", "else", "stmt"))
	if err != nil {
		t.Fatal(err)
	}
	got := strings.Join(labels, " ")
	if got != "stmt stmt ifelse if" {
		t.Errorf("dangling else parsed as %q", got)
	}
}

func TestNonassocPrecedence(t *testing.T) {
	// a < b < c must be rejected under nonassoc <.
	g := NewGrammar()
	g.Terminal("NUM")
	g.Terminal("<")
	g.Precedence(AssocNonassoc, "<")
	g.SetStart("E")
	g.Rule("E", "E", "<", "E").WithLabel("lt")
	g.Rule("E", "NUM").WithLabel("num")
	tbl := mustBuild(t, g)
	if _, err := parseLabels(t, tbl, symsOf(t, g, "NUM", "<", "NUM")); err != nil {
		t.Errorf("a<b should parse: %v", err)
	}
	if _, err := parseLabels(t, tbl, symsOf(t, g, "NUM", "<", "NUM", "<", "NUM")); err == nil {
		t.Error("a<b<c should be rejected under nonassoc")
	}
}

func TestReduceReduceConflictReported(t *testing.T) {
	// S -> A | B ; A -> x ; B -> x
	g := NewGrammar()
	g.Terminal("x")
	g.SetStart("S")
	g.Rule("S", "A")
	g.Rule("S", "B")
	g.Rule("A", "x").WithLabel("A")
	g.Rule("B", "x").WithLabel("B")
	tbl := mustBuild(t, g)
	found := false
	for _, c := range tbl.Conflicts {
		if c.Kind == "reduce/reduce" {
			found = true
			// Earlier production (A -> x) wins.
			if tbl.Grammar.prods[c.Chosen.Target].Label != "A" {
				t.Errorf("reduce/reduce resolved to %s", tbl.Grammar.prods[c.Chosen.Target].Label)
			}
		}
	}
	if !found {
		t.Error("reduce/reduce conflict not reported")
	}
}

func TestValidate(t *testing.T) {
	g := NewGrammar()
	g.Terminal("x")
	g.SetStart("S")
	g.Rule("S", "Missing")
	if _, err := Build(g); err == nil {
		t.Error("undefined nonterminal not reported")
	}
}

func TestMiniCSubset(t *testing.T) {
	// A miniature C-like grammar exercising statements, expressions, and
	// declarations together — a dry run for the real C grammar.
	g := NewGrammar()
	for _, term := range []string{"ID", "NUM", "int", "if", "else", "while", "return",
		"=", "+", "*", "<", "(", ")", "{", "}", ";"} {
		g.Terminal(term)
	}
	g.Precedence(AssocNonassoc, "then")
	g.Precedence(AssocNonassoc, "else")
	g.Precedence(AssocLeft, "<")
	g.Precedence(AssocLeft, "+")
	g.Precedence(AssocLeft, "*")
	g.SetStart("Block")
	g.Rule("Block", "{", "StmtList", "}")
	g.Rule("StmtList")
	g.Rule("StmtList", "StmtList", "Stmt")
	g.Rule("Stmt", "int", "ID", ";").WithLabel("decl")
	g.Rule("Stmt", "ID", "=", "Expr", ";").WithLabel("assign")
	g.Rule("Stmt", "if", "(", "Expr", ")", "Stmt").WithPrec(g, "then").WithLabel("if")
	g.Rule("Stmt", "if", "(", "Expr", ")", "Stmt", "else", "Stmt").WithLabel("ifelse")
	g.Rule("Stmt", "while", "(", "Expr", ")", "Stmt").WithLabel("while")
	g.Rule("Stmt", "return", "Expr", ";").WithLabel("ret")
	g.Rule("Stmt", "Block").WithLabel("block")
	g.Rule("Expr", "Expr", "+", "Expr").WithLabel("add")
	g.Rule("Expr", "Expr", "*", "Expr").WithLabel("mul")
	g.Rule("Expr", "Expr", "<", "Expr").WithLabel("lt")
	g.Rule("Expr", "(", "Expr", ")")
	g.Rule("Expr", "ID")
	g.Rule("Expr", "NUM")
	tbl := mustBuild(t, g)
	if len(tbl.Conflicts) != 0 {
		t.Errorf("conflicts: %+v", tbl.Conflicts)
	}

	program := symsOf(t, g,
		"{", "int", "ID", ";",
		"ID", "=", "NUM", "+", "NUM", "*", "NUM", ";",
		"if", "(", "ID", "<", "NUM", ")", "ID", "=", "NUM", ";",
		"else", "while", "(", "ID", ")", "{", "return", "ID", ";", "}",
		"}")
	if _, err := parseLabels(t, tbl, program); err != nil {
		t.Fatalf("mini-C program rejected: %v", err)
	}
}

func TestTableStats(t *testing.T) {
	tbl := mustBuild(t, exprGrammar())
	st := tbl.Stats()
	if st.States < 10 || st.Productions != 7 || st.Terminals != 8 {
		t.Errorf("stats = %+v", st)
	}
}

func BenchmarkBuildExprGrammar(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := exprGrammar()
		if _, err := Build(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseLongExpression(b *testing.B) {
	g := exprGrammar()
	tbl, err := Build(g)
	if err != nil {
		b.Fatal(err)
	}
	num, _ := g.Lookup("NUM")
	plus, _ := g.Lookup("+")
	var input []Symbol
	for i := 0; i < 500; i++ {
		if i > 0 {
			input = append(input, plus)
		}
		input = append(input, num)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tbl.ParseSymbols(input, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	g := exprGrammar()
	tbl := mustBuild(t, g)
	var buf bytes.Buffer
	if err := tbl.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumStates != tbl.NumStates {
		t.Errorf("states: %d vs %d", loaded.NumStates, tbl.NumStates)
	}
	// The loaded table must parse identically.
	input := symsOf(t, g, "NUM", "+", "NUM", "*", "NUM")
	var want, got []string
	if err := tbl.ParseSymbols(input, func(p *Production) { want = append(want, p.Label) }); err != nil {
		t.Fatal(err)
	}
	// Symbols resolve by name in the loaded grammar.
	var input2 []Symbol
	for _, name := range []string{"NUM", "+", "NUM", "*", "NUM"} {
		s, ok := loaded.Grammar.Lookup(name)
		if !ok {
			t.Fatalf("symbol %q lost", name)
		}
		input2 = append(input2, s)
	}
	if err := loaded.ParseSymbols(input2, func(p *Production) { got = append(got, p.Label) }); err != nil {
		t.Fatal(err)
	}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("loaded table parses differently: %v vs %v", got, want)
	}
	// Rejects still reject.
	bad := input2[:2]
	if err := loaded.ParseSymbols(bad, nil); err == nil {
		t.Error("loaded table accepted bad input")
	}
}

func TestReadTableCorrupt(t *testing.T) {
	if _, err := ReadTable(strings.NewReader("garbage")); err == nil {
		t.Error("garbage decoded")
	}
}

func TestSerializeCGrammarScale(t *testing.T) {
	// Round-trip a big grammar quickly: reuse the mini-C grammar at scale
	// by duplicating rule families.
	g := NewGrammar()
	g.Terminal("x")
	g.Terminal(";")
	g.SetStart("S")
	g.Rule("S", "L")
	g.Rule("L", "L", "Item").WithLabel("cons")
	g.Rule("L", "Item")
	for i := 0; i < 50; i++ {
		nt := fmt.Sprintf("Item%d", i)
		if i == 0 {
			g.Rule("Item", "x", ";")
		}
		g.Rule("Item", nt)
		g.Rule(nt, "x", "x", ";")
	}
	tbl := mustBuild(t, g)
	var buf bytes.Buffer
	if err := tbl.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	x, _ := loaded.Grammar.Lookup("x")
	semi, _ := loaded.Grammar.Lookup(";")
	if err := loaded.ParseSymbols([]Symbol{x, x, semi, x, semi}, nil); err != nil {
		t.Errorf("loaded big table parse: %v", err)
	}
}
