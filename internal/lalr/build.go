package lalr

import (
	"fmt"
	"sort"
	"strings"
)

// item is an LR(0) item: a production index and a dot position.
type item struct {
	prod int
	dot  int
}

// itemSetKey canonicalizes a kernel item set for state deduplication.
func itemSetKey(items []item) string {
	sorted := append([]item(nil), items...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].prod != sorted[j].prod {
			return sorted[i].prod < sorted[j].prod
		}
		return sorted[i].dot < sorted[j].dot
	})
	var b strings.Builder
	for _, it := range sorted {
		fmt.Fprintf(&b, "%d.%d;", it.prod, it.dot)
	}
	return b.String()
}

// state is one LR(0) automaton state.
type state struct {
	index   int
	kernel  []item
	trans   map[Symbol]int           // symbol -> next state
	look    map[item]map[Symbol]bool // kernel item -> LALR lookaheads
	closure []item                   // cached LR(0) closure
}

// ActionKind discriminates parse-table actions.
type ActionKind uint8

// Parse actions.
const (
	ActionError ActionKind = iota
	ActionShift
	ActionReduce
	ActionAccept
)

// Action is one parse-table entry.
type Action struct {
	Kind   ActionKind
	Target int // shift: next state; reduce: production index
}

func (a Action) String() string {
	switch a.Kind {
	case ActionShift:
		return fmt.Sprintf("s%d", a.Target)
	case ActionReduce:
		return fmt.Sprintf("r%d", a.Target)
	case ActionAccept:
		return "acc"
	}
	return "·"
}

// Conflict records a table conflict and how it was resolved.
type Conflict struct {
	State    int
	Terminal Symbol
	Kind     string // "shift/reduce" or "reduce/reduce"
	Chosen   Action
	Dropped  Action
}

// Table is a complete LALR(1) parse table.
type Table struct {
	Grammar   *Grammar
	NumStates int
	// Action is indexed [state][terminal].
	Actions [][]Action
	// Gotos is indexed [state][symbol]; -1 when absent.
	Gotos     [][]int
	Conflicts []Conflict
	// AcceptProd is the augmented production index (reduced at accept).
	AcceptProd int
}

// Build constructs the LALR(1) table for g.
func Build(g *Grammar) (*Table, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	// Augment: $accept -> start $end.
	aug := &Production{
		Index: len(g.prods),
		Lhs:   g.newSymbol("$accept", false),
		Rhs:   []Symbol{g.start, g.eof},
		Prec:  -1,
		Label: "$accept",
	}
	g.prods = append(g.prods, aug)
	g.prodsByLhs[aug.Lhs] = []*Production{aug}

	fs := g.computeFirst()
	b := &builder{g: g, fs: fs, stateIndex: make(map[string]int)}
	b.buildLR0(aug)
	b.computeLookaheads(aug)
	return b.fillTable(aug)
}

type builder struct {
	g          *Grammar
	fs         *firstSets
	states     []*state
	stateIndex map[string]int
}

// closure0 computes the LR(0) closure of a kernel.
func (b *builder) closure0(kernel []item) []item {
	seen := make(map[item]bool, len(kernel))
	var out []item
	var queue []item
	for _, it := range kernel {
		if !seen[it] {
			seen[it] = true
			out = append(out, it)
			queue = append(queue, it)
		}
	}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		p := b.g.prods[it.prod]
		if it.dot >= len(p.Rhs) {
			continue
		}
		next := p.Rhs[it.dot]
		if b.g.isTerminal[next] {
			continue
		}
		for _, np := range b.g.prodsByLhs[next] {
			ni := item{prod: np.Index, dot: 0}
			if !seen[ni] {
				seen[ni] = true
				out = append(out, ni)
				queue = append(queue, ni)
			}
		}
	}
	return out
}

// buildLR0 constructs the canonical LR(0) collection.
func (b *builder) buildLR0(aug *Production) {
	start := &state{index: 0, kernel: []item{{prod: aug.Index, dot: 0}}, trans: map[Symbol]int{}}
	b.states = append(b.states, start)
	b.stateIndex[itemSetKey(start.kernel)] = 0

	for i := 0; i < len(b.states); i++ {
		st := b.states[i]
		st.closure = b.closure0(st.kernel)
		// Group items by the symbol after the dot.
		moves := make(map[Symbol][]item)
		for _, it := range st.closure {
			p := b.g.prods[it.prod]
			if it.dot < len(p.Rhs) {
				x := p.Rhs[it.dot]
				moves[x] = append(moves[x], item{prod: it.prod, dot: it.dot + 1})
			}
		}
		// Deterministic order for reproducible tables.
		syms := make([]Symbol, 0, len(moves))
		for x := range moves {
			syms = append(syms, x)
		}
		sort.Slice(syms, func(a, c int) bool { return syms[a] < syms[c] })
		for _, x := range syms {
			kernel := moves[x]
			key := itemSetKey(kernel)
			idx, ok := b.stateIndex[key]
			if !ok {
				idx = len(b.states)
				b.states = append(b.states, &state{index: idx, kernel: kernel, trans: map[Symbol]int{}})
				b.stateIndex[key] = idx
			}
			st.trans[x] = idx
		}
	}
}

// dummy is the placeholder lookahead used to discover propagation
// (Aho et al. Algorithm 4.63's '#').
const dummy Symbol = -1

// la1Item is an LR(1) item used during closure1.
type la1Item struct {
	item
	la Symbol
}

// closure1 computes the LR(1) closure of a single seeded item.
func (b *builder) closure1(seed la1Item) []la1Item {
	seen := map[la1Item]bool{seed: true}
	out := []la1Item{seed}
	queue := []la1Item{seed}
	firstBuf := make(map[Symbol]bool)
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		p := b.g.prods[it.prod]
		if it.dot >= len(p.Rhs) {
			continue
		}
		next := p.Rhs[it.dot]
		if b.g.isTerminal[next] {
			continue
		}
		// FIRST(β la)
		for k := range firstBuf {
			delete(firstBuf, k)
		}
		beta := p.Rhs[it.dot+1:]
		b.firstOfSeqWithDummy(beta, it.la, firstBuf)
		for _, np := range b.g.prodsByLhs[next] {
			for la := range firstBuf {
				ni := la1Item{item: item{prod: np.Index, dot: 0}, la: la}
				if !seen[ni] {
					seen[ni] = true
					out = append(out, ni)
					queue = append(queue, ni)
				}
			}
		}
	}
	return out
}

// firstOfSeqWithDummy is firstOfSeq that tolerates the dummy lookahead.
func (b *builder) firstOfSeqWithDummy(seq []Symbol, la Symbol, into map[Symbol]bool) {
	for _, s := range seq {
		for t := range b.fs.first[s] {
			into[t] = true
		}
		if !b.fs.nullable[s] {
			return
		}
	}
	into[la] = true
}

// computeLookaheads runs spontaneous generation and propagation.
func (b *builder) computeLookaheads(aug *Production) {
	type target struct {
		state int
		it    item
	}
	// propagation edges: source kernel item -> targets
	propag := make(map[target][]target)

	for _, st := range b.states {
		st.look = make(map[item]map[Symbol]bool, len(st.kernel))
		for _, k := range st.kernel {
			st.look[k] = make(map[Symbol]bool)
		}
	}
	// Seed: $end on the initial item.
	b.states[0].look[item{prod: aug.Index, dot: 0}][b.g.eof] = true

	for _, st := range b.states {
		for _, k := range st.kernel {
			src := target{state: st.index, it: k}
			for _, li := range b.closure1(la1Item{item: k, la: dummy}) {
				p := b.g.prods[li.prod]
				if li.dot >= len(p.Rhs) {
					continue
				}
				x := p.Rhs[li.dot]
				nextState, ok := st.trans[x]
				if !ok {
					continue
				}
				dst := target{state: nextState, it: item{prod: li.prod, dot: li.dot + 1}}
				if li.la == dummy {
					propag[src] = append(propag[src], dst)
				} else {
					b.states[nextState].look[dst.it][li.la] = true
				}
			}
		}
	}
	// Propagate to fixpoint.
	changed := true
	for changed {
		changed = false
		for src, dsts := range propag {
			srcSet := b.states[src.state].look[src.it]
			for _, dst := range dsts {
				dstSet := b.states[dst.state].look[dst.it]
				for la := range srcSet {
					if !dstSet[la] {
						dstSet[la] = true
						changed = true
					}
				}
			}
		}
	}
}

// reduceLookaheads returns, for a state, the lookaheads of each completed
// item (dot at end). Kernel items carry their LALR lookaheads directly;
// non-kernel completed items (empty productions) obtain theirs from one
// dummy-seeded closure per kernel item: a closure item with the dummy
// lookahead inherits every kernel lookahead, any other lookahead was
// generated spontaneously.
func (b *builder) reduceLookaheads(st *state) map[int]map[Symbol]bool {
	out := make(map[int]map[Symbol]bool)
	add := func(prod int, la Symbol) {
		if out[prod] == nil {
			out[prod] = make(map[Symbol]bool)
		}
		out[prod][la] = true
	}
	for _, k := range st.kernel {
		p := b.g.prods[k.prod]
		if k.dot == len(p.Rhs) {
			for la := range st.look[k] {
				add(k.prod, la)
			}
			continue
		}
		for _, li := range b.closure1(la1Item{item: k, la: dummy}) {
			lp := b.g.prods[li.prod]
			if li.dot != len(lp.Rhs) {
				continue
			}
			if li.la == dummy {
				for la := range st.look[k] {
					add(li.prod, la)
				}
				continue
			}
			add(li.prod, li.la)
		}
	}
	return out
}

// fillTable creates the action/goto tables with yacc-style conflict
// resolution.
func (b *builder) fillTable(aug *Production) (*Table, error) {
	g := b.g
	t := &Table{
		Grammar:    g,
		NumStates:  len(b.states),
		Actions:    make([][]Action, len(b.states)),
		Gotos:      make([][]int, len(b.states)),
		AcceptProd: aug.Index,
	}
	numSyms := len(g.names)
	for si, st := range b.states {
		t.Actions[si] = make([]Action, numSyms)
		t.Gotos[si] = make([]int, numSyms)
		for i := range t.Gotos[si] {
			t.Gotos[si][i] = -1
		}
		// Shifts and gotos.
		for x, next := range st.trans {
			if g.isTerminal[x] {
				t.Actions[si][x] = Action{Kind: ActionShift, Target: next}
			} else {
				t.Gotos[si][x] = next
			}
		}
		// Reduces (and accept).
		for prod, las := range b.reduceLookaheads(st) {
			for la := range las {
				if prod == aug.Index {
					continue // accept handled via the shift of $end below
				}
				red := Action{Kind: ActionReduce, Target: prod}
				cur := t.Actions[si][la]
				switch cur.Kind {
				case ActionError:
					t.Actions[si][la] = red
				case ActionShift:
					chosen, dropped, resolved := b.resolveSR(cur, red, la)
					t.Actions[si][la] = chosen
					if !resolved {
						t.Conflicts = append(t.Conflicts, Conflict{
							State: si, Terminal: la, Kind: "shift/reduce",
							Chosen: chosen, Dropped: dropped,
						})
					}
				case ActionReduce:
					// Reduce/reduce: keep the earlier production.
					chosen, dropped := cur, red
					if red.Target < cur.Target {
						chosen, dropped = red, cur
					}
					t.Actions[si][la] = chosen
					t.Conflicts = append(t.Conflicts, Conflict{
						State: si, Terminal: la, Kind: "reduce/reduce",
						Chosen: chosen, Dropped: dropped,
					})
				}
			}
		}
		// Accept: the augmented item $accept -> start · $end shifts $end;
		// replace that shift with accept.
		for _, k := range st.kernel {
			if k.prod == aug.Index && k.dot == 1 {
				t.Actions[si][g.eof] = Action{Kind: ActionAccept}
			}
		}
	}
	return t, nil
}

// resolveSR applies precedence and associativity to a shift/reduce
// conflict. resolved reports whether precedence information decided it (as
// opposed to the default shift).
func (b *builder) resolveSR(shift, reduce Action, terminal Symbol) (chosen, dropped Action, resolved bool) {
	g := b.g
	p := g.prods[reduce.Target]
	tPrec, tOK := g.prec[terminal]
	var pPrec int
	var pOK bool
	if p.Prec >= 0 {
		pPrec, pOK = g.prec[p.Prec]
	}
	if tOK && pOK {
		switch {
		case pPrec > tPrec:
			return reduce, shift, true
		case tPrec > pPrec:
			return shift, reduce, true
		default:
			switch g.assoc[terminal] {
			case AssocLeft:
				return reduce, shift, true
			case AssocRight:
				return shift, reduce, true
			case AssocNonassoc:
				return Action{Kind: ActionError}, shift, true
			}
		}
	}
	// Default: shift, reported as an unresolved conflict.
	return shift, reduce, false
}
