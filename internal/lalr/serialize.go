package lalr

import (
	"encoding/gob"
	"fmt"
	"io"
)

// Serialization: Bison's role in the paper includes emitting the parse
// tables as a compiled artifact; this file provides the same capability so
// embedders can cache generated tables (the C grammar's construction is the
// dominant startup cost) and tools can ship pre-built tables.
//
// The encoding captures everything needed to run the parser and to dispatch
// semantic actions: symbols, productions (including their labels, indices,
// and precedence terminals), precedence/associativity declarations, actions,
// and gotos. Semantic actions are linked to productions by index and label
// (package cgrammar keys its per-production annotations by index; package
// fmlr dispatches on Label), so decode reconstructs productions in their
// exact original order and the reader re-validates every action's
// production reference before returning a table.

// wireVersion guards against decoding tables written by an older or newer
// layout of wireTable; a mismatch is reported as corruption so callers
// rebuild instead of mis-parsing.
const wireVersion = 2

// wireTable is the gob-encoded form of a Table.
type wireTable struct {
	Version    int
	Names      []string
	IsTerminal []bool
	Start      Symbol
	Prods      []wireProd
	Prec       map[Symbol]int
	Assoc      map[Symbol]Assoc
	PrecLevel  int
	NumStates  int
	Actions    [][]Action
	Gotos      [][]int
	AcceptProd int
}

type wireProd struct {
	Lhs   Symbol
	Rhs   []Symbol
	Prec  Symbol
	Label string
}

// Encode serializes the table.
func (t *Table) Encode(w io.Writer) error {
	wt := wireTable{
		Version:    wireVersion,
		Names:      t.Grammar.names,
		IsTerminal: t.Grammar.isTerminal,
		Start:      t.Grammar.start,
		Prec:       t.Grammar.prec,
		Assoc:      t.Grammar.assoc,
		PrecLevel:  t.Grammar.precLevel,
		NumStates:  t.NumStates,
		Actions:    t.Actions,
		Gotos:      t.Gotos,
		AcceptProd: t.AcceptProd,
	}
	for _, p := range t.Grammar.prods {
		wt.Prods = append(wt.Prods, wireProd{Lhs: p.Lhs, Rhs: p.Rhs, Prec: p.Prec, Label: p.Label})
	}
	return gob.NewEncoder(w).Encode(&wt)
}

// ReadTable deserializes a table previously written with Encode. The
// reconstructed Grammar supports Lookup/Name/Productions and parsing, and
// preserves production order, labels, and precedence declarations, so
// production indices and labels — the linkage semantic actions dispatch on —
// are identical to the encoding grammar's. It does not support further rule
// additions.
func ReadTable(r io.Reader) (*Table, error) {
	var wt wireTable
	if err := gob.NewDecoder(r).Decode(&wt); err != nil {
		return nil, fmt.Errorf("lalr: decode table: %w", err)
	}
	if wt.Version != wireVersion {
		return nil, fmt.Errorf("lalr: table format version %d, want %d", wt.Version, wireVersion)
	}
	if len(wt.Names) != len(wt.IsTerminal) {
		return nil, fmt.Errorf("lalr: corrupt table: %d names, %d terminal flags",
			len(wt.Names), len(wt.IsTerminal))
	}
	g := &Grammar{
		names:      wt.Names,
		isTerminal: wt.IsTerminal,
		symIndex:   make(map[string]Symbol, len(wt.Names)),
		prodsByLhs: make(map[Symbol][]*Production),
		prec:       wt.Prec,
		assoc:      wt.Assoc,
		precLevel:  wt.PrecLevel,
		start:      wt.Start,
		hasStart:   true,
	}
	if g.prec == nil {
		g.prec = make(map[Symbol]int)
	}
	if g.assoc == nil {
		g.assoc = make(map[Symbol]Assoc)
	}
	for i, name := range wt.Names {
		g.symIndex[name] = Symbol(i)
	}
	eof, ok := g.symIndex[EOFName]
	if !ok {
		return nil, fmt.Errorf("lalr: corrupt table: missing %s", EOFName)
	}
	g.eof = eof
	nsyms := len(wt.Names)
	inRange := func(s Symbol) bool { return s >= 0 && int(s) < nsyms }
	for i, wp := range wt.Prods {
		if !inRange(wp.Lhs) {
			return nil, fmt.Errorf("lalr: corrupt table: production %d lhs out of range", i)
		}
		for _, r := range wp.Rhs {
			if !inRange(r) {
				return nil, fmt.Errorf("lalr: corrupt table: production %d rhs out of range", i)
			}
		}
		p := &Production{Index: i, Lhs: wp.Lhs, Rhs: wp.Rhs, Prec: wp.Prec, Label: wp.Label}
		g.prods = append(g.prods, p)
		g.prodsByLhs[p.Lhs] = append(g.prodsByLhs[p.Lhs], p)
	}
	if len(wt.Actions) != wt.NumStates || len(wt.Gotos) != wt.NumStates {
		return nil, fmt.Errorf("lalr: corrupt table: state count mismatch")
	}
	for s := 0; s < wt.NumStates; s++ {
		if len(wt.Actions[s]) != nsyms || len(wt.Gotos[s]) != nsyms {
			return nil, fmt.Errorf("lalr: corrupt table: row width mismatch in state %d", s)
		}
		// Re-validate the action/production linkage: a reduce action whose
		// production index is stale would run the wrong semantic action.
		for sym, act := range wt.Actions[s] {
			switch act.Kind {
			case ActionShift:
				if act.Target < 0 || act.Target >= wt.NumStates {
					return nil, fmt.Errorf("lalr: corrupt table: shift target out of range in state %d on %s", s, wt.Names[sym])
				}
			case ActionReduce:
				if act.Target < 0 || act.Target >= len(g.prods) {
					return nil, fmt.Errorf("lalr: corrupt table: reduce production out of range in state %d on %s", s, wt.Names[sym])
				}
			}
		}
	}
	if wt.AcceptProd < 0 || wt.AcceptProd >= len(g.prods) {
		return nil, fmt.Errorf("lalr: corrupt table: accept production %d out of range", wt.AcceptProd)
	}
	return &Table{
		Grammar:    g,
		NumStates:  wt.NumStates,
		Actions:    wt.Actions,
		Gotos:      wt.Gotos,
		AcceptProd: wt.AcceptProd,
	}, nil
}
