package lalr

import (
	"encoding/gob"
	"fmt"
	"io"
)

// Serialization: Bison's role in the paper includes emitting the parse
// tables as a compiled artifact; this file provides the same capability so
// embedders can cache generated tables (the C grammar's construction takes
// most of a second) and tools can ship pre-built tables.
//
// The encoding captures everything needed to run the parser: symbols,
// productions, actions, and gotos. The grammar's precedence tables are
// construction-time inputs and are not preserved.

// wireTable is the gob-encoded form of a Table.
type wireTable struct {
	Names      []string
	IsTerminal []bool
	Start      Symbol
	Prods      []wireProd
	NumStates  int
	Actions    [][]Action
	Gotos      [][]int
	AcceptProd int
}

type wireProd struct {
	Lhs   Symbol
	Rhs   []Symbol
	Prec  Symbol
	Label string
}

// Encode serializes the table.
func (t *Table) Encode(w io.Writer) error {
	wt := wireTable{
		Names:      t.Grammar.names,
		IsTerminal: t.Grammar.isTerminal,
		Start:      t.Grammar.start,
		NumStates:  t.NumStates,
		Actions:    t.Actions,
		Gotos:      t.Gotos,
		AcceptProd: t.AcceptProd,
	}
	for _, p := range t.Grammar.prods {
		wt.Prods = append(wt.Prods, wireProd{Lhs: p.Lhs, Rhs: p.Rhs, Prec: p.Prec, Label: p.Label})
	}
	return gob.NewEncoder(w).Encode(&wt)
}

// ReadTable deserializes a table previously written with WriteTo. The
// reconstructed Grammar supports Lookup/Name/Productions and parsing, but
// not further rule additions.
func ReadTable(r io.Reader) (*Table, error) {
	var wt wireTable
	if err := gob.NewDecoder(r).Decode(&wt); err != nil {
		return nil, fmt.Errorf("lalr: decode table: %w", err)
	}
	if len(wt.Names) != len(wt.IsTerminal) {
		return nil, fmt.Errorf("lalr: corrupt table: %d names, %d terminal flags",
			len(wt.Names), len(wt.IsTerminal))
	}
	g := &Grammar{
		names:      wt.Names,
		isTerminal: wt.IsTerminal,
		symIndex:   make(map[string]Symbol, len(wt.Names)),
		prodsByLhs: make(map[Symbol][]*Production),
		prec:       make(map[Symbol]int),
		assoc:      make(map[Symbol]Assoc),
		start:      wt.Start,
		hasStart:   true,
	}
	for i, name := range wt.Names {
		g.symIndex[name] = Symbol(i)
	}
	eof, ok := g.symIndex[EOFName]
	if !ok {
		return nil, fmt.Errorf("lalr: corrupt table: missing %s", EOFName)
	}
	g.eof = eof
	for i, wp := range wt.Prods {
		p := &Production{Index: i, Lhs: wp.Lhs, Rhs: wp.Rhs, Prec: wp.Prec, Label: wp.Label}
		g.prods = append(g.prods, p)
		g.prodsByLhs[p.Lhs] = append(g.prodsByLhs[p.Lhs], p)
	}
	nsyms := len(wt.Names)
	if len(wt.Actions) != wt.NumStates || len(wt.Gotos) != wt.NumStates {
		return nil, fmt.Errorf("lalr: corrupt table: state count mismatch")
	}
	for s := 0; s < wt.NumStates; s++ {
		if len(wt.Actions[s]) != nsyms || len(wt.Gotos[s]) != nsyms {
			return nil, fmt.Errorf("lalr: corrupt table: row width mismatch in state %d", s)
		}
	}
	return &Table{
		Grammar:    g,
		NumStates:  wt.NumStates,
		Actions:    wt.Actions,
		Gotos:      wt.Gotos,
		AcceptProd: wt.AcceptProd,
	}, nil
}
