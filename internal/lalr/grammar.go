// Package lalr implements an LALR(1) parser-table generator.
//
// The paper's SuperC reuses Bison-generated LALR tables and stresses that
// only the parser *engine* is new — FMLR works with standard LR tables
// (paper §4: "FMLR parsers can reuse existing LR grammars and parser table
// generators"). Go has no Bison equivalent in its standard ecosystem, so
// this package provides one: grammar definition, the canonical LR(0)
// collection, LALR(1) lookahead computation by spontaneous-generation and
// propagation (Aho et al., Algorithm 4.63), and yacc-style conflict
// resolution via precedence and associativity.
package lalr

import (
	"fmt"
	"io"
)

// Symbol identifies a grammar symbol. Terminals and nonterminals share one
// index space within a Grammar.
type Symbol int

// Assoc is an operator associativity class.
type Assoc uint8

// Associativity classes for precedence declarations.
const (
	AssocNone Assoc = iota
	AssocLeft
	AssocRight
	AssocNonassoc
)

// Production is one grammar rule LHS -> RHS.
type Production struct {
	Index int
	Lhs   Symbol
	Rhs   []Symbol
	// Prec is the terminal whose precedence governs this production in
	// shift/reduce conflicts (yacc %prec). Defaults to the last terminal in
	// Rhs; -1 when none.
	Prec Symbol
	// Label is a free-form name for diagnostics and semantic dispatch.
	Label string
}

// Grammar is a mutable grammar under construction. Declare terminals first,
// then rules; the left-hand side of the first rule is the start symbol
// unless SetStart is called.
type Grammar struct {
	names      []string
	isTerminal []bool
	symIndex   map[string]Symbol
	prods      []*Production
	prodsByLhs map[Symbol][]*Production
	start      Symbol
	hasStart   bool

	prec      map[Symbol]int
	assoc     map[Symbol]Assoc
	precLevel int

	eof Symbol
}

// EOFName is the reserved end-of-input terminal name.
const EOFName = "$end"

// NewGrammar returns an empty grammar with the reserved $end terminal.
func NewGrammar() *Grammar {
	g := &Grammar{
		symIndex:   make(map[string]Symbol),
		prodsByLhs: make(map[Symbol][]*Production),
		prec:       make(map[Symbol]int),
		assoc:      make(map[Symbol]Assoc),
		start:      -1,
	}
	g.eof = g.Terminal(EOFName)
	return g
}

// Terminal declares (or returns) a terminal symbol.
func (g *Grammar) Terminal(name string) Symbol {
	if s, ok := g.symIndex[name]; ok {
		if !g.isTerminal[s] {
			panic(fmt.Sprintf("lalr: %q already a nonterminal", name))
		}
		return s
	}
	return g.newSymbol(name, true)
}

// Nonterminal declares (or returns) a nonterminal symbol.
func (g *Grammar) Nonterminal(name string) Symbol {
	if s, ok := g.symIndex[name]; ok {
		if g.isTerminal[s] {
			panic(fmt.Sprintf("lalr: %q already a terminal", name))
		}
		return s
	}
	return g.newSymbol(name, false)
}

func (g *Grammar) newSymbol(name string, terminal bool) Symbol {
	s := Symbol(len(g.names))
	g.names = append(g.names, name)
	g.isTerminal = append(g.isTerminal, terminal)
	g.symIndex[name] = s
	return s
}

// Lookup returns the symbol with the given name, if declared.
func (g *Grammar) Lookup(name string) (Symbol, bool) {
	s, ok := g.symIndex[name]
	return s, ok
}

// Name returns a symbol's name.
func (g *Grammar) Name(s Symbol) string { return g.names[s] }

// IsTerminal reports whether s is a terminal.
func (g *Grammar) IsTerminal(s Symbol) bool { return g.isTerminal[s] }

// EOF returns the end-of-input terminal.
func (g *Grammar) EOF() Symbol { return g.eof }

// NumSymbols returns the total number of declared symbols.
func (g *Grammar) NumSymbols() int { return len(g.names) }

// Productions returns the production list (index order).
func (g *Grammar) Productions() []*Production { return g.prods }

// SetStart sets the start symbol explicitly.
func (g *Grammar) SetStart(name string) {
	g.start = g.Nonterminal(name)
	g.hasStart = true
}

// Start returns the start symbol (-1 when none is declared yet).
func (g *Grammar) Start() Symbol { return g.start }

// WriteSignature writes a canonical description of the grammar — symbols,
// productions, labels, and precedence declarations — everything that
// determines the generated table and its semantic-action linkage. Embedders
// hash it to fingerprint cached tables: any grammar change yields a new
// signature and therefore a new cache key.
func (g *Grammar) WriteSignature(w io.Writer) {
	fmt.Fprintf(w, "start %d\n", g.start)
	for i, name := range g.names {
		s := Symbol(i)
		fmt.Fprintf(w, "sym %d %q %v %d %d\n", i, name, g.isTerminal[i], g.prec[s], g.assoc[s])
	}
	for _, p := range g.prods {
		fmt.Fprintf(w, "prod %d %d %v %d %q\n", p.Index, p.Lhs, p.Rhs, p.Prec, p.Label)
	}
}

// Precedence declares a precedence level (higher = binds tighter) for the
// given terminals, mirroring yacc %left/%right/%nonassoc order of
// declaration.
func (g *Grammar) Precedence(a Assoc, terminals ...string) {
	g.precLevel++
	for _, name := range terminals {
		t := g.Terminal(name)
		g.prec[t] = g.precLevel
		g.assoc[t] = a
	}
}

// Rule adds a production LHS -> RHS. RHS names must already be declared as
// terminals or are implicitly nonterminals. It returns the production for
// further configuration.
func (g *Grammar) Rule(lhs string, rhs ...string) *Production {
	l := g.Nonterminal(lhs)
	if !g.hasStart && g.start == -1 {
		g.start = l
	}
	var syms []Symbol
	for _, name := range rhs {
		if s, ok := g.symIndex[name]; ok {
			syms = append(syms, s)
		} else {
			syms = append(syms, g.Nonterminal(name))
		}
	}
	p := &Production{
		Index: len(g.prods),
		Lhs:   l,
		Rhs:   syms,
		Prec:  g.defaultPrec(syms),
		Label: lhs,
	}
	g.prods = append(g.prods, p)
	g.prodsByLhs[l] = append(g.prodsByLhs[l], p)
	return p
}

// WithPrec overrides the production's precedence terminal (yacc %prec).
func (p *Production) WithPrec(g *Grammar, terminal string) *Production {
	p.Prec = g.Terminal(terminal)
	return p
}

// WithLabel sets the production's diagnostic/semantic label.
func (p *Production) WithLabel(label string) *Production {
	p.Label = label
	return p
}

func (g *Grammar) defaultPrec(rhs []Symbol) Symbol {
	for i := len(rhs) - 1; i >= 0; i-- {
		if g.isTerminal[rhs[i]] {
			return rhs[i]
		}
	}
	return -1
}

// String renders a production for diagnostics.
func (g *Grammar) ProdString(p *Production) string {
	s := g.Name(p.Lhs) + " ->"
	for _, r := range p.Rhs {
		s += " " + g.Name(r)
	}
	if len(p.Rhs) == 0 {
		s += " ε"
	}
	return s
}

// Validate checks that every nonterminal has at least one production and
// that a start symbol exists.
func (g *Grammar) Validate() error {
	if g.start < 0 {
		return fmt.Errorf("lalr: no start symbol")
	}
	for s, name := range g.names {
		if g.isTerminal[s] {
			continue
		}
		if len(g.prodsByLhs[Symbol(s)]) == 0 {
			return fmt.Errorf("lalr: nonterminal %q has no productions", name)
		}
	}
	return nil
}

// first computes FIRST sets for all symbols, plus nullability.
type firstSets struct {
	first    []map[Symbol]bool // per symbol: set of terminals
	nullable []bool
}

func (g *Grammar) computeFirst() *firstSets {
	n := len(g.names)
	fs := &firstSets{
		first:    make([]map[Symbol]bool, n),
		nullable: make([]bool, n),
	}
	for s := 0; s < n; s++ {
		fs.first[s] = make(map[Symbol]bool)
		if g.isTerminal[s] {
			fs.first[s][Symbol(s)] = true
		}
	}
	changed := true
	for changed {
		changed = false
		for _, p := range g.prods {
			lhsFirst := fs.first[p.Lhs]
			allNullable := true
			for _, r := range p.Rhs {
				for t := range fs.first[r] {
					if !lhsFirst[t] {
						lhsFirst[t] = true
						changed = true
					}
				}
				if !fs.nullable[r] {
					allNullable = false
					break
				}
			}
			if allNullable && !fs.nullable[p.Lhs] {
				fs.nullable[p.Lhs] = true
				changed = true
			}
		}
	}
	return fs
}

// firstOfSeq returns FIRST(seq · la): the terminals that can begin seq, plus
// la if seq is nullable.
func (fs *firstSets) firstOfSeq(seq []Symbol, la Symbol, into map[Symbol]bool) {
	for _, s := range seq {
		for t := range fs.first[s] {
			into[t] = true
		}
		if !fs.nullable[s] {
			return
		}
	}
	into[la] = true
}
