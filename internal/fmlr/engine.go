package fmlr

import (
	"container/heap"
	"fmt"
	"sort"

	"repro/internal/ast"
	"repro/internal/cgrammar"
	"repro/internal/cond"
	"repro/internal/lalr"
	"repro/internal/preprocessor"
	"repro/internal/symtab"
	"repro/internal/token"
)

// Options selects the forking strategy and optimizations (paper §4.2-4.4,
// Figure 8's optimization levels).
type Options struct {
	// FollowSet enables the token follow-set (Algorithm 3). When false the
	// engine forks a subparser per conditional branch — the MAPR baseline.
	FollowSet bool
	// LazyShifts delays forking of heads whose next action is a shift.
	LazyShifts bool
	// SharedReduces reduces one stack on behalf of several heads.
	SharedReduces bool
	// EarlyReduces prefers reducing subparsers over shifting ones at the
	// same head position.
	EarlyReduces bool
	// LargestFirst is MAPR's tie-breaker: prefer the subparser with the
	// deeper stack.
	LargestFirst bool
	// KillSwitch aborts the parse when the number of live subparsers
	// exceeds this bound (paper: 16,000). 0 means 16,000.
	KillSwitch int
	// NoChoiceMerge restricts merging to strictly redundant subparsers
	// (identical semantic values). SuperC merges differing values of
	// complete nonterminals under static choice nodes (§5.1); MAPR predates
	// that and can only merge truly redundant subparsers, which is what
	// makes the naive strategy explode on Figure 6-style code.
	NoChoiceMerge bool
}

// Standard optimization levels, named as in Figure 8a.
var (
	OptAll         = Options{FollowSet: true, LazyShifts: true, SharedReduces: true, EarlyReduces: true}
	OptSharedLazy  = Options{FollowSet: true, LazyShifts: true, SharedReduces: true}
	OptShared      = Options{FollowSet: true, SharedReduces: true}
	OptLazy        = Options{FollowSet: true, LazyShifts: true}
	OptFollowOnly  = Options{FollowSet: true}
	OptMAPR        = Options{NoChoiceMerge: true}
	OptMAPRLargest = Options{NoChoiceMerge: true, LargestFirst: true}
)

// Stats instruments one parse (Figure 8's subparser counts).
type Stats struct {
	Iterations    int
	MaxSubparsers int
	// SubparserHist maps a live-subparser count to the number of main-loop
	// iterations that observed it.
	SubparserHist map[int]int
	Forks         int
	Merges        int
	TypedefForks  int // forks forced by ambiguously-defined names
	Shifts        int
	Reduces       int
	Tokens        int
}

// Percentile returns the q-quantile (0..1) of the per-iteration subparser
// counts.
func (s *Stats) Percentile(q float64) int {
	total := 0
	keys := make([]int, 0, len(s.SubparserHist))
	for k, n := range s.SubparserHist {
		keys = append(keys, k)
		total += n
	}
	sort.Ints(keys)
	if total == 0 {
		return 0
	}
	want := int(q * float64(total))
	seen := 0
	for _, k := range keys {
		seen += s.SubparserHist[k]
		if seen > want {
			return k
		}
	}
	return keys[len(keys)-1]
}

// Diagnostic is a configuration-aware parse error.
type Diagnostic struct {
	Cond cond.Cond
	Tok  token.Token
	Msg  string
}

// Result is the outcome of a configuration-preserving parse.
type Result struct {
	AST    *ast.Node
	Stats  Stats
	Diags  []Diagnostic
	Killed bool // the kill switch tripped
}

// ErrKillSwitch is returned (inside Result.Killed) when the subparser
// population exceeded Options.KillSwitch.
var ErrKillSwitch = fmt.Errorf("fmlr: subparser kill switch tripped")

// stackNode is an immutable LR stack cell; stacks share tails across forks
// (paper §4: "representing the stack as a singly-linked list").
type stackNode struct {
	state int
	sym   lalr.Symbol
	val   *ast.Node
	next  *stackNode
	depth int
}

// subparser is one LR subparser (paper §4.1). A subparser is either
// *unresolved* — positioned at a token or conditional element el under
// condition c, before its follow-set is computed — or *resolved*, holding
// one or more token heads (multi-headed under lazy shifts/shared reduces).
type subparser struct {
	c      cond.Cond // total condition (OR of head conditions when resolved)
	el     *element  // unresolved position
	heads  []head    // resolved heads, ordered by document position
	stack  *stackNode
	tab    *symtab.Table
	ownTab bool // whether tab is exclusively ours (copy-on-write)
}

func (p *subparser) resolved() bool { return p.heads != nil }

func (p *subparser) ord() int {
	if p.resolved() {
		return p.heads[0].el.ord
	}
	return p.el.ord
}

// Engine runs FMLR parses over preprocessed token forests.
type Engine struct {
	space *cond.Space
	lang  *cgrammar.C
	opts  Options

	queue   pq
	byPos   map[*element][]*subparser // merge candidates keyed by position
	stats   Stats
	diags   []Diagnostic
	accepts []ast.Choice
	killed  bool
}

// New returns an engine for the given condition space, language, and
// options.
func New(space *cond.Space, lang *cgrammar.C, opts Options) *Engine {
	if opts.KillSwitch == 0 {
		opts.KillSwitch = 16000
	}
	return &Engine{space: space, lang: lang, opts: opts}
}

// Parse runs the FMLR algorithm (Algorithm 2) over a preprocessed unit.
func (e *Engine) Parse(segs []preprocessor.Segment, file string) *Result {
	first, ntokens := buildForest(segs, file)
	e.queue = pq{less: e.less}
	e.byPos = make(map[*element][]*subparser)
	e.stats = Stats{SubparserHist: make(map[int]int), Tokens: ntokens}
	e.diags = nil
	e.accepts = nil
	e.killed = false

	p0 := &subparser{
		c:      e.space.True(),
		el:     first,
		stack:  &stackNode{state: 0, sym: -1, depth: 0},
		tab:    symtab.New(e.space),
		ownTab: true,
	}
	e.insert(p0)

	for e.queue.Len() > 0 {
		e.stats.Iterations++
		n := e.queue.Len()
		e.stats.SubparserHist[n]++
		if n > e.stats.MaxSubparsers {
			e.stats.MaxSubparsers = n
		}
		if n > e.opts.KillSwitch {
			e.killed = true
			break
		}
		p := e.pop()
		if !p.resolved() {
			e.resolve(p)
			continue
		}
		e.step(p)
	}

	res := &Result{Stats: e.stats, Diags: e.diags, Killed: e.killed}
	switch len(e.accepts) {
	case 0:
	case 1:
		res.AST = e.accepts[0].Node
	default:
		res.AST = ast.NewChoice(e.accepts...)
	}
	return res
}

// pq is the subparser priority queue (a binary heap ordered by e.less).
type pq struct {
	items []*subparser
	less  func(a, b *subparser) bool
}

func (q *pq) Len() int           { return len(q.items) }
func (q *pq) Less(i, j int) bool { return q.less(q.items[i], q.items[j]) }
func (q *pq) Swap(i, j int)      { q.items[i], q.items[j] = q.items[j], q.items[i] }
func (q *pq) Push(x interface{}) { q.items = append(q.items, x.(*subparser)) }
func (q *pq) Pop() interface{} {
	n := len(q.items)
	it := q.items[n-1]
	q.items = q.items[:n-1]
	return it
}

// pop removes the highest-priority subparser: earliest head position, with
// the configured tie-breakers.
func (e *Engine) pop() *subparser {
	p := heap.Pop(&e.queue).(*subparser)
	e.unindex(p)
	return p
}

func (e *Engine) less(a, b *subparser) bool {
	ao, bo := a.ord(), b.ord()
	if ao != bo {
		return ao < bo
	}
	// Unresolved subparsers step first: resolving only computes the
	// follow-set, and letting a resolved subparser shift past a laggard at
	// the same position would forfeit the merge.
	if a.resolved() != b.resolved() {
		return !a.resolved()
	}
	if e.opts.EarlyReduces {
		ar, br := e.willReduce(a), e.willReduce(b)
		if ar != br {
			return ar
		}
	}
	if e.opts.LargestFirst {
		return a.stack.depth > b.stack.depth
	}
	return false
}

// willReduce reports whether the subparser's next LR action is a reduce
// (the early-reduces tie-breaker).
func (e *Engine) willReduce(p *subparser) bool {
	if !p.resolved() {
		return false
	}
	act := e.lang.Table.Actions[p.stack.state][p.heads[0].sym]
	return act.Kind == lalr.ActionReduce
}

// posKey returns the element keying merge candidates.
func (p *subparser) posKey() *element {
	if p.resolved() {
		return p.heads[0].el
	}
	return p.el
}

// mergeScanLimit bounds how many same-position candidates one insert
// examines; beyond it (reachable only when a naive strategy floods one
// position) merging degrades gracefully instead of going quadratic.
const mergeScanLimit = 64

// insert adds p to the queue, merging it into an equivalent subparser when
// possible (paper Figure 7's Merge).
func (e *Engine) insert(p *subparser) {
	key := p.posKey()
	candidates := e.byPos[key]
	if len(candidates) > mergeScanLimit {
		candidates = candidates[len(candidates)-mergeScanLimit:]
	}
	for _, q := range candidates {
		if merged := e.tryMerge(q, p); merged {
			e.stats.Merges++
			return
		}
	}
	heap.Push(&e.queue, p)
	e.byPos[key] = append(e.byPos[key], p)
}

func (e *Engine) unindex(p *subparser) {
	key := p.posKey()
	list := e.byPos[key]
	for i, q := range list {
		if q == p {
			e.byPos[key] = append(list[:i], list[i+1:]...)
			return
		}
	}
}

// resolve turns an unresolved subparser into resolved subparsers, via the
// token follow-set or MAPR's naive per-branch forking.
func (e *Engine) resolve(p *subparser) {
	if p.el.tok != nil {
		// Ordinary token: the follow-set is the singleton {(c, el)}.
		e.resolveHeads(p, []head{{cond: p.c, el: p.el}})
		return
	}
	if !e.opts.FollowSet {
		// MAPR: one subparser per branch, plus the implicit branch.
		covered := e.space.False()
		for _, br := range p.el.cnd.branches {
			covered = e.space.Or(covered, br.cond)
			bc := e.space.And(p.c, br.cond)
			if e.space.IsFalse(bc) {
				continue
			}
			pos := br.first
			if pos == nil {
				pos = after(p.el)
			}
			e.stats.Forks++
			e.insert(&subparser{c: bc, el: pos, stack: p.stack, tab: p.tab})
		}
		rest := e.space.And(p.c, e.space.Not(covered))
		if !e.space.IsFalse(rest) {
			if nxt := after(p.el); nxt != nil {
				e.stats.Forks++
				e.insert(&subparser{c: rest, el: nxt, stack: p.stack, tab: p.tab})
			}
		}
		return
	}
	T := e.follow(p.c, p.el)
	e.resolveHeads(p, T)
}

// resolveHeads classifies the heads' terminals (with typedef
// reclassification) and forks per the optimization level.
func (e *Engine) resolveHeads(p *subparser, T []head) {
	var heads []head
	for _, h := range T {
		heads = append(heads, e.reclassify(p, h)...)
	}
	e.fork(p, heads)
}

// reclassify applies the context plugin to one head: identifiers naming
// types become TYPEDEFNAME terminals; ambiguously-defined names split into
// both classifications, forcing a fork even without an explicit conditional
// (paper §5.2).
func (e *Engine) reclassify(p *subparser, h head) []head {
	if h.reclassified {
		return []head{h}
	}
	if h.el.tok.Kind == token.EOF {
		h.sym = e.lang.Grammar.EOF()
		h.reclassified = true
		return []head{h}
	}
	sym, ok := e.lang.Classify(*h.el.tok)
	if !ok {
		// Token invisible to the parser (e.g. __extension__): skip ahead.
		// Treat as a reduce-less advance: reposition past the token.
		// Simplest correct handling: classify as identifier.
		sym = e.lang.Identifier
	}
	h.sym = sym
	h.reclassified = true
	if sym != e.lang.Identifier {
		return []head{h}
	}
	cl := p.tab.Classify(h.el.tok.Text, h.cond)
	tdFalse := e.space.IsFalse(cl.TypedefCond)
	otherFalse := e.space.IsFalse(cl.OtherCond)
	switch {
	case tdFalse:
		return []head{h}
	case otherFalse:
		h.sym = e.lang.TypedefName
		return []head{h}
	default:
		// Ambiguously defined: both classifications are live.
		e.stats.TypedefForks++
		td := h
		td.cond = cl.TypedefCond
		td.sym = e.lang.TypedefName
		other := h
		other.cond = cl.OtherCond
		return []head{td, other}
	}
}

// fork creates subparsers for the heads per the optimization level (paper
// Figure 7b) and inserts them into the queue.
func (e *Engine) fork(p *subparser, heads []head) {
	if len(heads) == 0 {
		return
	}
	if len(heads) == 1 {
		q := &subparser{c: heads[0].cond, heads: heads, stack: p.stack, tab: p.tab, ownTab: p.ownTab}
		e.insert(q)
		return
	}
	if !e.opts.LazyShifts && !e.opts.SharedReduces {
		for _, h := range heads {
			e.stats.Forks++
			e.insert(&subparser{c: h.cond, heads: []head{h}, stack: p.stack, tab: p.tab})
		}
		return
	}
	var shiftGroup []head
	reduceGroups := make(map[int][]head)
	var singles []head
	for _, h := range heads {
		act := e.lang.Table.Actions[p.stack.state][h.sym]
		switch {
		case act.Kind == lalr.ActionShift && e.opts.LazyShifts:
			shiftGroup = append(shiftGroup, h)
		case act.Kind == lalr.ActionReduce && e.opts.SharedReduces:
			reduceGroups[act.Target] = append(reduceGroups[act.Target], h)
		case act.Kind == lalr.ActionError:
			e.parseError(h)
		default:
			singles = append(singles, h)
		}
	}
	emit := func(hs []head) {
		if len(hs) == 0 {
			return
		}
		sort.SliceStable(hs, func(i, j int) bool { return hs[i].el.ord < hs[j].el.ord })
		c := hs[0].cond
		for _, h := range hs[1:] {
			c = e.space.Or(c, h.cond)
		}
		e.stats.Forks++
		e.insert(&subparser{c: c, heads: hs, stack: p.stack, tab: p.tab})
	}
	emit(shiftGroup)
	// Deterministic order over reduce groups.
	prods := make([]int, 0, len(reduceGroups))
	for r := range reduceGroups {
		prods = append(prods, r)
	}
	sort.Ints(prods)
	for _, r := range prods {
		emit(reduceGroups[r])
	}
	for _, h := range singles {
		e.stats.Forks++
		e.insert(&subparser{c: h.cond, heads: []head{h}, stack: p.stack, tab: p.tab})
	}
}

// step performs one LR action on a resolved subparser (Algorithm 2 lines
// 6-8, generalized to multi-headed subparsers per §4.4).
func (e *Engine) step(p *subparser) {
	h := p.heads[0]
	act := e.lang.Table.Actions[p.stack.state][h.sym]
	switch act.Kind {
	case lalr.ActionShift:
		if len(p.heads) > 1 {
			// Fork off a single-headed subparser for the earliest head and
			// shift it; the rest stay lazy.
			e.stats.Forks++
			single := &subparser{c: h.cond, heads: []head{h}, stack: p.stack, tab: p.tab}
			e.shift(single, h, act.Target)
			rest := p.heads[1:]
			c := rest[0].cond
			for _, r := range rest[1:] {
				c = e.space.Or(c, r.cond)
			}
			e.insert(&subparser{c: c, heads: rest, stack: p.stack, tab: p.tab})
			return
		}
		e.shift(p, h, act.Target)
	case lalr.ActionReduce:
		e.reduce(p, act.Target)
		if len(p.heads) > 1 {
			// Shared reduce: actions may now differ per head; refork.
			e.fork(p, p.heads)
			return
		}
		e.insert(p)
	case lalr.ActionAccept:
		e.accept(p, h)
		// Remaining heads (if any) are impossible at EOF; drop them.
	default:
		e.parseError(h)
		if len(p.heads) > 1 {
			rest := p.heads[1:]
			c := rest[0].cond
			for _, r := range rest[1:] {
				c = e.space.Or(c, r.cond)
			}
			e.insert(&subparser{c: c, heads: rest, stack: p.stack, tab: p.tab})
		}
	}
}

// shift pushes the head's token and repositions the subparser after it.
func (e *Engine) shift(p *subparser, h head, target int) {
	e.stats.Shifts++
	var val *ast.Node
	if !e.lang.IsLayout(h.sym) {
		val = h.el.leafNode()
	}
	p.stack = &stackNode{state: target, sym: h.sym, val: val, next: p.stack, depth: p.stack.depth + 1}
	p.c = h.cond
	p.heads = nil
	p.el = after(h.el)
	if p.el == nil {
		return // EOF was shifted; accept happens via the table
	}
	e.insert(p)
}

func (e *Engine) accept(p *subparser, h head) {
	// The value under the EOF shift position: top of stack holds the start
	// symbol's value.
	e.accepts = append(e.accepts, ast.Choice{Cond: h.cond, Node: p.stack.val})
}

func (e *Engine) parseError(h head) {
	e.diags = append(e.diags, Diagnostic{
		Cond: h.cond,
		Tok:  *h.el.tok,
		Msg:  fmt.Sprintf("parse error on %s", h.el.tok),
	})
}

// tryMerge merges p into q when they have the same heads and compatible
// stacks (paper Figure 7a / §5.1's complete-nonterminal rule). Returns true
// when merged; q is updated in place (it is already queued).
func (e *Engine) tryMerge(q, p *subparser) bool {
	if q.resolved() != p.resolved() {
		return false
	}
	if q.resolved() {
		if len(q.heads) != len(p.heads) {
			return false
		}
		for i := range q.heads {
			if q.heads[i].el != p.heads[i].el || q.heads[i].sym != p.heads[i].sym {
				return false
			}
		}
	} else if q.el != p.el {
		return false
	}
	if !q.tab.MayMerge(p.tab) {
		return false
	}
	merged, ok := e.mergeStacks(q, p)
	if !ok {
		return false
	}
	// Merge conditions per head and overall.
	if q.resolved() {
		for i := range q.heads {
			q.heads[i].cond = e.space.Or(q.heads[i].cond, p.heads[i].cond)
		}
	}
	q.c = e.space.Or(q.c, p.c)
	q.stack = merged
	if q.tab != p.tab {
		q.tab = q.tab.Merge(p.tab)
		q.ownTab = true
	}
	return true
}

// mergeStacks verifies stack compatibility and builds the merged stack.
// Stacks are compatible when they have the same states and symbols and
// their semantic values agree, except that differing values of complete
// nonterminals combine under a static choice node.
func (e *Engine) mergeStacks(q, p *subparser) (*stackNode, bool) {
	if q.stack == p.stack {
		return q.stack, true
	}
	if q.stack.depth != p.stack.depth {
		return nil, false
	}
	// Walk until the shared tail; verify mergeability.
	// First pass: pure compatibility check, allocation-free (this runs for
	// every merge candidate; most fail).
	depth := 0
	a, b := q.stack, p.stack
	for a != b {
		if a.state != b.state || a.sym != b.sym {
			return nil, false
		}
		if a.val != b.val {
			// MAPR-mode merging requires strictly redundant subparsers.
			if e.opts.NoChoiceMerge {
				return nil, false
			}
			if !sameLeaf(a.val, b.val) && !e.lang.IsComplete(a.sym) {
				return nil, false
			}
		}
		depth++
		a, b = a.next, b.next
	}
	// Second pass: rebuild the divergent prefix with choice values.
	type frame struct{ a, b *stackNode }
	frames := make([]frame, depth)
	a, b = q.stack, p.stack
	for i := 0; i < depth; i++ {
		frames[i] = frame{a, b}
		a, b = a.next, b.next
	}
	merged := a
	for i := depth - 1; i >= 0; i-- {
		f := frames[i]
		val := f.a.val
		if f.a.val != f.b.val && !sameLeaf(f.a.val, f.b.val) {
			val = ast.NewChoice(
				ast.Choice{Cond: q.c, Node: f.a.val},
				ast.Choice{Cond: p.c, Node: f.b.val},
			)
		}
		merged = &stackNode{state: f.a.state, sym: f.a.sym, val: val, next: merged, depth: merged.depth + 1}
	}
	return merged, true
}

// sameLeaf reports whether two values are token leaves with identical text —
// e.g. the commas of different initializer-list entries. The paper achieves
// the same merge behaviour by annotating punctuation as layout (no value);
// keeping the leaves preserves source fidelity without blocking merges.
func sameLeaf(a, b *ast.Node) bool {
	return a != nil && b != nil &&
		a.Kind == ast.KindToken && b.Kind == ast.KindToken &&
		a.Tok.Kind == b.Tok.Kind && a.Tok.Text == b.Tok.Text
}
