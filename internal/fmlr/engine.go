package fmlr

import (
	"container/heap"
	"fmt"
	"runtime"
	"sort"

	"repro/internal/ast"
	"repro/internal/cgrammar"
	"repro/internal/cond"
	"repro/internal/guard"
	"repro/internal/guard/faultinject"
	"repro/internal/lalr"
	"repro/internal/preprocessor"
	"repro/internal/symtab"
	"repro/internal/token"
)

// Options selects the forking strategy and optimizations (paper §4.2-4.4,
// Figure 8's optimization levels).
type Options struct {
	// FollowSet enables the token follow-set (Algorithm 3). When false the
	// engine forks a subparser per conditional branch — the MAPR baseline.
	FollowSet bool
	// LazyShifts delays forking of heads whose next action is a shift.
	LazyShifts bool
	// SharedReduces reduces one stack on behalf of several heads.
	SharedReduces bool
	// EarlyReduces prefers reducing subparsers over shifting ones at the
	// same head position.
	EarlyReduces bool
	// LargestFirst is MAPR's tie-breaker: prefer the subparser with the
	// deeper stack.
	LargestFirst bool
	// KillSwitch aborts the parse when the number of live subparsers
	// exceeds this bound (paper: 16,000). 0 means 16,000.
	KillSwitch int
	// NoChoiceMerge restricts merging to strictly redundant subparsers
	// (identical semantic values). SuperC merges differing values of
	// complete nonterminals under static choice nodes (§5.1); MAPR predates
	// that and can only merge truly redundant subparsers, which is what
	// makes the naive strategy explode on Figure 6-style code.
	NoChoiceMerge bool
	// Budget, when non-nil, governs the parse (see internal/guard): the
	// live subparser population is observed against the budget's subparser
	// axis (subsuming KillSwitch), and any trip — including one inherited
	// from an earlier stage — degrades the parse to a partial AST with an
	// error node under the abandoned work's presence condition instead of
	// a nil AST.
	Budget *guard.Budget
	// ParseWorkers, when greater than 1, lets the engine split the unit at
	// balanced top-level declaration boundaries and run one sequential
	// subparser family per region concurrently over the shared condition
	// space, stitching the region ASTs back into the sequential result.
	// Admission and post-hoc validation are conservative: any region whose
	// stitched typedef context cannot be proven identical to the sequential
	// parse triggers a full sequential reparse, so the output is
	// byte-identical to ParseWorkers: 1 at any worker count. 0 and 1 mean
	// sequential.
	ParseWorkers int
	// NoStream disables the streaming fast path: ParseUnit materializes the
	// classic segment slab and runs the queue loop unconditionally. The two
	// paths are proven equivalent by the differential suite (stream_test.go);
	// this is the kill switch should a difference ever matter in the field.
	NoStream bool
}

// AutoWorkers is the "GOMAXPROCS-aware" intra-unit worker count the CLIs
// resolve a -parse-workers 0 to: one worker per processor, capped at 8 —
// past that the region count, not the processor count, bounds speedup.
func AutoWorkers() int {
	n := runtime.GOMAXPROCS(0)
	if n > 8 {
		n = 8
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Standard optimization levels, named as in Figure 8a.
var (
	OptAll         = Options{FollowSet: true, LazyShifts: true, SharedReduces: true, EarlyReduces: true}
	OptSharedLazy  = Options{FollowSet: true, LazyShifts: true, SharedReduces: true}
	OptShared      = Options{FollowSet: true, SharedReduces: true}
	OptLazy        = Options{FollowSet: true, LazyShifts: true}
	OptFollowOnly  = Options{FollowSet: true}
	OptMAPR        = Options{NoChoiceMerge: true}
	OptMAPRLargest = Options{NoChoiceMerge: true, LargestFirst: true}
)

// Stats instruments one parse (Figure 8's subparser counts).
type Stats struct {
	Iterations    int
	MaxSubparsers int
	// SubparserHist maps a live-subparser count to the number of main-loop
	// iterations that observed it.
	SubparserHist map[int]int
	Forks         int
	Merges        int
	TypedefForks  int // forks forced by ambiguously-defined names
	Shifts        int
	Reduces       int
	Tokens        int
	// Hot-path instrumentation: follow-set memo effectiveness and subparser
	// free-list reuse.
	FollowHits      int
	FollowMisses    int
	SubparserAllocs int
	SubparserReuses int
	// Streaming-pipeline flow counters (ParseUnit, stream.go): tokens
	// consumed straight off chunk runs with no forest element, tokens that
	// went through the materialized element path, and how often the fast
	// path handed a unit back to the queue loop mid-stream (a conditional
	// chunk or an ambiguously-defined name). The totals are deterministic
	// for a given ParseWorkers count, but the streamed/materialized split
	// shifts with region boundaries, so the differential suite compares
	// every other field and zeroes these three.
	TokensStreamed     int
	TokensMaterialized int
	StreamFallbacks    int
}

// Percentile returns the q-quantile (0..1) of the per-iteration subparser
// counts.
func (s *Stats) Percentile(q float64) int {
	total := 0
	keys := make([]int, 0, len(s.SubparserHist))
	for k, n := range s.SubparserHist {
		keys = append(keys, k)
		total += n
	}
	sort.Ints(keys)
	if total == 0 {
		return 0
	}
	want := int(q * float64(total))
	seen := 0
	for _, k := range keys {
		seen += s.SubparserHist[k]
		if seen > want {
			return k
		}
	}
	return keys[len(keys)-1]
}

// Diagnostic is a configuration-aware parse error.
type Diagnostic struct {
	Cond cond.Cond
	Tok  token.Token
	Msg  string
}

// Result is the outcome of a configuration-preserving parse.
type Result struct {
	AST    *ast.Node
	Stats  Stats
	Diags  []Diagnostic
	Killed bool // the kill switch tripped
}

// ErrKillSwitch is returned (inside Result.Killed) when the subparser
// population exceeded Options.KillSwitch.
var ErrKillSwitch = fmt.Errorf("fmlr: subparser kill switch tripped")

// stackNode is an immutable LR stack cell; stacks share tails across forks
// (paper §4: "representing the stack as a singly-linked list").
type stackNode struct {
	state int
	sym   lalr.Symbol
	val   *ast.Node
	next  *stackNode
	depth int
}

// subparser is one LR subparser (paper §4.1). A subparser is either
// *unresolved* — positioned at a token or conditional element el under
// condition c, before its follow-set is computed — or *resolved*, holding
// one or more token heads (multi-headed under lazy shifts/shared reduces).
type subparser struct {
	c      cond.Cond // total condition (OR of head conditions when resolved)
	el     *element  // unresolved position
	heads  []head    // resolved heads, ordered by document position
	stack  *stackNode
	tab    *symtab.Table
	ownTab bool    // whether tab is exclusively ours (copy-on-write)
	bkt    *bucket // merge bucket while queued
	slot   int     // index in bkt.items while queued
	hbuf   [1]head // inline storage for the dominant single-head case
}

func (p *subparser) resolved() bool { return p.heads != nil }

// setSingleHead points p at one resolved head using the inline buffer.
func (p *subparser) setSingleHead(h head) {
	p.hbuf[0] = h
	p.heads = p.hbuf[:1]
	p.el = nil
}

// adoptHeads copies hs (which may be scratch storage — it is never
// retained) into p, inline for a single head.
func (p *subparser) adoptHeads(hs []head) {
	if len(hs) == 1 {
		p.setSingleHead(hs[0])
		return
	}
	p.heads = append([]head(nil), hs...)
	p.el = nil
}

func (p *subparser) ord() int {
	if p.resolved() {
		return p.heads[0].el.ord
	}
	return p.el.ord
}

// Engine runs FMLR parses over preprocessed token forests.
type Engine struct {
	space *cond.Space
	lang  *cgrammar.C
	opts  Options

	queue      pq
	byPos      map[*element]*bucket // merge candidates keyed by position
	followMemo map[*element][]head  // condition-free follow-set templates
	sc         *parseScratch
	specSym    lalr.Symbol // cached "DeclarationSpecifiers" lookup
	specOK     bool
	stats      Stats
	diags      []Diagnostic
	accepts    []ast.Choice
	killed     bool

	// Region-parallel hooks (parallel.go). seed pre-populates the root
	// symbol table's file scope with typedef conditions guessed by the
	// lexical prescan; track records file-scope observations for the
	// post-hoc seed validation; acceptDepth is the accepting subparser's
	// scope depth (the parallel gate requires a balanced 1).
	seed        map[string]cond.Cond
	track       bool
	rootTab     *symtab.Table
	acceptDepth int

	// Streaming hooks (stream.go). stream is non-nil only while parseStream
	// runs; after() then materializes the next chunk instead of returning
	// nil at the forest's current top-level tail. fastStall marks an element
	// the fast path could not advance past (an ambiguously-defined name),
	// so the queue loop handles it before the fast path re-engages.
	stream    *streamState
	fastStall *element
}

// New returns an engine for the given condition space, language, and
// options.
func New(space *cond.Space, lang *cgrammar.C, opts Options) *Engine {
	if opts.KillSwitch == 0 {
		opts.KillSwitch = 16000
	}
	e := &Engine{space: space, lang: lang, opts: opts}
	e.specSym, e.specOK = lang.Grammar.Lookup("DeclarationSpecifiers")
	return e
}

// Parse runs the FMLR algorithm (Algorithm 2) over a preprocessed unit.
// With Options.ParseWorkers > 1 it first attempts the region-parallel
// strategy (parallel.go), falling back to the sequential parse whenever the
// unit does not split cleanly or the equivalence gate fails.
func (e *Engine) Parse(segs []preprocessor.Segment, file string) *Result {
	if e.opts.ParseWorkers > 1 {
		if res, ok := e.parseParallel(segs, nil, file); ok {
			return res
		}
	}
	return e.parseSeq(segs, file)
}

// parseSeq is the sequential FMLR parse: one priority queue of subparsers
// stepped in document order.
func (e *Engine) parseSeq(segs []preprocessor.Segment, file string) *Result {
	budget := e.opts.Budget
	faultinject.At(faultinject.PointParse, file, budget)
	e.acquireScratch()
	defer e.releaseScratch()
	first, ntokens := buildForest(segs, file)
	e.beginParse()
	e.stats = Stats{Tokens: ntokens, TokensMaterialized: ntokens}

	p0 := e.newSub()
	p0.c = e.space.True()
	p0.el = first
	p0.stack = e.pushNode(0, -1, nil, nil)
	p0.tab = e.newRootTab()
	p0.ownTab = true
	e.insert(p0)

	tripped := e.runLoop(budget)
	return e.finishParse(budget, tripped)
}

// beginParse wires the freshly acquired scratch block into the engine and
// clears the per-parse result state.
func (e *Engine) beginParse() {
	e.queue = pq{items: e.sc.qbuf[:0], less: e.less}
	e.byPos = e.sc.byPos
	e.followMemo = e.sc.followMemo
	e.diags = nil
	e.accepts = nil
	e.killed = false
	e.acceptDepth = 0
}

// runLoop is the main parse loop: pop the earliest subparser, resolve or
// step it, until the queue drains, the kill switch fires, or the budget
// trips. In streaming mode a lone unresolved subparser positioned at an
// ordinary token is handed to the fast path (stream.go), which steps tokens
// without queue traffic until variability reappears.
func (e *Engine) runLoop(budget *guard.Budget) (tripped bool) {
	for e.queue.Len() > 0 {
		if e.stream != nil && e.queue.Len() == 1 && e.opts.KillSwitch >= 1 {
			p := e.queue.items[0]
			if !p.resolved() && p.el != nil && p.el.tok != nil &&
				p.el.tok.Kind != token.EOF && p.el != e.fastStall {
				e.pop()
				if e.fastDrain(p, budget) {
					return true
				}
				continue
			}
		}
		if !budget.Tick("fmlr") {
			return true
		}
		e.stats.Iterations++
		n := e.queue.Len()
		// Histogram into a flat scratch counter; the map-shaped
		// Stats.SubparserHist is materialized once after the loop.
		if n >= len(e.sc.hist) {
			grown := make([]int, n+64)
			copy(grown, e.sc.hist)
			e.sc.hist = grown
		}
		e.sc.hist[n]++
		if n > e.stats.MaxSubparsers {
			e.stats.MaxSubparsers = n
		}
		if n > e.opts.KillSwitch {
			e.killed = true
			return false
		}
		if !budget.Observe("fmlr", guard.AxisSubparsers, int64(n)) {
			return true
		}
		p := e.pop()
		if !p.resolved() {
			e.resolve(p)
			continue
		}
		e.step(p)
	}
	return false
}

// finishParse converts the loop's end state into a Result: budget trips
// degrade into a partial AST, the flat histogram becomes the map-shaped
// stat, and the accepted alternatives combine into the unit's value.
func (e *Engine) finishParse(budget *guard.Budget, tripped bool) *Result {
	if tripped {
		e.degrade(budget)
	}
	e.stats.SubparserHist = make(map[int]int)
	for n, count := range e.sc.hist {
		if count != 0 {
			e.stats.SubparserHist[n] = count
		}
	}
	res := &Result{Stats: e.stats, Diags: e.diags, Killed: e.killed}
	switch len(e.accepts) {
	case 0:
	case 1:
		res.AST = e.accepts[0].Node
	default:
		res.AST = e.sc.ab.NewChoice(e.accepts...)
	}
	return res
}

// degrade converts a budget trip into graceful degradation: the subparsers
// still queued represent abandoned work; their conditions' disjunction is
// the presence condition under which the unit's parse is incomplete. An
// error node under that condition joins the accepted alternatives, so the
// unit yields a partial AST instead of nothing, and the trip diagnostic is
// annotated and mirrored into the parse diagnostics.
func (e *Engine) degrade(budget *guard.Budget) {
	d := budget.Trip()
	if d == nil {
		return
	}
	if d.Axis == guard.AxisSubparsers {
		// The budget's subparser axis subsumes the legacy kill switch;
		// report it through the same Killed flag so Figure 8 accounting
		// sees one population-explosion signal.
		e.killed = true
	}
	errCond := e.space.False()
	for _, p := range e.queue.items {
		errCond = e.space.Or(errCond, p.c)
	}
	if e.space.IsFalse(errCond) {
		errCond = e.space.True()
	}
	budget.Annotate(e.space.String(errCond),
		fmt.Sprintf("parse abandoned after %d iterations (%d shifts, peak %d subparsers)",
			e.stats.Iterations, e.stats.Shifts, e.stats.MaxSubparsers))
	e.diags = append(e.diags, Diagnostic{Cond: errCond, Msg: d.Error()})
	e.accepts = append(e.accepts, ast.Choice{Cond: errCond, Node: ast.Error(d.Error())})
}

// pushNode allocates a stack cell from the parse arena.
func (e *Engine) pushNode(state int, sym lalr.Symbol, val *ast.Node, next *stackNode) *stackNode {
	nd := e.sc.arena.alloc()
	nd.state = state
	nd.sym = sym
	nd.val = val
	nd.next = next
	if next != nil {
		nd.depth = next.depth + 1
	} else {
		nd.depth = 0
	}
	return nd
}

// pq is the subparser priority queue (a binary heap ordered by e.less).
type pq struct {
	items []*subparser
	less  func(a, b *subparser) bool
}

func (q *pq) Len() int           { return len(q.items) }
func (q *pq) Less(i, j int) bool { return q.less(q.items[i], q.items[j]) }
func (q *pq) Swap(i, j int)      { q.items[i], q.items[j] = q.items[j], q.items[i] }
func (q *pq) Push(x interface{}) { q.items = append(q.items, x.(*subparser)) }
func (q *pq) Pop() interface{} {
	n := len(q.items)
	it := q.items[n-1]
	q.items = q.items[:n-1]
	return it
}

// pop removes the highest-priority subparser: earliest head position, with
// the configured tie-breakers.
func (e *Engine) pop() *subparser {
	p := heap.Pop(&e.queue).(*subparser)
	e.unindex(p)
	return p
}

func (e *Engine) less(a, b *subparser) bool {
	ao, bo := a.ord(), b.ord()
	if ao != bo {
		return ao < bo
	}
	// Unresolved subparsers step first: resolving only computes the
	// follow-set, and letting a resolved subparser shift past a laggard at
	// the same position would forfeit the merge.
	if a.resolved() != b.resolved() {
		return !a.resolved()
	}
	if e.opts.EarlyReduces {
		ar, br := e.willReduce(a), e.willReduce(b)
		if ar != br {
			return ar
		}
	}
	if e.opts.LargestFirst {
		return a.stack.depth > b.stack.depth
	}
	return false
}

// willReduce reports whether the subparser's next LR action is a reduce
// (the early-reduces tie-breaker).
func (e *Engine) willReduce(p *subparser) bool {
	if !p.resolved() {
		return false
	}
	act := e.lang.Table.Actions[p.stack.state][p.heads[0].sym]
	return act.Kind == lalr.ActionReduce
}

// posKey returns the element keying merge candidates.
func (p *subparser) posKey() *element {
	if p.resolved() {
		return p.heads[0].el
	}
	return p.el
}

// mergeScanLimit bounds how many same-position candidates one insert
// examines; beyond it (reachable only when a naive strategy floods one
// position) merging degrades gracefully instead of going quadratic.
const mergeScanLimit = 64

// insert adds p to the queue, merging it into an equivalent subparser when
// possible (paper Figure 7's Merge). A merged p is recycled; the caller
// must not touch it after insert returns.
func (e *Engine) insert(p *subparser) {
	key := p.posKey()
	b := e.byPos[key]
	if b == nil {
		b = e.sc.newBucket()
		e.byPos[key] = b
	}
	// Scan the most recent mergeScanLimit live candidates, oldest first,
	// skipping unindex's tombstones.
	start := len(b.items)
	for i, live := len(b.items)-1, 0; i >= 0 && live < mergeScanLimit; i-- {
		if b.items[i] != nil {
			live++
		}
		start = i
	}
	for _, q := range b.items[start:] {
		if q == nil {
			continue
		}
		if e.tryMerge(q, p) {
			e.stats.Merges++
			e.freeSub(p)
			return
		}
	}
	heap.Push(&e.queue, p)
	p.bkt = b
	p.slot = len(b.items)
	b.items = append(b.items, p)
}

// unindex removes a popped subparser from its merge bucket in O(1) by
// tombstoning its recorded slot; buckets compact when tombstones dominate.
// (The previous ordered-removal implementation was the single hottest
// function in MAPR-mode profiles.)
func (e *Engine) unindex(p *subparser) {
	b := p.bkt
	if b == nil || p.slot >= len(b.items) || b.items[p.slot] != p {
		return
	}
	p.bkt = nil
	b.items[p.slot] = nil
	b.dead++
	if b.dead >= 16 && b.dead*2 > len(b.items) {
		live := b.items[:0]
		for _, q := range b.items {
			if q != nil {
				q.slot = len(live)
				live = append(live, q)
			}
		}
		clear(b.items[len(live):])
		b.items = live
		b.dead = 0
	}
}

// resolve turns an unresolved subparser into resolved subparsers, via the
// token follow-set or MAPR's naive per-branch forking.
func (e *Engine) resolve(p *subparser) {
	if p.el.tok != nil {
		// Ordinary token: the follow-set is the singleton {(c, el)}.
		e.sc.oneHead[0] = head{cond: p.c, el: p.el}
		e.resolveHeads(p, e.sc.oneHead[:])
		return
	}
	if !e.opts.FollowSet {
		// MAPR: one subparser per branch, plus the implicit branch. p is
		// recycled as the first forked subparser.
		c0, el0, stack, tab := p.c, p.el, p.stack, p.tab
		reused := false
		take := func() *subparser {
			if !reused {
				reused = true
				p.ownTab = false
				return p
			}
			q := e.newSub()
			q.stack = stack
			q.tab = tab
			return q
		}
		covered := e.space.False()
		for _, br := range el0.cnd.branches {
			covered = e.space.Or(covered, br.cond)
			bc := e.space.And(c0, br.cond)
			if e.space.IsFalse(bc) {
				continue
			}
			pos := br.first
			if pos == nil {
				pos = e.after(el0)
			}
			e.stats.Forks++
			q := take()
			q.c = bc
			q.el = pos
			e.insert(q)
		}
		rest := e.space.And(c0, e.space.Not(covered))
		if !e.space.IsFalse(rest) {
			if nxt := e.after(el0); nxt != nil {
				e.stats.Forks++
				q := take()
				q.c = rest
				q.el = nxt
				e.insert(q)
			}
		}
		if !reused {
			e.freeSub(p)
		}
		return
	}
	T := e.follow(p.c, p.el)
	e.resolveHeads(p, T)
}

// resolveHeads classifies the heads' terminals (with typedef
// reclassification) and forks per the optimization level.
func (e *Engine) resolveHeads(p *subparser, T []head) {
	sc := e.sc
	sc.headsBuf = sc.headsBuf[:0]
	for _, h := range T {
		sc.headsBuf = e.reclassify(p, h, sc.headsBuf)
	}
	e.fork(p, sc.headsBuf)
}

// reclassify applies the context plugin to one head: identifiers naming
// types become TYPEDEFNAME terminals; ambiguously-defined names split into
// both classifications, forcing a fork even without an explicit conditional
// (paper §5.2).
// reclassify appends the head's classification(s) to dst and returns it;
// appending into the caller's scratch keeps the per-token path free of the
// single-element slices it used to allocate.
func (e *Engine) reclassify(p *subparser, h head, dst []head) []head {
	if h.reclassified {
		return append(dst, h)
	}
	if h.el.tok.Kind == token.EOF {
		h.sym = e.lang.Grammar.EOF()
		h.reclassified = true
		return append(dst, h)
	}
	if !h.el.clsSet {
		h.el.cls, h.el.clsOK = e.lang.Classify(*h.el.tok)
		h.el.clsSet = true
	}
	sym, ok := h.el.cls, h.el.clsOK
	if !ok {
		// Token invisible to the parser (e.g. __extension__): skip ahead.
		// Treat as a reduce-less advance: reposition past the token.
		// Simplest correct handling: classify as identifier.
		sym = e.lang.Identifier
	}
	h.sym = sym
	h.reclassified = true
	if sym != e.lang.Identifier {
		return append(dst, h)
	}
	cl := p.tab.Classify(h.el.tok.Text, h.cond)
	tdFalse := e.space.IsFalse(cl.TypedefCond)
	otherFalse := e.space.IsFalse(cl.OtherCond)
	switch {
	case tdFalse:
		return append(dst, h)
	case otherFalse:
		h.sym = e.lang.TypedefName
		return append(dst, h)
	default:
		// Ambiguously defined: both classifications are live.
		e.stats.TypedefForks++
		td := h
		td.cond = cl.TypedefCond
		td.sym = e.lang.TypedefName
		other := h
		other.cond = cl.OtherCond
		return append(dst, td, other)
	}
}

// fork creates subparsers for the heads per the optimization level (paper
// Figure 7b) and inserts them into the queue. fork owns p: it is recycled
// as the first emitted subparser (or freed when nothing is emitted). heads
// may be scratch storage; emitted subparsers copy what they keep.
func (e *Engine) fork(p *subparser, heads []head) {
	if len(heads) == 0 {
		e.freeSub(p)
		return
	}
	if len(heads) == 1 {
		// Single head: p carries on with its tab ownership intact.
		p.c = heads[0].cond
		p.adoptHeads(heads)
		e.insert(p)
		return
	}
	stack, tab := p.stack, p.tab
	reused := false
	take := func() *subparser {
		if !reused {
			// The emitted subparsers share tab, so none owns it.
			reused = true
			p.ownTab = false
			return p
		}
		q := e.newSub()
		q.stack = stack
		q.tab = tab
		return q
	}
	if !e.opts.LazyShifts && !e.opts.SharedReduces {
		for _, h := range heads {
			e.stats.Forks++
			q := take()
			q.c = h.cond
			q.setSingleHead(h)
			e.insert(q)
		}
		return
	}
	sc := e.sc
	sc.shiftBuf = sc.shiftBuf[:0]
	sc.singleBuf = sc.singleBuf[:0]
	sc.prodBuf = sc.prodBuf[:0]
	acts := e.lang.Table.Actions[stack.state]
	for _, h := range heads {
		act := acts[h.sym]
		switch {
		case act.Kind == lalr.ActionShift && e.opts.LazyShifts:
			sc.shiftBuf = append(sc.shiftBuf, h)
		case act.Kind == lalr.ActionReduce && e.opts.SharedReduces:
			seen := false
			for _, r := range sc.prodBuf {
				if r == act.Target {
					seen = true
					break
				}
			}
			if !seen {
				sc.prodBuf = append(sc.prodBuf, act.Target)
			}
		case act.Kind == lalr.ActionError:
			e.parseError(h)
		default:
			sc.singleBuf = append(sc.singleBuf, h)
		}
	}
	emit := func(hs []head) {
		if len(hs) == 0 {
			return
		}
		sortHeadsByOrd(hs)
		c := hs[0].cond
		for _, h := range hs[1:] {
			c = e.space.Or(c, h.cond)
		}
		e.stats.Forks++
		q := take()
		q.c = c
		q.adoptHeads(hs)
		e.insert(q)
	}
	emit(sc.shiftBuf)
	// Deterministic order over reduce groups.
	sort.Ints(sc.prodBuf)
	for _, r := range sc.prodBuf {
		sc.groupBuf = sc.groupBuf[:0]
		for _, h := range heads {
			if act := acts[h.sym]; act.Kind == lalr.ActionReduce && act.Target == r {
				sc.groupBuf = append(sc.groupBuf, h)
			}
		}
		emit(sc.groupBuf)
	}
	for _, h := range sc.singleBuf {
		e.stats.Forks++
		q := take()
		q.c = h.cond
		q.setSingleHead(h)
		e.insert(q)
	}
	if !reused {
		e.freeSub(p)
	}
}

// step performs one LR action on a resolved subparser (Algorithm 2 lines
// 6-8, generalized to multi-headed subparsers per §4.4).
func (e *Engine) step(p *subparser) {
	h := p.heads[0]
	act := e.lang.Table.Actions[p.stack.state][h.sym]
	switch act.Kind {
	case lalr.ActionShift:
		if len(p.heads) > 1 {
			// Fork off a single-headed subparser for the earliest head and
			// shift it; the rest stay lazy, carried on by p itself.
			e.stats.Forks++
			single := e.newSub()
			single.c = h.cond
			single.setSingleHead(h)
			single.stack = p.stack
			single.tab = p.tab
			rest := p.heads[1:]
			c := rest[0].cond
			for _, r := range rest[1:] {
				c = e.space.Or(c, r.cond)
			}
			p.c = c
			p.heads = rest
			p.ownTab = false
			e.shift(single, h, act.Target)
			e.insert(p)
			return
		}
		e.shift(p, h, act.Target)
	case lalr.ActionReduce:
		e.reduce(p, act.Target)
		if len(p.heads) > 1 {
			// Shared reduce: actions may now differ per head; refork.
			e.fork(p, p.heads)
			return
		}
		e.insert(p)
	case lalr.ActionAccept:
		e.accept(p, h)
		// Remaining heads (if any) are impossible at EOF; drop them.
		e.freeSub(p)
	default:
		e.parseError(h)
		if len(p.heads) > 1 {
			rest := p.heads[1:]
			c := rest[0].cond
			for _, r := range rest[1:] {
				c = e.space.Or(c, r.cond)
			}
			p.c = c
			p.heads = rest
			p.ownTab = false
			e.insert(p)
			return
		}
		e.freeSub(p)
	}
}

// shift pushes the head's token and repositions the subparser after it.
func (e *Engine) shift(p *subparser, h head, target int) {
	e.stats.Shifts++
	var val *ast.Node
	if !e.lang.IsLayout(h.sym) {
		val = h.el.leafNode(&e.sc.ab)
	}
	p.stack = e.pushNode(target, h.sym, val, p.stack)
	p.c = h.cond
	p.heads = nil
	p.el = e.after(h.el)
	if p.el == nil {
		// EOF was shifted; accept happens via the table.
		e.freeSub(p)
		return
	}
	e.insert(p)
}

func (e *Engine) accept(p *subparser, h head) {
	// The value under the EOF shift position: top of stack holds the start
	// symbol's value.
	e.accepts = append(e.accepts, ast.Choice{Cond: h.cond, Node: p.stack.val})
	e.acceptDepth = p.tab.Depth()
}

// newRootTab builds the initial subparser's symbol table, applying the
// region-parallel seed and tracking hooks when set.
func (e *Engine) newRootTab() *symtab.Table {
	var tab *symtab.Table
	if e.seed != nil {
		tab = symtab.NewSeeded(e.space, e.seed)
	} else {
		tab = symtab.New(e.space)
	}
	if e.track {
		tab.Track()
	}
	e.rootTab = tab
	return tab
}

func (e *Engine) parseError(h head) {
	e.diags = append(e.diags, Diagnostic{
		Cond: h.cond,
		Tok:  *h.el.tok,
		Msg:  fmt.Sprintf("parse error on %s", h.el.tok),
	})
}

// tryMerge merges p into q when they have the same heads and compatible
// stacks (paper Figure 7a / §5.1's complete-nonterminal rule). Returns true
// when merged; q is updated in place (it is already queued).
func (e *Engine) tryMerge(q, p *subparser) bool {
	if q.resolved() != p.resolved() {
		return false
	}
	if q.resolved() {
		if len(q.heads) != len(p.heads) {
			return false
		}
		for i := range q.heads {
			if q.heads[i].el != p.heads[i].el || q.heads[i].sym != p.heads[i].sym {
				return false
			}
		}
	} else if q.el != p.el {
		return false
	}
	if !q.tab.MayMerge(p.tab) {
		return false
	}
	merged, ok := e.mergeStacks(q, p)
	if !ok {
		return false
	}
	// Merge conditions per head and overall.
	if q.resolved() {
		for i := range q.heads {
			q.heads[i].cond = e.space.Or(q.heads[i].cond, p.heads[i].cond)
		}
	}
	q.c = e.space.Or(q.c, p.c)
	q.stack = merged
	if q.tab != p.tab {
		q.tab = q.tab.Merge(p.tab)
		q.ownTab = true
	}
	return true
}

// mergeStacks verifies stack compatibility and builds the merged stack.
// Stacks are compatible when they have the same states and symbols and
// their semantic values agree, except that differing values of complete
// nonterminals combine under a static choice node.
func (e *Engine) mergeStacks(q, p *subparser) (*stackNode, bool) {
	if q.stack == p.stack {
		return q.stack, true
	}
	if q.stack.depth != p.stack.depth {
		return nil, false
	}
	// Walk until the shared tail; verify mergeability.
	// First pass: pure compatibility check, allocation-free (this runs for
	// every merge candidate; most fail).
	depth := 0
	a, b := q.stack, p.stack
	for a != b {
		if a.state != b.state || a.sym != b.sym {
			return nil, false
		}
		if a.val != b.val {
			// MAPR-mode merging requires strictly redundant subparsers.
			if e.opts.NoChoiceMerge {
				return nil, false
			}
			if !sameLeaf(a.val, b.val) && !e.lang.IsComplete(a.sym) {
				return nil, false
			}
		}
		depth++
		a, b = a.next, b.next
	}
	// Second pass: rebuild the divergent prefix with choice values.
	sc := e.sc
	sc.frameA = sc.frameA[:0]
	sc.frameB = sc.frameB[:0]
	a, b = q.stack, p.stack
	for i := 0; i < depth; i++ {
		sc.frameA = append(sc.frameA, a)
		sc.frameB = append(sc.frameB, b)
		a, b = a.next, b.next
	}
	merged := a
	for i := depth - 1; i >= 0; i-- {
		fa, fb := sc.frameA[i], sc.frameB[i]
		val := fa.val
		if fa.val != fb.val && !sameLeaf(fa.val, fb.val) {
			val = e.sc.ab.NewChoice(
				ast.Choice{Cond: q.c, Node: fa.val},
				ast.Choice{Cond: p.c, Node: fb.val},
			)
		}
		merged = e.pushNode(fa.state, fa.sym, val, merged)
	}
	return merged, true
}

// sameLeaf reports whether two values are token leaves with identical text —
// e.g. the commas of different initializer-list entries. The paper achieves
// the same merge behaviour by annotating punctuation as layout (no value);
// keeping the leaves preserves source fidelity without blocking merges.
func sameLeaf(a, b *ast.Node) bool {
	return a != nil && b != nil &&
		a.Kind == ast.KindToken && b.Kind == ast.KindToken &&
		a.Tok.Kind == b.Tok.Kind && a.Tok.Text == b.Tok.Text
}
