package fmlr

import (
	"repro/internal/ast"
	"repro/internal/cgrammar"
	"repro/internal/cond"
)

// reduce pops one production's right-hand side, builds the semantic value
// per the grammar's AST annotations (paper §5.1), applies context effects
// (scopes and typedef registration, §5.2), and pushes the goto state.
func (e *Engine) reduce(p *subparser, prodIdx int) {
	e.stats.Reduces++
	prod := e.lang.Grammar.Productions()[prodIdx]
	var info cgrammar.ProdInfo
	if prodIdx < len(e.lang.Info) {
		info = e.lang.Info[prodIdx]
	}
	n := len(prod.Rhs)
	// Scratch buffer: ast.New / ast.List copy the children they keep, so
	// vals never escapes the reduction.
	if cap(e.sc.valsBuf) < n {
		e.sc.valsBuf = make([]*ast.Node, n+8)
	}
	vals := e.sc.valsBuf[:n]
	st := p.stack
	for i := n - 1; i >= 0; i-- {
		vals[i] = st.val
		st = st.next
	}
	next := e.lang.Table.Gotos[st.state][prod.Lhs]
	if next < 0 {
		// Table invariant violation; treat as parse failure for this
		// subparser by leaving the stack unusable. Should not happen.
		return
	}
	var val *ast.Node
	switch info.Ann {
	case cgrammar.AnnPassthrough:
		var sole *ast.Node
		count := 0
		for _, v := range vals {
			if v != nil {
				sole = v
				count++
			}
		}
		if count == 1 {
			val = sole
		} else {
			val = e.sc.ab.New(prod.Label, vals...)
		}
	case cgrammar.AnnList:
		val = e.sc.ab.List(prod.Label, vals...)
	default:
		val = e.sc.ab.New(prod.Label, vals...)
	}

	switch {
	case info.PushScope:
		e.ensureOwnTab(p)
		p.tab.EnterScope()
	case info.PopScope:
		e.ensureOwnTab(p)
		p.tab.ExitScope()
	case info.RegistersTypedef:
		e.registerInitDeclarator(p, val, st)
	}

	p.stack = e.pushNode(next, prod.Lhs, val, st)
}

func (e *Engine) ensureOwnTab(p *subparser) {
	if !p.ownTab {
		p.tab = p.tab.Clone()
		p.ownTab = true
	}
}

// registerInitDeclarator updates the symbol table when an init-declarator
// reduces: names declared with the typedef storage class become typedef
// names, other declared names become objects (shadowing any typedef
// meaning). Registration happens at the InitDeclarator reduction — before
// the token after the declarator is classified — mirroring the timing of
// the classic lexer hack. The declaration's specifiers sit below the
// popped right-hand side on the stack: either directly (first declarator)
// or under "InitDeclaratorList ," (subsequent ones). All registrations are
// configuration-aware: a name inside a static choice node registers only
// under the alternatives' conditions.
func (e *Engine) registerInitDeclarator(p *subparser, declarator *ast.Node, below *stackNode) {
	if declarator == nil {
		return
	}
	base := p.c
	// Locate the enclosing DeclarationSpecifiers value.
	specSym, ok := e.specSym, e.specOK
	if !ok {
		return
	}
	var specs *ast.Node
	st := below
	for hops := 0; st != nil && hops < 4; hops, st = hops+1, st.next {
		if st.sym == specSym {
			specs = st.val
			break
		}
	}
	if specs == nil {
		return
	}
	tdCond := e.condsOfLeaf(specs, "typedef", base)
	names := e.declaratorNames(declarator, base)
	if len(names) == 0 {
		return
	}
	e.ensureOwnTab(p)
	for _, nc := range names {
		asTypedef := e.space.And(nc.cond, tdCond)
		asObject := e.space.AndNot(nc.cond, tdCond)
		if !e.space.IsFalse(asTypedef) {
			p.tab.DefineTypedef(nc.name, asTypedef)
		}
		if !e.space.IsFalse(asObject) {
			p.tab.DefineObject(nc.name, asObject)
		}
	}
}

// condsOfLeaf returns the disjunction of conditions under which a leaf with
// the given text occurs beneath n.
func (e *Engine) condsOfLeaf(n *ast.Node, text string, base cond.Cond) cond.Cond {
	s := e.space
	result := s.False()
	var walk func(m *ast.Node, c cond.Cond)
	walk = func(m *ast.Node, c cond.Cond) {
		if m == nil || s.IsFalse(c) {
			return
		}
		switch m.Kind {
		case ast.KindToken:
			if m.Tok.Text == text {
				result = s.Or(result, c)
			}
		case ast.KindChoice:
			for _, a := range m.Alts {
				walk(a.Node, s.And(c, a.Cond))
			}
		default:
			for _, ch := range m.Children {
				walk(ch, c)
			}
		}
	}
	walk(n, base)
	return result
}

type nameCond struct {
	name string
	cond cond.Cond
}

// declaratorNames collects the identifiers declared by an
// init-declarator-list value, tracking choice-node conditions. Declarator
// structure bottoms out at IdentifierDeclarator nodes whose sole child is
// the name leaf.
func (e *Engine) declaratorNames(n *ast.Node, base cond.Cond) []nameCond {
	s := e.space
	var out []nameCond
	var walk func(m *ast.Node, c cond.Cond)
	walk = func(m *ast.Node, c cond.Cond) {
		if m == nil || s.IsFalse(c) {
			return
		}
		switch m.Kind {
		case ast.KindChoice:
			for _, a := range m.Alts {
				walk(a.Node, s.And(c, a.Cond))
			}
			return
		case ast.KindToken:
			return
		}
		if m.Label == "IdentifierDeclarator" && len(m.Children) == 1 && m.Children[0].Kind == ast.KindToken {
			out = append(out, nameCond{name: m.Children[0].Tok.Text, cond: c})
			return
		}
		// Do not descend into initializers: "int x = y" declares only x.
		// Initializer values appear under InitializedDeclarator's second
		// child; the declarator itself is the first.
		if m.Label == "InitializedDeclarator" && len(m.Children) > 0 {
			walk(m.Children[0], c)
			return
		}
		// Descend only through the declarator spine: function parameters
		// and array sizes do not declare names in the enclosing scope.
		if (m.Label == "FunctionDeclarator" || m.Label == "ArrayDeclarator") && len(m.Children) > 0 {
			walk(m.Children[0], c)
			return
		}
		for _, ch := range m.Children {
			walk(ch, c)
		}
	}
	walk(n, base)
	return out
}
