package fmlr

import (
	"sync"
	"sync/atomic"

	"repro/internal/ast"
	"repro/internal/cgrammar"
	"repro/internal/cond"
	"repro/internal/preprocessor"
	"repro/internal/symtab"
)

// This file is the region-parallel parse coordinator. The unit is split at
// balanced top-level declaration boundaries (split.go); each region is then
// parsed by its own sequential FMLR engine on its own goroutine, all
// sharing the unit's condition space, BDD factory, and resource budget —
// which is why those layers are concurrency-safe. The region results are
// joined in region order and stitched into exactly the AST the sequential
// engine would have produced.
//
// Equivalence is not assumed, it is enforced:
//
//   - Admission: only ModeBDD spaces (canonical conditions make node
//     identity transfer across engines) and only budgets without count-based
//     ceilings (count ceilings trip at interleaving-dependent moments, and
//     degradation must stay deterministic).
//   - Gate: every region must parse cleanly — exactly one accepted
//     subparser, under the True condition, at scope depth one, with no
//     diagnostics, no kill-switch trip, and no budget trip.
//   - Seam validation: each region parsed against typedef seeds guessed by
//     the lexical prescan; afterwards the coordinator replays the preceding
//     regions' recorded file-scope definitions and proves each region's
//     seeds equal (as BDD nodes) to the true typedef conditions at its
//     start. Any mismatch discards the parallel attempt.
//
// On any failure the caller falls back to the sequential engine, so the
// observable result is byte-identical to ParseWorkers: 1 at every worker
// count; concurrency can only change how fast the answer arrives.

// parseParallel attempts the region-parallel strategy. ok is false when the
// unit is inadmissible, does not split, or fails the equivalence gate; the
// caller then runs the sequential parse. A non-nil chunks (the unit's
// streaming form, covering exactly segs) makes each region parse through
// the streaming fast path; the split itself always works on segments.
func (e *Engine) parseParallel(segs []preprocessor.Segment, chunks []preprocessor.Chunk, file string) (*Result, bool) {
	if e.space.Mode() != cond.ModeBDD {
		return nil, false
	}
	budget := e.opts.Budget
	if budget.Tripped() {
		return nil, false
	}
	if lim := budget.Limits(); lim.Tokens > 0 || lim.MacroSteps > 0 ||
		lim.Hoist > 0 || lim.BDDNodes > 0 || lim.Subparsers > 0 {
		return nil, false
	}
	regions, ok := splitRegions(e.space, segs, e.opts.ParseWorkers)
	if !ok {
		return nil, false
	}
	if chunks != nil {
		splitChunksAt(regions, chunks)
	}

	ropts := e.opts
	ropts.ParseWorkers = 0
	workers := e.opts.ParseWorkers
	if workers > len(regions) {
		workers = len(regions)
	}
	subs := make([]*Engine, len(regions))
	results := make([]*Result, len(regions))
	panics := make([]any, len(regions))
	var next int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(regions) {
					return
				}
				runRegion(e.space, e.lang, ropts, regions[i], file, &subs[i], &results[i], &panics[i])
			}
		}()
	}
	wg.Wait()

	// A panicking region (fault injection fires per engine) is re-raised by
	// the sequential fallback on the caller's goroutine, where the
	// harness's panic barrier can see it — exactly as in sequential mode.
	for i := range regions {
		if panics[i] != nil {
			return nil, false
		}
	}
	if budget.Tripped() {
		return nil, false
	}
	for i, r := range results {
		if r == nil || r.Killed || len(r.Diags) > 0 || len(subs[i].accepts) != 1 ||
			!e.space.IsTrue(subs[i].accepts[0].Cond) || subs[i].acceptDepth != 1 {
			return nil, false
		}
	}

	// Seam validation, in region order: replay the file-scope definitions
	// of regions 0..k-1 and prove region k's guessed seeds identical to the
	// true typedef conditions at its start. Region parses are only trusted
	// once every seed they ran under is proven, so the induction is sound:
	// region 0 runs from the true initial state, and a validated region's
	// definitions equal the sequential parse's.
	truth := map[string]cond.Cond{}
	for k := 1; k < len(regions); k++ {
		applyFileDefs(e.space, truth, subs[k-1].rootTab.FileDefs())
		if !seedsMatch(e.space, truth, regions[k].seed, subs[k].rootTab.Touched()) {
			return nil, false
		}
	}

	st := &stitcher{}
	acc := subs[0].accepts[0].Node
	for k := 1; k < len(regions); k++ {
		acc = st.join(acc, subs[k].accepts[0].Node)
	}
	return &Result{AST: acc, Stats: mergeRegionStats(results)}, true
}

// runRegion parses one region with a fresh sequential engine, capturing any
// panic so a fault injected into a worker goroutine degrades into the
// sequential fallback instead of killing the process.
func runRegion(space *cond.Space, lang *cgrammar.C, opts Options, rg region, file string, sub **Engine, res **Result, panicked *any) {
	defer func() {
		if r := recover(); r != nil {
			*panicked = r
		}
	}()
	s := New(space, lang, opts)
	s.seed = rg.seed
	s.track = true
	*sub = s
	if rg.chunks != nil {
		*res = s.parseStream(preprocessor.NewChunkSource(rg.chunks), file)
	} else {
		*res = s.parseSeq(rg.segs, file)
	}
}

// applyFileDefs replays recorded file-scope definitions onto the typedef
// truth map, mirroring symtab.DefineTypedef/DefineObject's evolution of the
// typedef condition: a typedef definition disjoins its condition, an object
// definition shadows (subtracts) it. Map presence mirrors entry existence.
func applyFileDefs(space *cond.Space, truth map[string]cond.Cond, defs []symtab.FileDef) {
	for _, d := range defs {
		cur, ok := truth[d.Name]
		switch {
		case d.Typedef && ok:
			truth[d.Name] = space.Or(cur, d.Cond)
		case d.Typedef:
			truth[d.Name] = d.Cond
		case ok:
			truth[d.Name] = space.AndNot(cur, d.Cond)
		default:
			truth[d.Name] = space.False()
		}
	}
}

// seedsMatch proves one region's guessed seeds correct: for every name the
// region ever classified, the guessed typedef condition must equal the true
// one (absence on either side meaning False). Classify consults nothing
// else at file scope, so agreement here makes the region parse identical to
// the sequential parse of the same suffix.
func seedsMatch(space *cond.Space, truth, seed map[string]cond.Cond, touched map[string]bool) bool {
	f := space.False()
	for name := range touched {
		want, ok := truth[name]
		if !ok {
			want = f
		}
		got, ok := seed[name]
		if !ok {
			got = f
		}
		if !space.Equal(want, got) {
			return false
		}
	}
	return true
}

// spineLabel is the label of the translation unit's top-level list — the
// "spine" the regions are stitched along.
const spineLabel = "ExternalDeclarationList"

// stitcher joins region ASTs into the value the sequential parse builds.
//
// The subtlety is that a merge of top-level conditional branches captures
// the *entire accumulated list prefix* inside its choice node: sequentially
// the alternatives read List(prefix…, branchDecls…), but a region engine,
// which started from an empty list, produced only List(localPrefix…,
// branchDecls…). join therefore grafts the accumulated kids into every
// leftmost-spine position of the region's value: lists whose head is a
// spine choice recurse into it, other lists are prepended directly, and
// choices graft each alternative. A memo keeps the transform linear and
// preserves the DAG sharing the merges created.
type stitcher struct {
	ab   ast.Builder
	memo map[*ast.Node]*ast.Node
}

// join appends one region's translation-unit value onto the accumulated
// value, returning the combined value.
func (st *stitcher) join(acc, local *ast.Node) *ast.Node {
	st.memo = make(map[*ast.Node]*ast.Node)
	return st.graft(local, st.splice(acc))
}

// splice flattens the accumulated value into list kids, exactly as the
// builder's List splices a same-label list argument.
func (st *stitcher) splice(acc *ast.Node) []*ast.Node {
	if acc.Kind == ast.KindList && acc.Label == spineLabel {
		return acc.Children
	}
	return []*ast.Node{acc}
}

// graft prepends pre at every leftmost-spine position of n.
func (st *stitcher) graft(n *ast.Node, pre []*ast.Node) *ast.Node {
	if out, ok := st.memo[n]; ok {
		return out
	}
	var out *ast.Node
	switch {
	case n.Kind == ast.KindList && n.Label == spineLabel:
		kids := n.Children
		if len(kids) > 0 && kids[0].Kind == ast.KindChoice {
			// The head choice is a spine merge that captured the region's
			// local prefix; the prefix goes inside it, not before it.
			args := make([]*ast.Node, 0, len(kids))
			args = append(args, st.graft(kids[0], pre))
			args = append(args, kids[1:]...)
			out = st.ab.List(spineLabel, args...)
		} else {
			args := make([]*ast.Node, 0, len(pre)+len(kids))
			args = append(args, pre...)
			args = append(args, kids...)
			out = st.ab.List(spineLabel, args...)
		}
	case n.Kind == ast.KindChoice:
		alts := make([]ast.Choice, len(n.Alts))
		for i, a := range n.Alts {
			kid := a.Node
			if kid == nil {
				// The region contributes nothing under this alternative; the
				// spine there is just the accumulated prefix.
				alts[i] = ast.Choice{Cond: a.Cond, Node: st.ab.List(spineLabel, pre...)}
				continue
			}
			alts[i] = ast.Choice{Cond: a.Cond, Node: st.graft(kid, pre)}
		}
		out = st.ab.NewChoice(alts...)
	default:
		// A bare declaration: the region's value when it holds exactly one.
		args := make([]*ast.Node, 0, len(pre)+1)
		args = append(args, pre...)
		args = append(args, n)
		out = st.ab.List(spineLabel, args...)
	}
	st.memo[n] = out
	return out
}

// mergeRegionStats combines per-region parse statistics into exactly the
// sequential parse's numbers. Sums are exact for every content-driven
// counter; the only correction is the per-region end-of-input tail, which
// is structurally constant: each non-final region resolves its synthetic
// EOF (1 iteration), reduces TranslationUnit (1 iteration, 1 reduce), and
// accepts (1 iteration), all with a single live subparser — work the
// sequential parse performs exactly once, at the true end of input. The
// subparser alloc/reuse split depends on scratch-pool state and is summed
// as-is (it is a cache diagnostic, not a parse property — already true
// sequentially, where pool state carries across units).
func mergeRegionStats(rs []*Result) Stats {
	m := Stats{SubparserHist: make(map[int]int)}
	for _, r := range rs {
		s := &r.Stats
		m.Iterations += s.Iterations
		if s.MaxSubparsers > m.MaxSubparsers {
			m.MaxSubparsers = s.MaxSubparsers
		}
		for n, c := range s.SubparserHist {
			m.SubparserHist[n] += c
		}
		m.Forks += s.Forks
		m.Merges += s.Merges
		m.TypedefForks += s.TypedefForks
		m.Shifts += s.Shifts
		m.Reduces += s.Reduces
		m.Tokens += s.Tokens
		m.FollowHits += s.FollowHits
		m.FollowMisses += s.FollowMisses
		m.SubparserAllocs += s.SubparserAllocs
		m.SubparserReuses += s.SubparserReuses
		m.TokensStreamed += s.TokensStreamed
		m.TokensMaterialized += s.TokensMaterialized
		m.StreamFallbacks += s.StreamFallbacks
	}
	seams := len(rs) - 1
	m.Iterations -= 3 * seams
	m.Reduces -= seams
	m.SubparserHist[1] -= 3 * seams
	if m.SubparserHist[1] <= 0 {
		delete(m.SubparserHist, 1)
	}
	return m
}
