package fmlr

import (
	"strings"
	"testing"

	"repro/internal/cgrammar"
	"repro/internal/cond"
	"repro/internal/preprocessor"
)

// FuzzBlockSplit fuzzes the region splitter's invariants on arbitrary
// source text:
//
//  1. Structure: the chosen regions partition the unit's top-level segments
//     contiguously, every non-final region ends on a top-level ";" or "}"
//     token, and no region is empty.
//  2. Equivalence: parsing with the region-parallel strategy (workers=4)
//     yields exactly the sequential AST, diagnostics, and kill flag —
//     whether the split is admitted or the engine falls back.
//
// The corpus seeds include the shapes that broke earlier drafts: array
// initializers whose closing brace tempts a mid-declaration cut, typedefs
// straddling conditional boundaries, and conditional typedefs shadowed by
// object declarations.
func FuzzBlockSplit(f *testing.F) {
	f.Add("int x;\n")
	f.Add(genUnit(1, 60))
	f.Add(genUnit(2, 40))
	// Array initializer: "}" here is mid-declaration; cutting after it once
	// produced a region missing its trailing ";".
	f.Add("static long a[3] = { 1, 2 };\nint f(void)\n{\n\treturn 0;\n}\n" +
		strings.Repeat("int fill(int a)\n{\n\treturn a;\n}\nstatic long q[2] = { 3, 4 };\n", 30))
	// Typedef straddling a conditional: the prescan must poison, not guess.
	f.Add("#ifdef A\ntypedef int\n#else\ntypedef long\n#endif\nw_t;\nw_t w;\n" +
		strings.Repeat("int pad(void)\n{\n\treturn 1;\n}\n", 40))
	// Conditional typedef plus shadowing object definition.
	f.Add("typedef int sh;\n#ifdef A\nint sh;\n#endif\n" +
		strings.Repeat("#ifdef B\ntypedef int ct;\n#else\ntypedef long ct;\n#endif\nct u;\n", 25))
	// Struct-shaped braces: "}" closing a struct body is mid-declaration.
	f.Add(strings.Repeat("struct S { int a; int b; };\nint g(void)\n{\n\treturn 2;\n}\n", 30))

	lang := cgrammar.MustLoad()
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<13 {
			return
		}
		s := cond.NewSpace(cond.ModeBDD)
		p := preprocessor.New(preprocessor.Options{Space: s, FS: preprocessor.MapFS(map[string]string{"main.c": src})})
		u, err := p.Preprocess("main.c")
		if err != nil {
			return
		}
		segs := u.Segments

		// Invariant 1: structural soundness of any split the splitter offers.
		if regions, ok := splitRegions(s, segs, 4); ok {
			if len(regions) < 2 {
				t.Fatalf("split claimed ok with %d regions", len(regions))
			}
			total := 0
			for ri, rg := range regions {
				if len(rg.segs) == 0 {
					t.Fatalf("region %d is empty", ri)
				}
				total += len(rg.segs)
				if ri == len(regions)-1 {
					continue
				}
				last := rg.segs[len(rg.segs)-1]
				if !last.IsToken() || !(last.Tok.Is(";") || last.Tok.Is("}")) {
					t.Fatalf("region %d ends on %v, not a top-level ';' or '}'", ri, last)
				}
				if regions[ri].seed == nil && ri > 0 {
					t.Fatalf("region %d has no seed snapshot", ri)
				}
			}
			if total != len(segs) {
				t.Fatalf("regions cover %d of %d segments", total, len(segs))
			}
		}

		// Invariant 2: split-then-stitch equals the unsplit parse.
		seq := New(s, lang, OptAll).Parse(segs, "main.c")
		popts := OptAll
		popts.ParseWorkers = 4
		s2 := cond.NewSpace(cond.ModeBDD)
		p2 := preprocessor.New(preprocessor.Options{Space: s2, FS: preprocessor.MapFS(map[string]string{"main.c": src})})
		u2, err := p2.Preprocess("main.c")
		if err != nil {
			t.Fatalf("second preprocess disagrees: %v", err)
		}
		par := New(s2, lang, popts).Parse(u2.Segments, "main.c")
		if !sameAST(s, seq, s2, par) {
			t.Fatal("parallel AST diverges from sequential")
		}
		if len(par.Diags) != len(seq.Diags) || par.Killed != seq.Killed {
			t.Fatalf("diags/killed diverge: %d/%v vs %d/%v",
				len(par.Diags), par.Killed, len(seq.Diags), seq.Killed)
		}
	})
}
