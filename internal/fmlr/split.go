package fmlr

import (
	"repro/internal/cond"
	"repro/internal/preprocessor"
	"repro/internal/token"
)

// This file is the region splitter behind the region-parallel parse
// (parallel.go): a lexical pass over the unit's top-level segments that
// finds cut points where the unit can be sliced into independently
// parseable regions, and prescans the typedef declarations so each region's
// symbol table can be seeded with the names in scope at its start.
//
// Both jobs are conservative approximations backed by hard checks
// elsewhere: a missed cut merely costs parallelism, and a wrong typedef
// seed is caught by the coordinator's post-parse seed validation, which
// falls back to the sequential engine. The splitter's own invariants — a
// cut only after a top-level ';' or '}' with braces, parens, and brackets
// all balanced, and only when the following region completes a declaration
// before its first conditional — are what make the region parses
// structurally identical to the sequential parse (the fuzz target
// FuzzBlockSplit checks them directly).

// region is one slice of the unit's top-level segments plus the typedef
// conditions lexically in scope at its start (nil for the first region).
// When the unit arrived as a chunk stream, chunks holds the same slice of
// the input in chunk form (splitChunksAt) and the region parses through the
// streaming fast path instead of the segment slab.
type region struct {
	segs   []preprocessor.Segment
	chunks []preprocessor.Chunk
	seed   map[string]cond.Cond
}

// minRegionTokens is the smallest region worth a goroutine; below it the
// per-region EOF bookkeeping and seam validation dominate the parse.
const minRegionTokens = 128

// cutPoint marks a legal region boundary between segs[after] and
// segs[after+1].
type cutPoint struct {
	after  int // cut after this top-level segment index
	weight int // tokens in segs[:after+1], counting all conditional branches
}

// typedefEvent is one prescanned file-scope typedef name, in document order.
type typedefEvent struct {
	seg  int // top-level segment index of the declaration's end
	name string
	c    cond.Cond // presence condition of the declaration
}

// typedefScan is the lexical typedef recognizer: a small state machine that
// walks tokens at file scope and extracts the declared names of complete
// typedef declarations. It deliberately recognizes only the common shapes
// (plain declarators, comma lists, arrays, and (*name) function pointers);
// anything else is simply not seeded and, if the name matters, the seam
// validation catches the omission.
type typedefScan struct {
	brace, paren, bracket int
	active                bool     // inside "typedef ... ;" at file scope
	pend                  string   // identifier awaiting a declarator-ending token
	star                  bool     // previous token was "*"
	names                 []string // candidates of the open declaration
}

// balanced reports whether every bracket kind is closed.
func (m *typedefScan) balanced() bool {
	return m.brace == 0 && m.paren == 0 && m.bracket == 0
}

// tok advances the machine by one token, returning the completed
// declaration's names (nil normally) when the token closes a typedef.
func (m *typedefScan) tok(t *token.Token) (done []string) {
	if t.Kind == token.Punct {
		switch t.Text {
		case "{":
			m.brace++
		case "}":
			m.brace--
		case "(":
			m.paren++
		case ")":
			m.paren--
		case "[":
			m.bracket++
		case "]":
			m.bracket--
		}
	}
	if !m.active {
		if m.balanced() && t.IsIdent("typedef") {
			m.active = true
			m.pend = ""
			m.star = false
			m.names = nil
		}
		return nil
	}
	// A pending identifier is a declared name when a declarator-ending
	// token follows it. "(" is deliberately not an ending token: in
	// "typedef u32 (*fn)(void)" the identifier before "(" is the *type*,
	// and misreading it would corrupt an otherwise-correct seed.
	if t.Kind == token.Punct && (t.Text == ";" || t.Text == "," || t.Text == "[") && m.pend != "" {
		m.names = append(m.names, m.pend)
	}
	if m.brace == 0 && m.bracket == 0 && t.Kind == token.Identifier {
		switch {
		case m.paren == 0:
			m.pend = t.Text
		case m.paren == 1 && m.star:
			// Function-pointer declarator: typedef int (*name)(...).
			m.names = append(m.names, t.Text)
			m.pend = ""
		default:
			m.pend = ""
		}
	} else {
		m.pend = ""
	}
	m.star = t.Is("*")
	if m.balanced() && t.Is(";") {
		m.active = false
		return m.names
	}
	return nil
}

// depthDelta is the brace/paren/bracket displacement of a segment run.
type depthDelta struct{ brace, paren, bracket int }

// scanBranch walks one conditional branch's segments with a copy of the
// enclosing typedef machine, collecting typedef events under path and
// returning the branch's depth displacement. ok is false when the branch is
// unanalyzable: a typedef crossing its boundary, or a nested conditional
// whose branches displace depth unequally.
func scanBranch(space *cond.Space, segs []preprocessor.Segment, m typedefScan, path cond.Cond, topSeg int, events *[]typedefEvent) (depthDelta, bool) {
	base := depthDelta{m.brace, m.paren, m.bracket}
	for _, sg := range segs {
		if sg.IsToken() {
			for _, n := range m.tok(sg.Tok) {
				*events = append(*events, typedefEvent{seg: topSeg, name: n, c: path})
			}
			continue
		}
		d, ok := scanCond(space, sg, m, path, topSeg, events)
		if !ok {
			return depthDelta{}, false
		}
		m.brace += d.brace
		m.paren += d.paren
		m.bracket += d.bracket
	}
	if m.active {
		return depthDelta{}, false
	}
	return depthDelta{m.brace - base.brace, m.paren - base.paren, m.bracket - base.bracket}, true
}

// scanCond analyzes one conditional segment: every reachable branch must
// displace depth identically, and by zero when the branches do not cover
// every configuration (the implicit else contributes nothing).
func scanCond(space *cond.Space, sg preprocessor.Segment, m typedefScan, path cond.Cond, topSeg int, events *[]typedefEvent) (depthDelta, bool) {
	if m.active {
		// A typedef declaration straddling a conditional is beyond the
		// lexical prescan.
		return depthDelta{}, false
	}
	var delta depthDelta
	first := true
	covered := space.False()
	for _, br := range sg.Cond.Branches {
		covered = space.Or(covered, br.Cond)
		bp := space.And(path, br.Cond)
		if space.IsFalse(bp) {
			continue
		}
		d, ok := scanBranch(space, br.Segs, m, bp, topSeg, events)
		if !ok {
			return depthDelta{}, false
		}
		if first {
			delta = d
			first = false
		} else if d != delta {
			return depthDelta{}, false
		}
	}
	if !space.IsFalse(space.AndNot(path, covered)) && delta != (depthDelta{}) {
		// The implicit else branch is reachable and displaces nothing, so
		// the explicit branches must not either.
		return depthDelta{}, false
	}
	return delta, true
}

// splitRegions slices the unit into up to 4*want token-balanced regions.
// Over-decomposing relative to the worker count both evens out the
// work-stealing schedule (region parse times vary with conditional density)
// and shortens each region's top-level list spine, whose reduce-time splice
// cost grows with list length. ok is false when the unit yields fewer than
// two regions worth parsing concurrently.
func splitRegions(space *cond.Space, segs []preprocessor.Segment, want int) ([]region, bool) {
	total := preprocessor.CountTokens(segs)
	if want < 2 || total < 2*minRegionTokens {
		return nil, false
	}
	targetRegions := 4 * want
	if max := total / minRegionTokens; targetRegions > max {
		targetRegions = max
	}
	if targetRegions < 2 {
		return nil, false
	}

	// One pass: track depth, run the typedef machine, and collect candidate
	// cuts and typedef events until the walk poisons (an unanalyzable
	// conditional stops further cutting but does not fail the unit — the
	// remainder simply becomes part of the final region).
	var (
		m        typedefScan
		cuts     []cutPoint
		events   []typedefEvent
		weight   int
		prevText string
		funcBody bool
	)
	condAt := make([]bool, len(segs))
	for i, sg := range segs {
		if sg.IsToken() {
			tk := sg.Tok
			// A top-level "{" opens a function body exactly when it follows
			// ")" (parameter list or trailing attribute); otherwise it is an
			// initializer or a struct/union/enum body, whose closing "}" sits
			// mid-declaration and must not become a cut.
			if tk.Is("{") && m.balanced() {
				funcBody = prevText == ")"
			}
			weight++
			for _, n := range m.tok(tk) {
				events = append(events, typedefEvent{seg: i, name: n, c: space.True()})
			}
			if !m.active && m.balanced() && i < len(segs)-1 &&
				(tk.Is(";") || (tk.Is("}") && funcBody)) {
				cuts = append(cuts, cutPoint{after: i, weight: weight})
			}
			prevText = tk.Text
			continue
		}
		// A conditional between ")" and "{" hides the function-body signal;
		// resetting the lookbehind merely forfeits that cut.
		prevText = ""
		condAt[i] = true
		weight += preprocessor.CountTokens(segs[i : i+1])
		d, ok := scanCond(space, sg, m, space.True(), i, &events)
		if !ok {
			break
		}
		m.brace += d.brace
		m.paren += d.paren
		m.bracket += d.bracket
	}
	if len(cuts) == 0 {
		return nil, false
	}

	// A cut is a legal region start only when the next region completes a
	// declaration before its first top-level conditional; otherwise the
	// region's first branch merge happens at a different stack depth than
	// in the sequential parse and the stitched choice shapes diverge.
	firstCondAfter := make([]int, len(segs)+1)
	firstCondAfter[len(segs)] = len(segs)
	for i := len(segs) - 1; i >= 0; i-- {
		if condAt[i] {
			firstCondAfter[i] = i
		} else {
			firstCondAfter[i] = firstCondAfter[i+1]
		}
	}
	valid := make([]cutPoint, 0, len(cuts))
	for k, c := range cuts {
		nextCond := firstCondAfter[c.after+1]
		nextComp := len(segs)
		if k+1 < len(cuts) {
			nextComp = cuts[k+1].after
		}
		if nextCond == len(segs) || nextComp < nextCond {
			valid = append(valid, c)
		}
	}
	if len(valid) == 0 {
		return nil, false
	}

	// Token-balanced selection: the cut nearest each multiple of
	// total/targetRegions, keeping regions at least half the minimum size.
	var chosen []cutPoint
	vi := 0
	lastWeight := 0
	for k := 1; k < targetRegions; k++ {
		target := total * k / targetRegions
		for vi < len(valid) && valid[vi].weight < target {
			vi++
		}
		var best cutPoint
		switch {
		case vi == 0:
			best = valid[0]
		case vi == len(valid):
			best = valid[len(valid)-1]
		default:
			lo, hi := valid[vi-1], valid[vi]
			if target-lo.weight <= hi.weight-target {
				best = lo
			} else {
				best = hi
			}
		}
		if len(chosen) > 0 && best.after <= chosen[len(chosen)-1].after {
			continue
		}
		if best.weight-lastWeight < minRegionTokens/2 || total-best.weight < minRegionTokens/2 {
			continue
		}
		chosen = append(chosen, best)
		lastWeight = best.weight
	}
	if len(chosen) == 0 {
		return nil, false
	}

	// Materialize regions, attaching to each the typedef seeds accumulated
	// from every event at or before its start.
	regions := make([]region, 0, len(chosen)+1)
	seeds := map[string]cond.Cond{}
	ev := 0
	start := 0
	for _, c := range chosen {
		regions = append(regions, region{segs: segs[start : c.after+1], seed: snapshotSeeds(seeds, start)})
		for ev < len(events) && events[ev].seg <= c.after {
			e := events[ev]
			if cur, ok := seeds[e.name]; ok {
				seeds[e.name] = space.Or(cur, e.c)
			} else {
				seeds[e.name] = e.c
			}
			ev++
		}
		start = c.after + 1
	}
	regions = append(regions, region{segs: segs[start:], seed: snapshotSeeds(seeds, start)})
	return regions, true
}

// splitChunksAt re-slices the unit's chunk list along the segment
// boundaries splitRegions chose, attaching to each region the chunk form of
// exactly its segment slice. A conditional chunk covers one top-level
// segment and a run of n tokens covers n, so boundaries map exactly; a
// boundary inside a run sub-slices it (chunks are immutable, and the
// sub-slices share the run's token storage, so element and segment token
// pointers stay identical across modes).
func splitChunksAt(regions []region, chunks []preprocessor.Chunk) {
	ci, off := 0, 0
	for k := range regions {
		want := len(regions[k].segs)
		out := make([]preprocessor.Chunk, 0, 4)
		for want > 0 {
			c := chunks[ci]
			if c.Cond != nil {
				out = append(out, c)
				ci++
				want--
				continue
			}
			avail := len(c.Run) - off
			if avail <= want {
				out = append(out, preprocessor.Chunk{Run: c.Run[off:]})
				want -= avail
				ci++
				off = 0
				continue
			}
			out = append(out, preprocessor.Chunk{Run: c.Run[off : off+want]})
			off += want
			want = 0
		}
		regions[k].chunks = out
	}
}

// snapshotSeeds copies the cumulative seed map for one region. The first
// region (start 0) parses from the true initial state and needs none.
func snapshotSeeds(seeds map[string]cond.Cond, start int) map[string]cond.Cond {
	if start == 0 {
		return nil
	}
	snap := make(map[string]cond.Cond, len(seeds))
	for k, v := range seeds {
		snap[k] = v
	}
	return snap
}
