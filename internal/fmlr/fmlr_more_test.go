package fmlr

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/cgrammar"
	"repro/internal/cond"
	"repro/internal/preprocessor"
)

// parseSATSrc parses with SAT-mode presence conditions (the TypeChef
// baseline's representation) for cross-mode checks.
func parseSATSrc(t *testing.T, src string, opts Options) (*Result, *cond.Space) {
	t.Helper()
	s := cond.NewSpace(cond.ModeSAT)
	p := preprocessor.New(preprocessor.Options{Space: s, FS: preprocessor.MapFS(map[string]string{"main.c": src})})
	u, err := p.Preprocess("main.c")
	if err != nil {
		t.Fatalf("preprocess: %v", err)
	}
	eng := New(s, cgrammar.MustLoad(), opts)
	return eng.Parse(u.Segments, "main.c"), s
}

// TestSATModeParsesLikeBDDMode checks that the two presence-condition
// representations yield equivalent per-configuration projections.
func TestSATModeParsesLikeBDDMode(t *testing.T) {
	src := `
#ifdef A
int a;
#else
int b;
#endif
#ifdef B
long c;
#endif
int always;
`
	bres, bs := parseOK(t, src, OptAll)
	sres, ss := parseSATSrc(t, src, OptFollowOnly)
	if sres.AST == nil {
		t.Fatalf("SAT parse failed: %v", sres.Diags)
	}
	for bits := 0; bits < 4; bits++ {
		assign := map[string]bool{}
		if bits&1 != 0 {
			assign["(defined A)"] = true
		}
		if bits&2 != 0 {
			assign["(defined B)"] = true
		}
		want := projectTokens(bs, bres.AST, assign)
		got := projectTokens(ss, sres.AST, assign)
		if got != want {
			t.Errorf("config %02b: SAT %q vs BDD %q", bits, got, want)
		}
	}
}

func TestConditionalStructMembers(t *testing.T) {
	src := `
struct device {
	int id;
#ifdef CONFIG_PM
	int power_state;
#endif
	void *driver_data;
};
`
	res, s := parseOK(t, src, OptAll)
	on := map[string]bool{"(defined CONFIG_PM)": true}
	if got := projectTokens(s, res.AST, on); !strings.Contains(got, "power_state") {
		t.Errorf("PM member lost: %q", got)
	}
	if got := projectTokens(s, res.AST, nil); strings.Contains(got, "power_state") {
		t.Errorf("PM member leaked: %q", got)
	}
}

func TestConditionalEnumerators(t *testing.T) {
	src := `
enum hook {
	FIRST,
#ifdef EXTRA
	MIDDLE,
#endif
	LAST
};
`
	res, s := parseOK(t, src, OptAll)
	on := map[string]bool{"(defined EXTRA)": true}
	if got := projectTokens(s, res.AST, on); !strings.Contains(got, "MIDDLE") {
		t.Errorf("conditional enumerator lost: %q", got)
	}
	if got := projectTokens(s, res.AST, nil); strings.Contains(got, "MIDDLE") {
		t.Errorf("conditional enumerator leaked: %q", got)
	}
}

func TestConditionalParameters(t *testing.T) {
	// Differing parameter lists per configuration — a complete-list-member
	// merge case from §5.1.
	src := `
int probe(int dev
#ifdef CONFIG_EXTRA_ARG
, int flags
#endif
);
`
	res, s := parseOK(t, src, OptAll)
	on := map[string]bool{"(defined CONFIG_EXTRA_ARG)": true}
	if got := projectTokens(s, res.AST, on); !strings.Contains(got, "flags") {
		t.Errorf("extra parameter lost: %q", got)
	}
	if got := projectTokens(s, res.AST, nil); strings.Contains(got, "flags") {
		t.Errorf("extra parameter leaked: %q", got)
	}
}

func TestGnuConstructsUnderConditionals(t *testing.T) {
	src := `
#ifdef CONFIG_ALIGN
int buffer[16] __attribute__((aligned(64)));
#else
int buffer[16];
#endif
void flush(void)
{
#ifdef CONFIG_X86
	asm volatile("mfence" : : );
#endif
}
`
	res, s := parseOK(t, src, OptAll)
	on := map[string]bool{"(defined CONFIG_ALIGN)": true, "(defined CONFIG_X86)": true}
	got := projectTokens(s, res.AST, on)
	if !strings.Contains(got, "__attribute__") || !strings.Contains(got, "mfence") {
		t.Errorf("gnu constructs lost: %q", got)
	}
	if got := projectTokens(s, res.AST, nil); strings.Contains(got, "asm") {
		t.Errorf("asm leaked: %q", got)
	}
}

func TestDiagnosticsCarryConditions(t *testing.T) {
	src := `
#ifdef B1
int x = = 1;
#endif
#ifdef B2
int y = ( ;
#endif
int fine;
`
	res, s := parseSrc(t, map[string]string{"main.c": src}, OptAll)
	if len(res.Diags) < 2 {
		t.Fatalf("diags = %d, want >= 2", len(res.Diags))
	}
	b1 := s.Var("(defined B1)")
	b2 := s.Var("(defined B2)")
	saw1, saw2 := false, false
	for _, d := range res.Diags {
		if s.Implies(d.Cond, b1) {
			saw1 = true
		}
		if s.Implies(d.Cond, b2) {
			saw2 = true
		}
	}
	if !saw1 || !saw2 {
		t.Errorf("diagnostics conditions: %v", res.Diags)
	}
	// The error-free configuration survives.
	if res.AST == nil {
		t.Fatal("clean configuration lost")
	}
	if got := projectTokens(s, res.AST, nil); got != "int fine ;" {
		t.Errorf("clean config: %q", got)
	}
}

func TestDeepConditionalNesting(t *testing.T) {
	src := `
#ifdef L1
#ifdef L2
#ifdef L3
#ifdef L4
int deep;
#endif
#endif
#endif
#endif
int shallow;
`
	res, s := parseOK(t, src, OptAll)
	all := map[string]bool{
		"(defined L1)": true, "(defined L2)": true,
		"(defined L3)": true, "(defined L4)": true,
	}
	if got := projectTokens(s, res.AST, all); got != "int deep ; int shallow ;" {
		t.Errorf("all levels: %q", got)
	}
	partial := map[string]bool{"(defined L1)": true, "(defined L2)": true}
	if got := projectTokens(s, res.AST, partial); got != "int shallow ;" {
		t.Errorf("partial levels: %q", got)
	}
}

func TestChoiceNodeConditionsPartition(t *testing.T) {
	// Every choice node's alternatives must be pairwise disjoint (the
	// subparser invariant of §4.1 surfaced in the AST).
	src := `
#if defined(A)
int x = 1;
#elif defined(B)
int x = 2;
#else
int x = 3;
#endif
`
	res, s := parseOK(t, src, OptAll)
	ast.Walk(res.AST, func(n *ast.Node) bool {
		if n.Kind != ast.KindChoice {
			return true
		}
		for i := range n.Alts {
			for j := i + 1; j < len(n.Alts); j++ {
				if !s.Disjoint(n.Alts[i].Cond, n.Alts[j].Cond) {
					t.Errorf("overlapping alternatives: %s vs %s",
						s.String(n.Alts[i].Cond), s.String(n.Alts[j].Cond))
				}
			}
		}
		return true
	})
}

func TestStringsAcrossConditionals(t *testing.T) {
	// Adjacent string literal concatenation with a conditional piece.
	src := `
char *msg = "start "
#ifdef VERBOSE
"(verbose) "
#endif
"end";
`
	res, s := parseOK(t, src, OptAll)
	on := map[string]bool{"(defined VERBOSE)": true}
	if got := projectTokens(s, res.AST, on); !strings.Contains(got, `"(verbose) "`) {
		t.Errorf("verbose piece lost: %q", got)
	}
	if got := projectTokens(s, res.AST, nil); strings.Contains(got, "verbose") {
		t.Errorf("verbose piece leaked: %q", got)
	}
}

func TestSwitchBodyConditionals(t *testing.T) {
	src := `
void dispatch(int op)
{
	switch (op) {
	case 0:
		handle0();
		break;
#ifdef CONFIG_OP1
	case 1:
		handle1();
		break;
#endif
	default:
		break;
	}
}
`
	res, s := parseOK(t, src, OptAll)
	on := map[string]bool{"(defined CONFIG_OP1)": true}
	if got := projectTokens(s, res.AST, on); !strings.Contains(got, "case 1") {
		t.Errorf("conditional case lost: %q", got)
	}
	if got := projectTokens(s, res.AST, nil); strings.Contains(got, "handle1") {
		t.Errorf("conditional case leaked: %q", got)
	}
}

func TestScopedTypedefAcrossFunctions(t *testing.T) {
	// A typedef local to one function must not leak into the next.
	src := `
void f(void) { typedef int T; T x; }
void g(void) { int T; int p; T * p; }
`
	res, _ := parseOK(t, src, OptAll)
	proj := res.AST
	if len(ast.Find(proj, "BinaryExpr")) != 1 {
		t.Error("T * p in g() should be a multiplication (typedef out of scope)")
	}
}

func TestEmptyUnitUnderSomeConfig(t *testing.T) {
	// The whole file vanishes under !A; the empty translation unit must
	// still be accepted.
	src := `
#ifdef A
int only;
#endif
`
	res, s := parseOK(t, src, OptAll)
	if got := projectTokens(s, res.AST, map[string]bool{"(defined A)": true}); got != "int only ;" {
		t.Errorf("A: %q", got)
	}
	if got := projectTokens(s, res.AST, nil); got != "" {
		t.Errorf("!A: %q", got)
	}
}

func TestDesignatedInitializersUnderConditionals(t *testing.T) {
	// The idiom behind Figure 6 in modern kernels: conditional designated
	// initializer entries in an ops table.
	src := `
static struct file_operations fops = {
	.open = dev_open,
#ifdef CONFIG_COMPAT
	.compat_ioctl = dev_compat_ioctl,
#endif
	.release = dev_release,
};
`
	res, s := parseOK(t, src, OptAll)
	on := map[string]bool{"(defined CONFIG_COMPAT)": true}
	if got := projectTokens(s, res.AST, on); !strings.Contains(got, "compat_ioctl") {
		t.Errorf("compat entry lost: %q", got)
	}
	if got := projectTokens(s, res.AST, nil); strings.Contains(got, "compat_ioctl") {
		t.Errorf("compat entry leaked: %q", got)
	}
	if res.Stats.MaxSubparsers > 4 {
		t.Errorf("ops-table initializer needed %d subparsers", res.Stats.MaxSubparsers)
	}
}

func TestTypedefRegistrationForms(t *testing.T) {
	// Registration must see through pointer/paren/function declarators and
	// struct-typedef tails — the live counterpart of the static
	// classification used in cgrammar's tests.
	src := `
typedef int (*handler_fn)(int, void *);
static handler_fn handlers[8];
typedef struct rb_node {
	struct rb_node *left;
} rb_node_t;
static rb_node_t root;
typedef unsigned long uptr_t, *uptr_ptr_t;
uptr_t a;
uptr_ptr_t b;
`
	res, _ := parseOK(t, src, OptAll)
	uses := ast.Find(res.AST, "TypedefName")
	if len(uses) != 4 {
		t.Errorf("typedef-name uses: %d, want 4 (handler_fn, rb_node_t, uptr_t, uptr_ptr_t)", len(uses))
	}
}
