package fmlr

import (
	"fmt"
	"unsafe"

	"repro/internal/guard"
	"repro/internal/guard/faultinject"
	"repro/internal/lalr"
	"repro/internal/preprocessor"
	"repro/internal/token"
)

// This file is the stream-fused parse path: the preprocessor hands the
// engine Chunks (dense True-condition token runs, plus classic Conditionals
// where hoisting genuinely buffered content) and the engine consumes them
// without ever building the unit-wide segment slab.
//
// The fused loop has two gears, both only engaged while exactly one
// subparser is live — which is the overwhelmingly common state between
// conditionals:
//
//   - Cursor mode walks a run chunk's tokens in place: no forest element,
//     no heap traffic, no merge bucket, just classify → reduce* → shift
//     against the LR table. This is as close to flap-style fusion as the
//     configuration-preserving setting allows.
//   - Element mode steps lazily materialized forest elements the same way.
//     It exists because conditional episodes materialize chunks (the queue
//     loop needs the navigable forest), and the single survivor of such an
//     episode should still bypass the queue on the way to the next one.
//
// Whenever variability reappears — a conditional chunk, an ambiguously
// defined name, EOF — the fast path parks its subparser back in the queue
// and the classic loop takes over; the forest keeps growing chunk-at-a-time
// through Engine.after. Every simulated iteration replicates the queue
// loop's accounting (budget ticks, iteration counts, histogram, observes)
// exactly, so streaming changes no observable statistic; the differential
// suite (stream_test.go) holds the two paths to byte equality.

// BytesPerStreamedToken is the per-token footprint the cursor gear avoids:
// the materialized Segment and the forest element the classic path builds
// for every token. Metrics use it to report bytes saved by streaming.
const BytesPerStreamedToken = int64(unsafe.Sizeof(element{}) + unsafe.Sizeof(preprocessor.Segment{}))

// streamState is the engine's view of an in-progress chunk stream: the
// source, the lazily built forest (tail = last top-level element), and the
// cursor gear's position inside the current run chunk.
type streamState struct {
	src  preprocessor.TokenSource
	fb   forestBuilder
	file string

	tail    *element // last materialized top-level element (nil: no chain)
	eofDone bool     // synthetic EOF already materialized

	// Cursor gear: the run being consumed in place, nil when inactive.
	run    []token.Token
	runIdx int

	// One-chunk lookahead so the fast path can choose the cursor gear for a
	// run without committing a conditional chunk it must hand back.
	pend    preprocessor.Chunk
	hasPend bool
}

func (st *streamState) take() (preprocessor.Chunk, bool) {
	if st.hasPend {
		st.hasPend = false
		return st.pend, true
	}
	return st.src.Next()
}

func (st *streamState) peek() (preprocessor.Chunk, bool) {
	if !st.hasPend {
		c, ok := st.src.Next()
		if !ok {
			return preprocessor.Chunk{}, false
		}
		st.pend, st.hasPend = c, true
	}
	return st.pend, true
}

// link appends a freshly materialized top-level chain [h..t]; with no chain
// open (tail nil) it starts one.
func (st *streamState) link(h, t *element) {
	if st.tail != nil {
		st.tail.next = h
	}
	st.tail = t
}

// materializeNext converts the next chunk into forest elements appended at
// the top level, returning the first new element. At stream end it
// materializes the synthetic EOF exactly once, then reports nil.
//
// Run chunks convert one token at a time: the remainder is pushed back as
// the pending chunk, so a multi-subparser episode that happens to span the
// chunk boundary materializes only the tokens it actually steps over, and
// the lone survivor of a conditional episode re-enters the cursor gear at
// the next tail check instead of walking a fully materialized run.
func (st *streamState) materializeNext() *element {
	for {
		c, ok := st.take()
		if !ok {
			if st.eofDone {
				return nil
			}
			st.eofDone = true
			eof := st.fb.newEOF(st.file)
			st.link(eof, eof)
			return eof
		}
		if c.Cond != nil {
			el := st.fb.newElem(nil)
			ce := &condElem{}
			el.cnd = ce
			for _, br := range c.Cond.Branches {
				ce.branches = append(ce.branches, branchElem{
					cond:  br.Cond,
					first: st.fb.convert(br.Segs, el),
				})
			}
			st.link(el, el)
			return el
		}
		if len(c.Run) > 0 {
			// take() just cleared any pending chunk, so the slot is free for
			// the unconverted remainder.
			h, t := st.fb.convertRun(c.Run[:1])
			if len(c.Run) > 1 {
				st.pend, st.hasPend = preprocessor.Chunk{Run: c.Run[1:]}, true
			}
			st.link(h, t)
			return h
		}
		// Empty run chunk (not produced by the writer, but legal): skip.
	}
}

// materializeRunSuffix converts the cursor's next unconsumed token into a
// fresh top-level chain and deactivates the cursor, returning the chain's
// first element; the rest of the run is pushed back as the pending chunk
// and converts lazily through materializeNext. The consumed prefix gets no
// elements; the old chain (if any) is fully consumed and never linked to,
// so its dangling tail is unreachable.
func (st *streamState) materializeRunSuffix() *element {
	st.tail = nil
	rest := st.run[st.runIdx:]
	st.run = nil
	st.runIdx = 0
	if len(rest) == 0 {
		return st.materializeNext()
	}
	// The cursor gear is only entered by take()-ing a run chunk, which
	// clears the pending slot, and nothing refills it while the cursor is
	// active — so the remainder can be pushed back without clobbering.
	h, t := st.fb.convertRun(rest[:1])
	if len(rest) > 1 {
		st.pend, st.hasPend = preprocessor.Chunk{Run: rest[1:]}, true
	}
	st.link(h, t)
	return h
}

// ParseUnit parses a preprocessed unit, streaming its chunks straight into
// the LR loop when the unit was preprocessed in streaming mode and
// Options.NoStream is off; otherwise it materializes the classic segment
// slab and runs Parse. This is the entry point core/harness use.
func (e *Engine) ParseUnit(u *preprocessor.Unit) *Result {
	if e.opts.NoStream || u.Chunks == nil {
		return e.Parse(u.EnsureSegments(), u.File)
	}
	if e.opts.ParseWorkers > 1 {
		if res, ok := e.parseParallel(u.EnsureSegments(), u.Chunks, u.File); ok {
			return res
		}
	}
	return e.parseStream(preprocessor.NewChunkSource(u.Chunks), u.File)
}

// parseStream is the sequential parse over a chunk stream. It boots the
// initial subparser directly into the cursor gear when the unit opens with
// a True-condition run, and otherwise materializes the first chunk and
// starts the queue loop; the loop and the fast path then trade control as
// variability comes and goes.
func (e *Engine) parseStream(src preprocessor.TokenSource, file string) *Result {
	budget := e.opts.Budget
	faultinject.At(faultinject.PointParse, file, budget)
	e.acquireScratch()
	defer e.releaseScratch()
	e.beginParse()
	st := &streamState{src: src, file: file}
	e.stream = st
	defer func() {
		e.stream = nil
		e.fastStall = nil
	}()
	e.stats = Stats{}

	p0 := e.newSub()
	p0.c = e.space.True()
	p0.stack = e.pushNode(0, -1, nil, nil)
	p0.tab = e.newRootTab()
	p0.ownTab = true

	tripped := false
	booted := false
	if e.opts.KillSwitch >= 1 {
		if c, ok := st.peek(); ok && c.Run != nil {
			st.take()
			st.run, st.runIdx = c.Run, 0
			tripped = e.fastDrain(p0, budget)
			booted = true
		}
	}
	if !booted {
		p0.el = st.materializeNext()
		e.insert(p0)
	}
	if !tripped {
		tripped = e.runLoop(budget)
	}

	// Token accounting: a completed parse has seen every token either
	// through the cursor or through a materialized element, but a killed,
	// tripped, or error-stopped parse abandons the stream's remainder. The
	// classic path counts the whole unit up front (Stats.Tokens), so drain
	// and count what never arrived; it was never materialized, and charging
	// it to the materialized side keeps Tokens = Streamed + Materialized.
	rest := len(st.run) - st.runIdx
	for {
		c, ok := st.take()
		if !ok {
			break
		}
		if c.Cond != nil {
			for _, b := range c.Cond.Branches {
				rest += preprocessor.CountTokens(b.Segs)
			}
			continue
		}
		rest += len(c.Run)
	}
	e.stats.Tokens = st.fb.tokens + e.stats.TokensStreamed + rest
	e.stats.TokensMaterialized = st.fb.tokens + rest
	return e.finishParse(budget, tripped)
}

// tickIter replicates one queue-loop iteration's preamble for a lone
// subparser: budget tick, iteration count, histogram, max, subparser
// observe. It returns false when the budget trips (before or after the
// iteration is counted, exactly as the queue loop would).
func (e *Engine) tickIter(budget *guard.Budget) bool {
	if !budget.Tick("fmlr") {
		return false
	}
	e.stats.Iterations++
	if len(e.sc.hist) < 2 {
		grown := make([]int, 65)
		copy(grown, e.sc.hist)
		e.sc.hist = grown
	}
	e.sc.hist[1]++
	if e.stats.MaxSubparsers < 1 {
		e.stats.MaxSubparsers = 1
	}
	return budget.Observe("fmlr", guard.AxisSubparsers, 1)
}

// fastClassify resolves one token's terminal the way reclassify does for a
// singleton follow-set, using the element's cached context-free
// classification when it has an element. ambiguous reports a name defined
// as both typedef and object in the current condition — the fast path's
// signal to hand the token to the queue loop, which forks.
func (e *Engine) fastClassify(p *subparser, t *token.Token, el *element) (sym lalr.Symbol, ambiguous bool) {
	var ok bool
	if el != nil {
		if !el.clsSet {
			el.cls, el.clsOK = e.lang.Classify(*t)
			el.clsSet = true
		}
		sym, ok = el.cls, el.clsOK
	} else {
		sym, ok = e.lang.Classify(*t)
	}
	if !ok {
		sym = e.lang.Identifier
	}
	if sym != e.lang.Identifier {
		return sym, false
	}
	cl := p.tab.Classify(t.Text, p.c)
	switch {
	case e.space.IsFalse(cl.TypedefCond):
		return sym, false
	case e.space.IsFalse(cl.OtherCond):
		return e.lang.TypedefName, false
	default:
		return sym, true
	}
}

// fastDrain steps a lone unresolved subparser token by token until
// variability (a conditional, an ambiguous name, EOF) or a budget trip
// hands control back to the queue loop. On entry p is popped and either the
// cursor gear is active (st.run non-nil, p.el nil) or p.el is an ordinary
// token element. On a non-trip return p is back in the queue or dead (parse
// error); on a trip (true) p is re-queued so degradation sees its
// condition.
func (e *Engine) fastDrain(p *subparser, budget *guard.Budget) (tripped bool) {
	st := e.stream
	for {
		if st.run != nil {
			// --- cursor gear: consume the current run chunk in place ---
			if st.runIdx >= len(st.run) {
				if c, ok := st.peek(); ok && c.Run != nil {
					st.take()
					st.run, st.runIdx = c.Run, 0
					continue
				}
				// Next is a conditional chunk or EOF: leave the cursor and
				// re-queue at the materialized continuation.
				wasEOF := !st.hasPend
				st.run = nil
				st.runIdx = 0
				st.tail = nil
				p.el = st.materializeNext()
				e.insert(p)
				if !wasEOF {
					e.stats.StreamFallbacks++
				}
				return false
			}
			t := &st.run[st.runIdx]
			sym, ambiguous := e.fastClassify(p, t, nil)
			if ambiguous {
				el := st.materializeRunSuffix()
				p.el = el
				e.fastStall = el
				e.insert(p)
				e.stats.StreamFallbacks++
				return false
			}
			if !e.tickIter(budget) { // the resolve iteration
				p.el = st.materializeRunSuffix()
				e.insert(p)
				return true
			}
			for {
				act := e.lang.Table.Actions[p.stack.state][sym]
				switch act.Kind {
				case lalr.ActionReduce:
					if !e.tickIter(budget) {
						p.el = st.materializeRunSuffix()
						e.insert(p)
						return true
					}
					e.reduce(p, act.Target)
					continue
				case lalr.ActionShift:
					if !e.tickIter(budget) {
						p.el = st.materializeRunSuffix()
						e.insert(p)
						return true
					}
					e.stats.Shifts++
					if !e.lang.IsLayout(sym) {
						p.stack = e.pushNode(act.Target, sym, e.sc.ab.Leaf(*t), p.stack)
					} else {
						p.stack = e.pushNode(act.Target, sym, nil, p.stack)
					}
					st.runIdx++
					e.stats.TokensStreamed++
				default:
					// Accept is impossible before the synthetic EOF; error.
					if !e.tickIter(budget) {
						p.el = st.materializeRunSuffix()
						e.insert(p)
						return true
					}
					e.diags = append(e.diags, Diagnostic{
						Cond: p.c,
						Tok:  *t,
						Msg:  fmt.Sprintf("parse error on %s", t),
					})
					e.freeSub(p)
					// The unconsumed remainder is counted by parseStream's
					// end-of-parse drain; leave st.run in place.
					return false
				}
				break
			}
			continue
		}

		// --- element gear: step the materialized forest ---
		el := p.el
		if el == nil {
			// Defensive: should not happen (EOF is materialized, not nil).
			e.freeSub(p)
			return false
		}
		if el.tok == nil || el.tok.Kind == token.EOF || el == e.fastStall {
			// A conditional, end of input, or a stalled ambiguity: the queue
			// loop handles it.
			e.insert(p)
			if el.tok == nil {
				e.stats.StreamFallbacks++
			}
			return false
		}
		sym, ambiguous := e.fastClassify(p, el.tok, el)
		if ambiguous {
			e.fastStall = el
			e.insert(p)
			e.stats.StreamFallbacks++
			return false
		}
		if !e.tickIter(budget) { // the resolve iteration
			e.insert(p)
			return true
		}
		for {
			act := e.lang.Table.Actions[p.stack.state][sym]
			switch act.Kind {
			case lalr.ActionReduce:
				if !e.tickIter(budget) {
					e.insert(p)
					return true
				}
				e.reduce(p, act.Target)
				continue
			case lalr.ActionShift:
				if !e.tickIter(budget) {
					e.insert(p)
					return true
				}
				e.stats.Shifts++
				if !e.lang.IsLayout(sym) {
					p.stack = e.pushNode(act.Target, sym, el.leafNode(&e.sc.ab), p.stack)
				} else {
					p.stack = e.pushNode(act.Target, sym, nil, p.stack)
				}
				// Advance. At the top level's tail, prefer re-entering the
				// cursor gear when the next chunk is a run; otherwise
				// materialize (a conditional or EOF) and keep stepping.
				if el.next == nil && el.up == nil && el == st.tail {
					if c, ok := st.peek(); ok && c.Run != nil {
						st.take()
						st.run, st.runIdx = c.Run, 0
						p.el = nil
						break
					}
				}
				nxt := e.after(el)
				if nxt == nil {
					// Past the materialized EOF; nothing left.
					e.freeSub(p)
					return false
				}
				p.el = nxt
			default:
				if !e.tickIter(budget) {
					e.insert(p)
					return true
				}
				e.parseError(head{cond: p.c, el: el, sym: sym})
				e.freeSub(p)
				return false
			}
			break
		}
	}
}
