package fmlr

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/cgrammar"
	"repro/internal/cond"
	"repro/internal/preprocessor"
)

// parseSrc preprocesses and FMLR-parses main.c from files.
func parseSrc(t *testing.T, files map[string]string, opts Options) (*Result, *cond.Space) {
	t.Helper()
	s := cond.NewSpace(cond.ModeBDD)
	p := preprocessor.New(preprocessor.Options{Space: s, FS: preprocessor.MapFS(files)})
	u, err := p.Preprocess("main.c")
	if err != nil {
		t.Fatalf("preprocess: %v", err)
	}
	for _, d := range u.Diags {
		if !d.Warning {
			t.Fatalf("preprocess diagnostic: %s", d)
		}
	}
	eng := New(s, cgrammar.MustLoad(), opts)
	return eng.Parse(u.Segments, "main.c"), s
}

func parseOK(t *testing.T, src string, opts Options) (*Result, *cond.Space) {
	t.Helper()
	res, s := parseSrc(t, map[string]string{"main.c": src}, opts)
	if res.Killed {
		t.Fatal("kill switch tripped")
	}
	if res.AST == nil {
		t.Fatalf("no AST; diags: %v", res.Diags)
	}
	if len(res.Diags) != 0 {
		t.Fatalf("unexpected parse diagnostics: %+v", res.Diags)
	}
	return res, s
}

// projectTokens renders the AST's token texts under one configuration.
func projectTokens(s *cond.Space, n *ast.Node, assign map[string]bool) string {
	proj := ast.Project(s, n, assign)
	if proj == nil {
		return ""
	}
	toks := proj.Tokens()
	parts := make([]string, 0, len(toks))
	for _, tk := range toks {
		parts = append(parts, tk.Text)
	}
	return strings.Join(parts, " ")
}

func TestPlainDeclaration(t *testing.T) {
	res, _ := parseOK(t, "int x = 1;\n", OptAll)
	if res.Stats.MaxSubparsers != 1 {
		t.Errorf("MaxSubparsers = %d, want 1", res.Stats.MaxSubparsers)
	}
	decls := ast.Find(res.AST, "Declaration")
	if len(decls) != 1 {
		t.Errorf("declarations found: %d", len(decls))
	}
}

func TestPlainFunction(t *testing.T) {
	res, _ := parseOK(t, `
int add(int a, int b)
{
	int sum = a + b;
	return sum;
}
`, OptAll)
	if len(ast.Find(res.AST, "FunctionDefinition")) != 1 {
		t.Error("function definition not found")
	}
	if res.Stats.MaxSubparsers != 1 {
		t.Errorf("MaxSubparsers = %d, want 1", res.Stats.MaxSubparsers)
	}
}

// TestFigure1 reproduces the paper's running example: a conditional
// straddling an if-else statement. The parser must fork two subparsers,
// parse line 10 twice (once as part of the if-then-else, once stand-alone),
// and produce a static choice node.
func TestFigure1(t *testing.T) {
	src := `
static int mousedev_open(struct inode *inode, struct file *file)
{
	int i;
#ifdef CONFIG_INPUT_MOUSEDEV_PSAUX
	if (imajor(inode) == 10)
		i = 31;
	else
#endif
	i = iminor(inode) - 32;
	return 0;
}
`
	res, s := parseOK(t, src, OptAll)
	if res.AST.CountChoices() == 0 {
		t.Error("expected a static choice node")
	}
	on := map[string]bool{"(defined CONFIG_INPUT_MOUSEDEV_PSAUX)": true}
	got := projectTokens(s, res.AST, on)
	if !strings.Contains(got, "if ( imajor ( inode ) == 10 )") || !strings.Contains(got, "else") {
		t.Errorf("PSAUX config lost the if-else: %q", got)
	}
	gotOff := projectTokens(s, res.AST, nil)
	if strings.Contains(gotOff, "if") || strings.Contains(gotOff, "else") {
		t.Errorf("non-PSAUX config kept the if: %q", gotOff)
	}
	if !strings.Contains(gotOff, "i = iminor ( inode ) - 32 ;") {
		t.Errorf("non-PSAUX config lost the assignment: %q", gotOff)
	}
	if res.Stats.MaxSubparsers < 2 {
		t.Errorf("MaxSubparsers = %d, want >= 2", res.Stats.MaxSubparsers)
	}
}

func TestConditionalDeclaration(t *testing.T) {
	src := `
#ifdef A
int a;
#else
long b;
#endif
int after;
`
	res, s := parseOK(t, src, OptAll)
	on := map[string]bool{"(defined A)": true}
	if got := projectTokens(s, res.AST, on); got != "int a ; int after ;" {
		t.Errorf("A: %q", got)
	}
	if got := projectTokens(s, res.AST, nil); got != "long b ; int after ;" {
		t.Errorf("!A: %q", got)
	}
}

func TestNestedConditionals(t *testing.T) {
	src := `
#ifdef A
int a;
#ifdef B
int ab;
#endif
#endif
int always;
`
	res, s := parseOK(t, src, OptAll)
	both := map[string]bool{"(defined A)": true, "(defined B)": true}
	if got := projectTokens(s, res.AST, both); got != "int a ; int ab ; int always ;" {
		t.Errorf("A&B: %q", got)
	}
	if got := projectTokens(s, res.AST, nil); got != "int always ;" {
		t.Errorf("neither: %q", got)
	}
}

// TestFigure6ArrayInitializer reproduces §4.5: an array initializer with n
// conditional entries has 2^n configurations but FMLR parses it with a
// handful of subparsers.
func figure6Source(n int) string {
	var b strings.Builder
	b.WriteString("static int (*check_part[])(struct parsed_partitions *) = {\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "#ifdef CONFIG_PART_%02d\n\tcheck_%02d,\n#endif\n", i, i)
	}
	b.WriteString("\t((void *)0)\n};\n")
	return b.String()
}

func TestFigure6ArrayInitializer(t *testing.T) {
	res, s := parseOK(t, figure6Source(18), OptAll)
	// The paper: "FMLR parses 2^18 distinct configurations with only 2
	// subparsers". Allow a little slack for engine differences, but the
	// count must stay tiny and constant-ish.
	if res.Stats.MaxSubparsers > 4 {
		t.Errorf("MaxSubparsers = %d, want <= 4", res.Stats.MaxSubparsers)
	}
	// Check a couple of projections.
	one := map[string]bool{"(defined CONFIG_PART_03)": true}
	got := projectTokens(s, res.AST, one)
	if !strings.Contains(got, "check_03 ,") || strings.Contains(got, "check_04") {
		t.Errorf("projection wrong: %q", got)
	}
}

func TestFigure6ScalesLinearly(t *testing.T) {
	res8, _ := parseOK(t, figure6Source(8), OptAll)
	res16, _ := parseOK(t, figure6Source(16), OptAll)
	if res16.Stats.MaxSubparsers > res8.Stats.MaxSubparsers+1 {
		t.Errorf("subparser count grows with conditionals: %d -> %d",
			res8.Stats.MaxSubparsers, res16.Stats.MaxSubparsers)
	}
}

func TestMAPRBlowsUpOnFigure6(t *testing.T) {
	src := figure6Source(18)
	s := cond.NewSpace(cond.ModeBDD)
	p := preprocessor.New(preprocessor.Options{Space: s, FS: preprocessor.MapFS(map[string]string{"main.c": src})})
	u, err := p.Preprocess("main.c")
	if err != nil {
		t.Fatal(err)
	}
	opts := OptMAPR
	opts.KillSwitch = 500
	eng := New(s, cgrammar.MustLoad(), opts)
	res := eng.Parse(u.Segments, "main.c")
	if !res.Killed {
		t.Errorf("MAPR should trip the kill switch (max subparsers: %d)", res.Stats.MaxSubparsers)
	}
}

func TestOptimizationLevelsOrdering(t *testing.T) {
	src := figure6Source(10)
	counts := map[string]int{}
	for name, opts := range map[string]Options{
		"all":        OptAll,
		"sharedlazy": OptSharedLazy,
		"shared":     OptShared,
		"lazy":       OptLazy,
		"follow":     OptFollowOnly,
	} {
		res, _ := parseOK(t, src, opts)
		counts[name] = res.Stats.MaxSubparsers
	}
	if counts["all"] > counts["follow"] {
		t.Errorf("optimizations increased subparser count: all=%d follow=%d",
			counts["all"], counts["follow"])
	}
	t.Logf("max subparsers: %v", counts)
}

func TestMultiplyDefinedMacroParse(t *testing.T) {
	src := `
#ifdef CONFIG_64BIT
#define BITS_PER_LONG 64
#else
#define BITS_PER_LONG 32
#endif
int bits = BITS_PER_LONG;
`
	res, s := parseOK(t, src, OptAll)
	on := map[string]bool{"(defined CONFIG_64BIT)": true}
	if got := projectTokens(s, res.AST, on); got != "int bits = 64 ;" {
		t.Errorf("64: %q", got)
	}
	if got := projectTokens(s, res.AST, nil); got != "int bits = 32 ;" {
		t.Errorf("32: %q", got)
	}
}

func TestTypedefDisambiguation(t *testing.T) {
	// After "typedef int T;", "T * p;" must parse as a declaration.
	res, _ := parseOK(t, "typedef int T;\nT *p;\n", OptAll)
	decls := ast.Find(res.AST, "Declaration")
	if len(decls) != 2 {
		t.Fatalf("declarations: %d, want 2", len(decls))
	}
	if len(ast.Find(res.AST, "TypedefName")) != 1 {
		t.Error("TYPEDEFNAME use not found")
	}
}

func TestObjectShadowsNothing(t *testing.T) {
	// Without the typedef, "T * p;" is a multiplication expression inside a
	// function body.
	res, _ := parseOK(t, "void f(void) { int T; int p; T * p; }\n", OptAll)
	if len(ast.Find(res.AST, "BinaryExpr")) != 1 {
		t.Error("T * p should parse as multiplication")
	}
}

// TestConditionalTypedef reproduces Table 1's "ambiguously defined names":
// T is a typedef under A and an object under !A, so a use of "T * p;"
// requires forking even though no conditional is visible at the use site.
func TestConditionalTypedef(t *testing.T) {
	src := `
#ifdef A
typedef int T;
#else
int T;
#endif
void f(void) {
	int p;
	T * p;
}
`
	res, s := parseOK(t, src, OptAll)
	if res.Stats.TypedefForks == 0 {
		t.Error("expected a typedef-driven fork")
	}
	// Under A: declaration of pointer p (shadowing); under !A:
	// multiplication.
	on := map[string]bool{"(defined A)": true}
	gotOn := projectTokens(s, res.AST, on)
	gotOff := projectTokens(s, res.AST, nil)
	if gotOn == gotOff {
		t.Errorf("configurations should differ structurally")
	}
	proj := ast.Project(s, res.AST, on)
	if len(ast.Find(proj, "TypedefName")) == 0 {
		t.Errorf("under A, T should be a typedef name:\n%s", proj)
	}
	projOff := ast.Project(s, res.AST, nil)
	if len(ast.Find(projOff, "BinaryExpr")) == 0 {
		t.Errorf("under !A, T * p should multiply:\n%s", projOff)
	}
}

func TestParseErrorUnderOneConfig(t *testing.T) {
	src := `
#ifdef BAD
int x = ;
#else
int x = 1;
#endif
`
	res, s := parseSrc(t, map[string]string{"main.c": src}, OptAll)
	if len(res.Diags) == 0 {
		t.Fatal("expected a parse diagnostic")
	}
	bad := s.Var("(defined BAD)")
	foundBad := false
	for _, d := range res.Diags {
		if s.Implies(d.Cond, bad) {
			foundBad = true
		}
	}
	if !foundBad {
		t.Errorf("diagnostic conditions: %v", res.Diags)
	}
	// The good configuration still yields an AST.
	if res.AST == nil {
		t.Fatal("good configuration lost")
	}
	if got := projectTokens(s, res.AST, nil); got != "int x = 1 ;" {
		t.Errorf("good config: %q", got)
	}
}

func TestEmptyBranchesAndImplicitElse(t *testing.T) {
	src := `
int before;
#ifdef A
#endif
#ifdef B
int b;
#else
#endif
int after;
`
	res, s := parseOK(t, src, OptAll)
	if got := projectTokens(s, res.AST, nil); got != "int before ; int after ;" {
		t.Errorf("neither: %q", got)
	}
	onB := map[string]bool{"(defined B)": true}
	if got := projectTokens(s, res.AST, onB); got != "int before ; int b ; int after ;" {
		t.Errorf("B: %q", got)
	}
}

func TestSharedTokensParsedPerConfiguration(t *testing.T) {
	// A conditional in expression position: the trailing operand is shared.
	src := `
int v =
#ifdef A
1 +
#endif
2;
`
	res, s := parseOK(t, src, OptAll)
	on := map[string]bool{"(defined A)": true}
	if got := projectTokens(s, res.AST, on); got != "int v = 1 + 2 ;" {
		t.Errorf("A: %q", got)
	}
	if got := projectTokens(s, res.AST, nil); got != "int v = 2 ;" {
		t.Errorf("!A: %q", got)
	}
}

// TestDifferentialProjection parses a variability-rich program once with
// FMLR and re-parses each configuration's token stream with the plain LR
// runner, checking both accept.
func TestDifferentialProjection(t *testing.T) {
	files := map[string]string{"main.c": `
#ifdef CONFIG_X
#define WIDTH 64
typedef long wide_t;
#else
#define WIDTH 32
typedef int wide_t;
#endif
wide_t width = WIDTH;
#ifdef CONFIG_Y
static int extra(wide_t w) { return w + 1; }
#endif
int main(void) {
	int r = 0;
#if WIDTH == 64
	r += 2;
#endif
#ifdef CONFIG_Y
	r += extra(width);
#endif
	return r;
}
`}
	res, s := parseSrc(t, files, OptAll)
	if res.AST == nil || len(res.Diags) > 0 {
		t.Fatalf("parse failed: %v", res.Diags)
	}
	for bits := 0; bits < 4; bits++ {
		assign := map[string]bool{}
		if bits&1 != 0 {
			assign["(defined CONFIG_X)"] = true
		}
		if bits&2 != 0 {
			assign["(defined CONFIG_Y)"] = true
		}
		proj := ast.Project(s, res.AST, assign)
		if proj == nil {
			t.Fatalf("config %v: empty projection", assign)
		}
		// Re-parse the projected tokens with the plain LR runner, using the
		// projected tree's own leaves (typedef names resolved by a simple
		// one-config table would be ideal; here we check non-emptiness and
		// structural sanity).
		if len(proj.Tokens()) < 10 {
			t.Errorf("config %v: suspiciously few tokens", assign)
		}
		if len(ast.Find(proj, "FunctionDefinition")) < 1 {
			t.Errorf("config %v: main() lost", assign)
		}
	}
}

func TestStatsPercentile(t *testing.T) {
	st := Stats{SubparserHist: map[int]int{1: 90, 2: 9, 10: 1}}
	if p := st.Percentile(0.5); p != 1 {
		t.Errorf("p50 = %d", p)
	}
	if p := st.Percentile(0.99); p != 10 {
		t.Errorf("p99 = %d, want 10", p)
	}
}

func TestAcceptCoversAllConfigurations(t *testing.T) {
	src := `
#ifdef A
int a;
#else
int b;
#endif
`
	res, s := parseOK(t, src, OptAll)
	// The final AST must cover both configurations: projections non-empty.
	if projectTokens(s, res.AST, map[string]bool{"(defined A)": true}) == "" {
		t.Error("A config missing from accept")
	}
	if projectTokens(s, res.AST, nil) == "" {
		t.Error("!A config missing from accept")
	}
}

func BenchmarkParsePlainFunction(b *testing.B) {
	b.ReportAllocs()
	s := cond.NewSpace(cond.ModeBDD)
	var sb strings.Builder
	for i := 0; i < 50; i++ {
		fmt.Fprintf(&sb, "static int fn%d(int a, int b) { int t = a * %d; return t + b; }\n", i, i)
	}
	p := preprocessor.New(preprocessor.Options{Space: s, FS: preprocessor.MapFS(map[string]string{"main.c": sb.String()})})
	u, err := p.Preprocess("main.c")
	if err != nil {
		b.Fatal(err)
	}
	lang := cgrammar.MustLoad()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := New(s, lang, OptAll)
		if res := eng.Parse(u.Segments, "main.c"); res.AST == nil {
			b.Fatal("parse failed")
		}
	}
}

func BenchmarkParseFigure6(b *testing.B) {
	b.ReportAllocs()
	s := cond.NewSpace(cond.ModeBDD)
	p := preprocessor.New(preprocessor.Options{Space: s, FS: preprocessor.MapFS(map[string]string{"main.c": figure6Source(18)})})
	u, err := p.Preprocess("main.c")
	if err != nil {
		b.Fatal(err)
	}
	lang := cgrammar.MustLoad()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := New(s, lang, OptAll)
		if res := eng.Parse(u.Segments, "main.c"); res.AST == nil {
			b.Fatal("parse failed")
		}
	}
}

// TestFigure6ProjectionExact checks that projecting the exponential-space
// AST under several configurations yields exactly the right initializer
// entries (regression test for nested-choice projection).
func TestFigure6ProjectionExact(t *testing.T) {
	res, s := parseOK(t, figure6Source(18), OptAll)
	for _, pick := range [][]int{{}, {3}, {0, 7, 17}, {0, 1, 2, 3, 4}, {17}} {
		assign := map[string]bool{}
		for _, i := range pick {
			assign[fmt.Sprintf("(defined CONFIG_PART_%02d)", i)] = true
		}
		proj := ast.Project(s, res.AST, assign)
		entries := 0
		for _, tk := range proj.Tokens() {
			if strings.HasPrefix(tk.Text, "check_") && tk.Text != "check_part" {
				entries++
			}
		}
		if entries != len(pick) {
			t.Errorf("config %v: %d entries, want %d", pick, entries, len(pick))
		}
	}
}

// TestInteractionMatrixParser covers the parser rows of the paper's
// Table 1 (the preprocessor rows live in package preprocessor's
// TestInteractionMatrix).
func TestInteractionMatrixParser(t *testing.T) {
	t.Run("C Constructs/fork and merge subparsers", func(t *testing.T) {
		res, _ := parseOK(t, `
#ifdef A
int a;
#else
int b;
#endif
int after;
`, OptAll)
		if res.Stats.Forks == 0 || res.Stats.Merges == 0 {
			t.Errorf("forks=%d merges=%d", res.Stats.Forks, res.Stats.Merges)
		}
	})
	t.Run("Typedef Names/add multiple entries to symbol table", func(t *testing.T) {
		res, s := parseOK(t, `
#ifdef A
typedef int T;
#endif
#ifdef A
T x;
#endif
`, OptAll)
		on := map[string]bool{"(defined A)": true}
		proj := ast.Project(s, res.AST, on)
		if len(ast.Find(proj, "TypedefName")) == 0 {
			t.Error("conditional typedef not visible under its condition")
		}
	})
	t.Run("Typedef Names/fork subparsers on ambiguous names", func(t *testing.T) {
		res, _ := parseOK(t, `
#ifdef A
typedef int T;
#else
int T;
#endif
void f(void) { int p; T * p; }
`, OptAll)
		if res.Stats.TypedefForks == 0 {
			t.Error("no fork on ambiguously defined name")
		}
	})
}
