package fmlr

import (
	"fmt"
	"testing"

	"repro/internal/cgrammar"
	"repro/internal/cond"
	"repro/internal/corpus"
	"repro/internal/preprocessor"
)

// BenchmarkParseGiantUnit measures intra-unit scaling on one unit large
// enough that region parallelism, not per-unit scheduling, determines wall
// time. workers=1 is the sequential engine (the parallel path is bypassed
// entirely), so comparing workers=1 against older baselines also bounds the
// dispatch overhead this feature adds to ordinary parses.
//
//	go test -bench ParseGiantUnit -count 10 ./internal/fmlr/ | benchstat -
func BenchmarkParseGiantUnit(b *testing.B) {
	src := corpus.GiantUnit(42, 3600)
	lang := cgrammar.MustLoad()
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			s := cond.NewSpace(cond.ModeBDD)
			p := preprocessor.New(preprocessor.Options{
				Space: s,
				FS:    preprocessor.MapFS(map[string]string{"main.c": src}),
			})
			u, err := p.Preprocess("main.c")
			if err != nil {
				b.Fatalf("preprocess: %v", err)
			}
			opts := OptAll
			opts.ParseWorkers = w
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := New(s, lang, opts).Parse(u.Segments, "main.c")
				if res.AST == nil {
					b.Fatalf("parse failed: %+v", res.Diags)
				}
			}
		})
	}
}
