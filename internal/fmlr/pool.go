package fmlr

import (
	"sync"

	"repro/internal/ast"
)

// This file holds the allocation-recycling substrate under the parse loop:
// a per-parse scratch block (subparser free-list, stack-node arena, merge
// buckets, and the various transient head/value buffers) recycled across
// parses and engines through a package-level sync.Pool. Everything here is
// strictly parse-internal: a Result never references scratch-owned memory,
// so releaseScratch can zero and recycle it all.

// stackChunkSize is how many stack cells one arena chunk holds.
const stackChunkSize = 256

// stackArena bump-allocates stackNodes in chunks. Stacks are immutable
// singly-linked lists that all die when the parse ends, so the arena resets
// wholesale instead of freeing nodes individually.
type stackArena struct {
	chunks [][]stackNode
	ci     int // current chunk
	n      int // cells used in chunks[ci]
}

func (ar *stackArena) alloc() *stackNode {
	if ar.ci == len(ar.chunks) {
		ar.chunks = append(ar.chunks, make([]stackNode, stackChunkSize))
	}
	if ar.n == stackChunkSize {
		ar.ci++
		ar.n = 0
		if ar.ci == len(ar.chunks) {
			ar.chunks = append(ar.chunks, make([]stackNode, stackChunkSize))
		}
	}
	nd := &ar.chunks[ar.ci][ar.n]
	ar.n++
	return nd
}

// reset zeroes every used cell (dropping AST and tail pointers) and rewinds
// the arena, keeping the chunk memory for the next parse.
func (ar *stackArena) reset() {
	for i := 0; i <= ar.ci && i < len(ar.chunks); i++ {
		clear(ar.chunks[i])
	}
	ar.ci = 0
	ar.n = 0
}

// bucket holds the merge candidates at one forest position. Removal leaves
// a nil tombstone at the subparser's recorded slot, making pop's unindex
// O(1); buckets compact once tombstones dominate.
type bucket struct {
	items []*subparser
	dead  int
}

// parseScratch is the recyclable per-parse state.
type parseScratch struct {
	spFree     []*subparser
	arena      stackArena
	byPos      map[*element]*bucket
	bucketFree []*bucket
	followMemo map[*element][]head
	qbuf       []*subparser
	hist       []int       // live-subparser histogram, indexed by count
	ab         ast.Builder // slab allocator for the produced AST

	oneHead   [1]head
	headsBuf  []head // reclassified heads feeding fork
	followBuf []head // instantiated follow-set
	shiftBuf  []head // fork: lazy-shift group
	groupBuf  []head // fork: one shared-reduce group
	singleBuf []head // fork: ungrouped heads
	prodBuf   []int  // fork: distinct reduce targets
	valsBuf   []*ast.Node
	frameA    []*stackNode // mergeStacks: divergent prefix of q
	frameB    []*stackNode // mergeStacks: divergent prefix of p
}

var scratchPool = sync.Pool{
	New: func() any {
		return &parseScratch{
			byPos:      make(map[*element]*bucket),
			followMemo: make(map[*element][]head),
		}
	},
}

func (sc *parseScratch) newBucket() *bucket {
	if n := len(sc.bucketFree); n > 0 {
		b := sc.bucketFree[n-1]
		sc.bucketFree = sc.bucketFree[:n-1]
		return b
	}
	return &bucket{}
}

// clearHeads zeroes a head buffer's full capacity (heads hold element and
// condition pointers that would otherwise outlive the parse) and returns it
// empty.
func clearHeads(hs []head) []head {
	hs = hs[:cap(hs)]
	clear(hs)
	return hs[:0]
}

// acquireScratch attaches a pooled scratch block to the engine.
func (e *Engine) acquireScratch() {
	e.sc = scratchPool.Get().(*parseScratch)
}

// releaseScratch scrubs every reference the finished parse left behind
// (queue entries survive a kill-switch abort, buckets hold tombstoned
// subparsers, the arena holds AST pointers) and returns the block to the
// pool.
func (e *Engine) releaseScratch() {
	sc := e.sc
	items := e.queue.items[:cap(e.queue.items)]
	clear(items)
	sc.qbuf = items[:0]
	for _, b := range sc.byPos {
		clear(b.items[:cap(b.items)])
		b.items = b.items[:0]
		b.dead = 0
		sc.bucketFree = append(sc.bucketFree, b)
	}
	clear(sc.byPos)
	clear(sc.followMemo)
	clear(sc.hist)
	// Drop the builder's partial slabs: their used cells belong to the
	// returned AST, so a pooled builder would pin them.
	sc.ab = ast.Builder{}
	sc.arena.reset()
	sc.oneHead[0] = head{}
	sc.headsBuf = clearHeads(sc.headsBuf)
	sc.followBuf = clearHeads(sc.followBuf)
	sc.shiftBuf = clearHeads(sc.shiftBuf)
	sc.groupBuf = clearHeads(sc.groupBuf)
	sc.singleBuf = clearHeads(sc.singleBuf)
	clear(sc.valsBuf[:cap(sc.valsBuf)])
	clear(sc.frameA[:cap(sc.frameA)])
	clear(sc.frameB[:cap(sc.frameB)])
	sc.frameA = sc.frameA[:0]
	sc.frameB = sc.frameB[:0]
	e.sc = nil
	e.queue = pq{}
	e.byPos = nil
	e.followMemo = nil
	scratchPool.Put(sc)
}

// newSub takes a subparser from the free-list, or allocates one.
func (e *Engine) newSub() *subparser {
	sc := e.sc
	if n := len(sc.spFree); n > 0 {
		p := sc.spFree[n-1]
		sc.spFree = sc.spFree[:n-1]
		e.stats.SubparserReuses++
		return p
	}
	e.stats.SubparserAllocs++
	return &subparser{}
}

// freeSub recycles a dead subparser. The struct is zeroed so recycled
// entries pin no conditions, stacks, or symbol tables; the caller must not
// touch p afterwards.
func (e *Engine) freeSub(p *subparser) {
	*p = subparser{}
	e.sc.spFree = append(e.sc.spFree, p)
}

// sortHeadsByOrd is a stable insertion sort by document position. Head
// lists are tiny (almost always < 8), where insertion sort beats
// sort.SliceStable and allocates nothing.
func sortHeadsByOrd(hs []head) {
	for i := 1; i < len(hs); i++ {
		h := hs[i]
		j := i - 1
		for j >= 0 && hs[j].el.ord > h.el.ord {
			hs[j+1] = hs[j]
			j--
		}
		hs[j+1] = h
	}
}
