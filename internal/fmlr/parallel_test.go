package fmlr

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/cgrammar"
	"repro/internal/cond"
	"repro/internal/corpus"
	"repro/internal/preprocessor"
	"repro/internal/token"
)

// This file is the differential oracle for the region-parallel parser: the
// sequential engine is ground truth, and the parallel engine must be
// byte-identical to it — rendered AST with presence conditions, diagnostics,
// and every interleaving-independent statistic — at every worker count, on a
// corpus of generated units dense with the constructs that make splitting
// hard (nested conditionals, conditional typedefs, shadowing, conditional
// function bodies). Run it under -race and the same tests double as the
// concurrency soundness check for the shared condition space.

// genUnit generates one deterministic pseudo-random translation unit (see
// corpus.GiantUnit). Every unit is valid C under every configuration.
func genUnit(seed int64, items int) string {
	return corpus.GiantUnit(seed, items)
}

// normStats strips the interleaving/pool-dependent counters, leaving only
// the ones the parallel parse must reproduce exactly. The token-flow split
// (streamed vs materialized, fallback count) is a property of the chosen
// pipeline and of where regions were cut, not of the parse — the streaming
// differential compares it zeroed, and checks Tokens (the sum) exactly.
func normStats(s Stats) Stats {
	s.SubparserAllocs = 0
	s.SubparserReuses = 0
	s.TokensStreamed = 0
	s.TokensMaterialized = 0
	s.StreamFallbacks = 0
	return s
}

// parseWith parses src with the given options through the public Parse
// entry point.
func parseWith(t *testing.T, src string, opts Options) (*Result, *cond.Space) {
	t.Helper()
	return parseSrc(t, map[string]string{"main.c": src}, opts)
}

// astEq is a DAG-aware structural equality check between ASTs from two
// independent parses (and hence two condition spaces): node kinds, labels,
// tokens, child structure, and the *rendered* presence-condition strings must
// all agree. The pair memo keeps it linear on shared subtrees, where a plain
// recursive walk (or StringWithConds) goes exponential.
type astEq struct {
	sa, sb *cond.Space
	memo   map[[2]*ast.Node]bool
}

func (e *astEq) eq(a, b *ast.Node) bool {
	if a == nil || b == nil {
		return a == b
	}
	key := [2]*ast.Node{a, b}
	if v, ok := e.memo[key]; ok {
		return v
	}
	// Optimistically assume equal to terminate on cycles (the AST is acyclic,
	// so this only short-circuits repeated shared pairs).
	e.memo[key] = true
	ok := e.eq1(a, b)
	e.memo[key] = ok
	return ok
}

func (e *astEq) eq1(a, b *ast.Node) bool {
	if a.Kind != b.Kind || a.Label != b.Label ||
		len(a.Children) != len(b.Children) || len(a.Alts) != len(b.Alts) {
		return false
	}
	if (a.Tok == nil) != (b.Tok == nil) {
		return false
	}
	if a.Tok != nil && !tokenEq(*a.Tok, *b.Tok) {
		return false
	}
	for i := range a.Children {
		if !e.eq(a.Children[i], b.Children[i]) {
			return false
		}
	}
	for i := range a.Alts {
		if e.sa.String(a.Alts[i].Cond) != e.sb.String(b.Alts[i].Cond) {
			return false
		}
		if !e.eq(a.Alts[i].Node, b.Alts[i].Node) {
			return false
		}
	}
	return true
}

// tokenEq compares leaf tokens from two independent preprocessor runs. The
// hide set is macro-expansion bookkeeping held by pointer — structurally
// equal runs allocate distinct sets — so it is excluded; everything the
// parser or a renderer can observe is compared.
func tokenEq(a, b token.Token) bool {
	a.Hide, b.Hide = nil, nil
	return a == b
}

func sameAST(sa *cond.Space, a *Result, sb *cond.Space, b *Result) bool {
	eq := &astEq{sa: sa, sb: sb, memo: map[[2]*ast.Node]bool{}}
	return eq.eq(a.AST, b.AST)
}

// sampleAssignments enumerates a deterministic set of macro assignments used
// to cross-check per-configuration projections.
func sampleAssignments() []map[string]bool {
	macros := []string{"FEAT_A", "FEAT_B", "FEAT_C", "FEAT_D", "FEAT_E", "FEAT_F"}
	var out []map[string]bool
	for mask := 0; mask < 1<<len(macros); mask += 7 { // 10 spread-out samples
		m := map[string]bool{}
		for i, name := range macros {
			if mask&(1<<i) != 0 {
				m["(defined "+name+")"] = true
			}
		}
		out = append(out, m)
	}
	return out
}

// TestParallelDifferential is the oracle: generated units parsed at workers
// 2, 4, and 8 must match the sequential parse byte for byte.
func TestParallelDifferential(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			src := genUnit(seed, 120)
			seq, s := parseWith(t, src, OptAll)
			if seq.AST == nil {
				t.Fatalf("sequential parse failed: %+v", seq.Diags)
			}
			wantStats := normStats(seq.Stats)
			assigns := sampleAssignments()
			for _, w := range []int{2, 4, 8} {
				opts := OptAll
				opts.ParseWorkers = w
				par, s2 := parseWith(t, src, opts)
				if !sameAST(s, seq, s2, par) {
					for _, a := range assigns {
						sp, pp := projectTokens(s, seq.AST, a), projectTokens(s2, par.AST, a)
						if sp != pp {
							t.Fatalf("workers=%d projection %v diverges\nseq: %s\npar: %s",
								w, a, clip(sp), clip(pp))
						}
					}
					t.Fatalf("workers=%d AST structure diverges from sequential (projections agree)", w)
				}
				for _, a := range assigns {
					if sp, pp := projectTokens(s, seq.AST, a), projectTokens(s2, par.AST, a); sp != pp {
						t.Fatalf("workers=%d projection %v diverges\nseq: %s\npar: %s", w, a, clip(sp), clip(pp))
					}
				}
				if len(par.Diags) != len(seq.Diags) || par.Killed != seq.Killed {
					t.Fatalf("workers=%d diags/killed diverge: %d/%v vs %d/%v",
						w, len(par.Diags), par.Killed, len(seq.Diags), seq.Killed)
				}
				if gs := normStats(par.Stats); !reflect.DeepEqual(gs, wantStats) {
					t.Fatalf("workers=%d stats diverge:\nseq: %+v\npar: %+v", w, wantStats, gs)
				}
			}
		})
	}
}

func clip(s string) string {
	if len(s) > 4000 {
		return s[:4000] + "..."
	}
	return s
}

// TestParallelPathEngages pins that the corpus actually exercises the
// parallel path rather than silently falling back — otherwise the
// differential test proves nothing.
func TestParallelPathEngages(t *testing.T) {
	src := genUnit(1, 120)
	s := cond.NewSpace(cond.ModeBDD)
	p := preprocessor.New(preprocessor.Options{Space: s, FS: preprocessor.MapFS(map[string]string{"main.c": src})})
	u, err := p.Preprocess("main.c")
	if err != nil {
		t.Fatalf("preprocess: %v", err)
	}
	opts := OptAll
	opts.ParseWorkers = 4
	eng := New(s, cgrammar.MustLoad(), opts)
	res, ok := eng.parseParallel(u.Segments, nil, "main.c")
	if !ok {
		t.Fatal("parseParallel declined the generated corpus; differential coverage is vacuous")
	}
	if res.AST == nil {
		t.Fatal("parallel parse produced no AST")
	}
}

// TestParallelSplitDeclines checks the conservative bail-outs: tiny units,
// SAT-mode spaces, and units whose typedefs straddle conditionals must fall
// back (and still produce the sequential answer through Parse).
func TestParallelSplitDeclines(t *testing.T) {
	t.Run("tiny", func(t *testing.T) {
		opts := OptAll
		opts.ParseWorkers = 8
		res, _ := parseWith(t, "int x;\n", opts)
		if res.AST == nil {
			t.Fatalf("tiny unit failed: %+v", res.Diags)
		}
	})
	t.Run("straddling-typedef", func(t *testing.T) {
		// The typedef keyword and its declarator live in different branches;
		// the prescan must poison rather than mis-seed, and Parse must still
		// agree with sequential.
		var b strings.Builder
		b.WriteString("#ifdef FEAT_A\ntypedef int\n#else\ntypedef long\n#endif\nweird_t;\n")
		b.WriteString("weird_t w = 0;\n")
		b.WriteString(genUnit(9, 80))
		src := b.String()
		seq, s := parseWith(t, src, OptAll)
		opts := OptAll
		opts.ParseWorkers = 4
		par, s2 := parseWith(t, src, opts)
		if !sameAST(s, seq, s2, par) {
			t.Fatal("straddling-typedef unit diverges from sequential")
		}
		if !reflect.DeepEqual(normStats(par.Stats), normStats(seq.Stats)) {
			t.Fatalf("stats diverge:\nseq: %+v\npar: %+v", normStats(seq.Stats), normStats(par.Stats))
		}
	})
	t.Run("sat-mode", func(t *testing.T) {
		src := genUnit(3, 120)
		s := cond.NewSpace(cond.ModeSAT)
		p := preprocessor.New(preprocessor.Options{Space: s, FS: preprocessor.MapFS(map[string]string{"main.c": src})})
		u, err := p.Preprocess("main.c")
		if err != nil {
			t.Fatalf("preprocess: %v", err)
		}
		opts := OptAll
		opts.ParseWorkers = 4
		eng := New(s, cgrammar.MustLoad(), opts)
		if _, ok := eng.parseParallel(u.Segments, nil, "main.c"); ok {
			t.Fatal("parseParallel admitted a SAT-mode space")
		}
		if res := eng.Parse(u.Segments, "main.c"); res.AST == nil {
			t.Fatalf("SAT-mode fallback parse failed: %+v", res.Diags)
		}
	})
}

// TestParallelDeterministicAcrossRuns parses the same unit twice at the same
// worker count; byte-identical output must not depend on scheduling.
func TestParallelDeterministicAcrossRuns(t *testing.T) {
	src := genUnit(7, 120)
	opts := OptAll
	opts.ParseWorkers = 8
	a, s1 := parseWith(t, src, opts)
	b, s2 := parseWith(t, src, opts)
	if !sameAST(s1, a, s2, b) {
		t.Fatal("two parallel runs of the same unit disagree")
	}
	if !reflect.DeepEqual(normStats(a.Stats), normStats(b.Stats)) {
		t.Fatalf("stats differ across runs:\n%+v\n%+v", normStats(a.Stats), normStats(b.Stats))
	}
}
