package fmlr

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/cgrammar"
	"repro/internal/cond"
	"repro/internal/corpus"
	"repro/internal/hcache"
	"repro/internal/preprocessor"
)

// This file is the differential oracle for the stream-fused token pipeline:
// the materialized segment-slab parse is ground truth, and the streaming
// parse (chunk runs feeding the engine's cursor fast path) must reproduce
// it byte for byte — AST with rendered presence conditions, diagnostics,
// kill flag, and every pipeline-independent statistic — at every worker
// count and with the header cache on or off. Run under -race these tests
// double as the concurrency check for streamed region parses.

// preprocessChunked preprocesses main.c with the streaming preprocessor and
// fails the test on a hard preprocessing error.
func preprocessChunked(t *testing.T, files map[string]string) (*preprocessor.Unit, *cond.Space) {
	t.Helper()
	s := cond.NewSpace(cond.ModeBDD)
	p := preprocessor.New(preprocessor.Options{
		Space:  s,
		FS:     preprocessor.MapFS(files),
		Stream: true,
	})
	u, err := p.Preprocess("main.c")
	if err != nil {
		t.Fatalf("preprocess: %v", err)
	}
	return u, s
}

// parseChunked preprocesses with streaming on and parses through ParseUnit.
func parseChunked(t *testing.T, files map[string]string, opts Options) (*Result, *cond.Space) {
	t.Helper()
	u, s := preprocessChunked(t, files)
	eng := New(s, cgrammar.MustLoad(), opts)
	return eng.ParseUnit(u), s
}

// diagMsgs projects the space-independent part of parse diagnostics.
func diagMsgs(diags []Diagnostic) []string {
	out := make([]string, len(diags))
	for i, d := range diags {
		out[i] = d.Msg
	}
	return out
}

// checkStreamEquiv asserts the streaming result is byte-identical to the
// materialized ground truth, and that the streaming flow counters are
// internally consistent (the split sums to the token total).
func checkStreamEquiv(t *testing.T, label string, sa *cond.Space, want *Result, sb *cond.Space, got *Result) {
	t.Helper()
	if !sameAST(sa, want, sb, got) {
		t.Fatalf("%s: AST diverges from materialized parse", label)
	}
	if got.Killed != want.Killed {
		t.Fatalf("%s: killed diverges: %v vs %v", label, got.Killed, want.Killed)
	}
	if !reflect.DeepEqual(diagMsgs(got.Diags), diagMsgs(want.Diags)) {
		t.Fatalf("%s: diagnostics diverge:\nmat: %v\nstr: %v",
			label, diagMsgs(want.Diags), diagMsgs(got.Diags))
	}
	if gs, ws := normStats(got.Stats), normStats(want.Stats); !reflect.DeepEqual(gs, ws) {
		t.Fatalf("%s: stats diverge:\nmat: %+v\nstr: %+v", label, ws, gs)
	}
	if sum := got.Stats.TokensStreamed + got.Stats.TokensMaterialized; sum != got.Stats.Tokens {
		t.Fatalf("%s: flow split %d streamed + %d materialized != %d tokens",
			label, got.Stats.TokensStreamed, got.Stats.TokensMaterialized, got.Stats.Tokens)
	}
}

// TestStreamPathEngages pins that the streaming pipeline actually streams —
// chunks present, the cursor fast path consuming the bulk of the tokens on a
// run-heavy unit — so the differential tests below prove something. Tokens
// are only counted as streamed when the cursor gear shifts them straight off
// the chunk run; after a conditional episode the engine materializes the
// next chunk for the surviving subparsers, so conditional-dense units (the
// generated corpus alternates ~25-token runs with conditionals) legitimately
// stream only their boot run plus any multi-chunk stretches. The second
// subtest pins exactly that weaker property so a regression to zero still
// trips.
func TestStreamPathEngages(t *testing.T) {
	t.Run("run-heavy", func(t *testing.T) {
		// Two long unconditional stretches (several 512-token chunks each)
		// around one conditional: the cursor must stream the boot stretch,
		// fall back across the conditional, and re-engage after it.
		stretch := strings.Repeat("int pad(int a)\n{\n\treturn a + 1;\n}\n", 120)
		src := stretch + "#ifdef FEAT_A\nint mid;\n#else\nlong mid;\n#endif\n" + stretch
		files := map[string]string{"main.c": src}
		u, s := preprocessChunked(t, files)
		if u.Chunks == nil {
			t.Fatal("streaming preprocessor produced no chunks")
		}
		res := New(s, cgrammar.MustLoad(), OptAll).ParseUnit(u)
		if res.AST == nil {
			t.Fatalf("streamed parse failed: %+v", res.Diags)
		}
		if res.Stats.TokensStreamed < res.Stats.TokensMaterialized {
			t.Fatalf("fast path underused on run-heavy unit: %d streamed vs %d materialized",
				res.Stats.TokensStreamed, res.Stats.TokensMaterialized)
		}
	})
	t.Run("conditional-dense", func(t *testing.T) {
		files := map[string]string{"main.c": genUnit(1, 120)}
		u, s := preprocessChunked(t, files)
		if u.Chunks == nil {
			t.Fatal("streaming preprocessor produced no chunks")
		}
		res := New(s, cgrammar.MustLoad(), OptAll).ParseUnit(u)
		if res.AST == nil {
			t.Fatalf("streamed parse failed: %+v", res.Diags)
		}
		if res.Stats.TokensStreamed == 0 {
			t.Fatal("no tokens took the streaming fast path; coverage is vacuous")
		}
	})
}

// TestStreamDifferential is the oracle over generated units: streaming at
// workers 1 and 4 must match the materialized sequential parse byte for byte.
func TestStreamDifferential(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			files := map[string]string{"main.c": genUnit(seed, 120)}
			want, sa := parseSrc(t, files, OptAll)
			if want.AST == nil {
				t.Fatalf("materialized parse failed: %+v", want.Diags)
			}
			for _, w := range []int{1, 4} {
				opts := OptAll
				opts.ParseWorkers = w
				got, sb := parseChunked(t, files, opts)
				checkStreamEquiv(t, fmt.Sprintf("workers=%d", w), sa, want, sb, got)
			}
		})
	}
}

// TestStreamDifferentialShapes covers the shapes that stress the fast
// path's bail-outs: conditionals at the start, middle, and end of the unit
// (cursor exit and re-entry), ambiguous typedef names (classification
// bail), parse errors inside a run, and units small enough to be pure
// boot-path.
func TestStreamDifferentialShapes(t *testing.T) {
	pad := strings.Repeat("int pad(int a)\n{\n\treturn a;\n}\n", 20)
	cases := map[string]string{
		"empty":          "",
		"tiny":           "int x;\n",
		"cond-at-start":  "#ifdef A\nint a;\n#endif\n" + pad,
		"cond-at-end":    pad + "#ifdef A\nint z;\n#endif\n",
		"cond-in-middle": pad + "#ifdef A\nint m;\n#else\nlong m;\n#endif\n" + pad,
		"ambiguous-typedef": "#ifdef A\ntypedef int T;\n#else\nint T;\n#endif\n" +
			"int f(void)\n{\n\treturn sizeof(T);\n}\n" + pad,
		"conditional-typedef-use": "#ifdef A\ntypedef int ct;\n#else\ntypedef long ct;\n#endif\nct v;\n" + pad,
		"parse-error":             pad + "int bad = = 3;\n" + pad,
		"error-at-eof":            pad + "int trailing = ;\n",
		"macro-heavy":             "#define THREE(a,b,c) a + b + c\nint v = THREE(1, 2, 3);\n" + pad,
		"only-conditional":        "#ifdef A\nint a;\n#else\nint b;\n#endif\n",
	}
	for name, src := range cases {
		name, src := name, src
		t.Run(name, func(t *testing.T) {
			files := map[string]string{"main.c": src}
			want, sa := parseSrc(t, files, OptAll)
			for _, w := range []int{1, 4} {
				opts := OptAll
				opts.ParseWorkers = w
				got, sb := parseChunked(t, files, opts)
				checkStreamEquiv(t, fmt.Sprintf("workers=%d", w), sa, want, sb, got)
			}
		})
	}
}

// TestStreamCorpusDifferential runs the oracle over real corpus units —
// includes, macro tables, the works — crossing worker counts with the
// header cache on and off. Cached header replays and cold preprocessing
// must both feed the streaming parser the same chunks.
func TestStreamCorpusDifferential(t *testing.T) {
	c := corpus.Generate(corpus.Params{Seed: 1, CFiles: 6, GenHeaders: 8})
	includes := []string{"include", "include/gen", "include/linux"}
	preprocess := func(t *testing.T, cf string, stream bool, hc *hcache.Cache) (*preprocessor.Unit, *cond.Space) {
		t.Helper()
		s := cond.NewSpace(cond.ModeBDD)
		p := preprocessor.New(preprocessor.Options{
			Space:        s,
			FS:           c.FS,
			IncludePaths: includes,
			HeaderCache:  hc,
			Stream:       stream,
		})
		u, err := p.Preprocess(cf)
		if err != nil {
			t.Fatalf("%s: preprocess: %v", cf, err)
		}
		return u, s
	}
	lang := cgrammar.MustLoad()
	for _, cached := range []bool{false, true} {
		var hc *hcache.Cache
		label := "nocache"
		if cached {
			hc = hcache.New(hcache.Options{})
			label = "hcache"
		}
		t.Run(label, func(t *testing.T) {
			for _, cf := range c.CFiles {
				u, sa := preprocess(t, cf, false, hc)
				want := New(sa, lang, OptAll).Parse(u.EnsureSegments(), cf)
				for _, w := range []int{1, 4} {
					opts := OptAll
					opts.ParseWorkers = w
					su, sb := preprocess(t, cf, true, hc)
					if su.Chunks == nil {
						t.Fatalf("%s: streaming preprocess produced no chunks", cf)
					}
					got := New(sb, lang, opts).ParseUnit(su)
					checkStreamEquiv(t, fmt.Sprintf("%s workers=%d", cf, w), sa, want, sb, got)
				}
			}
		})
	}
}

// TestStreamKillSwitchOption pins the kill switch: Options.NoStream on a
// chunked unit must take the materialized path (no streamed tokens) and
// still produce the identical result.
func TestStreamKillSwitchOption(t *testing.T) {
	// genUnit(2) happens to open with a conditional, so its boot run streams
	// nothing; prepend a plain run so the "streaming streams" half of the
	// test has something to stream.
	src := strings.Repeat("int pad(int a)\n{\n\treturn a;\n}\n", 20) + genUnit(2, 120)
	files := map[string]string{"main.c": src}
	u, s := preprocessChunked(t, files)
	opts := OptAll
	opts.NoStream = true
	off := New(s, cgrammar.MustLoad(), opts).ParseUnit(u)
	if off.Stats.TokensStreamed != 0 {
		t.Fatalf("NoStream parse streamed %d tokens", off.Stats.TokensStreamed)
	}
	on := New(s, cgrammar.MustLoad(), OptAll).ParseUnit(u)
	if on.Stats.TokensStreamed == 0 {
		t.Fatal("streaming parse streamed nothing")
	}
	if !sameAST(s, off, s, on) {
		t.Fatal("NoStream and streaming parses diverge")
	}
	if !reflect.DeepEqual(normStats(off.Stats), normStats(on.Stats)) {
		t.Fatalf("stats diverge:\noff: %+v\non:  %+v", normStats(off.Stats), normStats(on.Stats))
	}
}

// FuzzStreamTokens fuzzes the pipeline equivalence on arbitrary source
// text: whatever the preprocessor emits, the streaming parse must equal the
// materialized parse — ASTs, diagnostics, kill flag, and normalized stats.
func FuzzStreamTokens(f *testing.F) {
	f.Add("int x;\n")
	f.Add("")
	f.Add(genUnit(1, 40))
	f.Add(genUnit(5, 25))
	f.Add("#ifdef A\nint a;\n#endif\nint tail;\n")
	f.Add("int head;\n#ifdef A\nint a;\n#else\nlong a;\n#endif\n")
	f.Add("#ifdef A\ntypedef int T;\n#else\nint T;\n#endif\nint f(void)\n{\n\treturn sizeof(T);\n}\n")
	f.Add("int bad = = 1;\nint fine;\n")
	f.Add("#define P(x) (x)\nint v = P(P(2));\n")
	lang := cgrammar.MustLoad()
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<13 {
			return
		}
		files := map[string]string{"main.c": src}
		sa := cond.NewSpace(cond.ModeBDD)
		pa := preprocessor.New(preprocessor.Options{Space: sa, FS: preprocessor.MapFS(files)})
		ua, errA := pa.Preprocess("main.c")
		sb := cond.NewSpace(cond.ModeBDD)
		pb := preprocessor.New(preprocessor.Options{Space: sb, FS: preprocessor.MapFS(files), Stream: true})
		ub, errB := pb.Preprocess("main.c")
		if (errA != nil) != (errB != nil) {
			t.Fatalf("preprocess error diverges: %v vs %v", errA, errB)
		}
		if errA != nil {
			return
		}
		want := New(sa, lang, OptAll).Parse(ua.Segments, "main.c")
		for _, w := range []int{1, 4} {
			opts := OptAll
			opts.ParseWorkers = w
			got := New(sb, lang, opts).ParseUnit(ub)
			if !sameAST(sa, want, sb, got) {
				t.Fatalf("workers=%d: streamed AST diverges", w)
			}
			if got.Killed != want.Killed || !reflect.DeepEqual(diagMsgs(got.Diags), diagMsgs(want.Diags)) {
				t.Fatalf("workers=%d: diags/killed diverge", w)
			}
			if gs, ws := normStats(got.Stats), normStats(want.Stats); !reflect.DeepEqual(gs, ws) {
				t.Fatalf("workers=%d: stats diverge:\nmat: %+v\nstr: %+v", w, ws, gs)
			}
		}
	})
}
