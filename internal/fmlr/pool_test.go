package fmlr

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/cgrammar"
	"repro/internal/cond"
	"repro/internal/preprocessor"
)

// randomConditionalSource synthesizes a unit with nested conditionals,
// empty branches, elses, and typedef variability — the forest shapes the
// follow-set memo and the pooling paths must survive.
func randomConditionalSource(r *rand.Rand, decls int) string {
	var b strings.Builder
	b.WriteString("typedef int base_t;\n")
	for i := 0; i < decls; i++ {
		switch r.Intn(5) {
		case 0:
			fmt.Fprintf(&b, "#ifdef CONFIG_%c\nint a%d;\n#endif\n", 'A'+r.Intn(4), i)
		case 1:
			fmt.Fprintf(&b, "#ifdef CONFIG_%c\nlong b%d;\n#else\nshort b%d;\n#endif\n",
				'A'+r.Intn(4), i, i)
		case 2:
			fmt.Fprintf(&b,
				"#ifdef CONFIG_%c\n#ifdef CONFIG_%c\ntypedef int t%d;\n#endif\nbase_t c%d;\n#endif\n",
				'A'+r.Intn(4), 'A'+r.Intn(4), i, i)
		case 3:
			fmt.Fprintf(&b, "#ifdef CONFIG_%c\n#else\n#endif\nint d%d(void) { return %d; }\n",
				'A'+r.Intn(4), i, i)
		default:
			fmt.Fprintf(&b, "int e%d;\n", i)
		}
	}
	return b.String()
}

// TestFollowMemoMatchesDirect is the differential test for follow-set
// memoization: every memoized follow(c, a) must equal the direct
// Algorithm 3 traversal followCompute(c, a) — same elements, same order,
// equivalent conditions.
func TestFollowMemoMatchesDirect(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 8; trial++ {
		src := randomConditionalSource(r, 12)
		s := cond.NewSpace(cond.ModeBDD)
		p := preprocessor.New(preprocessor.Options{Space: s, FS: preprocessor.MapFS(map[string]string{"main.c": src})})
		u, err := p.Preprocess("main.c")
		if err != nil {
			t.Fatalf("preprocess: %v", err)
		}
		eng := New(s, cgrammar.MustLoad(), OptAll)
		eng.acquireScratch()
		first, _ := buildForest(u.Segments, "main.c")
		eng.followMemo = eng.sc.followMemo

		// Walk every conditional element and query follow under a variety
		// of conditions, twice each (second query hits the memo).
		conds := []cond.Cond{
			s.True(),
			s.Var("CONFIG_A"),
			s.Not(s.Var("CONFIG_B")),
			s.And(s.Var("CONFIG_A"), s.Var("CONFIG_C")),
			s.Or(s.Var("CONFIG_B"), s.Not(s.Var("CONFIG_D"))),
		}
		var els []*element
		var collect func(el *element)
		collect = func(el *element) {
			for ; el != nil; el = el.next {
				els = append(els, el)
				if el.cnd != nil {
					for _, br := range el.cnd.branches {
						collect(br.first)
					}
				}
			}
		}
		collect(first)
		for _, el := range els {
			for round := 0; round < 2; round++ {
				for _, c := range conds {
					got := append([]head(nil), eng.follow(c, el)...)
					want := eng.followCompute(c, el)
					if len(got) != len(want) {
						t.Fatalf("trial %d el %d cond %s: memoized %d heads, direct %d",
							trial, el.ord, s.String(c), len(got), len(want))
					}
					for i := range got {
						if got[i].el != want[i].el {
							t.Fatalf("trial %d el %d: head %d element mismatch (ord %d vs %d)",
								trial, el.ord, i, got[i].el.ord, want[i].el.ord)
						}
						if !s.Equal(got[i].cond, want[i].cond) {
							t.Fatalf("trial %d el %d head %d: cond %s != %s",
								trial, el.ord, i, s.String(got[i].cond), s.String(want[i].cond))
						}
					}
				}
			}
		}
		if eng.stats.FollowMisses == 0 || eng.stats.FollowHits == 0 {
			t.Fatalf("memo not exercised: %d hits, %d misses", eng.stats.FollowHits, eng.stats.FollowMisses)
		}
		eng.releaseScratch()
	}
}

// TestPooledParseMatchesUnitTests re-parses randomized units at every
// optimization level and checks the levels agree with each other on the
// projected token streams — the pooling layers (subparser free-list, stack
// arena, AST slabs) must not leak state between subparsers or parses. The
// same engine re-parses each unit twice to exercise scratch recycling.
func TestPooledParseMatchesUnitTests(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	levels := []Options{OptAll, OptSharedLazy, OptShared, OptLazy, OptFollowOnly}
	assigns := []map[string]bool{
		{"CONFIG_A": true, "CONFIG_B": true, "CONFIG_C": true, "CONFIG_D": true},
		{"CONFIG_A": false, "CONFIG_B": true, "CONFIG_C": false, "CONFIG_D": true},
		{"CONFIG_A": true, "CONFIG_B": false, "CONFIG_C": true, "CONFIG_D": false},
		{"CONFIG_A": false, "CONFIG_B": false, "CONFIG_C": false, "CONFIG_D": false},
	}
	for trial := 0; trial < 6; trial++ {
		src := randomConditionalSource(r, 10)
		var ref []string
		for li, opts := range levels {
			s := cond.NewSpace(cond.ModeBDD)
			p := preprocessor.New(preprocessor.Options{Space: s, FS: preprocessor.MapFS(map[string]string{"main.c": src})})
			u, err := p.Preprocess("main.c")
			if err != nil {
				t.Fatalf("preprocess: %v", err)
			}
			eng := New(s, cgrammar.MustLoad(), opts)
			res := eng.Parse(u.Segments, "main.c")
			res2 := eng.Parse(u.Segments, "main.c")
			for pass, rr := range []*Result{res, res2} {
				if rr.AST == nil || len(rr.Diags) != 0 || rr.Killed {
					t.Fatalf("trial %d level %d pass %d: AST=%v diags=%v killed=%v\n%s",
						trial, li, pass, rr.AST != nil, rr.Diags, rr.Killed, src)
				}
				var projected []string
				for _, a := range assigns {
					projected = append(projected, projectTokens(s, rr.AST, a))
				}
				if ref == nil {
					ref = projected
					continue
				}
				for ai := range assigns {
					if projected[ai] != ref[ai] {
						t.Fatalf("trial %d level %d pass %d assign %d: projection diverged\n got: %s\nwant: %s",
							trial, li, pass, ai, projected[ai], ref[ai])
					}
				}
			}
		}
	}
}

// TestSubparserPoolAccounting checks the free-list is actually cycling:
// any non-trivial parse must reuse far more subparsers than it allocates.
func TestSubparserPoolAccounting(t *testing.T) {
	src := randomConditionalSource(rand.New(rand.NewSource(3)), 24)
	res, _ := parseOK(t, src, OptAll)
	st := res.Stats
	// The package-level scratch pool may already be warm, in which case a
	// parse can run on recycled subparsers alone — but reuse must dominate.
	if st.SubparserReuses == 0 {
		t.Errorf("free-list never cycled: %d reuses vs %d allocs", st.SubparserReuses, st.SubparserAllocs)
	}
	if st.SubparserReuses < st.SubparserAllocs {
		t.Errorf("free-list barely used: %d reuses vs %d allocs", st.SubparserReuses, st.SubparserAllocs)
	}
	if st.FollowMisses == 0 {
		t.Error("follow memo recorded no misses on a conditional-heavy unit")
	}
}
