package fmlr

import (
	"sort"

	"repro/internal/cond"
	"repro/internal/lalr"
)

// head is one element of a subparser's follow-set: an ordinary token
// element present under cond. sym caches the terminal classification; a
// reclassified head (typedef name) carries the override here.
type head struct {
	cond cond.Cond
	el   *element // el.tok != nil
	sym  lalr.Symbol
	// reclassified marks heads whose sym was fixed by the context plugin;
	// they skip reclassification when acted upon.
	reclassified bool
}

// follow computes the token follow-set of (c, a) — paper Algorithm 3. It
// returns the first ordinary token on each path through static conditionals
// from a, with its presence condition: the source code's *actual*
// variability at this input position. Each token element appears exactly
// once, and the result is ordered by document position.
func (e *Engine) follow(c cond.Cond, a *element) []head {
	s := e.space
	var T []head
	addToken := func(c cond.Cond, el *element) {
		for i := range T {
			if T[i].el == el {
				T[i].cond = s.Or(T[i].cond, c)
				return
			}
		}
		T = append(T, head{cond: c, el: el})
	}

	// first scans the elements of one nesting level starting at a (paper's
	// nested First): it adds the first token of each configuration to T and
	// returns the remaining configuration — the conditions under which this
	// level ran out of elements without providing a token.
	var first func(c cond.Cond, a *element) cond.Cond
	first = func(c cond.Cond, a *element) cond.Cond {
		for a != nil {
			if s.IsFalse(c) {
				return c
			}
			if a.tok != nil {
				addToken(c, a)
				return s.False()
			}
			// a is a conditional: recurse into its feasible branches.
			cr := s.False()
			covered := s.False()
			for _, br := range a.cnd.branches {
				covered = s.Or(covered, br.cond)
				bc := s.And(c, br.cond)
				if s.IsFalse(bc) {
					continue
				}
				if br.first == nil {
					cr = s.Or(cr, bc) // empty branch: configuration remains
					continue
				}
				cr = s.Or(cr, first(bc, br.first))
			}
			// Configurations matching no explicit branch (the implicit
			// else) also remain.
			cr = s.Or(cr, s.AndNot(c, covered))
			c = cr
			a = a.next // advance within this level only
		}
		return c
	}

	cur, el := c, a
	for el != nil && !s.IsFalse(cur) {
		cur = first(cur, el)
		if s.IsFalse(cur) {
			break
		}
		// This level is exhausted for the remaining configuration: step out
		// of the enclosing conditional and continue after it.
		last := el
		for last.next != nil {
			last = last.next
		}
		el = after(last)
	}
	sort.SliceStable(T, func(i, j int) bool { return T[i].el.ord < T[j].el.ord })
	return T
}
