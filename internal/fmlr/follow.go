package fmlr

import (
	"repro/internal/cond"
	"repro/internal/lalr"
)

// head is one element of a subparser's follow-set: an ordinary token
// element present under cond. sym caches the terminal classification; a
// reclassified head (typedef name) carries the override here.
type head struct {
	cond cond.Cond
	el   *element // el.tok != nil
	sym  lalr.Symbol
	// reclassified marks heads whose sym was fixed by the context plugin;
	// they skip reclassification when acted upon.
	reclassified bool
}

// follow computes the token follow-set of (c, a) — paper Algorithm 3. It
// returns the first ordinary token on each path through static conditionals
// from a, with its presence condition: the source code's *actual*
// variability at this input position. Each token element appears exactly
// once, and the result is ordered by document position.
//
// The computation is memoized per element: Algorithm 3 is linear in its
// entry condition c — c only ever enters the result as a leading conjunct,
// and the infeasibility checks merely prune terms that instantiation would
// prune anyway — so follow(c, a) = {(c ∧ tᵢ, elᵢ) | c ∧ tᵢ ≠ false} where
// the (tᵢ, elᵢ) template is follow(True, a), computed once per element.
// Subparsers at the same position under different conditions (the common
// case after a fork) then share one traversal.
//
// The returned slice is scratch storage, valid until the next follow call.
func (e *Engine) follow(c cond.Cond, a *element) []head {
	tmpl, ok := e.followMemo[a]
	if !ok {
		e.stats.FollowMisses++
		tmpl = e.followCompute(e.space.True(), a)
		e.followMemo[a] = tmpl
	} else {
		e.stats.FollowHits++
	}
	s := e.space
	sc := e.sc
	sc.followBuf = sc.followBuf[:0]
	if s.IsTrue(c) {
		return append(sc.followBuf, tmpl...)
	}
	for _, h := range tmpl {
		hc := s.And(c, h.cond)
		if s.IsFalse(hc) {
			continue
		}
		sc.followBuf = append(sc.followBuf, head{cond: hc, el: h.el})
	}
	return sc.followBuf
}

// followCompute is the uncached Algorithm 3 traversal.
func (e *Engine) followCompute(c cond.Cond, a *element) []head {
	s := e.space
	var T []head
	addToken := func(c cond.Cond, el *element) {
		for i := range T {
			if T[i].el == el {
				T[i].cond = s.Or(T[i].cond, c)
				return
			}
		}
		T = append(T, head{cond: c, el: el})
	}

	// first scans the elements of one nesting level starting at a (paper's
	// nested First): it adds the first token of each configuration to T and
	// returns the remaining configuration — the conditions under which this
	// level ran out of elements without providing a token.
	var first func(c cond.Cond, a *element) cond.Cond
	first = func(c cond.Cond, a *element) cond.Cond {
		for a != nil {
			if s.IsFalse(c) {
				return c
			}
			if a.tok != nil {
				addToken(c, a)
				return s.False()
			}
			// a is a conditional: recurse into its feasible branches.
			cr := s.False()
			covered := s.False()
			for _, br := range a.cnd.branches {
				covered = s.Or(covered, br.cond)
				bc := s.And(c, br.cond)
				if s.IsFalse(bc) {
					continue
				}
				if br.first == nil {
					cr = s.Or(cr, bc) // empty branch: configuration remains
					continue
				}
				cr = s.Or(cr, first(bc, br.first))
			}
			// Configurations matching no explicit branch (the implicit
			// else) also remain.
			cr = s.Or(cr, s.AndNot(c, covered))
			c = cr
			a = a.next // advance within this level only
		}
		return c
	}

	cur, el := c, a
	for el != nil && !s.IsFalse(cur) {
		cur = first(cur, el)
		if s.IsFalse(cur) {
			break
		}
		// This level is exhausted for the remaining configuration: step out
		// of the enclosing conditional and continue after it.
		last := el
		for last.next != nil {
			last = last.next
		}
		el = e.after(last)
	}
	sortHeadsByOrd(T)
	return T
}
