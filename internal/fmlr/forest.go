// Package fmlr implements SuperC's Fork-Merge LR parser (paper §4).
//
// An FMLR parser runs a set of LR subparsers over the preprocessor's token
// forest. Each subparser recognizes one presence condition's view of the
// input; subparsers fork when static conditionals introduce variability and
// merge as soon as their stacks coincide again, producing one AST with
// static choice nodes. A priority queue ordered by input position
// guarantees no subparser outruns the others, maximizing merge
// opportunities.
//
// Four optimizations (paper §4.2–4.4) bound the subparser population: the
// token follow-set captures actual variability instead of conditional
// syntax; early reduces order reductions before shifts at the same head;
// lazy shifts delay forking of shift-bound heads; and shared reduces apply
// one reduction to a single stack on behalf of many heads. The naive
// strategy of forking per conditional branch (MAPR) is retained as a
// baseline.
package fmlr

import (
	"repro/internal/ast"
	"repro/internal/cond"
	"repro/internal/lalr"
	"repro/internal/preprocessor"
	"repro/internal/token"
)

// element is a node of the navigable token forest: exactly one of tok and
// cnd is set. Elements link forward within their branch and upward to the
// enclosing branch, supporting Algorithm 3's "next token or conditional
// after a, stepping out of conditionals".
type element struct {
	tok  *token.Token
	cnd  *condElem
	next *element  // next element within the same branch (nil at branch end)
	up   *element  // the conditional element containing this one (nil at top level)
	ord  int       // document order; queue priority
	leaf *ast.Node // cached AST leaf: subparsers shifting the same token
	// share one node, so stacks that parsed the same region stay
	// pointer-comparable for merging

	// Cached context-free terminal classification (engine.reclassify):
	// every subparser visiting this token needs it, and it never changes.
	cls    lalr.Symbol
	clsOK  bool
	clsSet bool
}

// leafNode returns the element's shared AST leaf, built from the parse's
// slab allocator on first use.
func (e *element) leafNode(b *ast.Builder) *ast.Node {
	if e.leaf == nil {
		e.leaf = b.Leaf(*e.tok)
	}
	return e.leaf
}

// condElem is a conditional in the forest.
type condElem struct {
	branches []branchElem
}

// branchElem is one branch of a conditional.
type branchElem struct {
	cond  cond.Cond
	first *element // nil for an empty branch
}

// elemSlabSize is how many elements one forest slab allocation covers.
// Elements are small, numerous, and all die with the parse.
const elemSlabSize = 256

// forestBuilder slab-allocates forest elements with a monotonically
// increasing document order. buildForest uses one for the whole unit; the
// streaming parse (stream.go) keeps one alive across chunks so lazily
// materialized elements continue the same ord sequence.
type forestBuilder struct {
	slab   []element
	ord    int
	tokens int // ordinary tokens materialized so far (EOF excluded)
}

func (fb *forestBuilder) newElem(up *element) *element {
	if len(fb.slab) == 0 {
		fb.slab = make([]element, elemSlabSize)
	}
	el := &fb.slab[0]
	fb.slab = fb.slab[1:]
	el.up = up
	el.ord = fb.ord
	fb.ord++
	return el
}

// convert builds the linked forest of one segment slice, returning its
// first element (nil when the slice holds no feasible content).
func (fb *forestBuilder) convert(segs []preprocessor.Segment, up *element) *element {
	var head, tail *element
	link := func(e *element) {
		if tail == nil {
			head = e
		} else {
			tail.next = e
		}
		tail = e
	}
	for _, sg := range segs {
		e := fb.newElem(up)
		if sg.IsToken() {
			e.tok = sg.Tok
			fb.tokens++
			link(e)
			continue
		}
		ce := &condElem{}
		e.cnd = ce
		link(e)
		for _, br := range sg.Cond.Branches {
			ce.branches = append(ce.branches, branchElem{
				cond:  br.Cond,
				first: fb.convert(br.Segs, e),
			})
		}
	}
	return head
}

// convertRun builds a top-level element chain over a dense token run,
// pointing each element at the run's storage (no token copies).
func (fb *forestBuilder) convertRun(run []token.Token) (head, tail *element) {
	for i := range run {
		e := fb.newElem(nil)
		e.tok = &run[i]
		fb.tokens++
		if tail == nil {
			head = e
		} else {
			tail.next = e
		}
		tail = e
	}
	return head, tail
}

// newEOF builds the synthetic end-of-input element.
func (fb *forestBuilder) newEOF(file string) *element {
	eof := fb.newElem(nil)
	eof.tok = &token.Token{Kind: token.EOF, File: file}
	return eof
}

// buildForest converts preprocessor segments into the linked forest,
// appending a synthetic EOF token. It returns the first element and the
// total token count.
func buildForest(segs []preprocessor.Segment, file string) (first *element, tokens int) {
	var fb forestBuilder
	first = fb.convert(segs, nil)
	eof := fb.newEOF(file)
	if first == nil {
		return eof, fb.tokens
	}
	// Append EOF at top level.
	last := first
	for last.next != nil {
		last = last.next
	}
	last.next = eof
	return first, fb.tokens
}

// after returns the next token or conditional after el, stepping out of
// enclosing conditionals when el ends its branch (Algorithm 3 line 28 /
// line 21's "next token or conditional"). In streaming mode the forest is
// materialized lazily, so reaching the top level's current tail pulls the
// next chunk from the stream (stream.go) instead of reporting end of input.
func (e *Engine) after(el *element) *element {
	for el != nil {
		if el.next != nil {
			return el.next
		}
		if el.up == nil {
			if st := e.stream; st != nil && el == st.tail {
				return st.materializeNext()
			}
			return nil
		}
		el = el.up
	}
	return nil
}
