// Package fmlr implements SuperC's Fork-Merge LR parser (paper §4).
//
// An FMLR parser runs a set of LR subparsers over the preprocessor's token
// forest. Each subparser recognizes one presence condition's view of the
// input; subparsers fork when static conditionals introduce variability and
// merge as soon as their stacks coincide again, producing one AST with
// static choice nodes. A priority queue ordered by input position
// guarantees no subparser outruns the others, maximizing merge
// opportunities.
//
// Four optimizations (paper §4.2–4.4) bound the subparser population: the
// token follow-set captures actual variability instead of conditional
// syntax; early reduces order reductions before shifts at the same head;
// lazy shifts delay forking of shift-bound heads; and shared reduces apply
// one reduction to a single stack on behalf of many heads. The naive
// strategy of forking per conditional branch (MAPR) is retained as a
// baseline.
package fmlr

import (
	"repro/internal/ast"
	"repro/internal/cond"
	"repro/internal/lalr"
	"repro/internal/preprocessor"
	"repro/internal/token"
)

// element is a node of the navigable token forest: exactly one of tok and
// cnd is set. Elements link forward within their branch and upward to the
// enclosing branch, supporting Algorithm 3's "next token or conditional
// after a, stepping out of conditionals".
type element struct {
	tok  *token.Token
	cnd  *condElem
	next *element  // next element within the same branch (nil at branch end)
	up   *element  // the conditional element containing this one (nil at top level)
	ord  int       // document order; queue priority
	leaf *ast.Node // cached AST leaf: subparsers shifting the same token
	// share one node, so stacks that parsed the same region stay
	// pointer-comparable for merging

	// Cached context-free terminal classification (engine.reclassify):
	// every subparser visiting this token needs it, and it never changes.
	cls    lalr.Symbol
	clsOK  bool
	clsSet bool
}

// leafNode returns the element's shared AST leaf, built from the parse's
// slab allocator on first use.
func (e *element) leafNode(b *ast.Builder) *ast.Node {
	if e.leaf == nil {
		e.leaf = b.Leaf(*e.tok)
	}
	return e.leaf
}

// condElem is a conditional in the forest.
type condElem struct {
	branches []branchElem
}

// branchElem is one branch of a conditional.
type branchElem struct {
	cond  cond.Cond
	first *element // nil for an empty branch
}

// buildForest converts preprocessor segments into the linked forest,
// appending a synthetic EOF token. It returns the first element and the
// total token count.
func buildForest(segs []preprocessor.Segment, file string) (first *element, tokens int) {
	ord := 0
	// Elements are slab-allocated: they are small, numerous, and all die
	// with the parse, so one allocation covers elemSlabSize of them.
	const elemSlabSize = 256
	var slab []element
	newElem := func(up *element) *element {
		if len(slab) == 0 {
			slab = make([]element, elemSlabSize)
		}
		el := &slab[0]
		slab = slab[1:]
		el.up = up
		el.ord = ord
		ord++
		return el
	}
	var convert func(segs []preprocessor.Segment, up *element) *element
	convert = func(segs []preprocessor.Segment, up *element) *element {
		var head, tail *element
		link := func(e *element) {
			if tail == nil {
				head = e
			} else {
				tail.next = e
			}
			tail = e
		}
		for _, sg := range segs {
			e := newElem(up)
			if sg.IsToken() {
				e.tok = sg.Tok
				tokens++
				link(e)
				continue
			}
			ce := &condElem{}
			e.cnd = ce
			link(e)
			for _, br := range sg.Cond.Branches {
				ce.branches = append(ce.branches, branchElem{
					cond:  br.Cond,
					first: convert(br.Segs, e),
				})
			}
		}
		return head
	}
	first = convert(segs, nil)
	eof := newElem(nil)
	eof.tok = &token.Token{Kind: token.EOF, File: file}
	if first == nil {
		return eof, tokens
	}
	// Append EOF at top level.
	last := first
	for last.next != nil {
		last = last.next
	}
	last.next = eof
	return first, tokens
}

// after returns the next token or conditional after e, stepping out of
// enclosing conditionals when e ends its branch (Algorithm 3 line 28 /
// line 21's "next token or conditional").
func after(e *element) *element {
	for e != nil {
		if e.next != nil {
			return e.next
		}
		e = e.up
	}
	return nil
}
