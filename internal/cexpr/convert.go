package cexpr

import (
	"fmt"

	"repro/internal/cond"
)

// Fold performs constant folding, returning a simplified expression.
// Identifiers and defined() stay symbolic; pure-constant subtrees collapse.
// Folding happens before conversion so that hoisted multiply-defined macro
// expansions like "64 == 32" simplify away (paper §3.2's BITS_PER_LONG
// example).
func Fold(e *Expr) *Expr {
	switch e.Kind {
	case KindConst, KindIdent, KindDefined:
		return e
	case KindUnary:
		a := Fold(e.A)
		if a.Kind == KindConst {
			if v, ok := applyUnary(e.Op, a.Val); ok {
				return &Expr{Kind: KindConst, Val: v}
			}
		}
		return &Expr{Kind: KindUnary, Op: e.Op, A: a}
	case KindBinary:
		a, b := Fold(e.A), Fold(e.B)
		if a.Kind == KindConst && b.Kind == KindConst {
			if v, ok := applyBinary(e.Op, a.Val, b.Val); ok {
				return &Expr{Kind: KindConst, Val: v}
			}
		}
		// Short-circuit identities with one constant operand.
		if a.Kind == KindConst {
			switch {
			case e.Op == "&&" && a.Val == 0:
				return &Expr{Kind: KindConst, Val: 0}
			case e.Op == "&&" && a.Val != 0:
				return b
			case e.Op == "||" && a.Val != 0:
				return &Expr{Kind: KindConst, Val: 1}
			case e.Op == "||" && a.Val == 0:
				return b
			}
		}
		if b.Kind == KindConst {
			switch {
			case e.Op == "&&" && b.Val == 0:
				// Left side may have side conditions in full C, but
				// conditional expressions are pure; fold to 0.
				return &Expr{Kind: KindConst, Val: 0}
			case e.Op == "&&" && b.Val != 0:
				return a
			case e.Op == "||" && b.Val != 0:
				return &Expr{Kind: KindConst, Val: 1}
			case e.Op == "||" && b.Val == 0:
				return a
			}
		}
		return &Expr{Kind: KindBinary, Op: e.Op, A: a, B: b}
	case KindTernary:
		c := Fold(e.A)
		if c.Kind == KindConst {
			if c.Val != 0 {
				return Fold(e.B)
			}
			return Fold(e.C)
		}
		return &Expr{Kind: KindTernary, A: c, B: Fold(e.B), C: Fold(e.C)}
	}
	panic("cexpr: bad kind")
}

func applyUnary(op string, v int64) (int64, bool) {
	switch op {
	case "!":
		if v == 0 {
			return 1, true
		}
		return 0, true
	case "-":
		return -v, true
	case "+":
		return v, true
	case "~":
		return ^v, true
	}
	return 0, false
}

func applyBinary(op string, a, b int64) (int64, bool) {
	boolToInt := func(x bool) int64 {
		if x {
			return 1
		}
		return 0
	}
	switch op {
	case "+":
		return a + b, true
	case "-":
		return a - b, true
	case "*":
		return a * b, true
	case "/":
		if b == 0 {
			return 0, false
		}
		return a / b, true
	case "%":
		if b == 0 {
			return 0, false
		}
		return a % b, true
	case "<<":
		if b < 0 || b > 63 {
			return 0, false
		}
		return a << uint(b), true
	case ">>":
		if b < 0 || b > 63 {
			return 0, false
		}
		return a >> uint(b), true
	case "<":
		return boolToInt(a < b), true
	case ">":
		return boolToInt(a > b), true
	case "<=":
		return boolToInt(a <= b), true
	case ">=":
		return boolToInt(a >= b), true
	case "==":
		return boolToInt(a == b), true
	case "!=":
		return boolToInt(a != b), true
	case "&":
		return a & b, true
	case "^":
		return a ^ b, true
	case "|":
		return a | b, true
	case "&&":
		return boolToInt(a != 0 && b != 0), true
	case "||":
		return boolToInt(a != 0 || b != 0), true
	}
	return 0, false
}

// DefinedInfo describes a macro's definedness for conversion rule 4.
type DefinedInfo struct {
	Defined cond.Cond // disjunction of presence conditions with an active #define
	Free    cond.Cond // presence conditions where the macro is free (never defined or undefined)
	IsGuard bool      // the macro is an include-guard macro (rule 4a)
}

// Context supplies the environment for converting expressions to presence
// conditions.
type Context struct {
	Space *cond.Space
	// DefinedLookup returns definedness information for a macro name. When
	// nil, every macro is free and not a guard.
	DefinedLookup func(name string) DefinedInfo
}

// Info reports facts about a converted expression, feeding the Table 3
// statistics.
type Info struct {
	NonBoolean bool     // an opaque arithmetic subexpression was preserved
	OpaqueVars []string // the BDD variable names created for opaque subexpressions
	FreeMacros []string // free macros referenced as boolean atoms
}

// Convert translates a parsed conditional expression into a presence
// condition following the four rules of paper §3.2. The expression should
// already have macros expanded (outside defined()) and multiply-defined
// macros hoisted; Convert folds constants itself.
func (ctx *Context) Convert(e *Expr) (cond.Cond, Info) {
	var info Info
	c := ctx.toCond(Fold(e), &info)
	return c, info
}

// toCond converts a folded expression appearing in boolean position.
func (ctx *Context) toCond(e *Expr, info *Info) cond.Cond {
	s := ctx.Space
	switch e.Kind {
	case KindConst:
		if e.Val != 0 {
			return s.True()
		}
		return s.False()
	case KindIdent:
		// Rule 2: a free macro is a BDD variable. (In #if context a bare
		// identifier that survived expansion is a free or undefined macro;
		// an undefined macro would have been folded to 0 by the
		// preprocessor when its undefinedness is certain.)
		info.FreeMacros = append(info.FreeMacros, e.Name)
		return s.Var(e.Name)
	case KindDefined:
		return ctx.definedCond(e.Name)
	case KindUnary:
		if e.Op == "!" {
			return s.Not(ctx.toCond(e.A, info))
		}
		// Arithmetic unary in boolean position: opaque (rule 3).
		return ctx.opaque(e, info)
	case KindBinary:
		switch e.Op {
		case "&&":
			return s.And(ctx.toCond(e.A, info), ctx.toCond(e.B, info))
		case "||":
			return s.Or(ctx.toCond(e.A, info), ctx.toCond(e.B, info))
		case "==", "!=", "<", ">", "<=", ">=":
			// A comparison is boolean-valued but its operands are
			// arithmetic; if they did not fold it is opaque (rule 3).
			return ctx.opaque(e, info)
		default:
			return ctx.opaque(e, info)
		}
	case KindTernary:
		c := ctx.toCond(e.A, info)
		return s.Or(s.And(c, ctx.toCond(e.B, info)), s.And(s.Not(c), ctx.toCond(e.C, info)))
	}
	panic("cexpr: bad kind")
}

// definedCond implements rule 4.
func (ctx *Context) definedCond(name string) cond.Cond {
	s := ctx.Space
	if ctx.DefinedLookup == nil {
		return s.Var(definedVarName(name))
	}
	di := ctx.DefinedLookup(name)
	c := di.Defined
	if !s.IsFalse(di.Free) {
		if di.IsGuard {
			// Rule 4a: a free guard macro is false — gcc's convention
			// that a never-defined include guard starts undefined.
			return c
		}
		c = s.Or(c, s.And(di.Free, s.Var(definedVarName(name))))
	}
	return c
}

// opaque implements rule 3: the subexpression becomes a BDD variable keyed
// by its normalized (whitespace-free, fully parenthesized) text.
func (ctx *Context) opaque(e *Expr, info *Info) cond.Cond {
	name := opaqueVarName(e.String())
	info.NonBoolean = true
	info.OpaqueVars = append(info.OpaqueVars, name)
	return ctx.Space.Var(name)
}

func definedVarName(name string) string { return "(defined " + name + ")" }
func opaqueVarName(text string) string  { return "(expr " + text + ")" }

// EvalContext supplies a concrete configuration for single-configuration
// evaluation (the gcc-like baseline).
type EvalContext struct {
	// Defined reports whether a macro is defined in this configuration.
	Defined func(name string) bool
	// Value returns the integer value of an identifier; identifiers without
	// a value evaluate to 0 as in standard cpp.
	Value func(name string) (int64, bool)
}

// Eval evaluates the expression to an integer under one configuration,
// implementing ordinary (non-configuration-preserving) cpp semantics.
func Eval(e *Expr, ctx EvalContext) (int64, error) {
	switch e.Kind {
	case KindConst:
		return e.Val, nil
	case KindIdent:
		if ctx.Value != nil {
			if v, ok := ctx.Value(e.Name); ok {
				return v, nil
			}
		}
		return 0, nil
	case KindDefined:
		if ctx.Defined != nil && ctx.Defined(e.Name) {
			return 1, nil
		}
		return 0, nil
	case KindUnary:
		v, err := Eval(e.A, ctx)
		if err != nil {
			return 0, err
		}
		r, ok := applyUnary(e.Op, v)
		if !ok {
			return 0, fmt.Errorf("cexpr: cannot apply %q", e.Op)
		}
		return r, nil
	case KindBinary:
		a, err := Eval(e.A, ctx)
		if err != nil {
			return 0, err
		}
		// Short-circuit before evaluating the right side.
		switch e.Op {
		case "&&":
			if a == 0 {
				return 0, nil
			}
		case "||":
			if a != 0 {
				return 1, nil
			}
		}
		b, err := Eval(e.B, ctx)
		if err != nil {
			return 0, err
		}
		r, ok := applyBinary(e.Op, a, b)
		if !ok {
			return 0, fmt.Errorf("cexpr: %d %s %d is undefined", a, e.Op, b)
		}
		return r, nil
	case KindTernary:
		c, err := Eval(e.A, ctx)
		if err != nil {
			return 0, err
		}
		if c != 0 {
			return Eval(e.B, ctx)
		}
		return Eval(e.C, ctx)
	}
	panic("cexpr: bad kind")
}
