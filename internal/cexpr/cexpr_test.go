package cexpr

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/cond"
	"repro/internal/lexer"
	"repro/internal/token"
)

func toks(t *testing.T, src string) []token.Token {
	t.Helper()
	ts, err := lexer.Lex("expr", []byte(src))
	if err != nil {
		t.Fatalf("lex %q: %v", src, err)
	}
	var out []token.Token
	for _, tok := range ts {
		if tok.Kind == token.Newline || tok.Kind == token.EOF {
			continue
		}
		out = append(out, tok)
	}
	return out
}

func parse(t *testing.T, src string) *Expr {
	t.Helper()
	e, err := Parse(toks(t, src))
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return e
}

func evalConst(t *testing.T, src string) int64 {
	t.Helper()
	v, err := Eval(parse(t, src), EvalContext{})
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return v
}

func TestEvalArithmetic(t *testing.T) {
	cases := []struct {
		src  string
		want int64
	}{
		{"1 + 2 * 3", 7},
		{"(1 + 2) * 3", 9},
		{"10 / 3", 3},
		{"10 % 3", 1},
		{"1 << 4", 16},
		{"256 >> 4", 16},
		{"5 - 7", -2},
		{"-3", -3},
		{"~0", -1},
		{"!0", 1},
		{"!5", 0},
		{"+9", 9},
		{"1 < 2", 1},
		{"2 <= 2", 1},
		{"3 > 4", 0},
		{"3 >= 4", 0},
		{"5 == 5", 1},
		{"5 != 5", 0},
		{"6 & 3", 2},
		{"6 | 3", 7},
		{"6 ^ 3", 5},
		{"1 && 0", 0},
		{"1 && 2", 1},
		{"0 || 0", 0},
		{"0 || 7", 1},
		{"1 ? 10 : 20", 10},
		{"0 ? 10 : 20", 20},
		{"1 ? 2 : 0 ? 3 : 4", 2},
		{"0x10", 16},
		{"010", 8},
		{"1UL", 1},
		{"'a'", 97},
		{"'\\n'", 10},
		{"'\\x41'", 65},
		{"'\\0'", 0},
		// Operator precedence checks.
		{"1 | 2 & 3", 3},
		{"1 ^ 2 | 4", 7},
		{"1 + 2 == 3", 1},
		{"2 << 1 + 1", 8}, // shift binds looser than +
		{"1 == 1 && 2 == 2", 1},
	}
	for _, c := range cases {
		if got := evalConst(t, c.src); got != c.want {
			t.Errorf("%q = %d, want %d", c.src, got, c.want)
		}
	}
}

func TestEvalDefinedAndValues(t *testing.T) {
	ctx := EvalContext{
		Defined: func(name string) bool { return name == "CONFIG_X" },
		Value: func(name string) (int64, bool) {
			if name == "NR_CPUS" {
				return 64, true
			}
			return 0, false
		},
	}
	cases := []struct {
		src  string
		want int64
	}{
		{"defined(CONFIG_X)", 1},
		{"defined CONFIG_X", 1},
		{"defined(CONFIG_Y)", 0},
		{"!defined(CONFIG_Y)", 1},
		{"NR_CPUS < 256", 1},
		{"UNKNOWN", 0},
		{"UNKNOWN + 1", 1},
	}
	for _, c := range cases {
		v, err := Eval(parse(t, c.src), ctx)
		if err != nil {
			t.Fatalf("%q: %v", c.src, err)
		}
		if v != c.want {
			t.Errorf("%q = %d, want %d", c.src, v, c.want)
		}
	}
}

func TestEvalShortCircuitAvoidsDivisionByZero(t *testing.T) {
	if got := evalConst(t, "0 && 1/0"); got != 0 {
		t.Errorf("short-circuit && failed: %d", got)
	}
	if got := evalConst(t, "1 || 1/0"); got != 1 {
		t.Errorf("short-circuit || failed: %d", got)
	}
	if _, err := Eval(parse(t, "1/0"), EvalContext{}); err == nil {
		t.Error("division by zero not reported")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{"", "1 +", "(1", "defined", "defined(", "1 ? 2", "* 3", "1 2"}
	for _, src := range bad {
		if _, err := Parse(toks(t, src)); err == nil {
			t.Errorf("%q: expected parse error", src)
		}
	}
}

func TestFold(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"64 == 32", "0"},
		{"32 == 32", "1"},
		{"defined(A) && 64 == 32", "0"},
		{"defined(A) && 32 == 32", "defined(A)"},
		{"defined(A) || 1", "1"},
		{"0 || defined(A)", "defined(A)"},
		{"NR_CPUS < 256", "(NR_CPUS<256)"},
		{"1 ? defined(A) : defined(B)", "defined(A)"},
		{"2 + 3 * 4", "14"},
	}
	for _, c := range cases {
		got := Fold(parse(t, c.src)).String()
		if got != c.want {
			t.Errorf("Fold(%q) = %s, want %s", c.src, got, c.want)
		}
	}
}

func newCtx(mode cond.Mode) (*Context, *cond.Space) {
	s := cond.NewSpace(mode)
	return &Context{Space: s}, s
}

func TestConvertBasics(t *testing.T) {
	ctx, s := newCtx(cond.ModeBDD)

	cases := []struct {
		src  string
		want func() cond.Cond
	}{
		{"1", s.True},
		{"0", s.False},
		{"defined(CONFIG_A)", func() cond.Cond { return s.Var("(defined CONFIG_A)") }},
		{"!defined(CONFIG_A)", func() cond.Cond { return s.Not(s.Var("(defined CONFIG_A)")) }},
		{"defined(A) && defined(B)", func() cond.Cond {
			return s.And(s.Var("(defined A)"), s.Var("(defined B)"))
		}},
		{"defined(A) || defined(B)", func() cond.Cond {
			return s.Or(s.Var("(defined A)"), s.Var("(defined B)"))
		}},
		{"FOO", func() cond.Cond { return s.Var("FOO") }}, // rule 2: free macro
	}
	for _, c := range cases {
		got, _ := ctx.Convert(parse(t, c.src))
		if !s.Equal(got, c.want()) {
			t.Errorf("Convert(%q) = %s", c.src, s.String(got))
		}
	}
}

// TestConvertPaperExample reproduces §3.2's worked example: expanding
// BITS_PER_LONG under its two definitions and hoisting yields
// defined(CONFIG_64BIT) && 64 == 32 || !defined(CONFIG_64BIT) && 32 == 32,
// which must simplify to !defined(CONFIG_64BIT).
func TestConvertPaperExample(t *testing.T) {
	ctx, s := newCtx(cond.ModeBDD)
	src := "defined(CONFIG_64BIT) && 64 == 32 || !defined(CONFIG_64BIT) && 32 == 32"
	got, info := ctx.Convert(parse(t, src))
	want := s.Not(s.Var("(defined CONFIG_64BIT)"))
	if !s.Equal(got, want) {
		t.Errorf("got %s, want %s", s.String(got), s.String(want))
	}
	if info.NonBoolean {
		t.Error("fully folded expression should not be flagged non-boolean")
	}
}

// TestConvertOpaqueArithmetic reproduces rule 3 with the paper's
// NR_CPUS < 256 example: the subexpression becomes an opaque variable, and
// repeated occurrences share it.
func TestConvertOpaqueArithmetic(t *testing.T) {
	ctx, s := newCtx(cond.ModeBDD)
	c1, info := ctx.Convert(parse(t, "NR_CPUS < 256"))
	if !info.NonBoolean || len(info.OpaqueVars) != 1 {
		t.Fatalf("info = %+v", info)
	}
	// Same text with different spacing converts to the same variable.
	c2, _ := ctx.Convert(parse(t, "NR_CPUS<256"))
	if !s.Equal(c1, c2) {
		t.Error("normalized text should share the opaque variable")
	}
	// A different expression gets a different variable.
	c3, _ := ctx.Convert(parse(t, "NR_CPUS < 255"))
	if s.Equal(c1, c3) {
		t.Error("distinct arithmetic expressions should not be conflated")
	}
	// The conjunction is not trimmed: both must remain satisfiable together
	// (the preprocessor must preserve non-boolean branches).
	if s.IsFalse(s.And(c1, c3)) {
		t.Error("opaque conjunction wrongly infeasible")
	}
}

func TestConvertDefinedLookup(t *testing.T) {
	ctx, s := newCtx(cond.ModeBDD)
	a := s.Var("(defined CONFIG_64BIT)")
	ctx.DefinedLookup = func(name string) DefinedInfo {
		switch name {
		case "BITS_PER_LONG":
			// Defined under both branches of CONFIG_64BIT — i.e. always.
			return DefinedInfo{Defined: s.Or(a, s.Not(a)), Free: s.False()}
		case "_FOO_H":
			return DefinedInfo{Defined: s.False(), Free: s.True(), IsGuard: true}
		case "HALF":
			return DefinedInfo{Defined: a, Free: s.Not(a)}
		}
		return DefinedInfo{Defined: s.False(), Free: s.True()}
	}

	got, _ := ctx.Convert(parse(t, "defined(BITS_PER_LONG)"))
	if !s.IsTrue(got) {
		t.Errorf("always-defined macro: got %s", s.String(got))
	}

	// Rule 4a: a free guard macro's defined() is false.
	got, _ = ctx.Convert(parse(t, "defined(_FOO_H)"))
	if !s.IsFalse(got) {
		t.Errorf("free guard macro: got %s", s.String(got))
	}

	// Partially defined: defined under a, free otherwise.
	got, _ = ctx.Convert(parse(t, "defined(HALF)"))
	want := s.Or(a, s.And(s.Not(a), s.Var("(defined HALF)")))
	if !s.Equal(got, want) {
		t.Errorf("partially defined: got %s, want %s", s.String(got), s.String(want))
	}
}

func TestConvertTernary(t *testing.T) {
	ctx, s := newCtx(cond.ModeBDD)
	got, _ := ctx.Convert(parse(t, "defined(A) ? defined(B) : defined(C)"))
	a, b, c := s.Var("(defined A)"), s.Var("(defined B)"), s.Var("(defined C)")
	want := s.Or(s.And(a, b), s.And(s.Not(a), c))
	if !s.Equal(got, want) {
		t.Errorf("got %s, want %s", s.String(got), s.String(want))
	}
}

func TestConvertSATMode(t *testing.T) {
	ctx, s := newCtx(cond.ModeSAT)
	got, _ := ctx.Convert(parse(t, "defined(A) && !defined(A)"))
	if !s.IsFalse(got) {
		t.Errorf("contradiction not detected in SAT mode: %s", s.String(got))
	}
}

func TestExprString(t *testing.T) {
	e := parse(t, "defined(A) && NR_CPUS < 4 + 2")
	got := e.String()
	if !strings.Contains(got, "defined(A)") || !strings.Contains(got, "(NR_CPUS<(4+2))") {
		t.Errorf("String = %q", got)
	}
}

func TestCharLiteralForms(t *testing.T) {
	cases := []struct {
		src  string
		want int64
	}{
		{"'\\t'", 9},
		{"'\\r'", 13},
		{"'\\\\'", 92},
		{"'\\''", 39},
		{"'\\a'", 7},
		{"'\\b'", 8},
		{"'\\f'", 12},
		{"'\\v'", 11},
		{"'\\101'", 65},
		{"L'x'", 120},
	}
	for _, c := range cases {
		if got := evalConst(t, c.src); got != c.want {
			t.Errorf("%s = %d, want %d", c.src, got, c.want)
		}
	}
}

func BenchmarkConvertConditional(b *testing.B) {
	ts, err := lexer.Lex("expr", []byte("defined(CONFIG_A) && (defined(CONFIG_B) || !defined(CONFIG_C)) && NR_CPUS < 256"))
	if err != nil {
		b.Fatal(err)
	}
	ts = lexer.StripEOF(ts)
	e, err := Parse(ts)
	if err != nil {
		b.Fatal(err)
	}
	s := cond.NewSpace(cond.ModeBDD)
	ctx := &Context{Space: s}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.Convert(e)
	}
}

// TestQuickConversionSoundness checks the central property of §3.2's
// conversion: for boolean-structured conditional expressions over defined()
// atoms and constants, the converted presence condition evaluates exactly
// like cpp's concrete evaluation, for every configuration.
func TestQuickConversionSoundness(t *testing.T) {
	names := []string{"A", "B", "C"}
	var gen func(r *rand.Rand, depth int) string
	gen = func(r *rand.Rand, depth int) string {
		if depth == 0 || r.Intn(4) == 0 {
			switch r.Intn(5) {
			case 0:
				return "1"
			case 1:
				return "0"
			default:
				form := "defined(%s)"
				if r.Intn(3) == 0 {
					form = "defined %s"
				}
				return fmt.Sprintf(form, names[r.Intn(len(names))])
			}
		}
		switch r.Intn(4) {
		case 0:
			return fmt.Sprintf("(%s && %s)", gen(r, depth-1), gen(r, depth-1))
		case 1:
			return fmt.Sprintf("(%s || %s)", gen(r, depth-1), gen(r, depth-1))
		case 2:
			return "!" + gen(r, depth-1)
		default:
			return fmt.Sprintf("(%s ? %s : %s)", gen(r, depth-1), gen(r, depth-1), gen(r, depth-1))
		}
	}
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		src := gen(r, 4)
		e := parse(t, src)
		ctx, s := newCtx(cond.ModeBDD)
		converted, _ := ctx.Convert(e)
		for bits := 0; bits < 1<<len(names); bits++ {
			definedSet := map[string]bool{}
			assign := map[string]bool{}
			for i, n := range names {
				if bits&(1<<i) != 0 {
					definedSet[n] = true
					assign["(defined "+n+")"] = true
				}
			}
			val, err := Eval(e, EvalContext{Defined: func(n string) bool { return definedSet[n] }})
			if err != nil {
				t.Fatalf("trial %d: eval %q: %v", trial, src, err)
			}
			if (val != 0) != s.Eval(converted, assign) {
				t.Fatalf("trial %d: %q disagrees at %v (eval=%d, cond=%s)",
					trial, src, definedSet, val, s.String(converted))
			}
		}
	}
}
