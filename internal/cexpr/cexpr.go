// Package cexpr parses and converts C preprocessor conditional expressions.
//
// The preprocessor hands this package the token list of an #if/#elif
// expression after macro expansion (macros outside defined() expanded,
// multiply-defined macros hoisted around the expression). Conversion to a
// presence condition follows paper §3.2:
//
//  1. a constant translates to false if zero and true otherwise;
//  2. a free macro translates to a BDD variable;
//  3. an arithmetic subexpression translates to a BDD variable keyed by its
//     normalized text (there is no efficient algorithm for comparing
//     arbitrary polynomials, so non-boolean subexpressions stay opaque);
//  4. defined(M) translates to the disjunction of presence conditions under
//     which M is defined — except that for a free guard macro it is false,
//     and for other free macros it is a BDD variable.
//
// The same parser also evaluates expressions to concrete integers for the
// single-configuration ("gcc-like") baseline.
package cexpr

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/token"
)

// Expr is a parsed conditional expression.
type Expr struct {
	Kind ExprKind
	// Leaves
	Val  int64  // KindConst
	Name string // KindIdent, KindDefined
	// Interior
	Op   string // operator text for unary/binary
	A, B *Expr  // operands (unary uses A)
	C    *Expr  // ternary else-branch
}

// ExprKind discriminates Expr nodes.
type ExprKind uint8

// Expression node kinds.
const (
	KindConst   ExprKind = iota // integer constant
	KindIdent                   // identifier (macro name surviving expansion)
	KindDefined                 // defined(NAME)
	KindUnary                   // Op applied to A
	KindBinary                  // A Op B
	KindTernary                 // A ? B : C
)

// String renders the expression with minimal parentheses (fully
// parenthesized, for normalization purposes).
func (e *Expr) String() string {
	switch e.Kind {
	case KindConst:
		return strconv.FormatInt(e.Val, 10)
	case KindIdent:
		return e.Name
	case KindDefined:
		return "defined(" + e.Name + ")"
	case KindUnary:
		return e.Op + "(" + e.A.String() + ")"
	case KindBinary:
		return "(" + e.A.String() + e.Op + e.B.String() + ")"
	case KindTernary:
		return "(" + e.A.String() + "?" + e.B.String() + ":" + e.C.String() + ")"
	}
	panic("cexpr: bad kind")
}

// parser is a recursive-descent precedence-climbing parser over tokens.
type parser struct {
	toks []token.Token
	pos  int
}

// ParseError reports a malformed conditional expression.
type ParseError struct {
	Msg string
	Tok token.Token
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("%s: conditional expression: %s (at %s)", e.Tok.Pos(), e.Msg, e.Tok)
}

// Parse parses a conditional expression from toks (which must not contain
// Newline or EOF tokens).
func Parse(toks []token.Token) (*Expr, error) {
	p := &parser{toks: toks}
	e, err := p.ternary()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.toks) {
		return nil, &ParseError{Msg: "trailing tokens", Tok: p.toks[p.pos]}
	}
	return e, nil
}

func (p *parser) peek() (token.Token, bool) {
	if p.pos < len(p.toks) {
		return p.toks[p.pos], true
	}
	return token.Token{}, false
}

func (p *parser) accept(punct string) bool {
	if t, ok := p.peek(); ok && t.Is(punct) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(punct string) error {
	if p.accept(punct) {
		return nil
	}
	t, ok := p.peek()
	if !ok {
		t = token.Token{Text: "<end>"}
	}
	return &ParseError{Msg: fmt.Sprintf("expected %q", punct), Tok: t}
}

func (p *parser) ternary() (*Expr, error) {
	c, err := p.binary(0)
	if err != nil {
		return nil, err
	}
	if !p.accept("?") {
		return c, nil
	}
	then, err := p.ternary()
	if err != nil {
		return nil, err
	}
	if err := p.expect(":"); err != nil {
		return nil, err
	}
	els, err := p.ternary()
	if err != nil {
		return nil, err
	}
	return &Expr{Kind: KindTernary, A: c, B: then, C: els}, nil
}

// binOps maps operator text to precedence; higher binds tighter. All listed
// operators are left-associative, matching C.
var binOps = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3,
	"^":  4,
	"&":  5,
	"==": 6, "!=": 6,
	"<": 7, ">": 7, "<=": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *parser) binary(minPrec int) (*Expr, error) {
	lhs, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		t, ok := p.peek()
		if !ok || t.Kind != token.Punct {
			return lhs, nil
		}
		prec, isOp := binOps[t.Text]
		if !isOp || prec < minPrec {
			return lhs, nil
		}
		p.pos++
		rhs, err := p.binary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Expr{Kind: KindBinary, Op: t.Text, A: lhs, B: rhs}
	}
}

func (p *parser) unary() (*Expr, error) {
	t, ok := p.peek()
	if !ok {
		return nil, &ParseError{Msg: "unexpected end of expression", Tok: token.Token{Text: "<end>"}}
	}
	switch {
	case t.Is("!") || t.Is("-") || t.Is("+") || t.Is("~"):
		p.pos++
		operand, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &Expr{Kind: KindUnary, Op: t.Text, A: operand}, nil
	case t.Is("("):
		p.pos++
		e, err := p.ternary()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.Kind == token.Number:
		p.pos++
		v, err := parseIntLiteral(t.Text)
		if err != nil {
			return nil, &ParseError{Msg: err.Error(), Tok: t}
		}
		return &Expr{Kind: KindConst, Val: v}, nil
	case t.Kind == token.Char:
		p.pos++
		v, err := parseCharLiteral(t.Text)
		if err != nil {
			return nil, &ParseError{Msg: err.Error(), Tok: t}
		}
		return &Expr{Kind: KindConst, Val: v}, nil
	case t.IsIdent("defined"):
		p.pos++
		if p.accept("(") {
			name, ok := p.peek()
			if !ok || name.Kind != token.Identifier {
				return nil, &ParseError{Msg: "defined() requires a name", Tok: t}
			}
			p.pos++
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return &Expr{Kind: KindDefined, Name: name.Text}, nil
		}
		name, ok := p.peek()
		if !ok || name.Kind != token.Identifier {
			return nil, &ParseError{Msg: "defined requires a name", Tok: t}
		}
		p.pos++
		return &Expr{Kind: KindDefined, Name: name.Text}, nil
	case t.Kind == token.Identifier:
		p.pos++
		return &Expr{Kind: KindIdent, Name: t.Text}, nil
	}
	return nil, &ParseError{Msg: "unexpected token", Tok: t}
}

// parseIntLiteral evaluates a C integer literal with optional u/U/l/L
// suffixes.
func parseIntLiteral(text string) (int64, error) {
	s := strings.TrimRight(text, "uUlL")
	if s == "" {
		return 0, fmt.Errorf("malformed number %q", text)
	}
	// strconv handles 0x and leading-0 octal with base 0.
	v, err := strconv.ParseUint(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("malformed number %q", text)
	}
	return int64(v), nil
}

// parseCharLiteral evaluates a character constant to its value.
func parseCharLiteral(text string) (int64, error) {
	s := strings.TrimPrefix(text, "L")
	if len(s) < 3 || s[0] != '\'' || s[len(s)-1] != '\'' {
		return 0, fmt.Errorf("malformed character constant %q", text)
	}
	body := s[1 : len(s)-1]
	if body == "" {
		return 0, fmt.Errorf("empty character constant")
	}
	if body[0] != '\\' {
		return int64(body[0]), nil
	}
	if len(body) < 2 {
		return 0, fmt.Errorf("malformed escape in %q", text)
	}
	switch body[1] {
	case 'n':
		return '\n', nil
	case 't':
		return '\t', nil
	case 'r':
		return '\r', nil
	case '0', '1', '2', '3', '4', '5', '6', '7':
		v, err := strconv.ParseInt(body[1:], 8, 64)
		if err != nil {
			return 0, fmt.Errorf("malformed octal escape %q", text)
		}
		return v, nil
	case 'x':
		v, err := strconv.ParseInt(body[2:], 16, 64)
		if err != nil {
			return 0, fmt.Errorf("malformed hex escape %q", text)
		}
		return v, nil
	case '\\', '\'', '"':
		return int64(body[1]), nil
	case 'a':
		return 7, nil
	case 'b':
		return 8, nil
	case 'f':
		return 12, nil
	case 'v':
		return 11, nil
	}
	return 0, fmt.Errorf("unknown escape in %q", text)
}
