// Package lexer converts C source text into tokens.
//
// The lexer is the first of SuperC's three steps (paper §2, Table 1 "Lexer"
// row). It strips layout — whitespace and comments — recording only a
// HasSpace bit on the following token (enough for correct stringification
// and for diagnostics), splices backslash-newline continuations, and emits
// Newline tokens so the preprocessor can recognize directive lines. All
// words lex as identifiers; keywords are reclassified at parse time because
// the preprocessor may define or expand macros named like keywords.
package lexer

import (
	"fmt"
	"strings"

	"repro/internal/guard"
	"repro/internal/token"
)

// Error describes a lexical error with its position.
type Error struct {
	File string
	Line int
	Col  int
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%s:%d:%d: %s", e.File, e.Line, e.Col, e.Msg)
}

// punctuators, longest first within each starting byte, covering C89/C99,
// the preprocessor operators # and ##, and the C95 digraphs (which lex to
// their canonical spellings so the rest of the pipeline never sees them).
var punctuators = []string{
	"%:%:", // digraph ##
	"...", "<<=", ">>=",
	"<%", "%>", "<:", ":>", "%:", // digraphs { } [ ] #
	"->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
	"+=", "-=", "*=", "/=", "%=", "&=", "^=", "|=", "##",
	"[", "]", "(", ")", "{", "}", ".", "&", "*", "+", "-", "~", "!",
	"/", "%", "<", ">", "^", "|", "?", ":", ";", "=", ",", "#",
}

// digraphs maps the alternative spellings to their canonical punctuators.
var digraphs = map[string]string{
	"<%": "{", "%>": "}", "<:": "[", ":>": "]", "%:": "#", "%:%:": "##",
}

// Lexer scans one file. Create with New, then call Tokens or Next.
type Lexer struct {
	file string
	src  []byte
	pos  int
	line int
	col  int

	// pending space flag for the next token
	hasSpace bool

	// budget, when set, bounds the number of tokens produced; nil in the
	// common path costs one pointer check per token.
	budget *guard.Budget

	// Stats
	Comments int // number of comments stripped
	Splices  int // number of line continuations spliced
}

// New returns a lexer over src, reporting positions against file.
func New(file string, src []byte) *Lexer {
	return &Lexer{file: file, src: src, line: 1, col: 1}
}

// Lex tokenizes the entire source, returning the token slice terminated by
// an EOF token. Newline tokens mark logical line ends.
func Lex(file string, src []byte) ([]token.Token, error) {
	lx := New(file, src)
	return lx.Tokens()
}

// LexBudget is Lex under a resource budget: each produced token charges
// guard.AxisTokens, and a trip truncates the stream — the tokens lexed so
// far are returned terminated by EOF, with no error. Degradation, not
// failure: the caller inspects the budget for the diagnostic.
func LexBudget(file string, src []byte, b *guard.Budget) ([]token.Token, error) {
	lx := New(file, src)
	lx.budget = b
	return lx.Tokens()
}

// SetBudget attaches a resource budget to the lexer.
func (l *Lexer) SetBudget(b *guard.Budget) { l.budget = b }

// Tokens scans all remaining input.
func (l *Lexer) Tokens() ([]token.Token, error) {
	var toks []token.Token
	for {
		if !l.budget.Charge("lexer", guard.AxisTokens, 1) {
			return append(toks, token.Token{Kind: token.EOF, File: l.file, Line: l.line, Col: l.col}), nil
		}
		t, err := l.Next()
		if err != nil {
			return toks, err
		}
		toks = append(toks, t)
		if t.Kind == token.EOF {
			return toks, nil
		}
	}
}

// peek returns the byte at offset d from the cursor after collapsing
// backslash-newline splices, and the number of raw bytes the splice-aware
// step consumed. It does not advance.
func (l *Lexer) peekByte() (byte, bool) {
	p := l.pos
	for {
		if p >= len(l.src) {
			return 0, false
		}
		if l.src[p] == '\\' && p+1 < len(l.src) && (l.src[p+1] == '\n' || (l.src[p+1] == '\r' && p+2 < len(l.src) && l.src[p+2] == '\n')) {
			if l.src[p+1] == '\r' {
				p += 3
			} else {
				p += 2
			}
			continue
		}
		return l.src[p], true
	}
}

// advance consumes one logical character, handling splices and position
// tracking, and returns it.
func (l *Lexer) advance() (byte, bool) {
	for {
		if l.pos >= len(l.src) {
			return 0, false
		}
		c := l.src[l.pos]
		if c == '\\' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\n' {
				l.pos += 2
				l.line++
				l.col = 1
				l.Splices++
				continue
			}
			if l.pos+2 < len(l.src) && l.src[l.pos+1] == '\r' && l.src[l.pos+2] == '\n' {
				l.pos += 3
				l.line++
				l.col = 1
				l.Splices++
				continue
			}
		}
		l.pos++
		if c == '\n' {
			l.line++
			l.col = 1
		} else {
			l.col++
		}
		return c, true
	}
}

// Next returns the next token.
func (l *Lexer) Next() (token.Token, error) {
	for {
		c, ok := l.peekByte()
		if !ok {
			return l.mk(token.EOF, ""), nil
		}
		switch {
		case c == '\n' || c == '\r':
			line, col := l.line, l.col
			l.advance()
			if c == '\r' {
				if c2, ok := l.peekByte(); ok && c2 == '\n' {
					l.advance()
				}
			}
			t := token.Token{Kind: token.Newline, File: l.file, Line: line, Col: col, HasSpace: l.hasSpace}
			l.hasSpace = false
			return t, nil
		case c == ' ' || c == '\t' || c == '\v' || c == '\f':
			l.advance()
			l.hasSpace = true
		case c == '/':
			// Possible comment.
			save := *l
			l.advance()
			c2, ok := l.peekByte()
			switch {
			case ok && c2 == '/':
				// Line comment: consume to (but not including) newline.
				for {
					c3, ok := l.peekByte()
					if !ok || c3 == '\n' || c3 == '\r' {
						break
					}
					l.advance()
				}
				l.Comments++
				l.hasSpace = true
			case ok && c2 == '*':
				l.advance()
				if err := l.skipBlockComment(); err != nil {
					return token.Token{}, err
				}
				l.Comments++
				l.hasSpace = true
			default:
				*l = save
				return l.punct()
			}
		default:
			return l.scanToken(c)
		}
	}
}

func (l *Lexer) skipBlockComment() error {
	startLine, startCol := l.line, l.col
	var prev byte
	for {
		c, ok := l.advance()
		if !ok {
			return &Error{File: l.file, Line: startLine, Col: startCol, Msg: "unterminated block comment"}
		}
		if prev == '*' && c == '/' {
			return nil
		}
		prev = c
	}
}

func (l *Lexer) mk(kind token.Kind, text string) token.Token {
	t := token.Token{
		Kind: kind, Text: text, File: l.file,
		Line: l.line, Col: l.col, HasSpace: l.hasSpace,
	}
	l.hasSpace = false
	return t
}

func (l *Lexer) scanToken(c byte) (token.Token, error) {
	switch {
	case isIdentStart(c):
		// Wide string/char prefix: L"..." or L'...'
		if c == 'L' {
			save := *l
			l.advance()
			if c2, ok := l.peekByte(); ok && (c2 == '"' || c2 == '\'') {
				return l.scanQuoted(c2, "L")
			}
			*l = save
		}
		return l.scanIdent()
	case c >= '0' && c <= '9':
		return l.scanNumber()
	case c == '.':
		// .digit starts a pp-number; otherwise punctuator.
		save := *l
		l.advance()
		if c2, ok := l.peekByte(); ok && c2 >= '0' && c2 <= '9' {
			*l = save
			return l.scanNumber()
		}
		*l = save
		return l.punct()
	case c == '"' || c == '\'':
		return l.scanQuoted(c, "")
	default:
		return l.punct()
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '$' // $ is a common extension
}

func isIdentCont(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

func (l *Lexer) scanIdent() (token.Token, error) {
	line, col, space := l.line, l.col, l.hasSpace
	var b strings.Builder
	for {
		c, ok := l.peekByte()
		if !ok || !isIdentCont(c) {
			break
		}
		l.advance()
		b.WriteByte(c)
	}
	l.hasSpace = false
	return token.Token{Kind: token.Identifier, Text: b.String(), File: l.file, Line: line, Col: col, HasSpace: space}, nil
}

// scanNumber scans a preprocessing number: a superset of C numeric literals
// (C standard 6.4.8): digits, identifier characters, '.', and exponent signs
// after e/E/p/P.
func (l *Lexer) scanNumber() (token.Token, error) {
	line, col, space := l.line, l.col, l.hasSpace
	var b strings.Builder
	for {
		c, ok := l.peekByte()
		if !ok {
			break
		}
		if isIdentCont(c) || c == '.' {
			l.advance()
			b.WriteByte(c)
			if c == 'e' || c == 'E' || c == 'p' || c == 'P' {
				if c2, ok := l.peekByte(); ok && (c2 == '+' || c2 == '-') {
					l.advance()
					b.WriteByte(c2)
				}
			}
			continue
		}
		break
	}
	l.hasSpace = false
	return token.Token{Kind: token.Number, Text: b.String(), File: l.file, Line: line, Col: col, HasSpace: space}, nil
}

func (l *Lexer) scanQuoted(quote byte, prefix string) (token.Token, error) {
	line, col, space := l.line, l.col, l.hasSpace
	var b strings.Builder
	b.WriteString(prefix)
	c, _ := l.advance() // opening quote
	b.WriteByte(c)
	for {
		c, ok := l.advance()
		if !ok || c == '\n' {
			return token.Token{}, &Error{File: l.file, Line: line, Col: col,
				Msg: fmt.Sprintf("unterminated %c literal", quote)}
		}
		b.WriteByte(c)
		if c == '\\' {
			// Escaped character: consume it blindly.
			c2, ok := l.advance()
			if !ok {
				return token.Token{}, &Error{File: l.file, Line: line, Col: col,
					Msg: "unterminated escape"}
			}
			b.WriteByte(c2)
			continue
		}
		if c == quote {
			break
		}
	}
	kind := token.String
	if quote == '\'' {
		kind = token.Char
	}
	l.hasSpace = false
	return token.Token{Kind: kind, Text: b.String(), File: l.file, Line: line, Col: col, HasSpace: space}, nil
}

func (l *Lexer) punct() (token.Token, error) {
	line, col, space := l.line, l.col, l.hasSpace
	// Longest-match against the punctuator table using splice-aware peeking.
	for _, p := range punctuators {
		if l.matches(p) {
			for range p {
				l.advance()
			}
			l.hasSpace = false
			text := p
			if canon, ok := digraphs[p]; ok {
				text = canon
			}
			return token.Token{Kind: token.Punct, Text: text, File: l.file, Line: line, Col: col, HasSpace: space}, nil
		}
	}
	c, _ := l.advance()
	l.hasSpace = false
	return token.Token{Kind: token.Other, Text: string(c), File: l.file, Line: line, Col: col, HasSpace: space}, nil
}

// matches reports whether the splice-collapsed input starts with s.
func (l *Lexer) matches(s string) bool {
	save := *l
	defer func() { *l = save }()
	for i := 0; i < len(s); i++ {
		c, ok := l.peekByte()
		if !ok || c != s[i] {
			return false
		}
		l.advance()
	}
	return true
}

// StripEOF removes the trailing EOF token if present; convenient for
// splicing token slices.
func StripEOF(toks []token.Token) []token.Token {
	if n := len(toks); n > 0 && toks[n-1].Kind == token.EOF {
		return toks[:n-1]
	}
	return toks
}
