package lexer

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/token"
)

// texts extracts the non-newline, non-EOF token texts.
func texts(toks []token.Token) []string {
	var out []string
	for _, t := range toks {
		if t.Kind == token.Newline || t.Kind == token.EOF {
			continue
		}
		out = append(out, t.Text)
	}
	return out
}

func lexOK(t *testing.T, src string) []token.Token {
	t.Helper()
	toks, err := Lex("test.c", []byte(src))
	if err != nil {
		t.Fatalf("Lex(%q): %v", src, err)
	}
	return toks
}

func TestEmpty(t *testing.T) {
	toks := lexOK(t, "")
	if len(toks) != 1 || toks[0].Kind != token.EOF {
		t.Fatalf("empty input: %v", toks)
	}
}

func TestIdentifiersAndKeywordsLexAlike(t *testing.T) {
	toks := lexOK(t, "if else foo _bar x123 __STDC__")
	want := []string{"if", "else", "foo", "_bar", "x123", "__STDC__"}
	got := texts(toks)
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("got %v, want %v", got, want)
	}
	for _, tok := range toks[:len(toks)-1] {
		if tok.Kind != token.Identifier {
			t.Errorf("%s lexed as %s, want Identifier", tok.Text, tok.Kind)
		}
	}
}

func TestNumbers(t *testing.T) {
	cases := []string{"0", "42", "0x1F", "017", "1u", "1UL", "3.14", ".5", "1e10", "1e+10", "1E-3", "0x1p4", "1.5f"}
	for _, c := range cases {
		toks := lexOK(t, c)
		if len(toks) != 2 || toks[0].Kind != token.Number || toks[0].Text != c {
			t.Errorf("%q lexed as %v", c, toks[:len(toks)-1])
		}
	}
}

func TestStringsAndChars(t *testing.T) {
	cases := []struct {
		src  string
		kind token.Kind
	}{
		{`"hello"`, token.String},
		{`"a\"b"`, token.String},
		{`""`, token.String},
		{`L"wide"`, token.String},
		{`'a'`, token.Char},
		{`'\n'`, token.Char},
		{`'\''`, token.Char},
		{`L'w'`, token.Char},
	}
	for _, c := range cases {
		toks := lexOK(t, c.src)
		if len(toks) != 2 || toks[0].Kind != c.kind || toks[0].Text != c.src {
			t.Errorf("%q lexed as %v (kind %s)", c.src, toks[0].Text, toks[0].Kind)
		}
	}
}

func TestUnterminatedString(t *testing.T) {
	if _, err := Lex("t.c", []byte("\"abc\n")); err == nil {
		t.Error("unterminated string not reported")
	}
	if _, err := Lex("t.c", []byte("/* never closed")); err == nil {
		t.Error("unterminated comment not reported")
	}
}

func TestPunctuatorsLongestMatch(t *testing.T) {
	cases := []struct {
		src  string
		want []string
	}{
		{"a+++b", []string{"a", "++", "+", "b"}},
		{"a->b", []string{"a", "->", "b"}},
		{"x<<=2", []string{"x", "<<=", "2"}},
		{"x>>=2", []string{"x", ">>=", "2"}},
		{"a...b", []string{"a", "...", "b"}},
		{"a##b", []string{"a", "##", "b"}},
		{"#define", []string{"#", "define"}},
		{"a&&b||c", []string{"a", "&&", "b", "||", "c"}},
		{"a==b!=c", []string{"a", "==", "b", "!=", "c"}},
		{"f(x,y)", []string{"f", "(", "x", ",", "y", ")"}},
		{"s.m", []string{"s", ".", "m"}},
	}
	for _, c := range cases {
		got := texts(lexOK(t, c.src))
		if strings.Join(got, "|") != strings.Join(c.want, "|") {
			t.Errorf("%q: got %v, want %v", c.src, got, c.want)
		}
	}
}

func TestComments(t *testing.T) {
	lx := New("t.c", []byte("a /* x */ b // y\nc"))
	toks, err := lx.Tokens()
	if err != nil {
		t.Fatal(err)
	}
	got := texts(toks)
	if strings.Join(got, " ") != "a b c" {
		t.Fatalf("got %v", got)
	}
	if lx.Comments != 2 {
		t.Errorf("Comments = %d, want 2", lx.Comments)
	}
	// The token after a comment must carry HasSpace for stringification.
	if !toks[1].HasSpace {
		t.Error("token after comment lacks HasSpace")
	}
}

func TestMultilineComment(t *testing.T) {
	toks := lexOK(t, "a /* one\ntwo\nthree */ b")
	got := texts(toks)
	if strings.Join(got, " ") != "a b" {
		t.Fatalf("got %v", got)
	}
	// Line counting continues across the comment.
	last := toks[1]
	if last.Line != 3 {
		t.Errorf("b at line %d, want 3", last.Line)
	}
}

func TestLineSplicing(t *testing.T) {
	lx := New("t.c", []byte("#define FOO \\\n 42\nbar"))
	toks, err := lx.Tokens()
	if err != nil {
		t.Fatal(err)
	}
	got := texts(toks)
	want := "# define FOO 42 bar"
	if strings.Join(got, " ") != want {
		t.Fatalf("got %v, want %s", got, want)
	}
	if lx.Splices != 1 {
		t.Errorf("Splices = %d, want 1", lx.Splices)
	}
	// No Newline token between FOO and 42: the continuation joined them.
	sawNewlineBefore42 := false
	for i, tok := range toks {
		if tok.Text == "42" {
			for _, before := range toks[:i] {
				if before.Kind == token.Newline {
					sawNewlineBefore42 = true
				}
			}
		}
	}
	if sawNewlineBefore42 {
		t.Error("newline token leaked through a line continuation")
	}
}

func TestSplicedIdentifier(t *testing.T) {
	// A backslash-newline can split an identifier; splicing must rejoin it.
	toks := lexOK(t, "foo\\\nbar")
	got := texts(toks)
	if len(got) != 1 || got[0] != "foobar" {
		t.Fatalf("got %v, want [foobar]", got)
	}
}

func TestNewlines(t *testing.T) {
	toks := lexOK(t, "a\nb\r\nc")
	var kinds []token.Kind
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
	}
	want := []token.Kind{token.Identifier, token.Newline, token.Identifier, token.Newline, token.Identifier, token.EOF}
	if len(kinds) != len(want) {
		t.Fatalf("got %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("token %d: got %s, want %s", i, kinds[i], want[i])
		}
	}
}

func TestPositions(t *testing.T) {
	toks := lexOK(t, "ab cd\n  ef")
	checks := []struct {
		text      string
		line, col int
	}{
		{"ab", 1, 1}, {"cd", 1, 4}, {"ef", 2, 3},
	}
	i := 0
	for _, tok := range toks {
		if tok.Kind != token.Identifier {
			continue
		}
		c := checks[i]
		if tok.Text != c.text || tok.Line != c.line || tok.Col != c.col {
			t.Errorf("token %d: got %s at %d:%d, want %s at %d:%d",
				i, tok.Text, tok.Line, tok.Col, c.text, c.line, c.col)
		}
		i++
	}
}

func TestHasSpace(t *testing.T) {
	toks := lexOK(t, "a b\tc(d")
	wantSpace := map[string]bool{"a": false, "b": true, "c": true, "(": false, "d": false}
	for _, tok := range toks {
		if tok.Kind == token.EOF || tok.Kind == token.Newline {
			continue
		}
		if want, ok := wantSpace[tok.Text]; ok && tok.HasSpace != want {
			t.Errorf("%s: HasSpace = %v, want %v", tok.Text, tok.HasSpace, want)
		}
	}
}

func TestHashAndPaste(t *testing.T) {
	got := texts(lexOK(t, "#x ## y # z"))
	want := []string{"#", "x", "##", "y", "#", "z"}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestRealisticSnippet(t *testing.T) {
	src := `
#include "major.h"

#define MOUSEDEV_MIX 31

static int mousedev_open(struct inode *inode, struct file *file)
{
	int i;
#ifdef CONFIG_INPUT_MOUSEDEV_PSAUX
	if (imajor(inode) == MISC_MAJOR)
		i = MOUSEDEV_MIX;
	else
#endif
	i = iminor(inode) - 32;
	return 0;
}
`
	toks := lexOK(t, src)
	var idents, puncts, numbers int
	for _, tok := range toks {
		switch tok.Kind {
		case token.Identifier:
			idents++
		case token.Punct:
			puncts++
		case token.Number:
			numbers++
		}
	}
	if idents < 25 || puncts < 20 || numbers != 3 {
		t.Errorf("unexpected census: idents=%d puncts=%d numbers=%d", idents, puncts, numbers)
	}
	// It must round-trip the directive structure: count '#' at line starts.
	hashes := 0
	atLineStart := true
	for _, tok := range toks {
		if tok.Kind == token.Newline {
			atLineStart = true
			continue
		}
		if atLineStart && tok.Is("#") {
			hashes++
		}
		atLineStart = false
	}
	if hashes != 4 {
		t.Errorf("directive hashes = %d, want 4", hashes)
	}
}

func TestStripEOF(t *testing.T) {
	toks := lexOK(t, "a")
	stripped := StripEOF(toks)
	if len(stripped) != 1 || stripped[0].Text != "a" {
		t.Fatalf("StripEOF: %v", stripped)
	}
	if got := StripEOF(stripped); len(got) != 1 {
		t.Fatal("StripEOF on already-stripped slice changed it")
	}
}

func TestDollarIdentifier(t *testing.T) {
	got := texts(lexOK(t, "a$b"))
	if len(got) != 1 || got[0] != "a$b" {
		t.Fatalf("got %v", got)
	}
}

func BenchmarkLexKernelStyleFile(b *testing.B) {
	var sb strings.Builder
	for i := 0; i < 500; i++ {
		sb.WriteString("#ifdef CONFIG_FEATURE\nstatic int fn(struct s *p) { return p->x + 42; }\n#endif\n")
	}
	src := []byte(sb.String())
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Lex("bench.c", src); err != nil {
			b.Fatal(err)
		}
	}
}

// TestLexerNeverPanics throws random byte soup at the lexer: it must either
// tokenize or return an error, never crash, and must always terminate.
func TestLexerNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(2026))
	alphabet := []byte("abz_09+-*/%<>=!&|^~?:;,.#()[]{}'\"\\ \t\n\r$@`")
	for trial := 0; trial < 500; trial++ {
		n := r.Intn(200)
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = alphabet[r.Intn(len(alphabet))]
		}
		toks, err := Lex("fuzz.c", buf)
		if err != nil {
			continue // lexical errors are fine
		}
		if len(toks) == 0 || toks[len(toks)-1].Kind != token.EOF {
			t.Fatalf("trial %d: missing EOF terminator", trial)
		}
		// Tokens must cover only sane kinds and non-empty text (except
		// EOF/Newline).
		for _, tk := range toks[:len(toks)-1] {
			if tk.Kind != token.Newline && tk.Text == "" {
				t.Fatalf("trial %d: empty token text (kind %s)", trial, tk.Kind)
			}
		}
	}
}

// TestLexerPositionsMonotonic: token positions never go backwards.
func TestLexerPositionsMonotonic(t *testing.T) {
	src := "int a;\nlong b = 2; /* c */\nchar d;\n#define X 1\n"
	toks := lexOKHelper(t, src)
	prevLine, prevCol := 0, 0
	for _, tk := range toks {
		if tk.Kind == token.EOF {
			continue
		}
		if tk.Line < prevLine || (tk.Line == prevLine && tk.Col < prevCol) {
			t.Fatalf("position went backwards at %s", tk)
		}
		prevLine, prevCol = tk.Line, tk.Col
	}
}

func lexOKHelper(t *testing.T, src string) []token.Token {
	t.Helper()
	toks, err := Lex("t.c", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	return toks
}

func TestDotDisambiguation(t *testing.T) {
	cases := []struct {
		src  string
		want []string
	}{
		{".5", []string{".5"}},
		{"a.b", []string{"a", ".", "b"}},
		{"s..5", []string{"s", ".", ".5"}},
		{"...x", []string{"...", "x"}},
	}
	for _, c := range cases {
		got := texts(lexOK(t, c.src))
		if strings.Join(got, "|") != strings.Join(c.want, "|") {
			t.Errorf("%q: got %v, want %v", c.src, got, c.want)
		}
	}
}

func TestDigraphs(t *testing.T) {
	cases := []struct {
		src  string
		want []string
	}{
		{"<% %>", []string{"{", "}"}},
		{"a<:0:>", []string{"a", "[", "0", "]"}},
		{"%:define", []string{"#", "define"}},
		{"a%:%:b", []string{"a", "##", "b"}},
		// Non-digraph neighbors must not be eaten: a % b, x < y.
		{"a % b", []string{"a", "%", "b"}},
		{"x < y", []string{"x", "<", "y"}},
		{"m %= 2", []string{"m", "%=", "2"}},
	}
	for _, c := range cases {
		got := texts(lexOK(t, c.src))
		if strings.Join(got, "|") != strings.Join(c.want, "|") {
			t.Errorf("%q: got %v, want %v", c.src, got, c.want)
		}
	}
}
