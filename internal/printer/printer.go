// Package printer renders preprocessed token forests and
// configuration-preserving ASTs back to C source text.
//
// The paper's Table 1 notes that automated refactorings must restore
// program text as originally written (the lexer's layout row) and that
// conditionals must be emitted around the constructs they bracket. This
// package provides that output path: tokens carry their original spacing
// hints (HasSpace), conditionals render as #if/#elif/#endif directives over
// their presence conditions, and ASTs print per configuration or with
// their full variability.
package printer

import (
	"strings"

	"repro/internal/ast"
	"repro/internal/cond"
	"repro/internal/preprocessor"
	"repro/internal/token"
)

// Options controls rendering.
type Options struct {
	// Indent is the indentation unit for conditional nesting in forest
	// output (default two spaces).
	Indent string
}

func (o Options) indent() string {
	if o.Indent == "" {
		return "  "
	}
	return o.Indent
}

// Tokens renders a flat token sequence with original-spacing fidelity:
// a space appears exactly where the lexer recorded one (HasSpace), plus
// protective spaces where gluing two tokens would form a different token
// (e.g. "+" "+" must not become "++").
func Tokens(toks []token.Token) string {
	var b strings.Builder
	var prev *token.Token
	for i := range toks {
		t := &toks[i]
		if t.Kind == token.EOF || t.Kind == token.Newline {
			continue
		}
		if prev != nil && (t.HasSpace || needsSpace(prev, t)) {
			b.WriteByte(' ')
		}
		b.WriteString(t.Text)
		prev = t
	}
	return b.String()
}

// needsSpace reports whether gluing a directly after b would lex
// differently than the two tokens separately.
func needsSpace(a, b *token.Token) bool {
	if a.Text == "" || b.Text == "" {
		return false
	}
	last := a.Text[len(a.Text)-1]
	first := b.Text[0]
	alnum := func(c byte) bool {
		return c == '_' || c == '$' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
	}
	if alnum(last) && alnum(first) {
		return true
	}
	// Operator gluing hazards: ++, --, <<, >>, etc. A conservative check:
	// same-class punctuation that could extend the operator.
	if a.Kind == token.Punct && b.Kind == token.Punct {
		switch {
		case last == first: // "+" "+", "-" "-", "<" "<", "&" "&", "=" "="
			return true
		case last == '<' || last == '>' || last == '=' || last == '!' ||
			last == '+' || last == '-' || last == '*' || last == '/' ||
			last == '&' || last == '|' || last == '^' || last == '%':
			return first == '=' || (last == '-' && first == '>') || (last == '#' && first == '#')
		case last == '#':
			return first == '#'
		}
	}
	return false
}

// Forest renders a preprocessed unit with its static conditionals as
// #if/#elif/#endif lines over rendered presence conditions, one branch per
// block — the textual form of configuration-preserving preprocessing
// (paper Figure 1b).
func Forest(s *cond.Space, segs []preprocessor.Segment, opts Options) string {
	var b strings.Builder
	writeForest(s, &b, segs, 0, opts)
	return b.String()
}

func writeForest(s *cond.Space, b *strings.Builder, segs []preprocessor.Segment, depth int, opts Options) {
	ind := strings.Repeat(opts.indent(), depth)
	var run []token.Token
	flush := func() {
		if len(run) == 0 {
			return
		}
		b.WriteString(ind)
		b.WriteString(Tokens(run))
		b.WriteByte('\n')
		run = nil
	}
	for _, sg := range segs {
		if sg.IsToken() {
			run = append(run, *sg.Tok)
			continue
		}
		flush()
		for i, br := range sg.Cond.Branches {
			directive := "#if"
			if i > 0 {
				directive = "#elif"
			}
			b.WriteString(ind)
			b.WriteString(directive)
			b.WriteByte(' ')
			b.WriteString(s.String(br.Cond))
			b.WriteByte('\n')
			writeForest(s, b, br.Segs, depth+1, opts)
		}
		b.WriteString(ind)
		b.WriteString("#endif\n")
	}
	flush()
}

// Config renders one configuration's source text from a
// configuration-preserving AST: choices are resolved under assign and the
// surviving leaves printed with spacing fidelity.
func Config(s *cond.Space, root *ast.Node, assign map[string]bool) string {
	proj := ast.Project(s, root, assign)
	if proj == nil {
		return ""
	}
	return Tokens(proj.Tokens())
}

// AST renders the full variability of an AST: maximal choice-free runs
// print as source text, and choice nodes expand to #if blocks. This is the
// "output program text, modulo intended changes" path a refactoring tool
// needs.
func AST(s *cond.Space, root *ast.Node, opts Options) string {
	var b strings.Builder
	writeAST(s, &b, root, 0, opts)
	return strings.TrimRight(b.String(), "\n") + "\n"
}

func writeAST(s *cond.Space, b *strings.Builder, n *ast.Node, depth int, opts Options) {
	if n == nil {
		return
	}
	ind := strings.Repeat(opts.indent(), depth)
	if n.Kind == ast.KindChoice {
		for i, alt := range n.Alts {
			directive := "#if"
			if i > 0 {
				directive = "#elif"
			}
			b.WriteString(ind)
			b.WriteString(directive)
			b.WriteByte(' ')
			b.WriteString(s.String(alt.Cond))
			b.WriteByte('\n')
			writeAST(s, b, alt.Node, depth+1, opts)
		}
		b.WriteString(ind)
		b.WriteString("#endif\n")
		return
	}
	// Collect the maximal choice-free token run under n; recurse at
	// embedded choices.
	var run []token.Token
	flush := func() {
		if len(run) == 0 {
			return
		}
		b.WriteString(ind)
		b.WriteString(Tokens(run))
		b.WriteByte('\n')
		run = nil
	}
	var collect func(m *ast.Node)
	collect = func(m *ast.Node) {
		if m == nil {
			return
		}
		switch m.Kind {
		case ast.KindToken:
			run = append(run, *m.Tok)
		case ast.KindChoice:
			flush()
			writeAST(s, b, m, depth, opts)
		default:
			for _, c := range m.Children {
				collect(c)
			}
		}
	}
	collect(n)
	flush()
}
