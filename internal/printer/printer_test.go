package printer

import (
	"fmt"
	"regexp"
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/cond"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/lexer"
	"repro/internal/preprocessor"
	"repro/internal/token"
)

func lexToks(t *testing.T, src string) []token.Token {
	t.Helper()
	toks, err := lexer.Lex("t.c", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	return lexer.StripEOF(toks)
}

func TestTokensSpacingFidelity(t *testing.T) {
	cases := []string{
		"int x = a + b;",
		"p->next = q;",
		"x <<= 2;",
		"f(a, b);",
		"char *s = \"hi\";",
	}
	for _, src := range cases {
		if got := Tokens(lexToks(t, src)); got != src {
			t.Errorf("round trip: %q -> %q", src, got)
		}
	}
}

// TestTokensGlueProtection: even when spacing hints are lost, adjacent
// tokens must not merge into different tokens.
func TestTokensGlueProtection(t *testing.T) {
	mk := func(kind token.Kind, text string) token.Token {
		return token.Token{Kind: kind, Text: text} // HasSpace false
	}
	cases := []struct {
		toks []token.Token
		bad  string // substring that must NOT appear
	}{
		{[]token.Token{mk(token.Punct, "+"), mk(token.Punct, "+")}, "++"},
		{[]token.Token{mk(token.Punct, "-"), mk(token.Punct, "-")}, "--"},
		{[]token.Token{mk(token.Punct, "<"), mk(token.Punct, "<")}, "<<"},
		{[]token.Token{mk(token.Identifier, "a"), mk(token.Identifier, "b")}, "ab"},
		{[]token.Token{mk(token.Identifier, "x"), mk(token.Number, "1")}, "x1"},
		{[]token.Token{mk(token.Punct, "+"), mk(token.Punct, "=")}, "+="},
		{[]token.Token{mk(token.Punct, "-"), mk(token.Punct, ">")}, "->"},
	}
	for _, c := range cases {
		got := Tokens(c.toks)
		if strings.Contains(got, c.bad) {
			t.Errorf("glued %q into %q", c.bad, got)
		}
	}
}

// TestTokensRelexStable: printing then re-lexing yields the same token
// sequence — the invariant refactoring output needs.
func TestTokensRelexStable(t *testing.T) {
	srcs := []string{
		"static int f(struct s *p) { return p->x++ + --y; }",
		"#define M(a) a\nint z = M(1) << 2 | 3;",
		"char *s = \"a b\" \"c\"; int c = 'x';",
	}
	for _, src := range srcs {
		orig := lexToks(t, src)
		var noNL []token.Token
		for _, tk := range orig {
			if tk.Kind != token.Newline {
				noNL = append(noNL, tk)
			}
		}
		printed := Tokens(noNL)
		relexed := lexToks(t, printed)
		var relexedNoNL []token.Token
		for _, tk := range relexed {
			if tk.Kind != token.Newline {
				relexedNoNL = append(relexedNoNL, tk)
			}
		}
		if len(relexedNoNL) != len(noNL) {
			t.Fatalf("token count changed: %d -> %d\n%q", len(noNL), len(relexedNoNL), printed)
		}
		for i := range noNL {
			if relexedNoNL[i].Text != noNL[i].Text || relexedNoNL[i].Kind != noNL[i].Kind {
				t.Fatalf("token %d changed: %v -> %v\n%q", i, noNL[i], relexedNoNL[i], printed)
			}
		}
	}
}

func parseUnit(t *testing.T, src string) (*core.Result, *core.Tool) {
	t.Helper()
	tool := core.New(core.Config{FS: preprocessor.MapFS{"main.c": src}})
	res, err := tool.ParseFile("main.c")
	if err != nil {
		t.Fatal(err)
	}
	if res.AST == nil {
		t.Fatalf("parse failed: %v", res.Parse.Diags)
	}
	return res, tool
}

func TestForestRendersConditionals(t *testing.T) {
	res, tool := parseUnit(t, `
int before;
#ifdef A
int a;
#else
int b;
#endif
`)
	out := Forest(tool.Space(), res.Unit.EnsureSegments(), Options{})
	for _, want := range []string{"int before;", "#if", "(defined A)", "#endif", "int a;", "int b;"} {
		if !strings.Contains(out, want) {
			t.Errorf("forest output missing %q:\n%s", want, out)
		}
	}
}

// TestForestReparses: the rendered forest is itself valid input — lexing
// and preprocessing it again (with conditions as opaque config vars)
// preserves each configuration's tokens.
func TestForestReparses(t *testing.T) {
	src := `
#ifdef A
int a;
#endif
int always;
`
	res, tool := parseUnit(t, src)
	out := Forest(tool.Space(), res.Unit.EnsureSegments(), Options{})
	// Re-preprocess the printed text; "(defined A)" renders inside the
	// #if expression as defined-application on A.
	// Our renderer emits conditions like "(defined A)"; rewrite to
	// defined(A) for cpp syntax.
	cppText := strings.ReplaceAll(out, "(defined A)", "defined(A)")
	tool2 := core.New(core.Config{FS: preprocessor.MapFS{"main.c": cppText}})
	res2, err := tool2.ParseFile("main.c")
	if err != nil || res2.AST == nil {
		t.Fatalf("re-parse failed: %v", err)
	}
	for _, assign := range []map[string]bool{nil, {"(defined A)": true}} {
		want := Config(tool.Space(), res.AST, assign)
		got := Config(tool2.Space(), res2.AST, assign)
		if want != got {
			t.Errorf("%v: %q vs %q", assign, want, got)
		}
	}
}

func TestConfigRendering(t *testing.T) {
	res, tool := parseUnit(t, `
#ifdef A
int a = 1;
#else
int b = 2;
#endif
`)
	if got := Config(tool.Space(), res.AST, map[string]bool{"(defined A)": true}); got != "int a = 1;" {
		t.Errorf("A: %q", got)
	}
	if got := Config(tool.Space(), res.AST, nil); got != "int b = 2;" {
		t.Errorf("!A: %q", got)
	}
}

func TestASTRenderingWithChoices(t *testing.T) {
	res, tool := parseUnit(t, `
int before;
#ifdef A
int a;
#endif
int after;
`)
	out := AST(tool.Space(), res.AST, Options{})
	for _, want := range []string{"int before;", "#if", "#endif", "int a;"} {
		if !strings.Contains(out, want) {
			t.Errorf("AST output missing %q:\n%s", want, out)
		}
	}
	// The continuation after the conditional is shared between
	// configurations: "int after;" prints once, after the #endif.
	endif := strings.LastIndex(out, "#endif")
	after := strings.Index(out, "int after;")
	if after < endif {
		t.Errorf("shared continuation not outside the choice:\n%s", out)
	}
	if strings.Count(out, "int after;") != 1 {
		t.Errorf("continuation duplicated:\n%s", out)
	}
	// Alternatives are indented one level below their #if lines.
	if !strings.Contains(out, "\n  int") {
		t.Errorf("alternative not indented:\n%s", out)
	}
}

func TestASTRenderingEmptyProjection(t *testing.T) {
	s := cond.NewSpace(cond.ModeBDD)
	if got := Config(s, nil, nil); got != "" {
		t.Errorf("nil AST: %q", got)
	}
}

// TestForestRoundTripOnCorpusUnit: rendering a corpus unit's forest and
// re-preprocessing it preserves every configuration's token stream — the
// output-path invariant a refactoring tool needs, at realistic scale.
func TestForestRoundTripOnCorpusUnit(t *testing.T) {
	c := corpus.Generate(corpus.Params{Seed: 6, CFiles: 2, GenHeaders: 6})
	tool := core.New(core.Config{FS: c.FS, IncludePaths: []string{"include", "include/gen", "include/linux"}})
	cf := c.CFiles[0]
	res, err := tool.ParseFile(cf)
	if err != nil || res.AST == nil {
		t.Fatalf("%s: %v", cf, err)
	}
	s := tool.Space()
	out := Forest(s, res.Unit.EnsureSegments(), Options{})
	// Rewrite rendered conditions into cpp syntax: "(defined X)" ->
	// "defined(X)"; opaque arithmetic atoms and free macros render as bare
	// names that cpp evaluates as macros, so restrict the check to units
	// whose conditions are all defined-style (most of them).
	if strings.Contains(out, "(expr ") {
		t.Skip("unit has opaque arithmetic conditions; rendering them back to cpp is out of scope")
	}
	cpp := regexpDefined.ReplaceAllString(out, "defined($1)")
	tool2 := core.New(core.Config{FS: preprocessor.MapFS{"main.c": cpp}})
	res2, err := tool2.ParseFile("main.c")
	if err != nil || res2.AST == nil {
		t.Fatalf("re-parse failed: %v", err)
	}
	for trial := 0; trial < 8; trial++ {
		assign := map[string]bool{}
		for i := 0; i < 32; i++ {
			if (trial>>uint(i%3))&1 == 1 {
				assign[fmt.Sprintf("(defined CONFIG_F%02d)", i)] = true
			}
		}
		// Compare token sequences: spacing hints legitimately change when
		// macro-expanded tokens round-trip through rendered text.
		t1 := tokenTexts(s, res.AST, assign)
		t2 := tokenTexts(tool2.Space(), res2.AST, assign)
		if t1 != t2 {
			t.Fatalf("trial %d mismatch:\n%q\n%q", trial, t1, t2)
		}
	}
}

var regexpDefined = regexp.MustCompile(`\(defined ([A-Za-z_0-9]+)\)`)

// tokenTexts renders a configuration's token texts joined by single spaces.
func tokenTexts(s *cond.Space, root *ast.Node, assign map[string]bool) string {
	proj := ast.Project(s, root, assign)
	if proj == nil {
		return ""
	}
	var parts []string
	for _, tk := range proj.Tokens() {
		parts = append(parts, tk.Text)
	}
	return strings.Join(parts, " ")
}
