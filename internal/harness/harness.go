// Package harness drives the paper's evaluation (§6) over the synthetic
// corpus and renders each table and figure in the paper's format. It is
// shared by cmd/cstats, cmd/fmlrbench, and the repository's root
// benchmarks.
//
// # Concurrent design
//
// Compilation units are independent — each gets a fresh core.Tool with its
// own presence-condition space and macro table — so Run fans them out over
// a bounded worker pool (RunConfig.Jobs wide, GOMAXPROCS by default).
// Results land in a slice indexed by the unit's corpus position, so output
// ordering is deterministic regardless of scheduling, and per-unit timing
// is measured inside the worker exactly as in the sequential harness. A
// unit that panics or trips the subparser kill switch degrades to a
// recorded failure in its UnitResult instead of taking down the run, and a
// cancelled context marks the not-yet-processed remainder as skipped at
// unit granularity.
//
// # Resource governance
//
// Every unit runs under a fresh guard.Budget derived from the run's context
// and RunConfig.Budget limits, so a cancelled context also abandons
// in-flight units (the stages poll the budget at their loop heads), and
// pathological units degrade to a partial AST with a structured
// guard.Diagnostic instead of hanging. With RunConfig.Quarantine, a unit
// whose first attempt panics or trips its budget is retried once; a second
// failure quarantines the unit, which Metrics reports by path.
//
// While a run is in flight the workers maintain lock-free counters
// (stats.Counter/Timer/HighWater); RunMetered returns their final values as
// a Metrics snapshot alongside the results.
package harness

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/cgrammar"
	"repro/internal/cond"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/fmlr"
	"repro/internal/guard"
	"repro/internal/guard/faultinject"
	"repro/internal/hcache"
	"repro/internal/link"
	"repro/internal/preprocessor"
	"repro/internal/stats"
	"repro/internal/store"
)

// IncludePaths are the corpus's include directories.
var IncludePaths = []string{"include", "include/gen", "include/linux"}

// DefaultJobs is the worker-pool width used when RunConfig.Jobs is zero;
// zero means runtime.GOMAXPROCS(0). The cmd tools' -j flag sets it once at
// startup, before any runs.
var DefaultJobs int

// DisableHeaderCache turns off the shared cross-unit header cache for runs
// that do not override RunConfig.HeaderCache. The cmd tools' -no-header-cache
// flag sets it once at startup.
var DisableHeaderCache bool

// DefaultBudget supplies per-unit resource limits for runs that leave
// RunConfig.Budget zero. The cmd tools' -timeout/-budget-* flags set it once
// at startup so that every run (Figure sweeps included) inherits it.
var DefaultBudget guard.Limits

// DefaultQuarantine enables retry-once-then-quarantine for runs that leave
// RunConfig.Quarantine unset. The cmd tools' -quarantine flag sets it once
// at startup.
var DefaultQuarantine bool

// DefaultParseWorkers is the intra-unit parse worker count used when
// RunConfig.ParseWorkers is zero. 0 and 1 parse sequentially. The cmd tools'
// -parse-workers flag sets it once at startup.
var DefaultParseWorkers int

// DisableStreaming turns off the stream-fused preprocessor→parser pipeline
// for runs that do not override RunConfig.NoStream: the preprocessor
// materializes the classic segment slab and the parser runs its queue loop
// over it unconditionally. The cmd tools' -stream-tokens=false kill switch
// sets it once at startup.
var DisableStreaming bool

// sharedHeaderCache is the process-wide default header cache, created on
// first cached run so that repeated runs (benchmark arms, Figure sweeps)
// keep sharing header work.
var (
	headerCacheOnce   sync.Once
	sharedHeaderCache *hcache.Cache

	storeMu     sync.Mutex
	sharedStore *store.Store
)

// UseStore opens the on-disk artifact store at dir and installs it as the
// durable layer beneath the process-wide header cache. It must be called
// before the first cached run (the cmd tools call it while parsing flags);
// calling it after the shared cache exists returns an error rather than
// silently leaving the cache unbacked. maxBytes <= 0 keeps the store's
// default bound.
func UseStore(dir string, maxBytes int64) (*store.Store, error) {
	s, err := store.Open(dir, store.Options{MaxBytes: maxBytes})
	if err != nil {
		return nil, err
	}
	storeMu.Lock()
	defer storeMu.Unlock()
	if sharedHeaderCache != nil {
		return nil, fmt.Errorf("harness: UseStore called after the shared header cache was created")
	}
	sharedStore = s
	return s, nil
}

// Store returns the artifact store installed by UseStore, or nil.
func Store() *store.Store {
	storeMu.Lock()
	defer storeMu.Unlock()
	return sharedStore
}

// headerCache resolves the cache a run should use: an explicit override, the
// process-wide default, or nil when disabled (including single-configuration
// mode, which the preprocessor would ignore the cache for anyway).
func (cfg RunConfig) headerCache() *hcache.Cache {
	if cfg.NoHeaderCache || DisableHeaderCache || cfg.Single {
		return nil
	}
	if cfg.HeaderCache != nil {
		return cfg.HeaderCache
	}
	headerCacheOnce.Do(func() {
		storeMu.Lock()
		defer storeMu.Unlock()
		var backing hcache.Backing
		if sharedStore != nil {
			backing = store.NewHeaderBacking(sharedStore, preprocessor.PayloadCodec())
		}
		sharedHeaderCache = hcache.New(hcache.Options{Backing: backing})
	})
	return sharedHeaderCache
}

// RunConfig selects one experimental arm.
type RunConfig struct {
	Mode       cond.Mode
	Parser     fmlr.Options
	Single     bool
	KillSwitch int               // override kill switch (0: parser default)
	Defines    map[string]string // single-configuration defines
	// Jobs bounds the worker pool: 0 defers to DefaultJobs (then
	// GOMAXPROCS), 1 is fully sequential.
	Jobs int
	// ParseWorkers bounds intra-unit parallelism: with more than one worker
	// the parser splits each unit at top-level declaration boundaries and
	// parses the regions concurrently, with output proven byte-identical to
	// the sequential parse. 0 defers to DefaultParseWorkers; 0/1 parse
	// sequentially. It composes with Jobs: each of the Jobs units in flight
	// may fan out up to ParseWorkers region parses.
	ParseWorkers int
	// IncludePaths overrides the corpus include directories for this run
	// (empty defers to the package-level IncludePaths). The daemon sets it
	// per request, since different corpora need different include roots.
	IncludePaths []string
	// HeaderCache overrides the shared cross-unit header cache for this run.
	// nil uses the process-wide default cache unless NoHeaderCache (or the
	// global DisableHeaderCache) is set.
	HeaderCache *hcache.Cache
	// NoHeaderCache disables header caching for this run.
	NoHeaderCache bool
	// NoStream disables the stream-fused token pipeline for this run (see
	// core.Config.NoStream). False defers to the global DisableStreaming.
	NoStream bool
	// Budget sets per-unit resource ceilings (internal/guard). The zero
	// value defers to DefaultBudget; all-zero limits still attach a budget
	// so that context cancellation reaches in-flight units.
	Budget guard.Limits
	// Quarantine retries a failed or budget-tripped unit once and, on a
	// second failure, marks it quarantined instead of retrying forever.
	// False defers to DefaultQuarantine.
	Quarantine bool
	// Analyzers, when non-empty, runs the variability-aware analysis passes
	// over every unit after parsing (internal/analysis); each unit's
	// diagnostics land in its UnitResult.Analysis and the run's counters in
	// Metrics.
	Analyzers []*analysis.Analyzer
	// Link extracts per-unit conditional link facts after parsing (each
	// unit's facts land in UnitResult.LinkFacts) and joins them corpus-wide
	// once every unit finishes; the findings land in Metrics.LinkResult and
	// the run's link counters in Metrics.
	Link bool
}

// limits resolves the effective per-unit resource limits.
func (cfg RunConfig) limits() guard.Limits {
	if cfg.Budget.Zero() {
		return DefaultBudget
	}
	return cfg.Budget
}

// quarantine resolves whether retry-once-then-quarantine is active.
func (cfg RunConfig) quarantine() bool {
	return cfg.Quarantine || DefaultQuarantine
}

// noStream resolves whether the stream-fused pipeline is disabled.
func (cfg RunConfig) noStream() bool {
	return cfg.NoStream || DisableStreaming
}

// parseWorkers resolves the effective intra-unit parse worker count.
func (cfg RunConfig) parseWorkers() int {
	if cfg.ParseWorkers != 0 {
		return cfg.ParseWorkers
	}
	return DefaultParseWorkers
}

// includePaths resolves the effective include directories.
func (cfg RunConfig) includePaths() []string {
	if len(cfg.IncludePaths) > 0 {
		return cfg.IncludePaths
	}
	return IncludePaths
}

// jobs resolves the effective worker count for n units.
func (cfg RunConfig) jobs(n int) int {
	j := cfg.Jobs
	if j <= 0 {
		j = DefaultJobs
	}
	if j <= 0 {
		j = runtime.GOMAXPROCS(0)
	}
	if j > n {
		j = n
	}
	if j < 1 {
		j = 1
	}
	return j
}

// UnitResult is one compilation unit's measurements.
type UnitResult struct {
	File      string
	Bytes     int
	Tokens    int
	Pre       preprocessor.UnitStats
	Parse     fmlr.Stats
	Killed    bool
	ParseFail bool
	Err       string // non-parse failure: panic recovered or run cancelled
	Stack     string // goroutine stack captured when Err records a panic
	// Budget is the structured diagnostic when the unit tripped its
	// resource budget and degraded to a partial AST (nil otherwise).
	Budget      *guard.Diagnostic
	Retried     bool // result comes from the second (retry) attempt
	Quarantined bool // both attempts failed; unit is quarantined
	LexTime     time.Duration
	PreTime     time.Duration // preprocessing excluding lexing
	ParseTime   time.Duration
	TotalTime   time.Duration
	ChoiceNodes int
	BDDNodes    int // presence-condition nodes allocated for this unit (BDD mode)

	// Hot-path cache effectiveness for this unit (BDD mode only for the
	// op-cache numbers; cond fast-paths cover both modes).
	BDDOpHits      int64
	BDDOpMisses    int64
	BDDOpEvictions int64
	BDDTableSlots  int // unique-table capacity at end of unit
	CondOps        int64
	CondFastPaths  int64

	// Analysis is the unit's variability-aware analysis result (nil when
	// RunConfig.Analyzers is empty or the unit failed before analysis).
	Analysis *analysis.Result

	// LinkFacts is the unit's conditional link facts (nil unless
	// RunConfig.Link is set and the unit parsed).
	LinkFacts *link.Facts
}

// Metrics is a snapshot of one run's per-stage observability counters.
type Metrics struct {
	Jobs        int // effective worker-pool width
	Units       int // units processed (== corpus size unless cancelled)
	FailedUnits int // ParseFail or recorded Err
	KilledUnits int // subparser kill switch trips
	MaxInFlight int // high-water mark of concurrently processing units

	// Resource-governor outcomes (internal/guard).
	BudgetTrips      int      // units that tripped a budget axis and degraded
	TripsByAxis      []int64  // trips per guard.Axis (indexed by Axis value)
	RetriedUnits     int      // units whose recorded result is a retry
	QuarantinedUnits int      // units that failed both attempts
	Quarantined      []string // quarantined unit paths, sorted

	// Cumulative per-stage work across all units (sums of per-unit wall
	// time; with N workers this can exceed WallTime by up to N×).
	LexTime        time.Duration
	PreprocessTime time.Duration
	ParseTime      time.Duration
	WallTime       time.Duration // elapsed time of the whole run

	// Engine totals across units.
	Forks        int64
	Merges       int64
	TypedefForks int64
	BDDNodes     int64 // presence-condition nodes allocated, summed over units

	// Parse-stage hot-path caches, summed over units.
	FollowHits      int64 // follow-set template memo hits
	FollowMisses    int64
	SubparserReuses int64 // free-list recycles
	SubparserAllocs int64
	BDDOpHits       int64 // BDD op-cache hits (BDD mode)
	BDDOpMisses     int64
	BDDOpEvictions  int64
	CondOps         int64 // presence-condition ops issued by the parser stack
	CondFastPaths   int64 // resolved by cond's simplification layer pre-BDD

	// Stream-fused token pipeline flow, summed over units. Streamed tokens
	// went through the parser's chunk-cursor fast path without ever being
	// materialized as forest elements; materialized tokens took the classic
	// element path (conditional regions, fallbacks, or streaming disabled).
	TokensStreamed     int64
	TokensMaterialized int64
	StreamFallbacks    int64 // fast-path bail-outs to the materialized path
	// StreamBytesAvoided estimates the forest bytes never allocated thanks to
	// streaming: streamed tokens × per-token element+segment footprint.
	StreamBytesAvoided int64

	// Parse-table cache outcome (process-wide, from package cgrammar).
	TableCacheHits   int64
	TableCacheMisses int64
	TableCacheState  string

	// Cross-unit header cache outcome for this run (delta of the shared
	// cache's counters across the run).
	HeaderCacheState  string // "on" or "off"
	HeaderCacheHits   int64  // Level-2 (preprocessed header) replays
	HeaderCacheMisses int64
	HeaderLexHits     int64 // Level-1 (lexed token stream) hits
	HeaderLexMisses   int64
	HeaderBytesSaved  int64 // source bytes not re-preprocessed
	HeaderEvictions   int64

	// Artifact-store outcome for this run (delta of the process-wide
	// store's counters; "off" unless UseStore configured one). Degraded is
	// current state, not a delta: 1 when persistent write failures flipped
	// the store read-only.
	StoreState     string
	StoreHits      int64
	StoreMisses    int64
	StoreWrites    int64
	StoreEvictions int64
	StoreCorrupt   int64
	StoreWriteErrs int64
	StoreReadErrs  int64
	StoreDegraded  int64

	// Daemon thin-client resilience outcome ("" unless the run went through
	// a superd client; then DaemonState is the circuit breaker's position).
	DaemonState        string
	DaemonAttempts     int64
	DaemonRetries      int64
	DaemonSheds        int64
	DaemonBreakerOpens int64

	// Variability-aware analysis counters (zero unless RunConfig.Analyzers).
	AnalysisPasses      int64            // passes run, summed over units
	AnalysisDiags       int64            // diagnostics reported
	AnalysisByPass      map[string]int64 // diagnostics per pass name
	WitnessChecks       int64            // witnesses extracted and independently re-verified
	WitnessFailures     int64            // witnesses the independent SAT check rejected
	InfeasibleDropped   int64            // diagnostics dropped for unsatisfiable conditions
	SkippedErrorRegions int64            // opaque _Error regions analysis refused to enter

	// Whole-corpus link outcome (nil/zero unless RunConfig.Link). LinkResult
	// holds the findings in total deterministic order with their conditions
	// in its own space; the counters mirror its Stats for rendering.
	LinkResult          *link.Result
	LinkUnits           int64
	LinkSymbols         int64
	LinkFacts           int64
	LinkFindings        int64
	LinkByFamily        map[string]int64
	LinkSATChecks       int64
	LinkWitnessChecks   int64
	LinkWitnessFailures int64
}

// String renders the snapshot as the block cmd/fmlrbench prints.
func (m Metrics) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "harness metrics (jobs=%d)\n", m.Jobs)
	fmt.Fprintf(&b, "  units: %d processed, %d failed, %d killed; max in flight %d\n",
		m.Units, m.FailedUnits, m.KilledUnits, m.MaxInFlight)
	fmt.Fprintf(&b, "  guard: %d budget trips, %d retried, %d quarantined",
		m.BudgetTrips, m.RetriedUnits, m.QuarantinedUnits)
	var axes []string
	for a, n := range m.TripsByAxis {
		if n > 0 {
			axes = append(axes, fmt.Sprintf("%s %d", guard.Axis(a), n))
		}
	}
	if len(axes) > 0 {
		fmt.Fprintf(&b, " (%s)", strings.Join(axes, ", "))
	}
	b.WriteByte('\n')
	for _, q := range m.Quarantined {
		fmt.Fprintf(&b, "    quarantined: %s\n", q)
	}
	fmt.Fprintf(&b, "  stage time: lex %.3fms, preprocess %.3fms, parse %.3fms (wall %.3fms)\n",
		1e3*m.LexTime.Seconds(), 1e3*m.PreprocessTime.Seconds(),
		1e3*m.ParseTime.Seconds(), 1e3*m.WallTime.Seconds())
	fmt.Fprintf(&b, "  engine: %d forks (%d typedef), %d merges, %d BDD nodes\n",
		m.Forks, m.TypedefForks, m.Merges, m.BDDNodes)
	rate := func(hits, misses int64) string {
		if hits+misses == 0 {
			return "n/a"
		}
		return fmt.Sprintf("%.1f%%", 100*float64(hits)/float64(hits+misses))
	}
	fmt.Fprintf(&b, "  follow memo: %d hits, %d misses (%s); subparser pool: %d reuses, %d allocs\n",
		m.FollowHits, m.FollowMisses, rate(m.FollowHits, m.FollowMisses),
		m.SubparserReuses, m.SubparserAllocs)
	fmt.Fprintf(&b, "  BDD op cache: %d hits, %d misses (%s), %d evictions; cond fast-paths: %d of %d ops (%s)\n",
		m.BDDOpHits, m.BDDOpMisses, rate(m.BDDOpHits, m.BDDOpMisses), m.BDDOpEvictions,
		m.CondFastPaths, m.CondOps, rate(m.CondFastPaths, m.CondOps-m.CondFastPaths))
	fmt.Fprintf(&b, "  token stream: %d streamed, %d materialized (%s), %d fallbacks; ~%d KiB forest avoided\n",
		m.TokensStreamed, m.TokensMaterialized, rate(m.TokensStreamed, m.TokensMaterialized),
		m.StreamFallbacks, m.StreamBytesAvoided/1024)
	fmt.Fprintf(&b, "  table cache: %s (%d hits, %d misses this process)\n",
		m.TableCacheState, m.TableCacheHits, m.TableCacheMisses)
	fmt.Fprintf(&b, "  header cache: %s (%d hits, %d misses; lex %d hits, %d misses; %d bytes saved, %d evictions)\n",
		m.HeaderCacheState, m.HeaderCacheHits, m.HeaderCacheMisses,
		m.HeaderLexHits, m.HeaderLexMisses, m.HeaderBytesSaved, m.HeaderEvictions)
	fmt.Fprintf(&b, "  artifact store: %s", m.StoreState)
	if m.StoreState != "off" {
		fmt.Fprintf(&b, " (%d hits, %d misses, %d writes, %d evictions, %d corrupt)",
			m.StoreHits, m.StoreMisses, m.StoreWrites, m.StoreEvictions, m.StoreCorrupt)
		if m.StoreWriteErrs > 0 || m.StoreReadErrs > 0 {
			fmt.Fprintf(&b, " (%d write errors, %d read errors)", m.StoreWriteErrs, m.StoreReadErrs)
		}
		if m.StoreDegraded > 0 {
			b.WriteString(" DEGRADED read-only")
		}
	}
	b.WriteByte('\n')
	if m.DaemonState != "" {
		fmt.Fprintf(&b, "  daemon client: %d attempts, %d retries, %d sheds, %d breaker opens; breaker %s\n",
			m.DaemonAttempts, m.DaemonRetries, m.DaemonSheds, m.DaemonBreakerOpens, m.DaemonState)
	}
	if m.AnalysisPasses > 0 || m.AnalysisDiags > 0 {
		fmt.Fprintf(&b, "  analysis: %d passes run, %d diagnostics; %d witness checks (%d failed), %d infeasible dropped, %d error regions skipped\n",
			m.AnalysisPasses, m.AnalysisDiags, m.WitnessChecks, m.WitnessFailures,
			m.InfeasibleDropped, m.SkippedErrorRegions)
		names := make([]string, 0, len(m.AnalysisByPass))
		for n := range m.AnalysisByPass {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(&b, "    %s: %d\n", n, m.AnalysisByPass[n])
		}
	}
	if m.LinkResult != nil {
		fmt.Fprintf(&b, "  link: %d units, %d symbols, %d facts; %d findings; %d SAT checks, %d witness checks (%d failed)\n",
			m.LinkUnits, m.LinkSymbols, m.LinkFacts, m.LinkFindings,
			m.LinkSATChecks, m.LinkWitnessChecks, m.LinkWitnessFailures)
		fams := make([]string, 0, len(m.LinkByFamily))
		for f := range m.LinkByFamily {
			fams = append(fams, f)
		}
		sort.Strings(fams)
		for _, f := range fams {
			fmt.Fprintf(&b, "    link/%s: %d\n", f, m.LinkByFamily[f])
		}
	}
	return b.String()
}

// collector accumulates metrics from worker goroutines.
type collector struct {
	failed, killed  stats.Counter
	inFlight        stats.HighWater
	lex, pre, parse stats.Timer
	forks, merges   stats.Counter
	typedefForks    stats.Counter
	bddNodes        stats.Counter

	followHits, followMisses stats.Counter
	spReuses, spAllocs       stats.Counter
	tokStreamed, tokMat      stats.Counter
	streamFallbacks          stats.Counter
	opHits, opMisses         stats.Counter
	opEvictions              stats.Counter
	condOps, condFastPaths   stats.Counter

	budgetTrips          stats.Counter
	axisTrips            *stats.CounterSet
	retried, quarantined stats.Counter
	quarMu               sync.Mutex
	quarantinedFiles     []string

	anPasses, anDiags stats.Counter
	anWitChecks       stats.Counter
	anWitFailures     stats.Counter
	anInfeasible      stats.Counter
	anErrRegions      stats.Counter
	anByPassMu        sync.Mutex
	anByPass          map[string]int64
}

func newCollector() *collector {
	return &collector{
		axisTrips: stats.NewCounterSet(int(guard.NumAxes)),
		anByPass:  make(map[string]int64),
	}
}

// add folds one finished unit into the collector.
func (col *collector) add(r *UnitResult) {
	if r.ParseFail || r.Err != "" {
		col.failed.Inc()
	}
	if r.Killed {
		col.killed.Inc()
	}
	if r.Budget != nil {
		col.budgetTrips.Inc()
		col.axisTrips.Inc(int(r.Budget.Axis))
	}
	if r.Retried {
		col.retried.Inc()
	}
	if r.Quarantined {
		col.quarantined.Inc()
		col.quarMu.Lock()
		col.quarantinedFiles = append(col.quarantinedFiles, r.File)
		col.quarMu.Unlock()
	}
	col.lex.Add(r.LexTime)
	col.pre.Add(r.PreTime)
	col.parse.Add(r.ParseTime)
	col.forks.Add(int64(r.Parse.Forks))
	col.merges.Add(int64(r.Parse.Merges))
	col.typedefForks.Add(int64(r.Parse.TypedefForks))
	col.bddNodes.Add(int64(r.BDDNodes))
	col.followHits.Add(int64(r.Parse.FollowHits))
	col.followMisses.Add(int64(r.Parse.FollowMisses))
	col.spReuses.Add(int64(r.Parse.SubparserReuses))
	col.spAllocs.Add(int64(r.Parse.SubparserAllocs))
	col.tokStreamed.Add(int64(r.Parse.TokensStreamed))
	col.tokMat.Add(int64(r.Parse.TokensMaterialized))
	col.streamFallbacks.Add(int64(r.Parse.StreamFallbacks))
	col.opHits.Add(r.BDDOpHits)
	col.opMisses.Add(r.BDDOpMisses)
	col.opEvictions.Add(r.BDDOpEvictions)
	col.condOps.Add(r.CondOps)
	col.condFastPaths.Add(r.CondFastPaths)
	if a := r.Analysis; a != nil {
		col.anPasses.Add(int64(a.Stats.PassesRun))
		col.anDiags.Add(int64(a.Stats.Diagnostics))
		col.anWitChecks.Add(int64(a.Stats.WitnessChecks))
		col.anWitFailures.Add(int64(a.Stats.WitnessFailures))
		col.anInfeasible.Add(int64(a.Stats.InfeasibleDropped))
		col.anErrRegions.Add(int64(a.Stats.ErrorRegions))
		col.anByPassMu.Lock()
		for pass, n := range a.Stats.ByPass {
			col.anByPass[pass] += int64(n)
		}
		col.anByPassMu.Unlock()
	}
}

// Run processes every compilation unit of the corpus under cfg.
func Run(c *corpus.Corpus, cfg RunConfig) []UnitResult {
	results, _ := RunMetered(context.Background(), c, cfg)
	return results
}

// RunMetered is Run with cancellation and a metrics snapshot. Units are
// distributed over cfg.Jobs workers; results keep corpus order. When ctx is
// cancelled, units not yet started are recorded as failed with Err
// "run cancelled" and the call returns after in-flight units finish.
func RunMetered(ctx context.Context, c *corpus.Corpus, cfg RunConfig) ([]UnitResult, Metrics) {
	parser := cfg.Parser
	if cfg.KillSwitch != 0 {
		parser.KillSwitch = cfg.KillSwitch
	}
	if parser.ParseWorkers == 0 {
		parser.ParseWorkers = cfg.parseWorkers()
	}
	jobs := cfg.jobs(len(c.CFiles))
	out := make([]UnitResult, len(c.CFiles))
	col := newCollector()
	hc := cfg.headerCache()
	var hcBefore hcache.Snapshot
	if hc != nil {
		hcBefore = hc.Stats()
	}
	st := Store()
	var stBefore store.Snapshot
	if st != nil {
		stBefore = st.Stats()
	}
	start := time.Now()

	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				if ctx.Err() != nil {
					out[i] = UnitResult{File: c.CFiles[i], ParseFail: true, Err: "run cancelled"}
					col.add(&out[i])
					continue
				}
				col.inFlight.Enter()
				r := runUnitSafe(ctx, c, cfg, parser, hc, c.CFiles[i])
				if cfg.quarantine() && r.unhealthy() && ctx.Err() == nil {
					retry := runUnitSafe(ctx, c, cfg, parser, hc, c.CFiles[i])
					retry.Retried = true
					if retry.unhealthy() {
						retry.Quarantined = true
					}
					r = retry
				}
				col.inFlight.Exit()
				out[i] = r
				col.add(&out[i])
			}
		}()
	}
	for i := range c.CFiles {
		work <- i
	}
	close(work)
	wg.Wait()

	hits, misses := cgrammar.TableCacheStats()
	m := Metrics{
		Jobs:               jobs,
		Units:              len(out),
		FailedUnits:        int(col.failed.Load()),
		KilledUnits:        int(col.killed.Load()),
		MaxInFlight:        int(col.inFlight.Max()),
		LexTime:            col.lex.Total(),
		PreprocessTime:     col.pre.Total(),
		ParseTime:          col.parse.Total(),
		WallTime:           time.Since(start),
		Forks:              col.forks.Load(),
		Merges:             col.merges.Load(),
		TypedefForks:       col.typedefForks.Load(),
		BDDNodes:           col.bddNodes.Load(),
		FollowHits:         col.followHits.Load(),
		FollowMisses:       col.followMisses.Load(),
		SubparserReuses:    col.spReuses.Load(),
		SubparserAllocs:    col.spAllocs.Load(),
		TokensStreamed:     col.tokStreamed.Load(),
		TokensMaterialized: col.tokMat.Load(),
		StreamFallbacks:    col.streamFallbacks.Load(),
		StreamBytesAvoided: col.tokStreamed.Load() * fmlr.BytesPerStreamedToken,
		BDDOpHits:          col.opHits.Load(),
		BDDOpMisses:        col.opMisses.Load(),
		BDDOpEvictions:     col.opEvictions.Load(),
		CondOps:            col.condOps.Load(),
		CondFastPaths:      col.condFastPaths.Load(),
		BudgetTrips:        int(col.budgetTrips.Load()),
		TripsByAxis:        col.axisTrips.Snapshot(),
		RetriedUnits:       int(col.retried.Load()),
		QuarantinedUnits:   int(col.quarantined.Load()),
		TableCacheHits:     hits,
		TableCacheMisses:   misses,
		TableCacheState:    cgrammar.TableCacheState(),
		HeaderCacheState:   "off",
		StoreState:         "off",
	}
	sort.Strings(col.quarantinedFiles)
	m.Quarantined = col.quarantinedFiles
	if len(cfg.Analyzers) > 0 {
		m.AnalysisPasses = col.anPasses.Load()
		m.AnalysisDiags = col.anDiags.Load()
		m.WitnessChecks = col.anWitChecks.Load()
		m.WitnessFailures = col.anWitFailures.Load()
		m.InfeasibleDropped = col.anInfeasible.Load()
		m.SkippedErrorRegions = col.anErrRegions.Load()
		m.AnalysisByPass = col.anByPass
	}
	if cfg.Link {
		// The join runs after the pool drains, over facts in corpus order —
		// worker scheduling cannot reach it, so the findings are a pure
		// function of the inputs at any Jobs/ParseWorkers combination.
		var facts []*link.Facts
		for i := range out {
			if out[i].LinkFacts != nil {
				facts = append(facts, out[i].LinkFacts)
			}
		}
		var canon *hcache.Canon
		if hc != nil {
			canon = hc.Canon()
		}
		lr := link.Link(facts, canon)
		m.LinkResult = lr
		m.LinkUnits = int64(lr.Stats.Units)
		m.LinkSymbols = int64(lr.Stats.Symbols)
		m.LinkFacts = int64(lr.Stats.Facts)
		m.LinkFindings = int64(lr.Stats.Findings)
		m.LinkSATChecks = int64(lr.Stats.SATChecks)
		m.LinkWitnessChecks = int64(lr.Stats.WitnessChecks)
		m.LinkWitnessFailures = int64(lr.Stats.WitnessFailures)
		m.LinkByFamily = make(map[string]int64, len(lr.Stats.ByFamily))
		for f, n := range lr.Stats.ByFamily {
			m.LinkByFamily[f] = int64(n)
		}
	}
	if hc != nil {
		d := hc.Stats().Sub(hcBefore)
		m.HeaderCacheState = "on"
		m.HeaderCacheHits = d.HeaderHits
		m.HeaderCacheMisses = d.HeaderMisses
		m.HeaderLexHits = d.LexHits
		m.HeaderLexMisses = d.LexMisses
		m.HeaderBytesSaved = d.BytesSaved
		m.HeaderEvictions = d.Evictions
	}
	if st != nil {
		d := st.Stats().Sub(stBefore)
		m.StoreState = "on"
		m.StoreHits = d.Hits
		m.StoreMisses = d.Misses
		m.StoreWrites = d.Writes
		m.StoreEvictions = d.Evictions
		m.StoreCorrupt = d.Corrupt
		m.StoreWriteErrs = d.WriteErrors
		m.StoreReadErrs = d.ReadErrors
		m.StoreDegraded = d.Degraded
	}
	return out, m
}

// testHookUnitStart, when set, runs at the top of every unit (inside the
// panic barrier); tests use it to inject worker panics.
var testHookUnitStart func(file string)

// unhealthy reports whether the unit attempt is worth retrying under
// quarantine semantics: it panicked (Err) or tripped its resource budget.
// Plain parse failures (grammar rejects) are deterministic results, not
// faults, and are never retried.
func (r *UnitResult) unhealthy() bool {
	return r.Err != "" || r.Budget != nil
}

// runUnitSafe is runUnit behind a panic barrier: a poisoned unit (lexer
// panic, grammar bug, injected fault) is recorded as that unit's failure —
// with the unit path and goroutine stack — instead of crashing the whole
// corpus run.
func runUnitSafe(ctx context.Context, c *corpus.Corpus, cfg RunConfig, parser fmlr.Options, hc *hcache.Cache, cf string) (res UnitResult) {
	defer func() {
		if p := recover(); p != nil {
			res = UnitResult{
				File:      cf,
				ParseFail: true,
				Err:       fmt.Sprintf("panic processing %s: %v", cf, p),
				Stack:     string(debug.Stack()),
			}
		}
	}()
	return runUnit(ctx, c, cfg, parser, hc, cf)
}

func runUnit(ctx context.Context, c *corpus.Corpus, cfg RunConfig, parser fmlr.Options, hc *hcache.Cache, cf string) UnitResult {
	if testHookUnitStart != nil {
		testHookUnitStart(cf)
	}
	// Every unit gets its own budget even when all limits are zero: the
	// budget carries the run context into the stage loop heads, so
	// cancelling the run abandons in-flight units, not just queued ones.
	budget := guard.New(ctx, cfg.limits())
	faultinject.At(faultinject.PointHarnessUnit, cf, budget)
	parser.Budget = budget
	// Each unit gets a fresh tool so that condition-space growth (BDD node
	// tables, SAT statistics) is attributed per unit, as in the paper's
	// per-compilation-unit latency measurements — and so that units share
	// no mutable state and can run on any worker.
	tool := core.New(core.Config{
		FS:           c.FS,
		IncludePaths: cfg.includePaths(),
		CondMode:     cfg.Mode,
		Parser:       &parser,
		SingleConfig: cfg.Single,
		Defines:      cfg.Defines,
		HeaderCache:  hc,
		Budget:       budget,
		NoStream:     cfg.noStream(),
	})
	start := time.Now()
	unit, err := tool.Preprocess(cf)
	preTotal := time.Since(start)
	res := UnitResult{File: cf}
	if err != nil {
		res.ParseFail = true
		res.Err = err.Error()
		res.Budget = budget.Trip()
		return res
	}
	parseStart := time.Now()
	eng := fmlr.New(tool.Space(), cgrammar.MustLoad(), parser)
	parse := eng.ParseUnit(unit)
	res.ParseTime = time.Since(parseStart)
	res.Bytes = unit.Stats.Bytes
	res.Tokens = unit.Stats.Tokens
	res.Pre = unit.Stats
	res.Parse = parse.Stats
	res.Killed = parse.Killed
	res.ParseFail = parse.AST == nil
	res.LexTime = unit.Stats.LexTime
	res.PreTime = preTotal - unit.Stats.LexTime
	res.TotalTime = preTotal + res.ParseTime
	if parse.AST != nil {
		res.ChoiceNodes = parse.AST.CountChoices()
	}
	if bf := tool.Space().BDD(); bf != nil {
		res.BDDNodes = bf.NumNodes()
		cs := bf.Stats()
		res.BDDOpHits = cs.OpHits
		res.BDDOpMisses = cs.OpMisses
		res.BDDOpEvictions = cs.OpEvictions
		res.BDDTableSlots = cs.TableSlots
	}
	hot := tool.Space().Hot
	res.CondOps = hot.Ops
	res.CondFastPaths = hot.FastPaths
	if len(cfg.Analyzers) > 0 {
		// Analysis runs under the same per-unit budget: a trip degrades to
		// the passes already completed, never hangs the unit.
		res.Analysis = analysis.Run(&analysis.Unit{
			File:   cf,
			Space:  tool.Space(),
			AST:    parse.AST,
			PP:     unit,
			Budget: budget,
		}, cfg.Analyzers)
	}
	if cfg.Link && parse.AST != nil {
		res.LinkFacts = analysis.ExtractLinkFacts(&analysis.Unit{
			File:   cf,
			Space:  tool.Space(),
			AST:    parse.AST,
			PP:     unit,
			Budget: budget,
		})
	}
	res.Budget = budget.Trip()
	return res
}

// Table2a renders the developer's view of preprocessor usage (paper
// Table 2a): directive counts against lines of code, split between C files
// and headers.
func Table2a(c *corpus.Corpus) string {
	t := c.DeveloperView()
	var b strings.Builder
	pct := func(part, whole int) string {
		if whole == 0 {
			return "0%"
		}
		return fmt.Sprintf("%.0f%%", 100*float64(part)/float64(whole))
	}
	fmt.Fprintf(&b, "Table 2a: developer's view (synthetic corpus)\n")
	fmt.Fprintf(&b, "%-28s %9s %9s %9s\n", "", "Total", "C Files", "Headers")
	fmt.Fprintf(&b, "%-28s %9d %9s %9s\n", "LoC", t.LoC, pct(t.LoC-t.LoCHeaders, t.LoC), pct(t.LoCHeaders, t.LoC))
	fmt.Fprintf(&b, "%-28s %9d %9s %9s\n", "All Directives", t.Directives, pct(t.Directives-t.DirHeaders, t.Directives), pct(t.DirHeaders, t.Directives))
	fmt.Fprintf(&b, "%-28s %9d %9s %9s\n", "#define", t.Defines, pct(t.Defines-t.DefinesHeaders, t.Defines), pct(t.DefinesHeaders, t.Defines))
	fmt.Fprintf(&b, "%-28s %9d %9s %9s\n", "#if, #ifdef, #ifndef", t.Conds, pct(t.Conds-t.CondsHeaders, t.Conds), pct(t.CondsHeaders, t.Conds))
	fmt.Fprintf(&b, "%-28s %9d %9s %9s\n", "#include", t.Includes, pct(t.Includes-t.IncludesHeaders, t.Includes), pct(t.IncludesHeaders, t.Includes))
	return b.String()
}

// Table2b renders the most frequently included headers (paper Table 2b).
func Table2b(c *corpus.Corpus) string {
	counts := c.InclusionCounts()
	type hc struct {
		name string
		n    int
	}
	var list []hc
	for h, n := range counts {
		list = append(list, hc{h, n})
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].n != list[j].n {
			return list[i].n > list[j].n
		}
		return list[i].name < list[j].name
	})
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2b: most frequently included headers\n")
	fmt.Fprintf(&b, "%-36s %s\n", "Header Name", "C Files That Include Header")
	for i, e := range list {
		if i >= 5 {
			break
		}
		fmt.Fprintf(&b, "%-36s %d (%.0f%%)\n", e.name, e.n, 100*float64(e.n)/float64(len(c.CFiles)))
	}
	return b.String()
}

// Table3 renders the tool's view of preprocessor usage (paper Table 3):
// per-construct percentiles (50th · 90th · 100th) across compilation units.
func Table3(results []UnitResult) string {
	row := func(get func(u *preprocessor.UnitStats) int) *stats.Sample {
		s := &stats.Sample{}
		for i := range results {
			s.AddInt(get(&results[i].Pre))
		}
		return s
	}
	type line struct {
		label string
		s     *stats.Sample
	}
	lines := []line{
		{"Macro Definitions", row(func(u *preprocessor.UnitStats) int { return u.MacroDefinitions })},
		{"  Contained in conditionals", row(func(u *preprocessor.UnitStats) int { return u.DefsInConditional })},
		{"  Redefinitions", row(func(u *preprocessor.UnitStats) int { return u.Redefinitions })},
		{"Macro Invocations", row(func(u *preprocessor.UnitStats) int { return u.Invocations })},
		{"  Trimmed", row(func(u *preprocessor.UnitStats) int { return u.TrimmedInvocations })},
		{"  Hoisted", row(func(u *preprocessor.UnitStats) int { return u.HoistedInvocations })},
		{"  Nested invocations", row(func(u *preprocessor.UnitStats) int { return u.NestedInvocations })},
		{"  Built-in macros", row(func(u *preprocessor.UnitStats) int { return u.BuiltinUses })},
		{"Token-Pasting", row(func(u *preprocessor.UnitStats) int { return u.TokenPastings })},
		{"  Hoisted", row(func(u *preprocessor.UnitStats) int { return u.HoistedPastings })},
		{"Stringification", row(func(u *preprocessor.UnitStats) int { return u.Stringifications })},
		{"File Includes", row(func(u *preprocessor.UnitStats) int { return u.Includes })},
		{"  Hoisted", row(func(u *preprocessor.UnitStats) int { return u.HoistedIncludes })},
		{"  Computed includes", row(func(u *preprocessor.UnitStats) int { return u.ComputedIncludes })},
		{"  Reincluded headers", row(func(u *preprocessor.UnitStats) int { return u.ReincludedHeaders })},
		{"Static Conditionals", row(func(u *preprocessor.UnitStats) int { return u.Conditionals })},
		{"  Max. depth", row(func(u *preprocessor.UnitStats) int { return u.MaxCondDepth })},
		{"  With non-boolean expressions", row(func(u *preprocessor.UnitStats) int { return u.NonBooleanExprs })},
		{"Error Directives", row(func(u *preprocessor.UnitStats) int { return u.ErrorDirectives })},
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: tool's view — percentiles across compilation units (50th · 90th · 100th)\n")
	for _, l := range lines {
		fmt.Fprintf(&b, "%-34s %s\n", l.label, l.s.Table3Row())
	}
	// Parser-side rows of Table 3.
	decls := &stats.Sample{}
	typedefForks := &stats.Sample{}
	for i := range results {
		decls.AddInt(results[i].ChoiceNodes)
		typedefForks.AddInt(results[i].Parse.TypedefForks)
	}
	fmt.Fprintf(&b, "%-34s %s\n", "C Constructs w/ choice nodes", decls.Table3Row())
	fmt.Fprintf(&b, "%-34s %s\n", "Ambiguously defined names", typedefForks.Table3Row())
	return b.String()
}

// Level is one Figure 8 optimization level.
type Level struct {
	Name string
	Opts fmlr.Options
}

// Levels are Figure 8a's rows, in the paper's order.
var Levels = []Level{
	{"Shared, Lazy, & Early", fmlr.OptAll},
	{"Shared & Lazy", fmlr.OptSharedLazy},
	{"Shared", fmlr.OptShared},
	{"Lazy", fmlr.OptLazy},
	{"Follow-Set Only", fmlr.OptFollowOnly},
	{"MAPR & Largest First", fmlr.OptMAPRLargest},
	{"MAPR", fmlr.OptMAPR},
}

// Figure8Row is one optimization level's aggregate subparser statistics.
type Figure8Row struct {
	Name        string
	P99         int
	Max         int
	KilledUnits int
	TotalUnits  int
}

// Figure8 measures subparser counts per main-loop iteration for every
// optimization level (paper Figure 8a).
func Figure8(c *corpus.Corpus, killSwitch int) []Figure8Row {
	var rows []Figure8Row
	for _, lv := range Levels {
		results := Run(c, RunConfig{Parser: lv.Opts, KillSwitch: killSwitch})
		agg := &stats.Sample{}
		killed := 0
		for i := range results {
			if results[i].Killed {
				killed++
				continue
			}
			for count, iters := range results[i].Parse.SubparserHist {
				for k := 0; k < iters; k++ {
					agg.AddInt(count)
				}
			}
		}
		rows = append(rows, Figure8Row{
			Name:        lv.Name,
			P99:         int(agg.Percentile(0.99)),
			Max:         int(agg.Max()),
			KilledUnits: killed,
			TotalUnits:  len(results),
		})
	}
	return rows
}

// RenderFigure8a prints Figure 8a's table.
func RenderFigure8a(rows []Figure8Row, killSwitch int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8a: subparser counts per FMLR loop iteration\n")
	fmt.Fprintf(&b, "%-24s %8s %8s\n", "Optimization Level", "99th %", "Max.")
	for _, r := range rows {
		if r.KilledUnits > 0 {
			fmt.Fprintf(&b, "%-24s  >%d on %d%% of comp. units\n",
				r.Name, killSwitch, 100*r.KilledUnits/r.TotalUnits)
			continue
		}
		fmt.Fprintf(&b, "%-24s %8d %8d\n", r.Name, r.P99, r.Max)
	}
	return b.String()
}

// Figure8b returns, per level, the cumulative distribution of subparser
// counts (paper Figure 8b). The MAPR rows are omitted: their distributions
// are dominated by kill-switch aborts (see Figure 8a), and Figure 8b's
// point in the paper is the separation between the FMLR levels.
func Figure8b(c *corpus.Corpus, killSwitch, points int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8b: cumulative distribution of subparser counts per iteration\n")
	for _, lv := range Levels {
		if lv.Opts.NoChoiceMerge {
			continue // MAPR baselines: see Figure 8a
		}
		results := Run(c, RunConfig{Parser: lv.Opts, KillSwitch: killSwitch})
		agg := &stats.Sample{}
		killed := 0
		for i := range results {
			if results[i].Killed {
				killed++
				continue
			}
			for count, iters := range results[i].Parse.SubparserHist {
				for k := 0; k < iters; k++ {
					agg.AddInt(count)
				}
			}
		}
		if killed == len(results) {
			fmt.Fprintf(&b, "%s: all units exceeded the kill switch\n", lv.Name)
			continue
		}
		fmt.Fprintf(&b, "%s", stats.RenderCDF(lv.Name, agg, points))
	}
	return b.String()
}

// Figure9 compares per-unit latency between SuperC (BDD conditions, all
// optimizations) and the TypeChef baseline (SAT conditions, follow-set
// only), as in paper Figure 9.
type Figure9Result struct {
	SuperC   *stats.Sample // seconds per unit
	TypeChef *stats.Sample
}

// Figure9 runs both tools over the corpus.
func Figure9(c *corpus.Corpus) Figure9Result {
	superc := Run(c, RunConfig{Mode: cond.ModeBDD, Parser: fmlr.OptAll})
	chef := Run(c, RunConfig{Mode: cond.ModeSAT, Parser: fmlr.OptFollowOnly})
	r := Figure9Result{SuperC: &stats.Sample{}, TypeChef: &stats.Sample{}}
	for i := range superc {
		r.SuperC.AddDuration(superc[i].TotalTime)
	}
	for i := range chef {
		r.TypeChef.AddDuration(chef[i].TotalTime)
	}
	return r
}

// RenderFigure9 prints the latency comparison in the paper's style.
func RenderFigure9(r Figure9Result, points int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9: latency per compilation unit\n")
	fmt.Fprintf(&b, "%-10s %10s %10s %10s %12s %12s\n", "tool", "p50", "p80", "p99", "max", "total")
	row := func(name string, s *stats.Sample) {
		fmt.Fprintf(&b, "%-10s %9.3fms %9.3fms %9.3fms %10.3fms %10.3fms\n", name,
			1e3*s.Percentile(0.5), 1e3*s.Percentile(0.8), 1e3*s.Percentile(0.99),
			1e3*s.Max(), 1e3*s.Sum())
	}
	row("SuperC", r.SuperC)
	row("TypeChef", r.TypeChef)
	if r.SuperC.Percentile(0.5) > 0 {
		fmt.Fprintf(&b, "speedup: p50 %.1fx, p80 %.1fx, max %.1fx\n",
			r.TypeChef.Percentile(0.5)/r.SuperC.Percentile(0.5),
			r.TypeChef.Percentile(0.8)/r.SuperC.Percentile(0.8),
			r.TypeChef.Max()/r.SuperC.Max())
	}
	b.WriteString(stats.RenderCDF("SuperC latency CDF (s)", r.SuperC, points))
	b.WriteString(stats.RenderCDF("TypeChef latency CDF (s)", r.TypeChef, points))
	return b.String()
}

// Figure10 renders the SuperC latency breakdown by stage against
// compilation-unit size (paper Figure 10).
func Figure10(c *corpus.Corpus) string {
	results := Run(c, RunConfig{Mode: cond.ModeBDD, Parser: fmlr.OptAll})
	sort.Slice(results, func(i, j int) bool { return results[i].Bytes < results[j].Bytes })
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 10: SuperC latency breakdown per compilation unit (sorted by size)\n")
	fmt.Fprintf(&b, "%-20s %10s %10s %10s %10s %10s\n", "unit", "bytes", "lex(ms)", "preproc(ms)", "parse(ms)", "total(ms)")
	for i := range results {
		r := &results[i]
		fmt.Fprintf(&b, "%-20s %10d %10.3f %10.3f %10.3f %10.3f\n",
			r.File, r.Bytes,
			r.LexTime.Seconds()*1e3, r.PreTime.Seconds()*1e3,
			r.ParseTime.Seconds()*1e3, r.TotalTime.Seconds()*1e3)
	}
	return b.String()
}

// GccBaseline measures single-configuration processing (the paper's gcc
// comparison: one branch per conditional, concrete macro table).
func GccBaseline(c *corpus.Corpus, defines map[string]string) (*stats.Sample, []UnitResult) {
	results := Run(c, RunConfig{Single: true, Defines: defines, Parser: fmlr.OptAll})
	s := &stats.Sample{}
	for i := range results {
		s.AddDuration(results[i].TotalTime)
	}
	return s, results
}

// RenderGcc prints the single-configuration comparison.
func RenderGcc(c *corpus.Corpus) string {
	single, _ := GccBaseline(c, map[string]string{"CONFIG_64BIT": "1", "CONFIG_KERNEL_MODE": "1"})
	full := Run(c, RunConfig{Mode: cond.ModeBDD, Parser: fmlr.OptAll})
	fullS := &stats.Sample{}
	for i := range full {
		fullS.AddDuration(full[i].TotalTime)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "gcc-like single-configuration baseline vs configuration-preserving SuperC\n")
	fmt.Fprintf(&b, "%-22s %10s %10s %10s\n", "", "p50", "p90", "max")
	fmt.Fprintf(&b, "%-22s %8.3fms %8.3fms %8.3fms\n", "single-configuration",
		1e3*single.Percentile(0.5), 1e3*single.Percentile(0.9), 1e3*single.Max())
	fmt.Fprintf(&b, "%-22s %8.3fms %8.3fms %8.3fms\n", "config-preserving",
		1e3*fullS.Percentile(0.5), 1e3*fullS.Percentile(0.9), 1e3*fullS.Max())
	if single.Percentile(0.5) > 0 {
		fmt.Fprintf(&b, "slowdown of preservation: p50 %.1fx, p90 %.1fx, max %.1fx\n",
			fullS.Percentile(0.5)/single.Percentile(0.5),
			fullS.Percentile(0.9)/single.Percentile(0.9),
			fullS.Max()/single.Max())
	}
	return b.String()
}
