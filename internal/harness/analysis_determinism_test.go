package harness

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/passes"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/fmlr"
)

// renderAnalysis flattens a run's analysis output into one string covering
// every field that reaches the user: position, pass, message, condition,
// witness, verification flag.
func renderAnalysis(results []UnitResult) string {
	var b strings.Builder
	for _, r := range results {
		if r.Analysis == nil {
			continue
		}
		for _, d := range r.Analysis.Diags {
			fmt.Fprintf(&b, "%s:%d:%d %s %s [%s] %v verified=%v\n",
				d.File, d.Line, d.Col, d.Pass, d.Msg, d.CondStr, d.Witness, d.WitnessVerified)
		}
		s := r.Analysis.Stats
		fmt.Fprintf(&b, "%s stats %d %d %d %d %d %d\n", r.File,
			s.PassesRun, s.Diagnostics, s.WitnessChecks, s.WitnessFailures,
			s.InfeasibleDropped, s.ErrorRegions)
	}
	return b.String()
}

// TestAnalysisOutputStableAcrossJobs is the -j golden test: the rendered
// diagnostics of a sequential run and a wide parallel run must be
// byte-identical — ordering is a function of the corpus, not of scheduling.
func TestAnalysisOutputStableAcrossJobs(t *testing.T) {
	c := corpus.Generate(corpus.Params{Seed: 3, CFiles: 10, GenHeaders: 10})
	cfg := RunConfig{Parser: fmlr.OptAll, Analyzers: passes.All()}

	cfg.Jobs = 1
	sequential := renderAnalysis(Run(c, cfg))
	if sequential == "" {
		t.Fatal("no analysis output at -j 1")
	}
	for _, jobs := range []int{2, 8} {
		cfg.Jobs = jobs
		parallel := renderAnalysis(Run(c, cfg))
		if parallel != sequential {
			t.Errorf("analysis output differs between -j 1 and -j %d:\n--- j1 ---\n%s\n--- j%d ---\n%s",
				jobs, sequential, jobs, parallel)
		}
	}
}

// TestOutputStableAcrossParseWorkers is the -parse-workers golden test: the
// rendered Table 3 and analysis output must be byte-identical whether units
// parse sequentially or region-parallel, at any worker-pool width — the two
// parallelism axes compose without touching observable output. The corpus
// uses large units so the region-parallel path actually engages instead of
// uniformly falling back.
func TestOutputStableAcrossParseWorkers(t *testing.T) {
	c := corpus.Generate(corpus.Params{Seed: 5, CFiles: 8, GenHeaders: 10, BlocksPerFile: 60})
	render := func(jobs, pw int) string {
		cfg := RunConfig{Parser: fmlr.OptAll, Analyzers: passes.All(), Jobs: jobs, ParseWorkers: pw}
		results := Run(c, cfg)
		return Table3(results) + "\n" + renderAnalysis(results)
	}
	want := render(1, 1)
	if want == "\n" {
		t.Fatal("no output at -j 1 -parse-workers 1")
	}
	for _, jobs := range []int{1, 8} {
		for _, pw := range []int{1, 4} {
			if jobs == 1 && pw == 1 {
				continue
			}
			if got := render(jobs, pw); got != want {
				t.Errorf("output differs between -j 1 -parse-workers 1 and -j %d -parse-workers %d:\n--- want ---\n%s\n--- got ---\n%s",
					jobs, pw, want, got)
			}
		}
	}
}

// TestCoverageReportStableOrdering: the coverage report's sort is a total
// order, so repeated builds over the same units render identically even
// when map iteration varies underneath.
func TestCoverageReportStableOrdering(t *testing.T) {
	c := corpus.Generate(corpus.Params{Seed: 3, CFiles: 6, GenHeaders: 8})
	render := func() string {
		tool := core.New(core.Config{FS: c.FS, IncludePaths: IncludePaths})
		ix := analysis.NewIndex(tool.Space())
		for _, cf := range c.CFiles {
			res, err := tool.ParseFile(cf)
			if err != nil || res.AST == nil {
				t.Fatalf("%s: %v", cf, err)
			}
			ix.AddUnit(cf, res.AST)
		}
		var b strings.Builder
		for _, e := range ix.CoverageReport() {
			fmt.Fprintf(&b, "%s %s:%d:%d %.4f\n", e.Symbol.Name, e.Symbol.File,
				e.Symbol.Line, e.Symbol.Col, e.Fraction)
		}
		return b.String()
	}
	first := render()
	if first == "" {
		t.Fatal("empty coverage report")
	}
	for i := 0; i < 3; i++ {
		if again := render(); again != first {
			t.Fatalf("coverage report ordering unstable:\n%s\nvs\n%s", first, again)
		}
	}
}

// renderLink flattens a corpus link run into one string covering every
// field the linker surfaces to the user.
func renderLink(m Metrics) string {
	if m.LinkResult == nil {
		return ""
	}
	var b strings.Builder
	for _, f := range m.LinkResult.Findings {
		fmt.Fprintf(&b, "%s %s %s:%d:%d other=%s:%d:%d sigs=%q/%q [%s] %v verified=%v\n",
			f.Pass(), f.Symbol, f.File, f.Line, f.Col,
			f.OtherFile, f.OtherLine, f.OtherCol,
			f.SigA, f.SigB, f.CondStr, f.Witness, f.WitnessVerified)
	}
	s := m.LinkResult.Stats
	fmt.Fprintf(&b, "stats %d %d %d %d %d %d\n",
		s.Units, s.Symbols, s.Facts, s.Findings, s.WitnessChecks, s.WitnessFailures)
	return b.String()
}

// TestLinkOutputStableAcrossWorkers is the linker's scheduling golden: the
// corpus-wide findings must be byte-identical at any -j and -parse-workers
// combination — the join is a pure function of the fact set, and fact
// extraction is per-unit.
func TestLinkOutputStableAcrossWorkers(t *testing.T) {
	c := corpus.Generate(corpus.Params{Seed: 7, CFiles: 8, GenHeaders: 8})
	base := RunConfig{Parser: fmlr.OptAll, Link: true, Jobs: 1}
	_, m := RunMetered(context.Background(), c, base)
	sequential := renderLink(m)
	if m.LinkResult == nil || m.LinkResult.Stats.Units == 0 {
		t.Fatal("link run joined no units")
	}
	for _, w := range []struct{ jobs, pw int }{{2, 0}, {8, 0}, {1, 4}, {8, 4}} {
		cfg := base
		cfg.Jobs, cfg.ParseWorkers = w.jobs, w.pw
		_, mw := RunMetered(context.Background(), c, cfg)
		if got := renderLink(mw); got != sequential {
			t.Errorf("link output differs at jobs=%d parse-workers=%d:\n--- base ---\n%s\n--- got ---\n%s",
				w.jobs, w.pw, sequential, got)
		}
	}
}
