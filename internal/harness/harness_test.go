package harness

import (
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/fmlr"
)

func smallCorpus() *corpus.Corpus {
	return corpus.Generate(corpus.Params{Seed: 9, CFiles: 6, GenHeaders: 8})
}

func TestRunProducesCleanResults(t *testing.T) {
	c := smallCorpus()
	results := Run(c, RunConfig{Parser: fmlr.OptAll})
	if len(results) != len(c.CFiles) {
		t.Fatalf("results = %d, units = %d", len(results), len(c.CFiles))
	}
	for _, r := range results {
		if r.ParseFail || r.Killed {
			t.Errorf("%s: fail=%v killed=%v", r.File, r.ParseFail, r.Killed)
		}
		if r.Bytes == 0 || r.Tokens == 0 {
			t.Errorf("%s: empty measurements", r.File)
		}
		if r.TotalTime <= 0 {
			t.Errorf("%s: no timing", r.File)
		}
	}
}

func TestTable2Renders(t *testing.T) {
	c := smallCorpus()
	out := Table2a(c)
	for _, want := range []string{"LoC", "#define", "#include", "Headers"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table2a missing %q:\n%s", want, out)
		}
	}
	out = Table2b(c)
	// With only six units the popular-header sample is noisy; the ranking
	// must at least surface the shared header forest.
	if !strings.Contains(out, "include/linux/") {
		t.Errorf("Table2b missing the shared headers:\n%s", out)
	}
}

func TestTable3Renders(t *testing.T) {
	c := smallCorpus()
	results := Run(c, RunConfig{Parser: fmlr.OptAll})
	out := Table3(results)
	for _, want := range []string{
		"Macro Definitions", "Macro Invocations", "Token-Pasting",
		"File Includes", "Static Conditionals", "·",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table3 missing %q", want)
		}
	}
}

// TestFigure8Shape asserts the paper's qualitative result: the fully
// optimized level needs no more subparsers than follow-set only, and the
// MAPR baselines blow past the kill switch on some units while FMLR never
// does.
func TestFigure8Shape(t *testing.T) {
	c := smallCorpus()
	const kill = 800
	rows := Figure8(c, kill)
	byName := map[string]Figure8Row{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	all := byName["Shared, Lazy, & Early"]
	follow := byName["Follow-Set Only"]
	mapr := byName["MAPR"]
	if all.KilledUnits != 0 || follow.KilledUnits != 0 {
		t.Errorf("FMLR levels tripped the kill switch: %+v %+v", all, follow)
	}
	if all.Max > follow.Max {
		t.Errorf("optimizations increased max subparsers: %d vs %d", all.Max, follow.Max)
	}
	if mapr.KilledUnits == 0 {
		t.Errorf("MAPR never tripped the kill switch: %+v", mapr)
	}
	out := RenderFigure8a(rows, kill)
	if !strings.Contains(out, "MAPR") || !strings.Contains(out, "99th") {
		t.Errorf("render:\n%s", out)
	}
}

// TestFigure9Shape asserts the latency relationship: the SAT-backed
// TypeChef baseline is slower than SuperC in aggregate. The corpus slice
// excludes the heaviest-variability units: their SAT-mode tail (the
// Figure 9 knee) is exercised by the benchmarks, not the unit tests.
//
// Wall-clock assertions on millisecond-scale runs are fragile: the first
// Figure9 of a process lands all per-process warm-up (table load, lazy
// init, cold caches) on whichever mode runs first, and a 4-unit median
// has no margin. So: one discarded warm-up pass, compare total latency
// (SAT's cost shows up in the tail units, not the median), and retry a
// few times before declaring the relationship inverted.
func TestFigure9Shape(t *testing.T) {
	c := corpus.Generate(corpus.Params{Seed: 9, CFiles: 4, GenHeaders: 8})
	Figure9(c) // warm-up: absorb per-process one-time costs untimed
	var r Figure9Result
	for attempt := 0; attempt < 3; attempt++ {
		r = Figure9(c)
		if r.SuperC.Len() == 0 || r.TypeChef.Len() == 0 {
			t.Fatal("empty samples")
		}
		if r.TypeChef.Sum() > r.SuperC.Sum() {
			break
		}
	}
	if r.TypeChef.Sum() <= r.SuperC.Sum() {
		t.Errorf("TypeChef total %.4fs should exceed SuperC total %.4fs",
			r.TypeChef.Sum(), r.SuperC.Sum())
	}
	out := RenderFigure9(r, 4)
	if !strings.Contains(out, "speedup") {
		t.Errorf("render:\n%s", out)
	}
}

func TestFigure10Renders(t *testing.T) {
	c := smallCorpus()
	out := Figure10(c)
	if !strings.Contains(out, "lex(ms)") || !strings.Contains(out, ".c") {
		t.Errorf("render:\n%s", out)
	}
}

// TestGccBaselineShape asserts the structural difference between
// single-configuration and configuration-preserving processing: the
// baseline never forks subparsers or preserves conditionals, while the
// preserving run does both. (The latency relationship — preservation costs
// ~1.1-1.4x on this corpus — is timer-noise-sensitive at unit-test scale
// and is reported by BenchmarkGccBaseline instead.)
func TestGccBaselineShape(t *testing.T) {
	c := smallCorpus()
	single, results := GccBaseline(c, map[string]string{"CONFIG_64BIT": "1"})
	for _, r := range results {
		if r.ParseFail {
			t.Errorf("%s failed in single-config mode", r.File)
		}
		if r.Parse.MaxSubparsers > 1 {
			t.Errorf("%s: single-config mode forked %d subparsers", r.File, r.Parse.MaxSubparsers)
		}
		if r.ChoiceNodes != 0 {
			t.Errorf("%s: single-config AST has %d choice nodes", r.File, r.ChoiceNodes)
		}
	}
	full := Run(c, RunConfig{Parser: fmlr.OptAll})
	forked, fullTotal := false, 0.0
	for i := range full {
		if full[i].Parse.MaxSubparsers > 1 {
			forked = true
		}
		fullTotal += full[i].TotalTime.Seconds()
	}
	if !forked {
		t.Error("configuration-preserving run never forked")
	}
	t.Logf("single-config total %.4fs vs preserving total %.4fs", single.Sum(), fullTotal)
}
