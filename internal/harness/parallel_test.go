package harness

// Worker-pool tests for the parallel harness. Run them under the race
// detector (`go test -race ./internal/harness/...`, the tier-1 CI gate):
// they drive a harness run with 8 workers over shared corpus state,
// including a unit that deliberately trips the subparser kill switch
// mid-run and a unit that panics inside a worker.

import (
	"context"
	"strings"
	"testing"

	"repro/internal/fmlr"
)

// TestParallelMatchesSequential asserts the tentpole invariant: a parallel
// run produces exactly the sequential run's per-unit results (same parse
// outcomes, token counts, choice nodes, failure set) in the same order.
func TestParallelMatchesSequential(t *testing.T) {
	c := smallCorpus()
	seq := Run(c, RunConfig{Parser: fmlr.OptAll, Jobs: 1})
	par := Run(c, RunConfig{Parser: fmlr.OptAll, Jobs: 8})
	if len(seq) != len(par) {
		t.Fatalf("result counts: %d vs %d", len(par), len(seq))
	}
	for i := range seq {
		s, p := &seq[i], &par[i]
		if s.File != p.File {
			t.Errorf("unit %d ordering: %s vs %s", i, p.File, s.File)
		}
		if s.Tokens != p.Tokens || s.Bytes != p.Bytes || s.ChoiceNodes != p.ChoiceNodes ||
			s.Killed != p.Killed || s.ParseFail != p.ParseFail {
			t.Errorf("%s: parallel result diverged:\nseq %+v\npar %+v", s.File, s, p)
		}
		if s.Parse.Forks != p.Parse.Forks || s.Parse.Merges != p.Parse.Merges ||
			s.Parse.Iterations != p.Parse.Iterations {
			t.Errorf("%s: engine stats diverged: seq %+v par %+v", s.File, s.Parse, p.Parse)
		}
	}
}

// TestParallelKillSwitch runs the MAPR baseline with a tiny kill switch on
// 8 workers: units that explode must degrade to recorded Killed results
// while the rest of the run completes normally.
func TestParallelKillSwitch(t *testing.T) {
	c := smallCorpus()
	results, m := RunMetered(context.Background(), c,
		RunConfig{Parser: fmlr.OptMAPR, KillSwitch: 50, Jobs: 8})
	if len(results) != len(c.CFiles) {
		t.Fatalf("results = %d, units = %d", len(results), len(c.CFiles))
	}
	killed := 0
	for i, r := range results {
		if r.File != c.CFiles[i] {
			t.Errorf("unit %d ordering: %s vs %s", i, r.File, c.CFiles[i])
		}
		if r.Killed {
			killed++
		}
	}
	if killed == 0 {
		t.Error("no unit tripped the kill switch under MAPR with kill=50")
	}
	if killed == len(results) {
		t.Error("every unit tripped the kill switch; expected survivors")
	}
	if m.KilledUnits != killed {
		t.Errorf("Metrics.KilledUnits = %d, counted %d", m.KilledUnits, killed)
	}
}

// TestParallelPanicRecovered injects a panic into one unit's worker and
// asserts it degrades to that unit's failure record.
func TestParallelPanicRecovered(t *testing.T) {
	c := smallCorpus()
	poisoned := c.CFiles[len(c.CFiles)/2]
	testHookUnitStart = func(file string) {
		if file == poisoned {
			panic("injected lexer failure")
		}
	}
	defer func() { testHookUnitStart = nil }()

	results, m := RunMetered(context.Background(), c, RunConfig{Parser: fmlr.OptAll, Jobs: 8})
	for _, r := range results {
		if r.File == poisoned {
			if !r.ParseFail || !strings.Contains(r.Err, "injected lexer failure") {
				t.Errorf("poisoned unit not recorded as panic failure: %+v", r)
			}
		} else if r.ParseFail || r.Err != "" {
			t.Errorf("%s: healthy unit failed: %+v", r.File, r)
		}
	}
	if m.FailedUnits != 1 {
		t.Errorf("Metrics.FailedUnits = %d, want 1", m.FailedUnits)
	}
}

// TestParallelCancellation cancels the context before the run starts:
// every unit must be recorded as cancelled, and the call must return.
func TestParallelCancellation(t *testing.T) {
	c := smallCorpus()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, m := RunMetered(ctx, c, RunConfig{Parser: fmlr.OptAll, Jobs: 4})
	if len(results) != len(c.CFiles) {
		t.Fatalf("results = %d, units = %d", len(results), len(c.CFiles))
	}
	for _, r := range results {
		if r.Err != "run cancelled" {
			t.Errorf("%s: Err = %q, want cancellation record", r.File, r.Err)
		}
	}
	if m.FailedUnits != len(results) {
		t.Errorf("Metrics.FailedUnits = %d, want %d", m.FailedUnits, len(results))
	}
}

// TestMetricsSnapshot sanity-checks the observability counters on a clean
// parallel run.
func TestMetricsSnapshot(t *testing.T) {
	c := smallCorpus()
	results, m := RunMetered(context.Background(), c, RunConfig{Parser: fmlr.OptAll, Jobs: 4})
	if m.Units != len(results) || m.FailedUnits != 0 || m.KilledUnits != 0 {
		t.Errorf("unit counts: %+v", m)
	}
	if m.Jobs != 4 {
		t.Errorf("Jobs = %d, want 4", m.Jobs)
	}
	if m.MaxInFlight < 1 || m.MaxInFlight > 4 {
		t.Errorf("MaxInFlight = %d, want 1..4", m.MaxInFlight)
	}
	if m.ParseTime <= 0 || m.WallTime <= 0 {
		t.Errorf("missing stage times: %+v", m)
	}
	if m.Forks <= 0 || m.Merges <= 0 {
		t.Errorf("missing engine totals: %+v", m)
	}
	if m.BDDNodes <= 0 {
		t.Errorf("BDDNodes = %d, want > 0 in BDD mode", m.BDDNodes)
	}
	if m.TableCacheState == "none" {
		t.Error("table cache state never recorded despite grammar load")
	}
	out := m.String()
	for _, want := range []string{"harness metrics", "units:", "stage time:", "table cache:"} {
		if !strings.Contains(out, want) {
			t.Errorf("Metrics.String missing %q:\n%s", want, out)
		}
	}
	_ = results
}
