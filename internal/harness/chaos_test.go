package harness

// The chaos suite (run in CI under -race) drives the corpus with
// deterministic fault injection at every stage boundary and asserts the
// three robustness invariants of the governor design:
//
//  1. zero crashes — every unit yields a UnitResult, the run completes;
//  2. deterministic quarantine — two identically-seeded faulted runs
//     quarantine exactly the same unit set, regardless of scheduling;
//  3. isolation — units the fault plan does not touch produce results
//     identical to a clean run.
//
// Header caching is disabled for the faulted runs: a fault on a shared
// header's lex would otherwise fire only in whichever unit happens to fill
// the cache first, making the quarantine set scheduling-dependent. The
// header-cache fault point gets its own sequential test below.

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/fmlr"
	"repro/internal/guard"
	"repro/internal/guard/faultinject"
	"repro/internal/hcache"
	"repro/internal/preprocessor"
)

// chaosSeed returns the fault-plan seed: CHAOS_SEED from the environment
// when set (for replaying a failure), a fixed default otherwise. The seed is
// always logged so any failure is reproducible.
func chaosSeed(t *testing.T) (int64, bool) {
	t.Helper()
	if s := os.Getenv("CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("CHAOS_SEED=%q: %v", s, err)
		}
		t.Logf("chaos seed %d (from CHAOS_SEED)", v)
		return v, true
	}
	const def = 20260805
	t.Logf("chaos seed %d (default; override with CHAOS_SEED)", def)
	return def, false
}

// comparable projects the deterministic, timing-free part of a UnitResult.
func comparableResult(r *UnitResult) string {
	return fmt.Sprintf("%s b=%d t=%d choice=%d bdd=%d killed=%v fail=%v err=%q pre=%+v",
		r.File, r.Bytes, r.Tokens, r.ChoiceNodes, r.BDDNodes,
		r.Killed, r.ParseFail, r.Err, r.Pre)
}

func TestChaosCorpus(t *testing.T) {
	seed, fromEnv := chaosSeed(t)
	c := smallCorpus()
	cfg := RunConfig{Parser: fmlr.OptAll, NoHeaderCache: true}

	clean := Run(c, cfg)

	faultCfg := faultinject.Config{
		Seed:  seed,
		Rate:  0.5,
		Delay: time.Millisecond,
		Points: []string{
			faultinject.PointHarnessUnit,
			faultinject.PointPreprocess,
			faultinject.PointLex,
			faultinject.PointCondExpr,
			faultinject.PointParse,
		},
	}
	faultinject.Arm(faultCfg)
	defer faultinject.Disarm()

	qcfg := cfg
	qcfg.Quarantine = true
	runA, mA := RunMetered(context.Background(), c, qcfg)
	runB, mB := RunMetered(context.Background(), c, qcfg)

	// Invariant 1: zero crashes — every unit is accounted for.
	for _, results := range [][]UnitResult{runA, runB} {
		if len(results) != len(c.CFiles) {
			t.Fatalf("faulted run lost units: %d of %d", len(results), len(c.CFiles))
		}
		for i := range results {
			if results[i].File == "" {
				t.Fatalf("unit %d has no result", i)
			}
		}
	}

	// Invariant 2: quarantine is deterministic across identically-seeded runs.
	if got, want := strings.Join(mA.Quarantined, ","), strings.Join(mB.Quarantined, ","); got != want {
		t.Errorf("quarantine sets differ between identically-faulted runs:\n A: %s\n B: %s", got, want)
	}
	if mA.QuarantinedUnits != len(mA.Quarantined) {
		t.Errorf("QuarantinedUnits=%d but %d paths listed", mA.QuarantinedUnits, len(mA.Quarantined))
	}
	if !fromEnv && mA.QuarantinedUnits == 0 {
		t.Errorf("default chaos seed injected no quarantining fault; raise Rate or change the default seed")
	}

	// Every quarantined unit must have been retried and still unhealthy, and
	// panics must carry a stack and the unit path.
	quarantined := map[string]bool{}
	for _, q := range mA.Quarantined {
		quarantined[q] = true
	}
	for i := range runA {
		r := &runA[i]
		if r.Quarantined {
			if !r.Retried {
				t.Errorf("%s: quarantined without a retry", r.File)
			}
			if r.Err == "" && r.Budget == nil {
				t.Errorf("%s: quarantined but healthy-looking result", r.File)
			}
		}
		if strings.HasPrefix(r.Err, "panic") {
			if r.Stack == "" {
				t.Errorf("%s: recovered panic lacks a stack trace", r.File)
			}
			if !strings.Contains(r.Err, r.File) {
				t.Errorf("%s: panic record %q lacks the unit path", r.File, r.Err)
			}
		}
	}

	// Invariant 3: un-quarantined units match the clean run exactly.
	// (Delay faults change only timing; exhaust/cancel/panic faults are
	// deterministic and always end in quarantine.)
	for i := range runA {
		if quarantined[runA[i].File] {
			continue
		}
		if got, want := comparableResult(&runA[i]), comparableResult(&clean[i]); got != want {
			t.Errorf("un-faulted unit diverged from clean run:\n got %s\nwant %s", got, want)
		}
	}

	// The faulted runs' trip accounting must reach the metrics snapshot.
	if mA.BudgetTrips > 0 {
		total := int64(0)
		for _, n := range mA.TripsByAxis {
			total += n
		}
		if total != int64(mA.BudgetTrips) {
			t.Errorf("TripsByAxis sums to %d, BudgetTrips=%d", total, mA.BudgetTrips)
		}
	}
	if !strings.Contains(mA.String(), "quarantined") {
		t.Errorf("metrics rendering lacks the guard line:\n%s", mA.String())
	}
}

// TestChaosHeaderCachePoint exercises the header-cache stage boundary
// sequentially (the cache-fill race is exactly why the main chaos test
// disables caching): with a budget-exhaust fault firing on every unit, each
// unit degrades, recordings are poisoned rather than stored, and quarantine
// catches the whole corpus deterministically.
func TestChaosHeaderCachePoint(t *testing.T) {
	c := smallCorpus()
	faultinject.Arm(faultinject.Config{
		Seed:   1,
		Rate:   1.0,
		Kinds:  []faultinject.Kind{faultinject.KindExhaust},
		Points: []string{faultinject.PointHeaderCache},
	})
	defer faultinject.Disarm()

	run := func() ([]UnitResult, Metrics) {
		return RunMetered(context.Background(), c, RunConfig{
			Parser:      fmlr.OptAll,
			Jobs:        1,
			HeaderCache: hcache.New(hcache.Options{}),
			Quarantine:  true,
		})
	}
	_, mA := run()
	_, mB := run()
	if mA.QuarantinedUnits != len(c.CFiles) {
		t.Errorf("exhaust-on-every-unit quarantined %d of %d units", mA.QuarantinedUnits, len(c.CFiles))
	}
	if strings.Join(mA.Quarantined, ",") != strings.Join(mB.Quarantined, ",") {
		t.Errorf("sequential header-cache chaos not deterministic:\n A: %v\n B: %v", mA.Quarantined, mB.Quarantined)
	}
	if mA.TripsByAxis[guard.AxisFault] == 0 {
		t.Errorf("expected fault-injected trips, axis counts: %v", mA.TripsByAxis)
	}
}

// slowCorpus is a single-unit corpus whose one compilation unit is a macro
// bomb that cannot finish within any reasonable deadline.
func slowCorpus() *corpus.Corpus {
	var b strings.Builder
	b.WriteString("#define X0 x\n")
	for i := 1; i <= 30; i++ {
		fmt.Fprintf(&b, "#define X%d X%d X%d\n", i, i-1, i-1)
	}
	b.WriteString("int y = X30;\n")
	return &corpus.Corpus{
		FS:     preprocessor.MapFS{"slow.c": b.String()},
		CFiles: []string{"slow.c"},
	}
}

// TestDeadlineAbandonsInFlightUnit is the satellite-1 acceptance test: a
// context deadline must abandon a unit that is already running, not just
// skip queued ones.
func TestDeadlineAbandonsInFlightUnit(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	results, m := RunMetered(ctx, slowCorpus(), RunConfig{Parser: fmlr.OptAll})
	elapsed := time.Since(start)
	if elapsed > 10*time.Second {
		t.Fatalf("run took %v; deadline did not reach the in-flight unit", elapsed)
	}
	r := &results[0]
	if r.Budget == nil {
		t.Fatalf("slow unit has no budget diagnostic: %+v", r)
	}
	if r.Budget.Axis != guard.AxisWall && r.Budget.Axis != guard.AxisCancel {
		t.Errorf("trip axis = %v, want wall-clock or cancelled", r.Budget.Axis)
	}
	if m.BudgetTrips != 1 {
		t.Errorf("BudgetTrips = %d, want 1", m.BudgetTrips)
	}
}

// TestCancelAbandonsInFlightUnit cancels mid-run (rather than via deadline)
// and expects the same prompt abandonment.
func TestCancelAbandonsInFlightUnit(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(30*time.Millisecond, cancel)
	defer timer.Stop()
	defer cancel()
	start := time.Now()
	results, _ := RunMetered(ctx, slowCorpus(), RunConfig{Parser: fmlr.OptAll})
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("run took %v; cancellation did not reach the in-flight unit", elapsed)
	}
	if d := results[0].Budget; d == nil || d.Axis != guard.AxisCancel {
		t.Errorf("expected a cancellation trip, got %v", d)
	}
}

// TestBudgetLimitsFlowThroughRunConfig checks that RunConfig.Budget reaches
// the stages: a tiny token budget degrades every unit but the run completes
// with partial results and per-axis accounting.
func TestBudgetLimitsFlowThroughRunConfig(t *testing.T) {
	c := smallCorpus()
	results, m := RunMetered(context.Background(), c, RunConfig{
		Parser: fmlr.OptAll,
		Budget: guard.Limits{Tokens: 50},
	})
	if m.BudgetTrips != len(c.CFiles) {
		t.Fatalf("BudgetTrips = %d, want %d (every unit)", m.BudgetTrips, len(c.CFiles))
	}
	if m.TripsByAxis[guard.AxisTokens] != int64(len(c.CFiles)) {
		t.Errorf("token-axis trips = %d, want %d", m.TripsByAxis[guard.AxisTokens], len(c.CFiles))
	}
	for i := range results {
		if results[i].Budget == nil {
			t.Errorf("%s: no diagnostic", results[i].File)
		}
	}
}
