package harness

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/cond"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/fmlr"
	"repro/internal/hcache"
	"repro/internal/preprocessor"
)

// diffUnit is one preprocessed unit paired with the space its conditions
// live in, so forests from different tools can be compared.
type diffUnit struct {
	unit  *preprocessor.Unit
	space *cond.Space
}

// sameForest compares two segment forests token-by-token (position
// included) and branch condition-by-condition, importing both sides'
// conditions into one fresh space for a semantic equality check.
func sameForest(t *testing.T, file string, a, b diffUnit) {
	t.Helper()
	cmp := cond.NewSpace(cond.ModeBDD)
	ia, ib := cmp.NewImporter(), cmp.NewImporter()
	ea, eb := a.space.NewExporter(), b.space.NewExporter()
	var walk func(x, y []preprocessor.Segment, path string)
	walk = func(x, y []preprocessor.Segment, path string) {
		if len(x) != len(y) {
			t.Fatalf("%s%s: %d vs %d segments", file, path, len(x), len(y))
		}
		for i := range x {
			xs, ys := x[i], y[i]
			if xs.IsToken() != ys.IsToken() {
				t.Fatalf("%s%s[%d]: segment kinds differ", file, path, i)
			}
			if xs.IsToken() {
				at, bt := xs.Tok, ys.Tok
				if at.Kind != bt.Kind || at.Text != bt.Text ||
					at.File != bt.File || at.Line != bt.Line || at.Col != bt.Col ||
					at.HasSpace != bt.HasSpace || at.Expanded != bt.Expanded {
					t.Fatalf("%s%s[%d]: token %v at %s vs %v at %s",
						file, path, i, at, at.Pos(), bt, bt.Pos())
				}
				continue
			}
			if len(xs.Cond.Branches) != len(ys.Cond.Branches) {
				t.Fatalf("%s%s[%d]: %d vs %d branches", file, path, i,
					len(xs.Cond.Branches), len(ys.Cond.Branches))
			}
			for j := range xs.Cond.Branches {
				ca := ia.Import(ea.Export(xs.Cond.Branches[j].Cond))
				cb := ib.Import(eb.Export(ys.Cond.Branches[j].Cond))
				if !cmp.Equal(ca, cb) {
					t.Fatalf("%s%s[%d] branch %d: %s vs %s", file, path, i, j,
						cmp.String(ca), cmp.String(cb))
				}
				walk(xs.Cond.Branches[j].Segs, ys.Cond.Branches[j].Segs,
					fmt.Sprintf("%s[%d].b%d", path, i, j))
			}
		}
	}
	walk(a.unit.EnsureSegments(), b.unit.EnsureSegments(), "")
}

// TestHeaderCacheDifferentialOracle is the corpus-level oracle for the
// shared header cache: every unit preprocessed through a cache shared by
// concurrent workers must be byte-identical (tokens, positions,
// diagnostics, deterministic statistics) to a sequential uncached run.
func TestHeaderCacheDifferentialOracle(t *testing.T) {
	c := corpus.Generate(corpus.Params{Seed: 3, CFiles: 12, GenHeaders: 10})

	preprocessUnit := func(f string, hc *hcache.Cache) diffUnit {
		tool := core.New(core.Config{
			FS:           c.FS,
			IncludePaths: IncludePaths,
			CondMode:     cond.ModeBDD,
			HeaderCache:  hc,
		})
		u, err := tool.Preprocess(f)
		if err != nil {
			t.Errorf("%s: %v", f, err)
			return diffUnit{}
		}
		return diffUnit{unit: u, space: tool.Space()}
	}

	// Sequential uncached reference.
	ref := make([]diffUnit, len(c.CFiles))
	for i, f := range c.CFiles {
		ref[i] = preprocessUnit(f, nil)
	}

	// Cached run: one cache shared by a pool of concurrent workers, so the
	// oracle also exercises record/replay interleaving (run with -race).
	shared := hcache.New(hcache.Options{})
	got := make([]diffUnit, len(c.CFiles))
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				got[i] = preprocessUnit(c.CFiles[i], shared)
			}
		}()
	}
	for i := range c.CFiles {
		work <- i
	}
	close(work)
	wg.Wait()

	for i, f := range c.CFiles {
		if ref[i].unit == nil || got[i].unit == nil {
			continue // preprocessUnit already reported the error
		}
		sameForest(t, f, ref[i], got[i])
		a, b := ref[i].unit, got[i].unit
		if len(a.Diags) != len(b.Diags) {
			t.Fatalf("%s: %d vs %d diagnostics", f, len(a.Diags), len(b.Diags))
		}
		for j := range a.Diags {
			if a.Diags[j].String() != b.Diags[j].String() {
				t.Fatalf("%s: diag %d: %s vs %s", f, j, a.Diags[j], b.Diags[j])
			}
		}
		as, bs := a.Stats, b.Stats
		as.LexTime, bs.LexTime = 0, 0 // wall-clock, legitimately differs
		if as != bs {
			t.Fatalf("%s: stats differ:\nuncached %+v\ncached   %+v", f, as, bs)
		}
	}

	// The corpus shares headers heavily across units: replays must occur or
	// the oracle is vacuous.
	s := shared.Stats()
	if s.HeaderHits == 0 {
		t.Errorf("no header-level hits across %d shared-header units: %+v", len(c.CFiles), s)
	}
	if s.LexHits == 0 {
		t.Errorf("no lex-level hits: %+v", s)
	}
}

// TestMeteredHeaderCacheMetrics checks the cache counters surfaced through
// the harness metrics snapshot (what cstats -metrics prints).
func TestMeteredHeaderCacheMetrics(t *testing.T) {
	c := smallCorpus()
	_, on := RunMetered(context.Background(), c, RunConfig{Parser: fmlr.OptAll, HeaderCache: hcache.New(hcache.Options{})})
	if on.HeaderCacheState != "on" {
		t.Fatalf("state = %q, want on", on.HeaderCacheState)
	}
	if on.HeaderCacheHits+on.HeaderCacheMisses == 0 {
		t.Errorf("no header-level traffic recorded: %+v", on)
	}
	if on.HeaderLexHits+on.HeaderLexMisses == 0 {
		t.Errorf("no lex-level traffic recorded: %+v", on)
	}
	_, off := RunMetered(context.Background(), c, RunConfig{Parser: fmlr.OptAll, NoHeaderCache: true})
	if off.HeaderCacheState != "off" {
		t.Fatalf("state = %q, want off", off.HeaderCacheState)
	}
	if off.HeaderCacheHits != 0 || off.HeaderCacheMisses != 0 {
		t.Errorf("disabled cache recorded traffic: %+v", off)
	}
}
