package harness

import (
	"context"
	"testing"

	"repro/internal/cond"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/fmlr"
	"repro/internal/hcache"
	"repro/internal/preprocessor"
	"repro/internal/store"
)

// storeCache returns a fresh in-memory header cache backed by st — each call
// simulates a new process attaching to the same on-disk store.
func storeCache(st *store.Store) *hcache.Cache {
	return hcache.New(hcache.Options{
		Backing: store.NewHeaderBacking(st, preprocessor.PayloadCodec()),
	})
}

// TestStorePersistedHeaderCacheOracle is the restart-survival oracle for the
// artifact store: a run whose header cache starts empty and replays every
// shared header from disk — through the gob wire codec — must produce
// forests semantically identical to an uncached run, and the replay must
// actually come from the store (high hit rate), not from recomputation.
func TestStorePersistedHeaderCacheOracle(t *testing.T) {
	c := corpus.Generate(corpus.Params{Seed: 5, CFiles: 10, GenHeaders: 10})
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}

	preprocessUnit := func(f string, hc *hcache.Cache) diffUnit {
		tool := core.New(core.Config{
			FS:           c.FS,
			IncludePaths: IncludePaths,
			CondMode:     cond.ModeBDD,
			HeaderCache:  hc,
		})
		u, err := tool.Preprocess(f)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		return diffUnit{unit: u, space: tool.Space()}
	}

	// Uncached reference.
	ref := make([]diffUnit, len(c.CFiles))
	for i, f := range c.CFiles {
		ref[i] = preprocessUnit(f, nil)
	}

	// First process: populates the store.
	cold := storeCache(st)
	for _, f := range c.CFiles {
		preprocessUnit(f, cold)
	}
	populated := st.Stats()
	if populated.Writes == 0 {
		t.Fatal("cold run persisted no artifacts")
	}

	// Second process: empty memory cache, everything replays from disk.
	warm := storeCache(st)
	for i, f := range c.CFiles {
		got := preprocessUnit(f, warm)
		sameForest(t, f, ref[i], got)
	}
	delta := st.Stats().Sub(populated)
	total := delta.Hits + delta.Misses
	if total == 0 {
		t.Fatal("warm run never consulted the store")
	}
	// Headers whose recorded fingerprint embeds process-local condition ids
	// are non-portable: they are never persisted and miss once per process
	// before recomputing. The bound tolerates that tail while still failing
	// if replay broadly stops reaching the store.
	if rate := float64(delta.Hits) / float64(total); rate < 0.8 {
		t.Errorf("warm store hit rate %.2f (%d/%d); want > 0.8", rate, delta.Hits, total)
	}
	if delta.Corrupt != 0 {
		t.Errorf("warm run found %d corrupt artifacts", delta.Corrupt)
	}
}

// TestStoreWarmRunMetrics checks the metered harness surface: a warm run
// over a persisted store reports store hits in Metrics and identical
// deterministic per-unit results.
func TestStoreWarmRunMetrics(t *testing.T) {
	c := corpus.Generate(corpus.Params{Seed: 6, CFiles: 8, GenHeaders: 8})
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	run := func() []UnitResult {
		res, _ := RunMetered(context.Background(), c, RunConfig{
			Parser:      fmlr.OptAll,
			HeaderCache: storeCache(st),
		})
		return res
	}
	coldRes := run()
	afterCold := st.Stats()
	warmRes := run()
	delta := st.Stats().Sub(afterCold)
	if delta.Hits == 0 {
		t.Fatal("warm RunMetered hit the store zero times")
	}
	if len(coldRes) != len(warmRes) {
		t.Fatalf("unit counts differ: %d vs %d", len(coldRes), len(warmRes))
	}
	for i := range coldRes {
		a, b := coldRes[i], warmRes[i]
		if a.File != b.File || a.Bytes != b.Bytes || a.Tokens != b.Tokens ||
			a.ChoiceNodes != b.ChoiceNodes || a.Killed != b.Killed ||
			a.ParseFail != b.ParseFail || a.Err != b.Err {
			t.Errorf("%s: warm result diverges from cold", a.File)
		}
		ap, bp := a.Pre, b.Pre
		ap.LexTime, bp.LexTime = 0, 0
		if ap != bp {
			t.Errorf("%s: preprocessor stats diverge cold/warm:\n  cold %+v\n  warm %+v", a.File, ap, bp)
		}
	}
}
