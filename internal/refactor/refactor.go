// Package refactor implements configuration-preserving refactorings — the
// tool class the paper's introduction motivates and its conclusion promises
// ("for future work, we will extend SuperC with support for automated
// refactorings").
//
// The crucial property a variability-aware refactoring needs is exactly
// what the configuration-preserving AST provides: one transformation
// applied once affects *every* configuration consistently, including code
// in conditional branches a single-configuration tool would never see.
// Rename is the canonical example: renaming a function that is defined
// differently under different configurations must rename all definitions
// and all uses, under all presence conditions.
package refactor

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/cond"
	"repro/internal/token"
)

// Rename renames every occurrence of the identifier oldName to newName in
// the configuration-preserving AST, returning a new tree (shared subtrees
// without occurrences are reused) and the occurrence count, broken down by
// the presence conditions under which occurrences exist.
//
// The rename is name-based (C has no modules, and top-level names share one
// namespace); callers that need scope awareness should verify with
// analysis.Index first. Keywords are refused: they lex as identifiers (the
// preprocessor may define macros named like keywords) and a name-based
// rename would otherwise rewrite them.
func Rename(s *cond.Space, root *ast.Node, oldName, newName string) (*ast.Node, *Report) {
	r := &Report{space: s, Old: oldName, New: newName, Cond: s.False()}
	if cKeywords[oldName] || cKeywords[newName] {
		return root, r
	}
	out := r.rewrite(root, s.True())
	return out, r
}

// cKeywords are the names Rename refuses to touch.
var cKeywords = map[string]bool{
	"auto": true, "break": true, "case": true, "char": true, "const": true,
	"continue": true, "default": true, "do": true, "double": true,
	"else": true, "enum": true, "extern": true, "float": true, "for": true,
	"goto": true, "if": true, "int": true, "long": true, "register": true,
	"return": true, "short": true, "signed": true, "sizeof": true,
	"static": true, "struct": true, "switch": true, "typedef": true,
	"union": true, "unsigned": true, "void": true, "volatile": true,
	"while": true, "inline": true, "typeof": true, "asm": true,
	"__attribute__": true, "restrict": true,
}

// Report describes a rename's effect.
type Report struct {
	space       *cond.Space
	Old, New    string
	Occurrences int
	// Cond is the disjunction of the presence conditions of all renamed
	// occurrences: the configurations the refactoring touched.
	Cond cond.Cond
}

func (r *Report) String() string {
	return fmt.Sprintf("renamed %d occurrence(s) of %s to %s under %s",
		r.Occurrences, r.Old, r.New, r.space.String(r.Cond))
}

// rewrite returns n with occurrences renamed; untouched subtrees are
// returned as-is so unrelated structure stays shared.
func (r *Report) rewrite(n *ast.Node, c cond.Cond) *ast.Node {
	if n == nil {
		return nil
	}
	switch n.Kind {
	case ast.KindToken:
		if n.Tok.Kind == token.Identifier && n.Tok.Text == r.Old {
			r.Occurrences++
			r.Cond = r.space.Or(r.Cond, c)
			nt := *n.Tok
			nt.Text = r.New
			return ast.Leaf(nt)
		}
		return n
	case ast.KindChoice:
		changed := false
		alts := make([]ast.Choice, len(n.Alts))
		for i, alt := range n.Alts {
			na := r.rewrite(alt.Node, r.space.And(c, alt.Cond))
			alts[i] = ast.Choice{Cond: alt.Cond, Node: na}
			if na != alt.Node {
				changed = true
			}
		}
		if !changed {
			return n
		}
		return ast.NewChoice(alts...)
	default:
		changed := false
		children := make([]*ast.Node, len(n.Children))
		for i, ch := range n.Children {
			nc := r.rewrite(ch, c)
			children[i] = nc
			if nc != ch {
				changed = true
			}
		}
		if !changed {
			return n
		}
		return &ast.Node{Kind: n.Kind, Label: n.Label, Children: children, Alts: n.Alts}
	}
}

// Collision reports a configuration in which newName already exists, which
// would make the rename capture or conflict. It is nil-free: an empty slice
// means the rename is safe.
type Collision struct {
	Name string
	Cond cond.Cond // configurations where both names occur
}

// CheckCollisions scans the tree for existing occurrences of newName whose
// presence conditions overlap occurrences of oldName. Configuration
// awareness matters here too: a collision confined to configurations where
// the renamed symbol does not exist is harmless.
func CheckCollisions(s *cond.Space, root *ast.Node, oldName, newName string) []Collision {
	oldCond := occurrenceCond(s, root, oldName)
	newCond := occurrenceCond(s, root, newName)
	both := s.And(oldCond, newCond)
	if s.IsFalse(both) {
		return nil
	}
	return []Collision{{Name: newName, Cond: both}}
}

// occurrenceCond returns the disjunction of presence conditions under which
// the identifier occurs in the tree.
func occurrenceCond(s *cond.Space, root *ast.Node, name string) cond.Cond {
	result := s.False()
	var walk func(n *ast.Node, c cond.Cond)
	walk = func(n *ast.Node, c cond.Cond) {
		if n == nil || s.IsFalse(c) {
			return
		}
		switch n.Kind {
		case ast.KindToken:
			if n.Tok.Kind == token.Identifier && n.Tok.Text == name {
				result = s.Or(result, c)
			}
		case ast.KindChoice:
			for _, alt := range n.Alts {
				walk(alt.Node, s.And(c, alt.Cond))
			}
		default:
			for _, ch := range n.Children {
				walk(ch, c)
			}
		}
	}
	walk(root, s.True())
	return result
}
