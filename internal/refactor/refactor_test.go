package refactor

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/preprocessor"
	"repro/internal/printer"
)

func parse(t *testing.T, src string) (*core.Result, *core.Tool) {
	t.Helper()
	tool := core.New(core.Config{FS: preprocessor.MapFS{"main.c": src}})
	res, err := tool.ParseFile("main.c")
	if err != nil {
		t.Fatal(err)
	}
	if res.AST == nil {
		t.Fatalf("parse failed: %v", res.Parse.Diags)
	}
	return res, tool
}

func TestRenamePlain(t *testing.T) {
	res, tool := parse(t, `
int counter = 0;
int bump(void) { counter = counter + 1; return counter; }
`)
	out, rep := Rename(tool.Space(), res.AST, "counter", "total")
	if rep.Occurrences != 4 {
		t.Errorf("occurrences = %d, want 4", rep.Occurrences)
	}
	if !tool.Space().IsTrue(rep.Cond) {
		t.Errorf("cond = %s", tool.Space().String(rep.Cond))
	}
	text := printer.Config(tool.Space(), out, nil)
	if strings.Contains(text, "counter") || strings.Count(text, "total") != 4 {
		t.Errorf("renamed text: %q", text)
	}
}

// TestRenameAcrossConfigurations is the headline case: the symbol is
// defined differently in both branches of a conditional and used in shared
// code; one rename must hit all of it.
func TestRenameAcrossConfigurations(t *testing.T) {
	res, tool := parse(t, `
#ifdef CONFIG_FAST
static int lookup(int k) { return k << 1; }
#else
static int lookup(int k) { return slow_find(k); }
#endif
int query(int k) { return lookup(k); }
`)
	out, rep := Rename(tool.Space(), res.AST, "lookup", "find_entry")
	if rep.Occurrences != 3 {
		t.Errorf("occurrences = %d, want 3 (two defs + one use)", rep.Occurrences)
	}
	s := tool.Space()
	for _, assign := range []map[string]bool{nil, {"(defined CONFIG_FAST)": true}} {
		text := printer.Config(s, out, assign)
		if strings.Contains(text, "lookup") {
			t.Errorf("%v: stale name in %q", assign, text)
		}
		if !strings.Contains(text, "find_entry") {
			t.Errorf("%v: new name missing in %q", assign, text)
		}
	}
}

func TestRenameOnlyInSomeConfigurations(t *testing.T) {
	res, tool := parse(t, `
#ifdef A
int helper(void) { return 1; }
#endif
int keep(void) { return 0; }
`)
	_, rep := Rename(tool.Space(), res.AST, "helper", "assist")
	s := tool.Space()
	if !s.Equal(rep.Cond, s.Var("(defined A)")) {
		t.Errorf("rename condition = %s, want (defined A)", s.String(rep.Cond))
	}
}

func TestRenameNoOccurrences(t *testing.T) {
	res, tool := parse(t, "int x;\n")
	out, rep := Rename(tool.Space(), res.AST, "missing", "gone")
	if rep.Occurrences != 0 {
		t.Errorf("occurrences = %d", rep.Occurrences)
	}
	// The tree is returned unchanged (shared).
	if out != res.AST {
		t.Error("unchanged tree was copied")
	}
}

func TestRenameRefusesKeywordsAndSkipsStrings(t *testing.T) {
	// Keywords are refused outright (they lex as identifiers, so a
	// name-based rename would otherwise rewrite them).
	res, tool := parse(t, `char *s = "v v"; int v = 1;`)
	out, rep := Rename(tool.Space(), res.AST, "int", "FOO")
	if rep.Occurrences != 0 || out != res.AST {
		t.Errorf("keyword rename not refused: %d occurrences", rep.Occurrences)
	}
	// String contents are never identifiers: renaming v must not touch the
	// literal "v v".
	out, rep = Rename(tool.Space(), res.AST, "v", "w")
	if rep.Occurrences != 1 {
		t.Errorf("occurrences = %d, want 1", rep.Occurrences)
	}
	text := printer.Config(tool.Space(), out, nil)
	if !strings.Contains(text, `"v v"`) || !strings.Contains(text, "int w = 1") {
		t.Errorf("renamed text: %q", text)
	}
}

func TestCheckCollisions(t *testing.T) {
	res, tool := parse(t, `
int alpha;
int beta;
`)
	if col := CheckCollisions(tool.Space(), res.AST, "alpha", "beta"); len(col) != 1 {
		t.Errorf("overlapping names not reported: %v", col)
	}
	if col := CheckCollisions(tool.Space(), res.AST, "alpha", "gamma"); len(col) != 0 {
		t.Errorf("fresh name reported as collision: %v", col)
	}
}

// TestCollisionOnlyInDisjointConfigurations: the collision is harmless when
// the two names never coexist.
func TestCollisionOnlyInDisjointConfigurations(t *testing.T) {
	res, tool := parse(t, `
#ifdef A
int alpha;
#else
int beta;
#endif
`)
	if col := CheckCollisions(tool.Space(), res.AST, "alpha", "beta"); len(col) != 0 {
		t.Errorf("disjoint names reported as collision: %v", col)
	}
}

func TestRenamedTreeReparses(t *testing.T) {
	res, tool := parse(t, `
#ifdef A
int widget_count;
#endif
int widgets_total(void) { return
#ifdef A
widget_count +
#endif
0; }
`)
	out, _ := Rename(tool.Space(), res.AST, "widget_count", "n_widgets")
	// Render the full variability and re-parse it: the refactored source
	// must still be a valid configuration-preserving program.
	text := printer.AST(tool.Space(), out, printer.Options{})
	cpp := strings.ReplaceAll(text, "(defined A)", "defined(A)")
	tool2 := core.New(core.Config{FS: preprocessor.MapFS{"main.c": cpp}})
	res2, err := tool2.ParseFile("main.c")
	if err != nil || res2.AST == nil {
		t.Fatalf("refactored source does not re-parse: %v\n%s", err, cpp)
	}
	for _, assign := range []map[string]bool{nil, {"(defined A)": true}} {
		t1 := printer.Config(tool.Space(), out, assign)
		t2 := printer.Config(tool2.Space(), res2.AST, assign)
		if t1 != t2 {
			t.Errorf("%v: render/reparse mismatch:\n%q\n%q", assign, t1, t2)
		}
	}
}
