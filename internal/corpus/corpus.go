// Package corpus generates a deterministic, synthetic, Linux-like C source
// tree for the evaluation harness.
//
// The paper evaluates on the x86 Linux 2.6.33.3 kernel, which this
// repository does not ship. The corpus substitutes a generated tree whose
// *preprocessor-usage shape* is calibrated to the paper's Tables 2 and 3:
//
//   - a shared header forest with include guards, long include chains, and
//     a few headers included by large fractions of C files (Table 2b);
//   - most macro definitions living in headers, most definitions nested in
//     conditionals, heavy macro-in-macro nesting (Table 3);
//   - the specific interaction patterns of §2: multiply-defined macros
//     (Fig. 2), conditionally-defined function-like macro chains (Fig. 3),
//     token pasting through multiply-defined macros (Fig. 5), conditionals
//     embedded in C constructs (Fig. 1), per-element conditional array
//     initializers (Fig. 6), computed includes, non-boolean conditional
//     expressions, and #error-guarded branches.
//
// Generation is deterministic for a given Params (seeded PRNG), so
// experiments are reproducible.
package corpus

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/preprocessor"
)

// Params sizes a corpus.
type Params struct {
	Seed       int64
	CFiles     int // number of compilation units (default 40)
	GenHeaders int // number of generated headers beyond the fixed set (default 24)
	ConfigVars int // number of CONFIG_* variables (default 32)
	// BlocksPerFile is the average number of top-level constructs per C
	// file (default 10).
	BlocksPerFile int
}

func (p *Params) defaults() {
	if p.CFiles == 0 {
		p.CFiles = 40
	}
	if p.GenHeaders == 0 {
		p.GenHeaders = 24
	}
	if p.ConfigVars == 0 {
		p.ConfigVars = 32
	}
	if p.BlocksPerFile == 0 {
		p.BlocksPerFile = 10
	}
}

// Corpus is a generated source tree.
type Corpus struct {
	Params  Params
	FS      preprocessor.MapFS
	CFiles  []string // compilation-unit paths, sorted by generation order
	Headers []string // header paths
}

// popular headers and their inclusion probabilities (Table 2b's shape:
// module.h in ~49% of C files, init.h 37%, kernel.h 33%, slab.h 23%,
// delay.h 20%).
var popularHeaders = []struct {
	name string
	prob float64
}{
	{"include/linux/module.h", 0.49},
	{"include/linux/init.h", 0.37},
	{"include/linux/kernel.h", 0.33},
	{"include/linux/slab.h", 0.23},
	{"include/linux/delay.h", 0.20},
}

// Generate builds the corpus for the given parameters.
func Generate(p Params) *Corpus {
	p.defaults()
	c := &Corpus{Params: p, FS: preprocessor.MapFS{}}
	r := rand.New(rand.NewSource(p.Seed))
	g := &generator{c: c, r: r, p: p}
	g.fixedHeaders()
	g.genHeaders()
	g.cFiles()
	return c
}

type generator struct {
	c *Corpus
	r *rand.Rand
	p Params
}

func (g *generator) config(i int) string {
	return fmt.Sprintf("CONFIG_F%02d", i%g.p.ConfigVars)
}

func (g *generator) randConfig() string {
	return g.config(g.r.Intn(g.p.ConfigVars))
}

func (g *generator) addHeader(path, body string) {
	g.c.FS[path] = body
	g.c.Headers = append(g.c.Headers, path)
}

// fixedHeaders installs the hand-written core headers that anchor the
// interaction patterns.
func (g *generator) fixedHeaders() {
	g.addHeader("include/linux/types.h", `#ifndef _LINUX_TYPES_H
#define _LINUX_TYPES_H
typedef unsigned char u8;
typedef unsigned short u16;
typedef unsigned int u32;
typedef signed int s32;
typedef unsigned long usize;
#ifdef CONFIG_64BIT
typedef unsigned long long u64;
#define BITS_PER_LONG 64
#else
typedef unsigned long u64;
#define BITS_PER_LONG 32
#endif
typedef unsigned int uint32_x;
typedef unsigned long long uint64_x;
#define __mkuint2(x) uint ## x ## _x
#define __mkuint(x) __mkuint2(x)
#define UINTBPL __mkuint(BITS_PER_LONG)
#endif
`)
	g.addHeader("include/linux/kernel.h", `#ifndef _LINUX_KERNEL_H
#define _LINUX_KERNEL_H
#include "types.h"
#define MIN(a, b) ((a) < (b) ? (a) : (b))
#define MAX(a, b) ((a) > (b) ? (a) : (b))
#define ARRAY_SIZE(arr) (sizeof(arr) / sizeof((arr)[0]))
#define STRINGIFY(x) #x
#define KBUILD_STR(x) STRINGIFY(x)
extern int printk(const char *fmt, ...);
#define pr_info(fmt, args...) printk(fmt, args)
#define __cpu_to_le32(x) ((u32)(x))
#ifdef CONFIG_KERNEL_MODE
#define cpu_to_le32 __cpu_to_le32
#endif
extern u32 cpu_to_le32_fallback(u32 v);
#endif
`)
	g.addHeader("include/linux/init.h", `#ifndef _LINUX_INIT_H
#define _LINUX_INIT_H
#define __init __attribute__((unused))
#define __exit __attribute__((unused))
#ifdef CONFIG_MODULES
#define __initdata
#else
#define __initdata __attribute__((unused))
#endif
#endif
`)
	g.addHeader("include/linux/module.h", `#ifndef _LINUX_MODULE_H
#define _LINUX_MODULE_H
#include "kernel.h"
#include "init.h"
#define __MODULE_INFO(tag, info) \
	static const char __mod_ ## tag[] __attribute__((unused)) = #tag "=" info
#define MODULE_LICENSE(lic) __MODULE_INFO(license, lic)
#define module_init(fn) int __initcall_ ## fn(void);
#define module_exit(fn) int __exitcall_ ## fn(void);
#endif
`)
	g.addHeader("include/linux/slab.h", `#ifndef _LINUX_SLAB_H
#define _LINUX_SLAB_H
#include "types.h"
#ifdef CONFIG_SLUB
#define ALLOC_FLAGS 2
extern void *slub_alloc(usize size, int flags);
#define kmalloc(sz, fl) slub_alloc(sz, fl)
#else
#define ALLOC_FLAGS 1
extern void *slab_alloc(usize size, int flags);
#define kmalloc(sz, fl) slab_alloc(sz, fl)
#endif
extern void kfree(void *ptr);
#endif
`)
	g.addHeader("include/linux/delay.h", `#ifndef _LINUX_DELAY_H
#define _LINUX_DELAY_H
#include "types.h"
#if HZ > 100
#define DELAY_SCALE 1
#else
#define DELAY_SCALE 10
#endif
extern void __delay_loops(u32 loops);
#define udelay(n) __delay_loops((n) * DELAY_SCALE)
#endif
`)
	// Computed-include pair: a platform header chosen by configuration.
	g.addHeader("include/plat_a.h", `#ifndef _PLAT_A_H
#define _PLAT_A_H
#define PLAT_NAME "alpha"
#define PLAT_ID 1
#endif
`)
	g.addHeader("include/plat_b.h", `#ifndef _PLAT_B_H
#define _PLAT_B_H
#define PLAT_NAME "beta"
#define PLAT_ID 2
#endif
`)
	// A deliberately guard-less header designed for repeated inclusion
	// under different parameter macros (the kernel's unaligned/wordpart
	// pattern); exercises Table 3's "reincluded headers".
	g.addHeader("include/linux/repeat.h", `extern int REPEAT_NAME(int value);
`)
	g.addHeader("include/linux/platform.h", `#ifndef _LINUX_PLATFORM_H
#define _LINUX_PLATFORM_H
#ifdef CONFIG_PLAT_B
#define PLATFORM_H "plat_b.h"
#else
#define PLATFORM_H "plat_a.h"
#endif
#include PLATFORM_H
#endif
`)
}

// genHeaders produces the generated header forest with include chains.
func (g *generator) genHeaders() {
	for i := 0; i < g.p.GenHeaders; i++ {
		name := fmt.Sprintf("include/gen/gen_%02d.h", i)
		guard := fmt.Sprintf("_GEN_%02d_H", i)
		var b strings.Builder
		fmt.Fprintf(&b, "#ifndef %s\n#define %s\n", guard, guard)
		// Include chains: later headers include one or two earlier ones.
		if i > 0 && g.r.Float64() < 0.7 {
			fmt.Fprintf(&b, "#include \"gen_%02d.h\"\n", g.r.Intn(i))
		}
		if i > 2 && g.r.Float64() < 0.3 {
			fmt.Fprintf(&b, "#include \"gen_%02d.h\"\n", g.r.Intn(i))
		}
		if g.r.Float64() < 0.4 {
			b.WriteString("#include \"../linux/types.h\"\n")
		}
		// Unconditional and conditional object-like macros.
		nDefs := 2 + g.r.Intn(4)
		for d := 0; d < nDefs; d++ {
			name := fmt.Sprintf("GEN%02d_VAL%d", i, d)
			if g.r.Float64() < 0.5 {
				cv := g.randConfig()
				fmt.Fprintf(&b, "#ifdef %s\n#define %s %d\n#else\n#define %s %d\n#endif\n",
					cv, name, g.r.Intn(100), name, 100+g.r.Intn(100))
			} else {
				fmt.Fprintf(&b, "#define %s %d\n", name, g.r.Intn(1000))
			}
		}
		// A function-like macro, sometimes conditionally defined.
		fm := fmt.Sprintf("gen%02d_scale", i)
		if g.r.Float64() < 0.4 {
			cv := g.randConfig()
			fmt.Fprintf(&b, "#ifdef %s\n#define %s(x) ((x) << 1)\n#else\n#define %s(x) ((x) >> 1)\n#endif\n", cv, fm, fm)
		} else {
			fmt.Fprintf(&b, "#define %s(x) ((x) * GEN%02d_VAL0)\n", fm, i)
		}
		// A struct and typedef.
		fmt.Fprintf(&b, "struct gen%02d_state {\n\tint count;\n\tunsigned long flags;\n", i)
		if g.r.Float64() < 0.5 {
			cv := g.randConfig()
			fmt.Fprintf(&b, "#ifdef %s\n\tint extra;\n#endif\n", cv)
		}
		b.WriteString("};\n")
		fmt.Fprintf(&b, "typedef struct gen%02d_state gen%02d_t;\n", i, i)
		// Declarations.
		fmt.Fprintf(&b, "extern int gen%02d_probe(gen%02d_t *st);\n", i, i)
		fmt.Fprintf(&b, "extern void gen%02d_remove(gen%02d_t *st);\n", i, i)
		// Occasionally an #error-guarded unsupported configuration.
		if g.r.Float64() < 0.2 {
			fmt.Fprintf(&b, "#ifdef CONFIG_BROKEN_%02d\n#error gen_%02d does not support this configuration\n#endif\n", i, i)
		}
		// Occasionally a redefinition after #undef.
		if g.r.Float64() < 0.25 {
			fmt.Fprintf(&b, "#undef GEN%02d_VAL0\n#define GEN%02d_VAL0 %d\n", i, i, g.r.Intn(50))
		}
		fmt.Fprintf(&b, "#endif\n")
		g.addHeader(name, b.String())
	}
}

var subsystems = []string{"drivers", "fs", "kernel", "net"}

// cFiles produces the compilation units.
func (g *generator) cFiles() {
	for i := 0; i < g.p.CFiles; i++ {
		dir := subsystems[g.r.Intn(len(subsystems))]
		path := fmt.Sprintf("%s/gen_%03d.c", dir, i)
		g.c.FS[path] = g.cFile(i)
		g.c.CFiles = append(g.c.CFiles, path)
	}
}

func (g *generator) cFile(idx int) string {
	var b strings.Builder
	// Includes: popular headers by probability, then a few gen headers.
	for _, ph := range popularHeaders {
		if g.r.Float64() < ph.prob {
			fmt.Fprintf(&b, "#include \"../%s\"\n", strings.TrimPrefix(ph.name, "include/"))
		}
	}
	b.WriteString("#include \"../include/linux/types.h\"\n")
	nGen := 1 + g.r.Intn(3)
	used := map[int]bool{}
	var genIDs []int
	for j := 0; j < nGen; j++ {
		h := g.r.Intn(g.p.GenHeaders)
		if used[h] {
			continue
		}
		used[h] = true
		genIDs = append(genIDs, h)
		fmt.Fprintf(&b, "#include \"../include/gen/gen_%02d.h\"\n", h)
	}
	if g.r.Float64() < 0.1 {
		b.WriteString("#include \"../include/linux/platform.h\"\n")
	}
	b.WriteString("\n")
	// A file-local macro or two (Table 2a: 16% of defines live in C files).
	if g.r.Float64() < 0.6 {
		fmt.Fprintf(&b, "#define LOCAL_BUF_SIZE %d\n", 16<<g.r.Intn(6))
	}
	if g.r.Float64() < 0.3 {
		cv := g.randConfig()
		fmt.Fprintf(&b, "#ifdef %s\n#define LOCAL_MODE 2\n#else\n#define LOCAL_MODE 1\n#endif\n", cv)
	}
	b.WriteString("\n")

	blocks := g.p.BlocksPerFile/2 + g.r.Intn(g.p.BlocksPerFile)
	for blk := 0; blk < blocks; blk++ {
		switch g.r.Intn(16) {
		case 0:
			g.blockFig1(&b, idx, blk)
		case 1:
			g.blockFig6(&b, idx, blk)
		case 2:
			g.blockMultiplyDefinedUse(&b, idx, blk)
		case 3:
			g.blockConditionalFunction(&b, idx, blk)
		case 4:
			g.blockNonBoolean(&b, idx, blk)
		case 5:
			g.blockStructEnum(&b, idx, blk)
		case 6:
			g.blockMacroChain(&b, idx, blk)
		case 7:
			g.blockPlainFunction(&b, idx, blk)
		case 8:
			g.blockPasting(&b, idx, blk)
		case 9:
			g.blockStatementConditional(&b, idx, blk)
		case 10:
			g.blockBuiltins(&b, idx, blk)
		case 11:
			g.blockRepeatedInclude(&b, idx, blk)
		case 12:
			g.blockPlainFunction(&b, idx, blk)
		case 13:
			g.blockOpsTable(&b, idx, blk)
		case 14:
			g.blockDeepNest(&b, idx, blk)
		default:
			g.blockStructEnum(&b, idx, blk)
		}
		b.WriteString("\n")
	}
	// Module boilerplate exercising pasting and stringification when
	// module.h was included.
	if strings.Contains(b.String(), "module.h") {
		fmt.Fprintf(&b, "static int __init drv%03d_init(void) { return 0; }\n", idx)
		fmt.Fprintf(&b, "module_init(drv%03d_init)\n", idx)
		fmt.Fprintf(&b, "MODULE_LICENSE(\"GPL\");\n")
	}
	_ = genIDs
	return b.String()
}

// blockFig1: a conditional straddling an if-else (paper Figure 1).
func (g *generator) blockFig1(b *strings.Builder, idx, blk int) {
	cv := g.randConfig()
	fmt.Fprintf(b, `static int open_%03d_%d(int major, int minor)
{
	int i;
#ifdef %s
	if (major == %d)
		i = %d;
	else
#endif
	i = minor - %d;
	return i;
}
`, idx, blk, cv, g.r.Intn(255), g.r.Intn(64), g.r.Intn(32))
}

// blockFig6: an array initializer with per-element conditionals (Figure 6).
func (g *generator) blockFig6(b *strings.Builder, idx, blk int) {
	n := 3 + g.r.Intn(10)
	fmt.Fprintf(b, "static int (*check_%03d_%d[])(int) = {\n", idx, blk)
	for i := 0; i < n; i++ {
		cv := g.config(g.r.Intn(g.p.ConfigVars))
		fmt.Fprintf(b, "#ifdef %s\n\tcheck_fn_%03d_%d_%d,\n#endif\n", cv, idx, blk, i)
	}
	b.WriteString("\t((void *)0)\n};\n")
}

// blockMultiplyDefinedUse: uses BITS_PER_LONG and a generated
// multiply-defined macro (Figure 2).
func (g *generator) blockMultiplyDefinedUse(b *strings.Builder, idx, blk int) {
	fmt.Fprintf(b, `static unsigned long mask_%03d_%d(void)
{
	unsigned long top = BITS_PER_LONG - 1;
	return 1ul << top;
}
`, idx, blk)
}

// blockConditionalFunction: a whole function under a conditional.
func (g *generator) blockConditionalFunction(b *strings.Builder, idx, blk int) {
	cv := g.randConfig()
	fmt.Fprintf(b, `#ifdef %s
static void feature_%03d_%d(int on)
{
	if (on)
		return;
}
#endif
`, cv, idx, blk)
}

// blockNonBoolean: a non-boolean conditional expression (NR_CPUS < 256).
func (g *generator) blockNonBoolean(b *strings.Builder, idx, blk int) {
	fmt.Fprintf(b, `#if NR_CPUS < %d
typedef unsigned char ticket_%03d_%d_t;
#else
typedef unsigned short ticket_%03d_%d_t;
#endif
static ticket_%03d_%d_t next_ticket_%03d_%d;
`, 128<<g.r.Intn(3), idx, blk, idx, blk, idx, blk, idx, blk)
}

// blockStructEnum: plain declarations.
func (g *generator) blockStructEnum(b *strings.Builder, idx, blk int) {
	fmt.Fprintf(b, `enum state_%03d_%d { IDLE_%03d_%d, BUSY_%03d_%d = %d, DONE_%03d_%d };
struct ctx_%03d_%d {
	enum state_%03d_%d state;
	unsigned int refs : 8;
	struct ctx_%03d_%d *next;
};
static struct ctx_%03d_%d ctx_pool_%03d_%d[%d];
`, idx, blk, idx, blk, idx, blk, g.r.Intn(16)+1, idx, blk,
		idx, blk, idx, blk, idx, blk, idx, blk, idx, blk, 4+g.r.Intn(12))
}

// blockMacroChain: conditionally-defined macro chain use (Figure 3):
// cpu_to_le32 either expands through __cpu_to_le32 or stays a call.
func (g *generator) blockMacroChain(b *strings.Builder, idx, blk int) {
	fmt.Fprintf(b, `static u32 pack_%03d_%d(u32 val)
{
	return cpu_to_le32(val) + %d;
}
`, idx, blk, g.r.Intn(8))
}

// blockPlainFunction: ordinary C with no variability.
func (g *generator) blockPlainFunction(b *strings.Builder, idx, blk int) {
	fmt.Fprintf(b, `static int work_%03d_%d(int n, const int *data)
{
	int total = 0;
	int i;
	for (i = 0; i < n; i++) {
		if (data[i] < 0)
			continue;
		total += data[i] * %d;
	}
	while (total > %d)
		total -= %d;
	switch (total & 3) {
	case 0:
		return total;
	case 1:
		return -total;
	default:
		break;
	}
	return total >> 1;
}
`, idx, blk, 1+g.r.Intn(9), 100+g.r.Intn(900), 1+g.r.Intn(50))
}

// blockPasting: token pasting through the multiply-defined BITS_PER_LONG
// (Figure 5).
func (g *generator) blockPasting(b *strings.Builder, idx, blk int) {
	fmt.Fprintf(b, "static UINTBPL word_%03d_%d;\n", idx, blk)
}

// blockBuiltins: uses of compiler built-in macros (__LINE__, __FILE__,
// __STDC_VERSION__), the "ground truth" rows of Tables 1 and 3.
func (g *generator) blockBuiltins(b *strings.Builder, idx, blk int) {
	fmt.Fprintf(b, `static long compiled_at_%03d_%d = __LINE__ + (__STDC_VERSION__ > 199000L);
static const char *origin_%03d_%d = __FILE__;
`, idx, blk, idx, blk)
}

// blockRepeatedInclude: includes the guard-less repeat.h twice under
// different parameter macros (reinclusion, Table 1's "reinclude when guard
// macro is not false").
func (g *generator) blockRepeatedInclude(b *strings.Builder, idx, blk int) {
	fmt.Fprintf(b, `#define REPEAT_NAME helper_a_%03d_%d
#include "../include/linux/repeat.h"
#undef REPEAT_NAME
#define REPEAT_NAME helper_b_%03d_%d
#include "../include/linux/repeat.h"
#undef REPEAT_NAME
`, idx, blk, idx, blk)
}

// blockOpsTable: a designated-initializer operations table with
// conditional entries — the modern-kernel form of Figure 6.
func (g *generator) blockOpsTable(b *strings.Builder, idx, blk int) {
	fmt.Fprintf(b, "static struct gen00_state ops_%03d_%d = {\n\t.count = %d,\n", idx, blk, g.r.Intn(9))
	if g.r.Float64() < 0.6 {
		cv := g.randConfig()
		fmt.Fprintf(b, "#ifdef %s\n\t.flags = %d,\n#endif\n", cv, g.r.Intn(255))
	} else {
		fmt.Fprintf(b, "\t.flags = %d,\n", g.r.Intn(255))
	}
	b.WriteString("};\n")
}

// blockDeepNest: deeply nested conditionals (the paper's Table 3 reports
// conditional nesting up to depth 40 in Linux once header closures are
// counted).
func (g *generator) blockDeepNest(b *strings.Builder, idx, blk int) {
	depth := 3 + g.r.Intn(4)
	for d := 0; d < depth; d++ {
		fmt.Fprintf(b, "#ifdef %s\n", g.config((idx+blk+d)%g.p.ConfigVars))
	}
	fmt.Fprintf(b, "int deep_%03d_%d = %d;\n", idx, blk, g.r.Intn(100))
	for d := 0; d < depth; d++ {
		b.WriteString("#endif\n")
	}
}

// blockStatementConditional: conditionals inside statements and
// expressions.
func (g *generator) blockStatementConditional(b *strings.Builder, idx, blk int) {
	cv1 := g.randConfig()
	cv2 := g.randConfig()
	fmt.Fprintf(b, `static long tally_%03d_%d(long base)
{
	long v = base;
#ifdef %s
	v += %d;
#else
	v -= %d;
#endif
	v = v *
#ifdef %s
		2 +
#endif
		1;
	return v;
}
`, idx, blk, cv1, g.r.Intn(100), g.r.Intn(100), cv2)
}

// Table2 reports the developer's-view statistics of the corpus (paper
// Table 2a): lines of code and directive counts, split between C files and
// headers.
type Table2 struct {
	LoC, LoCHeaders           int
	Directives, DirHeaders    int
	Defines, DefinesHeaders   int
	Conds, CondsHeaders       int
	Includes, IncludesHeaders int
}

// DeveloperView computes Table 2a over the corpus's raw text.
func (c *Corpus) DeveloperView() Table2 {
	var t Table2
	count := func(src string, header bool) {
		for _, line := range strings.Split(src, "\n") {
			trim := strings.TrimSpace(line)
			if trim == "" || strings.HasPrefix(trim, "//") {
				continue
			}
			t.LoC++
			if header {
				t.LoCHeaders++
			}
			if !strings.HasPrefix(trim, "#") {
				continue
			}
			t.Directives++
			if header {
				t.DirHeaders++
			}
			switch {
			case strings.HasPrefix(trim, "#define"):
				t.Defines++
				if header {
					t.DefinesHeaders++
				}
			case strings.HasPrefix(trim, "#if") || strings.HasPrefix(trim, "#ifdef") || strings.HasPrefix(trim, "#ifndef"):
				t.Conds++
				if header {
					t.CondsHeaders++
				}
			case strings.HasPrefix(trim, "#include"):
				t.Includes++
				if header {
					t.IncludesHeaders++
				}
			}
		}
	}
	for _, p := range c.CFiles {
		count(c.FS[p], false)
	}
	for _, p := range c.Headers {
		count(c.FS[p], true)
	}
	return t
}

// InclusionCounts reports, per header, how many C files include it
// (directly, by path suffix match) — Table 2b.
func (c *Corpus) InclusionCounts() map[string]int {
	out := make(map[string]int)
	for _, cf := range c.CFiles {
		src := c.FS[cf]
		for _, h := range c.Headers {
			base := h[strings.LastIndex(h, "/")+1:]
			if strings.Contains(src, "/"+base+"\"") || strings.Contains(src, "\""+base+"\"") {
				out[h]++
			}
		}
	}
	return out
}
