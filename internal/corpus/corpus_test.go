package corpus

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/fmlr"
	"repro/internal/preprocessor"
)

func TestDeterministic(t *testing.T) {
	a := Generate(Params{Seed: 7, CFiles: 5, GenHeaders: 6})
	b := Generate(Params{Seed: 7, CFiles: 5, GenHeaders: 6})
	if len(a.FS) != len(b.FS) {
		t.Fatalf("file counts differ: %d vs %d", len(a.FS), len(b.FS))
	}
	for p, src := range a.FS {
		if b.FS[p] != src {
			t.Fatalf("file %s differs between identical seeds", p)
		}
	}
	c := Generate(Params{Seed: 8, CFiles: 5, GenHeaders: 6})
	same := true
	for p, src := range a.FS {
		if c.FS[p] != src {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical corpora")
	}
}

func TestShape(t *testing.T) {
	c := Generate(Params{Seed: 1})
	if len(c.CFiles) != 40 {
		t.Errorf("CFiles = %d", len(c.CFiles))
	}
	if len(c.Headers) < 30 {
		t.Errorf("Headers = %d", len(c.Headers))
	}
	t2 := c.DeveloperView()
	if t2.LoC == 0 || t2.Directives == 0 {
		t.Fatal("empty developer view")
	}
	dirFrac := float64(t2.Directives) / float64(t2.LoC)
	if dirFrac < 0.05 || dirFrac > 0.4 {
		t.Errorf("directive fraction %.2f out of the kernel-like range", dirFrac)
	}
	// Most defines must live in headers (paper: 84%).
	defFrac := float64(t2.DefinesHeaders) / float64(t2.Defines)
	if defFrac < 0.5 {
		t.Errorf("defines-in-headers fraction %.2f, want > 0.5", defFrac)
	}
	// module.h must be the most popular header (Table 2b).
	counts := c.InclusionCounts()
	if counts["include/linux/module.h"] < len(c.CFiles)/3 {
		t.Errorf("module.h included by only %d of %d files",
			counts["include/linux/module.h"], len(c.CFiles))
	}
}

// TestEveryUnitParses is the corpus self-check: every generated compilation
// unit must preprocess and parse cleanly in configuration-preserving mode.
func TestEveryUnitParses(t *testing.T) {
	c := Generate(Params{Seed: 42, CFiles: 12, GenHeaders: 10})
	tool := core.New(core.Config{
		FS:           c.FS,
		IncludePaths: []string{"include", "include/gen", "include/linux"},
	})
	for _, cf := range c.CFiles {
		res, err := tool.ParseFile(cf)
		if err != nil {
			t.Fatalf("%s: %v", cf, err)
		}
		for _, d := range res.Unit.Diags {
			if !d.Warning {
				t.Errorf("%s: preprocess: %s", cf, d)
			}
		}
		if res.AST == nil {
			t.Errorf("%s: no AST (diags: %v)", cf, res.Parse.Diags)
			continue
		}
		if len(res.Parse.Diags) > 0 {
			t.Errorf("%s: parse diagnostics: %v", cf, res.Parse.Diags[0])
		}
		if res.Parse.Killed {
			t.Errorf("%s: kill switch tripped", cf)
		}
	}
}

// TestUnitsHaveVariability confirms the corpus actually exercises
// configuration-preserving parsing: most units produce choice nodes and
// fork subparsers.
func TestUnitsHaveVariability(t *testing.T) {
	c := Generate(Params{Seed: 3, CFiles: 10, GenHeaders: 8})
	tool := core.New(core.Config{
		FS:           c.FS,
		IncludePaths: []string{"include", "include/gen", "include/linux"},
	})
	withChoices, withForks := 0, 0
	for _, cf := range c.CFiles {
		res, err := tool.ParseFile(cf)
		if err != nil || res.AST == nil {
			t.Fatalf("%s failed: %v", cf, err)
		}
		if res.AST.CountChoices() > 0 {
			withChoices++
		}
		if res.Parse.Stats.MaxSubparsers > 1 {
			withForks++
		}
	}
	if withChoices < 5 {
		t.Errorf("only %d/10 units have choice nodes", withChoices)
	}
	if withForks < 5 {
		t.Errorf("only %d/10 units forked", withForks)
	}
}

// TestInteractionCoverage checks that the corpus triggers the Table 1/3
// interactions the generator promises.
func TestInteractionCoverage(t *testing.T) {
	c := Generate(Params{Seed: 11, CFiles: 25, GenHeaders: 16})
	tool := core.New(core.Config{
		FS:           c.FS,
		IncludePaths: []string{"include", "include/gen", "include/linux"},
	})
	var agg preprocessor.UnitStats
	maxSub := 0
	for _, cf := range c.CFiles {
		res, err := tool.ParseFile(cf)
		if err != nil {
			t.Fatalf("%s: %v", cf, err)
		}
		agg.Add(res.Unit.Stats)
		if res.Parse.Stats.MaxSubparsers > maxSub {
			maxSub = res.Parse.Stats.MaxSubparsers
		}
	}
	checks := []struct {
		name string
		got  int
	}{
		{"macro definitions", agg.MacroDefinitions},
		{"defs in conditionals", agg.DefsInConditional},
		{"invocations", agg.Invocations},
		{"nested invocations", agg.NestedInvocations},
		{"trimmed (multiply-defined) invocations", agg.TrimmedInvocations},
		{"token pastings", agg.TokenPastings},
		{"stringifications", agg.Stringifications},
		{"includes", agg.Includes},
		{"guard skips", agg.GuardSkips},
		{"conditionals", agg.Conditionals},
		{"non-boolean expressions", agg.NonBooleanExprs},
	}
	for _, ch := range checks {
		if ch.got == 0 {
			t.Errorf("corpus never exercises %s", ch.name)
		}
	}
	if maxSub < 2 {
		t.Error("corpus never forks subparsers")
	}
	t.Logf("aggregate: %+v, max subparsers: %d", agg, maxSub)
}

// TestMAPRWorseThanFMLROnCorpus reproduces the Figure 8 relationship on a
// small corpus slice: naive forking needs strictly more subparsers than
// optimized FMLR on variability-heavy units.
func TestMAPRWorseThanFMLROnCorpus(t *testing.T) {
	c := Generate(Params{Seed: 5, CFiles: 6, GenHeaders: 8})
	run := func(opts fmlr.Options) int {
		opts.KillSwitch = 1500
		tool := core.New(core.Config{
			FS:           c.FS,
			IncludePaths: []string{"include", "include/gen", "include/linux"},
			Parser:       &opts,
		})
		max := 0
		for _, cf := range c.CFiles {
			res, err := tool.ParseFile(cf)
			if err != nil {
				t.Fatalf("%s: %v", cf, err)
			}
			if res.Parse.Stats.MaxSubparsers > max {
				max = res.Parse.Stats.MaxSubparsers
			}
		}
		return max
	}
	fm := run(fmlr.OptAll)
	mapr := run(fmlr.OptMAPR)
	if mapr <= fm {
		t.Errorf("MAPR max %d should exceed FMLR max %d", mapr, fm)
	}
	t.Logf("FMLR max=%d, MAPR max=%d", fm, mapr)
}

func TestComputedIncludeInCorpus(t *testing.T) {
	c := Generate(Params{Seed: 2, CFiles: 40})
	// At least one unit pulls in platform.h with its computed include.
	found := false
	for _, cf := range c.CFiles {
		if strings.Contains(c.FS[cf], "platform.h") {
			found = true
			break
		}
	}
	if !found {
		t.Skip("no unit drew platform.h at this seed; regenerate with more files")
	}
	tool := core.New(core.Config{
		FS:           c.FS,
		IncludePaths: []string{"include", "include/gen", "include/linux"},
	})
	for _, cf := range c.CFiles {
		if !strings.Contains(c.FS[cf], "platform.h") {
			continue
		}
		res, err := tool.ParseFile(cf)
		if err != nil {
			t.Fatal(err)
		}
		if res.Unit.Stats.ComputedIncludes == 0 {
			t.Error("computed include not counted")
		}
		break
	}
}
