package corpus

import (
	"fmt"
	"math/rand"
	"strings"
)

// GiantUnit generates one deterministic pseudo-random translation unit dense
// with the constructs that make region-splitting hard: nested conditionals,
// conditional typedefs, file-scope shadowing, and conditional function
// bodies. It feeds the region-parallel parser's differential tests and the
// giant-unit scaling benchmarks (a single unit big enough that intra-unit
// parallelism, not the per-unit worker pool, determines wall time).
//
// Every unit is valid C under every configuration: conditional typedefs
// always cover all branches of their conditional, and only
// unconditionally-defined names are used later.
func GiantUnit(seed int64, items int) string {
	r := rand.New(rand.NewSource(seed))
	var b strings.Builder
	macros := []string{"FEAT_A", "FEAT_B", "FEAT_C", "FEAT_D", "FEAT_E", "FEAT_F"}
	var typedefs []string
	n := 0
	fresh := func(prefix string) string {
		n++
		return fmt.Sprintf("%s%d", prefix, n)
	}

	var emitItem func(depth int)
	emitDecl := func(depth int) {
		switch r.Intn(5) {
		case 0:
			fmt.Fprintf(&b, "int %s = %d;\n", fresh("v"), r.Intn(100))
		case 1:
			fmt.Fprintf(&b, "static long %s[%d] = { %d, %d };\n",
				fresh("arr"), 2+r.Intn(3), r.Intn(9), r.Intn(9))
		case 2:
			name := fresh("f")
			fmt.Fprintf(&b, "static int %s(int a, int b)\n{\n", name)
			fmt.Fprintf(&b, "\tint t = a * %d;\n", 1+r.Intn(9))
			if r.Intn(2) == 0 {
				fmt.Fprintf(&b, "\tif (t > b) { t = t - b; } else { t = b - t; }\n")
			}
			if r.Intn(3) == 0 {
				m := macros[r.Intn(len(macros))]
				fmt.Fprintf(&b, "#ifdef %s\n\tt = t + %d;\n#endif\n", m, r.Intn(50))
			}
			fmt.Fprintf(&b, "\treturn t + b;\n}\n")
		case 3:
			td := fresh("td")
			if r.Intn(2) == 0 {
				fmt.Fprintf(&b, "typedef unsigned long %s;\n", td)
			} else {
				fmt.Fprintf(&b, "typedef int (*%s)(int);\n", td)
			}
			// Only unconditionally-defined typedefs may be used later;
			// registering a branch-local one would make later uses invalid C
			// in the configurations where the branch is absent.
			if depth == 0 {
				typedefs = append(typedefs, td)
			}
		case 4:
			if len(typedefs) == 0 {
				fmt.Fprintf(&b, "int %s;\n", fresh("v"))
				return
			}
			td := typedefs[r.Intn(len(typedefs))]
			fmt.Fprintf(&b, "%s %s;\n", td, fresh("u"))
		}
	}
	emitItem = func(depth int) {
		roll := r.Intn(10)
		switch {
		case roll < 6 || depth >= 3:
			emitDecl(depth)
		case roll < 8:
			// Conditional group, possibly nested.
			m := macros[r.Intn(len(macros))]
			fmt.Fprintf(&b, "#ifdef %s\n", m)
			for i := 0; i < 1+r.Intn(3); i++ {
				emitItem(depth + 1)
			}
			if r.Intn(2) == 0 {
				fmt.Fprintf(&b, "#else\n")
				for i := 0; i < 1+r.Intn(2); i++ {
					emitItem(depth + 1)
				}
			}
			fmt.Fprintf(&b, "#endif\n")
		case roll < 9:
			// Conditional typedef covering every configuration, then a use.
			m := macros[r.Intn(len(macros))]
			td := fresh("ct")
			fmt.Fprintf(&b, "#ifdef %s\ntypedef int %s;\n#else\ntypedef long %s;\n#endif\n", m, td, td)
			fmt.Fprintf(&b, "%s %s = 0;\n", td, fresh("u"))
			if depth == 0 {
				typedefs = append(typedefs, td)
			}
		default:
			// File-scope shadowing: an object definition reusing a typedef
			// name under one configuration makes the name ambiguous, forcing
			// typedef forks downstream.
			td := fresh("sh")
			fmt.Fprintf(&b, "typedef int %s;\n", td)
			m := macros[r.Intn(len(macros))]
			fmt.Fprintf(&b, "#ifdef %s\nint %s;\n#endif\n", m, td)
		}
	}

	for i := 0; i < items; i++ {
		emitItem(0)
	}
	return b.String()
}
