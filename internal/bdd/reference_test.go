package bdd

import (
	"math"
	"math/rand"
	"testing"
)

// refFactory is a deliberately naive, map-based ROBDD implementation — the
// representation this package used before the open-addressed unique table
// and the lossy direct-mapped op cache. It is the oracle for the randomized
// differential tests below: the production Factory must be observationally
// equivalent (same canonical structure, same counts) on arbitrary operation
// sequences, since a lossy cache or probing bug would silently produce
// wrong — but well-formed — diagrams.
type refFactory struct {
	nodes    []node
	unique   map[node]Node
	cache    map[refOpKey]Node
	names    []string
	varIndex map[string]int
}

type refOpKey struct {
	op   opKind
	a, b Node
}

func newRefFactory() *refFactory {
	f := &refFactory{
		unique:   make(map[node]Node),
		cache:    make(map[refOpKey]Node),
		varIndex: make(map[string]int),
	}
	f.nodes = append(f.nodes,
		node{level: terminalLevel, lo: False, hi: False},
		node{level: terminalLevel, lo: True, hi: True},
	)
	return f
}

func (f *refFactory) variable(name string) Node {
	lvl, ok := f.varIndex[name]
	if !ok {
		lvl = len(f.names)
		f.names = append(f.names, name)
		f.varIndex[name] = lvl
	}
	return f.mk(int32(lvl), False, True)
}

func (f *refFactory) mk(level int32, lo, hi Node) Node {
	if lo == hi {
		return lo
	}
	key := node{level: level, lo: lo, hi: hi}
	if id, ok := f.unique[key]; ok {
		return id
	}
	id := Node(len(f.nodes))
	f.nodes = append(f.nodes, key)
	f.unique[key] = id
	return id
}

func (f *refFactory) not(a Node) Node {
	switch a {
	case False:
		return True
	case True:
		return False
	}
	key := refOpKey{op: opNot, a: a}
	if r, ok := f.cache[key]; ok {
		return r
	}
	n := f.nodes[a]
	r := f.mk(n.level, f.not(n.lo), f.not(n.hi))
	f.cache[key] = r
	return r
}

func (f *refFactory) apply(op opKind, a, b Node) Node {
	switch op {
	case opAnd:
		if a == False || b == False {
			return False
		}
		if a == True {
			return b
		}
		if b == True {
			return a
		}
		if a == b {
			return a
		}
	case opOr:
		if a == True || b == True {
			return True
		}
		if a == False {
			return b
		}
		if b == False {
			return a
		}
		if a == b {
			return a
		}
	case opXor:
		if a == b {
			return False
		}
		if a == False {
			return b
		}
		if b == False {
			return a
		}
		if a == True {
			return f.not(b)
		}
		if b == True {
			return f.not(a)
		}
	}
	if a > b {
		a, b = b, a
	}
	key := refOpKey{op: op, a: a, b: b}
	if r, ok := f.cache[key]; ok {
		return r
	}
	na, nb := f.nodes[a], f.nodes[b]
	var lvl int32
	var alo, ahi, blo, bhi Node
	switch {
	case na.level == nb.level:
		lvl, alo, ahi, blo, bhi = na.level, na.lo, na.hi, nb.lo, nb.hi
	case na.level < nb.level:
		lvl, alo, ahi, blo, bhi = na.level, na.lo, na.hi, b, b
	default:
		lvl, alo, ahi, blo, bhi = nb.level, a, a, nb.lo, nb.hi
	}
	r := f.mk(lvl, f.apply(op, alo, blo), f.apply(op, ahi, bhi))
	f.cache[key] = r
	return r
}

func (f *refFactory) restrict(a Node, lvl int32, val bool, memo map[Node]Node) Node {
	n := f.nodes[a]
	if n.level > lvl {
		return a
	}
	if r, ok := memo[a]; ok {
		return r
	}
	var r Node
	if n.level == lvl {
		if val {
			r = n.hi
		} else {
			r = n.lo
		}
	} else {
		r = f.mk(n.level, f.restrict(n.lo, lvl, val, memo), f.restrict(n.hi, lvl, val, memo))
	}
	memo[a] = r
	return r
}

func (f *refFactory) satCount(a Node, memo map[Node]float64) float64 {
	if a == False {
		return 0
	}
	if a == True {
		return 1
	}
	if c, ok := memo[a]; ok {
		return c
	}
	lv := func(n Node) int32 {
		l := f.nodes[n].level
		if l == terminalLevel {
			return int32(len(f.names))
		}
		return l
	}
	n := f.nodes[a]
	lo := f.satCount(n.lo, memo) * math.Pow(2, float64(lv(n.lo)-n.level-1))
	hi := f.satCount(n.hi, memo) * math.Pow(2, float64(lv(n.hi)-n.level-1))
	c := lo + hi
	memo[a] = c
	return c
}

func (f *refFactory) fullSatCount(a Node) float64 {
	lv := func(n Node) int32 {
		l := f.nodes[n].level
		if l == terminalLevel {
			return int32(len(f.names))
		}
		return l
	}
	return f.satCount(a, make(map[Node]float64)) * math.Pow(2, float64(lv(a)))
}

// refOp mirrors one randomized operation applied to both factories.
const (
	refVar = iota
	refAnd
	refOr
	refXor
	refNot
	refImplies
	refEquiv
	refAndNot
	refIte
	refRestrict
	refExists
	refOpCount
)

// TestDifferentialAgainstReference drives long random operation sequences
// through the production Factory and the naive reference factory in
// lockstep, maintaining parallel handle lists. After every operation it
// checks:
//
//   - canonicity transfer: two handles are identical in the production
//     factory iff they are identical in the reference (BDD canonicity means
//     structural identity IS semantic equality, so this is observational
//     equivalence over all boolean functions built so far);
//   - the rendered sum-of-products form matches (same reduced structure);
//   - SatCount agrees (also exercising Ldexp vs math.Pow).
func TestDifferentialAgainstReference(t *testing.T) {
	vars := []string{"A", "B", "C", "D", "E", "F", "G", "H"}
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		f := NewFactory()
		rf := newRefFactory()
		got := []Node{False, True}
		want := []Node{False, True}
		pick := func() int { return r.Intn(len(got)) }
		for step := 0; step < 400; step++ {
			var g, w Node
			switch r.Intn(refOpCount) {
			case refVar:
				name := vars[r.Intn(len(vars))]
				g, w = f.Var(name), rf.variable(name)
			case refAnd:
				i, j := pick(), pick()
				g, w = f.And(got[i], got[j]), rf.apply(opAnd, want[i], want[j])
			case refOr:
				i, j := pick(), pick()
				g, w = f.Or(got[i], got[j]), rf.apply(opOr, want[i], want[j])
			case refXor:
				i, j := pick(), pick()
				g, w = f.Xor(got[i], got[j]), rf.apply(opXor, want[i], want[j])
			case refNot:
				i := pick()
				g, w = f.Not(got[i]), rf.not(want[i])
			case refImplies:
				i, j := pick(), pick()
				g, w = f.Implies(got[i], got[j]), rf.apply(opOr, rf.not(want[i]), want[j])
			case refEquiv:
				i, j := pick(), pick()
				g, w = f.Equiv(got[i], got[j]), rf.not(rf.apply(opXor, want[i], want[j]))
			case refAndNot:
				i, j := pick(), pick()
				g, w = f.AndNot(got[i], got[j]), rf.apply(opAnd, want[i], rf.not(want[j]))
			case refIte:
				i, j, k := pick(), pick(), pick()
				g = f.Ite(got[i], got[j], got[k])
				w = rf.apply(opOr, rf.apply(opAnd, want[i], want[j]),
					rf.apply(opAnd, rf.not(want[i]), want[k]))
			case refRestrict:
				i := pick()
				name := vars[r.Intn(len(vars))]
				val := r.Intn(2) == 0
				g = f.Restrict(got[i], name, val)
				w = want[i]
				if lvl, ok := rf.varIndex[name]; ok {
					w = rf.restrict(want[i], int32(lvl), val, make(map[Node]Node))
				}
			case refExists:
				i := pick()
				name := vars[r.Intn(len(vars))]
				g = f.Exists(got[i], name)
				w = want[i]
				if lvl, ok := rf.varIndex[name]; ok {
					lo := rf.restrict(want[i], int32(lvl), false, make(map[Node]Node))
					hi := rf.restrict(want[i], int32(lvl), true, make(map[Node]Node))
					w = rf.apply(opOr, lo, hi)
				}
			}
			got = append(got, g)
			want = append(want, w)

			// Canonicity must transfer: identity in one factory iff identity
			// in the other, against every handle built so far.
			for i := range got {
				if (got[i] == g) != (want[i] == w) {
					t.Fatalf("trial %d step %d: canonicity divergence vs handle %d:\n new: %s\n ref: %s",
						trial, step, i, f.String(g), refString(rf, w))
				}
			}
			if gs, ws := f.String(g), refString(rf, w); gs != ws {
				t.Fatalf("trial %d step %d: structure divergence:\n new: %s\n ref: %s",
					trial, step, gs, ws)
			}
		}
		// SatCount spot-check over the surviving handles (Ldexp vs Pow).
		for i := range got {
			gc, wc := f.SatCount(got[i]), rf.fullSatCount(want[i])
			// Both factories may have seen Var() at different times, but the
			// lockstep protocol creates variables identically, so the counts
			// are over the same variable sets and must match exactly.
			if gc != wc {
				t.Fatalf("trial %d: SatCount(handle %d) = %g, reference %g", trial, i, gc, wc)
			}
		}
		// The two node stores must be structurally identical: same ids,
		// same (level, lo, hi) triples, in the same allocation order. (The
		// production factory's id numbering is deterministic whenever it is
		// driven from one goroutine, as here.)
		if f.NumNodes() != len(rf.nodes) {
			t.Fatalf("trial %d: node store sizes differ: %d vs %d", trial, f.NumNodes(), len(rf.nodes))
		}
		for id := range rf.nodes {
			if f.node(Node(id)) != rf.nodes[id] {
				t.Fatalf("trial %d: node %d differs: %+v vs %+v", trial, id, f.node(Node(id)), rf.nodes[id])
			}
		}
	}
}

// refString renders the reference diagram exactly as Factory.String does, so
// outputs are directly comparable.
func refString(f *refFactory, a Node) string {
	switch a {
	case False:
		return "0"
	case True:
		return "1"
	}
	var cubes []string
	var lits []string
	var walk func(Node)
	walk = func(n Node) {
		if n == False {
			return
		}
		if n == True {
			cubes = append(cubes, joinLits(lits))
			return
		}
		nd := f.nodes[n]
		lits = append(lits, "!"+f.names[nd.level])
		walk(nd.lo)
		lits = lits[:len(lits)-1]
		lits = append(lits, f.names[nd.level])
		walk(nd.hi)
		lits = lits[:len(lits)-1]
	}
	walk(a)
	if len(cubes) == 0 {
		return "0"
	}
	out := cubes[0]
	for _, c := range cubes[1:] {
		out += " | " + c
	}
	return out
}

func joinLits(lits []string) string {
	if len(lits) == 0 {
		return ""
	}
	out := lits[0]
	for _, l := range lits[1:] {
		out += "&" + l
	}
	return out
}

// TestOpCachePressure shrinks effective cache capacity by churning many
// distinct operations, forcing direct-mapped evictions, then re-verifies
// canonical identities: a lossy cache may only cost recomputation, never
// correctness.
func TestOpCachePressure(t *testing.T) {
	f := NewFactory()
	r := rand.New(rand.NewSource(99))
	var nodes []Node
	for i := 0; i < 24; i++ {
		nodes = append(nodes, f.Var(varName(i)))
	}
	for step := 0; step < 20000; step++ {
		i, j := r.Intn(len(nodes)), r.Intn(len(nodes))
		var n Node
		switch step % 3 {
		case 0:
			n = f.And(nodes[i], nodes[j])
		case 1:
			n = f.Or(nodes[i], nodes[j])
		default:
			n = f.Not(nodes[i])
		}
		nodes = append(nodes, n)
		if len(nodes) > 512 {
			nodes = nodes[len(nodes)-512:]
		}
	}
	st := f.Stats()
	if st.OpEvictions == 0 {
		t.Fatalf("workload did not pressure the op cache: %+v", st)
	}
	// Canonical identities must hold regardless of cache state.
	for i := 0; i < 200; i++ {
		a, b := nodes[r.Intn(len(nodes))], nodes[r.Intn(len(nodes))]
		if f.And(a, b) != f.And(b, a) {
			t.Fatal("And not commutative under cache pressure")
		}
		if f.Not(f.Not(a)) != a {
			t.Fatal("double negation broken under cache pressure")
		}
		if f.Or(a, f.Not(a)) != True {
			t.Fatal("excluded middle broken under cache pressure")
		}
	}
}

// TestUniqueTableGrowth crosses several growth thresholds and verifies
// hash-consing sharing survives each rehash.
func TestUniqueTableGrowth(t *testing.T) {
	f := NewFactory()
	var acc Node = True
	var chain []Node
	for i := 0; i < 2000; i++ {
		acc = f.And(acc, f.Not(f.Var(varName(i))))
		chain = append(chain, acc)
	}
	if f.Stats().TableSlots <= initialTableSlots {
		t.Fatalf("table never grew: %+v", f.Stats())
	}
	// Rebuilding any prefix must return the identical node.
	acc = True
	for i := 0; i < 2000; i++ {
		acc = f.And(acc, f.Not(f.Var(varName(i))))
		if acc != chain[i] {
			t.Fatalf("prefix %d lost canonicity after growth", i)
		}
	}
}
