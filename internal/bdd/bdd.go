// Package bdd implements reduced, ordered binary decision diagrams (ROBDDs).
//
// SuperC represents presence conditions — the boolean formulas over
// configuration variables under which a token, macro definition, or AST
// branch is present — as BDDs (paper §3.2). BDDs are canonical: two boolean
// functions are equal if and only if their BDD node identities are equal,
// which makes feasibility tests (c1 ∧ c2 = false) and condition comparison
// constant-time once the diagram is built.
//
// The implementation is a hash-consed node store in the style of the mature
// BDD engines the paper leans on (JavaBDD wrapping BuDDy/CUDD): nodes live
// in one flat slice and are referenced by dense int32 ids, the unique table
// is an open-addressed, linearly-probed array of node ids (no per-node map
// boxes), and the operation cache is a fixed-size, direct-mapped, *lossy*
// cache — colliding entries overwrite each other instead of growing,
// trading rare recomputation for zero allocation on the And/Or/Not hot
// path. Traversals that need per-node memoization (Restrict, SatCount) use
// epoch-stamped scratch buffers reused across calls rather than fresh maps.
//
// Ids 0 and 1 are the False and True terminals. A Factory owns all nodes;
// Node values from different factories must not be mixed.
package bdd

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/guard"
)

// Node identifies a BDD node within its Factory. The zero value is the False
// terminal of every factory.
type Node int32

// Terminal nodes, valid in every Factory.
const (
	False Node = 0
	True  Node = 1
)

// node is the internal node representation: a variable level and two
// children. Terminals use level = terminalLevel.
type node struct {
	level  int32 // variable order position; smaller levels closer to the root
	lo, hi Node  // low (var=false) and high (var=true) children
}

const terminalLevel = math.MaxInt32

type opKind uint32

const (
	opAnd opKind = iota + 1 // 0 is reserved for empty cache entries
	opOr
	opXor
	opNot
)

// opEntry is one slot of the direct-mapped operation cache. a == 0 marks an
// empty slot: the False terminal never reaches the cache (every operation
// with a terminal operand short-circuits first).
type opEntry struct {
	op     opKind
	a, b   Node
	result Node
}

const (
	initialTableSlots = 1 << 9  // unique table, grows at 75% load
	initialOpSlots    = 1 << 10 // op cache, grows with the unique table
	maxOpSlots        = 1 << 18 // op cache stops growing here (4 MiB)
)

// Factory allocates and owns BDD nodes. It is not safe for concurrent use.
type Factory struct {
	nodes []node

	// Open-addressed unique table: power-of-two slots holding node ids,
	// linear probing, 0 = empty. Nodes are never deleted, so no tombstones.
	table []Node
	mask  uint32

	// Direct-mapped lossy op cache.
	ops    []opEntry
	opMask uint32

	names    []string       // level -> variable name
	varIndex map[string]int // name -> level

	// Epoch-stamped scratch buffers backing Restrict/SatCount memoization:
	// stamp[id] == epoch marks a valid entry, so starting a new traversal
	// is O(1) instead of allocating a map.
	stamp []uint32
	epoch uint32
	memoN []Node
	memoF []float64

	opHits, opMisses, opEvictions int64

	// budget, when set, is charged one guard.AxisBDDNodes per allocated
	// node. mk never aborts mid-operation — that would corrupt the
	// operation's recursion invariants — so a trip only records the
	// diagnostic; stage loop heads observe it and unwind.
	budget *guard.Budget
}

// NewFactory returns an empty factory containing only the two terminals.
func NewFactory() *Factory {
	f := &Factory{
		table:    make([]Node, initialTableSlots),
		mask:     initialTableSlots - 1,
		ops:      make([]opEntry, initialOpSlots),
		opMask:   initialOpSlots - 1,
		varIndex: make(map[string]int),
	}
	// Terminal slots. Their children are self-loops and never traversed.
	f.nodes = append(f.nodes,
		node{level: terminalLevel, lo: False, hi: False},
		node{level: terminalLevel, lo: True, hi: True},
	)
	return f
}

// SetBudget attaches a resource budget; every subsequently allocated node
// charges guard.AxisBDDNodes. Pass nil to detach.
func (f *Factory) SetBudget(b *guard.Budget) { f.budget = b }

// NumVars reports how many distinct variables have been created.
func (f *Factory) NumVars() int { return len(f.names) }

// NumNodes reports the total number of allocated nodes, including terminals.
func (f *Factory) NumNodes() int { return len(f.nodes) }

// Var returns the BDD for the variable with the given name, creating the
// variable (at the next order position) if it does not exist yet.
func (f *Factory) Var(name string) Node {
	lvl, ok := f.varIndex[name]
	if !ok {
		lvl = len(f.names)
		f.names = append(f.names, name)
		f.varIndex[name] = lvl
	}
	return f.mk(int32(lvl), False, True)
}

// VarName returns the name of the variable at the root of n. It panics if n
// is a terminal.
func (f *Factory) VarName(n Node) string {
	lvl := f.nodes[n].level
	if lvl == terminalLevel {
		panic("bdd: VarName of terminal")
	}
	return f.names[lvl]
}

// HasVar reports whether a variable with the given name has been created.
func (f *Factory) HasVar(name string) bool {
	_, ok := f.varIndex[name]
	return ok
}

// At decomposes an internal node into its root variable name and children
// (the Shannon cofactors n = name ? hi : lo). internal is false for the two
// terminals, whose other return values are meaningless. Package cond uses it
// to export conditions into space-independent formulas.
func (f *Factory) At(n Node) (name string, lo, hi Node, internal bool) {
	nd := f.nodes[n]
	if nd.level == terminalLevel {
		return "", 0, 0, false
	}
	return f.names[nd.level], nd.lo, nd.hi, true
}

// mix32 is a finalizing 32-bit hash (Prospector's low-bias constants).
func mix32(x uint32) uint32 {
	x ^= x >> 16
	x *= 0x7feb352d
	x ^= x >> 15
	x *= 0x846ca68b
	x ^= x >> 16
	return x
}

func hashTriple(a, b, c uint32) uint32 {
	h := a*0x9e3779b1 + b*0x85ebca6b + c*0xc2b2ae35
	return mix32(h)
}

// mk returns the canonical node (level, lo, hi), applying the reduction
// rules: identical children collapse, duplicates are shared via the
// open-addressed unique table.
func (f *Factory) mk(level int32, lo, hi Node) Node {
	if lo == hi {
		return lo
	}
	h := hashTriple(uint32(level), uint32(lo), uint32(hi)) & f.mask
	for {
		id := f.table[h]
		if id == 0 {
			break
		}
		nd := &f.nodes[id]
		if nd.level == level && nd.lo == lo && nd.hi == hi {
			return id
		}
		h = (h + 1) & f.mask
	}
	id := Node(len(f.nodes))
	f.nodes = append(f.nodes, node{level: level, lo: lo, hi: hi})
	f.table[h] = id
	f.budget.Charge("bdd", guard.AxisBDDNodes, 1)
	// Grow at 75% load. len(nodes) includes the two terminals, which are
	// not stored; the off-by-two is irrelevant at this granularity.
	if uint32(len(f.nodes))*4 > (f.mask+1)*3 {
		f.growTable()
	}
	return id
}

// growTable doubles the unique table and reinserts every internal node. The
// op cache grows alongside it (BuDDy sizes its caches relative to the node
// table) until maxOpSlots.
func (f *Factory) growTable() {
	slots := (f.mask + 1) * 2
	f.table = make([]Node, slots)
	f.mask = slots - 1
	for id := 2; id < len(f.nodes); id++ {
		nd := &f.nodes[id]
		h := hashTriple(uint32(nd.level), uint32(nd.lo), uint32(nd.hi)) & f.mask
		for f.table[h] != 0 {
			h = (h + 1) & f.mask
		}
		f.table[h] = Node(id)
	}
	if opSlots := f.opMask + 1; opSlots < slots && opSlots < maxOpSlots {
		old := f.ops
		f.ops = make([]opEntry, opSlots*2)
		f.opMask = opSlots*2 - 1
		// Rehash live entries: the cache is lossy, but discarding the warm
		// set exactly when the workload is growing would hurt most.
		for i := range old {
			if old[i].a != 0 {
				f.ops[opHash(old[i].op, old[i].a, old[i].b)&f.opMask] = old[i]
			}
		}
	}
}

func opHash(op opKind, a, b Node) uint32 {
	return hashTriple(uint32(op), uint32(a), uint32(b))
}

// cacheGet consults the direct-mapped op cache.
func (f *Factory) cacheGet(op opKind, a, b Node) (Node, bool) {
	e := &f.ops[opHash(op, a, b)&f.opMask]
	if e.a == a && e.b == b && e.op == op {
		f.opHits++
		return e.result, true
	}
	f.opMisses++
	return 0, false
}

// cachePut stores a result, overwriting whatever occupied the slot (lossy
// direct-mapped replacement). The index is recomputed because recursive
// calls may have grown the cache since the lookup.
func (f *Factory) cachePut(op opKind, a, b, r Node) {
	e := &f.ops[opHash(op, a, b)&f.opMask]
	if e.a != 0 {
		f.opEvictions++
	}
	*e = opEntry{op: op, a: a, b: b, result: r}
}

// Not returns the negation of a.
func (f *Factory) Not(a Node) Node {
	switch a {
	case False:
		return True
	case True:
		return False
	}
	if r, ok := f.cacheGet(opNot, a, 0); ok {
		return r
	}
	n := f.nodes[a]
	r := f.mk(n.level, f.Not(n.lo), f.Not(n.hi))
	f.cachePut(opNot, a, 0, r)
	return r
}

// And returns the conjunction of a and b.
func (f *Factory) And(a, b Node) Node { return f.apply(opAnd, a, b) }

// Or returns the disjunction of a and b.
func (f *Factory) Or(a, b Node) Node { return f.apply(opOr, a, b) }

// Xor returns the exclusive disjunction of a and b.
func (f *Factory) Xor(a, b Node) Node { return f.apply(opXor, a, b) }

// Implies returns ¬a ∨ b.
func (f *Factory) Implies(a, b Node) Node { return f.Or(f.Not(a), b) }

// Equiv returns the biconditional a ↔ b.
func (f *Factory) Equiv(a, b Node) Node { return f.Not(f.Xor(a, b)) }

// AndNot returns a ∧ ¬b, the common "trim away b" operation on presence
// conditions.
func (f *Factory) AndNot(a, b Node) Node { return f.And(a, f.Not(b)) }

func (f *Factory) apply(op opKind, a, b Node) Node {
	// Terminal cases. After these screens both operands are internal nodes
	// (ids >= 2), which cacheGet/cachePut rely on.
	switch op {
	case opAnd:
		if a == False || b == False {
			return False
		}
		if a == True {
			return b
		}
		if b == True {
			return a
		}
		if a == b {
			return a
		}
	case opOr:
		if a == True || b == True {
			return True
		}
		if a == False {
			return b
		}
		if b == False {
			return a
		}
		if a == b {
			return a
		}
	case opXor:
		if a == b {
			return False
		}
		if a == False {
			return b
		}
		if b == False {
			return a
		}
		if a == True {
			return f.Not(b)
		}
		if b == True {
			return f.Not(a)
		}
	}
	// Commutative: normalize operand order for better cache hits.
	if a > b {
		a, b = b, a
	}
	if r, ok := f.cacheGet(op, a, b); ok {
		return r
	}
	na, nb := f.nodes[a], f.nodes[b]
	var lvl int32
	var alo, ahi, blo, bhi Node
	switch {
	case na.level == nb.level:
		lvl, alo, ahi, blo, bhi = na.level, na.lo, na.hi, nb.lo, nb.hi
	case na.level < nb.level:
		lvl, alo, ahi, blo, bhi = na.level, na.lo, na.hi, b, b
	default:
		lvl, alo, ahi, blo, bhi = nb.level, a, a, nb.lo, nb.hi
	}
	r := f.mk(lvl, f.apply(op, alo, blo), f.apply(op, ahi, bhi))
	f.cachePut(op, a, b, r)
	return r
}

// Ite returns if-then-else: (c ∧ t) ∨ (¬c ∧ e).
func (f *Factory) Ite(c, t, e Node) Node {
	return f.Or(f.And(c, t), f.And(f.Not(c), e))
}

// beginScratch starts a new epoch over the stamped memo buffers, sizing
// them to the current node count. O(1) except on first use, growth, and
// epoch wrap-around.
func (f *Factory) beginScratch() {
	f.epoch++
	if f.epoch == 0 { // wrapped: stale stamps could alias; reset
		for i := range f.stamp {
			f.stamp[i] = 0
		}
		f.epoch = 1
	}
	if len(f.stamp) < len(f.nodes) {
		f.stamp = append(f.stamp, make([]uint32, len(f.nodes)-len(f.stamp))...)
		f.memoN = append(f.memoN, make([]Node, len(f.nodes)-len(f.memoN))...)
		f.memoF = append(f.memoF, make([]float64, len(f.nodes)-len(f.memoF))...)
	}
}

// Restrict returns a with the named variable fixed to val. If the variable
// has never been created, a is returned unchanged.
func (f *Factory) Restrict(a Node, name string, val bool) Node {
	lvl, ok := f.varIndex[name]
	if !ok {
		return a
	}
	f.beginScratch()
	return f.restrict(a, int32(lvl), val)
}

// restrict memoizes on the scratch buffers; memo keys are ids of nodes
// reachable from the original a, all of which predate beginScratch, so the
// stamp buffer is never indexed out of range even though mk may allocate.
func (f *Factory) restrict(a Node, lvl int32, val bool) Node {
	n := f.nodes[a]
	if n.level > lvl {
		return a // terminal or below the variable in the order
	}
	if f.stamp[a] == f.epoch {
		return f.memoN[a]
	}
	var r Node
	if n.level == lvl {
		if val {
			r = n.hi
		} else {
			r = n.lo
		}
	} else {
		r = f.mk(n.level, f.restrict(n.lo, lvl, val), f.restrict(n.hi, lvl, val))
	}
	f.stamp[a] = f.epoch
	f.memoN[a] = r
	return r
}

// Exists existentially quantifies the named variable out of a.
func (f *Factory) Exists(a Node, name string) Node {
	return f.Or(f.Restrict(a, name, false), f.Restrict(a, name, true))
}

// SatOne returns one satisfying assignment of a, or ok = false when a is
// unsatisfiable. The map assigns only the variables along the chosen path;
// all other variables are don't-cares (Eval treats absent variables as
// false). The walk prefers the low (false) child at every decision node, so
// the witness is deterministic and enables the fewest variables the
// diagram's structure allows — the "minimal configuration" convention of
// configuration-coverage tools.
func (f *Factory) SatOne(a Node) (assign map[string]bool, ok bool) {
	if a == False {
		return nil, false
	}
	assign = make(map[string]bool)
	for a != True {
		nd := f.nodes[a]
		if nd.lo != False {
			assign[f.names[nd.level]] = false
			a = nd.lo
		} else {
			assign[f.names[nd.level]] = true
			a = nd.hi
		}
	}
	return assign, true
}

// IsFalse reports whether a is the unsatisfiable constant.
func (f *Factory) IsFalse(a Node) bool { return a == False }

// IsTrue reports whether a is the valid constant.
func (f *Factory) IsTrue(a Node) bool { return a == True }

// SatCount returns the number of satisfying assignments of a over all
// variables created so far, as a float64 (counts overflow int64 quickly).
func (f *Factory) SatCount(a Node) float64 {
	f.beginScratch()
	return f.satCount(a) * exp2(f.levelOf(a))
}

// exp2 returns 2^k exactly (float64 arithmetic; k is a small level delta).
func exp2(k int32) float64 { return math.Ldexp(1, int(k)) }

func (f *Factory) levelOf(a Node) int32 {
	lvl := f.nodes[a].level
	if lvl == terminalLevel {
		return int32(len(f.names))
	}
	return lvl
}

// satCount returns satisfying assignments over variables at or below a's
// level; the caller scales for skipped variables above. Memoized on the
// epoch-stamped scratch buffers.
func (f *Factory) satCount(a Node) float64 {
	if a == False {
		return 0
	}
	if a == True {
		return 1
	}
	if f.stamp[a] == f.epoch {
		return f.memoF[a]
	}
	n := f.nodes[a]
	lo := f.satCount(n.lo) * exp2(f.levelOf(n.lo)-n.level-1)
	hi := f.satCount(n.hi) * exp2(f.levelOf(n.hi)-n.level-1)
	c := lo + hi
	f.stamp[a] = f.epoch
	f.memoF[a] = c
	return c
}

// AnySat returns one satisfying assignment of a as a map from variable name
// to value, mentioning only the variables on the chosen path. It returns nil
// and false when a is unsatisfiable.
func (f *Factory) AnySat(a Node) (map[string]bool, bool) {
	if a == False {
		return nil, false
	}
	assign := make(map[string]bool)
	for a != True {
		n := f.nodes[a]
		name := f.names[n.level]
		if n.hi != False {
			assign[name] = true
			a = n.hi
		} else {
			assign[name] = false
			a = n.lo
		}
	}
	return assign, true
}

// Support returns the sorted names of variables the function a depends on.
func (f *Factory) Support(a Node) []string {
	seen := make(map[int32]bool)
	visited := make(map[Node]bool)
	var walk func(Node)
	walk = func(n Node) {
		if n == False || n == True || visited[n] {
			return
		}
		visited[n] = true
		nd := f.nodes[n]
		seen[nd.level] = true
		walk(nd.lo)
		walk(nd.hi)
	}
	walk(a)
	names := make([]string, 0, len(seen))
	for lvl := range seen {
		names = append(names, f.names[lvl])
	}
	sort.Strings(names)
	return names
}

// String renders a as a sum-of-products formula over variable names, e.g.
// "A&!B | !A". Terminals render as "1" and "0". The rendering enumerates the
// satisfying paths of the diagram; it is meant for diagnostics and tests, not
// for minimal formulas.
func (f *Factory) String(a Node) string {
	switch a {
	case False:
		return "0"
	case True:
		return "1"
	}
	var cubes []string
	var lits []string
	var walk func(Node)
	walk = func(n Node) {
		if n == False {
			return
		}
		if n == True {
			cubes = append(cubes, strings.Join(lits, "&"))
			return
		}
		nd := f.nodes[n]
		lits = append(lits, "!"+f.names[nd.level])
		walk(nd.lo)
		lits = lits[:len(lits)-1]
		lits = append(lits, f.names[nd.level])
		walk(nd.hi)
		lits = lits[:len(lits)-1]
	}
	walk(a)
	if len(cubes) == 0 {
		return "0"
	}
	return strings.Join(cubes, " | ")
}

// Eval evaluates a under the given assignment; variables absent from the
// assignment default to false.
func (f *Factory) Eval(a Node, assign map[string]bool) bool {
	for a != False && a != True {
		n := f.nodes[a]
		if assign[f.names[n.level]] {
			a = n.hi
		} else {
			a = n.lo
		}
	}
	return a == True
}

// Size returns the number of nodes reachable from a, including terminals.
// This is the size of the function's diagram, as opposed to NumNodes, which
// counts every node the factory has ever allocated.
func (f *Factory) Size(a Node) int {
	visited := map[Node]bool{}
	var walk func(Node)
	walk = func(n Node) {
		if visited[n] {
			return
		}
		visited[n] = true
		if n == False || n == True {
			return
		}
		nd := f.nodes[n]
		walk(nd.lo)
		walk(nd.hi)
	}
	walk(a)
	return len(visited)
}

// CacheStats describes the size and effectiveness of the factory's internal
// tables.
type CacheStats struct {
	Nodes  int // allocated nodes, terminals included
	Unique int // internal (hash-consed) nodes
	Vars   int

	TableSlots int // unique-table capacity; load factor = Unique/TableSlots

	OpCache     int   // live op-cache entries
	OpSlots     int   // op-cache capacity
	OpHits      int64 // op-cache hits since creation
	OpMisses    int64
	OpEvictions int64 // live entries overwritten (direct-mapped collisions)
}

// Stats returns current table sizes and cache counters, useful when tuning
// workloads.
func (f *Factory) Stats() CacheStats {
	live := 0
	for i := range f.ops {
		if f.ops[i].a != 0 {
			live++
		}
	}
	return CacheStats{
		Nodes:       len(f.nodes),
		Unique:      len(f.nodes) - 2,
		Vars:        len(f.names),
		TableSlots:  int(f.mask + 1),
		OpCache:     live,
		OpSlots:     int(f.opMask + 1),
		OpHits:      f.opHits,
		OpMisses:    f.opMisses,
		OpEvictions: f.opEvictions,
	}
}

// Dump writes a textual listing of the diagram rooted at a, one node per
// line, for debugging.
func (f *Factory) Dump(a Node) string {
	var b strings.Builder
	visited := make(map[Node]bool)
	var walk func(Node)
	walk = func(n Node) {
		if n == False || n == True || visited[n] {
			return
		}
		visited[n] = true
		nd := f.nodes[n]
		fmt.Fprintf(&b, "@%d: %s ? @%d : @%d\n", n, f.names[nd.level], nd.hi, nd.lo)
		walk(nd.lo)
		walk(nd.hi)
	}
	walk(a)
	return b.String()
}
