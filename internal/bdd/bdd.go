// Package bdd implements reduced, ordered binary decision diagrams (ROBDDs).
//
// SuperC represents presence conditions — the boolean formulas over
// configuration variables under which a token, macro definition, or AST
// branch is present — as BDDs (paper §3.2). BDDs are canonical: two boolean
// functions are equal if and only if their BDD node identities are equal,
// which makes feasibility tests (c1 ∧ c2 = false) and condition comparison
// constant-time once the diagram is built.
//
// The implementation is a classic hash-consed node store with an operation
// cache. Nodes are referenced by dense int32 ids; ids 0 and 1 are the False
// and True terminals. A Factory owns all nodes; Node values from different
// factories must not be mixed.
package bdd

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Node identifies a BDD node within its Factory. The zero value is the False
// terminal of every factory.
type Node int32

// Terminal nodes, valid in every Factory.
const (
	False Node = 0
	True  Node = 1
)

// node is the internal node representation: a variable level and two
// children. Terminals use level = terminalLevel.
type node struct {
	level  int32 // variable order position; smaller levels closer to the root
	lo, hi Node  // low (var=false) and high (var=true) children
}

const terminalLevel = math.MaxInt32

type opKind uint8

const (
	opAnd opKind = iota
	opOr
	opXor
	opNot
)

type opKey struct {
	op   opKind
	a, b Node
}

// Factory allocates and owns BDD nodes. It is not safe for concurrent use.
type Factory struct {
	nodes    []node
	unique   map[node]Node
	cache    map[opKey]Node
	names    []string       // level -> variable name
	varIndex map[string]int // name -> level
}

// NewFactory returns an empty factory containing only the two terminals.
func NewFactory() *Factory {
	f := &Factory{
		unique:   make(map[node]Node),
		cache:    make(map[opKey]Node),
		varIndex: make(map[string]int),
	}
	// Terminal slots. Their children are self-loops and never traversed.
	f.nodes = append(f.nodes,
		node{level: terminalLevel, lo: False, hi: False},
		node{level: terminalLevel, lo: True, hi: True},
	)
	return f
}

// NumVars reports how many distinct variables have been created.
func (f *Factory) NumVars() int { return len(f.names) }

// NumNodes reports the total number of allocated nodes, including terminals.
func (f *Factory) NumNodes() int { return len(f.nodes) }

// Var returns the BDD for the variable with the given name, creating the
// variable (at the next order position) if it does not exist yet.
func (f *Factory) Var(name string) Node {
	lvl, ok := f.varIndex[name]
	if !ok {
		lvl = len(f.names)
		f.names = append(f.names, name)
		f.varIndex[name] = lvl
	}
	return f.mk(int32(lvl), False, True)
}

// VarName returns the name of the variable at the root of n. It panics if n
// is a terminal.
func (f *Factory) VarName(n Node) string {
	lvl := f.nodes[n].level
	if lvl == terminalLevel {
		panic("bdd: VarName of terminal")
	}
	return f.names[lvl]
}

// HasVar reports whether a variable with the given name has been created.
func (f *Factory) HasVar(name string) bool {
	_, ok := f.varIndex[name]
	return ok
}

// At decomposes an internal node into its root variable name and children
// (the Shannon cofactors n = name ? hi : lo). internal is false for the two
// terminals, whose other return values are meaningless. Package cond uses it
// to export conditions into space-independent formulas.
func (f *Factory) At(n Node) (name string, lo, hi Node, internal bool) {
	nd := f.nodes[n]
	if nd.level == terminalLevel {
		return "", 0, 0, false
	}
	return f.names[nd.level], nd.lo, nd.hi, true
}

// mk returns the canonical node (level, lo, hi), applying the reduction
// rules: identical children collapse, duplicates are shared.
func (f *Factory) mk(level int32, lo, hi Node) Node {
	if lo == hi {
		return lo
	}
	key := node{level: level, lo: lo, hi: hi}
	if id, ok := f.unique[key]; ok {
		return id
	}
	id := Node(len(f.nodes))
	f.nodes = append(f.nodes, key)
	f.unique[key] = id
	return id
}

// Not returns the negation of a.
func (f *Factory) Not(a Node) Node {
	switch a {
	case False:
		return True
	case True:
		return False
	}
	key := opKey{op: opNot, a: a}
	if r, ok := f.cache[key]; ok {
		return r
	}
	n := f.nodes[a]
	r := f.mk(n.level, f.Not(n.lo), f.Not(n.hi))
	f.cache[key] = r
	return r
}

// And returns the conjunction of a and b.
func (f *Factory) And(a, b Node) Node { return f.apply(opAnd, a, b) }

// Or returns the disjunction of a and b.
func (f *Factory) Or(a, b Node) Node { return f.apply(opOr, a, b) }

// Xor returns the exclusive disjunction of a and b.
func (f *Factory) Xor(a, b Node) Node { return f.apply(opXor, a, b) }

// Implies returns ¬a ∨ b.
func (f *Factory) Implies(a, b Node) Node { return f.Or(f.Not(a), b) }

// Equiv returns the biconditional a ↔ b.
func (f *Factory) Equiv(a, b Node) Node { return f.Not(f.Xor(a, b)) }

// AndNot returns a ∧ ¬b, the common "trim away b" operation on presence
// conditions.
func (f *Factory) AndNot(a, b Node) Node { return f.And(a, f.Not(b)) }

func (f *Factory) apply(op opKind, a, b Node) Node {
	// Terminal cases.
	switch op {
	case opAnd:
		if a == False || b == False {
			return False
		}
		if a == True {
			return b
		}
		if b == True {
			return a
		}
		if a == b {
			return a
		}
	case opOr:
		if a == True || b == True {
			return True
		}
		if a == False {
			return b
		}
		if b == False {
			return a
		}
		if a == b {
			return a
		}
	case opXor:
		if a == b {
			return False
		}
		if a == False {
			return b
		}
		if b == False {
			return a
		}
		if a == True {
			return f.Not(b)
		}
		if b == True {
			return f.Not(a)
		}
	}
	// Commutative: normalize operand order for better cache hits.
	if a > b {
		a, b = b, a
	}
	key := opKey{op: op, a: a, b: b}
	if r, ok := f.cache[key]; ok {
		return r
	}
	na, nb := f.nodes[a], f.nodes[b]
	var lvl int32
	var alo, ahi, blo, bhi Node
	switch {
	case na.level == nb.level:
		lvl, alo, ahi, blo, bhi = na.level, na.lo, na.hi, nb.lo, nb.hi
	case na.level < nb.level:
		lvl, alo, ahi, blo, bhi = na.level, na.lo, na.hi, b, b
	default:
		lvl, alo, ahi, blo, bhi = nb.level, a, a, nb.lo, nb.hi
	}
	r := f.mk(lvl, f.apply(op, alo, blo), f.apply(op, ahi, bhi))
	f.cache[key] = r
	return r
}

// Ite returns if-then-else: (c ∧ t) ∨ (¬c ∧ e).
func (f *Factory) Ite(c, t, e Node) Node {
	return f.Or(f.And(c, t), f.And(f.Not(c), e))
}

// Restrict returns a with the named variable fixed to val. If the variable
// has never been created, a is returned unchanged.
func (f *Factory) Restrict(a Node, name string, val bool) Node {
	lvl, ok := f.varIndex[name]
	if !ok {
		return a
	}
	return f.restrict(a, int32(lvl), val, make(map[Node]Node))
}

func (f *Factory) restrict(a Node, lvl int32, val bool, memo map[Node]Node) Node {
	n := f.nodes[a]
	if n.level > lvl {
		return a // terminal or below the variable in the order
	}
	if r, ok := memo[a]; ok {
		return r
	}
	var r Node
	if n.level == lvl {
		if val {
			r = n.hi
		} else {
			r = n.lo
		}
	} else {
		r = f.mk(n.level, f.restrict(n.lo, lvl, val, memo), f.restrict(n.hi, lvl, val, memo))
	}
	memo[a] = r
	return r
}

// Exists existentially quantifies the named variable out of a.
func (f *Factory) Exists(a Node, name string) Node {
	return f.Or(f.Restrict(a, name, false), f.Restrict(a, name, true))
}

// IsFalse reports whether a is the unsatisfiable constant.
func (f *Factory) IsFalse(a Node) bool { return a == False }

// IsTrue reports whether a is the valid constant.
func (f *Factory) IsTrue(a Node) bool { return a == True }

// SatCount returns the number of satisfying assignments of a over all
// variables created so far, as a float64 (counts overflow int64 quickly).
func (f *Factory) SatCount(a Node) float64 {
	memo := make(map[Node]float64)
	return f.satCount(a, memo) * math.Pow(2, float64(f.levelOf(a)))
}

func (f *Factory) levelOf(a Node) int32 {
	lvl := f.nodes[a].level
	if lvl == terminalLevel {
		return int32(len(f.names))
	}
	return lvl
}

// satCount returns satisfying assignments over variables at or below a's
// level; the caller scales for skipped variables above.
func (f *Factory) satCount(a Node, memo map[Node]float64) float64 {
	if a == False {
		return 0
	}
	if a == True {
		return 1
	}
	if c, ok := memo[a]; ok {
		return c
	}
	n := f.nodes[a]
	lo := f.satCount(n.lo, memo) * math.Pow(2, float64(f.levelOf(n.lo)-n.level-1))
	hi := f.satCount(n.hi, memo) * math.Pow(2, float64(f.levelOf(n.hi)-n.level-1))
	c := lo + hi
	memo[a] = c
	return c
}

// AnySat returns one satisfying assignment of a as a map from variable name
// to value, mentioning only the variables on the chosen path. It returns nil
// and false when a is unsatisfiable.
func (f *Factory) AnySat(a Node) (map[string]bool, bool) {
	if a == False {
		return nil, false
	}
	assign := make(map[string]bool)
	for a != True {
		n := f.nodes[a]
		name := f.names[n.level]
		if n.hi != False {
			assign[name] = true
			a = n.hi
		} else {
			assign[name] = false
			a = n.lo
		}
	}
	return assign, true
}

// Support returns the sorted names of variables the function a depends on.
func (f *Factory) Support(a Node) []string {
	seen := make(map[int32]bool)
	visited := make(map[Node]bool)
	var walk func(Node)
	walk = func(n Node) {
		if n == False || n == True || visited[n] {
			return
		}
		visited[n] = true
		nd := f.nodes[n]
		seen[nd.level] = true
		walk(nd.lo)
		walk(nd.hi)
	}
	walk(a)
	names := make([]string, 0, len(seen))
	for lvl := range seen {
		names = append(names, f.names[lvl])
	}
	sort.Strings(names)
	return names
}

// String renders a as a sum-of-products formula over variable names, e.g.
// "A&!B | !A". Terminals render as "1" and "0". The rendering enumerates the
// satisfying paths of the diagram; it is meant for diagnostics and tests, not
// for minimal formulas.
func (f *Factory) String(a Node) string {
	switch a {
	case False:
		return "0"
	case True:
		return "1"
	}
	var cubes []string
	var lits []string
	var walk func(Node)
	walk = func(n Node) {
		if n == False {
			return
		}
		if n == True {
			cubes = append(cubes, strings.Join(lits, "&"))
			return
		}
		nd := f.nodes[n]
		lits = append(lits, "!"+f.names[nd.level])
		walk(nd.lo)
		lits = lits[:len(lits)-1]
		lits = append(lits, f.names[nd.level])
		walk(nd.hi)
		lits = lits[:len(lits)-1]
	}
	walk(a)
	if len(cubes) == 0 {
		return "0"
	}
	return strings.Join(cubes, " | ")
}

// Eval evaluates a under the given assignment; variables absent from the
// assignment default to false.
func (f *Factory) Eval(a Node, assign map[string]bool) bool {
	for a != False && a != True {
		n := f.nodes[a]
		if assign[f.names[n.level]] {
			a = n.hi
		} else {
			a = n.lo
		}
	}
	return a == True
}

// Size returns the number of nodes reachable from a, including terminals.
// This is the size of the function's diagram, as opposed to NumNodes, which
// counts every node the factory has ever allocated.
func (f *Factory) Size(a Node) int {
	visited := map[Node]bool{}
	var walk func(Node)
	walk = func(n Node) {
		if visited[n] {
			return
		}
		visited[n] = true
		if n == False || n == True {
			return
		}
		nd := f.nodes[n]
		walk(nd.lo)
		walk(nd.hi)
	}
	walk(a)
	return len(visited)
}

// CacheStats describes the size of the factory's internal tables.
type CacheStats struct {
	Nodes   int
	Unique  int
	OpCache int
	Vars    int
}

// Stats returns current table sizes, useful when tuning workloads.
func (f *Factory) Stats() CacheStats {
	return CacheStats{
		Nodes:   len(f.nodes),
		Unique:  len(f.unique),
		OpCache: len(f.cache),
		Vars:    len(f.names),
	}
}

// Dump writes a textual listing of the diagram rooted at a, one node per
// line, for debugging.
func (f *Factory) Dump(a Node) string {
	var b strings.Builder
	visited := make(map[Node]bool)
	var walk func(Node)
	walk = func(n Node) {
		if n == False || n == True || visited[n] {
			return
		}
		visited[n] = true
		nd := f.nodes[n]
		fmt.Fprintf(&b, "@%d: %s ? @%d : @%d\n", n, f.names[nd.level], nd.hi, nd.lo)
		walk(nd.lo)
		walk(nd.hi)
	}
	walk(a)
	return b.String()
}
