// Package bdd implements reduced, ordered binary decision diagrams (ROBDDs).
//
// SuperC represents presence conditions — the boolean formulas over
// configuration variables under which a token, macro definition, or AST
// branch is present — as BDDs (paper §3.2). BDDs are canonical: two boolean
// functions are equal if and only if their BDD node identities are equal,
// which makes feasibility tests (c1 ∧ c2 = false) and condition comparison
// constant-time once the diagram is built.
//
// The implementation is a hash-consed node store in the style of the mature
// BDD engines the paper leans on (JavaBDD wrapping BuDDy/CUDD): nodes live
// in fixed-size pages and are referenced by dense int32 ids, the unique
// table is open-addressed and linearly probed (no per-node map boxes), and
// the operation cache is a fixed-size, direct-mapped, *lossy* cache —
// colliding entries overwrite each other instead of growing, trading rare
// recomputation for zero allocation on the And/Or/Not hot path. Traversals
// that need per-node memoization (Restrict, SatCount) use epoch-stamped
// scratch buffers reused across calls rather than fresh maps.
//
// A Factory is safe for concurrent use by multiple goroutines: the unique
// table is sharded into hash stripes, each with its own lock, so concurrent
// subparsers (intra-unit parallel parsing, the daemon's request handlers)
// share one factory. Lookups are lock-free — published nodes are immutable
// and table slots are atomics — and a stripe lock is taken only to insert a
// new node. Node ids remain canonical within a factory: the same
// (level, lo, hi) triple yields the same id no matter which goroutine asks,
// so handle equality stays semantic equality under any interleaving. (Id
// *numbering* depends on allocation order and is not deterministic across
// concurrent runs; nothing semantic depends on it.) Variable order is fixed
// by Var creation order — concurrent creation of *new* variables is safe
// but makes the order scheduling-dependent, so workloads that need
// reproducible diagrams create variables before fanning out.
//
// Ids 0 and 1 are the False and True terminals. A Factory owns all nodes;
// Node values from different factories must not be mixed.
package bdd

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/guard"
)

// Node identifies a BDD node within its Factory. The zero value is the False
// terminal of every factory.
type Node int32

// Terminal nodes, valid in every Factory.
const (
	False Node = 0
	True  Node = 1
)

// node is the internal node representation: a variable level and two
// children. Terminals use level = terminalLevel. Nodes are immutable once
// published in the unique table.
type node struct {
	level  int32 // variable order position; smaller levels closer to the root
	lo, hi Node  // low (var=false) and high (var=true) children
}

const terminalLevel = math.MaxInt32

type opKind uint32

const (
	opAnd opKind = iota + 1 // 0 is reserved for empty cache entries
	opOr
	opXor
	opNot
)

const (
	// pageShift/pageSize size the node store's pages: ids map to
	// (id>>pageShift, id&pageMask). Pages are never moved once installed,
	// so lock-free readers can dereference ids without coordinating with
	// appenders (only the page *directory* is copied on growth).
	pageShift = 10
	pageSize  = 1 << pageShift
	pageMask  = pageSize - 1

	// The unique table is sharded into numStripes independent
	// open-addressed tables; the low hash bits pick the stripe, the
	// remaining bits index within it, so one stripe's probe sequence never
	// crosses into another's lock domain.
	stripeBits = 6
	numStripes = 1 << stripeBits
	stripeMask = numStripes - 1

	initialStripeSlots = 16
	initialTableSlots  = numStripes * initialStripeSlots // total, for tests

	initialOpSlots = 1 << 10 // op cache, grows with the node count
	maxOpSlots     = 1 << 18 // op cache stops growing here (2 MiB)

	// opIDBits is how many bits of a node id fit in one packed op-cache
	// word (3 op bits + 3×20 id bits = 63). Operations on ids beyond this
	// skip the cache — still correct, just uncached; a factory that large
	// has other problems first.
	opIDBits = 20
	opIDMax  = Node(1 << opIDBits)
)

// page is one fixed block of the node store.
type page [pageSize]node

// stripe is one lock domain of the sharded unique table: a power-of-two
// open-addressed array of node ids (0 = empty; terminals are never stored).
// Readers probe the table lock-free through the atomic slots; writers hold
// mu to insert or grow. Growth installs a fresh table and never mutates the
// old one, so a concurrent reader on a stale table can at worst miss a new
// node and retry under the lock.
type stripe struct {
	mu    sync.Mutex
	table atomic.Pointer[[]atomic.Int32]
	count int // nodes inserted; guarded by mu
}

// Factory allocates and owns BDD nodes. It is safe for concurrent use.
type Factory struct {
	// pages is the copy-on-write page directory. Appending a page copies
	// the directory slice under pageMu and atomically republishes it;
	// readers always dereference the current directory, and the
	// happens-before chain through the unique-table slot (or any other
	// synchronized channel an id traveled through) guarantees the directory
	// they load covers the id.
	pages  atomic.Pointer[[]*page]
	pageMu sync.Mutex
	nnodes atomic.Int64 // next id == number of allocated nodes

	stripes [numStripes]stripe

	// Direct-mapped lossy op cache: each slot packs (op, a, b, result)
	// into one atomic word, so readers and writers race benignly — an
	// entry is either absent, stale-but-valid, or current, never torn.
	ops      atomic.Pointer[[]atomic.Uint64]
	opMu     sync.Mutex
	opGrowAt atomic.Int64 // node count that triggers the next cache doubling

	// Variable order: names is copy-on-write (snapshot readers), varIndex
	// is guarded by varMu.
	names    atomic.Pointer[[]string] // level -> variable name
	varMu    sync.RWMutex
	varIndex map[string]int // name -> level

	// Epoch-stamped scratch buffers backing Restrict/SatCount memoization:
	// stamp[id] == epoch marks a valid entry, so starting a new traversal
	// is O(1) instead of allocating a map. One traversal at a time holds
	// scratchMu; these entry points are off the parse hot path.
	scratchMu sync.Mutex
	stamp     []uint32
	epoch     uint32
	memoN     []Node
	memoF     []float64

	opHits, opMisses, opEvictions atomic.Int64

	// budget, when set, is charged one guard.AxisBDDNodes per allocated
	// node. mk never aborts mid-operation — that would corrupt the
	// operation's recursion invariants — so a trip only records the
	// diagnostic; stage loop heads observe it and unwind.
	budget *guard.Budget
}

// NewFactory returns an empty factory containing only the two terminals.
func NewFactory() *Factory {
	f := &Factory{varIndex: make(map[string]int)}
	p0 := &page{}
	p0[0] = node{level: terminalLevel, lo: False, hi: False}
	p0[1] = node{level: terminalLevel, lo: True, hi: True}
	pages := []*page{p0}
	f.pages.Store(&pages)
	f.nnodes.Store(2)
	for i := range f.stripes {
		tbl := make([]atomic.Int32, initialStripeSlots)
		f.stripes[i].table.Store(&tbl)
	}
	ops := make([]atomic.Uint64, initialOpSlots)
	f.ops.Store(&ops)
	f.opGrowAt.Store(initialOpSlots * 3 / 4)
	names := []string{}
	f.names.Store(&names)
	return f
}

// SetBudget attaches a resource budget; every subsequently allocated node
// charges guard.AxisBDDNodes. Pass nil to detach. Not safe to call while
// other goroutines operate on the factory; attach before fanning out.
func (f *Factory) SetBudget(b *guard.Budget) { f.budget = b }

// NumVars reports how many distinct variables have been created.
func (f *Factory) NumVars() int { return len(*f.names.Load()) }

// NumNodes reports the total number of allocated nodes, including terminals.
func (f *Factory) NumNodes() int { return int(f.nnodes.Load()) }

// node dereferences an id. Callers hold an id only after it was published
// (through a table slot, an op-cache entry, or a synchronized handoff), so
// the node contents are visible.
func (f *Factory) node(id Node) node {
	pgs := *f.pages.Load()
	return pgs[id>>pageShift][id&pageMask]
}

// setNode installs the contents of a freshly allocated id, extending the
// page directory when id crosses into a new page. The caller publishes the
// id afterwards (table-slot store), which orders the node write before any
// reader's dereference.
func (f *Factory) setNode(id Node, nd node) {
	pi := int(id >> pageShift)
	pgs := *f.pages.Load()
	if pi >= len(pgs) {
		f.pageMu.Lock()
		pgs = *f.pages.Load()
		for pi >= len(pgs) {
			grown := make([]*page, len(pgs)+1)
			copy(grown, pgs)
			grown[len(pgs)] = &page{}
			f.pages.Store(&grown)
			pgs = grown
		}
		f.pageMu.Unlock()
	}
	pgs[pi][id&pageMask] = nd
}

// Var returns the BDD for the variable with the given name, creating the
// variable (at the next order position) if it does not exist yet.
func (f *Factory) Var(name string) Node {
	f.varMu.RLock()
	lvl, ok := f.varIndex[name]
	f.varMu.RUnlock()
	if !ok {
		f.varMu.Lock()
		lvl, ok = f.varIndex[name]
		if !ok {
			names := *f.names.Load()
			lvl = len(names)
			grown := make([]string, len(names)+1)
			copy(grown, names)
			grown[len(names)] = name
			f.names.Store(&grown)
			f.varIndex[name] = lvl
		}
		f.varMu.Unlock()
	}
	return f.mk(int32(lvl), False, True)
}

// VarName returns the name of the variable at the root of n. It panics if n
// is a terminal.
func (f *Factory) VarName(n Node) string {
	lvl := f.node(n).level
	if lvl == terminalLevel {
		panic("bdd: VarName of terminal")
	}
	return (*f.names.Load())[lvl]
}

// HasVar reports whether a variable with the given name has been created.
func (f *Factory) HasVar(name string) bool {
	f.varMu.RLock()
	_, ok := f.varIndex[name]
	f.varMu.RUnlock()
	return ok
}

// At decomposes an internal node into its root variable name and children
// (the Shannon cofactors n = name ? hi : lo). internal is false for the two
// terminals, whose other return values are meaningless. Package cond uses it
// to export conditions into space-independent formulas.
func (f *Factory) At(n Node) (name string, lo, hi Node, internal bool) {
	nd := f.node(n)
	if nd.level == terminalLevel {
		return "", 0, 0, false
	}
	return (*f.names.Load())[nd.level], nd.lo, nd.hi, true
}

// mix32 is a finalizing 32-bit hash (Prospector's low-bias constants).
func mix32(x uint32) uint32 {
	x ^= x >> 16
	x *= 0x7feb352d
	x ^= x >> 15
	x *= 0x846ca68b
	x ^= x >> 16
	return x
}

func hashTriple(a, b, c uint32) uint32 {
	h := a*0x9e3779b1 + b*0x85ebca6b + c*0xc2b2ae35
	return mix32(h)
}

// probe searches one stripe table for (level, lo, hi). It returns the node
// id when present, or 0 and the first empty slot index when absent. It is
// safe to call without the stripe lock: slots are atomics and nodes are
// immutable; a racing insert can at worst make an absent verdict stale,
// which the caller resolves by re-probing under the lock.
func (f *Factory) probe(tbl []atomic.Int32, h uint32, level int32, lo, hi Node) (Node, int) {
	mask := uint32(len(tbl) - 1)
	i := (h >> stripeBits) & mask
	for {
		id := Node(tbl[i].Load())
		if id == 0 {
			return 0, int(i)
		}
		nd := f.node(id)
		if nd.level == level && nd.lo == lo && nd.hi == hi {
			return id, -1
		}
		i = (i + 1) & mask
	}
}

// mk returns the canonical node (level, lo, hi), applying the reduction
// rules: identical children collapse, duplicates are shared via the
// sharded open-addressed unique table. The fast path — the node already
// exists — is lock-free; allocating takes the stripe's lock.
func (f *Factory) mk(level int32, lo, hi Node) Node {
	if lo == hi {
		return lo
	}
	h := hashTriple(uint32(level), uint32(lo), uint32(hi))
	st := &f.stripes[h&stripeMask]
	if id, _ := f.probe(*st.table.Load(), h, level, lo, hi); id != 0 {
		return id
	}
	st.mu.Lock()
	tbl := *st.table.Load()
	id, slot := f.probe(tbl, h, level, lo, hi)
	if id != 0 {
		st.mu.Unlock()
		return id
	}
	id = Node(f.nnodes.Add(1) - 1)
	f.setNode(id, node{level: level, lo: lo, hi: hi})
	tbl[slot].Store(int32(id))
	st.count++
	// Grow at 75% load so probes stay short.
	if st.count*4 > len(tbl)*3 {
		f.growStripe(st, tbl)
	}
	st.mu.Unlock()
	f.budget.Charge("bdd", guard.AxisBDDNodes, 1)
	if f.nnodes.Load() > f.opGrowAt.Load() {
		f.growOps()
	}
	return id
}

// growStripe doubles one stripe's table and reinserts its nodes. Called
// with the stripe lock held; the old table is left untouched for concurrent
// lock-free readers, who miss into the lock and re-probe the new table.
func (f *Factory) growStripe(st *stripe, old []atomic.Int32) {
	grown := make([]atomic.Int32, len(old)*2)
	mask := uint32(len(grown) - 1)
	for i := range old {
		id := old[i].Load()
		if id == 0 {
			continue
		}
		nd := f.node(Node(id))
		h := hashTriple(uint32(nd.level), uint32(nd.lo), uint32(nd.hi))
		j := (h >> stripeBits) & mask
		for grown[j].Load() != 0 {
			j = (j + 1) & mask
		}
		grown[j].Store(id)
	}
	st.table.Store(&grown)
}

// growOps doubles the op cache (BuDDy sizes its caches relative to the node
// table) until maxOpSlots, rehashing live entries: the cache is lossy, but
// discarding the warm set exactly when the workload is growing would hurt
// most. Concurrent cachePuts into the retiring table are dropped — a lossy
// cache may forget, never lie.
func (f *Factory) growOps() {
	f.opMu.Lock()
	defer f.opMu.Unlock()
	for f.nnodes.Load() > f.opGrowAt.Load() {
		old := *f.ops.Load()
		if len(old) >= maxOpSlots {
			f.opGrowAt.Store(math.MaxInt64)
			return
		}
		grown := make([]atomic.Uint64, len(old)*2)
		mask := uint32(len(grown) - 1)
		for i := range old {
			if e := old[i].Load(); e != 0 {
				op, a, b := unpackOpKey(e)
				grown[opHash(op, a, b)&mask].Store(e)
			}
		}
		f.ops.Store(&grown)
		f.opGrowAt.Store(int64(len(grown)) * 3 / 4)
	}
}

func opHash(op opKind, a, b Node) uint32 {
	return hashTriple(uint32(op), uint32(a), uint32(b))
}

// packOp encodes one op-cache entry into a single word: 3 op bits and
// 20 bits per id. All valid entries are non-zero (op >= 1).
func packOp(op opKind, a, b, r Node) uint64 {
	return uint64(op)<<60 | uint64(a)<<40 | uint64(b)<<20 | uint64(r)
}

func unpackOpKey(e uint64) (opKind, Node, Node) {
	const idMask = uint64(opIDMax) - 1
	return opKind(e >> 60), Node(e >> 40 & idMask), Node(e >> 20 & idMask)
}

// cacheGet consults the direct-mapped op cache.
func (f *Factory) cacheGet(op opKind, a, b Node) (Node, bool) {
	if a >= opIDMax || b >= opIDMax {
		f.opMisses.Add(1)
		return 0, false
	}
	ops := *f.ops.Load()
	e := ops[opHash(op, a, b)&uint32(len(ops)-1)].Load()
	if e != 0 && e>>20 == uint64(op)<<40|uint64(a)<<20|uint64(b) {
		f.opHits.Add(1)
		return Node(e & (uint64(opIDMax) - 1)), true
	}
	f.opMisses.Add(1)
	return 0, false
}

// cachePut stores a result, overwriting whatever occupied the slot (lossy
// direct-mapped replacement). The table is re-loaded because recursive
// calls may have grown the cache since the lookup.
func (f *Factory) cachePut(op opKind, a, b, r Node) {
	if a >= opIDMax || b >= opIDMax || r >= opIDMax {
		return
	}
	ops := *f.ops.Load()
	slot := &ops[opHash(op, a, b)&uint32(len(ops)-1)]
	if slot.Load() != 0 {
		f.opEvictions.Add(1)
	}
	slot.Store(packOp(op, a, b, r))
}

// Not returns the negation of a.
func (f *Factory) Not(a Node) Node {
	switch a {
	case False:
		return True
	case True:
		return False
	}
	if r, ok := f.cacheGet(opNot, a, 0); ok {
		return r
	}
	n := f.node(a)
	r := f.mk(n.level, f.Not(n.lo), f.Not(n.hi))
	f.cachePut(opNot, a, 0, r)
	return r
}

// And returns the conjunction of a and b.
func (f *Factory) And(a, b Node) Node { return f.apply(opAnd, a, b) }

// Or returns the disjunction of a and b.
func (f *Factory) Or(a, b Node) Node { return f.apply(opOr, a, b) }

// Xor returns the exclusive disjunction of a and b.
func (f *Factory) Xor(a, b Node) Node { return f.apply(opXor, a, b) }

// Implies returns ¬a ∨ b.
func (f *Factory) Implies(a, b Node) Node { return f.Or(f.Not(a), b) }

// Equiv returns the biconditional a ↔ b.
func (f *Factory) Equiv(a, b Node) Node { return f.Not(f.Xor(a, b)) }

// AndNot returns a ∧ ¬b, the common "trim away b" operation on presence
// conditions.
func (f *Factory) AndNot(a, b Node) Node { return f.And(a, f.Not(b)) }

func (f *Factory) apply(op opKind, a, b Node) Node {
	// Terminal cases. After these screens both operands are internal nodes
	// (ids >= 2), which cacheGet/cachePut rely on.
	switch op {
	case opAnd:
		if a == False || b == False {
			return False
		}
		if a == True {
			return b
		}
		if b == True {
			return a
		}
		if a == b {
			return a
		}
	case opOr:
		if a == True || b == True {
			return True
		}
		if a == False {
			return b
		}
		if b == False {
			return a
		}
		if a == b {
			return a
		}
	case opXor:
		if a == b {
			return False
		}
		if a == False {
			return b
		}
		if b == False {
			return a
		}
		if a == True {
			return f.Not(b)
		}
		if b == True {
			return f.Not(a)
		}
	}
	// Commutative: normalize operand order for better cache hits.
	if a > b {
		a, b = b, a
	}
	if r, ok := f.cacheGet(op, a, b); ok {
		return r
	}
	na, nb := f.node(a), f.node(b)
	var lvl int32
	var alo, ahi, blo, bhi Node
	switch {
	case na.level == nb.level:
		lvl, alo, ahi, blo, bhi = na.level, na.lo, na.hi, nb.lo, nb.hi
	case na.level < nb.level:
		lvl, alo, ahi, blo, bhi = na.level, na.lo, na.hi, b, b
	default:
		lvl, alo, ahi, blo, bhi = nb.level, a, a, nb.lo, nb.hi
	}
	r := f.mk(lvl, f.apply(op, alo, blo), f.apply(op, ahi, bhi))
	f.cachePut(op, a, b, r)
	return r
}

// Ite returns if-then-else: (c ∧ t) ∨ (¬c ∧ e).
func (f *Factory) Ite(c, t, e Node) Node {
	return f.Or(f.And(c, t), f.And(f.Not(c), e))
}

// beginScratch starts a new epoch over the stamped memo buffers, sizing
// them to the current node count. O(1) except on first use, growth, and
// epoch wrap-around. The caller holds scratchMu.
func (f *Factory) beginScratch() int {
	f.epoch++
	if f.epoch == 0 { // wrapped: stale stamps could alias; reset
		for i := range f.stamp {
			f.stamp[i] = 0
		}
		f.epoch = 1
	}
	n := f.NumNodes()
	if len(f.stamp) < n {
		f.stamp = append(f.stamp, make([]uint32, n-len(f.stamp))...)
		f.memoN = append(f.memoN, make([]Node, n-len(f.memoN))...)
		f.memoF = append(f.memoF, make([]float64, n-len(f.memoF))...)
	}
	return n
}

// Restrict returns a with the named variable fixed to val. If the variable
// has never been created, a is returned unchanged.
func (f *Factory) Restrict(a Node, name string, val bool) Node {
	f.varMu.RLock()
	lvl, ok := f.varIndex[name]
	f.varMu.RUnlock()
	if !ok {
		return a
	}
	f.scratchMu.Lock()
	defer f.scratchMu.Unlock()
	f.beginScratch()
	return f.restrict(a, int32(lvl), val)
}

// restrict memoizes on the scratch buffers; memo keys are ids of nodes
// reachable from the original a, all of which predate beginScratch, so the
// stamp buffer is never indexed out of range even though mk (here or in a
// concurrent goroutine) may allocate past it.
func (f *Factory) restrict(a Node, lvl int32, val bool) Node {
	n := f.node(a)
	if n.level > lvl {
		return a // terminal or below the variable in the order
	}
	if f.stamp[a] == f.epoch {
		return f.memoN[a]
	}
	var r Node
	if n.level == lvl {
		if val {
			r = n.hi
		} else {
			r = n.lo
		}
	} else {
		r = f.mk(n.level, f.restrict(n.lo, lvl, val), f.restrict(n.hi, lvl, val))
	}
	f.stamp[a] = f.epoch
	f.memoN[a] = r
	return r
}

// Exists existentially quantifies the named variable out of a.
func (f *Factory) Exists(a Node, name string) Node {
	return f.Or(f.Restrict(a, name, false), f.Restrict(a, name, true))
}

// SatOne returns one satisfying assignment of a, or ok = false when a is
// unsatisfiable. The map assigns only the variables along the chosen path;
// all other variables are don't-cares (Eval treats absent variables as
// false). The walk prefers the low (false) child at every decision node, so
// the witness is deterministic and enables the fewest variables the
// diagram's structure allows — the "minimal configuration" convention of
// configuration-coverage tools.
func (f *Factory) SatOne(a Node) (assign map[string]bool, ok bool) {
	if a == False {
		return nil, false
	}
	names := *f.names.Load()
	assign = make(map[string]bool)
	for a != True {
		nd := f.node(a)
		if nd.lo != False {
			assign[names[nd.level]] = false
			a = nd.lo
		} else {
			assign[names[nd.level]] = true
			a = nd.hi
		}
	}
	return assign, true
}

// IsFalse reports whether a is the unsatisfiable constant.
func (f *Factory) IsFalse(a Node) bool { return a == False }

// IsTrue reports whether a is the valid constant.
func (f *Factory) IsTrue(a Node) bool { return a == True }

// SatCount returns the number of satisfying assignments of a over all
// variables created so far, as a float64 (counts overflow int64 quickly).
func (f *Factory) SatCount(a Node) float64 {
	nvars := int32(len(*f.names.Load()))
	f.scratchMu.Lock()
	defer f.scratchMu.Unlock()
	f.beginScratch()
	return f.satCount(a, nvars) * exp2(f.levelOf(a, nvars))
}

// exp2 returns 2^k exactly (float64 arithmetic; k is a small level delta).
func exp2(k int32) float64 { return math.Ldexp(1, int(k)) }

func (f *Factory) levelOf(a Node, nvars int32) int32 {
	lvl := f.node(a).level
	if lvl == terminalLevel {
		return nvars
	}
	return lvl
}

// satCount returns satisfying assignments over variables at or below a's
// level; the caller scales for skipped variables above. Memoized on the
// epoch-stamped scratch buffers.
func (f *Factory) satCount(a Node, nvars int32) float64 {
	if a == False {
		return 0
	}
	if a == True {
		return 1
	}
	if f.stamp[a] == f.epoch {
		return f.memoF[a]
	}
	n := f.node(a)
	lo := f.satCount(n.lo, nvars) * exp2(f.levelOf(n.lo, nvars)-n.level-1)
	hi := f.satCount(n.hi, nvars) * exp2(f.levelOf(n.hi, nvars)-n.level-1)
	c := lo + hi
	f.stamp[a] = f.epoch
	f.memoF[a] = c
	return c
}

// AnySat returns one satisfying assignment of a as a map from variable name
// to value, mentioning only the variables on the chosen path. It returns nil
// and false when a is unsatisfiable.
func (f *Factory) AnySat(a Node) (map[string]bool, bool) {
	if a == False {
		return nil, false
	}
	names := *f.names.Load()
	assign := make(map[string]bool)
	for a != True {
		n := f.node(a)
		name := names[n.level]
		if n.hi != False {
			assign[name] = true
			a = n.hi
		} else {
			assign[name] = false
			a = n.lo
		}
	}
	return assign, true
}

// Support returns the sorted names of variables the function a depends on.
func (f *Factory) Support(a Node) []string {
	names := *f.names.Load()
	seen := make(map[int32]bool)
	visited := make(map[Node]bool)
	var walk func(Node)
	walk = func(n Node) {
		if n == False || n == True || visited[n] {
			return
		}
		visited[n] = true
		nd := f.node(n)
		seen[nd.level] = true
		walk(nd.lo)
		walk(nd.hi)
	}
	walk(a)
	out := make([]string, 0, len(seen))
	for lvl := range seen {
		out = append(out, names[lvl])
	}
	sort.Strings(out)
	return out
}

// String renders a as a sum-of-products formula over variable names, e.g.
// "A&!B | !A". Terminals render as "1" and "0". The rendering enumerates the
// satisfying paths of the diagram; it is meant for diagnostics and tests, not
// for minimal formulas.
func (f *Factory) String(a Node) string {
	switch a {
	case False:
		return "0"
	case True:
		return "1"
	}
	names := *f.names.Load()
	var cubes []string
	var lits []string
	var walk func(Node)
	walk = func(n Node) {
		if n == False {
			return
		}
		if n == True {
			cubes = append(cubes, strings.Join(lits, "&"))
			return
		}
		nd := f.node(n)
		lits = append(lits, "!"+names[nd.level])
		walk(nd.lo)
		lits = lits[:len(lits)-1]
		lits = append(lits, names[nd.level])
		walk(nd.hi)
		lits = lits[:len(lits)-1]
	}
	walk(a)
	if len(cubes) == 0 {
		return "0"
	}
	return strings.Join(cubes, " | ")
}

// Eval evaluates a under the given assignment; variables absent from the
// assignment default to false.
func (f *Factory) Eval(a Node, assign map[string]bool) bool {
	names := *f.names.Load()
	for a != False && a != True {
		n := f.node(a)
		if assign[names[n.level]] {
			a = n.hi
		} else {
			a = n.lo
		}
	}
	return a == True
}

// Size returns the number of nodes reachable from a, including terminals.
// This is the size of the function's diagram, as opposed to NumNodes, which
// counts every node the factory has ever allocated.
func (f *Factory) Size(a Node) int {
	visited := map[Node]bool{}
	var walk func(Node)
	walk = func(n Node) {
		if visited[n] {
			return
		}
		visited[n] = true
		if n == False || n == True {
			return
		}
		nd := f.node(n)
		walk(nd.lo)
		walk(nd.hi)
	}
	walk(a)
	return len(visited)
}

// CacheStats describes the size and effectiveness of the factory's internal
// tables.
type CacheStats struct {
	Nodes  int // allocated nodes, terminals included
	Unique int // internal (hash-consed) nodes
	Vars   int

	TableSlots int // unique-table capacity (all stripes); load = Unique/TableSlots

	OpCache     int   // live op-cache entries
	OpSlots     int   // op-cache capacity
	OpHits      int64 // op-cache hits since creation
	OpMisses    int64
	OpEvictions int64 // live entries overwritten (direct-mapped collisions)
}

// Stats returns current table sizes and cache counters, useful when tuning
// workloads. Counters are snapshots; concurrent operations may be mid-bump.
func (f *Factory) Stats() CacheStats {
	ops := *f.ops.Load()
	live := 0
	for i := range ops {
		if ops[i].Load() != 0 {
			live++
		}
	}
	slots := 0
	for i := range f.stripes {
		slots += len(*f.stripes[i].table.Load())
	}
	n := f.NumNodes()
	return CacheStats{
		Nodes:       n,
		Unique:      n - 2,
		Vars:        f.NumVars(),
		TableSlots:  slots,
		OpCache:     live,
		OpSlots:     len(ops),
		OpHits:      f.opHits.Load(),
		OpMisses:    f.opMisses.Load(),
		OpEvictions: f.opEvictions.Load(),
	}
}

// Dump writes a textual listing of the diagram rooted at a, one node per
// line, for debugging.
func (f *Factory) Dump(a Node) string {
	names := *f.names.Load()
	var b strings.Builder
	visited := make(map[Node]bool)
	var walk func(Node)
	walk = func(n Node) {
		if n == False || n == True || visited[n] {
			return
		}
		visited[n] = true
		nd := f.node(n)
		fmt.Fprintf(&b, "@%d: %s ? @%d : @%d\n", n, names[nd.level], nd.hi, nd.lo)
		walk(nd.lo)
		walk(nd.hi)
	}
	walk(a)
	return b.String()
}
