package bdd

import (
	"math/rand"
	"sync"
	"testing"
)

// formulaProg is one deterministic formula-building program: a sequence of
// operations over a fixed variable set, interpreted against any factory.
// Programs are the unit of sharing in the concurrency tests — the same
// program run on two factories (or twice on one) must produce semantically
// identical diagrams.
type formulaProg struct {
	ops []progOp
}

type progOp struct {
	kind    int // 0 and, 1 or, 2 xor, 3 not, 4 pushVar
	a, b    int // operand stack depths (from top) for binary ops
	varIdx  int
	popBoth bool
}

func genProg(r *rand.Rand, nvars, steps int) formulaProg {
	var p formulaProg
	depth := 0
	for i := 0; i < steps || depth != 1; i++ {
		if depth < 2 || (depth < 8 && r.Intn(3) == 0 && i < steps) {
			p.ops = append(p.ops, progOp{kind: 4, varIdx: r.Intn(nvars)})
			depth++
			continue
		}
		k := r.Intn(4)
		p.ops = append(p.ops, progOp{kind: k})
		if k != 3 {
			depth--
		}
	}
	return p
}

// runProg interprets a program against the production factory using
// pre-created variables vs (so no variable-order races).
func runProg(f *Factory, vs []Node, p formulaProg) Node {
	var stack []Node
	for _, op := range p.ops {
		switch op.kind {
		case 4:
			stack = append(stack, vs[op.varIdx])
		case 3:
			stack[len(stack)-1] = f.Not(stack[len(stack)-1])
		default:
			a, b := stack[len(stack)-2], stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			switch op.kind {
			case 0:
				stack[len(stack)-1] = f.And(a, b)
			case 1:
				stack[len(stack)-1] = f.Or(a, b)
			case 2:
				stack[len(stack)-1] = f.Xor(a, b)
			}
		}
	}
	return stack[0]
}

// runProgRef interprets the same program against the naive reference factory.
func runProgRef(rf *refFactory, vs []Node, p formulaProg) Node {
	var stack []Node
	for _, op := range p.ops {
		switch op.kind {
		case 4:
			stack = append(stack, vs[op.varIdx])
		case 3:
			stack[len(stack)-1] = rf.not(stack[len(stack)-1])
		default:
			a, b := stack[len(stack)-2], stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			switch op.kind {
			case 0:
				stack[len(stack)-1] = rf.apply(opAnd, a, b)
			case 1:
				stack[len(stack)-1] = rf.apply(opOr, a, b)
			case 2:
				stack[len(stack)-1] = rf.apply(opXor, a, b)
			}
		}
	}
	return stack[0]
}

// TestConcurrentAgreesWithReference is the sharded-factory soundness
// property: N goroutines concurrently building overlapping random formulas
// on one shared factory must agree with the single-threaded naive reference
// on (1) the rendered structure and SatCount of every result, (2) canonical
// handle identity — programs the reference proves semantically equal must
// return the *same* Node id from the shared factory no matter which
// goroutines ran them — and (3) the total unique node count: concurrent
// hash-consing may never duplicate a triple or invent nodes the reference
// does not have.
func TestConcurrentAgreesWithReference(t *testing.T) {
	const nvars, nprogs = 8, 96
	names := []string{"A", "B", "C", "D", "E", "F", "G", "H"}
	r := rand.New(rand.NewSource(1234))
	progs := make([]formulaProg, nprogs)
	for i := range progs {
		progs[i] = genProg(r, nvars, 6+r.Intn(20))
	}
	// Duplicate a third of the programs so goroutines provably overlap.
	for i := 0; i < nprogs/3; i++ {
		progs[nprogs-1-i] = progs[i]
	}

	// Single-threaded oracle runs.
	rf := newRefFactory()
	rvs := make([]Node, nvars)
	for i, n := range names {
		rvs[i] = rf.variable(n)
	}
	wantStr := make([]string, nprogs)
	wantCount := make([]float64, nprogs)
	wantRef := make([]Node, nprogs)
	for i, p := range progs {
		w := runProgRef(rf, rvs, p)
		wantRef[i] = w
		wantStr[i] = refString(rf, w)
		wantCount[i] = rf.fullSatCount(w)
	}

	for _, workers := range []int{2, 4, 8} {
		f := NewFactory()
		vs := make([]Node, nvars)
		for i, n := range names {
			vs[i] = f.Var(n)
		}
		got := make([]Node, nprogs)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < nprogs; i += workers {
					got[i] = runProg(f, vs, progs[i])
				}
			}(w)
		}
		wg.Wait()

		for i := range progs {
			if gs := f.String(got[i]); gs != wantStr[i] {
				t.Fatalf("workers=%d prog %d: structure %q, reference %q", workers, i, gs, wantStr[i])
			}
			if gc := f.SatCount(got[i]); gc != wantCount[i] {
				t.Fatalf("workers=%d prog %d: SatCount %g, reference %g", workers, i, gc, wantCount[i])
			}
		}
		// Canonicity transfer across goroutines: reference-equal programs
		// must share one id in the concurrent factory, distinct ones must not.
		for i := 0; i < nprogs; i++ {
			for j := i + 1; j < nprogs; j++ {
				if (wantRef[i] == wantRef[j]) != (got[i] == got[j]) {
					t.Fatalf("workers=%d: canonicity divergence between progs %d and %d (ref %v/%v, got %v/%v)",
						workers, i, j, wantRef[i], wantRef[j], got[i], got[j])
				}
			}
		}
		// The demanded triple set is interleaving-independent, so the node
		// count must match the reference exactly even though id numbering
		// may differ run to run.
		if f.NumNodes() != len(rf.nodes) {
			t.Fatalf("workers=%d: %d nodes, reference has %d", workers, f.NumNodes(), len(rf.nodes))
		}
	}
}

// TestConcurrentSingleStripeContention funnels every insert into one hash
// stripe: the test precomputes which (level, lo, hi) triples land in a
// chosen stripe and has all goroutines allocate exactly those, repeatedly,
// through mk. This maximizes lock contention and forces that stripe to grow
// several times mid-race; every goroutine must still observe one canonical
// id per triple.
func TestConcurrentSingleStripeContention(t *testing.T) {
	f := NewFactory()
	// Candidate triples (lvl, False, True) are structurally var roots; mk
	// accepts them without names existing (String/VarName are never called).
	const wantStripe = 7
	var levels []int32
	for lvl := int32(0); len(levels) < 192; lvl++ {
		if hashTriple(uint32(lvl), uint32(False), uint32(True))&stripeMask == wantStripe {
			levels = append(levels, lvl)
		}
	}

	const workers = 8
	ids := make([][]Node, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			ids[w] = make([]Node, len(levels))
			for rep := 0; rep < 50; rep++ {
				for _, i := range r.Perm(len(levels)) {
					id := f.mk(levels[i], False, True)
					if ids[w][i] == 0 {
						ids[w][i] = id
					} else if ids[w][i] != id {
						t.Errorf("worker %d: triple %d changed id %d -> %d", w, i, ids[w][i], id)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for w := 1; w < workers; w++ {
		for i := range levels {
			if ids[0][i] != ids[w][i] {
				t.Fatalf("triple %d: worker 0 got %d, worker %d got %d", i, ids[0][i], w, ids[w][i])
			}
		}
	}
	if got := f.NumNodes(); got != 2+len(levels) {
		t.Fatalf("allocated %d nodes, want %d (duplicate insert under contention)", got, 2+len(levels))
	}
	// The stripe grew across several thresholds while contended; canonical
	// lookups must still hit.
	st := &f.stripes[wantStripe]
	if st.count != len(levels) {
		t.Fatalf("stripe count %d, want %d", st.count, len(levels))
	}
	if slots := len(*st.table.Load()); slots <= initialStripeSlots {
		t.Fatalf("stripe never grew: %d slots", slots)
	}
}

// TestConcurrentVarInterning hammers Var with a small name set from many
// goroutines: interning must return one level per name and the level order
// must be a permutation of 0..n-1 with no gaps or duplicates.
func TestConcurrentVarInterning(t *testing.T) {
	f := NewFactory()
	names := []string{"V0", "V1", "V2", "V3", "V4", "V5"}
	const workers = 8
	got := make([][]Node, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(100 + w)))
			got[w] = make([]Node, len(names))
			for rep := 0; rep < 200; rep++ {
				i := r.Intn(len(names))
				n := f.Var(names[i])
				if got[w][i] == 0 {
					got[w][i] = n
				} else if got[w][i] != n {
					t.Errorf("worker %d: var %s changed node", w, names[i])
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if f.NumVars() != len(names) {
		t.Fatalf("NumVars = %d, want %d", f.NumVars(), len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if !f.HasVar(n) {
			t.Fatalf("variable %s lost", n)
		}
		seen[n] = true
	}
	if len(seen) != len(names) {
		t.Fatalf("duplicate levels: %v", seen)
	}
}
