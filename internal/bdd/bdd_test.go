package bdd

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestTerminals(t *testing.T) {
	f := NewFactory()
	if !f.IsFalse(False) || f.IsTrue(False) {
		t.Error("False terminal misclassified")
	}
	if !f.IsTrue(True) || f.IsFalse(True) {
		t.Error("True terminal misclassified")
	}
	if f.NumNodes() != 2 {
		t.Errorf("fresh factory has %d nodes, want 2", f.NumNodes())
	}
}

func TestVarCanonical(t *testing.T) {
	f := NewFactory()
	a1 := f.Var("A")
	a2 := f.Var("A")
	if a1 != a2 {
		t.Errorf("Var(A) not canonical: %d vs %d", a1, a2)
	}
	b := f.Var("B")
	if a1 == b {
		t.Error("distinct variables share a node")
	}
	if f.NumVars() != 2 {
		t.Errorf("NumVars = %d, want 2", f.NumVars())
	}
	if got := f.VarName(a1); got != "A" {
		t.Errorf("VarName = %q, want A", got)
	}
}

func TestBasicIdentities(t *testing.T) {
	f := NewFactory()
	a := f.Var("A")
	b := f.Var("B")

	cases := []struct {
		name string
		got  Node
		want Node
	}{
		{"A&!A", f.And(a, f.Not(a)), False},
		{"A|!A", f.Or(a, f.Not(a)), True},
		{"A&A", f.And(a, a), a},
		{"A|A", f.Or(a, a), a},
		{"A&1", f.And(a, True), a},
		{"A&0", f.And(a, False), False},
		{"A|0", f.Or(a, False), a},
		{"A|1", f.Or(a, True), True},
		{"!!A", f.Not(f.Not(a)), a},
		{"A^A", f.Xor(a, a), False},
		{"A^0", f.Xor(a, False), a},
		{"A^1", f.Xor(a, True), f.Not(a)},
		{"A->A", f.Implies(a, a), True},
		{"A<->A", f.Equiv(a, a), True},
		{"A&!B then &B", f.And(f.AndNot(a, b), b), False},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s: got node %d (%s), want node %d (%s)",
				c.name, c.got, f.String(c.got), c.want, f.String(c.want))
		}
	}
}

func TestCanonicity(t *testing.T) {
	f := NewFactory()
	a := f.Var("A")
	b := f.Var("B")
	c := f.Var("C")

	// Distribution: A & (B | C) == (A & B) | (A & C)
	lhs := f.And(a, f.Or(b, c))
	rhs := f.Or(f.And(a, b), f.And(a, c))
	if lhs != rhs {
		t.Errorf("distribution not canonical: %s vs %s", f.String(lhs), f.String(rhs))
	}

	// De Morgan: !(A & B) == !A | !B
	lhs = f.Not(f.And(a, b))
	rhs = f.Or(f.Not(a), f.Not(b))
	if lhs != rhs {
		t.Errorf("De Morgan not canonical: %s vs %s", f.String(lhs), f.String(rhs))
	}

	// Commutativity under different construction orders.
	lhs = f.And(f.Or(c, a), b)
	rhs = f.And(b, f.Or(a, c))
	if lhs != rhs {
		t.Error("commuted construction yields different nodes")
	}
}

func TestIte(t *testing.T) {
	f := NewFactory()
	a, b, c := f.Var("A"), f.Var("B"), f.Var("C")
	ite := f.Ite(a, b, c)
	want := f.Or(f.And(a, b), f.And(f.Not(a), c))
	if ite != want {
		t.Errorf("Ite mismatch: %s vs %s", f.String(ite), f.String(want))
	}
	if f.Ite(True, b, c) != b || f.Ite(False, b, c) != c {
		t.Error("Ite with constant condition")
	}
}

func TestRestrict(t *testing.T) {
	f := NewFactory()
	a, b := f.Var("A"), f.Var("B")
	g := f.Or(f.And(a, b), f.Not(a)) // A&B | !A

	if got := f.Restrict(g, "A", true); got != b {
		t.Errorf("g|A=1 should be B, got %s", f.String(got))
	}
	if got := f.Restrict(g, "A", false); got != True {
		t.Errorf("g|A=0 should be 1, got %s", f.String(got))
	}
	if got := f.Restrict(g, "Z", true); got != g {
		t.Error("restricting an unknown variable changed the function")
	}
}

func TestExists(t *testing.T) {
	f := NewFactory()
	a, b := f.Var("A"), f.Var("B")
	g := f.And(a, b)
	if got := f.Exists(g, "A"); got != b {
		t.Errorf("∃A. A&B should be B, got %s", f.String(got))
	}
	if got := f.Exists(a, "A"); got != True {
		t.Errorf("∃A. A should be 1, got %s", f.String(got))
	}
}

func TestSatCount(t *testing.T) {
	f := NewFactory()
	a, b, c := f.Var("A"), f.Var("B"), f.Var("C")

	if n := f.SatCount(True); n != 8 {
		t.Errorf("SatCount(1) over 3 vars = %v, want 8", n)
	}
	if n := f.SatCount(False); n != 0 {
		t.Errorf("SatCount(0) = %v, want 0", n)
	}
	if n := f.SatCount(a); n != 4 {
		t.Errorf("SatCount(A) = %v, want 4", n)
	}
	if n := f.SatCount(f.And(a, b)); n != 2 {
		t.Errorf("SatCount(A&B) = %v, want 2", n)
	}
	if n := f.SatCount(f.Or(f.And(a, b), c)); n != 5 {
		t.Errorf("SatCount(A&B|C) = %v, want 5", n)
	}
}

func TestAnySat(t *testing.T) {
	f := NewFactory()
	a, b := f.Var("A"), f.Var("B")
	g := f.And(a, f.Not(b))
	assign, ok := f.AnySat(g)
	if !ok {
		t.Fatal("A&!B should be satisfiable")
	}
	if !f.Eval(g, assign) {
		t.Errorf("AnySat assignment %v does not satisfy the function", assign)
	}
	if _, ok := f.AnySat(False); ok {
		t.Error("False should not be satisfiable")
	}
}

func TestSupport(t *testing.T) {
	f := NewFactory()
	a, b := f.Var("A"), f.Var("B")
	f.Var("C") // created but unused
	g := f.Or(a, b)
	sup := f.Support(g)
	if len(sup) != 2 || sup[0] != "A" || sup[1] != "B" {
		t.Errorf("Support = %v, want [A B]", sup)
	}
	if len(f.Support(True)) != 0 {
		t.Error("terminal has nonempty support")
	}
}

func TestEval(t *testing.T) {
	f := NewFactory()
	a, b := f.Var("A"), f.Var("B")
	g := f.Xor(a, b)
	cases := []struct {
		m    map[string]bool
		want bool
	}{
		{map[string]bool{"A": true, "B": false}, true},
		{map[string]bool{"A": false, "B": true}, true},
		{map[string]bool{"A": true, "B": true}, false},
		{map[string]bool{}, false},
	}
	for _, c := range cases {
		if got := f.Eval(g, c.m); got != c.want {
			t.Errorf("Eval(A^B, %v) = %v, want %v", c.m, got, c.want)
		}
	}
}

func TestString(t *testing.T) {
	f := NewFactory()
	a := f.Var("A")
	if s := f.String(True); s != "1" {
		t.Errorf("String(1) = %q", s)
	}
	if s := f.String(False); s != "0" {
		t.Errorf("String(0) = %q", s)
	}
	if s := f.String(a); s != "A" {
		t.Errorf("String(A) = %q", s)
	}
	if s := f.String(f.Not(a)); s != "!A" {
		t.Errorf("String(!A) = %q", s)
	}
}

func TestHasVarAndStats(t *testing.T) {
	f := NewFactory()
	f.Var("A")
	if !f.HasVar("A") || f.HasVar("B") {
		t.Error("HasVar wrong")
	}
	st := f.Stats()
	if st.Vars != 1 || st.Nodes < 3 {
		t.Errorf("Stats = %+v", st)
	}
}

// randomExpr builds a random boolean function over nvars variables both as a
// BDD and as an evaluable closure, for cross-checking.
func randomExpr(f *Factory, r *rand.Rand, vars []string, depth int) (Node, func(map[string]bool) bool) {
	if depth == 0 || r.Intn(4) == 0 {
		switch r.Intn(6) {
		case 0:
			return True, func(map[string]bool) bool { return true }
		case 1:
			return False, func(map[string]bool) bool { return false }
		default:
			name := vars[r.Intn(len(vars))]
			return f.Var(name), func(m map[string]bool) bool { return m[name] }
		}
	}
	l, lf := randomExpr(f, r, vars, depth-1)
	rr, rf := randomExpr(f, r, vars, depth-1)
	switch r.Intn(4) {
	case 0:
		return f.And(l, rr), func(m map[string]bool) bool { return lf(m) && rf(m) }
	case 1:
		return f.Or(l, rr), func(m map[string]bool) bool { return lf(m) || rf(m) }
	case 2:
		return f.Xor(l, rr), func(m map[string]bool) bool { return lf(m) != rf(m) }
	default:
		return f.Not(l), func(m map[string]bool) bool { return !lf(m) }
	}
}

// TestRandomAgainstTruthTable cross-checks BDD construction against direct
// evaluation on all 2^n assignments for random formulas.
func TestRandomAgainstTruthTable(t *testing.T) {
	vars := []string{"A", "B", "C", "D"}
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		f := NewFactory()
		for _, v := range vars {
			f.Var(v)
		}
		n, eval := randomExpr(f, r, vars, 5)
		for bits := 0; bits < 1<<len(vars); bits++ {
			m := make(map[string]bool)
			for i, v := range vars {
				m[v] = bits&(1<<i) != 0
			}
			if f.Eval(n, m) != eval(m) {
				t.Fatalf("trial %d: BDD and direct evaluation disagree on %v\n%s",
					trial, m, f.Dump(n))
			}
		}
	}
}

// TestQuickCanonicalEquivalence: for random pairs of formulas, semantic
// equivalence (agreement on all assignments) must coincide with node
// identity. This is the canonicity property SuperC relies on.
func TestQuickCanonicalEquivalence(t *testing.T) {
	vars := []string{"A", "B", "C"}
	r := rand.New(rand.NewSource(7))
	check := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		f := NewFactory()
		for _, v := range vars {
			f.Var(v)
		}
		n1, e1 := randomExpr(f, rr, vars, 4)
		n2, e2 := randomExpr(f, rr, vars, 4)
		equal := true
		for bits := 0; bits < 1<<len(vars); bits++ {
			m := make(map[string]bool)
			for i, v := range vars {
				m[v] = bits&(1<<i) != 0
			}
			if e1(m) != e2(m) {
				equal = false
				break
			}
		}
		return equal == (n1 == n2)
	}
	cfg := &quick.Config{
		MaxCount: 300,
		Values: func(vals []reflect.Value, _ *rand.Rand) {
			vals[0] = reflect.ValueOf(r.Int63())
		},
	}
	if err := quick.Check(check, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickSatCountMatchesEnumeration checks SatCount against brute-force
// enumeration for random functions.
func TestQuickSatCountMatchesEnumeration(t *testing.T) {
	vars := []string{"A", "B", "C", "D"}
	r := rand.New(rand.NewSource(99))
	check := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		f := NewFactory()
		for _, v := range vars {
			f.Var(v)
		}
		n, eval := randomExpr(f, rr, vars, 4)
		count := 0
		for bits := 0; bits < 1<<len(vars); bits++ {
			m := make(map[string]bool)
			for i, v := range vars {
				m[v] = bits&(1<<i) != 0
			}
			if eval(m) {
				count++
			}
		}
		return f.SatCount(n) == float64(count)
	}
	cfg := &quick.Config{
		MaxCount: 200,
		Values: func(vals []reflect.Value, _ *rand.Rand) {
			vals[0] = reflect.ValueOf(r.Int63())
		},
	}
	if err := quick.Check(check, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickRestrictShannon checks the Shannon expansion:
// f == (x & f|x=1) | (!x & f|x=0).
func TestQuickRestrictShannon(t *testing.T) {
	vars := []string{"A", "B", "C"}
	r := rand.New(rand.NewSource(5))
	check := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		f := NewFactory()
		for _, v := range vars {
			f.Var(v)
		}
		n, _ := randomExpr(f, rr, vars, 4)
		for _, v := range vars {
			x := f.Var(v)
			expand := f.Or(
				f.And(x, f.Restrict(n, v, true)),
				f.And(f.Not(x), f.Restrict(n, v, false)))
			if expand != n {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 200,
		Values: func(vals []reflect.Value, _ *rand.Rand) {
			vals[0] = reflect.ValueOf(r.Int63())
		},
	}
	if err := quick.Check(check, cfg); err != nil {
		t.Error(err)
	}
}

func TestLargeConjunctionChain(t *testing.T) {
	// The presence-condition pattern from the paper's Figure 6 follow-set:
	// !b2 & !b5 & !b8 & ... must stay linear in BDD size.
	f := NewFactory()
	acc := True
	for i := 0; i < 200; i++ {
		acc = f.And(acc, f.Not(f.Var(varName(i))))
	}
	if acc == False {
		t.Fatal("conjunction of distinct negated vars is satisfiable")
	}
	if sz := f.Size(acc); sz > 200+2 {
		t.Errorf("conjunction chain blew up: diagram has %d nodes, want <= 202", sz)
	}
	// Disjoining back each variable eliminates it, as in subparser merging.
	merged := acc
	for i := 0; i < 200; i++ {
		rest := f.Exists(merged, varName(i))
		v := f.Var(varName(i))
		merged = f.Or(f.And(merged, f.Not(v)), f.And(rest, v))
	}
	if merged != True {
		t.Errorf("re-disjoining all branches should yield 1, got %s", f.String(merged))
	}
}

func varName(i int) string {
	return "CONFIG_" + string(rune('A'+i%26)) + string(rune('0'+i/26%10)) + string(rune('0'+i/260))
}

func BenchmarkAndChain(b *testing.B) {
	b.ReportAllocs()
	f := NewFactory()
	vars := make([]Node, 64)
	for i := range vars {
		vars[i] = f.Var(varName(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc := True
		for _, v := range vars {
			acc = f.And(acc, f.Not(v))
		}
	}
}

func BenchmarkMixedOps(b *testing.B) {
	b.ReportAllocs()
	f := NewFactory()
	vars := make([]Node, 32)
	for i := range vars {
		vars[i] = f.Var(varName(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc := vars[i%32]
		for j := 0; j < 16; j++ {
			acc = f.Or(f.And(acc, vars[(i+j)%32]), f.Not(vars[(i+2*j)%32]))
		}
	}
}

func TestDump(t *testing.T) {
	f := NewFactory()
	a, b := f.Var("A"), f.Var("B")
	out := f.Dump(f.And(a, b))
	if !strings.Contains(out, "A") || !strings.Contains(out, "B") {
		t.Errorf("Dump = %q", out)
	}
	if f.Dump(True) != "" {
		t.Error("terminal dump should be empty")
	}
}
