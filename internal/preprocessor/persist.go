package preprocessor

// This file serializes the header cache's opaque Level-2 payload for the
// on-disk artifact store (internal/store). The in-memory payload
// (headerPayload) is built from unexported types and pointer-shared
// condition formulas; the wire form flattens every formula into one indexed
// node table per payload so the DAG sharing survives the round trip (a gob
// of the raw pointer graph would expand shared subformulas into trees).
//
// Only portable entries are ever encoded (hcache.Entry.Portable): their
// fingerprints contain no per-process canonical ids, so a different process
// may safely compare and replay them. The payload itself is always process
// independent — conditions travel as cond.Formula values, and replay imports
// them into the consuming unit's own space.

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"repro/internal/cond"
	"repro/internal/hcache"
	"repro/internal/token"
)

// wirePayload is the persisted form of headerPayload.
type wirePayload struct {
	Nodes []wireFNode // formula DAG table shared by every condition below
	Segs  []wireSeg
	Ops   []wireOp
	Diags []Diagnostic
	Stats UnitStats
}

// wireFNode is one formula node; Args index earlier entries of Nodes.
type wireFNode struct {
	Op   uint8
	Name string
	Args []int32
}

// wireSeg mirrors xSeg: a token, or a conditional with branches.
type wireSeg struct {
	Tok      *token.Token
	IsCond   bool
	Branches []wireBranch
}

type wireBranch struct {
	Cond int32 // index into wirePayload.Nodes
	Segs []wireSeg
}

// wireOp mirrors replayOp.
type wireOp struct {
	Kind  uint8
	Name  string
	Def   *MacroDef
	Cond  int32 // index into wirePayload.Nodes; -1 when the op carries none
	Path  string
	Guard string
}

// formulaTable flattens formulas into an indexed node list, memoizing on
// pointer identity so shared subformulas encode once.
type formulaTable struct {
	nodes []wireFNode
	memo  map[*cond.Formula]int32
}

func (t *formulaTable) add(f *cond.Formula) int32 {
	if f == nil {
		return -1
	}
	if i, ok := t.memo[f]; ok {
		return i
	}
	args := make([]int32, len(f.Args))
	for i, a := range f.Args {
		args[i] = t.add(a)
	}
	idx := int32(len(t.nodes))
	t.nodes = append(t.nodes, wireFNode{Op: uint8(f.Op), Name: f.Name, Args: args})
	t.memo[f] = idx
	return idx
}

// rebuild converts a node table back into formulas, restoring sharing.
func rebuildFormulas(nodes []wireFNode) ([]*cond.Formula, error) {
	out := make([]*cond.Formula, len(nodes))
	for i, n := range nodes {
		f := &cond.Formula{Op: cond.FOp(n.Op), Name: n.Name}
		if len(n.Args) > 0 {
			f.Args = make([]*cond.Formula, len(n.Args))
			for j, a := range n.Args {
				if a < 0 || int(a) >= i {
					return nil, fmt.Errorf("preprocessor: formula arg %d out of range at node %d", a, i)
				}
				f.Args[j] = out[a]
			}
		}
		out[i] = f
	}
	return out, nil
}

func formulaAt(table []*cond.Formula, i int32) (*cond.Formula, error) {
	if i == -1 {
		return nil, nil
	}
	if i < 0 || int(i) >= len(table) {
		return nil, fmt.Errorf("preprocessor: formula index %d out of range", i)
	}
	return table[i], nil
}

func exportWireSegs(t *formulaTable, segs []xSeg) []wireSeg {
	out := make([]wireSeg, len(segs))
	for i, s := range segs {
		if s.tok != nil {
			out[i] = wireSeg{Tok: s.tok}
			continue
		}
		ws := wireSeg{IsCond: true, Branches: make([]wireBranch, len(s.cnd.branches))}
		for j, br := range s.cnd.branches {
			ws.Branches[j] = wireBranch{Cond: t.add(br.cond), Segs: exportWireSegs(t, br.segs)}
		}
		out[i] = ws
	}
	return out
}

func importWireSegs(table []*cond.Formula, segs []wireSeg) ([]xSeg, error) {
	out := make([]xSeg, len(segs))
	for i, s := range segs {
		if !s.IsCond {
			if s.Tok == nil {
				return nil, fmt.Errorf("preprocessor: wire segment %d has neither token nor conditional", i)
			}
			out[i] = xSeg{tok: s.Tok}
			continue
		}
		xc := &xCond{branches: make([]xBranch, len(s.Branches))}
		for j, br := range s.Branches {
			f, err := formulaAt(table, br.Cond)
			if err != nil {
				return nil, err
			}
			inner, err := importWireSegs(table, br.Segs)
			if err != nil {
				return nil, err
			}
			xc.branches[j] = xBranch{cond: f, segs: inner}
		}
		out[i] = xSeg{cnd: xc}
	}
	return out, nil
}

// payloadCodec implements hcache.PayloadCodec over the wire form.
type payloadCodec struct{}

// PayloadCodec returns the codec that serializes header-cache payloads for a
// durable backing store (store.HeaderBacking wires it up).
func PayloadCodec() hcache.PayloadCodec { return payloadCodec{} }

func (payloadCodec) EncodePayload(v any) ([]byte, error) {
	pl, ok := v.(*headerPayload)
	if !ok {
		return nil, fmt.Errorf("preprocessor: unexpected payload type %T", v)
	}
	t := &formulaTable{memo: make(map[*cond.Formula]int32)}
	w := wirePayload{
		Segs:  exportWireSegs(t, pl.segs),
		Ops:   make([]wireOp, len(pl.ops)),
		Diags: pl.diags,
		Stats: pl.stats,
	}
	for i, op := range pl.ops {
		w.Ops[i] = wireOp{
			Kind:  uint8(op.kind),
			Name:  op.name,
			Def:   op.def,
			Cond:  t.add(op.cond),
			Path:  op.path,
			Guard: op.guard,
		}
	}
	w.Nodes = t.nodes
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&w); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func (payloadCodec) DecodePayload(data []byte) (any, error) {
	var w wirePayload
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return nil, err
	}
	table, err := rebuildFormulas(w.Nodes)
	if err != nil {
		return nil, err
	}
	segs, err := importWireSegs(table, w.Segs)
	if err != nil {
		return nil, err
	}
	pl := &headerPayload{
		segs:  segs,
		diags: w.Diags,
		stats: w.Stats,
		ops:   make([]replayOp, len(w.Ops)),
	}
	for i, op := range w.Ops {
		f, err := formulaAt(table, op.Cond)
		if err != nil {
			return nil, err
		}
		pl.ops[i] = replayOp{
			kind:  opKind(op.Kind),
			name:  op.Name,
			def:   op.Def,
			cond:  f,
			path:  op.Path,
			guard: op.Guard,
		}
	}
	return pl, nil
}
