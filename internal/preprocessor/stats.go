package preprocessor

import "time"

// UnitStats instruments one compilation unit's preprocessing, feeding the
// paper's Table 3 ("a tool's view of preprocessor usage"). Counters name the
// same phenomena as the table's rows.
type UnitStats struct {
	File   string
	Bytes  int // total bytes read (C file plus the closure of headers)
	Tokens int // ordinary tokens in the preprocessed forest
	// LexTime is the portion of preprocessing spent in the lexer, for the
	// Figure 10 stage breakdown.
	LexTime time.Duration

	// Directives
	Directives        int // total directive lines processed
	MacroDefinitions  int // #define directives
	DefsInConditional int // #defines nested inside static conditionals
	Redefinitions     int // #defines that trimmed existing entries
	Undefs            int // #undef directives

	// Macro invocations
	Invocations        int // macro expansions performed
	NestedInvocations  int // expansions of tokens that were themselves produced by expansion
	TrimmedInvocations int // uses of multiply-defined macros (infeasible defs trimmed)
	HoistedInvocations int // function-like invocations hoisted around conditionals
	BuiltinUses        int // built-in macro expansions

	// Operators
	TokenPastings    int // ## applications
	HoistedPastings  int // pastings that required hoisting
	Stringifications int // # applications
	// (hoisted stringifications are included in HoistedPastings when both
	// occur; tracked separately below for fidelity)
	HoistedStringifications int

	// Includes
	Includes          int // #include directives resolved
	ComputedIncludes  int // includes whose file name needed macro expansion
	HoistedIncludes   int // computed includes hoisted over conditionals
	ReincludedHeaders int // headers included more than once (guard not yet true)
	GuardSkips        int // includes skipped because the guard was defined

	// Conditionals
	Conditionals    int // #if/#ifdef/#ifndef directives
	MaxCondDepth    int // deepest conditional nesting
	NonBooleanExprs int // conditional expressions with opaque arithmetic subterms

	// Other directives
	ErrorDirectives   int
	WarningDirectives int
	PragmaDirectives  int
	LineDirectives    int

	// Safety valves
	HoistOverflows int // operations left unexpanded due to the hoist limit
}

// Add accumulates o into s (for corpus-level aggregation).
func (s *UnitStats) Add(o UnitStats) {
	s.Bytes += o.Bytes
	s.Tokens += o.Tokens
	s.LexTime += o.LexTime
	s.Directives += o.Directives
	s.MacroDefinitions += o.MacroDefinitions
	s.DefsInConditional += o.DefsInConditional
	s.Redefinitions += o.Redefinitions
	s.Undefs += o.Undefs
	s.Invocations += o.Invocations
	s.NestedInvocations += o.NestedInvocations
	s.TrimmedInvocations += o.TrimmedInvocations
	s.HoistedInvocations += o.HoistedInvocations
	s.BuiltinUses += o.BuiltinUses
	s.TokenPastings += o.TokenPastings
	s.HoistedPastings += o.HoistedPastings
	s.Stringifications += o.Stringifications
	s.HoistedStringifications += o.HoistedStringifications
	s.Includes += o.Includes
	s.ComputedIncludes += o.ComputedIncludes
	s.HoistedIncludes += o.HoistedIncludes
	s.ReincludedHeaders += o.ReincludedHeaders
	s.GuardSkips += o.GuardSkips
	s.Conditionals += o.Conditionals
	if o.MaxCondDepth > s.MaxCondDepth {
		s.MaxCondDepth = o.MaxCondDepth
	}
	s.NonBooleanExprs += o.NonBooleanExprs
	s.ErrorDirectives += o.ErrorDirectives
	s.WarningDirectives += o.WarningDirectives
	s.PragmaDirectives += o.PragmaDirectives
	s.LineDirectives += o.LineDirectives
	s.HoistOverflows += o.HoistOverflows
}
