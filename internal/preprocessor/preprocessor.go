package preprocessor

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/cexpr"
	"repro/internal/cond"
	"repro/internal/guard"
	"repro/internal/guard/faultinject"
	"repro/internal/hcache"
	"repro/internal/lexer"
	"repro/internal/token"
)

// Options configures a Preprocessor.
type Options struct {
	Space        *cond.Space       // required
	FS           FileSystem        // required
	IncludePaths []string          // directories searched for includes
	Builtins     map[string]string // name -> body; nil means DefaultBuiltins
	// SingleConfig selects single-configuration ("gcc-like") mode: static
	// conditionals are evaluated concretely against the macro table and only
	// one branch survives; the output contains no conditionals. This is the
	// paper's §6.3 performance baseline.
	SingleConfig bool
	// MaxIncludeDepth bounds include recursion (default 128).
	MaxIncludeDepth int
	// HeaderCache, when non-nil, shares lexed and preprocessed header
	// results across units (and across Preprocessors, including concurrent
	// ones — the cache is concurrency-safe even though a Preprocessor is
	// not). Ignored in single-configuration mode, whose concrete conditional
	// evaluation does not fit the cache's fingerprint model.
	HeaderCache *hcache.Cache
	// Budget, when non-nil, governs the unit's resource consumption (see
	// internal/guard). On trip the preprocessor stops early and returns the
	// partial forest with a budget diagnostic; it never errors or hangs.
	Budget *guard.Budget
	// Stream selects streaming output: the unit's top level is packed into
	// Unit.Chunks (dense token runs plus materialized conditionals) instead
	// of the classic Unit.Segments slab. The two forms carry identical
	// content — EnsureSegments converts back on demand — but the chunk form
	// lets the FMLR engine consume True-condition tokens without ever
	// materializing per-token segments or forest elements.
	Stream bool
}

// Diagnostic is a preprocessing error or warning.
type Diagnostic struct {
	Tok     token.Token
	Msg     string
	Warning bool
}

func (d Diagnostic) String() string {
	kind := "error"
	if d.Warning {
		kind = "warning"
	}
	return fmt.Sprintf("%s: %s: %s", d.Tok.Pos(), kind, d.Msg)
}

// CondRecord is a condition-carrying observation the preprocessor makes for
// the analysis passes: a directive position, the presence condition under
// which the observation holds, and a short message. Unlike Diagnostic it is
// not itself an error — the analysis framework decides what to report and
// attaches SAT-checked witnesses.
type CondRecord struct {
	Tok  token.Token
	Cond cond.Cond
	Msg  string
}

// Unit is the result of preprocessing one compilation unit: the token forest
// with static conditionals intact, per-unit statistics, and diagnostics.
type Unit struct {
	File     string
	Segments []Segment
	// Chunks is the streaming form of the unit's top level (Options.Stream):
	// dense True-condition token runs interleaved with materialized
	// conditionals. Non-nil exactly when the unit was preprocessed in
	// streaming mode; Segments is then nil until EnsureSegments materializes
	// it on demand.
	Chunks []Chunk
	Stats  UnitStats
	Diags  []Diagnostic

	// Analysis records, consumed by internal/analysis passes.
	Errors       []CondRecord // #error directives with their reachability conditions
	DeadBranches []CondRecord // conditional branches infeasible in their nesting context
	MacroRedefs  []CondRecord // macro redefinitions overlapping an earlier definition (Msg = name)
	Unguarded    []string     // headers included without a recognizable include guard, sorted
}

// Preprocessor is SuperC's configuration-preserving preprocessor. A
// Preprocessor may process several units; the macro table persists across
// them only if Reset is not called (units normally get a fresh table, as
// each compilation unit is independent).
type Preprocessor struct {
	space        *cond.Space
	fs           FileSystem
	includePaths []string
	builtins     map[string]string
	builtinNames map[string]bool
	singleConfig bool
	maxInclude   int
	stream       bool

	macros       *MacroTable
	stats        *UnitStats
	diags        []Diagnostic
	includeDepth int
	condDepth    int
	guardOf      map[string]string // file -> guard macro name ("" = none)
	timesInc     map[string]int    // file -> times included
	counter      int               // __COUNTER__ state
	errRecs      []CondRecord      // #error observations for the analysis passes
	deadRecs     []CondRecord      // context-infeasible branch observations

	// cw, when non-nil, is the active unit's chunk writer: the root-level
	// output frame routes its segments here instead of accumulating a
	// segment slab (streaming mode). Nil outside PreprocessKeepTable and in
	// classic mode.
	cw *chunkWriter

	// budget is the unit's resource governor (nil: ungoverned).
	budget *guard.Budget

	// Cross-unit header cache state (nil/empty when disabled).
	hcache    *hcache.Cache
	cfgKey    string       // configuration fingerprint mixed into cache keys
	recorders []*headerRec // active recordings, innermost last
	exporter  *cond.Exporter
	importer  *cond.Importer
}

// nextCounter returns successive __COUNTER__ values. The counter is unit-
// global state the header-cache fingerprint cannot capture, so any use
// poisons active recordings.
func (p *Preprocessor) nextCounter() int {
	p.poisonRecorders()
	v := p.counter
	p.counter++
	return v
}

// New returns a preprocessor with a fresh macro table seeded with built-ins.
func New(opts Options) *Preprocessor {
	if opts.Space == nil {
		panic("preprocessor: Options.Space is required")
	}
	if opts.FS == nil {
		panic("preprocessor: Options.FS is required")
	}
	builtins := opts.Builtins
	if builtins == nil {
		builtins = DefaultBuiltins
	}
	maxInc := opts.MaxIncludeDepth
	if maxInc == 0 {
		maxInc = 128
	}
	p := &Preprocessor{
		space:        opts.Space,
		fs:           opts.FS,
		includePaths: opts.IncludePaths,
		builtins:     builtins,
		builtinNames: make(map[string]bool, len(builtins)),
		singleConfig: opts.SingleConfig,
		maxInclude:   maxInc,
		guardOf:      make(map[string]string),
		timesInc:     make(map[string]int),
		stream:       opts.Stream,
	}
	for name := range builtins {
		p.builtinNames[name] = true
	}
	p.budget = opts.Budget
	if opts.HeaderCache != nil && !opts.SingleConfig {
		p.hcache = opts.HeaderCache
		p.exporter = opts.Space.NewExporter()
		p.importer = opts.Space.NewImporter()
		p.cfgKey = configKey(opts, builtins, maxInc)
	}
	p.resetTable()
	return p
}

// ResetTable discards all macro definitions and reinstalls the built-ins.
// Use before Define + PreprocessKeepTable to process a fresh unit with
// command-line definitions.
func (p *Preprocessor) ResetTable() { p.resetTable() }

// resetTable installs a fresh macro table seeded with the built-ins.
func (p *Preprocessor) resetTable() {
	p.macros = NewMacroTable(p.space)
	if p.hcache != nil {
		p.macros.obs = p
	}
	for name, body := range p.builtins {
		toks, err := lexer.Lex("<builtin>", []byte(body))
		if err != nil {
			continue
		}
		p.macros.Define(name, &MacroDef{Name: name, Body: lexer.StripEOF(toks)}, p.space.True())
	}
	// Built-in installs are not user definitions: zero the counters.
	p.macros.Definitions = 0
}

// Macros exposes the macro table (for the parser's defined-ness queries and
// for tests).
func (p *Preprocessor) Macros() *MacroTable { return p.macros }

// SetBudget attaches a resource budget for subsequent units (nil detaches).
func (p *Preprocessor) SetBudget(b *guard.Budget) { p.budget = b }

// Define installs a command-line style definition (-D) under the True
// condition. Call before Preprocess.
func (p *Preprocessor) Define(name, body string) error {
	toks, err := lexer.Lex("<cmdline>", []byte(body))
	if err != nil {
		return err
	}
	p.macros.Define(name, &MacroDef{Name: name, Body: lexer.StripEOF(toks)}, p.space.True())
	p.macros.Definitions--
	return nil
}

// Preprocess processes one compilation unit starting at path, returning the
// configuration-preserving token forest. The macro table is reset first (a
// compilation unit stands alone).
func (p *Preprocessor) Preprocess(path string) (*Unit, error) {
	p.resetTable()
	return p.PreprocessKeepTable(path)
}

// PreprocessKeepTable is Preprocess without resetting the macro table,
// allowing callers to pre-install definitions with Define.
func (p *Preprocessor) PreprocessKeepTable(path string) (*Unit, error) {
	p.stats = &UnitStats{File: path}
	p.diags = nil
	p.includeDepth = 0
	p.condDepth = 0
	p.counter = 0
	p.timesInc = make(map[string]int)
	p.recorders = nil
	p.errRecs = nil
	p.deadRecs = nil
	p.macros.Redefs = nil

	faultinject.At(faultinject.PointPreprocess, path, p.budget)
	p.budget.Tick("preprocessor")
	if p.stream {
		p.cw = &chunkWriter{}
	}
	segs, err := p.processFile(path, p.space.True())
	cw := p.cw
	p.cw = nil
	if err != nil {
		return nil, err
	}
	var chunks []Chunk
	ntokens := 0
	if cw != nil {
		// Streaming mode: the root frame routed everything into the chunk
		// writer, so segs is empty (add is a no-op safety net).
		cw.add(segs...)
		chunks = cw.finish()
		segs = nil
		ntokens = cw.ntokens
	} else {
		ntokens = CountTokens(segs)
	}
	if d := p.budget.Trip(); d != nil {
		// Degradation, not failure: the forest built so far is the unit's
		// partial output, annotated with the structured trip diagnostic.
		p.budget.Annotate("", fmt.Sprintf("%d tokens preprocessed before trip", ntokens))
		p.diags = append(p.diags, Diagnostic{Tok: token.Token{File: path}, Msg: d.Error(), Warning: true})
	}
	p.stats.Tokens = ntokens
	u := &Unit{
		File:         path,
		Segments:     segs,
		Chunks:       chunks,
		Stats:        *p.stats,
		Diags:        p.diags,
		Errors:       p.errRecs,
		DeadBranches: p.deadRecs,
		Unguarded:    p.unguardedHeaders(),
	}
	for _, r := range p.macros.Redefs {
		u.MacroRedefs = append(u.MacroRedefs, CondRecord{
			Tok:  token.Token{File: path},
			Cond: r.Overlap,
			Msg:  r.Name,
		})
	}
	return u, nil
}

// unguardedHeaders lists files included this unit that have no recognized
// include guard, in sorted order. Both maps consulted here are per-unit and
// replay-coherent (the header cache re-creates their entries via opTimesInc
// and opGuardOf), so the list is the same whether headers came from the cache
// or a fresh read. The entry file itself is never in timesInc.
func (p *Preprocessor) unguardedHeaders() []string {
	var out []string
	for path := range p.timesInc {
		if g, ok := p.guardOf[path]; !ok || g == "" {
			out = append(out, path)
		}
	}
	sort.Strings(out)
	return out
}

func (p *Preprocessor) errorf(tok token.Token, format string, args ...interface{}) {
	p.diags = append(p.diags, Diagnostic{Tok: tok, Msg: fmt.Sprintf(format, args...)})
}

func (p *Preprocessor) warnf(tok token.Token, format string, args ...interface{}) {
	p.diags = append(p.diags, Diagnostic{Tok: tok, Msg: fmt.Sprintf(format, args...), Warning: true})
}

// processFile lexes and processes one file under presence condition c.
func (p *Preprocessor) processFile(path string, c cond.Cond) ([]Segment, error) {
	src, err := p.fs.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var hash string
	if p.hcache != nil {
		hash = hcache.Hash(src)
		p.noteDep(path, hash)
	}
	return p.processFileSrc(path, src, hash, c)
}

// processFileSrc processes pre-read file contents, consulting the Level-1
// cache (lexed tokens, line segmentation, guard detection keyed by path and
// content hash — pure work, independent of macro state) when enabled.
func (p *Preprocessor) processFileSrc(path string, src []byte, hash string, c cond.Cond) ([]Segment, error) {
	p.stats.Bytes += len(src)
	var lines [][]token.Token
	var guard string
	var cached *hcache.LexEntry
	if p.hcache != nil {
		cached, _ = p.hcache.LookupLex(path + "\x00" + hash)
	}
	if cached != nil {
		lines, guard = cached.Lines, cached.Guard
	} else {
		faultinject.At(faultinject.PointLex, path, p.budget)
		lexStart := time.Now()
		toks, err := lexer.LexBudget(path, src, p.budget)
		p.stats.LexTime += time.Since(lexStart)
		if err != nil {
			return nil, err
		}
		toks = lexer.StripEOF(toks)
		lines = splitLines(toks)
		guard = detectGuard(lines)
		if p.hcache != nil && !p.budget.Tripped() {
			p.hcache.StoreLex(path+"\x00"+hash, &hcache.LexEntry{
				Toks:  toks,
				Lines: lines,
				Guard: guard,
				Bytes: len(src),
			})
		}
	}
	if guard != "" {
		p.setGuardOf(path, guard)
		p.macros.MarkGuard(guard)
	}
	return p.processLines(lines, c, path)
}

// splitLines groups tokens into logical lines (Newline tokens removed).
func splitLines(toks []token.Token) [][]token.Token {
	var lines [][]token.Token
	var cur []token.Token
	for _, t := range toks {
		if t.Kind == token.Newline {
			lines = append(lines, cur)
			cur = nil
			continue
		}
		cur = append(cur, t)
	}
	if len(cur) > 0 {
		lines = append(lines, cur)
	}
	return lines
}

// isDirective reports whether the line is a preprocessor directive and
// returns its name ("" for the null directive) and argument tokens.
func isDirective(line []token.Token) (name string, args []token.Token, ok bool) {
	if len(line) == 0 || !line[0].Is("#") {
		return "", nil, false
	}
	if len(line) == 1 {
		return "", nil, true // null directive
	}
	if line[1].Kind != token.Identifier {
		return "", nil, false
	}
	return line[1].Text, line[2:], true
}

// detectGuard recognizes the include-guard pattern (paper §3.2 rule 4a,
// modeled on gcc): the file's first directive tests !defined(G), is followed
// by #define G, and the matching #endif ends the file.
func detectGuard(lines [][]token.Token) string {
	type dline struct {
		name string
		args []token.Token
	}
	var dirs []dline
	trailingTokens := false
	firstDirSeen := false
	for _, line := range lines {
		if len(line) == 0 {
			continue
		}
		if name, args, ok := isDirective(line); ok {
			dirs = append(dirs, dline{name, args})
			firstDirSeen = true
			trailingTokens = false
			continue
		}
		if !firstDirSeen {
			return "" // tokens before the guard conditional
		}
		trailingTokens = true
	}
	if len(dirs) < 3 || trailingTokens {
		return ""
	}
	// First directive: #ifndef G or #if !defined(G) / #if !defined G.
	var guard string
	first := dirs[0]
	switch first.name {
	case "ifndef":
		if len(first.args) == 1 && first.args[0].Kind == token.Identifier {
			guard = first.args[0].Text
		}
	case "if":
		a := first.args
		if len(a) >= 3 && a[0].Is("!") && a[1].IsIdent("defined") {
			if len(a) == 3 && a[2].Kind == token.Identifier {
				guard = a[2].Text
			} else if len(a) == 5 && a[2].Is("(") && a[3].Kind == token.Identifier && a[4].Is(")") {
				guard = a[3].Text
			}
		}
	}
	if guard == "" {
		return ""
	}
	// Second directive: #define G.
	second := dirs[1]
	if second.name != "define" || len(second.args) == 0 || second.args[0].Text != guard {
		return ""
	}
	// The matching #endif must be the last directive: depth returns to zero
	// exactly at the end.
	depth := 0
	for i, d := range dirs {
		switch d.name {
		case "if", "ifdef", "ifndef":
			depth++
		case "endif":
			depth--
			if depth == 0 && i != len(dirs)-1 {
				return ""
			}
		}
	}
	if depth != 0 || dirs[len(dirs)-1].name != "endif" {
		return ""
	}
	return guard
}

// outFrame accumulates output for one nesting level: expanded segments in
// out, unexpanded trailing segments in pending. Conditionals enter pending
// so that macro invocations spanning conditional boundaries can be hoisted
// during a later expansion pass over the pending list.
type outFrame struct {
	cond    cond.Cond
	out     []Segment
	pending []Segment
	// sink, when non-nil, receives this frame's expanded output instead of
	// out. Only the unit's root frame in streaming mode has a sink; branch
	// frames always materialize (hoisting needs the buffered segments).
	sink *chunkWriter
}

func (f *outFrame) appendPending(segs ...Segment) {
	f.pending = append(f.pending, segs...)
}

// flush expands pending and moves it to out.
func (p *Preprocessor) flush(f *outFrame) {
	if len(f.pending) == 0 {
		return
	}
	segs := p.expandSegments(f.pending, f.cond, 0)
	if f.sink != nil {
		f.sink.add(segs...)
	} else {
		f.out = append(f.out, segs...)
	}
	f.pending = nil
}

// take returns out ++ pending, expanding pending when it is self-contained
// (balanced and not ending in a callable macro name); otherwise pending is
// left raw for the enclosing level to expand, enabling invocations that
// span the conditional boundary.
func (p *Preprocessor) take(f *outFrame) []Segment {
	if len(f.pending) > 0 && p.selfContained(f.pending, f.cond) {
		p.flush(f)
	}
	segs := append(f.out, f.pending...)
	f.out, f.pending = nil, nil
	return segs
}

// selfContained reports whether the pending segments can be expanded in
// isolation: plain tokens with balanced parentheses not ending in an active
// function-like macro name.
func (p *Preprocessor) selfContained(segs []Segment, c cond.Cond) bool {
	depth := 0
	for _, s := range segs {
		if s.Cond != nil {
			return false
		}
		switch {
		case s.Tok.Is("("):
			depth++
		case s.Tok.Is(")"):
			depth--
			if depth < 0 {
				return false
			}
		}
	}
	if depth != 0 {
		return false
	}
	if len(segs) > 0 {
		last := segs[len(segs)-1].Tok
		if last.Kind == token.Identifier && !last.Hide.Contains(last.Text) {
			if defs, _ := p.macros.Lookup(last.Text, c); anyFuncLike(defs) {
				return false
			}
		}
	}
	return true
}

// condFrame tracks one open static conditional.
type condFrame struct {
	base     cond.Cond // condition outside this conditional
	taken    cond.Cond // disjunction of previous branch conditions
	branches []Branch  // committed feasible branches
	rel      cond.Cond // current branch's condition
	skip     bool      // current branch is infeasible: drop its content
	errInfe  bool      // current branch hit #error: drop at commit
	out      outFrame  // current branch accumulation
	sawElse  bool
	inert    bool // frame opened inside a dropped branch: track nesting only
	lit      bool // opened by a literal "#if 0"/"#if 1": intentional toggle, not analyzed
	// varBranch marks that some earlier branch condition was genuinely
	// configuration-dependent (neither concretely true nor false). A later
	// branch left unreachable purely by concrete branches (e.g. #else after
	// #ifdef of a macro the unit defines) is ordinary preprocessing, not a
	// dead block; only variable coverage makes unreachability reportable.
	varBranch bool
}

// recordDeadBranch notes a branch that is infeasible in its nesting context
// for the deadbranch analysis pass. Such branches are genuine oddities (the
// undertaker-style "dead #ifdef block"), so the record is rare; it cannot be
// regenerated from a cached-header replay, so active recordings are poisoned.
func (p *Preprocessor) recordDeadBranch(tok token.Token, c cond.Cond, msg string) {
	p.poisonRecorders()
	p.deadRecs = append(p.deadRecs, CondRecord{Tok: tok, Cond: c, Msg: msg})
}

// litConstArg reports whether a conditional's argument list is the single
// pp-number 0 or 1 — the conventional way to toggle a region off or on, which
// the dead-branch analysis deliberately ignores.
func litConstArg(args []token.Token) bool {
	return len(args) == 1 && (args[0].Text == "0" || args[0].Text == "1")
}

// processLines runs the directive machine over one file's lines.
func (p *Preprocessor) processLines(lines [][]token.Token, fileCond cond.Cond, file string) ([]Segment, error) {
	unit := &outFrame{cond: fileCond}
	if p.cw != nil && p.includeDepth == 0 {
		// Streaming mode, unit root: expanded output goes straight to the
		// chunk writer. Included files and conditional branches still
		// materialize segment slices below this frame.
		unit.sink = p.cw
	}
	var stack []*condFrame

	curFrame := func() *outFrame {
		if len(stack) > 0 {
			return &stack[len(stack)-1].out
		}
		return unit
	}
	curCond := func() cond.Cond {
		if len(stack) > 0 {
			top := stack[len(stack)-1]
			return p.space.And(top.base, top.rel)
		}
		return fileCond
	}
	skipping := func() bool {
		return len(stack) > 0 && stack[len(stack)-1].skip
	}
	flushAll := func() {
		p.flush(unit)
		for _, fr := range stack {
			if !fr.skip {
				p.flush(&fr.out)
			}
		}
	}
	// commitBranch finalizes the current branch of the top frame.
	commitBranch := func() {
		top := stack[len(stack)-1]
		if top.skip || top.errInfe || p.space.IsFalse(p.space.And(top.base, top.rel)) {
			top.out = outFrame{}
			return
		}
		segs := p.take(&top.out)
		if len(segs) > 0 {
			top.branches = append(top.branches, Branch{Cond: top.rel, Segs: segs})
		}
		top.taken = p.space.Or(top.taken, top.rel)
	}
	// beginBranch starts a new branch with relative condition rel.
	beginBranch := func(top *condFrame, rel cond.Cond) {
		top.rel = rel
		full := p.space.And(top.base, rel)
		top.skip = p.space.IsFalse(full)
		top.errInfe = false
		top.out = outFrame{cond: full}
	}

	for _, line := range lines {
		if !p.budget.Tick("preprocessor") {
			// Budget tripped: whatever partial expansion a recording has
			// seen must not enter the shared header cache, then unwind.
			p.poisonRecorders()
			p.budget.Annotate(p.space.String(fileCond), "")
			break
		}
		if len(line) == 0 {
			continue
		}
		name, args, isDir := isDirective(line)
		if !isDir {
			if skipping() {
				continue
			}
			curFrame().appendPending(TokensOf(line)...)
			continue
		}
		p.stats.Directives++
		switch name {
		case "":
			// Null directive.
		case "define":
			if skipping() {
				continue
			}
			flushAll()
			p.handleDefine(args, curCond())
		case "undef":
			if skipping() {
				continue
			}
			flushAll()
			if len(args) == 1 && args[0].Kind == token.Identifier {
				p.macros.Undefine(args[0].Text, curCond())
				p.stats.Undefs++
			} else {
				p.errorf(line[0], "malformed #undef")
			}
		case "include", "include_next":
			if skipping() {
				continue
			}
			flushAll()
			segs := p.handleInclude(args, curCond(), file, line[0], name == "include_next")
			cf := curFrame()
			if cf.sink != nil {
				cf.sink.add(segs...)
			} else {
				cf.out = append(cf.out, segs...)
			}
		case "if", "ifdef", "ifndef":
			p.condDepth++
			if p.condDepth > p.stats.MaxCondDepth {
				p.stats.MaxCondDepth = p.condDepth
			}
			if skipping() {
				// Inside a dropped branch: push an inert frame to track
				// nesting without evaluating the expression.
				stack = append(stack, &condFrame{base: p.space.False(), taken: p.space.True(), rel: p.space.False(), skip: true, inert: true})
				continue
			}
			p.stats.Conditionals++
			base := curCond()
			rel := p.evalConditionalDirective(name, args, base, line[0])
			fr := &condFrame{base: base, taken: p.space.False(), lit: name == "if" && litConstArg(args)}
			stack = append(stack, fr)
			beginBranch(fr, rel)
			fr.taken = rel // taken accumulates at commit; seed here for elif math
			fr.varBranch = !p.space.IsTrue(rel) && !p.space.IsFalse(rel)
			if !fr.lit && !p.space.IsFalse(rel) && p.space.IsFalse(p.space.And(base, rel)) {
				// The branch condition is satisfiable on its own but
				// contradicts the enclosing conditionals: a dead block.
				p.recordDeadBranch(line[0], rel, fmt.Sprintf("#%s branch contradicts enclosing conditionals", name))
			}
		case "elif", "else":
			if len(stack) == 0 {
				p.errorf(line[0], "#%s without #if", name)
				continue
			}
			top := stack[len(stack)-1]
			if top.inert {
				continue
			}
			if top.sawElse {
				p.errorf(line[0], "#%s after #else", name)
				continue
			}
			commitBranch()
			remaining := p.space.Not(top.taken)
			if name == "else" {
				top.sawElse = true
				beginBranch(top, remaining)
				if !top.lit && p.space.IsFalse(p.space.And(top.base, remaining)) {
					switch {
					case !p.space.IsFalse(remaining):
						p.recordDeadBranch(line[0], remaining, "#else branch contradicts enclosing conditionals")
					case top.varBranch:
						// The record's condition is the context that reaches
						// the directive (remaining itself is unsatisfiable —
						// that is the finding).
						p.recordDeadBranch(line[0], top.base, "#else unreachable: earlier branches cover all configurations")
					}
				}
				top.taken = p.space.True()
				continue
			}
			p.stats.Conditionals++
			rel := p.space.And(remaining, p.evalConditionalDirective("if", args, p.space.And(top.base, remaining), line[0]))
			beginBranch(top, rel)
			if !top.lit && !litConstArg(args) && p.space.IsFalse(p.space.And(top.base, rel)) {
				switch {
				case !p.space.IsFalse(rel):
					p.recordDeadBranch(line[0], rel, "#elif branch contradicts enclosing conditionals")
				case p.space.IsFalse(remaining) && top.varBranch:
					p.recordDeadBranch(line[0], top.base, "#elif unreachable: earlier branches cover all configurations")
				}
			}
			if !p.space.IsTrue(rel) && !p.space.IsFalse(rel) {
				top.varBranch = true
			}
			top.taken = p.space.Or(top.taken, rel)
		case "endif":
			if len(stack) == 0 {
				p.errorf(line[0], "#endif without #if")
				continue
			}
			p.condDepth--
			top := stack[len(stack)-1]
			if top.inert {
				stack = stack[:len(stack)-1]
				continue
			}
			// Commit the final branch, then pop.
			commitBranch()
			stack = stack[:len(stack)-1]
			switch {
			case len(top.branches) == 0:
			case len(top.branches) == 1 && p.space.IsTrue(top.branches[0].Cond):
				// Degenerate conditional (single always-true branch, e.g.
				// "#if 1" or any conditional in single-configuration mode):
				// splice the content inline.
				curFrame().appendPending(top.branches[0].Segs...)
			default:
				curFrame().appendPending(CondSeg(&Conditional{Branches: top.branches}))
			}
		case "error":
			if skipping() {
				continue
			}
			p.stats.ErrorDirectives++
			msg := tokensText(args)
			// Record the directive with its reachability condition for the
			// errreach analysis pass. The record cannot be regenerated from a
			// cached-header replay, so active recordings are poisoned (#error
			// in a shared header is rare enough that this costs nothing).
			p.poisonRecorders()
			p.errRecs = append(p.errRecs, CondRecord{Tok: line[0], Cond: curCond(), Msg: msg})
			if len(stack) == 0 {
				p.errorf(line[0], "#error %s", msg)
			} else {
				// Branch becomes infeasible and its content is dropped
				// (paper: error branches are ignored and not parsed).
				top := stack[len(stack)-1]
				top.errInfe = true
				top.skip = true
			}
		case "warning":
			if skipping() {
				continue
			}
			p.stats.WarningDirectives++
			p.warnf(line[0], "#warning %s", tokensText(args))
		case "pragma":
			if !skipping() {
				p.stats.PragmaDirectives++
			}
		case "line":
			if !skipping() {
				p.stats.LineDirectives++
			}
		default:
			if !skipping() {
				p.errorf(line[0], "unknown directive #%s", name)
			}
		}
	}
	if p.budget.Tripped() {
		// A tripped unit legitimately stops mid-conditional; reporting the
		// open frames as unterminated would be misleading. Salvage their
		// committed branches so the partial forest keeps as much feasible
		// content as possible.
		for i := len(stack) - 1; i >= 0; i-- {
			top := stack[i]
			if top.inert || len(top.branches) == 0 {
				continue
			}
			if unit.sink != nil {
				unit.sink.add(CondSeg(&Conditional{Branches: top.branches}))
			} else {
				unit.out = append(unit.out, CondSeg(&Conditional{Branches: top.branches}))
			}
		}
	} else {
		for range stack {
			p.errorf(token.Token{File: file}, "unterminated #if")
		}
	}
	p.flush(unit)
	return unit.out, nil
}

func tokensText(toks []token.Token) string {
	var b strings.Builder
	for i, t := range toks {
		if i > 0 && t.HasSpace {
			b.WriteByte(' ')
		}
		b.WriteString(t.Text)
	}
	return b.String()
}

// handleDefine parses and records a #define line.
func (p *Preprocessor) handleDefine(args []token.Token, c cond.Cond) {
	if len(args) == 0 || args[0].Kind != token.Identifier {
		p.errorf(token.Token{}, "malformed #define")
		return
	}
	name := args[0]
	def := &MacroDef{Name: name.Text}
	rest := args[1:]
	// Function-like only when "(" immediately follows the name.
	if len(rest) > 0 && rest[0].Is("(") && !rest[0].HasSpace {
		def.FuncLike = true
		i := 1
		for i < len(rest) && !rest[i].Is(")") {
			t := rest[i]
			switch {
			case t.Kind == token.Identifier:
				def.Params = append(def.Params, t.Text)
				// gcc named variadics: name...
				if i+1 < len(rest) && rest[i+1].Is("...") {
					def.Variadic = true
					i++
				}
			case t.Is("..."):
				def.Params = append(def.Params, "__VA_ARGS__")
				def.Variadic = true
			case t.Is(","):
			default:
				p.errorf(t, "malformed macro parameter list")
			}
			i++
		}
		if i < len(rest) {
			i++ // consume ")"
		}
		rest = rest[i:]
	}
	def.Body = append([]token.Token(nil), rest...)
	p.stats.MacroDefinitions++
	if p.condDepth > 0 {
		p.stats.DefsInConditional++
	}
	before := p.macros.Redefinitions
	p.macros.Define(name.Text, def, c)
	if p.macros.Redefinitions > before {
		p.stats.Redefinitions++
	}
}

// handleInclude resolves and processes a #include or #include_next
// directive under c.
func (p *Preprocessor) handleInclude(args []token.Token, c cond.Cond, fromFile string, at token.Token, next bool) []Segment {
	if p.budget.Tripped() {
		return nil
	}
	if p.includeDepth >= p.maxInclude {
		// The error depends on absolute nesting depth, which the cache
		// fingerprint deliberately does not capture: poison any recordings.
		p.poisonRecorders()
		p.errorf(at, "include depth limit exceeded")
		return nil
	}
	// Direct forms need no expansion.
	if name, angled, ok := includeSpec(args); ok {
		return p.spliceInclude(name, angled || next, c, fromFile, at, next)
	}
	// Computed include: expand, hoist, resolve per alternative.
	p.stats.ComputedIncludes++
	expanded := p.expandSegments(TokensOf(args), c, 0)
	alts, ok := p.hoistGuard(c, expanded)
	if !ok {
		p.stats.HoistOverflows++
		p.errorf(at, "computed include too complex")
		return nil
	}
	if len(alts) > 1 {
		p.stats.HoistedIncludes++
	}
	var branches []Branch
	for _, alt := range alts {
		name, angled, ok := includeSpec(alt.Toks)
		if !ok {
			p.errorf(at, "malformed include after expansion")
			continue
		}
		segs := p.spliceInclude(name, angled || next, alt.Cond, fromFile, at, next)
		if len(segs) > 0 {
			branches = append(branches, Branch{Cond: alt.Cond, Segs: segs})
		}
	}
	switch len(branches) {
	case 0:
		return nil
	case 1:
		if p.space.Equal(branches[0].Cond, c) {
			return branches[0].Segs
		}
	}
	return []Segment{CondSeg(&Conditional{Branches: branches})}
}

// includeSpec extracts the include file name: "name" or <name>.
func includeSpec(args []token.Token) (name string, angled bool, ok bool) {
	if len(args) == 1 && args[0].Kind == token.String {
		s := args[0].Text
		if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
			return s[1 : len(s)-1], false, true
		}
		return "", false, false
	}
	if len(args) >= 3 && args[0].Is("<") && args[len(args)-1].Is(">") {
		var b strings.Builder
		for _, t := range args[1 : len(args)-1] {
			b.WriteString(t.Text)
		}
		return b.String(), true, true
	}
	return "", false, false
}

// spliceInclude processes one resolved include target under c.
func (p *Preprocessor) spliceInclude(name string, angled bool, c cond.Cond, fromFile string, at token.Token, next bool) []Segment {
	rfs := p.resolveFS()
	var path string
	if next {
		path = resolveIncludeNext(rfs, p.includePaths, fromFile, name)
	} else {
		path = resolveInclude(rfs, p.includePaths, fromFile, name, angled)
	}
	if path == "" {
		p.errorf(at, "include not found: %s", name)
		return nil
	}
	p.stats.Includes++
	// Guard-based skip: when the file's guard macro is already defined
	// everywhere under c, reprocessing would contribute nothing.
	if guard, ok := p.readGuardOf(path); ok && guard != "" {
		di := p.macros.DefinedInfo(guard)
		if p.space.Implies(c, di.Defined) {
			p.stats.GuardSkips++
			return nil
		}
	}
	p.bumpTimesInc(path)
	p.includeDepth++
	p.noteIncludeDepth()
	segs, err := p.processFileCached(path, c)
	p.includeDepth--
	if err != nil {
		p.errorf(at, "include %s: %v", name, err)
		return nil
	}
	return segs
}

// hoistGuard wraps Hoist (Algorithm 1) with the budget's hoist axis: the
// static hoistLimit is tightened by the budget's configured ceiling, the
// product size is recorded as a high-water mark, and an overflow that only
// the budget's tighter ceiling could have caused trips the budget so the
// structured diagnostic names the axis.
func (p *Preprocessor) hoistGuard(c cond.Cond, segs []Segment) ([]Alternative, bool) {
	limit := hoistLimit
	blim := p.budget.Limits().Hoist
	if blim > 0 && blim < int64(limit) {
		limit = int(blim)
	}
	alts, ok := Hoist(p.space, c, segs, limit)
	if !ok {
		if blim > 0 && blim <= int64(hoistLimit) {
			p.budget.ForceTrip("preprocessor", guard.AxisHoist)
			p.budget.Annotate(p.space.String(c), "")
		}
		return nil, false
	}
	p.budget.Observe("preprocessor", guard.AxisHoist, int64(len(alts)))
	return alts, true
}

// evalConditionalDirective converts #if/#ifdef/#ifndef arguments into a
// presence condition relative to base (or a concrete constant in
// single-configuration mode).
func (p *Preprocessor) evalConditionalDirective(kind string, args []token.Token, base cond.Cond, at token.Token) cond.Cond {
	switch kind {
	case "ifdef", "ifndef":
		if len(args) != 1 || args[0].Kind != token.Identifier {
			p.errorf(at, "malformed #%s", kind)
			return p.space.False()
		}
		name := args[0].Text
		var c cond.Cond
		if p.singleConfig {
			if p.macros.IsEverDefined(name, p.space.True()) {
				c = p.space.True()
			} else {
				c = p.space.False()
			}
		} else {
			ctx := &cexpr.Context{Space: p.space, DefinedLookup: p.macros.DefinedInfo}
			c, _ = ctx.Convert(&cexpr.Expr{Kind: cexpr.KindDefined, Name: name})
		}
		if kind == "ifndef" {
			c = p.space.Not(c)
		}
		return c
	}
	return p.evalIfExpr(args, base, at)
}

// evalIfExpr evaluates a #if/#elif expression: it expands macros outside
// defined(), hoists any implicit conditionals introduced by multiply-defined
// macros around the expression, folds constants, and converts each hoisted
// alternative to a presence condition (paper §3.2).
func (p *Preprocessor) evalIfExpr(args []token.Token, base cond.Cond, at token.Token) cond.Cond {
	faultinject.At(faultinject.PointCondExpr, p.stats.File, p.budget)
	segs := p.expandGuardingDefined(args, base)
	if p.singleConfig {
		// Concrete evaluation; expansion produced plain tokens.
		toks := make([]token.Token, 0, len(segs))
		for _, s := range segs {
			if s.IsToken() {
				toks = append(toks, *s.Tok)
			}
		}
		e, err := cexpr.Parse(toks)
		if err != nil {
			p.errorf(at, "bad conditional expression: %v", err)
			return p.space.False()
		}
		v, err := cexpr.Eval(e, cexpr.EvalContext{
			Defined: func(name string) bool { return p.macros.IsEverDefined(name, p.space.True()) },
		})
		if err != nil {
			p.errorf(at, "bad conditional expression: %v", err)
			return p.space.False()
		}
		if v != 0 {
			return p.space.True()
		}
		return p.space.False()
	}
	alts, ok := p.hoistGuard(base, segs)
	if !ok {
		p.stats.HoistOverflows++
		p.errorf(at, "conditional expression too complex")
		return p.space.False()
	}
	ctx := &cexpr.Context{Space: p.space, DefinedLookup: p.macros.DefinedInfo}
	result := p.space.False()
	for _, alt := range alts {
		e, err := cexpr.Parse(alt.Toks)
		if err != nil {
			p.errorf(at, "bad conditional expression: %v", err)
			continue
		}
		c, info := ctx.Convert(e)
		if info.NonBoolean {
			p.stats.NonBooleanExprs++
		}
		result = p.space.Or(result, p.space.And(alt.Cond, c))
	}
	return result
}

// expandGuardingDefined macro-expands the expression tokens while protecting
// the operands of defined() from expansion.
func (p *Preprocessor) expandGuardingDefined(args []token.Token, c cond.Cond) []Segment {
	var out []Segment
	var run []token.Token
	flushRun := func() {
		if len(run) > 0 {
			out = append(out, p.expandSegments(TokensOf(run), c, 0)...)
			run = nil
		}
	}
	for i := 0; i < len(args); i++ {
		t := args[i]
		if t.IsIdent("defined") {
			flushRun()
			out = append(out, TokSeg(t))
			switch {
			case i+3 < len(args) && args[i+1].Is("(") && args[i+2].Kind == token.Identifier && args[i+3].Is(")"):
				// defined ( NAME )
				out = append(out, TokSeg(args[i+1]), TokSeg(args[i+2]), TokSeg(args[i+3]))
				i += 3
			case i+1 < len(args) && args[i+1].Kind == token.Identifier:
				// defined NAME
				out = append(out, TokSeg(args[i+1]))
				i++
			}
			continue
		}
		run = append(run, t)
	}
	flushRun()
	return out
}
