package preprocessor

import (
	"sort"
	"strings"

	"repro/internal/cexpr"
	"repro/internal/cond"
	"repro/internal/token"
)

// MacroDef is one macro definition. A nil *MacroDef in a table entry records
// an explicit #undef.
type MacroDef struct {
	Name     string
	FuncLike bool
	Params   []string
	Variadic bool // gcc-style named or C99 ... variadics; extra args bind to the last param
	Body     []token.Token
}

// sameDef reports whether two definitions are token-identical (a benign
// redefinition).
func sameDef(a, b *MacroDef) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.FuncLike != b.FuncLike || a.Variadic != b.Variadic || len(a.Params) != len(b.Params) || len(a.Body) != len(b.Body) {
		return false
	}
	for i := range a.Params {
		if a.Params[i] != b.Params[i] {
			return false
		}
	}
	for i := range a.Body {
		if a.Body[i].Text != b.Body[i].Text || a.Body[i].Kind != b.Body[i].Kind {
			return false
		}
	}
	return true
}

// macroEntry is one conditional table entry: under cond, the macro has this
// definition (or is explicitly undefined when Def is nil).
type macroEntry struct {
	cond cond.Cond
	def  *MacroDef
}

// MacroTable is the conditional macro table (paper §2, "Macro
// (Un)Definition" row): each name maps to a set of entries tagged with
// presence conditions. Conditions of a name's entries are pairwise disjoint;
// the remainder of the configuration space is the name's free condition.
type MacroTable struct {
	space   *cond.Space
	entries map[string][]macroEntry
	guards  map[string]bool // names recognized as include-guard macros

	// obs, when set, observes every read and write of a name — the header
	// cache's interaction-set recorder. Reads and writes both notify
	// *before* any mutation, so the observer can snapshot the name's
	// pre-operation state on first touch.
	obs tableObserver

	// Stats
	Definitions   int // #define directives recorded
	Redefinitions int // #defines that trimmed earlier entries
	Undefinitions int // #undef directives recorded

	// Redefs records each non-benign redefinition with the condition under
	// which the old and new definitions overlap, for the hygiene analysis
	// pass. Replay-coherent: cached-header replays route through Define, so
	// the records regenerate identically.
	Redefs []RedefRecord
}

// RedefRecord is one overlapping macro redefinition: under Overlap, a #define
// of Name replaced a token-different earlier definition.
type RedefRecord struct {
	Name    string
	Overlap cond.Cond
}

// tableObserver receives macro-table events for the header-cache recorder.
type tableObserver interface {
	touchMacro(name string)
	noteDefine(name string, def *MacroDef, c cond.Cond)
	noteUndefine(name string, c cond.Cond)
	noteMarkGuard(name string)
}

func (t *MacroTable) touch(name string) {
	if t.obs != nil {
		t.obs.touchMacro(name)
	}
}

// NewMacroTable returns an empty table over the given condition space.
func NewMacroTable(s *cond.Space) *MacroTable {
	return &MacroTable{
		space:   s,
		entries: make(map[string][]macroEntry),
		guards:  make(map[string]bool),
	}
}

// Define records def for name under presence condition c, trimming
// infeasible earlier entries (Table 1: "Trim infeasible entries on
// redefinition").
func (t *MacroTable) Define(name string, def *MacroDef, c cond.Cond) {
	t.touch(name)
	if t.obs != nil {
		t.obs.noteDefine(name, def, c)
	}
	t.Definitions++
	t.add(name, def, c)
}

// Undefine records an explicit #undef for name under c.
func (t *MacroTable) Undefine(name string, c cond.Cond) {
	t.touch(name)
	if t.obs != nil {
		t.obs.noteUndefine(name, c)
	}
	t.Undefinitions++
	t.add(name, nil, c)
}

func (t *MacroTable) add(name string, def *MacroDef, c cond.Cond) {
	if t.space.IsFalse(c) {
		return
	}
	old := t.entries[name]
	kept := old[:0:0]
	trimmed := false
	var overlap cond.Cond
	haveOverlap := false
	for _, e := range old {
		nc := t.space.AndNot(e.cond, c)
		if t.space.IsFalse(nc) {
			// Token-identical redefinition is benign (C99 6.10.3p2; gcc
			// accepts it silently) and common via repeated headers; it does
			// not count toward Table 3's redefinitions.
			if !sameDef(e.def, def) {
				trimmed = true
				if def != nil && e.def != nil {
					overlap, haveOverlap = orCond(t.space, overlap, haveOverlap, e.cond)
				}
			}
			continue
		}
		if !t.space.Equal(nc, e.cond) && !sameDef(e.def, def) {
			trimmed = true
			if def != nil && e.def != nil {
				overlap, haveOverlap = orCond(t.space, overlap, haveOverlap, t.space.And(e.cond, c))
			}
		}
		kept = append(kept, macroEntry{cond: nc, def: e.def})
	}
	if trimmed {
		t.Redefinitions++
	}
	if haveOverlap && !t.space.IsFalse(overlap) {
		t.Redefs = append(t.Redefs, RedefRecord{Name: name, Overlap: overlap})
	}
	t.entries[name] = append(kept, macroEntry{cond: c, def: def})
}

// orCond accumulates a disjunction without materializing False for the empty
// case (cond.Cond zero values must not reach Space operations).
func orCond(s *cond.Space, acc cond.Cond, have bool, c cond.Cond) (cond.Cond, bool) {
	if !have {
		return c, true
	}
	return s.Or(acc, c), true
}

// ActiveDef is one definition alternative of a macro at a use site: under
// Cond, the macro has definition Def. Def == nil means explicitly undefined.
type ActiveDef struct {
	Cond cond.Cond
	Def  *MacroDef
}

// Lookup returns the definition alternatives of name that are feasible under
// the use site's presence condition c, plus the condition under which the
// name is free (neither defined nor undefined). Infeasible definitions are
// ignored (Table 1: "Ignore infeasible definitions").
func (t *MacroTable) Lookup(name string, c cond.Cond) (defs []ActiveDef, free cond.Cond) {
	t.touch(name)
	covered := t.space.False()
	for _, e := range t.entries[name] {
		ec := t.space.And(e.cond, c)
		if t.space.IsFalse(ec) {
			continue
		}
		defs = append(defs, ActiveDef{Cond: ec, Def: e.def})
		covered = t.space.Or(covered, ec)
	}
	return defs, t.space.AndNot(c, covered)
}

// IsEverDefined reports whether the name has at least one feasible
// definition entry under c.
func (t *MacroTable) IsEverDefined(name string, c cond.Cond) bool {
	t.touch(name)
	for _, e := range t.entries[name] {
		if e.def != nil && !t.space.IsFalse(t.space.And(e.cond, c)) {
			return true
		}
	}
	return false
}

// MarkGuard records that name is an include-guard macro (gcc's reinclusion
// heuristic, paper §3.2 rule 4a).
func (t *MacroTable) MarkGuard(name string) {
	t.touch(name)
	if t.obs != nil {
		t.obs.noteMarkGuard(name)
	}
	t.guards[name] = true
}

// IsGuard reports whether name was recognized as a guard macro.
func (t *MacroTable) IsGuard(name string) bool {
	t.touch(name)
	return t.guards[name]
}

// DefinedInfo supplies cexpr's conversion rule 4 with the name's
// definedness: the disjunction of conditions with an active definition, the
// free condition, and whether the name is a guard macro.
func (t *MacroTable) DefinedInfo(name string) cexpr.DefinedInfo {
	t.touch(name)
	s := t.space
	defined := s.False()
	covered := s.False()
	for _, e := range t.entries[name] {
		covered = s.Or(covered, e.cond)
		if e.def != nil {
			defined = s.Or(defined, e.cond)
		}
	}
	return cexpr.DefinedInfo{
		Defined: defined,
		Free:    s.Not(covered),
		IsGuard: t.guards[name],
	}
}

// Names returns the sorted macro names present in the table.
func (t *MacroTable) Names() []string {
	out := make([]string, 0, len(t.entries))
	for n := range t.entries {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// NumEntries returns the number of entries for name, for tests and stats.
func (t *MacroTable) NumEntries(name string) int { return len(t.entries[name]) }

// StateSig serializes the observable state of name — its conditional entries
// in table order plus its guard bit — for the header cache's interaction-set
// fingerprints. canonOf must map conditions to space-independent canonical
// ids so signatures recorded in one unit compare equal in another.
func (t *MacroTable) StateSig(name string, canonOf func(cond.Cond) string) string {
	entries := t.entries[name]
	if len(entries) == 0 && !t.guards[name] {
		return ""
	}
	var b strings.Builder
	for _, e := range entries {
		b.WriteString(canonOf(e.cond))
		b.WriteByte('=')
		writeDefSig(&b, e.def)
		b.WriteByte(';')
	}
	if t.guards[name] {
		b.WriteByte('G')
	}
	return b.String()
}

// writeDefSig appends a token-level signature of def ("!" for an explicit
// #undef entry). Two definitions have equal signatures iff sameDef holds.
func writeDefSig(b *strings.Builder, def *MacroDef) {
	if def == nil {
		b.WriteByte('!')
		return
	}
	if def.FuncLike {
		b.WriteByte('(')
		for i, p := range def.Params {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(p)
		}
		if def.Variadic {
			b.WriteString("...")
		}
		b.WriteByte(')')
	}
	for _, tok := range def.Body {
		b.WriteByte(' ')
		if tok.HasSpace {
			b.WriteByte(' ')
		}
		b.WriteString(tok.Text)
	}
}
