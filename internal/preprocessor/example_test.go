package preprocessor_test

import (
	"fmt"
	"strings"

	"repro/internal/cond"
	"repro/internal/preprocessor"
)

// Example demonstrates configuration-preserving preprocessing of the
// paper's Figure 2: a multiply-defined macro whose use propagates an
// implicit conditional.
func Example() {
	space := cond.NewSpace(cond.ModeBDD)
	p := preprocessor.New(preprocessor.Options{
		Space: space,
		FS: preprocessor.MapFS{
			"main.c": `
#ifdef CONFIG_64BIT
#define BITS_PER_LONG 64
#else
#define BITS_PER_LONG 32
#endif
int bits = BITS_PER_LONG;
`,
		},
	})
	unit, err := p.Preprocess("main.c")
	if err != nil {
		panic(err)
	}
	for _, assign := range []map[string]bool{
		{"(defined CONFIG_64BIT)": true},
		nil,
	} {
		toks := preprocessor.Tokens(space, unit.Segments, assign)
		parts := make([]string, len(toks))
		for i, t := range toks {
			parts[i] = t.Text
		}
		fmt.Println(strings.Join(parts, " "))
	}
	// Output:
	// int bits = 64 ;
	// int bits = 32 ;
}
