package preprocessor

import (
	"fmt"
	"os"
	"path"
	"sort"
)

// FileSystem abstracts source-file access so that corpora can live in memory
// (the synthetic kernel) or on disk.
type FileSystem interface {
	// ReadFile returns the contents of the file at path.
	ReadFile(path string) ([]byte, error)
	// Exists reports whether the file exists.
	Exists(path string) bool
}

// OSFileSystem reads from the real filesystem.
type OSFileSystem struct{}

// ReadFile implements FileSystem.
func (OSFileSystem) ReadFile(p string) ([]byte, error) { return os.ReadFile(p) }

// Exists implements FileSystem.
func (OSFileSystem) Exists(p string) bool {
	_, err := os.Stat(p)
	return err == nil
}

// MapFS is an in-memory file system keyed by slash-separated paths.
type MapFS map[string]string

// ReadFile implements FileSystem.
func (m MapFS) ReadFile(p string) ([]byte, error) {
	if s, ok := m[path.Clean(p)]; ok {
		return []byte(s), nil
	}
	return nil, fmt.Errorf("file not found: %s", p)
}

// Exists implements FileSystem.
func (m MapFS) Exists(p string) bool {
	_, ok := m[path.Clean(p)]
	return ok
}

// Files returns the sorted list of paths in the map.
func (m MapFS) Files() []string {
	out := make([]string, 0, len(m))
	for p := range m {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// resolveInclude maps an include spec to a path. Quoted includes search the
// including file's directory first, then the include paths; angle includes
// search only the include paths. It returns "" when not found.
func resolveInclude(fs FileSystem, includePaths []string, fromFile, name string, angled bool) string {
	if !angled {
		dir := path.Dir(fromFile)
		cand := path.Clean(path.Join(dir, name))
		if fs.Exists(cand) {
			return cand
		}
	}
	for _, dir := range includePaths {
		cand := path.Clean(path.Join(dir, name))
		if fs.Exists(cand) {
			return cand
		}
	}
	return ""
}

// resolveIncludeNext implements gcc's #include_next: the search starts in
// the include path *after* the one that supplied the current file, letting
// wrapper headers defer to the underlying header of the same name.
func resolveIncludeNext(fs FileSystem, includePaths []string, fromFile, name string) string {
	from := path.Clean(fromFile)
	fromDir := path.Dir(from)
	start := 0
	for i, dir := range includePaths {
		if path.Clean(dir) == fromDir {
			start = i + 1
			break
		}
	}
	for _, dir := range includePaths[start:] {
		cand := path.Clean(path.Join(dir, name))
		if cand == from {
			// Never resolve back to the including file itself: with a
			// duplicated include-path entry (or the from-directory listed
			// again later on the path), the naive search would re-include
			// the current file until the depth limit.
			continue
		}
		if fs.Exists(cand) {
			return cand
		}
	}
	return ""
}
