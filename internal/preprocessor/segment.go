// Package preprocessor implements SuperC's configuration-preserving
// preprocessor (paper §3). It performs all preprocessor operations — file
// includes, macro (un)definitions, object- and function-like macro
// expansion, token pasting, stringification — while leaving static
// conditionals intact, so that a program's full variability survives into
// parsing. Conditionals that end up embedded inside preprocessor operations
// are hoisted around them (Algorithm 1), because preprocessor operations are
// only defined over ordinary tokens.
//
// The output is a token forest: a sequence of segments, each either an
// ordinary token or a static conditional whose branches are themselves
// segment sequences. The FMLR parser consumes this forest directly.
package preprocessor

import (
	"strings"

	"repro/internal/cond"
	"repro/internal/token"
)

// Segment is one element of preprocessor output: exactly one of Tok and
// Cond is non-nil.
type Segment struct {
	Tok  *token.Token
	Cond *Conditional
}

// Conditional is a static conditional preserved in the output. Branch
// conditions are relative to the enclosing context and mutually exclusive;
// they need not cover the whole space (a missing #else is simply absent, the
// "implicit branch" of the paper).
type Conditional struct {
	Branches []Branch
}

// Branch is one arm of a Conditional.
type Branch struct {
	Cond cond.Cond // presence condition relative to the enclosing context
	Segs []Segment
}

// TokSeg wraps a token as a segment.
func TokSeg(t token.Token) Segment {
	return Segment{Tok: &t}
}

// CondSeg wraps a conditional as a segment.
func CondSeg(c *Conditional) Segment {
	return Segment{Cond: c}
}

// IsToken reports whether the segment is an ordinary token.
func (s Segment) IsToken() bool { return s.Tok != nil }

// TokensOf converts a plain token slice to segments.
func TokensOf(toks []token.Token) []Segment {
	segs := make([]Segment, len(toks))
	for i := range toks {
		segs[i] = Segment{Tok: &toks[i]}
	}
	return segs
}

// CountTokens returns the total number of ordinary tokens in the forest,
// counting each conditional branch's tokens.
func CountTokens(segs []Segment) int {
	n := 0
	for _, s := range segs {
		if s.IsToken() {
			n++
			continue
		}
		for _, b := range s.Cond.Branches {
			n += CountTokens(b.Segs)
		}
	}
	return n
}

// MaxDepth returns the deepest conditional nesting in the forest.
func MaxDepth(segs []Segment) int {
	max := 0
	for _, s := range segs {
		if s.IsToken() {
			continue
		}
		for _, b := range s.Cond.Branches {
			if d := 1 + MaxDepth(b.Segs); d > max {
				max = d
			}
		}
	}
	return max
}

// Alternative is one result branch of hoisting: a presence condition and the
// plain tokens present under it.
type Alternative struct {
	Cond cond.Cond
	Toks []token.Token
}

// Hoist implements paper Algorithm 1: it takes a presence condition c and a
// segment list t (ordinary tokens and entire conditionals), and returns the
// conditional hoisted to the top — a list of alternatives whose branches
// contain only ordinary tokens. Infeasible alternatives are trimmed. The
// limit caps the number of alternatives; when exceeded, Hoist returns ok =
// false (the caller falls back to leaving the operation unexpanded).
func Hoist(s *cond.Space, c cond.Cond, t []Segment, limit int) (alts []Alternative, ok bool) {
	// Line 3: initialize with one empty branch under c.
	alts = []Alternative{{Cond: c}}
	for _, a := range t {
		if a.IsToken() {
			// Lines 5-7: append the token to all branches.
			for i := range alts {
				alts[i].Toks = append(alts[i].Toks[:len(alts[i].Toks):len(alts[i].Toks)], *a.Tok)
			}
			continue
		}
		// Lines 8-13: recursively hoist each branch, then cross product.
		var b []Alternative
		covered := s.False()
		for _, br := range a.Cond.Branches {
			sub, ok := Hoist(s, br.Cond, br.Segs, limit)
			if !ok {
				return nil, false
			}
			b = append(b, sub...)
			covered = s.Or(covered, br.Cond)
		}
		// The implicit else branch contributes an empty token list.
		rest := s.Not(covered)
		if !s.IsFalse(rest) {
			b = append(b, Alternative{Cond: rest})
		}
		var next []Alternative
		for _, ci := range alts {
			for _, cj := range b {
				merged := s.And(ci.Cond, cj.Cond)
				if s.IsFalse(merged) {
					continue
				}
				toks := make([]token.Token, 0, len(ci.Toks)+len(cj.Toks))
				toks = append(toks, ci.Toks...)
				toks = append(toks, cj.Toks...)
				next = append(next, Alternative{Cond: merged, Toks: toks})
				if limit > 0 && len(next) > limit {
					return nil, false
				}
			}
		}
		alts = next
	}
	return alts, true
}

// altsToSegments converts hoisted alternatives back into a single segment:
// a token run if there is one alternative covering c, otherwise a
// conditional with one branch per alternative.
func altsToSegments(s *cond.Space, c cond.Cond, alts []Alternative) []Segment {
	if len(alts) == 1 && s.Equal(alts[0].Cond, c) {
		return TokensOf(alts[0].Toks)
	}
	cnd := &Conditional{}
	for _, a := range alts {
		cnd.Branches = append(cnd.Branches, Branch{Cond: a.Cond, Segs: TokensOf(a.Toks)})
	}
	return []Segment{CondSeg(cnd)}
}

// FlattenText renders the forest as preprocessed source text with #if/#endif
// markers for conditionals, for diagnostics and golden tests.
func FlattenText(s *cond.Space, segs []Segment) string {
	var b strings.Builder
	writeSegs(s, &b, segs)
	return b.String()
}

func writeSegs(s *cond.Space, b *strings.Builder, segs []Segment) {
	for _, sg := range segs {
		if sg.IsToken() {
			if b.Len() > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(sg.Tok.Text)
			continue
		}
		for i, br := range sg.Cond.Branches {
			if b.Len() > 0 {
				b.WriteByte('\n')
			}
			if i == 0 {
				b.WriteString("#if " + s.String(br.Cond))
			} else {
				b.WriteString("#elif " + s.String(br.Cond))
			}
			b.WriteByte('\n')
			writeSegs(s, b, br.Segs)
			b.WriteByte('\n')
		}
		b.WriteString("#endif")
	}
}

// Tokens flattens the forest to a single configuration's token stream by
// evaluating each branch condition under the given assignment. It is used by
// tests to cross-check configuration-preserving output against
// single-configuration preprocessing.
func Tokens(s *cond.Space, segs []Segment, assign map[string]bool) []token.Token {
	var out []token.Token
	for _, sg := range segs {
		if sg.IsToken() {
			out = append(out, *sg.Tok)
			continue
		}
		for _, br := range sg.Cond.Branches {
			if s.Eval(br.Cond, assign) {
				out = append(out, Tokens(s, br.Segs, assign)...)
				break
			}
		}
	}
	return out
}
