package preprocessor

// This file wires the cross-unit header cache (package hcache) into the
// preprocessor. The contract is memoization-with-traces: while a header is
// processed at top level (condition True, conditional depth zero), a
// recorder captures
//
//   - the interaction set: every macro name (and per-file guard registration)
//     the header reads or writes, with the state observed at FIRST touch —
//     because every write is preceded by a touch, first-touch state is
//     exactly the incoming state the result depends on;
//   - the trace: the macro-table mutations (define/undefine/guard marks) and
//     per-file bookkeeping the header performed, as space-independent ops;
//   - the files read (with content hashes) and existence probes made during
//     include resolution, so edits to any file involved invalidate the entry.
//
// A later unit replays the entry only when its incoming state restricted to
// the interaction set matches the recorded fingerprint and every dep/probe
// still holds; replaying imports the stored segment forest and ops into that
// unit's own condition space, preserving the harness's
// one-condition-space-per-unit isolation.
//
// Results that depend on state outside the fingerprint poison the recording:
// __COUNTER__ uses and include-depth-limit errors mark every active recorder
// poisoned, and poisoned recordings are simply not stored.

import (
	"crypto/sha256"
	"encoding/hex"
	"sort"
	"strconv"
	"strings"

	"repro/internal/cond"
	"repro/internal/guard/faultinject"
	"repro/internal/hcache"
	"repro/internal/token"
)

// replayOp is one recorded preprocessor side effect, with conditions in
// space-independent form so it can replay into any unit's space.
type replayOp struct {
	kind  opKind
	name  string        // macro name (define/undef/markGuard)
	def   *MacroDef     // define only; immutable, shared across units
	cond  *cond.Formula // define/undef only
	path  string        // setGuardOf/timesInc only
	guard string        // setGuardOf only
}

type opKind uint8

const (
	opDefine opKind = iota
	opUndef
	opMarkGuard
	opGuardOf
	opTimesInc
)

// headerPayload is the opaque payload a Level-2 cache entry carries: the
// header's exported output forest, its side-effect trace, and the
// diagnostics and statistics it contributed.
type headerPayload struct {
	segs  []xSeg
	ops   []replayOp
	diags []Diagnostic
	stats UnitStats
}

// xSeg / xCond / xBranch mirror Segment / Conditional / Branch with branch
// conditions exported to formulas. Tokens are immutable and shared by
// pointer with the recording unit's own output.
type xSeg struct {
	tok *token.Token
	cnd *xCond
}

type xCond struct {
	branches []xBranch
}

type xBranch struct {
	cond *cond.Formula
	segs []xSeg
}

func exportSegs(ex *cond.Exporter, segs []Segment) []xSeg {
	out := make([]xSeg, len(segs))
	for i, s := range segs {
		if s.IsToken() {
			out[i] = xSeg{tok: s.Tok}
			continue
		}
		xc := &xCond{branches: make([]xBranch, len(s.Cond.Branches))}
		for j, br := range s.Cond.Branches {
			xc.branches[j] = xBranch{cond: ex.Export(br.Cond), segs: exportSegs(ex, br.Segs)}
		}
		out[i] = xSeg{cnd: xc}
	}
	return out
}

func importSegs(im *cond.Importer, xs []xSeg) []Segment {
	out := make([]Segment, len(xs))
	for i, x := range xs {
		if x.tok != nil {
			out[i] = Segment{Tok: x.tok}
			continue
		}
		c := &Conditional{Branches: make([]Branch, len(x.cnd.branches))}
		for j, br := range x.cnd.branches {
			c.Branches[j] = Branch{Cond: im.Import(br.cond), Segs: importSegs(im, br.segs)}
		}
		out[i] = Segment{Cond: c}
	}
	return out
}

// headerRec is one active recording. Recordings nest (a header including a
// cache-miss header starts an inner recording); observations dispatch to
// every active recorder.
type headerRec struct {
	keys      map[string]bool // fingerprint keys already captured
	fp        []hcache.KV     // fingerprint in first-touch order
	ops       []replayOp
	deps      []hcache.Dep
	probes    []hcache.Probe
	diagStart int
	prevStats *UnitStats // enclosing stats; p.stats holds the delta meanwhile
	startInc  int        // include depth at recording start
	maxRelInc int        // deepest relative include nesting reached
	poisoned  bool
	// portable stays true while every captured fingerprint signature is
	// process independent (built only from constant-condition canonical ids
	// and token-level definition signatures). Non-portable entries embed
	// per-process BDD node ids and must never leave this process — see
	// hcache.Entry.Portable.
	portable bool
}

// recording reports whether at least one header recording is active.
func (p *Preprocessor) recording() bool { return len(p.recorders) > 0 }

// cacheObserved reports whether table/guard observations need dispatching.
// The observer stays attached whenever the cache is enabled; dispatch is a
// no-op with no active recorders.

// touchMacro implements tableObserver: fingerprint the name's pre-operation
// state in every recorder that has not seen it yet.
func (p *Preprocessor) touchMacro(name string) { p.touchKey("m:" + name) }

// touchKey captures the current signature of a fingerprint key ("m:<name>"
// for macro state, "g:<path>" for per-file guard registration) in every
// active recorder on first touch. Writes always touch before mutating, so a
// recorder that has not seen the key observes the state the key had when
// that recording began.
func (p *Preprocessor) touchKey(key string) {
	if !p.recording() {
		return
	}
	sig := ""
	portable := true
	computed := false
	for _, r := range p.recorders {
		if r.poisoned || r.keys[key] {
			continue
		}
		if !computed {
			sig, portable = p.sigOfTracked(key)
			computed = true
		}
		r.keys[key] = true
		r.fp = append(r.fp, hcache.KV{Key: key, Sig: sig})
		if !portable {
			r.portable = false
		}
	}
}

// sigOf returns the current canonical signature of a fingerprint key.
func (p *Preprocessor) sigOf(key string) string {
	sig, _ := p.sigOfTracked(key)
	return sig
}

// sigOfTracked is sigOf plus portability: portable is false when the
// signature embeds the canonical id of a non-constant condition, which is a
// per-process BDD node id and therefore meaningless to other processes.
// Equal signature strings always have equal portability, so replaying a
// persisted entry can trust a string match.
func (p *Preprocessor) sigOfTracked(key string) (sig string, portable bool) {
	body := key[2:]
	if strings.HasPrefix(key, "m:") {
		portable = true
		canon := func(c cond.Cond) string {
			f := p.exporter.Export(c)
			if f.Op != cond.FTrue && f.Op != cond.FFalse {
				portable = false
			}
			return p.hcache.Canon().ID(f)
		}
		return p.macros.StateSig(body, canon), portable
	}
	// "g:<path>": the file's registered guard macro, or absence.
	if g, ok := p.guardOf[body]; ok {
		return "=" + g, true
	}
	return "", true
}

// canonOf maps a condition of this unit's space to a process-wide canonical
// id via the shared cache canonicalizer.
func (p *Preprocessor) canonOf(c cond.Cond) string {
	return p.hcache.Canon().ID(p.exporter.Export(c))
}

func (p *Preprocessor) noteDefine(name string, def *MacroDef, c cond.Cond) {
	if !p.recording() {
		return
	}
	p.appendOp(replayOp{kind: opDefine, name: name, def: def, cond: p.exporter.Export(c)})
}

func (p *Preprocessor) noteUndefine(name string, c cond.Cond) {
	if !p.recording() {
		return
	}
	p.appendOp(replayOp{kind: opUndef, name: name, cond: p.exporter.Export(c)})
}

func (p *Preprocessor) noteMarkGuard(name string) {
	if !p.recording() {
		return
	}
	p.appendOp(replayOp{kind: opMarkGuard, name: name})
}

func (p *Preprocessor) appendOp(op replayOp) {
	for _, r := range p.recorders {
		if !r.poisoned {
			r.ops = append(r.ops, op)
		}
	}
}

// setGuardOf registers a file's include-guard macro, observing the write.
func (p *Preprocessor) setGuardOf(path, guard string) {
	p.touchKey("g:" + path)
	if p.recording() {
		p.appendOp(replayOp{kind: opGuardOf, path: path, guard: guard})
	}
	p.guardOf[path] = guard
}

// readGuardOf reads a file's registered guard macro, observing the read —
// whether or not the file has one yet, since absence is state too.
func (p *Preprocessor) readGuardOf(path string) (string, bool) {
	p.touchKey("g:" + path)
	g, ok := p.guardOf[path]
	return g, ok
}

// bumpTimesInc counts an inclusion, recording it so replays keep per-unit
// inclusion counts (and the guard-skip stats derived from them) coherent.
// The ReincludedHeaders increment lives here, not at the include site:
// timesInc is per-unit state the fingerprint deliberately ignores, so the
// counter must be re-derived against the live map when an opTimesInc is
// replayed (the record-time count in the stored stats delta is zeroed).
func (p *Preprocessor) bumpTimesInc(path string) {
	if p.recording() {
		p.appendOp(replayOp{kind: opTimesInc, path: path})
	}
	if p.timesInc[path] > 0 {
		p.stats.ReincludedHeaders++
	}
	p.timesInc[path]++
}

// noteDep records a file read (path, content hash) in every active recorder.
func (p *Preprocessor) noteDep(path, hash string) {
	for _, r := range p.recorders {
		if !r.poisoned {
			r.deps = append(r.deps, hcache.Dep{Path: path, Hash: hash})
		}
	}
}

// noteProbe records an include-resolution existence check.
func (p *Preprocessor) noteProbe(path string, exists bool) {
	for _, r := range p.recorders {
		if !r.poisoned {
			r.probes = append(r.probes, hcache.Probe{Path: path, Exists: exists})
		}
	}
}

// noteIncludeDepth tracks the deepest nesting each recording reaches,
// relative to its own start, after includeDepth was incremented.
func (p *Preprocessor) noteIncludeDepth() {
	for _, r := range p.recorders {
		if d := p.includeDepth - r.startInc; d > r.maxRelInc {
			r.maxRelInc = d
		}
	}
}

// poisonRecorders marks every active recording unstorable. Used when a
// result depends on state the fingerprint cannot capture (__COUNTER__, the
// absolute include-depth limit).
func (p *Preprocessor) poisonRecorders() {
	for _, r := range p.recorders {
		r.poisoned = true
	}
}

// probeFS wraps the unit's file system so existence checks made during
// include resolution are recorded as probes.
type probeFS struct{ p *Preprocessor }

func (f probeFS) ReadFile(path string) ([]byte, error) { return f.p.fs.ReadFile(path) }

func (f probeFS) Exists(path string) bool {
	ok := f.p.fs.Exists(path)
	f.p.noteProbe(path, ok)
	return ok
}

// resolveFS returns the file system include resolution should probe through.
func (p *Preprocessor) resolveFS() FileSystem {
	if p.recording() {
		return probeFS{p}
	}
	return p.fs
}

// beginRecording pushes a recorder and swaps in a fresh stats block so the
// recording accumulates its own delta.
func (p *Preprocessor) beginRecording() *headerRec {
	r := &headerRec{
		keys:      make(map[string]bool),
		diagStart: len(p.diags),
		prevStats: p.stats,
		startInc:  p.includeDepth,
		portable:  true,
	}
	p.stats = &UnitStats{}
	p.recorders = append(p.recorders, r)
	return r
}

// endRecording pops the recorder, folds the stats delta back into the
// enclosing block, and stores the entry unless processing failed or the
// recording was poisoned.
func (p *Preprocessor) endRecording(r *headerRec, key string, segs []Segment, failed bool) {
	p.recorders = p.recorders[:len(p.recorders)-1]
	delta := *p.stats
	p.stats = r.prevStats
	p.stats.Add(delta)
	if failed || r.poisoned {
		return
	}
	// Replays add the stored stats delta to their unit, but lexing time is
	// wall-clock actually spent, not semantic output: zero it so Level-2 hits
	// report their true (near-zero) lexing cost. ReincludedHeaders depends on
	// the replaying unit's own inclusion counts, so it is re-derived from the
	// opTimesInc trace instead (see bumpTimesInc).
	delta.LexTime = 0
	delta.ReincludedHeaders = 0
	pl := &headerPayload{
		segs:  exportSegs(p.exporter, segs),
		ops:   r.ops,
		diags: append([]Diagnostic(nil), p.diags[r.diagStart:]...),
		stats: delta,
	}
	p.hcache.Store(key, &hcache.Entry{
		Fingerprint:     r.fp,
		Deps:            r.deps,
		Probes:          r.probes,
		RelIncludeDepth: r.maxRelInc,
		Bytes:           delta.Bytes,
		Payload:         pl,
		Portable:        r.portable,
	})
}

// tryReplay looks for a Level-2 entry whose recorded fingerprint, deps, and
// probes all hold in this unit's current state and, if found, replays it:
// imports the segment forest into this unit's space, reapplies the
// side-effect trace through the observed table methods (so enclosing
// recordings capture it), and propagates the entry's observations into any
// enclosing recorders.
func (p *Preprocessor) tryReplay(key string) ([]Segment, bool) {
	sigMemo := make(map[string]string)
	match := func(e *hcache.Entry) bool {
		if p.includeDepth+e.RelIncludeDepth > p.maxInclude {
			return false
		}
		for _, kv := range e.Fingerprint {
			sig, ok := sigMemo[kv.Key]
			if !ok {
				sig = p.sigOf(kv.Key)
				sigMemo[kv.Key] = sig
			}
			if sig != kv.Sig {
				return false
			}
		}
		for _, d := range e.Deps {
			src, err := p.fs.ReadFile(d.Path)
			if err != nil || hcache.Hash(src) != d.Hash {
				return false
			}
		}
		for _, pr := range e.Probes {
			if p.fs.Exists(pr.Path) != pr.Exists {
				return false
			}
		}
		return true
	}
	e, ok := p.hcache.Lookup(key, match)
	if !ok {
		return nil, false
	}
	// Propagate the entry's observations into enclosing recorders: what the
	// recorded processing touched, this unit's processing now also depends
	// on. Fingerprint keys are touched before ops replay so enclosing
	// recorders capture pre-replay state.
	for _, kv := range e.Fingerprint {
		p.touchKey(kv.Key)
	}
	for _, d := range e.Deps {
		p.noteDep(d.Path, d.Hash)
	}
	for _, pr := range e.Probes {
		p.noteProbe(pr.Path, pr.Exists)
	}
	for _, r := range p.recorders {
		if d := (p.includeDepth - r.startInc) + e.RelIncludeDepth; d > r.maxRelInc {
			r.maxRelInc = d
		}
	}
	pl := e.Payload.(*headerPayload)
	for _, op := range pl.ops {
		p.applyOp(op)
	}
	p.diags = append(p.diags, pl.diags...)
	p.stats.Add(pl.stats)
	return importSegs(p.importer, pl.segs), true
}

// applyOp replays one recorded side effect into this unit. Ops flow through
// the same observed entry points as organic processing, so nested recordings
// and stats stay coherent.
func (p *Preprocessor) applyOp(op replayOp) {
	switch op.kind {
	case opDefine:
		p.macros.Define(op.name, op.def, p.importer.Import(op.cond))
	case opUndef:
		p.macros.Undefine(op.name, p.importer.Import(op.cond))
	case opMarkGuard:
		p.macros.MarkGuard(op.name)
	case opGuardOf:
		p.setGuardOf(op.path, op.guard)
	case opTimesInc:
		p.bumpTimesInc(op.path)
	}
}

// cacheEligible reports whether an include at condition c may go through the
// Level-2 cache: only whole headers spliced at top level under the True
// condition are recorded or replayed — there the incoming macro state is the
// entire context, which is exactly what the fingerprint captures.
func (p *Preprocessor) cacheEligible(c cond.Cond) bool {
	return p.hcache != nil && p.condDepth == 0 && p.space.IsTrue(c)
}

// processFileCached is processFile with the Level-2 cache in front: on a
// fingerprint match the stored result replays; on a miss the file processes
// under a fresh recording whose result is stored for the next unit.
func (p *Preprocessor) processFileCached(path string, c cond.Cond) ([]Segment, error) {
	if !p.cacheEligible(c) {
		return p.processFile(path, c)
	}
	faultinject.At(faultinject.PointHeaderCache, p.stats.File, p.budget)
	src, err := p.fs.ReadFile(path)
	if err != nil {
		return nil, err
	}
	hash := hcache.Hash(src)
	p.noteDep(path, hash)
	key := path + "\x00" + hash + "\x00" + p.cfgKey
	if segs, ok := p.tryReplay(key); ok {
		return segs, nil
	}
	rec := p.beginRecording()
	segs, err := p.processFileSrc(path, src, hash, c)
	// A recording made under a tripped budget saw truncated expansion;
	// storing it would poison the shared cache for healthy units.
	p.endRecording(rec, key, segs, err != nil || p.budget.Tripped())
	return segs, err
}

// configKey fingerprints the preprocessor configuration that affects header
// output beyond macro state: condition-space mode, include search path,
// builtins, and the include-depth limit. Two Preprocessors sharing a cache
// with different configurations never cross-hit.
func configKey(opts Options, builtins map[string]string, maxInc int) string {
	var b strings.Builder
	if opts.Space.Mode() == cond.ModeBDD {
		b.WriteString("bdd;")
	} else {
		b.WriteString("sat;")
	}
	for _, dir := range opts.IncludePaths {
		b.WriteString(dir)
		b.WriteByte(';')
	}
	names := make([]string, 0, len(builtins))
	for name := range builtins {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b.WriteString(name)
		b.WriteByte('=')
		b.WriteString(builtins[name])
		b.WriteByte(';')
	}
	b.WriteString(strconv.Itoa(maxInc))
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:8])
}
