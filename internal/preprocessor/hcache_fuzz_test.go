package preprocessor

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/cond"
	"repro/internal/hcache"
)

// genCacheFuzzInput derives a random (but deterministic in the seeds)
// include graph: headerSeed shapes the headers — guards, defines, undefs,
// conditionals on shared macro names, nested includes, #include_next —
// and envSeed shapes the unit: which headers it includes in what order and
// which macros it defines or undefines between them.
func genCacheFuzzInput(headerSeed, envSeed uint64) (map[string]string, []string) {
	r := rand.New(rand.NewSource(int64(headerSeed)))
	n := 2 + r.Intn(4)
	files := map[string]string{}
	macros := []string{"M0", "M1", "M2", "ENV0", "ENV1"}
	for i := 0; i < n; i++ {
		var b strings.Builder
		guarded := r.Intn(3) > 0
		if guarded {
			fmt.Fprintf(&b, "#ifndef H%d_H\n#define H%d_H\n", i, i)
		}
		for l, lines := 0, 1+r.Intn(4); l < lines; l++ {
			switch r.Intn(6) {
			case 0:
				fmt.Fprintf(&b, "#define M%d %d\n", r.Intn(3), r.Intn(10))
			case 1:
				fmt.Fprintf(&b, "#undef M%d\n", r.Intn(3))
			case 2:
				m := macros[r.Intn(len(macros))]
				fmt.Fprintf(&b, "#ifdef %s\nint c%d_%d = %s;\n#else\nint c%d_%d;\n#endif\n",
					m, i, l, m, i, l)
			case 3:
				// Only include later headers: the graph stays acyclic.
				if i+1 < n {
					fmt.Fprintf(&b, "#include <h%d.h>\n", i+1+r.Intn(n-i-1))
				}
			case 4:
				fmt.Fprintf(&b, "int v%d_%d = %d;\n", i, l, r.Intn(100))
			case 5:
				fmt.Fprintf(&b, "#include_next <h%d.h>\n", i)
			}
		}
		if guarded {
			b.WriteString("#endif\n")
		}
		files[fmt.Sprintf("include/h%d.h", i)] = b.String()
		files[fmt.Sprintf("include2/h%d.h", i)] = fmt.Sprintf("#define NEXT%d 1\nint next%d;\n", i, i)
	}

	re := rand.New(rand.NewSource(int64(envSeed)))
	var mb strings.Builder
	if re.Intn(2) == 0 {
		fmt.Fprintf(&mb, "#define ENV%d 1\n", re.Intn(2))
	}
	for j, k := 0, 1+re.Intn(4); j < k; j++ {
		fmt.Fprintf(&mb, "#include <h%d.h>\n", re.Intn(n))
		if re.Intn(3) == 0 {
			fmt.Fprintf(&mb, "#define M%d %d\n", re.Intn(3), re.Intn(10))
		}
		if re.Intn(4) == 0 {
			fmt.Fprintf(&mb, "#undef M%d\n", re.Intn(3))
		}
	}
	mb.WriteString("int done;\n")
	files["main.c"] = mb.String()
	return files, []string{"include", "include2"}
}

// FuzzHeaderCache is the property test behind the seeded scenarios: for any
// generated include graph and unit environment, preprocessing through a
// shared header cache — including a second unit that replays the first's
// entries — must equal an uncached run exactly.
func FuzzHeaderCache(f *testing.F) {
	f.Add(uint64(1), uint64(1))
	f.Add(uint64(2), uint64(7))
	f.Add(uint64(42), uint64(3))
	f.Add(uint64(99), uint64(99))
	f.Add(uint64(7), uint64(123456))
	f.Add(uint64(0xdeadbeef), uint64(0xcafe))
	f.Fuzz(func(t *testing.T, headerSeed, envSeed uint64) {
		files, paths := genCacheFuzzInput(headerSeed, envSeed)
		ref, refSpace := ppWith(t, files, nil, cond.ModeBDD, paths)
		hc := hcache.New(hcache.Options{})
		first, firstSpace := ppWith(t, files, hc, cond.ModeBDD, paths)
		equalUnits(t, refSpace, ref, firstSpace, first, "recording run")
		second, secondSpace := ppWith(t, files, hc, cond.ModeBDD, paths)
		equalUnits(t, refSpace, ref, secondSpace, second, "replaying run")
	})
}
