package preprocessor

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/cond"
	"repro/internal/token"
)

// randomProgram builds a random preprocessor-heavy program over nvars
// configuration variables. Constructs are drawn from the interaction
// patterns of Table 1 so the differential check stresses the interesting
// code paths: nested conditionals, elif chains, multiply-defined macros,
// function-like macros with conditional arguments, pasting, and
// stringification.
func randomProgram(r *rand.Rand, nvars int) string {
	var b strings.Builder
	vars := make([]string, nvars)
	for i := range vars {
		vars[i] = fmt.Sprintf("V%d", i)
	}
	v := func() string { return vars[r.Intn(len(vars))] }

	// A couple of macros to exercise expansion under conditions.
	fmt.Fprintf(&b, "#ifdef %s\n#define WIDTH 64\n#else\n#define WIDTH 32\n#endif\n", v())
	b.WriteString("#define GLUE2(a, b) a ## b\n#define GLUE(a, b) GLUE2(a, b)\n")
	b.WriteString("#define STR(x) #x\n#define WRAP(x) (x)\n")

	depth := 0
	nblocks := 6 + r.Intn(6)
	for i := 0; i < nblocks; i++ {
		switch r.Intn(8) {
		case 0: // open a conditional
			if depth < 3 {
				switch r.Intn(3) {
				case 0:
					fmt.Fprintf(&b, "#ifdef %s\n", v())
				case 1:
					fmt.Fprintf(&b, "#ifndef %s\n", v())
				default:
					fmt.Fprintf(&b, "#if defined(%s) && !defined(%s)\n", v(), v())
				}
				depth++
			}
		case 1: // elif/else/close
			if depth > 0 {
				switch r.Intn(3) {
				case 0:
					fmt.Fprintf(&b, "#elif defined(%s)\n", v())
				case 1:
					b.WriteString("#else\n")
					fmt.Fprintf(&b, "int e%d;\n", i)
					b.WriteString("#endif\n")
					depth--
				default:
					b.WriteString("#endif\n")
					depth--
				}
			}
		case 2: // plain declaration
			fmt.Fprintf(&b, "int d%d = %d;\n", i, r.Intn(100))
		case 3: // multiply-defined macro use
			fmt.Fprintf(&b, "int w%d = WIDTH;\n", i)
		case 4: // conditional-expression use of WIDTH
			fmt.Fprintf(&b, "#if WIDTH == 64\nlong q%d;\n#endif\n", i)
		case 5: // pasting through WIDTH
			fmt.Fprintf(&b, "int GLUE(sym%d_, WIDTH) = 1;\n", i)
		case 6: // stringification
			fmt.Fprintf(&b, "char *s%d = STR(v %d);\n", i, i)
		default: // function-like macro with conditional argument
			fmt.Fprintf(&b, "int f%d = WRAP(\n#ifdef %s\n%d +\n#endif\n%d);\n", i, v(), r.Intn(9), r.Intn(9))
		}
	}
	for ; depth > 0; depth-- {
		b.WriteString("#endif\n")
	}
	return b.String()
}

// TestDifferentialRandomPrograms cross-validates configuration-preserving
// preprocessing against single-configuration preprocessing on random
// programs, for every configuration — the repository's analogue of the
// paper's gcc -E comparison that gave them "high assurance that SuperC's
// preprocessor is correct".
func TestDifferentialRandomPrograms(t *testing.T) {
	const nvars = 3
	r := rand.New(rand.NewSource(20260705))
	for trial := 0; trial < 40; trial++ {
		src := randomProgram(r, nvars)
		files := map[string]string{"main.c": src}

		space := cond.NewSpace(cond.ModeBDD)
		pres := New(Options{Space: space, FS: MapFS(files)})
		unit, err := pres.Preprocess("main.c")
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, src)
		}
		bad := false
		for _, d := range unit.Diags {
			if !d.Warning {
				bad = true
			}
		}
		if bad {
			t.Fatalf("trial %d: diagnostics %v\n%s", trial, unit.Diags, src)
		}

		for bits := 0; bits < 1<<nvars; bits++ {
			assign := map[string]bool{}
			single := New(Options{Space: cond.NewSpace(cond.ModeBDD), FS: MapFS(files), SingleConfig: true})
			for i := 0; i < nvars; i++ {
				if bits&(1<<i) != 0 {
					name := fmt.Sprintf("V%d", i)
					assign["(defined "+name+")"] = true
					if err := single.Define(name, "1"); err != nil {
						t.Fatal(err)
					}
				}
			}
			su, err := single.PreprocessKeepTable("main.c")
			if err != nil {
				t.Fatalf("trial %d single: %v", trial, err)
			}
			want := joinTokens(Tokens(space, su.Segments, nil))
			got := joinTokens(Tokens(space, unit.Segments, assign))
			if got != want {
				t.Fatalf("trial %d config %03b:\npreserving: %s\nsingle:     %s\nsource:\n%s",
					trial, bits, got, want, src)
			}
		}
	}
}

func joinTokens(toks []token.Token) string {
	parts := make([]string, len(toks))
	for i, t := range toks {
		parts[i] = t.Text
	}
	return strings.Join(parts, " ")
}
