package preprocessor

import (
	"strings"
	"testing"

	"repro/internal/cond"
)

func TestIncludeNext(t *testing.T) {
	// A wrapper header shadows the real one in an earlier include path and
	// defers to it with #include_next (gcc semantics).
	s := cond.NewSpace(cond.ModeBDD)
	p := New(Options{
		Space: s,
		FS: MapFS(map[string]string{
			"main.c":        "#include <limits.h>\nint max = PLATFORM_MAX + WRAPPED;\n",
			"wrap/limits.h": "#ifndef WRAP_LIMITS_H\n#define WRAP_LIMITS_H\n#define WRAPPED 1\n#include_next <limits.h>\n#endif\n",
			"sys/limits.h":  "#ifndef SYS_LIMITS_H\n#define SYS_LIMITS_H\n#define PLATFORM_MAX 100\n#endif\n",
		}),
		IncludePaths: []string{"wrap", "sys"},
	})
	u, err := p.Preprocess("main.c")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range u.Diags {
		if !d.Warning {
			t.Fatalf("diag: %s", d)
		}
	}
	if got := flatText(t, u.Segments); got != "int max = 100 + 1 ;" {
		t.Errorf("got %q", got)
	}
}

func TestCounterBuiltin(t *testing.T) {
	u, _, _ := pp(t, map[string]string{"main.c": "int a = __COUNTER__;\nint b = __COUNTER__;\nint c = __COUNTER__;\n"})
	if got := flatText(t, u.Segments); got != "int a = 0 ; int b = 1 ; int c = 2 ;" {
		t.Errorf("got %q", got)
	}
	// The counter resets per unit.
	u2, _, _ := pp(t, map[string]string{"main.c": "int a = __COUNTER__;\n"})
	if got := flatText(t, u2.Segments); got != "int a = 0 ;" {
		t.Errorf("second unit: %q", got)
	}
}

// collectDiags preprocesses expecting diagnostics.
func collectDiags(t *testing.T, files map[string]string) []Diagnostic {
	t.Helper()
	s := cond.NewSpace(cond.ModeBDD)
	p := New(Options{Space: s, FS: MapFS(files), IncludePaths: []string{"include"}})
	u, err := p.Preprocess("main.c")
	if err != nil {
		t.Fatalf("hard failure: %v", err)
	}
	return u.Diags
}

func hasError(diags []Diagnostic, substr string) bool {
	for _, d := range diags {
		if !d.Warning && strings.Contains(d.Msg, substr) {
			return true
		}
	}
	return false
}

func TestRobustnessDiagnostics(t *testing.T) {
	cases := []struct {
		name  string
		files map[string]string
		want  string
	}{
		{
			"missing include",
			map[string]string{"main.c": "#include \"nope.h\"\n"},
			"include not found",
		},
		{
			"unterminated #if",
			map[string]string{"main.c": "#ifdef A\nint x;\n"},
			"unterminated #if",
		},
		{
			"#endif without #if",
			map[string]string{"main.c": "#endif\n"},
			"#endif without #if",
		},
		{
			"#else without #if",
			map[string]string{"main.c": "#else\n"},
			"#else without #if",
		},
		{
			"#elif after #else",
			map[string]string{"main.c": "#ifdef A\n#else\n#elif defined(B)\n#endif\n"},
			"#elif after #else",
		},
		{
			"malformed #undef",
			map[string]string{"main.c": "#undef 42\n"},
			"malformed #undef",
		},
		{
			"unknown directive",
			map[string]string{"main.c": "#frobnicate\n"},
			"unknown directive",
		},
		{
			"bad conditional expression",
			map[string]string{"main.c": "#if +\nint x;\n#endif\n"},
			"bad conditional expression",
		},
		{
			"wrong macro arity",
			map[string]string{"main.c": "#define F(a, b) a\nint x = F(1);\n"},
			"expects 2 arguments",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			diags := collectDiags(t, c.files)
			if !hasError(diags, c.want) {
				t.Errorf("want %q in %v", c.want, diags)
			}
		})
	}
}

func TestIncludeDepthLimit(t *testing.T) {
	s := cond.NewSpace(cond.ModeBDD)
	p := New(Options{
		Space:           s,
		FS:              MapFS(map[string]string{"main.c": "#include \"main.c\"\n"}),
		MaxIncludeDepth: 8,
	})
	u, err := p.Preprocess("main.c")
	if err != nil {
		t.Fatal(err)
	}
	if !hasError(u.Diags, "include depth limit") {
		t.Errorf("diags: %v", u.Diags)
	}
}

func TestEmptyMacroBody(t *testing.T) {
	u, _, _ := pp(t, map[string]string{"main.c": "#define NOTHING\nint NOTHING x NOTHING;\n"})
	if got := flatText(t, u.Segments); got != "int x ;" {
		t.Errorf("got %q", got)
	}
}

func TestMacroDefinedAsItselfInConditional(t *testing.T) {
	// #if with a self-referential macro must terminate and treat the
	// residual name as a free atom.
	u, s, _ := pp(t, map[string]string{"main.c": "#define LOOP LOOP\n#if LOOP\nint x;\n#endif\n"})
	on := map[string]bool{"LOOP": true}
	if got := textOf(s, u.Segments, on); got != "int x ;" {
		t.Errorf("on: %q", got)
	}
}

func TestConditionalWithMissingBranchesOnly(t *testing.T) {
	// All branches infeasible: the conditional vanishes entirely.
	u, s, _ := pp(t, map[string]string{"main.c": `
#ifdef A
#ifndef A
int impossible1;
#else
#endif
#endif
int live;
`})
	for _, assign := range []map[string]bool{nil, {"(defined A)": true}} {
		if got := textOf(s, u.Segments, assign); got != "int live ;" {
			t.Errorf("%v: %q", assign, got)
		}
	}
}

func TestDeeplyNestedParensInMacroArgs(t *testing.T) {
	u, _, _ := pp(t, map[string]string{"main.c": "#define ID(x) x\nint v = ID(((((1 + (2))))));\n"})
	if got := flatText(t, u.Segments); got != "int v = ( ( ( ( 1 + ( 2 ) ) ) ) ) ;" {
		t.Errorf("got %q", got)
	}
}

func TestGuardedHeaderChainDeep(t *testing.T) {
	files := map[string]string{"main.c": "#include \"h0.h\"\nint v = D0 + D9;\n"}
	for i := 0; i < 10; i++ {
		var b strings.Builder
		guard := strings.ToUpper("h" + string(rune('0'+i)) + "_H")
		b.WriteString("#ifndef " + guard + "\n#define " + guard + "\n")
		if i < 9 {
			b.WriteString("#include \"h" + string(rune('1'+i)) + ".h\"\n")
		}
		b.WriteString("#define D" + string(rune('0'+i)) + " " + string(rune('0'+i)) + "\n#endif\n")
		files["h"+string(rune('0'+i))+".h"] = b.String()
	}
	u, _, _ := pp(t, files)
	if got := flatText(t, u.Segments); got != "int v = 0 + 9 ;" {
		t.Errorf("got %q", got)
	}
	if u.Stats.Includes != 10 {
		t.Errorf("includes = %d, want 10", u.Stats.Includes)
	}
}

func TestBenignRedefinitionNotCounted(t *testing.T) {
	u, _, _ := pp(t, map[string]string{"main.c": "#define N 1\n#define N 1\n#define N 2\nint x = N;\n"})
	// Only the 1 -> 2 change is a real redefinition.
	if u.Stats.Redefinitions != 1 {
		t.Errorf("Redefinitions = %d, want 1", u.Stats.Redefinitions)
	}
	if got := flatText(t, u.Segments); got != "int x = 2 ;" {
		t.Errorf("got %q", got)
	}
}

func TestUndefOfBuiltinAndRedefine(t *testing.T) {
	u, _, _ := pp(t, map[string]string{"main.c": "#undef __GNUC__\n#define __GNUC__ 9\nint v = __GNUC__;\n"})
	if got := flatText(t, u.Segments); got != "int v = 9 ;" {
		t.Errorf("got %q", got)
	}
}

func TestStringizeVariadic(t *testing.T) {
	u, _, _ := pp(t, map[string]string{"main.c": "#define TRACE(...) log(#__VA_ARGS__)\nTRACE(a, b + 1);\n"})
	if got := flatText(t, u.Segments); got != `log ( "a, b + 1" ) ;` {
		t.Errorf("got %q", got)
	}
}

func TestPasteWithEmptyArg(t *testing.T) {
	u, _, _ := pp(t, map[string]string{"main.c": "#define GLUE(a, b) a##b\nint GLUE(x, ) = 1;\nint GLUE(, y) = 2;\n"})
	if got := flatText(t, u.Segments); got != "int x = 1 ; int y = 2 ;" {
		t.Errorf("got %q", got)
	}
}

func TestForestHelpers(t *testing.T) {
	u, s, _ := pp(t, map[string]string{"main.c": `
int a;
#ifdef X
int b;
#ifdef Y
int c;
#endif
#endif
`})
	if got := CountTokens(u.Segments); got != 9 {
		t.Errorf("CountTokens = %d, want 9", got)
	}
	if got := MaxDepth(u.Segments); got != 2 {
		t.Errorf("MaxDepth = %d, want 2", got)
	}
	text := FlattenText(s, u.Segments)
	for _, want := range []string{"int a ;", "#if", "#endif"} {
		if !strings.Contains(text, want) {
			t.Errorf("FlattenText missing %q:\n%s", want, text)
		}
	}
}
