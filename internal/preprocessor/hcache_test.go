package preprocessor

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/cond"
	"repro/internal/hcache"
	"repro/internal/token"
)

// ppWith preprocesses main.c with an optional shared header cache and an
// optional include-path override, returning the unit and its space.
func ppWith(t *testing.T, files map[string]string, hc *hcache.Cache, mode cond.Mode, paths []string) (*Unit, *cond.Space) {
	t.Helper()
	if paths == nil {
		paths = []string{"include"}
	}
	s := cond.NewSpace(mode)
	p := New(Options{Space: s, FS: MapFS(files), IncludePaths: paths, HeaderCache: hc})
	u, err := p.Preprocess("main.c")
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	return u, s
}

// equalTok compares the full observable token identity, position included:
// the differential oracle demands byte-identical streams.
func equalTok(a, b *token.Token) string {
	if a.Kind != b.Kind || a.Text != b.Text {
		return fmt.Sprintf("token %v vs %v", a, b)
	}
	if a.File != b.File || a.Line != b.Line || a.Col != b.Col {
		return fmt.Sprintf("position %s vs %s for %v", a.Pos(), b.Pos(), a)
	}
	if a.HasSpace != b.HasSpace || a.Expanded != b.Expanded {
		return fmt.Sprintf("flags differ for %v (space %v/%v expanded %v/%v)",
			a, a.HasSpace, b.HasSpace, a.Expanded, b.Expanded)
	}
	return ""
}

// equalForest structurally compares two segment forests from (possibly)
// different spaces. Presence conditions are compared semantically by
// exporting both sides into one comparison space.
func equalForest(t *testing.T, sa *cond.Space, a []Segment, sb *cond.Space, b []Segment, label string) {
	t.Helper()
	cmpSpace := cond.NewSpace(cond.ModeBDD)
	ia, ib := cmpSpace.NewImporter(), cmpSpace.NewImporter()
	ea, eb := sa.NewExporter(), sb.NewExporter()
	var walk func(a, b []Segment, path string)
	walk = func(a, b []Segment, path string) {
		if len(a) != len(b) {
			t.Fatalf("%s%s: %d vs %d segments", label, path, len(a), len(b))
		}
		for i := range a {
			at, bt := a[i], b[i]
			if at.IsToken() != bt.IsToken() {
				t.Fatalf("%s%s[%d]: token vs conditional", label, path, i)
			}
			if at.IsToken() {
				if d := equalTok(at.Tok, bt.Tok); d != "" {
					t.Fatalf("%s%s[%d]: %s", label, path, i, d)
				}
				continue
			}
			if len(at.Cond.Branches) != len(bt.Cond.Branches) {
				t.Fatalf("%s%s[%d]: %d vs %d branches", label, path, i,
					len(at.Cond.Branches), len(bt.Cond.Branches))
			}
			for j := range at.Cond.Branches {
				ca := ia.Import(ea.Export(at.Cond.Branches[j].Cond))
				cb := ib.Import(eb.Export(bt.Cond.Branches[j].Cond))
				if !cmpSpace.Equal(ca, cb) {
					t.Fatalf("%s%s[%d] branch %d: conditions differ: %s vs %s",
						label, path, i, j, cmpSpace.String(ca), cmpSpace.String(cb))
				}
				walk(at.Cond.Branches[j].Segs, bt.Cond.Branches[j].Segs,
					fmt.Sprintf("%s[%d].b%d", path, i, j))
			}
		}
	}
	walk(a, b, "")
}

// equalUnits compares forests, diagnostics, and the deterministic stats.
func equalUnits(t *testing.T, sa *cond.Space, a *Unit, sb *cond.Space, b *Unit, label string) {
	t.Helper()
	equalForest(t, sa, a.Segments, sb, b.Segments, label)
	if len(a.Diags) != len(b.Diags) {
		t.Fatalf("%s: %d vs %d diagnostics", label, len(a.Diags), len(b.Diags))
	}
	for i := range a.Diags {
		if a.Diags[i].String() != b.Diags[i].String() {
			t.Fatalf("%s: diag %d: %s vs %s", label, i, a.Diags[i], b.Diags[i])
		}
	}
	as, bs := a.Stats, b.Stats
	as.LexTime, bs.LexTime = 0, 0 // wall-clock, legitimately differs
	if as != bs {
		t.Fatalf("%s: stats differ:\n%+v\n%+v", label, as, bs)
	}
}

// cacheScenarios are the seeded property cases: each include-graph shape the
// fuzzer also explores, with the second cached run checked against an
// uncached reference.
var cacheScenarios = []struct {
	name  string
	files map[string]string
	paths []string
}{
	{"guarded header", map[string]string{
		"main.c":           "#include <config.h>\n#include <config.h>\nint x = LIMIT;\n",
		"include/config.h": "#ifndef CONFIG_H\n#define CONFIG_H\n#define LIMIT 42\n#endif\n",
	}, nil},
	{"diamond includes", map[string]string{
		"main.c":         "#include <a.h>\n#include <b.h>\nint v = BOTH;\n",
		"include/a.h":    "#ifndef A_H\n#define A_H\n#include <base.h>\n#define FROM_A 1\n#endif\n",
		"include/b.h":    "#ifndef B_H\n#define B_H\n#include <base.h>\n#define BOTH (BASE + FROM_A)\n#endif\n",
		"include/base.h": "#ifndef BASE_H\n#define BASE_H\n#define BASE 10\n#endif\n",
	}, nil},
	{"include_next chain", map[string]string{
		"main.c":          "#include <wrap.h>\nint n = DEPTH;\n",
		"include/wrap.h":  "#ifndef WRAP_H\n#define WRAP_H\n#include_next <wrap.h>\n#define DEPTH (INNER + 1)\n#endif\n",
		"include2/wrap.h": "#define INNER 1\n",
	}, []string{"include", "include2"}},
	{"undef between includes", map[string]string{
		"main.c":      "#include <x.h>\n#undef MODE\n#define MODE 2\n#include <x.h>\nint m = VAL;\n",
		"include/x.h": "#ifdef MODE\n#define VAL MODE\n#else\n#define VAL 0\n#define MODE 1\n#endif\n",
	}, nil},
	{"conditional include", map[string]string{
		"main.c":        "#ifdef CONFIG_NET\n#include <net.h>\n#endif\nint done;\n",
		"include/net.h": "#define NET 1\nint net_tbl[NET];\n",
	}, nil},
	{"computed include", map[string]string{
		"main.c":        "#ifdef CONFIG_ALT\n#define HDR <alt.h>\n#else\n#define HDR <std.h>\n#endif\n#include HDR\nint z = PICK;\n",
		"include/alt.h": "#define PICK 1\n",
		"include/std.h": "#define PICK 2\n",
	}, nil},
	{"function-like macros from header", map[string]string{
		"main.c":      "#include <m.h>\nint r = MAX(1, ADD(2, 3));\n",
		"include/m.h": "#ifndef M_H\n#define M_H\n#define ADD(a, b) ((a) + (b))\n#define MAX(a, b) ((a) > (b) ? (a) : (b))\n#endif\n",
	}, nil},
	{"header with conditional API", map[string]string{
		"main.c":        "#include <api.h>\nint s = SIZE;\n",
		"include/api.h": "#ifndef API_H\n#define API_H\n#ifdef CONFIG_64BIT\n#define SIZE 8\n#else\n#define SIZE 4\n#endif\n#endif\n",
	}, nil},
	{"counter in header", map[string]string{
		"main.c":      "#include <c.h>\n#include <c.h>\nint t = __COUNTER__;\n",
		"include/c.h": "int tag[__COUNTER__ + 1];\n",
	}, nil},
}

func TestHeaderCacheDifferentialScenarios(t *testing.T) {
	for _, mode := range []cond.Mode{cond.ModeBDD, cond.ModeSAT} {
		for _, sc := range cacheScenarios {
			t.Run(fmt.Sprintf("%v/%s", mode, sc.name), func(t *testing.T) {
				ref, refSpace := ppWith(t, sc.files, nil, mode, sc.paths)
				hc := hcache.New(hcache.Options{})
				// First cached run records; second replays what it can.
				ppWith(t, sc.files, hc, mode, sc.paths)
				got, gotSpace := ppWith(t, sc.files, hc, mode, sc.paths)
				equalUnits(t, refSpace, ref, gotSpace, got, sc.name)
			})
		}
	}
}

func TestHeaderCacheHitsOnSecondUnit(t *testing.T) {
	files := map[string]string{
		"main.c":           "#include <config.h>\nint x = LIMIT;\n",
		"include/config.h": "#ifndef CONFIG_H\n#define CONFIG_H\n#define LIMIT 42\n#endif\n",
	}
	hc := hcache.New(hcache.Options{})
	ppWith(t, files, hc, cond.ModeBDD, nil)
	before := hc.Stats()
	if before.HeaderHits != 0 || before.HeaderMisses == 0 {
		t.Fatalf("first unit should only miss: %+v", before)
	}
	ppWith(t, files, hc, cond.ModeBDD, nil)
	d := hc.Stats().Sub(before)
	if d.HeaderHits != 1 || d.HeaderMisses != 0 {
		t.Errorf("second unit: hits=%d misses=%d, want 1 hit 0 misses", d.HeaderHits, d.HeaderMisses)
	}
	if d.LexHits != 1 {
		t.Errorf("second unit should hit Level 1 for main.c: lex hits=%d", d.LexHits)
	}
	if d.BytesSaved != int64(len(files["include/config.h"])) {
		t.Errorf("BytesSaved=%d, want header size %d", d.BytesSaved, len(files["include/config.h"]))
	}
}

// TestHeaderCacheFingerprint pins the interaction-set semantics: hits are
// taken exactly when the macro state the header observes matches.
func TestHeaderCacheFingerprint(t *testing.T) {
	header := "#ifndef X_H\n#define X_H\n#ifdef TUNE\nint tuned = TUNE;\n#else\nint plain;\n#endif\n#endif\n"
	mk := func(prefix string) map[string]string {
		return map[string]string{
			"main.c":      prefix + "#include <x.h>\nint end;\n",
			"include/x.h": header,
		}
	}
	t.Run("unrelated macro still hits", func(t *testing.T) {
		hc := hcache.New(hcache.Options{})
		ppWith(t, mk(""), hc, cond.ModeBDD, nil)
		before := hc.Stats()
		// UNRELATED is not in x.h's interaction set: the fingerprint matches.
		ppWith(t, mk("#define UNRELATED 7\n"), hc, cond.ModeBDD, nil)
		d := hc.Stats().Sub(before)
		if d.HeaderHits != 1 {
			t.Errorf("hits=%d, want 1 (UNRELATED must not affect the fingerprint)", d.HeaderHits)
		}
	})
	t.Run("observed macro forces miss", func(t *testing.T) {
		hc := hcache.New(hcache.Options{})
		ppWith(t, mk(""), hc, cond.ModeBDD, nil)
		before := hc.Stats()
		// TUNE is read by x.h: defining it must miss and re-record.
		ppWith(t, mk("#define TUNE 9\n"), hc, cond.ModeBDD, nil)
		d := hc.Stats().Sub(before)
		if d.HeaderHits != 0 || d.HeaderMisses != 1 {
			t.Errorf("hits=%d misses=%d, want a miss (TUNE is observed)", d.HeaderHits, d.HeaderMisses)
		}
		// Both macro states now have entries: each repeats as a hit.
		mid := hc.Stats()
		ppWith(t, mk(""), hc, cond.ModeBDD, nil)
		ppWith(t, mk("#define TUNE 9\n"), hc, cond.ModeBDD, nil)
		d = hc.Stats().Sub(mid)
		if d.HeaderHits != 2 || d.HeaderMisses != 0 {
			t.Errorf("replays: hits=%d misses=%d, want 2 hits", d.HeaderHits, d.HeaderMisses)
		}
	})
	t.Run("guard already defined degenerates to skip", func(t *testing.T) {
		hc := hcache.New(hcache.Options{})
		files := mk("#define X_H 1\n")
		ref, refSpace := ppWith(t, files, nil, cond.ModeBDD, nil)
		ppWith(t, files, hc, cond.ModeBDD, nil)
		got, gotSpace := ppWith(t, files, hc, cond.ModeBDD, nil)
		equalUnits(t, refSpace, ref, gotSpace, got, "pre-defined guard")
	})
}

func TestHeaderCacheInvalidationOnMutation(t *testing.T) {
	v1 := map[string]string{
		"main.c":      "#include <x.h>\nint a = V;\n",
		"include/x.h": "#ifndef X_H\n#define X_H\n#define V 1\n#endif\n",
	}
	v2 := map[string]string{
		"main.c":      v1["main.c"],
		"include/x.h": "#ifndef X_H\n#define X_H\n#define V 2\n#endif\n",
	}
	hc := hcache.New(hcache.Options{})
	ppWith(t, v1, hc, cond.ModeBDD, nil)
	before := hc.Stats()
	// Mutated header: the content hash changes, so the stale entry is
	// unreachable and the run must miss and produce the new output.
	u, s := ppWith(t, v2, hc, cond.ModeBDD, nil)
	d := hc.Stats().Sub(before)
	if d.HeaderHits != 0 || d.HeaderMisses != 1 {
		t.Errorf("mutated header: hits=%d misses=%d, want pure miss", d.HeaderHits, d.HeaderMisses)
	}
	if got := textOf(s, u.Segments, nil); !strings.Contains(got, "2") {
		t.Errorf("stale value replayed: %q", got)
	}
	ref, refSpace := ppWith(t, v2, nil, cond.ModeBDD, nil)
	equalUnits(t, refSpace, ref, s, u, "post-mutation")
}

func TestHeaderCacheDepInvalidationNested(t *testing.T) {
	// outer.h's cached entry depends on inner.h's content: mutating only
	// inner.h must invalidate outer.h's entry even though outer.h's own
	// hash (and so its cache key) is unchanged.
	mk := func(innerVal string) map[string]string {
		return map[string]string{
			"main.c":          "#include <outer.h>\nint a = INNER;\n",
			"include/outer.h": "#ifndef OUTER_H\n#define OUTER_H\n#include <inner.h>\n#endif\n",
			"include/inner.h": "#define INNER " + innerVal + "\n",
		}
	}
	hc := hcache.New(hcache.Options{})
	ppWith(t, mk("1"), hc, cond.ModeBDD, nil)
	u, s := ppWith(t, mk("2"), hc, cond.ModeBDD, nil)
	if got := textOf(s, u.Segments, nil); !strings.Contains(got, "2") {
		t.Errorf("stale nested content replayed: %q", got)
	}
}

func TestHeaderCacheProbeInvalidation(t *testing.T) {
	// x.h resolved from the second include directory while the first lacked
	// it; when the file appears earlier on the path, the recorded probe
	// fails and resolution must find the new file.
	without := map[string]string{
		"main.c":       "#include <x.h>\nint a = WHICH;\n",
		"include2/x.h": "#define WHICH 2\n",
	}
	with := map[string]string{
		"main.c":       without["main.c"],
		"include/x.h":  "#define WHICH 1\n",
		"include2/x.h": without["include2/x.h"],
	}
	paths := []string{"include", "include2"}
	hc := hcache.New(hcache.Options{})
	ppWith(t, without, hc, cond.ModeBDD, paths)
	u, s := ppWith(t, with, hc, cond.ModeBDD, paths)
	if got := textOf(s, u.Segments, nil); !strings.Contains(got, "1") {
		t.Errorf("shadowed header not picked up: %q", got)
	}
}

func TestHeaderCacheEvictionBoundEndToEnd(t *testing.T) {
	files := map[string]string{"main.c": ""}
	var incs strings.Builder
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("h%d.h", i)
		files["include/"+name] = fmt.Sprintf("#define H%d %d\nint h%d = H%d;\n", i, i, i, i)
		fmt.Fprintf(&incs, "#include <%s>\n", name)
	}
	files["main.c"] = incs.String()
	hc := hcache.New(hcache.Options{MaxHeaderEntries: 3, MaxLexEntries: 3})
	ppWith(t, files, hc, cond.ModeBDD, nil)
	ppWith(t, files, hc, cond.ModeBDD, nil)
	s := hc.Stats()
	if s.HeaderEntries > 3 || s.LexEntries > 3 {
		t.Errorf("bounds exceeded: %+v", s)
	}
	if s.Evictions == 0 {
		t.Error("expected evictions with 8 headers and bound 3")
	}
	// Correctness is unaffected by thrashing.
	ref, refSpace := ppWith(t, files, nil, cond.ModeBDD, nil)
	got, gotSpace := ppWith(t, files, hc, cond.ModeBDD, nil)
	equalUnits(t, refSpace, ref, gotSpace, got, "thrashing cache")
}

// TestResolveIncludeNextSelf is the fuzzer-surfaced regression: with the
// including file's own directory duplicated on the include path,
// #include_next used to resolve back to the current file and recurse to the
// include-depth limit.
func TestResolveIncludeNextSelf(t *testing.T) {
	files := map[string]string{
		"main.c":      "#include <x.h>\nint done;\n",
		"include/x.h": "#include_next <x.h>\nint x;\n",
	}
	s := cond.NewSpace(cond.ModeBDD)
	p := New(Options{Space: s, FS: MapFS(files), IncludePaths: []string{"include", "include"}})
	u, err := p.Preprocess("main.c")
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	var msgs []string
	for _, d := range u.Diags {
		msgs = append(msgs, d.Msg)
	}
	if len(u.Diags) != 1 || !strings.Contains(msgs[0], "include not found") {
		t.Fatalf("want a single not-found diagnostic, got %v", msgs)
	}
	if u.Stats.MaxCondDepth != 0 && u.Stats.Includes > 2 {
		t.Errorf("self-inclusion recursion: %d includes", u.Stats.Includes)
	}
}

// TestResolveIncludeNextChain guards the intended #include_next behavior.
func TestResolveIncludeNextChain(t *testing.T) {
	files := map[string]string{
		"main.c":       "#include <x.h>\nint v = BOTH;\n",
		"include/x.h":  "#define WRAP 1\n#include_next <x.h>\n#define BOTH (WRAP + REAL)\n",
		"include2/x.h": "#define REAL 2\n",
	}
	s := cond.NewSpace(cond.ModeBDD)
	p := New(Options{Space: s, FS: MapFS(files), IncludePaths: []string{"include", "include2"}})
	u, err := p.Preprocess("main.c")
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	for _, d := range u.Diags {
		t.Errorf("unexpected diagnostic: %s", d)
	}
	if got := flatText(t, u.Segments); got != "int v = ( 1 + 2 ) ;" {
		t.Errorf("got %q", got)
	}
}

// TestResolveIncludeQuotedFromHeaderDir guards quoted-include resolution
// relative to the *including header's* directory (not the unit's), which the
// cache records per original path.
func TestResolveIncludeQuotedFromHeaderDir(t *testing.T) {
	files := map[string]string{
		"main.c":              "#include <sub/outer.h>\nint v = LOCAL;\n",
		"include/sub/outer.h": "#include \"local.h\"\n",
		"include/sub/local.h": "#define LOCAL 5\n",
	}
	hc := hcache.New(hcache.Options{})
	ref, refSpace := ppWith(t, files, nil, cond.ModeBDD, nil)
	ppWith(t, files, hc, cond.ModeBDD, nil)
	got, gotSpace := ppWith(t, files, hc, cond.ModeBDD, nil)
	equalUnits(t, refSpace, ref, gotSpace, got, "quoted from header dir")
	if flatText(t, got.Segments) != "int v = 5 ;" {
		t.Errorf("got %q", flatText(t, got.Segments))
	}
}

// TestHeaderCacheCounterPoisoned pins that __COUNTER__-bearing headers are
// never cached: the counter is unit-global state.
func TestHeaderCacheCounterPoisoned(t *testing.T) {
	files := map[string]string{
		"main.c":      "#include <c.h>\n#include <c.h>\nint t = __COUNTER__;\n",
		"include/c.h": "int tag = __COUNTER__;\n",
	}
	hc := hcache.New(hcache.Options{})
	ppWith(t, files, hc, cond.ModeBDD, nil)
	before := hc.Stats()
	ppWith(t, files, hc, cond.ModeBDD, nil)
	d := hc.Stats().Sub(before)
	if d.HeaderHits != 0 {
		t.Errorf("__COUNTER__ header replayed: %d hits", d.HeaderHits)
	}
}
