package preprocessor

import (
	"strings"

	"repro/internal/cond"
	"repro/internal/guard"
	"repro/internal/lexer"
	"repro/internal/token"
)

// maxExpandDepth bounds macro-expansion recursion as a safety net beyond
// hide sets.
const maxExpandDepth = 200

// hoistLimit caps the number of alternatives produced when hoisting
// conditionals around preprocessor operations. Operations that would exceed
// it are left unexpanded with a diagnostic (a pragmatic kill switch; real
// code stays far below it).
const hoistLimit = 512

// expandSegments performs macro expansion on segs under presence condition
// c, returning the expanded forest. It implements cpp's scanning semantics
// (substitute, then rescan together with the rest of the input) extended
// with conditionals: multiply-defined macros expand to conditionals, and
// conditionals embedded in function-like invocations are hoisted around the
// invocation (paper §3.1).
func (p *Preprocessor) expandSegments(segs []Segment, c cond.Cond, depth int) []Segment {
	if depth > maxExpandDepth {
		p.errorf(token.Token{}, "macro expansion too deep")
		return segs
	}
	var out []Segment
	in := segs
	for len(in) > 0 {
		// Loop-head budget check: each rescanning step charges the
		// macro-steps axis; a macro-expansion bomb trips here. On trip the
		// remaining input is passed through unexpanded — partial progress,
		// not failure.
		if !p.budget.Charge("preprocessor", guard.AxisMacroSteps, 1) {
			return append(out, in...)
		}
		s := in[0]
		if s.Cond != nil {
			expanded := p.expandConditional(s.Cond, c, depth)
			// A branch ending in a function-like macro name may be an
			// invocation whose arguments follow the conditional (paper
			// Fig. 4): hoist the conditional around the invocation.
			if len(in) > 1 && p.trailingFuncLike(expanded, c) {
				if res, consumed, ok := p.expandInvocation(append([]Segment{CondSeg(expanded)}, in[1:]...), c, depth); ok {
					out = append(out, res...)
					in = in[consumed:]
					continue
				}
			}
			out = append(out, CondSeg(expanded))
			in = in[1:]
			continue
		}
		t := *s.Tok
		if t.Kind != token.Identifier || t.Hide.Contains(t.Text) {
			out = append(out, s)
			in = in[1:]
			continue
		}
		if isDynamicBuiltin(t.Text) {
			p.stats.BuiltinUses++
			for _, bt := range dynamicBuiltin(t.Text, t, p.nextCounter) {
				out = append(out, TokSeg(bt))
			}
			in = in[1:]
			continue
		}
		defs, free := p.macros.Lookup(t.Text, c)
		if !hasRealDef(defs) {
			out = append(out, s)
			in = in[1:]
			continue
		}
		if anyFuncLike(defs) {
			if res, consumed, ok := p.expandInvocation(in, c, depth); ok {
				out = append(out, res...)
				in = in[consumed:]
				continue
			}
			// Could not parse an invocation: leave the name alone.
			out = append(out, s)
			in = in[1:]
			continue
		}
		// Object-like (possibly multiply-defined).
		p.stats.Invocations++
		if t.Expanded {
			p.stats.NestedInvocations++
		}
		if DefaultBuiltins[t.Text] != "" || p.builtinNames[t.Text] {
			p.stats.BuiltinUses++
		}
		if single, onlyOne := singleCovering(p.space, defs, free, c); onlyOne {
			// Exactly one definition covers the whole use condition:
			// substitute and rescan.
			body := p.objectBody(single, t)
			in = append(TokensOf(body), in[1:]...)
			continue
		}
		// Multiply-defined: the use propagates an implicit conditional.
		p.stats.TrimmedInvocations++
		cnd := &Conditional{}
		for _, ad := range defs {
			var segs []Segment
			if ad.Def == nil {
				segs = []Segment{TokSeg(hideSelf(t))}
			} else if ad.Def.FuncLike {
				// Handled by the anyFuncLike path; unreachable here.
				segs = []Segment{TokSeg(hideSelf(t))}
			} else {
				segs = TokensOf(p.objectBody(ad.Def, t))
			}
			cnd.Branches = append(cnd.Branches, Branch{Cond: ad.Cond, Segs: segs})
		}
		if !p.space.IsFalse(free) {
			cnd.Branches = append(cnd.Branches, Branch{Cond: free, Segs: []Segment{TokSeg(hideSelf(t))}})
		}
		// Prepend for rescanning: nested macros inside the branches expand,
		// and a trailing function-like name picks up following arguments.
		in = append([]Segment{CondSeg(cnd)}, in[1:]...)
	}
	return out
}

// expandConditional expands each feasible branch of cnd under c.
func (p *Preprocessor) expandConditional(cnd *Conditional, c cond.Cond, depth int) *Conditional {
	out := &Conditional{}
	for _, br := range cnd.Branches {
		bc := p.space.And(c, br.Cond)
		if p.space.IsFalse(bc) {
			continue
		}
		out.Branches = append(out.Branches, Branch{
			Cond: br.Cond,
			Segs: p.expandSegments(br.Segs, bc, depth+1),
		})
	}
	return out
}

func hasRealDef(defs []ActiveDef) bool {
	for _, d := range defs {
		if d.Def != nil {
			return true
		}
	}
	return false
}

func anyFuncLike(defs []ActiveDef) bool {
	for _, d := range defs {
		if d.Def != nil && d.Def.FuncLike {
			return true
		}
	}
	return false
}

// singleCovering reports whether defs consists of exactly one definition
// whose condition covers all of c (and the free condition is empty).
func singleCovering(s *cond.Space, defs []ActiveDef, free cond.Cond, c cond.Cond) (*MacroDef, bool) {
	if len(defs) != 1 || defs[0].Def == nil || !s.IsFalse(free) {
		return nil, false
	}
	if !s.Equal(defs[0].Cond, c) {
		return nil, false
	}
	return defs[0].Def, true
}

// hideSelf returns a copy of t with its own name added to the hide set, so
// that a name deliberately left unexpanded is not reconsidered.
func hideSelf(t token.Token) token.Token {
	t.Hide = t.Hide.With(t.Text)
	return t
}

// objectBody instantiates an object-like macro body at a use site: body
// tokens take the use position, the use's hide set extended with the macro
// name, and the Expanded mark.
func (p *Preprocessor) objectBody(def *MacroDef, use token.Token) []token.Token {
	out := make([]token.Token, len(def.Body))
	for i, bt := range def.Body {
		nt := bt
		nt.File, nt.Line, nt.Col = use.File, use.Line, use.Col
		nt.Hide = use.Hide.With(def.Name)
		nt.Expanded = true
		if i == 0 {
			nt.HasSpace = use.HasSpace
		}
		out[i] = nt
	}
	return out
}

// trailingFuncLike reports whether some feasible branch of cnd ends with an
// identifier naming an active function-like macro — the trigger for
// invocation hoisting across a conditional.
func (p *Preprocessor) trailingFuncLike(cnd *Conditional, c cond.Cond) bool {
	for _, br := range cnd.Branches {
		bc := p.space.And(c, br.Cond)
		if p.space.IsFalse(bc) || len(br.Segs) == 0 {
			continue
		}
		last := br.Segs[len(br.Segs)-1]
		if last.Cond != nil {
			if p.trailingFuncLike(last.Cond, bc) {
				return true
			}
			continue
		}
		t := last.Tok
		if t.Kind != token.Identifier || t.Hide.Contains(t.Text) {
			continue
		}
		defs, _ := p.macros.Lookup(t.Text, bc)
		if anyFuncLike(defs) {
			return true
		}
	}
	return false
}

// invState is one partial parse of a function-like invocation under a
// presence condition — the interleaved parsing-with-hoisting state of paper
// §3.1. States split at conditionals and track parentheses and commas
// independently per configuration.
type invState struct {
	cond   cond.Cond
	prefix []token.Token // tokens before the (possible) macro name
	name   *token.Token  // the candidate macro name, nil if this alternative has none
	toks   []token.Token // collected invocation tokens: "(" ... ")"
	depth  int           // parenthesis nesting; 0 before "("
	status invStatus
	endSeg int       // top-level segments consumed when the state finished
	rest   []Segment // branch content after completion (mid-conditional leftovers)
}

type invStatus uint8

const (
	invScanning invStatus = iota // waiting for "(" or collecting arguments
	invComplete                  // balanced invocation collected
	invNotCall                   // next token was not "(": not an invocation
)

// expandInvocation expands a (possibly conditional) function-like macro
// invocation starting at in[0]. in[0] is either the macro name token or a
// conditional some of whose branches end in a macro name; following
// segments supply the argument list, possibly split across conditionals.
// It returns the replacement segments, the number of input segments
// consumed, and whether an invocation was recognized and expanded.
func (p *Preprocessor) expandInvocation(in []Segment, c cond.Cond, depth int) ([]Segment, int, bool) {
	// Seed states from the hoisted head segment.
	headAlts, ok := p.hoistGuard(c, in[:1])
	if !ok {
		p.stats.HoistOverflows++
		return nil, 0, false
	}
	var states []*invState
	sawCandidate := false
	for _, alt := range headAlts {
		st := &invState{cond: alt.Cond, endSeg: 1}
		if n := len(alt.Toks); n > 0 {
			last := alt.Toks[n-1]
			if last.Kind == token.Identifier && !last.Hide.Contains(last.Text) {
				if defs, _ := p.macros.Lookup(last.Text, alt.Cond); anyFuncLike(defs) {
					st.prefix = alt.Toks[:n-1]
					lastCopy := last
					st.name = &lastCopy
					sawCandidate = true
					states = append(states, st)
					continue
				}
			}
			st.prefix = alt.Toks
		}
		st.status = invNotCall
		states = append(states, st)
	}
	if !sawCandidate {
		return nil, 0, false
	}

	// Step states through the following segments until all are resolved.
	consumed := 1
	for i := 1; i < len(in); i++ {
		if allResolved(states) {
			break
		}
		var next []*invState
		okStep := true
		for _, st := range states {
			if st.status != invScanning {
				next = append(next, st)
				continue
			}
			stepped, ok := p.stepState(st, in[i], i)
			if !ok {
				okStep = false
				break
			}
			next = append(next, stepped...)
		}
		if !okStep || len(next) > hoistLimit {
			p.stats.HoistOverflows++
			return nil, 0, false
		}
		states = next
		consumed = i + 1
	}
	// States still scanning at end of input never complete: treat as
	// not-a-call (their collected tokens are ordinary content).
	anyInvocation := false
	for _, st := range states {
		if st.status == invScanning {
			st.status = invNotCall
			st.endSeg = consumed
		}
		if st.status == invComplete {
			anyInvocation = true
		}
	}
	if !anyInvocation {
		return nil, 0, false
	}
	// Shrink consumption to what resolved states actually used.
	maxEnd := 1
	for _, st := range states {
		if st.endSeg > maxEnd {
			maxEnd = st.endSeg
		}
	}
	consumed = maxEnd

	hoisted := len(states) > 1 || len(headAlts) > 1
	if hoisted {
		p.stats.HoistedInvocations++
	}

	// Assemble the result: one branch per state (split further by
	// definition alternative).
	var branches []Branch
	for _, st := range states {
		branches = append(branches, p.assembleInvocation(st, in, consumed, depth)...)
	}
	if len(branches) == 1 && p.space.Equal(p.space.And(c, branches[0].Cond), c) {
		return branches[0].Segs, consumed, true
	}
	return []Segment{CondSeg(&Conditional{Branches: branches})}, consumed, true
}

func allResolved(states []*invState) bool {
	for _, st := range states {
		if st.status == invScanning {
			return false
		}
	}
	return true
}

// stepState advances one scanning state across one top-level segment,
// splitting at conditionals. topIndex is the segment's index in the
// enclosing input.
func (p *Preprocessor) stepState(st *invState, seg Segment, topIndex int) ([]*invState, bool) {
	if seg.IsToken() {
		p.stepToken(st, *seg.Tok, topIndex, false)
		return []*invState{st}, true
	}
	// Conditional: split the state per feasible branch, walking each
	// branch's segments; a state completing mid-branch stashes the branch's
	// remainder in rest.
	var out []*invState
	covered := p.space.False()
	for _, br := range seg.Cond.Branches {
		bc := p.space.And(st.cond, br.Cond)
		covered = p.space.Or(covered, br.Cond)
		if p.space.IsFalse(bc) {
			continue
		}
		clone := cloneState(st)
		clone.cond = bc
		sub, ok := p.walkBranch(clone, br.Segs, topIndex)
		if !ok {
			return nil, false
		}
		out = append(out, sub...)
		if len(out) > hoistLimit {
			return nil, false
		}
	}
	// Implicit branch: the conditional contributes nothing.
	rest := p.space.AndNot(st.cond, covered)
	if !p.space.IsFalse(rest) {
		clone := cloneState(st)
		clone.cond = rest
		out = append(out, clone)
	}
	return out, true
}

// walkBranch walks a state through the segments of one conditional branch.
// States that resolve mid-branch capture the branch's remaining segments as
// leftover content and stop consuming; still-scanning states continue into
// the segments after the conditional.
func (p *Preprocessor) walkBranch(st *invState, segs []Segment, topIndex int) ([]*invState, bool) {
	active := []*invState{st}
	var finished []*invState
	for i, sg := range segs {
		if len(active) == 0 {
			break
		}
		var nextActive []*invState
		for _, cur := range active {
			var stepped []*invState
			if sg.IsToken() {
				p.stepToken(cur, *sg.Tok, topIndex, true)
				stepped = []*invState{cur}
			} else {
				var ok bool
				stepped, ok = p.stepState(cur, sg, topIndex)
				if !ok {
					return nil, false
				}
			}
			for _, s2 := range stepped {
				if s2.status == invScanning {
					nextActive = append(nextActive, s2)
					continue
				}
				// Resolved during this segment: the rest of the branch is
				// leftover content under this state's condition, and the
				// whole top-level conditional segment was consumed.
				if rem := segs[i+1:]; len(rem) > 0 {
					s2.rest = append(s2.rest, rem...)
				}
				s2.endSeg = topIndex + 1
				finished = append(finished, s2)
			}
		}
		active = nextActive
		if len(active)+len(finished) > hoistLimit {
			return nil, false
		}
	}
	return append(finished, active...), true
}

// stepToken advances a scanning state over one ordinary token. insideBranch
// marks tokens consumed inside a conditional branch (affecting endSeg
// accounting: completing on a top-level token consumes through that
// segment).
func (p *Preprocessor) stepToken(st *invState, t token.Token, topIndex int, insideBranch bool) {
	if st.depth == 0 {
		if t.Is("(") {
			st.depth = 1
			st.toks = append(st.toks, t)
			return
		}
		// Not an invocation; this token is unconsumed content that will be
		// re-emitted: record it as leftover when inside a branch, otherwise
		// stop before it.
		st.status = invNotCall
		if insideBranch {
			st.rest = append(st.rest, TokSeg(t))
			st.endSeg = topIndex + 1
		} else {
			st.endSeg = topIndex
		}
		return
	}
	st.toks = append(st.toks, t)
	switch {
	case t.Is("("):
		st.depth++
	case t.Is(")"):
		st.depth--
		if st.depth == 0 {
			st.status = invComplete
			st.endSeg = topIndex + 1
		}
	}
}

func cloneState(st *invState) *invState {
	c := *st
	c.prefix = st.prefix[:len(st.prefix):len(st.prefix)]
	c.toks = st.toks[:len(st.toks):len(st.toks)]
	c.rest = st.rest[:len(st.rest):len(st.rest)]
	return &c
}

// assembleInvocation builds the output branches for one resolved state,
// splitting per feasible macro definition. in/consumed delimit the
// top-level segments the overall invocation consumed; segments between the
// state's own end and consumed are re-emitted inside its branch (they were
// only consumed on behalf of slower sibling configurations — this is the
// duplication hoisting performs).
func (p *Preprocessor) assembleInvocation(st *invState, in []Segment, consumed int, depth int) []Branch {
	tail := func() []Segment {
		var t []Segment
		t = append(t, st.rest...)
		if st.endSeg < consumed {
			t = append(t, in[st.endSeg:consumed]...)
		}
		return t
	}

	content := func(middle []Segment, bc cond.Cond) []Segment {
		var segs []Segment
		segs = append(segs, TokensOf(st.prefix)...)
		segs = append(segs, middle...)
		segs = append(segs, tail()...)
		return p.expandSegments(segs, bc, depth+1)
	}

	if st.name == nil || st.status == invNotCall {
		// No invocation under this condition: emit everything as content,
		// with the candidate name (if any) hidden so it is not retried.
		var middle []Segment
		if st.name != nil {
			middle = append(middle, TokSeg(hideSelf(*st.name)))
		}
		middle = append(middle, TokensOf(st.toks)...)
		return []Branch{{Cond: st.cond, Segs: content(middle, st.cond)}}
	}

	// Split by definition alternative at the final state condition.
	defs, free := p.macros.Lookup(st.name.Text, st.cond)
	var branches []Branch
	for _, ad := range defs {
		bc := ad.Cond
		var middle []Segment
		switch {
		case ad.Def == nil:
			middle = append(middle, TokSeg(hideSelf(*st.name)))
			middle = append(middle, TokensOf(st.toks)...)
		case !ad.Def.FuncLike:
			// Object-like alternative: the name expands, the argument list
			// stays in place (paper Fig. 4c).
			middle = append(middle, TokensOf(p.objectBody(ad.Def, *st.name))...)
			middle = append(middle, TokensOf(st.toks)...)
		default:
			args, ok := p.parseArgs(st.toks, *st.name, ad.Def)
			if !ok {
				middle = append(middle, TokSeg(hideSelf(*st.name)))
				middle = append(middle, TokensOf(st.toks)...)
				break
			}
			p.stats.Invocations++
			if st.name.Expanded {
				p.stats.NestedInvocations++
			}
			middle = append(middle, p.substitute(ad.Def, args, *st.name, bc, depth)...)
		}
		branches = append(branches, Branch{Cond: bc, Segs: content(middle, bc)})
	}
	if !p.space.IsFalse(free) {
		var middle []Segment
		middle = append(middle, TokSeg(hideSelf(*st.name)))
		middle = append(middle, TokensOf(st.toks)...)
		branches = append(branches, Branch{Cond: free, Segs: content(middle, free)})
	}
	return branches
}

// parseArgs splits the collected invocation tokens "( ... )" into argument
// token lists, honoring nesting. It validates arity against def.
func (p *Preprocessor) parseArgs(toks []token.Token, name token.Token, def *MacroDef) ([][]token.Token, bool) {
	if len(toks) < 2 || !toks[0].Is("(") || !toks[len(toks)-1].Is(")") {
		return nil, false
	}
	inner := toks[1 : len(toks)-1]
	var args [][]token.Token
	var cur []token.Token
	depth := 0
	for _, t := range inner {
		switch {
		case t.Is("("):
			depth++
		case t.Is(")"):
			depth--
		case t.Is(",") && depth == 0:
			args = append(args, cur)
			cur = nil
			continue
		}
		cur = append(cur, t)
	}
	args = append(args, cur)
	// f() is zero arguments for a zero-parameter macro, one empty argument
	// otherwise.
	if len(args) == 1 && len(args[0]) == 0 && len(def.Params) == 0 {
		args = nil
	}
	switch {
	case len(args) == len(def.Params):
	case def.Variadic && len(args) > len(def.Params):
		// Fold extras into the last (variadic) parameter, commas restored.
		n := len(def.Params)
		joined := args[n-1]
		for _, extra := range args[n:] {
			joined = append(joined, commaToken(name))
			joined = append(joined, extra...)
		}
		args = append(args[:n-1], joined)
	case def.Variadic && len(args) == len(def.Params)-1:
		args = append(args, nil) // empty variadic tail
	default:
		p.errorf(name, "macro %s expects %d arguments, got %d", def.Name, len(def.Params), len(args))
		return nil, false
	}
	return args, true
}

func commaToken(at token.Token) token.Token {
	return token.Token{Kind: token.Punct, Text: ",", File: at.File, Line: at.Line, Col: at.Col}
}

// substitute performs parameter substitution, stringification, and token
// pasting for a function-like macro, returning segments (conditionals can
// appear when argument expansion introduced them; pasting across them hoists
// first, paper Fig. 5).
func (p *Preprocessor) substitute(def *MacroDef, args [][]token.Token, use token.Token, c cond.Cond, depth int) []Segment {
	paramIndex := make(map[string]int, len(def.Params))
	for i, name := range def.Params {
		paramIndex[name] = i
	}
	expandedArgs := make([][]Segment, len(args))
	argExpanded := func(i int) []Segment {
		if expandedArgs[i] == nil {
			ex := p.expandSegments(TokensOf(args[i]), c, depth+1)
			if ex == nil {
				ex = []Segment{}
			}
			expandedArgs[i] = ex
		}
		return expandedArgs[i]
	}

	hide := use.Hide.With(def.Name)
	instantiate := func(bt token.Token) token.Token {
		nt := bt
		nt.File, nt.Line, nt.Col = use.File, use.Line, use.Col
		nt.Hide = hide
		nt.Expanded = true
		return nt
	}

	var out []Segment
	hasPaste := false
	body := def.Body
	for i := 0; i < len(body); i++ {
		bt := body[i]
		// Stringification: # param
		if bt.Is("#") && i+1 < len(body) {
			if ai, ok := paramIndex[body[i+1].Text]; ok && body[i+1].Kind == token.Identifier {
				p.stats.Stringifications++
				out = append(out, TokSeg(instantiate(stringify(args[ai], use))))
				i++
				continue
			}
		}
		if bt.Is("##") {
			hasPaste = true
			out = append(out, TokSeg(instantiate(bt)))
			continue
		}
		if ai, ok := paramIndex[bt.Text]; ok && bt.Kind == token.Identifier {
			// Adjacent to ##: raw argument tokens; otherwise expanded.
			rawLeft := i > 0 && body[i-1].Is("##")
			rawRight := i+1 < len(body) && body[i+1].Is("##")
			if rawLeft || rawRight {
				for _, at := range args[ai] {
					nt := at
					nt.Hide = nt.Hide.Union(use.Hide)
					out = append(out, TokSeg(nt))
				}
			} else {
				for _, seg := range argExpanded(ai) {
					out = append(out, reconditionSeg(seg, use.Hide))
				}
			}
			continue
		}
		out = append(out, TokSeg(instantiate(bt)))
	}
	if !hasPaste {
		return out
	}
	p.stats.TokenPastings++
	// Token pasting. If conditionals crept in (via expanded arguments),
	// hoist them out first so pasting sees only ordinary tokens.
	if containsConditional(out) {
		alts, ok := p.hoistGuard(c, out)
		if !ok {
			p.stats.HoistOverflows++
			return out
		}
		p.stats.HoistedPastings++
		cnd := &Conditional{}
		for _, alt := range alts {
			cnd.Branches = append(cnd.Branches, Branch{Cond: alt.Cond, Segs: TokensOf(p.pasteTokens(segTokens(alt.Toks)))})
		}
		return []Segment{CondSeg(cnd)}
	}
	toks := make([]token.Token, 0, len(out))
	for _, sg := range out {
		toks = append(toks, *sg.Tok)
	}
	return TokensOf(p.pasteTokens(toks))
}

// reconditionSeg unions extra hide-set names onto every token of a segment
// tree (arguments keep their own hides plus the invocation's).
func reconditionSeg(s Segment, hide *token.HideSet) Segment {
	if s.IsToken() {
		nt := *s.Tok
		nt.Hide = nt.Hide.Union(hide)
		return TokSeg(nt)
	}
	nc := &Conditional{}
	for _, br := range s.Cond.Branches {
		nb := Branch{Cond: br.Cond}
		for _, sub := range br.Segs {
			nb.Segs = append(nb.Segs, reconditionSeg(sub, hide))
		}
		nc.Branches = append(nc.Branches, nb)
	}
	return CondSeg(nc)
}

func containsConditional(segs []Segment) bool {
	for _, s := range segs {
		if s.Cond != nil {
			return true
		}
	}
	return false
}

func segTokens(toks []token.Token) []token.Token { return toks }

// pasteTokens applies the ## operator over a plain token list. An operand
// that an empty macro argument erased behaves as a placemarker (C99
// 6.10.3.3): the paste degenerates to the surviving operand.
func (p *Preprocessor) pasteTokens(toks []token.Token) []token.Token {
	var out []token.Token
	for i := 0; i < len(toks); i++ {
		t := toks[i]
		if !t.Is("##") {
			out = append(out, t)
			continue
		}
		if len(out) == 0 || i+1 >= len(toks) {
			// Missing operand: an empty argument substituted there; the
			// paste reduces to whatever side survives.
			continue
		}
		left := out[len(out)-1]
		right := toks[i+1]
		i++
		out[len(out)-1] = p.pasteTwo(left, right)
	}
	return out
}

// pasteTwo concatenates two tokens' texts and relexes the result; when the
// concatenation does not form a single token, the tokens are emitted
// unjoined (cpp makes this undefined; we are permissive).
func (p *Preprocessor) pasteTwo(left, right token.Token) token.Token {
	text := left.Text + right.Text
	relexed, err := lexer.Lex(left.File, []byte(text))
	relexed = lexer.StripEOF(relexed)
	nt := left
	nt.Hide = left.Hide.Union(right.Hide)
	if err == nil && len(relexed) == 1 {
		nt.Kind = relexed[0].Kind
		nt.Text = text
		return nt
	}
	p.errorf(left, "pasting %q and %q does not form a valid token", left.Text, right.Text)
	nt.Text = text
	nt.Kind = token.Other
	return nt
}

// stringify converts raw argument tokens to a string literal token
// (the # operator).
func stringify(arg []token.Token, use token.Token) token.Token {
	var b strings.Builder
	b.WriteByte('"')
	for i, t := range arg {
		if i > 0 && t.HasSpace {
			b.WriteByte(' ')
		}
		// Escape backslashes and quotes occurring inside string and char
		// literals, per C99 6.10.3.2.
		if t.Kind == token.String || t.Kind == token.Char {
			for _, r := range t.Text {
				if r == '\\' || r == '"' {
					b.WriteByte('\\')
				}
				b.WriteRune(r)
			}
			continue
		}
		b.WriteString(t.Text)
	}
	b.WriteByte('"')
	return token.Token{
		Kind: token.String, Text: b.String(),
		File: use.File, Line: use.Line, Col: use.Col,
	}
}
