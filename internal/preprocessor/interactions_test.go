package preprocessor

import (
	"strings"
	"testing"

	"repro/internal/cond"
)

// TestInteractionMatrix covers the preprocessor rows of the paper's
// Table 1: one subtest per non-blank interaction cell, each asserting the
// implementation strategy the table prescribes. (The parser rows — FMLR
// fork/merge and conditional typedef tables — live in package fmlr's
// TestInteractionMatrixParser.)
func TestInteractionMatrix(t *testing.T) {
	type check func(t *testing.T)
	cells := []struct {
		row, column string
		run         check
	}{
		{
			"Macro (Un)Definition", "use conditional macro table",
			func(t *testing.T) {
				_, s, p := pp(t, map[string]string{"main.c": "#ifdef A\n#define M 1\n#endif\n"})
				di := p.Macros().DefinedInfo("M")
				if !s.Equal(di.Defined, s.Var("(defined A)")) {
					t.Errorf("M defined under %s, want exactly (defined A)", s.String(di.Defined))
				}
				if !s.Equal(di.Free, s.Not(s.Var("(defined A)"))) {
					t.Errorf("M free under %s, want !(defined A)", s.String(di.Free))
				}
			},
		},
		{
			"Macro (Un)Definition", "add multiple entries to macro table",
			func(t *testing.T) {
				_, _, p := pp(t, map[string]string{"main.c": "#ifdef A\n#define M 1\n#else\n#define M 2\n#endif\n"})
				if n := p.Macros().NumEntries("M"); n != 2 {
					t.Errorf("entries = %d, want 2", n)
				}
			},
		},
		{
			"Macro (Un)Definition", "do not expand until invocation",
			func(t *testing.T) {
				// The body of N references M before M is defined; expansion
				// at invocation time must see the later definition.
				u, _, _ := pp(t, map[string]string{"main.c": "#define N M\n#define M 7\nint x = N;\n"})
				if got := flatText(t, u.Segments); got != "int x = 7 ;" {
					t.Errorf("got %q", got)
				}
			},
		},
		{
			"Macro (Un)Definition", "trim infeasible entries on redefinition",
			func(t *testing.T) {
				_, s, p := pp(t, map[string]string{"main.c": "#ifdef A\n#define M 1\n#endif\n#define M 2\n"})
				defs, free := p.Macros().Lookup("M", s.True())
				if len(defs) != 1 || !s.IsFalse(free) {
					t.Fatalf("defs=%d free=%s", len(defs), s.String(free))
				}
				if tokensText(defs[0].Def.Body) != "2" {
					t.Errorf("surviving body = %q", tokensText(defs[0].Def.Body))
				}
			},
		},
		{
			"Object-Like Invocations", "expand all definitions / ignore infeasible",
			func(t *testing.T) {
				u, s, _ := pp(t, map[string]string{"main.c": `
#ifdef A
#define M 1
#else
#define M 2
#endif
#ifdef A
int x = M;
#endif
`})
				// Inside the #ifdef A block only definition 1 is feasible.
				on := map[string]bool{"(defined A)": true}
				if got := textOf(s, u.Segments, on); got != "int x = 1 ;" {
					t.Errorf("got %q", got)
				}
			},
		},
		{
			"Object-Like Invocations", "expand nested macros",
			func(t *testing.T) {
				u, _, _ := pp(t, map[string]string{"main.c": "#define A B\n#define B 3\nint x = A;\n"})
				if got := flatText(t, u.Segments); got != "int x = 3 ;" {
					t.Errorf("got %q", got)
				}
			},
		},
		{
			"Object-Like Invocations", "ground truth for built-ins",
			func(t *testing.T) {
				u, _, _ := pp(t, map[string]string{"main.c": "long v = __STDC_VERSION__;\n"})
				if got := flatText(t, u.Segments); got != "long v = 199901L ;" {
					t.Errorf("got %q", got)
				}
			},
		},
		{
			"Function-Like Invocations", "hoist conditionals around invocations",
			func(t *testing.T) {
				u, s, _ := pp(t, map[string]string{"main.c": `
#define F(x) ((x))
#ifdef K
#define G F
#endif
int v = G(9);
`})
				on := map[string]bool{"(defined K)": true}
				if got := textOf(s, u.Segments, on); got != "int v = ( ( 9 ) ) ;" {
					t.Errorf("K: %q", got)
				}
				if got := textOf(s, u.Segments, nil); got != "int v = G ( 9 ) ;" {
					t.Errorf("!K: %q", got)
				}
			},
		},
		{
			"Function-Like Invocations", "support differing argument numbers and variadics",
			func(t *testing.T) {
				u, s, _ := pp(t, map[string]string{"main.c": `
#ifdef W
#define GET(a, b, rest...) three(a, b, rest)
#else
#define GET(a) one(a)
#endif
int v = GET(1
#ifdef W
, 2, 3, 4
#endif
);
`})
				on := map[string]bool{"(defined W)": true}
				if got := textOf(s, u.Segments, on); got != "int v = three ( 1 , 2 , 3 , 4 ) ;" {
					t.Errorf("W: %q", got)
				}
				if got := textOf(s, u.Segments, nil); got != "int v = one ( 1 ) ;" {
					t.Errorf("!W: %q", got)
				}
			},
		},
		{
			"Token Pasting & Stringification", "apply pasting and stringification",
			func(t *testing.T) {
				u, _, _ := pp(t, map[string]string{"main.c": "#define J(a,b) a##b\n#define S(x) #x\nint J(x,1) = 0; char *s = S(hi);\n"})
				got := flatText(t, u.Segments)
				if !strings.Contains(got, "x1") || !strings.Contains(got, `"hi"`) {
					t.Errorf("got %q", got)
				}
			},
		},
		{
			"Token Pasting & Stringification", "hoist conditionals around pasting",
			func(t *testing.T) {
				u, s, _ := pp(t, map[string]string{"main.c": `
#ifdef B64
#define BITS 64
#else
#define BITS 32
#endif
#define MK2(x) t ## x
#define MK(x) MK2(x)
MK(BITS) v;
`})
				on := map[string]bool{"(defined B64)": true}
				if got := textOf(s, u.Segments, on); got != "t64 v ;" {
					t.Errorf("64: %q", got)
				}
				if got := textOf(s, u.Segments, nil); got != "t32 v ;" {
					t.Errorf("32: %q", got)
				}
			},
		},
		{
			"File Includes", "preprocess under presence conditions",
			func(t *testing.T) {
				u, s, _ := pp(t, map[string]string{
					"main.c": "#ifdef A\n#include \"h.h\"\n#endif\n",
					"h.h":    "int from_header;\n",
				})
				on := map[string]bool{"(defined A)": true}
				if got := textOf(s, u.Segments, on); got != "int from_header ;" {
					t.Errorf("A: %q", got)
				}
				if got := textOf(s, u.Segments, nil); got != "" {
					t.Errorf("!A: %q", got)
				}
			},
		},
		{
			"File Includes", "hoist conditionals around includes",
			func(t *testing.T) {
				u, s, _ := pp(t, map[string]string{
					"main.c": "#ifdef A\n#define H \"a.h\"\n#else\n#define H \"b.h\"\n#endif\n#include H\nint x = V;\n",
					"a.h":    "#define V 1\n",
					"b.h":    "#define V 2\n",
				})
				on := map[string]bool{"(defined A)": true}
				if got := textOf(s, u.Segments, on); got != "int x = 1 ;" {
					t.Errorf("A: %q", got)
				}
				if got := textOf(s, u.Segments, nil); got != "int x = 2 ;" {
					t.Errorf("!A: %q", got)
				}
			},
		},
		{
			"File Includes", "reinclude when guard macro is not false",
			func(t *testing.T) {
				u, _, _ := pp(t, map[string]string{
					"main.c": "#include \"g.h\"\n#undef G_H\n#include \"g.h\"\n",
					"g.h":    "#ifndef G_H\n#define G_H\nint decl;\n#endif\n",
				})
				if got := flatText(t, u.Segments); got != "int decl ; int decl ;" {
					t.Errorf("got %q", got)
				}
			},
		},
		{
			"Static Conditionals", "conjoin presence conditions",
			func(t *testing.T) {
				u, s, _ := pp(t, map[string]string{"main.c": "#ifdef A\n#ifdef B\nint ab;\n#endif\n#endif\n"})
				only := map[string]bool{"(defined A)": true}
				both := map[string]bool{"(defined A)": true, "(defined B)": true}
				if got := textOf(s, u.Segments, both); got != "int ab ;" {
					t.Errorf("A&B: %q", got)
				}
				if got := textOf(s, u.Segments, only); got != "" {
					t.Errorf("A only: %q", got)
				}
			},
		},
		{
			"Conditional Expressions", "hoist conditionals around expressions",
			func(t *testing.T) {
				// §3.2's worked example: #if BITS_PER_LONG == 32 folds to
				// !defined(CONFIG_64BIT) after expansion and hoisting.
				u, s, _ := pp(t, map[string]string{"main.c": `
#ifdef CONFIG_64BIT
#define BPL 64
#else
#define BPL 32
#endif
#if BPL == 32
int narrow;
#endif
`})
				if got := textOf(s, u.Segments, nil); got != "int narrow ;" {
					t.Errorf("32: %q", got)
				}
				on := map[string]bool{"(defined CONFIG_64BIT)": true}
				if got := textOf(s, u.Segments, on); got != "" {
					t.Errorf("64: %q", got)
				}
			},
		},
		{
			"Conditional Expressions", "preserve order for non-boolean expressions",
			func(t *testing.T) {
				u, s, _ := pp(t, map[string]string{"main.c": "#if NR_CPUS < 256\nint small;\n#else\nint big;\n#endif\n"})
				// Both branches stay reachable under the opaque condition.
				low := map[string]bool{"(expr (NR_CPUS<256))": true}
				if got := textOf(s, u.Segments, low); got != "int small ;" {
					t.Errorf("low: %q", got)
				}
				if got := textOf(s, u.Segments, nil); got != "int big ;" {
					t.Errorf("high: %q", got)
				}
			},
		},
		{
			"Error Directives", "ignore erroneous branches",
			func(t *testing.T) {
				u, s, _ := pp(t, map[string]string{"main.c": "#ifdef BAD\n#error nope\nint junk;\n#else\nint fine;\n#endif\n"})
				on := map[string]bool{"(defined BAD)": true}
				if got := textOf(s, u.Segments, on); got != "" {
					t.Errorf("error branch leaked: %q", got)
				}
				if got := textOf(s, u.Segments, nil); got != "int fine ;" {
					t.Errorf("good branch: %q", got)
				}
			},
		},
		{
			"Line, Warning, & Pragma Directives", "treat as layout",
			func(t *testing.T) {
				s := newSpaceForTest()
				p := New(Options{Space: s, FS: MapFS(map[string]string{
					"main.c": "#pragma pack(1)\n#line 9\n#warning w\nint x;\n"})})
				u, err := p.Preprocess("main.c")
				if err != nil {
					t.Fatal(err)
				}
				if got := flatText(t, u.Segments); got != "int x ;" {
					t.Errorf("got %q", got)
				}
				st := u.Stats
				if st.PragmaDirectives != 1 || st.LineDirectives != 1 || st.WarningDirectives != 1 {
					t.Errorf("stats: %+v", st)
				}
			},
		},
	}
	for _, cell := range cells {
		t.Run(cell.row+"/"+cell.column, cell.run)
	}
}

// newSpaceForTest returns a fresh BDD-backed condition space.
func newSpaceForTest() *cond.Space { return cond.NewSpace(cond.ModeBDD) }
