package preprocessor

import "repro/internal/token"

// This file is the streaming half of the preprocessor's output interface.
// The classic path materializes every compilation unit as a []Segment slab —
// one two-word Segment per token — before the parser sees any of it. The
// streaming path instead packs the unit's top level into Chunks: dense
// token runs wherever the presence condition is True, and materialized
// Conditionals only where hoisting genuinely buffered content. The FMLR
// engine pulls chunks one at a time (TokenSource) and can walk a run's
// tokens in place, so True-condition tokens never pay for a Segment or a
// token-forest element.
//
// Chunks are immutable after creation and therefore freely replayable: a
// ChunkSource is just a cursor, and converting back to the classic segment
// form (SegmentsOf) points the segments into the runs without copying
// tokens. Cached lexed header streams interoperate unchanged — the header
// cache operates on files and segments below the unit's top level, and the
// chunk writer only packs at the root.

// Chunk is one streaming unit of preprocessor output: exactly one of Run
// and Cond is set. A Run is a dense slice of ordinary tokens whose presence
// condition is the enclosing (True) context; a Cond is a static conditional
// materialized in classic segment form.
type Chunk struct {
	Run  []token.Token
	Cond *Conditional
}

// TokenSource is the pull interface between the preprocessor and the FMLR
// engine: Next returns the next chunk of the unit, in document order, until
// the stream is exhausted.
type TokenSource interface {
	Next() (Chunk, bool)
}

// ChunkSource replays an immutable chunk slice as a TokenSource.
type ChunkSource struct {
	chunks []Chunk
	i      int
}

// NewChunkSource returns a source replaying chunks from the start.
func NewChunkSource(chunks []Chunk) *ChunkSource {
	return &ChunkSource{chunks: chunks}
}

// Next implements TokenSource.
func (s *ChunkSource) Next() (Chunk, bool) {
	if s.i >= len(s.chunks) {
		return Chunk{}, false
	}
	c := s.chunks[s.i]
	s.i++
	return c, true
}

// maxRunChunk caps a run chunk's length so the engine's per-chunk
// bookkeeping (budget polling, fallback materialization) stays bounded and
// a pathological macro expansion cannot buffer an entire unit in one run.
const maxRunChunk = 512

// chunkWriter packs root-level segments into chunks as the directive
// machine emits them. Tokens are copied by value into the current run (the
// run is the token's storage in streaming mode); conditionals flush the run
// and pass through as-is. A flushed run is never appended to again, so
// pointers into it stay valid.
type chunkWriter struct {
	chunks  []Chunk
	cur     []token.Token
	ntokens int // ordinary tokens across all chunks, branches included
}

func (w *chunkWriter) add(segs ...Segment) {
	for _, sg := range segs {
		if sg.IsToken() {
			if len(w.cur) >= maxRunChunk {
				w.flushRun()
			}
			w.cur = append(w.cur, *sg.Tok)
			w.ntokens++
			continue
		}
		w.flushRun()
		w.chunks = append(w.chunks, Chunk{Cond: sg.Cond})
		for _, b := range sg.Cond.Branches {
			w.ntokens += CountTokens(b.Segs)
		}
	}
}

func (w *chunkWriter) flushRun() {
	if len(w.cur) == 0 {
		w.cur = nil
		return
	}
	w.chunks = append(w.chunks, Chunk{Run: w.cur})
	w.cur = nil
}

// finish flushes the open run and returns the chunk list, non-nil even for
// an empty unit so callers can distinguish "streamed" from "not streamed".
func (w *chunkWriter) finish() []Chunk {
	w.flushRun()
	if w.chunks == nil {
		w.chunks = []Chunk{}
	}
	return w.chunks
}

// ChunksOf converts a segment forest into chunk form, packing top-level
// token segments into dense runs.
func ChunksOf(segs []Segment) []Chunk {
	var w chunkWriter
	w.add(segs...)
	return w.finish()
}

// SegmentsOf converts chunks back into the classic segment slab. Token
// segments point into the chunk runs (no token copies), so the result is
// valid as long as the chunks are — which is always, since chunks are
// immutable.
func SegmentsOf(chunks []Chunk) []Segment {
	n := 0
	for _, c := range chunks {
		if c.Cond != nil {
			n++
		} else {
			n += len(c.Run)
		}
	}
	segs := make([]Segment, 0, n)
	for _, c := range chunks {
		if c.Cond != nil {
			segs = append(segs, Segment{Cond: c.Cond})
			continue
		}
		run := c.Run
		for i := range run {
			segs = append(segs, Segment{Tok: &run[i]})
		}
	}
	return segs
}

// Drain pulls a source to exhaustion.
func Drain(src TokenSource) []Chunk {
	var out []Chunk
	for {
		c, ok := src.Next()
		if !ok {
			return out
		}
		out = append(out, c)
	}
}

// DrainSegments pulls a source to exhaustion and returns the classic
// segment form.
func DrainSegments(src TokenSource) []Segment {
	return SegmentsOf(Drain(src))
}

// CountChunkTokens counts ordinary tokens across the chunks, conditional
// branches included (the chunk analogue of CountTokens).
func CountChunkTokens(chunks []Chunk) int {
	n := 0
	for _, c := range chunks {
		if c.Cond != nil {
			for _, b := range c.Cond.Branches {
				n += CountTokens(b.Segs)
			}
			continue
		}
		n += len(c.Run)
	}
	return n
}

// EnsureSegments returns the unit's segment forest, materializing (and
// caching) it from Chunks when the unit was preprocessed in streaming mode.
// Consumers that genuinely need random access to segments (the printer,
// block-coverage analysis, differential tests) call this; the parser itself
// streams.
func (u *Unit) EnsureSegments() []Segment {
	if u.Segments == nil && u.Chunks != nil {
		u.Segments = SegmentsOf(u.Chunks)
	}
	return u.Segments
}

// Source returns a TokenSource replaying the unit's preprocessor output,
// regardless of which mode produced it.
func (u *Unit) Source() TokenSource {
	if u.Chunks != nil {
		return NewChunkSource(u.Chunks)
	}
	return NewChunkSource(ChunksOf(u.Segments))
}
