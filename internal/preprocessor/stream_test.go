package preprocessor

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/cond"
)

// These tests pin the invariants of the streaming chunk layer: what the
// chunk writer is allowed to emit, that chunk form and classic segment form
// are lossless conversions of each other, and that a streaming preprocessor
// run is observationally identical to a classic run of the same source.

// ppStream preprocesses main.c in streaming mode.
func ppStream(t *testing.T, files map[string]string) (*Unit, *cond.Space) {
	t.Helper()
	s := cond.NewSpace(cond.ModeBDD)
	p := New(Options{Space: s, FS: MapFS(files), IncludePaths: []string{"include"}, Stream: true})
	u, err := p.Preprocess("main.c")
	if err != nil {
		t.Fatalf("Preprocess(stream): %v", err)
	}
	return u, s
}

// checkChunkInvariants asserts the structural rules every chunk list must
// obey: exactly one of Run/Cond per chunk, no empty runs, runs capped at
// maxRunChunk, and adjacent runs only where the first was a full (capped)
// chunk — otherwise the writer should have packed them together.
func checkChunkInvariants(t *testing.T, chunks []Chunk) {
	t.Helper()
	for i, c := range chunks {
		isRun, isCond := c.Run != nil, c.Cond != nil
		if isRun == isCond {
			t.Fatalf("chunk %d: exactly one of Run/Cond must be set (run=%v cond=%v)", i, isRun, isCond)
		}
		if isRun && len(c.Run) == 0 {
			t.Fatalf("chunk %d: empty run", i)
		}
		if len(c.Run) > maxRunChunk {
			t.Fatalf("chunk %d: run of %d tokens exceeds cap %d", i, len(c.Run), maxRunChunk)
		}
		if i > 0 && isRun && chunks[i-1].Run != nil && len(chunks[i-1].Run) < maxRunChunk {
			t.Fatalf("chunk %d: adjacent runs with a non-full predecessor (%d tokens)", i, len(chunks[i-1].Run))
		}
	}
}

// streamSources is the shared source set: hand-written shapes covering the
// chunk writer's edge cases plus random preprocessor-heavy programs.
func streamSources() map[string]string {
	pad := strings.Repeat("int pad(int a) { return a; }\n", 60) // > maxRunChunk tokens
	srcs := map[string]string{
		"empty":            "",
		"run-only":         pad,
		"cond-only":        "#ifdef A\nint a;\n#else\nlong a;\n#endif\n",
		"run-cond-run":     pad + "#ifdef A\nint m;\n#endif\n" + pad,
		"adjacent-conds":   "#ifdef A\nint a;\n#endif\n#ifdef B\nint b;\n#endif\n",
		"macro-expansion":  "#define TWICE(x) ((x) + (x))\nint v = TWICE(21);\n" + pad,
		"hoisted-cond":     "#define V 1\n#ifdef A\n#define W 2\n#endif\nint x = V\n#ifdef A\n+ W\n#endif\n;\n",
		"include":          "#include \"inc.h\"\nint after;\n",
		"cond-at-very-end": pad + "#ifdef A\nint z;\n#endif\n",
	}
	r := rand.New(rand.NewSource(20260807))
	for i := 0; i < 12; i++ {
		srcs["random-"+string(rune('a'+i))] = randomProgram(r, 3)
	}
	return srcs
}

func streamFiles(src string) map[string]string {
	return map[string]string{
		"main.c":        src,
		"include/inc.h": "int from_header;\n",
	}
}

// TestStreamChunkInvariants checks the writer's structural rules and that
// the chunk token count agrees with the classic segment count.
func TestStreamChunkInvariants(t *testing.T) {
	for name, src := range streamSources() {
		name, src := name, src
		t.Run(name, func(t *testing.T) {
			files := streamFiles(src)
			u, _ := ppStream(t, files)
			if u.Chunks == nil {
				t.Fatal("streaming run produced nil Chunks")
			}
			if u.Segments != nil {
				t.Fatal("streaming run materialized Segments eagerly")
			}
			checkChunkInvariants(t, u.Chunks)
			classic, _, _ := pp(t, files)
			if got, want := CountChunkTokens(u.Chunks), CountTokens(classic.Segments); got != want {
				t.Fatalf("chunk token count %d != classic segment count %d", got, want)
			}
		})
	}
}

// TestStreamEquivalentToClassic renders both pipelines' output —
// conditions, branch structure, token text — and requires byte equality.
func TestStreamEquivalentToClassic(t *testing.T) {
	for name, src := range streamSources() {
		name, src := name, src
		t.Run(name, func(t *testing.T) {
			files := streamFiles(src)
			su, ss := ppStream(t, files)
			cu, cs, _ := pp(t, files)
			got := FlattenText(ss, su.EnsureSegments())
			want := FlattenText(cs, cu.Segments)
			if got != want {
				t.Fatalf("streamed output diverges from classic:\nclassic: %s\nstream:  %s", want, got)
			}
		})
	}
}

// TestChunkSegmentRoundTrip converts a classic unit to chunks and back:
// the round trip must preserve every token value and every conditional
// pointer, and ChunksOf must obey the writer invariants.
func TestChunkSegmentRoundTrip(t *testing.T) {
	for name, src := range streamSources() {
		name, src := name, src
		t.Run(name, func(t *testing.T) {
			u, _, _ := pp(t, streamFiles(src))
			chunks := ChunksOf(u.Segments)
			checkChunkInvariants(t, chunks)
			back := SegmentsOf(chunks)
			if len(back) != len(u.Segments) {
				t.Fatalf("round trip changed segment count: %d != %d", len(back), len(u.Segments))
			}
			for i := range back {
				a, b := u.Segments[i], back[i]
				if a.IsToken() != b.IsToken() {
					t.Fatalf("segment %d: kind changed in round trip", i)
				}
				if a.IsToken() {
					if *a.Tok != *b.Tok {
						t.Fatalf("segment %d: token changed: %+v != %+v", i, *a.Tok, *b.Tok)
					}
					continue
				}
				if a.Cond != b.Cond {
					t.Fatalf("segment %d: conditional pointer changed in round trip", i)
				}
			}
		})
	}
}

// TestChunkSourceReplay checks that Unit.Source replays the chunk list
// exactly, in both streaming and classic modes, and that EnsureSegments
// caches its materialization.
func TestChunkSourceReplay(t *testing.T) {
	files := streamFiles(streamSources()["run-cond-run"])
	su, _ := ppStream(t, files)
	drained := Drain(su.Source())
	if len(drained) != len(su.Chunks) {
		t.Fatalf("Source drained %d chunks, unit has %d", len(drained), len(su.Chunks))
	}
	for i := range drained {
		if drained[i].Cond != su.Chunks[i].Cond || len(drained[i].Run) != len(su.Chunks[i].Run) {
			t.Fatalf("chunk %d differs after replay", i)
		}
	}
	segs := su.EnsureSegments()
	if len(segs) == 0 {
		t.Fatal("EnsureSegments returned nothing")
	}
	if again := su.EnsureSegments(); &again[0] != &segs[0] {
		t.Fatal("EnsureSegments did not cache its materialization")
	}

	// Classic units stream through Source too (packed on the fly).
	cu, _, _ := pp(t, files)
	if got, want := CountChunkTokens(Drain(cu.Source())), CountTokens(cu.Segments); got != want {
		t.Fatalf("classic Source token count %d != %d", got, want)
	}
}

// TestEmptyUnitChunks pins the "streamed but empty" representation: a
// non-nil, zero-length chunk list, distinguishable from a classic run.
func TestEmptyUnitChunks(t *testing.T) {
	u, _ := ppStream(t, map[string]string{"main.c": ""})
	if u.Chunks == nil || len(u.Chunks) != 0 {
		t.Fatalf("empty unit: want non-nil empty Chunks, got %#v", u.Chunks)
	}
	if got := u.EnsureSegments(); len(got) != 0 {
		t.Fatalf("empty unit materialized %d segments", len(got))
	}
}
