package preprocessor

import (
	"strings"
	"testing"

	"repro/internal/cond"
	"repro/internal/lexer"
	"repro/internal/token"
)

// pp preprocesses main.c from the given in-memory tree in
// configuration-preserving mode and returns the unit and its space.
func pp(t *testing.T, files map[string]string) (*Unit, *cond.Space, *Preprocessor) {
	t.Helper()
	s := cond.NewSpace(cond.ModeBDD)
	p := New(Options{Space: s, FS: MapFS(files), IncludePaths: []string{"include"}})
	u, err := p.Preprocess("main.c")
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	for _, d := range u.Diags {
		if !d.Warning {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	return u, s, p
}

// ppSingle preprocesses in single-configuration mode with -D definitions.
func ppSingle(t *testing.T, files map[string]string, defines map[string]string) *Unit {
	t.Helper()
	s := cond.NewSpace(cond.ModeBDD)
	p := New(Options{Space: s, FS: MapFS(files), IncludePaths: []string{"include"}, SingleConfig: true})
	for n, v := range defines {
		if err := p.Define(n, v); err != nil {
			t.Fatal(err)
		}
	}
	u, err := p.PreprocessKeepTable("main.c")
	if err != nil {
		t.Fatalf("Preprocess(single): %v", err)
	}
	return u
}

// textOf joins all ordinary token texts under the given assignment.
func textOf(s *cond.Space, segs []Segment, assign map[string]bool) string {
	toks := Tokens(s, segs, assign)
	parts := make([]string, len(toks))
	for i, t := range toks {
		parts[i] = t.Text
	}
	return strings.Join(parts, " ")
}

// flatText joins all tokens assuming no conditionals remain.
func flatText(t *testing.T, segs []Segment) string {
	t.Helper()
	var parts []string
	for _, sg := range segs {
		if !sg.IsToken() {
			t.Fatalf("unexpected conditional in output")
		}
		parts = append(parts, sg.Tok.Text)
	}
	return strings.Join(parts, " ")
}

func TestPassthrough(t *testing.T) {
	u, _, _ := pp(t, map[string]string{"main.c": "int x = 1;\nreturn x;\n"})
	if got := flatText(t, u.Segments); got != "int x = 1 ; return x ;" {
		t.Errorf("got %q", got)
	}
}

func TestObjectMacro(t *testing.T) {
	u, _, _ := pp(t, map[string]string{"main.c": "#define N 42\nint x = N;\n"})
	if got := flatText(t, u.Segments); got != "int x = 42 ;" {
		t.Errorf("got %q", got)
	}
}

func TestNestedObjectMacros(t *testing.T) {
	u, _, _ := pp(t, map[string]string{"main.c": "#define A B\n#define B C\n#define C 7\nint x = A;\n"})
	if got := flatText(t, u.Segments); got != "int x = 7 ;" {
		t.Errorf("got %q", got)
	}
}

func TestSelfReferentialMacroTerminates(t *testing.T) {
	u, _, _ := pp(t, map[string]string{"main.c": "#define X X + 1\nint v = X;\n"})
	if got := flatText(t, u.Segments); got != "int v = X + 1 ;" {
		t.Errorf("got %q", got)
	}
}

func TestMutuallyRecursiveMacrosTerminate(t *testing.T) {
	u, _, _ := pp(t, map[string]string{"main.c": "#define A B\n#define B A\nint v = A;\n"})
	if got := flatText(t, u.Segments); got != "int v = A ;" {
		t.Errorf("got %q", got)
	}
}

func TestFunctionMacro(t *testing.T) {
	u, _, _ := pp(t, map[string]string{"main.c": "#define MAX(a, b) ((a) > (b) ? (a) : (b))\nint m = MAX(x, y + 1);\n"})
	want := "int m = ( ( x ) > ( y + 1 ) ? ( x ) : ( y + 1 ) ) ;"
	if got := flatText(t, u.Segments); got != want {
		t.Errorf("got %q\nwant %q", got, want)
	}
}

func TestFunctionMacroNestedParens(t *testing.T) {
	u, _, _ := pp(t, map[string]string{"main.c": "#define F(x) [x]\nint m = F(g(a, b));\n"})
	if got := flatText(t, u.Segments); got != "int m = [ g ( a , b ) ] ;" {
		t.Errorf("got %q", got)
	}
}

func TestFunctionMacroMultiline(t *testing.T) {
	// Invocation arguments may span lines: newlines are just whitespace.
	u, _, _ := pp(t, map[string]string{"main.c": "#define ADD(a, b) a + b\nint m = ADD(1,\n2);\n"})
	if got := flatText(t, u.Segments); got != "int m = 1 + 2 ;" {
		t.Errorf("got %q", got)
	}
}

func TestFunctionMacroNameWithoutArgsStays(t *testing.T) {
	u, _, _ := pp(t, map[string]string{"main.c": "#define F(x) x\nint (*p)(int) = F;\nint q = F(3);\n"})
	if got := flatText(t, u.Segments); got != "int ( * p ) ( int ) = F ; int q = 3 ;" {
		t.Errorf("got %q", got)
	}
}

func TestArgumentsExpandBeforeSubstitution(t *testing.T) {
	u, _, _ := pp(t, map[string]string{"main.c": "#define ONE 1\n#define ID(x) x\nint v = ID(ONE);\n"})
	if got := flatText(t, u.Segments); got != "int v = 1 ;" {
		t.Errorf("got %q", got)
	}
}

func TestRescanExpandsResult(t *testing.T) {
	u, _, _ := pp(t, map[string]string{"main.c": "#define CALL(f) f(7)\n#define INC(x) x + 1\nint v = CALL(INC);\n"})
	if got := flatText(t, u.Segments); got != "int v = 7 + 1 ;" {
		t.Errorf("got %q", got)
	}
}

func TestStringify(t *testing.T) {
	u, _, _ := pp(t, map[string]string{"main.c": "#define STR(x) #x\nchar *s = STR(a + b);\n"})
	if got := flatText(t, u.Segments); got != `char * s = "a + b" ;` {
		t.Errorf("got %q", got)
	}
}

func TestStringifyEscapes(t *testing.T) {
	u, _, _ := pp(t, map[string]string{"main.c": "#define STR(x) #x\nchar *s = STR(\"q\");\n"})
	if got := flatText(t, u.Segments); got != `char * s = "\"q\"" ;` {
		t.Errorf("got %q", got)
	}
}

func TestTokenPasting(t *testing.T) {
	u, _, _ := pp(t, map[string]string{"main.c": "#define GLUE(a, b) a ## b\nint GLUE(foo, bar) = 1;\n"})
	if got := flatText(t, u.Segments); got != "int foobar = 1 ;" {
		t.Errorf("got %q", got)
	}
}

func TestTokenPastingNumbers(t *testing.T) {
	u, _, _ := pp(t, map[string]string{"main.c": "#define GLUE(a, b) a ## b\nint v = GLUE(1, 2);\n"})
	if got := flatText(t, u.Segments); got != "int v = 12 ;" {
		t.Errorf("got %q", got)
	}
}

func TestPastedTokenNotReexpanded(t *testing.T) {
	// Pasting forms the name of an object-like macro; cpp rescans and
	// expands it.
	u, _, _ := pp(t, map[string]string{"main.c": "#define AB 99\n#define GLUE(a, b) a ## b\nint v = GLUE(A, B);\n"})
	if got := flatText(t, u.Segments); got != "int v = 99 ;" {
		t.Errorf("got %q", got)
	}
}

func TestVariadicMacro(t *testing.T) {
	u, _, _ := pp(t, map[string]string{"main.c": "#define P(fmt, ...) printf(fmt, __VA_ARGS__)\nP(\"%d\", 1, 2);\n"})
	if got := flatText(t, u.Segments); got != `printf ( "%d" , 1 , 2 ) ;` {
		t.Errorf("got %q", got)
	}
}

func TestGccNamedVariadic(t *testing.T) {
	u, _, _ := pp(t, map[string]string{"main.c": "#define P(fmt, args...) printf(fmt, args)\nP(\"%d\", 1, 2);\n"})
	if got := flatText(t, u.Segments); got != `printf ( "%d" , 1 , 2 ) ;` {
		t.Errorf("got %q", got)
	}
}

func TestUndef(t *testing.T) {
	u, _, _ := pp(t, map[string]string{"main.c": "#define N 1\nint a = N;\n#undef N\nint b = N;\n"})
	if got := flatText(t, u.Segments); got != "int a = 1 ; int b = N ;" {
		t.Errorf("got %q", got)
	}
}

func TestBuiltins(t *testing.T) {
	u, _, _ := pp(t, map[string]string{"main.c": "long v = __STDC__;\nint l = __LINE__;\nchar *f = __FILE__;\n"})
	got := flatText(t, u.Segments)
	if !strings.Contains(got, "long v = 1 ;") {
		t.Errorf("__STDC__: %q", got)
	}
	if !strings.Contains(got, "int l = 2 ;") {
		t.Errorf("__LINE__: %q", got)
	}
	if !strings.Contains(got, `char * f = "main.c" ;`) {
		t.Errorf("__FILE__: %q", got)
	}
}

func TestConditionalStructure(t *testing.T) {
	u, s, _ := pp(t, map[string]string{"main.c": `
int before;
#ifdef CONFIG_A
int a;
#else
int b;
#endif
int after;
`})
	da := map[string]bool{"(defined CONFIG_A)": true}
	notA := map[string]bool{}
	if got := textOf(s, u.Segments, da); got != "int before ; int a ; int after ;" {
		t.Errorf("A set: %q", got)
	}
	if got := textOf(s, u.Segments, notA); got != "int before ; int b ; int after ;" {
		t.Errorf("A clear: %q", got)
	}
	if u.Stats.Conditionals != 1 {
		t.Errorf("Conditionals = %d", u.Stats.Conditionals)
	}
}

func TestElifChain(t *testing.T) {
	u, s, _ := pp(t, map[string]string{"main.c": `
#if defined(A)
int x = 1;
#elif defined(B)
int x = 2;
#elif defined(C)
int x = 3;
#else
int x = 4;
#endif
`})
	cases := []struct {
		assign map[string]bool
		want   string
	}{
		{map[string]bool{"(defined A)": true}, "int x = 1 ;"},
		{map[string]bool{"(defined B)": true}, "int x = 2 ;"},
		{map[string]bool{"(defined A)": true, "(defined B)": true}, "int x = 1 ;"},
		{map[string]bool{"(defined C)": true}, "int x = 3 ;"},
		{map[string]bool{}, "int x = 4 ;"},
	}
	for _, c := range cases {
		if got := textOf(s, u.Segments, c.assign); got != c.want {
			t.Errorf("%v: got %q, want %q", c.assign, got, c.want)
		}
	}
}

func TestNestedConditionals(t *testing.T) {
	u, s, _ := pp(t, map[string]string{"main.c": `
#ifdef A
#ifdef B
int ab;
#endif
int a;
#endif
`})
	both := map[string]bool{"(defined A)": true, "(defined B)": true}
	onlyA := map[string]bool{"(defined A)": true}
	if got := textOf(s, u.Segments, both); got != "int ab ; int a ;" {
		t.Errorf("both: %q", got)
	}
	if got := textOf(s, u.Segments, onlyA); got != "int a ;" {
		t.Errorf("only A: %q", got)
	}
	if got := textOf(s, u.Segments, nil); got != "" {
		t.Errorf("neither: %q", got)
	}
	if u.Stats.MaxCondDepth != 2 {
		t.Errorf("MaxCondDepth = %d", u.Stats.MaxCondDepth)
	}
}

func TestInfeasibleBranchSkipped(t *testing.T) {
	// #ifdef A / #ifndef A nesting: the inner else is infeasible and its
	// content must not appear under any configuration.
	u, s, _ := pp(t, map[string]string{"main.c": `
#ifdef A
#ifndef A
int impossible;
#endif
int a;
#endif
`})
	for _, assign := range []map[string]bool{nil, {"(defined A)": true}} {
		if got := textOf(s, u.Segments, assign); strings.Contains(got, "impossible") {
			t.Errorf("infeasible code surfaced under %v: %q", assign, got)
		}
	}
}

// TestMultiplyDefinedMacro reproduces paper Figure 2: BITS_PER_LONG defined
// differently in the two branches of CONFIG_64BIT; a use propagates the
// implicit conditional.
func TestMultiplyDefinedMacro(t *testing.T) {
	u, s, _ := pp(t, map[string]string{"main.c": `
#ifdef CONFIG_64BIT
#define BITS_PER_LONG 64
#else
#define BITS_PER_LONG 32
#endif
int bits = BITS_PER_LONG;
`})
	on := map[string]bool{"(defined CONFIG_64BIT)": true}
	if got := textOf(s, u.Segments, on); got != "int bits = 64 ;" {
		t.Errorf("64-bit: %q", got)
	}
	if got := textOf(s, u.Segments, nil); got != "int bits = 32 ;" {
		t.Errorf("32-bit: %q", got)
	}
	if u.Stats.TrimmedInvocations == 0 {
		t.Error("multiply-defined use did not count as trimmed invocation")
	}
}

// TestConditionalExpressionFolding reproduces §3.2's example: after
// expanding BITS_PER_LONG and hoisting, "#if BITS_PER_LONG == 32" must
// simplify to !defined(CONFIG_64BIT).
func TestConditionalExpressionFolding(t *testing.T) {
	u, s, _ := pp(t, map[string]string{"main.c": `
#ifdef CONFIG_64BIT
#define BITS_PER_LONG 64
#else
#define BITS_PER_LONG 32
#endif
#if BITS_PER_LONG == 32
int narrow;
#endif
`})
	if got := textOf(s, u.Segments, nil); got != "int narrow ;" {
		t.Errorf("32-bit config: %q", got)
	}
	on := map[string]bool{"(defined CONFIG_64BIT)": true}
	if got := textOf(s, u.Segments, on); got != "" {
		t.Errorf("64-bit config: %q", got)
	}
}

// TestConditionalFunctionLikeHoisting reproduces paper Figures 3-4:
// cpu_to_le32 conditionally expands to a function-like macro whose argument
// list follows the conditional; hoisting duplicates (val) into both
// branches.
func TestConditionalFunctionLikeHoisting(t *testing.T) {
	u, s, _ := pp(t, map[string]string{"main.c": `
#define __cpu_to_le32(x) ((__le32)(__u32)(x))
#ifdef __KERNEL__
#define cpu_to_le32 __cpu_to_le32
#endif
put_user(cpu_to_le32(val), buf);
`})
	kern := map[string]bool{"(defined __KERNEL__)": true}
	want := "put_user ( ( ( __le32 ) ( __u32 ) ( val ) ) , buf ) ;"
	if got := textOf(s, u.Segments, kern); got != want {
		t.Errorf("kernel config:\n got %q\nwant %q", got, want)
	}
	wantUser := "put_user ( cpu_to_le32 ( val ) , buf ) ;"
	if got := textOf(s, u.Segments, nil); got != wantUser {
		t.Errorf("user config:\n got %q\nwant %q", got, wantUser)
	}
	if u.Stats.HoistedInvocations == 0 {
		t.Error("expected a hoisted invocation")
	}
}

// TestTokenPastingHoisting reproduces paper Figure 5: pasting __le ##
// BITS_PER_LONG where BITS_PER_LONG is multiply-defined hoists the
// conditional around the pasting.
func TestTokenPastingHoisting(t *testing.T) {
	u, s, _ := pp(t, map[string]string{"main.c": `
#ifdef CONFIG_64BIT
#define BITS_PER_LONG 64
#else
#define BITS_PER_LONG 32
#endif
#define uintBPL_t uint(BITS_PER_LONG)
#define uint(x) xuint(x)
#define xuint(x) __le ## x
uintBPL_t *p;
`})
	on := map[string]bool{"(defined CONFIG_64BIT)": true}
	if got := textOf(s, u.Segments, on); got != "__le64 * p ;" {
		t.Errorf("64-bit: %q", got)
	}
	if got := textOf(s, u.Segments, nil); got != "__le32 * p ;" {
		t.Errorf("32-bit: %q", got)
	}
	// The conditional is hoisted either around the pasting itself or around
	// the enclosing function-like invocation, depending on where the
	// expansion encounters it; both preserve Figure 5's semantics.
	if u.Stats.HoistedPastings == 0 && u.Stats.HoistedInvocations == 0 {
		t.Error("expected the conditional to be hoisted")
	}
}

// TestSourceConditionalInsideInvocation: an explicit #ifdef inside a
// function-like macro's argument list (Table 1: "Function-Like Macro
// Invocations / Contain Conditionals").
func TestSourceConditionalInsideInvocation(t *testing.T) {
	u, s, _ := pp(t, map[string]string{"main.c": `
#define WRAP(x) [ x ]
int v = WRAP(
#ifdef A
1
#else
2
#endif
);
`})
	on := map[string]bool{"(defined A)": true}
	if got := textOf(s, u.Segments, on); got != "int v = [ 1 ] ;" {
		t.Errorf("A on: %q", got)
	}
	if got := textOf(s, u.Segments, nil); got != "int v = [ 2 ] ;" {
		t.Errorf("A off: %q", got)
	}
}

// TestConditionalArgumentCount: branches change the number of arguments
// (Table 1: "Support differing argument numbers").
func TestConditionalArgumentCount(t *testing.T) {
	u, s, _ := pp(t, map[string]string{"main.c": `
#ifdef WIDE
#define GET(a, b) take2(a, b)
#else
#define GET(a) take1(a)
#endif
int v = GET(1
#ifdef WIDE
, 2
#endif
);
`})
	on := map[string]bool{"(defined WIDE)": true}
	if got := textOf(s, u.Segments, on); got != "int v = take2 ( 1 , 2 ) ;" {
		t.Errorf("wide: %q", got)
	}
	if got := textOf(s, u.Segments, nil); got != "int v = take1 ( 1 ) ;" {
		t.Errorf("narrow: %q", got)
	}
}

func TestInclude(t *testing.T) {
	u, _, _ := pp(t, map[string]string{
		"main.c": "#include \"defs.h\"\nint x = VALUE;\n",
		"defs.h": "#define VALUE 5\n",
	})
	if got := flatText(t, u.Segments); got != "int x = 5 ;" {
		t.Errorf("got %q", got)
	}
	if u.Stats.Includes != 1 {
		t.Errorf("Includes = %d", u.Stats.Includes)
	}
}

func TestIncludeAngledSearchesPaths(t *testing.T) {
	u, _, _ := pp(t, map[string]string{
		"main.c":        "#include <sys.h>\nint x = SYS;\n",
		"include/sys.h": "#define SYS 9\n",
	})
	if got := flatText(t, u.Segments); got != "int x = 9 ;" {
		t.Errorf("got %q", got)
	}
}

func TestIncludeGuardSkip(t *testing.T) {
	u, _, _ := pp(t, map[string]string{
		"main.c": "#include \"g.h\"\n#include \"g.h\"\nint x = G;\n",
		"g.h":    "#ifndef G_H\n#define G_H\n#define G 3\n#endif\n",
	})
	if got := flatText(t, u.Segments); got != "int x = 3 ;" {
		t.Errorf("got %q", got)
	}
	if u.Stats.GuardSkips != 1 {
		t.Errorf("GuardSkips = %d, want 1", u.Stats.GuardSkips)
	}
}

func TestReincludeAfterUndef(t *testing.T) {
	u, _, _ := pp(t, map[string]string{
		"main.c": "#include \"g.h\"\nint a = G;\n#undef G_H\n#undef G\n#include \"g.h\"\nint b = G;\n",
		"g.h":    "#ifndef G_H\n#define G_H\n#define G 3\n#endif\n",
	})
	if got := flatText(t, u.Segments); got != "int a = 3 ; int b = 3 ;" {
		t.Errorf("got %q", got)
	}
	if u.Stats.ReincludedHeaders != 1 {
		t.Errorf("ReincludedHeaders = %d, want 1", u.Stats.ReincludedHeaders)
	}
}

func TestComputedInclude(t *testing.T) {
	u, _, _ := pp(t, map[string]string{
		"main.c": "#define HDR \"one.h\"\n#include HDR\nint x = ONE;\n",
		"one.h":  "#define ONE 1\n",
	})
	if got := flatText(t, u.Segments); got != "int x = 1 ;" {
		t.Errorf("got %q", got)
	}
	if u.Stats.ComputedIncludes != 1 {
		t.Errorf("ComputedIncludes = %d", u.Stats.ComputedIncludes)
	}
}

func TestHoistedComputedInclude(t *testing.T) {
	u, s, _ := pp(t, map[string]string{
		"main.c": `
#ifdef B
#define HDR "two.h"
#else
#define HDR "one.h"
#endif
#include HDR
int x = VAL;
`,
		"one.h": "#define VAL 1\n",
		"two.h": "#define VAL 2\n",
	})
	on := map[string]bool{"(defined B)": true}
	if got := textOf(s, u.Segments, on); got != "int x = 2 ;" {
		t.Errorf("B on: %q", got)
	}
	if got := textOf(s, u.Segments, nil); got != "int x = 1 ;" {
		t.Errorf("B off: %q", got)
	}
	if u.Stats.HoistedIncludes != 1 {
		t.Errorf("HoistedIncludes = %d", u.Stats.HoistedIncludes)
	}
}

func TestErrorDirectiveMakesBranchInfeasible(t *testing.T) {
	u, s, _ := pp(t, map[string]string{"main.c": `
#ifdef BROKEN
#error this configuration is unsupported
int junk;
#else
int good;
#endif
`})
	on := map[string]bool{"(defined BROKEN)": true}
	if got := textOf(s, u.Segments, on); got != "" {
		t.Errorf("error branch surfaced content: %q", got)
	}
	if got := textOf(s, u.Segments, nil); got != "int good ;" {
		t.Errorf("good branch: %q", got)
	}
	if u.Stats.ErrorDirectives != 1 {
		t.Errorf("ErrorDirectives = %d", u.Stats.ErrorDirectives)
	}
}

func TestTopLevelErrorIsDiagnostic(t *testing.T) {
	s := cond.NewSpace(cond.ModeBDD)
	p := New(Options{Space: s, FS: MapFS(map[string]string{"main.c": "#error boom\n"})})
	u, err := p.Preprocess("main.c")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range u.Diags {
		if !d.Warning && strings.Contains(d.Msg, "boom") {
			found = true
		}
	}
	if !found {
		t.Error("top-level #error not reported")
	}
}

func TestWarningPragmaLine(t *testing.T) {
	s := cond.NewSpace(cond.ModeBDD)
	p := New(Options{Space: s, FS: MapFS(map[string]string{
		"main.c": "#warning msg\n#pragma pack(1)\n#line 100\nint x;\n"})})
	u, err := p.Preprocess("main.c")
	if err != nil {
		t.Fatal(err)
	}
	if u.Stats.WarningDirectives != 1 || u.Stats.PragmaDirectives != 1 || u.Stats.LineDirectives != 1 {
		t.Errorf("stats = %+v", u.Stats)
	}
}

func TestIfdefDefinedInteraction(t *testing.T) {
	// defined() must see macros defined under conditions.
	u, s, _ := pp(t, map[string]string{"main.c": `
#ifdef A
#define HAS_A_FEATURE 1
#endif
#if defined(HAS_A_FEATURE)
int feature;
#endif
`})
	on := map[string]bool{"(defined A)": true}
	if got := textOf(s, u.Segments, on); got != "int feature ;" {
		t.Errorf("A on: %q", got)
	}
	if got := textOf(s, u.Segments, nil); got != "" {
		t.Errorf("A off: %q", got)
	}
}

func TestNonBooleanExpressionPreserved(t *testing.T) {
	u, s, _ := pp(t, map[string]string{"main.c": `
#if NR_CPUS < 256
typedef char ticket_t;
#else
typedef short ticket_t;
#endif
`})
	if u.Stats.NonBooleanExprs == 0 {
		t.Error("non-boolean expression not counted")
	}
	// Both branches must remain reachable (opaque condition).
	small := map[string]bool{"(expr (NR_CPUS<256))": true}
	if got := textOf(s, u.Segments, small); got != "typedef char ticket_t ;" {
		t.Errorf("small: %q", got)
	}
	if got := textOf(s, u.Segments, nil); got != "typedef short ticket_t ;" {
		t.Errorf("large: %q", got)
	}
}

func TestSingleConfigMode(t *testing.T) {
	files := map[string]string{"main.c": `
#ifdef CONFIG_A
int a;
#else
int b;
#endif
#if VALUE == 3
int three;
#endif
`}
	u := ppSingle(t, files, map[string]string{"CONFIG_A": "1", "VALUE": "3"})
	if got := flatText(t, u.Segments); got != "int a ; int three ;" {
		t.Errorf("got %q", got)
	}
	u = ppSingle(t, files, nil)
	if got := flatText(t, u.Segments); got != "int b ;" {
		t.Errorf("got %q", got)
	}
}

// TestDifferentialSingleVsPreserving cross-validates the
// configuration-preserving output against single-configuration
// preprocessing for every configuration of a small but feature-rich program
// — the analogue of the paper's gcc -E comparison.
func TestDifferentialSingleVsPreserving(t *testing.T) {
	files := map[string]string{
		"main.c": `
#include "conf.h"
#if defined(CONFIG_X)
#define WIDTH 64
#else
#define WIDTH 32
#endif
#define PASTE(a, b) a ## b
#define STR(x) #x
int width = WIDTH;
typedef int PASTE(int, WIDTH);
char *name = STR(WIDTH);
#ifdef CONFIG_Y
#if WIDTH == 64
long both;
#endif
int y = FEATURE(1);
#endif
#if WIDTH == 32 && !defined(CONFIG_Y)
short neither;
#endif
`,
		"conf.h": `
#ifndef CONF_H
#define CONF_H
#ifdef CONFIG_Y
#define FEATURE(x) ((x) + 100)
#else
#define FEATURE(x) (x)
#endif
#endif
`,
	}
	vars := []string{"CONFIG_X", "CONFIG_Y"}
	u, s, _ := pp(t, files)
	for bits := 0; bits < 1<<len(vars); bits++ {
		defines := map[string]string{}
		assign := map[string]bool{}
		for i, v := range vars {
			if bits&(1<<i) != 0 {
				defines[v] = "1"
				assign["(defined "+v+")"] = true
			}
		}
		single := ppSingle(t, files, defines)
		wantToks := Tokens(s, single.Segments, nil)
		gotToks := Tokens(s, u.Segments, assign)
		want := make([]string, len(wantToks))
		for i, tk := range wantToks {
			want[i] = tk.Text
		}
		got := make([]string, len(gotToks))
		for i, tk := range gotToks {
			got[i] = tk.Text
		}
		if strings.Join(got, " ") != strings.Join(want, " ") {
			t.Errorf("config %v:\npreserving: %s\nsingle:     %s",
				defines, strings.Join(got, " "), strings.Join(want, " "))
		}
	}
}

func TestMacroTableTrimming(t *testing.T) {
	_, s, p := pp(t, map[string]string{"main.c": `
#define M 1
#define M 2
int x = M;
`})
	// The second unconditional define must have trimmed the first entirely.
	if n := p.Macros().NumEntries("M"); n != 1 {
		t.Errorf("entries for M = %d, want 1", n)
	}
	defs, free := p.Macros().Lookup("M", s.True())
	if len(defs) != 1 || !s.IsFalse(free) {
		t.Errorf("lookup: %d defs, free=%s", len(defs), s.String(free))
	}
	if got := tokensText(defs[0].Def.Body); got != "2" {
		t.Errorf("body = %q", got)
	}
}

func TestDefineInsideConditionalCounts(t *testing.T) {
	u, _, _ := pp(t, map[string]string{"main.c": "#ifdef A\n#define X 1\n#endif\n"})
	if u.Stats.DefsInConditional != 1 {
		t.Errorf("DefsInConditional = %d", u.Stats.DefsInConditional)
	}
}

func TestGuardDetection(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"#ifndef FOO_H\n#define FOO_H\nint x;\n#endif\n", "FOO_H"},
		{"#if !defined(FOO_H)\n#define FOO_H\nint x;\n#endif\n", "FOO_H"},
		{"#if !defined FOO_H\n#define FOO_H\nint x;\n#endif\n", "FOO_H"},
		{"#ifndef FOO_H\n#define BAR_H\nint x;\n#endif\n", ""}, // wrong define
		{"#ifndef FOO_H\n#define FOO_H\n#endif\nint x;\n", ""}, // tokens after endif
		{"int x;\n#ifndef FOO_H\n#define FOO_H\n#endif\n", ""}, // tokens before
		{"#ifdef FOO_H\n#define FOO_H\n#endif\n", ""},          // ifdef, not ifndef
	}
	for i, c := range cases {
		toks := mustLexLines(t, c.src)
		if got := detectGuard(toks); got != c.want {
			t.Errorf("case %d: detectGuard = %q, want %q", i, got, c.want)
		}
	}
}

func mustLexLines(t *testing.T, src string) [][]token.Token {
	t.Helper()
	toks, err := lexAll(src)
	if err != nil {
		t.Fatal(err)
	}
	return splitLines(toks)
}

func TestHoistAlgorithm(t *testing.T) {
	s := cond.NewSpace(cond.ModeBDD)
	a := s.Var("A")
	tok := func(text string) Segment {
		return TokSeg(token.Token{Kind: token.Identifier, Text: text})
	}
	// x [A: p | else: q] y  →  (A: x p y), (!A: x q y)
	segs := []Segment{
		tok("x"),
		CondSeg(&Conditional{Branches: []Branch{
			{Cond: a, Segs: []Segment{tok("p")}},
			{Cond: s.Not(a), Segs: []Segment{tok("q")}},
		}}),
		tok("y"),
	}
	alts, ok := Hoist(s, s.True(), segs, 0)
	if !ok || len(alts) != 2 {
		t.Fatalf("Hoist: ok=%v, %d alts", ok, len(alts))
	}
	for _, alt := range alts {
		var texts []string
		for _, tk := range alt.Toks {
			texts = append(texts, tk.Text)
		}
		joined := strings.Join(texts, " ")
		switch {
		case s.Equal(alt.Cond, a):
			if joined != "x p y" {
				t.Errorf("A branch: %q", joined)
			}
		case s.Equal(alt.Cond, s.Not(a)):
			if joined != "x q y" {
				t.Errorf("!A branch: %q", joined)
			}
		default:
			t.Errorf("unexpected condition %s", s.String(alt.Cond))
		}
	}
}

func TestHoistImplicitBranch(t *testing.T) {
	s := cond.NewSpace(cond.ModeBDD)
	a := s.Var("A")
	tok := func(text string) Segment {
		return TokSeg(token.Token{Kind: token.Identifier, Text: text})
	}
	// [A: p] y with no else → (A: p y), (!A: y)
	segs := []Segment{
		CondSeg(&Conditional{Branches: []Branch{{Cond: a, Segs: []Segment{tok("p")}}}}),
		tok("y"),
	}
	alts, ok := Hoist(s, s.True(), segs, 0)
	if !ok || len(alts) != 2 {
		t.Fatalf("Hoist: ok=%v, %d alts", ok, len(alts))
	}
}

func TestHoistLimit(t *testing.T) {
	s := cond.NewSpace(cond.ModeBDD)
	var segs []Segment
	for i := 0; i < 12; i++ {
		v := s.Var("V" + string(rune('A'+i)))
		segs = append(segs, CondSeg(&Conditional{Branches: []Branch{
			{Cond: v, Segs: []Segment{TokSeg(token.Token{Kind: token.Identifier, Text: "x"})}},
		}}))
	}
	if _, ok := Hoist(s, s.True(), segs, 64); ok {
		t.Error("expected hoist limit to trip")
	}
}

// lexAll is a test helper around the lexer.
func lexAll(src string) ([]token.Token, error) {
	toks, err := lexer.Lex("test.h", []byte(src))
	if err != nil {
		return nil, err
	}
	return lexer.StripEOF(toks), nil
}
