package preprocessor

import (
	"fmt"
	"strconv"

	"repro/internal/token"
)

// Built-in macros: the "ground truth" of the targeted compiler (paper §2,
// "get ground truth for built-ins from compiler"). The paper obtains these
// by interrogating gcc; here they are a fixed table modeled on gcc's
// documented predefined macros, which exercises the same code path — the
// table is installed into the macro table under the True condition before
// user code is preprocessed.
//
// __FILE__ and __LINE__ are dynamic and handled specially during expansion.

// DefaultBuiltins maps built-in object-like macro names to their replacement
// text. Callers can extend or override via Options.Builtins.
var DefaultBuiltins = map[string]string{
	"__STDC__":           "1",
	"__STDC_VERSION__":   "199901L",
	"__STDC_HOSTED__":    "1",
	"__GNUC__":           "4",
	"__GNUC_MINOR__":     "4",
	"__CHAR_BIT__":       "8",
	"__SIZEOF_INT__":     "4",
	"__SIZEOF_LONG__":    "8",
	"__SIZEOF_POINTER__": "8",
	"__x86_64__":         "1",
	"__ELF__":            "1",
	"__linux__":          "1",
	"__unix__":           "1",
}

// dynamicBuiltin returns the expansion of a use-site-dependent built-in, or
// nil when name is not dynamic. counter supplies __COUNTER__'s
// per-expansion value.
func dynamicBuiltin(name string, use token.Token, counter func() int) []token.Token {
	switch name {
	case "__COUNTER__":
		return []token.Token{{
			Kind: token.Number, Text: fmt.Sprintf("%d", counter()),
			File: use.File, Line: use.Line, Col: use.Col, HasSpace: use.HasSpace,
		}}
	case "__FILE__":
		return []token.Token{{
			Kind: token.String, Text: strconv.Quote(use.File),
			File: use.File, Line: use.Line, Col: use.Col, HasSpace: use.HasSpace,
		}}
	case "__LINE__":
		return []token.Token{{
			Kind: token.Number, Text: fmt.Sprintf("%d", use.Line),
			File: use.File, Line: use.Line, Col: use.Col, HasSpace: use.HasSpace,
		}}
	}
	return nil
}

// isDynamicBuiltin reports whether name must be expanded at each use site.
func isDynamicBuiltin(name string) bool {
	return name == "__FILE__" || name == "__LINE__" || name == "__COUNTER__"
}
