package hcache

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/cond"
)

func TestLexLevelLRU(t *testing.T) {
	c := New(Options{MaxLexEntries: 2})
	c.StoreLex("a", &LexEntry{Bytes: 1})
	c.StoreLex("b", &LexEntry{Bytes: 2})
	if _, ok := c.LookupLex("a"); !ok {
		t.Fatal("a should be cached")
	}
	// a is now most recent; adding c evicts b.
	c.StoreLex("c", &LexEntry{Bytes: 3})
	if _, ok := c.LookupLex("b"); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := c.LookupLex("a"); !ok {
		t.Error("a should have survived (recently used)")
	}
	s := c.Stats()
	if s.Evictions != 1 || s.LexEntries != 2 {
		t.Errorf("evictions=%d entries=%d", s.Evictions, s.LexEntries)
	}
}

func TestHeaderLevelMultipleEntriesPerKey(t *testing.T) {
	c := New(Options{})
	c.Store("k", &Entry{Fingerprint: []KV{{Key: "m:A", Sig: "1"}}, Payload: "one"})
	c.Store("k", &Entry{Fingerprint: []KV{{Key: "m:A", Sig: "2"}}, Payload: "two"})
	e, ok := c.Lookup("k", func(e *Entry) bool { return e.Fingerprint[0].Sig == "2" })
	if !ok || e.Payload != "two" {
		t.Fatalf("got %v, %v", e, ok)
	}
	if _, ok := c.Lookup("k", func(e *Entry) bool { return false }); ok {
		t.Error("no candidate should match")
	}
	s := c.Stats()
	if s.HeaderHits != 1 || s.HeaderMisses != 1 || s.HeaderEntries != 2 {
		t.Errorf("hits=%d misses=%d entries=%d", s.HeaderHits, s.HeaderMisses, s.HeaderEntries)
	}
}

func TestHeaderLevelEvictionBound(t *testing.T) {
	c := New(Options{MaxHeaderEntries: 3})
	for i := 0; i < 10; i++ {
		c.Store(fmt.Sprintf("k%d", i), &Entry{Bytes: i})
	}
	s := c.Stats()
	if s.HeaderEntries != 3 {
		t.Errorf("entries=%d, want bound 3", s.HeaderEntries)
	}
	if s.Evictions != 7 {
		t.Errorf("evictions=%d, want 7", s.Evictions)
	}
	// Oldest keys are gone, newest are present.
	if _, ok := c.Lookup("k0", func(*Entry) bool { return true }); ok {
		t.Error("k0 should be evicted")
	}
	if _, ok := c.Lookup("k9", func(*Entry) bool { return true }); !ok {
		t.Error("k9 should be present")
	}
}

func TestBytesSavedCounting(t *testing.T) {
	c := New(Options{})
	c.Store("k", &Entry{Bytes: 100})
	c.Lookup("k", func(*Entry) bool { return true })
	c.Lookup("k", func(*Entry) bool { return true })
	if s := c.Stats(); s.BytesSaved != 200 {
		t.Errorf("BytesSaved=%d, want 200", s.BytesSaved)
	}
}

func TestSnapshotSub(t *testing.T) {
	a := Snapshot{LexHits: 5, HeaderHits: 3, BytesSaved: 100, LexEntries: 7}
	b := Snapshot{LexHits: 2, HeaderHits: 1, BytesSaved: 40, LexEntries: 4}
	d := a.Sub(b)
	if d.LexHits != 3 || d.HeaderHits != 2 || d.BytesSaved != 60 {
		t.Errorf("delta = %+v", d)
	}
	// Population counters stay absolute, not differenced.
	if d.LexEntries != 7 {
		t.Errorf("LexEntries = %d, want 7", d.LexEntries)
	}
}

func TestCanonIDs(t *testing.T) {
	canon := NewCanon()
	// Constants resolve without the shared space.
	tr := &cond.Formula{Op: cond.FTrue}
	fa := &cond.Formula{Op: cond.FFalse}
	if canon.ID(tr) != "1" || canon.ID(fa) != "0" {
		t.Fatalf("constant ids: %s %s", canon.ID(tr), canon.ID(fa))
	}
	// Equal functions exported from different spaces (with different
	// variable orders) canonicalize to the same id.
	s1 := cond.NewSpace(cond.ModeBDD)
	c1 := s1.And(s1.Var("A"), s1.Var("B"))
	s2 := cond.NewSpace(cond.ModeBDD)
	s2.Var("B") // reversed creation order
	c2 := s2.And(s2.Var("A"), s2.Var("B"))
	if id1, id2 := canon.ID(s1.Export(c1)), canon.ID(s2.Export(c2)); id1 != id2 {
		t.Errorf("ids differ: %s vs %s", id1, id2)
	}
	// Different functions get different ids.
	c3 := s1.Or(s1.Var("A"), s1.Var("B"))
	if canon.ID(s1.Export(c1)) == canon.ID(s1.Export(c3)) {
		t.Error("distinct functions share an id")
	}
}

// TestConcurrentAccess hammers both levels from several goroutines; run
// under -race it is the cache's thread-safety test.
func TestConcurrentAccess(t *testing.T) {
	c := New(Options{MaxLexEntries: 8, MaxHeaderEntries: 8})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (g+i)%12)
				c.StoreLex(key, &LexEntry{Bytes: i})
				c.LookupLex(key)
				c.Store(key, &Entry{Bytes: i, Fingerprint: []KV{{Key: "m:X", Sig: "s"}}})
				c.Lookup(key, func(e *Entry) bool { return e.Bytes%2 == 0 })
				canonF := &cond.Formula{Op: cond.FVar, Name: fmt.Sprintf("V%d", i%5)}
				c.Canon().ID(canonF)
			}
		}(g)
	}
	wg.Wait()
	s := c.Stats()
	if s.LexEntries > 8 || s.HeaderEntries > 8 {
		t.Errorf("bounds exceeded: %+v", s)
	}
}
