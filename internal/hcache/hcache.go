// Package hcache is the cross-unit header cache: it shares the work of
// lexing and preprocessing headers between compilation units processed by
// the parallel harness, without violating the one-condition-space-per-unit
// isolation the worker pool relies on.
//
// SuperC's hoisting design makes a header's preprocessed output a pure
// function of its bytes plus the macro state it observes, which yields two
// cache levels:
//
//   - Level 1 caches the macro-independent work — the lexed token stream,
//     logical-line segmentation, and include-guard detection — keyed by
//     content hash alone. Tokens are immutable after lexing, so entries are
//     shared read-only across units and workers.
//
//   - Level 2 memoizes full header preprocessing, keyed by (content hash,
//     configuration) with a fingerprint of the macro state the header
//     observed — its interaction set. The preprocessor records exactly
//     which macro names a header reads, defines, or undefines while
//     processing it; a later unit may replay the cached result only when
//     its incoming state restricted to that set matches. Guard-protected
//     headers interact only with their guard macro and the names they
//     define, so their fingerprints degenerate to cheap defined/undefined
//     checks and hot system headers hit almost always.
//
// The cache stores conditions as space-independent cond.Formula DAGs and an
// opaque payload the preprocessor materializes into each unit's own space
// (package preprocessor imports this package, not vice versa). Fingerprint
// signatures are canonicalized through a shared Canon so that units with
// different BDD variable orders produce comparable fingerprints.
//
// All operations are safe for concurrent use. Both levels are bounded by
// LRU eviction, so the cache cannot grow without limit on large corpora,
// and stale entries (a header edited between runs changes its content hash
// and stops being reachable) age out the same way.
package hcache

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"strconv"
	"sync"

	"repro/internal/cond"
	"repro/internal/stats"
	"repro/internal/token"
)

// Hash returns the content hash used for cache keys (hex sha256).
func Hash(b []byte) string {
	h := sha256.Sum256(b)
	return hex.EncodeToString(h[:])
}

// LexEntry is one Level-1 result: the pure, macro-independent part of
// processing a file. Everything in it is immutable and shared read-only
// across units.
type LexEntry struct {
	Toks  []token.Token   // lexed tokens, EOF stripped
	Lines [][]token.Token // logical lines (newlines removed)
	Guard string          // include-guard macro name, "" if none
	Bytes int             // source size, for the bytes-saved accounting
}

// KV is one fingerprint component: the state signature Sig observed for Key
// (a macro name or other piece of preprocessor state) when the entry was
// recorded, in first-touch order.
type KV struct {
	Key, Sig string
}

// Dep is a file the recorded processing read: replaying is valid only while
// the file still hashes to Hash.
type Dep struct {
	Path, Hash string
}

// Probe is a file-existence check the recorded processing performed during
// include resolution: replaying is valid only while the outcome holds (a
// header appearing earlier on the include path must invalidate entries that
// resolved past its absence).
type Probe struct {
	Path   string
	Exists bool
}

// Entry is one Level-2 result: a fully preprocessed header under a recorded
// macro-state fingerprint. The payload is opaque to this package; the
// preprocessor stores its exported segment forest, macro-table operations,
// diagnostics, and statistics delta there. Entries are immutable once
// stored.
type Entry struct {
	Fingerprint []KV
	Deps        []Dep
	Probes      []Probe
	// RelIncludeDepth is the deepest include nesting the recording reached,
	// relative to the header itself; replay at depth d is valid only while
	// d + RelIncludeDepth stays under the preprocessor's include limit.
	RelIncludeDepth int
	Bytes           int // source bytes replay avoids re-preprocessing
	Payload         any
	// Portable reports that every fingerprint signature is process
	// independent (no per-process canonical condition ids), so the entry may
	// be persisted and replayed by a different process. The recorder sets it;
	// only portable entries reach the backing store.
	Portable bool

	key  string        // owning cache key, for eviction bookkeeping
	elem *list.Element // position in the cache's LRU list
}

// PayloadCodec serializes the opaque Level-2 payload for a durable backing
// store. The preprocessor (which owns the payload representation) provides
// the implementation; see preprocessor.PayloadCodec.
type PayloadCodec interface {
	EncodePayload(any) ([]byte, error)
	DecodePayload([]byte) (any, error)
}

// Backing is an optional durable layer beneath the in-memory cache: misses
// consult it, stores write through to it. Implementations must be safe for
// concurrent use; Load/Save are called outside the cache's lock. The
// canonical implementation is store.HeaderBacking, which persists entries to
// the content-addressed artifact store.
type Backing interface {
	// LoadLex returns the persisted Level-1 entry for a cache key, if any.
	LoadLex(key string) (*LexEntry, bool)
	// SaveLex persists a Level-1 entry (best-effort).
	SaveLex(key string, e *LexEntry)
	// LoadEntries returns every persisted Level-2 entry recorded under key.
	LoadEntries(key string) []*Entry
	// SaveEntry persists one portable Level-2 entry (best-effort).
	SaveEntry(key string, e *Entry)
}

// Snapshot is a point-in-time copy of the cache's counters.
type Snapshot struct {
	LexHits, LexMisses       int64
	HeaderHits, HeaderMisses int64
	BytesSaved               int64 // source bytes not re-preprocessed thanks to Level-2 hits
	Evictions                int64 // entries dropped by either level's LRU bound
	LexEntries               int64 // current Level-1 population
	HeaderEntries            int64 // current Level-2 population
}

// Sub returns s - o, for delta reporting across a run.
func (s Snapshot) Sub(o Snapshot) Snapshot {
	return Snapshot{
		LexHits:       s.LexHits - o.LexHits,
		LexMisses:     s.LexMisses - o.LexMisses,
		HeaderHits:    s.HeaderHits - o.HeaderHits,
		HeaderMisses:  s.HeaderMisses - o.HeaderMisses,
		BytesSaved:    s.BytesSaved - o.BytesSaved,
		Evictions:     s.Evictions - o.Evictions,
		LexEntries:    s.LexEntries,
		HeaderEntries: s.HeaderEntries,
	}
}

// Options bounds a Cache.
type Options struct {
	MaxLexEntries    int // Level-1 bound; 0 means DefaultMaxLexEntries
	MaxHeaderEntries int // Level-2 bound; 0 means DefaultMaxHeaderEntries
	// Backing, when non-nil, is the durable layer beneath the in-memory
	// cache: lookups that miss in memory consult it, and stores write
	// through to it (Level-2 only for portable entries). In-memory eviction
	// never touches the backing store; its own size bound governs it.
	Backing Backing
}

// Default capacity bounds. Sized for corpora of a few thousand headers; at
// ~one entry per (header, macro-state) pair the memory cost is roughly the
// corpus's token streams once over.
const (
	DefaultMaxLexEntries    = 8192
	DefaultMaxHeaderEntries = 8192
)

// Cache is a concurrency-safe two-level header cache shared by every worker
// of a harness run (and across runs of the same process).
type Cache struct {
	canon   *Canon
	backing Backing

	mu        sync.Mutex
	lex       map[string]*lexSlot
	lexLRU    *list.List // of *lexSlot, front = most recent
	hdr       map[string][]*Entry
	hdrLRU    *list.List      // of *Entry, front = most recent
	consulted map[string]bool // Level-2 keys already loaded from the backing
	maxLex    int
	maxHdr    int
	lexHits, lexMisses, hdrHits, hdrMisses,
	bytesSaved, evictions stats.Counter
}

type lexSlot struct {
	key   string
	entry *LexEntry
	elem  *list.Element
}

// New returns an empty cache.
func New(opts Options) *Cache {
	if opts.MaxLexEntries <= 0 {
		opts.MaxLexEntries = DefaultMaxLexEntries
	}
	if opts.MaxHeaderEntries <= 0 {
		opts.MaxHeaderEntries = DefaultMaxHeaderEntries
	}
	return &Cache{
		canon:     NewCanon(),
		backing:   opts.Backing,
		lex:       make(map[string]*lexSlot),
		lexLRU:    list.New(),
		hdr:       make(map[string][]*Entry),
		hdrLRU:    list.New(),
		consulted: make(map[string]bool),
		maxLex:    opts.MaxLexEntries,
		maxHdr:    opts.MaxHeaderEntries,
	}
}

// Canon exposes the cache's shared fingerprint canonicalizer.
func (c *Cache) Canon() *Canon { return c.canon }

// LookupLex returns the Level-1 entry for a content hash. An in-memory miss
// consults the backing store, installing what it finds.
func (c *Cache) LookupLex(hash string) (*LexEntry, bool) {
	c.mu.Lock()
	slot, ok := c.lex[hash]
	if ok {
		c.lexLRU.MoveToFront(slot.elem)
		c.mu.Unlock()
		c.lexHits.Inc()
		return slot.entry, true
	}
	c.mu.Unlock()
	if c.backing != nil {
		if e, ok := c.backing.LoadLex(hash); ok {
			c.installLex(hash, e)
			c.lexHits.Inc()
			return e, true
		}
	}
	c.lexMisses.Inc()
	return nil, false
}

// StoreLex records a Level-1 entry, evicting the least recently used entry
// when over capacity, and writes through to the backing store.
func (c *Cache) StoreLex(hash string, e *LexEntry) {
	if c.installLex(hash, e) && c.backing != nil {
		c.backing.SaveLex(hash, e)
	}
}

// installLex adds a Level-1 entry to the in-memory level only, reporting
// whether it was new.
func (c *Cache) installLex(hash string, e *LexEntry) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.lex[hash]; ok {
		return false // concurrent producer won the race; results are identical
	}
	slot := &lexSlot{key: hash, entry: e}
	slot.elem = c.lexLRU.PushFront(slot)
	c.lex[hash] = slot
	for c.lexLRU.Len() > c.maxLex {
		old := c.lexLRU.Remove(c.lexLRU.Back()).(*lexSlot)
		delete(c.lex, old.key)
		c.evictions.Inc()
	}
	return true
}

// Lookup scans the Level-2 entries recorded under key (one per distinct
// incoming macro state) and returns the first for which match reports the
// unit's current state compatible — fingerprint equal and dependencies
// still valid. match runs outside the cache lock: it reads the caller's
// macro table and file system, which must not serialize the worker pool.
func (c *Cache) Lookup(key string, match func(*Entry) bool) (*Entry, bool) {
	c.mu.Lock()
	cands := c.hdr[key]
	snapshot := make([]*Entry, len(cands))
	copy(snapshot, cands)
	c.mu.Unlock()

	if e, ok := c.matchOne(snapshot, match); ok {
		return e, true
	}
	// In-memory miss: consult the backing store once per key per process
	// (write-through keeps the in-memory level a superset afterwards).
	if loaded := c.consultBacking(key); len(loaded) > 0 {
		if e, ok := c.matchOne(loaded, match); ok {
			return e, true
		}
	}
	c.hdrMisses.Inc()
	return nil, false
}

// matchOne runs match over candidates (outside the lock) and books the hit.
func (c *Cache) matchOne(cands []*Entry, match func(*Entry) bool) (*Entry, bool) {
	for _, e := range cands {
		if match(e) {
			c.mu.Lock()
			if e.elem != nil { // not evicted while matching
				c.hdrLRU.MoveToFront(e.elem)
			}
			c.mu.Unlock()
			c.hdrHits.Inc()
			c.bytesSaved.Add(int64(e.Bytes))
			return e, true
		}
	}
	return nil, false
}

// consultBacking loads the backing store's Level-2 entries for key on the
// first in-memory miss of that key and installs them. Returns the entries it
// installed (nil when the backing was absent or already consulted).
func (c *Cache) consultBacking(key string) []*Entry {
	if c.backing == nil {
		return nil
	}
	c.mu.Lock()
	done := c.consulted[key]
	c.consulted[key] = true
	c.mu.Unlock()
	if done {
		return nil
	}
	loaded := c.backing.LoadEntries(key)
	for _, e := range loaded {
		c.install(key, e)
	}
	return loaded
}

// Store records a Level-2 entry under key, keeping earlier entries for the
// same key (they memoize the header under different incoming macro states,
// e.g. different include orders). The Level-2 LRU bound evicts at entry
// granularity across all keys. Portable entries write through to the
// backing store.
func (c *Cache) Store(key string, e *Entry) {
	c.install(key, e)
	if c.backing != nil && e.Portable {
		c.backing.SaveEntry(key, e)
	}
}

// install adds a Level-2 entry to the in-memory level only.
func (c *Cache) install(key string, e *Entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e.key = key
	e.elem = c.hdrLRU.PushFront(e)
	c.hdr[key] = append(c.hdr[key], e)
	for c.hdrLRU.Len() > c.maxHdr {
		old := c.hdrLRU.Remove(c.hdrLRU.Back()).(*Entry)
		old.elem = nil
		list := c.hdr[old.key]
		for i, cand := range list {
			if cand == old {
				list = append(list[:i], list[i+1:]...)
				break
			}
		}
		if len(list) == 0 {
			delete(c.hdr, old.key)
		} else {
			c.hdr[old.key] = list
		}
		c.evictions.Inc()
	}
}

// Stats returns a snapshot of the cache's counters.
func (c *Cache) Stats() Snapshot {
	c.mu.Lock()
	lexN, hdrN := int64(c.lexLRU.Len()), int64(c.hdrLRU.Len())
	c.mu.Unlock()
	return Snapshot{
		LexHits:       c.lexHits.Load(),
		LexMisses:     c.lexMisses.Load(),
		HeaderHits:    c.hdrHits.Load(),
		HeaderMisses:  c.hdrMisses.Load(),
		BytesSaved:    c.bytesSaved.Load(),
		Evictions:     c.evictions.Load(),
		LexEntries:    lexN,
		HeaderEntries: hdrN,
	}
}

// Canon canonicalizes presence conditions across unit spaces. Each unit
// builds its BDD variables in first-use order, so equal boolean functions
// have different node ids in different units; importing their exported
// formulas into one shared, mutex-guarded ModeBDD space assigns every
// function a process-wide canonical id, which is what fingerprint
// signatures embed.
type Canon struct {
	mu sync.Mutex
	s  *cond.Space
}

// NewCanon returns an empty canonicalizer.
func NewCanon() *Canon {
	return &Canon{s: cond.NewSpace(cond.ModeBDD)}
}

// ID returns the canonical id of the boolean function f denotes. Formulas
// denoting equal functions map to equal ids regardless of which space they
// were exported from.
func (c *Canon) ID(f *cond.Formula) string {
	// Constants dominate real fingerprints (macro-table entries under the
	// True condition); resolve them without touching the shared space.
	switch f.Op {
	case cond.FTrue:
		return "1"
	case cond.FFalse:
		return "0"
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	id, _ := c.s.NodeID(c.s.Import(f))
	return strconv.FormatUint(uint64(id), 10)
}
