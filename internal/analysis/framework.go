// Variability-aware analysis framework (modeled on go/analysis): an
// Analyzer is a named pass over one compilation unit's choice AST and
// preprocessor records; the driver supplies a shared fact base, threads
// presence conditions, attaches a SAT-verified witness configuration to
// every diagnostic, and orders the output deterministically so results are
// byte-stable regardless of scheduling.
package analysis

import (
	"fmt"
	"sort"

	"repro/internal/ast"
	"repro/internal/cond"
	"repro/internal/guard"
	"repro/internal/preprocessor"
	"repro/internal/token"
)

// Unit bundles the per-unit inputs an analysis run works on. AST and PP may
// each be nil (a unit that failed to parse still has preprocessor records,
// and a hand-built AST needs no preprocessor output); passes must tolerate
// either absence.
type Unit struct {
	File   string
	Space  *cond.Space
	AST    *ast.Node          // choice AST; nil when the parse produced nothing
	PP     *preprocessor.Unit // preprocessor records; nil for AST-only analysis
	Budget *guard.Budget      // optional resource governor (nil: ungoverned)
}

// Analyzer is one analysis pass.
type Analyzer struct {
	Name string // short lowercase identifier, unique across registered passes
	Doc  string // one-line description
	Run  func(*Pass) error
}

// Pass carries one analyzer's view of a unit plus the shared fact base, and
// collects its diagnostics.
type Pass struct {
	Analyzer *Analyzer
	Unit     *Unit
	Facts    *Index // shared per-unit symbol index (never nil; may be empty)

	diags []Diagnostic
}

// Report adds a diagnostic. The driver fills in the pass name, drops
// diagnostics whose condition is unsatisfiable, and attaches the witness.
func (p *Pass) Report(d Diagnostic) {
	d.Pass = p.Analyzer.Name
	if d.File == "" {
		d.File = p.Unit.File
	}
	p.diags = append(p.diags, d)
}

// Reportf formats a diagnostic at a token position under condition c.
func (p *Pass) Reportf(tok token.Token, c cond.Cond, format string, args ...interface{}) {
	p.Report(Diagnostic{
		File: tok.File,
		Line: tok.Line,
		Col:  tok.Col,
		Cond: c,
		Msg:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one analysis finding: a source position, a message, and the
// presence condition under which the finding holds, plus the witness
// configuration the driver attaches.
type Diagnostic struct {
	Pass string
	File string
	Line int
	Col  int
	Msg  string
	Cond cond.Cond

	// Driver-filled fields.
	CondStr         string          // condition rendered for output
	Witness         map[string]bool // one configuration exhibiting the finding
	WitnessVerified bool            // witness re-checked on the SAT representation
}

// Stats counts what one analysis run did.
type Stats struct {
	PassesRun         int
	Diagnostics       int
	ByPass            map[string]int
	WitnessChecks     int // witnesses extracted and re-verified
	WitnessFailures   int // witnesses the independent check rejected
	InfeasibleDropped int // diagnostics discarded for unsatisfiable conditions
	ErrorRegions      int // opaque _Error regions skipped in the AST
	PassErrors        int // passes that returned an error (skipped, not fatal)
}

// Result is one unit's analysis output: diagnostics in canonical order.
type Result struct {
	File  string
	Diags []Diagnostic
	Stats Stats
	Errs  []error // per-pass errors (the run continues past them)
}

// Run executes the analyzers over the unit. Passes run in name order; the
// output ordering is a pure function of the unit's content, independent of
// scheduling, map iteration, and worker count.
func Run(u *Unit, analyzers []*Analyzer) *Result {
	res := &Result{File: u.File, Stats: Stats{ByPass: make(map[string]int)}}

	facts := NewIndex(u.Space)
	if u.AST != nil {
		facts.AddUnit(u.File, u.AST)
		w := &Walker{Space: u.Space}
		w.Walk(u.AST, u.Space.True(), func(*ast.Node, cond.Cond) bool { return true })
		res.Stats.ErrorRegions = w.SkippedErrors
	}

	sorted := append([]*Analyzer(nil), analyzers...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })

	var diags []Diagnostic
	for _, a := range sorted {
		if !u.Budget.Tick("analysis") {
			break // budget tripped: degrade to the passes already run
		}
		pass := &Pass{Analyzer: a, Unit: u, Facts: facts}
		if err := a.Run(pass); err != nil {
			res.Errs = append(res.Errs, fmt.Errorf("%s: %w", a.Name, err))
			res.Stats.PassErrors++
			continue
		}
		res.Stats.PassesRun++
		diags = append(diags, pass.diags...)
	}

	// Attach witnesses: every surviving diagnostic's condition is
	// satisfiable, with a concrete configuration extracted from the
	// condition representation and re-checked on the independent SAT
	// expression form. Merged subparsers share choice nodes, so a pass
	// walking the AST can sight the same finding once per incoming path;
	// identical diagnostics collapse to one before the witness work.
	type diagKey struct {
		pass, file, msg, cond string
		line, col             int
	}
	seen := make(map[diagKey]bool)
	kept := diags[:0]
	for _, d := range diags {
		d.CondStr = u.Space.String(d.Cond)
		k := diagKey{d.Pass, d.File, d.Msg, d.CondStr, d.Line, d.Col}
		if seen[k] {
			continue
		}
		seen[k] = true
		w, ok := u.Space.SatOne(d.Cond)
		if !ok {
			res.Stats.InfeasibleDropped++
			continue
		}
		d.Witness = w
		d.WitnessVerified = VerifyWitness(u.Space, d.Cond, w)
		res.Stats.WitnessChecks++
		if !d.WitnessVerified {
			res.Stats.WitnessFailures++
		}
		kept = append(kept, d)
		res.Stats.ByPass[d.Pass]++
	}
	res.Stats.Diagnostics = len(kept)
	res.Diags = sortDiags(kept)
	return res
}

// sortDiags orders diagnostics canonically: position, then pass, then
// message, then condition — a total order on the fields that appear in the
// output, so equal inputs render byte-identically.
func sortDiags(diags []Diagnostic) []Diagnostic {
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		switch {
		case a.File != b.File:
			return a.File < b.File
		case a.Line != b.Line:
			return a.Line < b.Line
		case a.Col != b.Col:
			return a.Col < b.Col
		case a.Pass != b.Pass:
			return a.Pass < b.Pass
		case a.Msg != b.Msg:
			return a.Msg < b.Msg
		default:
			return a.CondStr < b.CondStr
		}
	})
	return diags
}

// VerifyWitness re-checks a witness configuration without the condition
// representation that produced it: the condition is exported to a
// space-independent formula, converted to a plain SAT expression, and
// evaluated under the assignment (absent variables are false, matching the
// extractor's don't-care completion).
func VerifyWitness(s *cond.Space, c cond.Cond, assign map[string]bool) bool {
	return s.Export(c).Expr().Eval(assign)
}
