package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/link"
)

func extract(t *testing.T, file, src string) (*link.Facts, *core.Tool) {
	t.Helper()
	tool := core.New(core.Config{})
	res, err := tool.ParseString(file, src)
	if err != nil {
		t.Fatal(err)
	}
	facts := analysis.ExtractLinkFacts(&analysis.Unit{
		File:  file,
		Space: tool.Space(),
		AST:   res.AST,
		PP:    res.Unit,
	})
	return facts, tool
}

func factsOf(f *link.Facts, name string) []link.Fact {
	for _, s := range f.Symbols {
		if s.Name == name {
			return s.Facts
		}
	}
	return nil
}

func kinds(fs []link.Fact) []link.FactKind {
	out := make([]link.FactKind, len(fs))
	for i, f := range fs {
		out[i] = f.Kind
	}
	return out
}

func TestExtractDefinitionKinds(t *testing.T) {
	f, _ := extract(t, "u.c", `
int defined_obj = 1;
int tentative_obj;
extern int declared_obj;
extern int extern_def = 2;
int proto(int a, int b);
int fn(void) { return 0; }
static int internal_obj = 3;
static void internal_fn(void) {}
typedef int my_t;
`)
	cases := map[string]link.FactKind{
		"defined_obj":   link.KindDef,
		"tentative_obj": link.KindTentative,
		"declared_obj":  link.KindDecl,
		"extern_def":    link.KindDef,
		"proto":         link.KindDecl,
		"fn":            link.KindDef,
	}
	for name, want := range cases {
		fs := factsOf(f, name)
		if len(fs) != 1 {
			t.Errorf("%s: facts = %+v, want exactly one", name, fs)
			continue
		}
		if fs[0].Kind != want {
			t.Errorf("%s: kind = %v, want %v", name, fs[0].Kind, want)
		}
	}
	for _, name := range []string{"internal_obj", "internal_fn", "my_t"} {
		if fs := factsOf(f, name); fs != nil {
			t.Errorf("internal name %s leaked facts: %+v", name, fs)
		}
	}
}

func TestExtractSignatures(t *testing.T) {
	f, _ := extract(t, "u.c", `
long counter;
int add(int a, int b);
int *head;
int table[4];
struct pt origin;
`)
	want := map[string]string{
		"counter": "long @",
		"add":     "int @ ( int , int )",
		"head":    "int * @",
		"table":   "int @ [ 4 ]",
		"origin":  "struct pt @",
	}
	for name, sig := range want {
		fs := factsOf(f, name)
		if len(fs) != 1 {
			t.Fatalf("%s: facts = %+v", name, fs)
		}
		if fs[0].Sig != sig {
			t.Errorf("%s: sig = %q, want %q", name, fs[0].Sig, sig)
		}
	}
}

func TestExtractParamNamesElided(t *testing.T) {
	a, _ := extract(t, "a.c", `int add(int first, int second);`)
	b, _ := extract(t, "b.c", `int add(int x, int y) { return x + y; }`)
	fa, fb := factsOf(a, "add"), factsOf(b, "add")
	if len(fa) != 1 || len(fb) != 1 {
		t.Fatalf("facts: %+v / %+v", fa, fb)
	}
	if fa[0].Sig != fb[0].Sig {
		t.Errorf("param names changed the signature: %q vs %q", fa[0].Sig, fb[0].Sig)
	}
}

func TestExtractRefs(t *testing.T) {
	f, tool := extract(t, "u.c", `
extern int other;
static int internal = 1;
enum color { RED, GREEN };
int local_fn(int param) {
  int local = param;
  return other + internal + local + RED + helper();
}
`)
	// other: extern decl plus a ref from the body.
	fs := factsOf(f, "other")
	if len(fs) != 2 || fs[0].Kind != link.KindDecl || fs[1].Kind != link.KindRef {
		t.Fatalf("other: kinds = %v, want [decl ref]", kinds(fs))
	}
	// helper: pure ref, no declaration anywhere in the unit.
	fs = factsOf(f, "helper")
	if len(fs) != 1 || fs[0].Kind != link.KindRef {
		t.Fatalf("helper: %+v", fs)
	}
	// Locals, params, statics, and enumerators never escape.
	for _, name := range []string{"internal", "local", "param", "RED", "GREEN"} {
		for _, fa := range factsOf(f, name) {
			t.Errorf("%s escaped as %v fact", name, fa.Kind)
		}
	}
	_ = tool
}

func TestExtractConditionalFacts(t *testing.T) {
	f, tool := extract(t, "u.c", `
#ifdef CONFIG_WORK
int work(void) { return 0; }
#endif
int use(void) { return work(); }
`)
	s := tool.Space()
	im := s.NewImporter()
	fs := factsOf(f, "work")
	if len(fs) != 2 {
		t.Fatalf("work: %+v", fs)
	}
	def, ref := fs[0], fs[1]
	if def.Kind != link.KindDef || ref.Kind != link.KindRef {
		t.Fatalf("kinds = %v, want [def ref]", kinds(fs))
	}
	w := s.Var("(defined CONFIG_WORK)")
	if !s.Equal(im.Import(def.Cond), w) {
		t.Errorf("def cond = %s, want (defined CONFIG_WORK)", def.Cond)
	}
	if !s.IsTrue(im.Import(ref.Cond)) {
		t.Errorf("ref cond = %s, want 1", ref.Cond)
	}
}

func TestExtractConditionalStatic(t *testing.T) {
	// static only under A: the symbol is external (and tentative) under !A.
	f, tool := extract(t, "u.c", `
#ifdef A
static
#endif
int maybe_static;
`)
	s := tool.Space()
	fs := factsOf(f, "maybe_static")
	if len(fs) != 1 || fs[0].Kind != link.KindTentative {
		t.Fatalf("maybe_static: %+v", fs)
	}
	got := s.NewImporter().Import(fs[0].Cond)
	if !s.Equal(got, s.Not(s.Var("(defined A)"))) {
		t.Errorf("cond = %s, want !(defined A)", fs[0].Sig)
	}
}

func TestExtractConditionalType(t *testing.T) {
	f, _ := extract(t, "u.c", `
#ifdef WIDE
long
#else
int
#endif
size_value;
`)
	fs := factsOf(f, "size_value")
	if len(fs) != 2 {
		t.Fatalf("size_value: %+v", fs)
	}
	sigs := map[string]bool{}
	for _, fa := range fs {
		sigs[fa.Sig] = true
	}
	if !sigs["long @"] || !sigs["int @"] {
		t.Errorf("sigs = %v, want both variants", sigs)
	}
}

func TestExtractFunctionPointerIsObject(t *testing.T) {
	f, _ := extract(t, "u.c", `int (*handler)(int);`)
	fs := factsOf(f, "handler")
	if len(fs) != 1 || fs[0].Kind != link.KindTentative {
		t.Fatalf("function pointer should be a tentative object: %+v", fs)
	}
}

func TestExtractFileScopeInitializerRefs(t *testing.T) {
	f, _ := extract(t, "u.c", `int *p = &target;`)
	fs := factsOf(f, "target")
	if len(fs) != 1 || fs[0].Kind != link.KindRef {
		t.Fatalf("target: %+v", fs)
	}
}

func TestExtractEmptyUnit(t *testing.T) {
	facts := analysis.ExtractLinkFacts(&analysis.Unit{File: "e.c", Space: core.New(core.Config{}).Space()})
	if facts == nil || len(facts.Symbols) != 0 {
		t.Fatalf("facts = %+v", facts)
	}
}

// End-to-end: extract two units and link them; all three families appear
// with verified witnesses.
func TestExtractAndLink(t *testing.T) {
	a, _ := extract(t, "a.c", `
extern int size;
int use(void) { return helper() + size; }
int init(void) { return 0; }
`)
	b, _ := extract(t, "b.c", `
#ifdef BIG
long size = 1;
#else
int size = 1;
#endif
#ifdef DUP
int init(void) { return 1; }
#endif
#ifdef HAVE_HELPER
int helper(void) { return 2; }
#endif
`)
	r := link.Link([]*link.Facts{a, b}, nil)
	got := map[string]int{}
	for _, f := range r.Findings {
		got[f.Family+"/"+f.Symbol]++
		if !f.WitnessVerified {
			t.Errorf("unverified witness: %+v", f)
		}
	}
	if got["undef-ref/helper"] == 0 {
		t.Errorf("missing undef-ref for helper: %v", got)
	}
	if got["multidef/init"] == 0 {
		t.Errorf("missing multidef for init: %v", got)
	}
	if got["type-mismatch/size"] == 0 {
		t.Errorf("missing type-mismatch for size: %v", got)
	}
	if got["undef-ref/size"] != 0 {
		t.Errorf("size is always defined; findings: %v", got)
	}
}
