package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/link"
)

// projUnit is one parsed unit kept around for single-configuration
// projection.
type projUnit struct {
	file string
	tool *core.Tool
	res  *core.Result
}

func parseUnit(t *testing.T, file, src string) projUnit {
	t.Helper()
	tool := core.New(core.Config{})
	res, err := tool.ParseString(file, src)
	if err != nil {
		t.Fatal(err)
	}
	return projUnit{file: file, tool: tool, res: res}
}

// singleConfigDefects projects every unit to one concrete configuration
// (variables absent from assign are false), re-extracts link facts from the
// choice-free trees, and applies the classic one-configuration linker rules.
// The result maps "family/symbol" to presence — the oracle a traditional
// build-one-config toolchain would report.
func singleConfigDefects(units []projUnit, assign map[string]bool) map[string]bool {
	type info struct {
		defs     int
		provided bool
		refs     bool
		sigs     map[string]bool
	}
	syms := map[string]*info{}
	for _, u := range units {
		proj := u.tool.Project(u.res, assign)
		f := analysis.ExtractLinkFacts(&analysis.Unit{
			File:  u.file,
			Space: u.tool.Space(),
			AST:   proj,
		})
		for _, s := range f.Symbols {
			in := syms[s.Name]
			if in == nil {
				in = &info{sigs: map[string]bool{}}
				syms[s.Name] = in
			}
			for _, fa := range s.Facts {
				switch fa.Kind {
				case link.KindDef:
					in.defs++
					in.provided = true
				case link.KindTentative:
					in.provided = true
				case link.KindRef:
					in.refs = true
				}
				if fa.Sig != "" && fa.Kind != link.KindRef {
					in.sigs[fa.Sig] = true
				}
			}
		}
	}
	out := map[string]bool{}
	for name, in := range syms {
		if in.refs && !in.provided {
			out["undef-ref/"+name] = true
		}
		if in.defs > 1 {
			out["multidef/"+name] = true
		}
		if len(in.sigs) > 1 {
			out["type-mismatch/"+name] = true
		}
	}
	return out
}

// TestLinkFindingsProjectToSingleConfig is the differential acceptance test
// for the variability-aware linker: every finding's witness configuration,
// projected down to a single-configuration corpus, must reproduce the defect
// under the classic one-config rules — and a sampled configuration outside
// the finding's condition must not reproduce it.
func TestLinkFindingsProjectToSingleConfig(t *testing.T) {
	units := []projUnit{
		parseUnit(t, "a.c", `
extern int size;
int use(void) { return helper() + size; }
int init(void) { return 0; }
`),
		parseUnit(t, "b.c", `
#ifdef BIG
long size = 1;
#else
int size = 1;
#endif
#ifdef DUP
int init(void) { return 1; }
#endif
#ifdef HAVE_HELPER
int helper(void) { return 2; }
#endif
`),
	}
	facts := make([]*link.Facts, len(units))
	for i, u := range units {
		facts[i] = analysis.ExtractLinkFacts(&analysis.Unit{
			File:  u.file,
			Space: u.tool.Space(),
			AST:   u.res.AST,
			PP:    u.res.Unit,
		})
	}
	r := link.Link(facts, nil)
	if len(r.Findings) == 0 {
		t.Fatal("fixture produced no findings")
	}
	for _, f := range r.Findings {
		key := f.Family + "/" + f.Symbol
		if !f.WitnessVerified {
			t.Errorf("%s: witness failed independent verification", key)
		}
		if got := singleConfigDefects(units, f.Witness); !got[key] {
			t.Errorf("%s: witness %v does not reproduce the defect under projection (saw %v)",
				key, f.Witness, got)
		}
		// Sample a configuration outside the finding's condition; the defect
		// must vanish there. A finding true in every configuration has no
		// clean side to sample.
		clean, ok := r.Space.SatOne(r.Space.Not(f.Cond))
		if !ok {
			continue
		}
		if got := singleConfigDefects(units, clean); got[key] {
			t.Errorf("%s: clean configuration %v still reproduces the defect", key, clean)
		}
	}
}
