package analysis

// This file is the per-unit extraction stage feeding the whole-corpus
// variability-aware linker (internal/link). It walks the unit's choice AST
// and emits, per external symbol, presence-conditioned link facts:
// definitions, tentative definitions, extern declarations and prototypes,
// and references that resolve outside the unit's internal names. Conditions
// leave the unit's space as space-independent formulas (one exporter per
// unit, so the DAG sharing survives), and the linker composes them across
// units through hcache.Canon ids.
//
// The unit-internal name set — static objects and functions, typedefs, and
// file-scope enumerators — is collected first into a symtab.Table scope, so
// references subtract it: a use of a static never becomes a cross-unit
// fact. Type signatures are canonical strings built from the declaration's
// specifier words and declarator shape (declared name replaced by "@",
// parameter names elided, storage classes dropped, braced struct/enum
// bodies collapsed to their tag), so two units spelling the same type
// compare equal byte-wise; conditional declaration fragments fork the
// signature into per-condition variants.

import (
	"sort"

	"repro/internal/ast"
	"repro/internal/cgrammar"
	"repro/internal/cond"
	"repro/internal/link"
	"repro/internal/symtab"
	"repro/internal/token"
)

// maxSigVariants caps the per-declaration signature fork: a declaration
// split by many conditionals crosses its fragments multiplicatively, and
// past this point extra variants are dropped deterministically (first
// variants in choice order win) rather than risking a blowup.
const maxSigVariants = 8

// ExtractLinkFacts walks the unit's choice AST and returns its conditional
// link facts in canonical order, with conditions exported from the unit's
// space. Units with no AST yield an empty, non-nil fact set.
func ExtractLinkFacts(u *Unit) *link.Facts {
	x := &extractor{
		unit:     u,
		space:    u.Space,
		internal: symtab.New(u.Space),
		facts:    make(map[factKey]*factAcc),
		refs:     make(map[refKey]*refAcc),
	}
	if u.AST != nil {
		// Pass A: the unit-internal name set, needed before any reference
		// can be classified (a static defined after its use is still
		// internal — C file scope is flat for linkage purposes).
		x.collecting = true
		x.top(u.AST, x.space.True())
		// Pass B: fact emission and reference collection.
		x.collecting = false
		x.top(u.AST, x.space.True())
	}
	return x.finish()
}

type factKey struct {
	name      string
	kind      link.FactKind
	file      string
	line, col int
	sig       string
}

type factAcc struct{ c cond.Cond }

type refKey struct {
	name      string
	line, col int
}

type refAcc struct {
	file string
	c    cond.Cond
}

type extractor struct {
	unit       *Unit
	space      *cond.Space
	collecting bool          // pass A: only populate the internal table
	internal   *symtab.Table // statics, typedefs, file-scope enumerators
	facts      map[factKey]*factAcc
	refs       map[refKey]*refAcc
}

// top iterates external declarations, conjoining hoisted choice conditions.
func (x *extractor) top(n *ast.Node, c cond.Cond) {
	if n == nil || x.space.IsFalse(c) || n.IsError() {
		return
	}
	switch n.Kind {
	case ast.KindToken:
		return
	case ast.KindChoice:
		for _, alt := range n.Alts {
			x.top(alt.Node, x.space.And(c, alt.Cond))
		}
		return
	}
	switch n.Label {
	case "FunctionDefinition":
		x.functionDefinition(n, c)
		return
	case "Declaration":
		x.declaration(n, c)
		return
	}
	for _, ch := range n.Children {
		x.top(ch, c)
	}
}

// declaration handles one file-scope declaration: internal names in pass A,
// facts plus initializer references in pass B.
func (x *extractor) declaration(n *ast.Node, c cond.Cond) {
	if len(n.Children) < 2 {
		return
	}
	specs := n.Children[1-1]
	specVars := x.sigVariants(specs, false)
	if x.collecting {
		// File-scope enumerators are constants with no linkage; register
		// every Enumerator in the declaration (specifier side included).
		x.collectEnumerators(n, c)
		for _, sv := range specVars {
			if !sv.isTypedef && !sv.isStatic {
				continue
			}
			vc := x.space.And(c, sv.c)
			x.eachDeclRoot(n.Children[1], vc, func(root *ast.Node, rc cond.Cond) {
				for _, site := range x.declSites(root, rc, false) {
					if sv.isTypedef {
						x.internal.DefineTypedef(site.name, site.c)
					} else {
						x.internal.DefineObject(site.name, site.c)
					}
				}
			})
		}
		return
	}
	x.eachDeclRoot(n.Children[1], c, func(root *ast.Node, rc cond.Cond) {
		sites := x.declSites(root, rc, false)
		declVars := x.sigVariants(root, false)
		for _, sv := range specVars {
			if sv.isTypedef || sv.isStatic {
				continue // internal; pass A recorded it
			}
			for _, site := range sites {
				base := x.space.And(site.c, sv.c)
				if x.space.IsFalse(base) {
					continue
				}
				kind := link.KindTentative
				switch {
				case site.hasInit:
					kind = link.KindDef // extern int x = 1 still defines
				case sv.isExtern || site.isFunc:
					kind = link.KindDecl
				}
				for _, dv := range declVars {
					fc := x.space.And(base, dv.c)
					if x.space.IsFalse(fc) {
						continue
					}
					x.fact(site, kind, joinSig(sv.words, dv.words), fc)
				}
			}
		}
		// Initializer expressions at file scope reference other symbols
		// (int *p = &other_unit_obj;).
		if w := x.refWalker(); root.Label == "InitializedDeclarator" && len(root.Children) > 1 {
			for _, init := range root.Children[1:] {
				w.walk(init, rc, true)
			}
		}
	})
}

// functionDefinition emits the definition fact (unless static) and walks
// the body for references.
func (x *extractor) functionDefinition(n *ast.Node, c cond.Cond) {
	if len(n.Children) == 0 {
		return
	}
	specs, decl := x.splitFuncDef(n)
	specVars := x.sigVariants(specs, false)
	sites := x.declSites(decl, c, false)
	if x.collecting {
		x.collectEnumerators(n, c)
		for _, sv := range specVars {
			if !sv.isStatic {
				continue
			}
			for _, site := range sites {
				x.internal.DefineObject(site.name, x.space.And(site.c, sv.c))
			}
		}
		return
	}
	declVars := x.sigVariants(decl, false)
	for _, sv := range specVars {
		if sv.isStatic || sv.isTypedef {
			continue
		}
		for _, site := range sites {
			base := x.space.And(site.c, sv.c)
			if x.space.IsFalse(base) {
				continue
			}
			for _, dv := range declVars {
				fc := x.space.And(base, dv.c)
				if x.space.IsFalse(fc) {
					continue
				}
				x.fact(site, link.KindDef, joinSig(sv.words, dv.words), fc)
			}
		}
	}
	// References: parameters open a scope wrapping the body; the walker's
	// table holds only function-local names, so anything that escapes it
	// (and the internal set) is a cross-unit reference.
	w := x.refWalker()
	w.table.EnterScope()
	w.defineParams(decl, c)
	for _, ch := range n.Children {
		if ch != nil && ch.Label == "CompoundStatement" {
			w.walk(ch, c, false)
		}
	}
	w.table.ExitScope()
}

// splitFuncDef separates a FunctionDefinition's specifier child from its
// declarator child (either may be missing or a choice).
func (x *extractor) splitFuncDef(n *ast.Node) (specs, decl *ast.Node) {
	for _, ch := range n.Children {
		if ch == nil || ch.Label == "CompoundStatement" {
			continue
		}
		if ch.Label == "DeclarationSpecifiers" && specs == nil && decl == nil {
			specs = ch
			continue
		}
		if decl == nil {
			decl = ch
		}
	}
	return specs, decl
}

// collectEnumerators registers every Enumerator name in the subtree as a
// unit-internal constant under its path condition.
func (x *extractor) collectEnumerators(n *ast.Node, c cond.Cond) {
	if n == nil || x.space.IsFalse(c) || n.IsError() {
		return
	}
	if n.Kind == ast.KindChoice {
		for _, alt := range n.Alts {
			x.collectEnumerators(alt.Node, x.space.And(c, alt.Cond))
		}
		return
	}
	if n.Label == "Enumerator" && len(n.Children) > 0 && n.Children[0].Kind == ast.KindToken {
		x.internal.DefineObject(n.Children[0].Text(), c)
	}
	for _, ch := range n.Children {
		x.collectEnumerators(ch, c)
	}
}

// declaratorLabels are the node labels that root one declarator.
var declaratorLabels = map[string]bool{
	"IdentifierDeclarator":  true,
	"PointerDeclarator":     true,
	"ArrayDeclarator":       true,
	"FunctionDeclarator":    true,
	"ParenDeclarator":       true,
	"InitializedDeclarator": true,
	"AttributedDeclarator":  true,
}

// eachDeclRoot finds the individual declarator roots under a declaration's
// declarator part (a single declarator, a comma list, or choices thereof),
// invoking fn with each root and its path condition.
func (x *extractor) eachDeclRoot(n *ast.Node, c cond.Cond, fn func(*ast.Node, cond.Cond)) {
	if n == nil || x.space.IsFalse(c) || n.IsError() {
		return
	}
	switch n.Kind {
	case ast.KindToken:
		return
	case ast.KindChoice:
		for _, alt := range n.Alts {
			x.eachDeclRoot(alt.Node, x.space.And(c, alt.Cond), fn)
		}
		return
	}
	if declaratorLabels[n.Label] {
		fn(n, c)
		return
	}
	for _, ch := range n.Children {
		x.eachDeclRoot(ch, c, fn)
	}
}

// declSite is one declared name within a declarator, with the condition
// under which that spelling exists and the shape classification the fact
// kind depends on.
type declSite struct {
	name      string
	file      string // token's source file ("" falls back to the unit path)
	line, col int
	c         cond.Cond
	isFunc    bool // the name declares a function (not a function pointer)
	hasInit   bool
}

// declSites digs the declarator spine for declared names. inFunc tracks
// whether the innermost wrapper crossed so far is a FunctionDeclarator:
// FunctionDeclarator(Identifier) declares a function, while
// Pointer(FunctionDeclarator(...)) keeps declaring a function (pointer
// result type) and FunctionDeclarator(Paren(Pointer(Identifier))) declares
// a function pointer — an object.
func (x *extractor) declSites(n *ast.Node, c cond.Cond, inFunc bool) []declSite {
	if n == nil || x.space.IsFalse(c) || n.IsError() {
		return nil
	}
	switch n.Kind {
	case ast.KindToken:
		return nil
	case ast.KindChoice:
		var out []declSite
		for _, alt := range n.Alts {
			out = append(out, x.declSites(alt.Node, x.space.And(c, alt.Cond), inFunc)...)
		}
		return out
	}
	switch n.Label {
	case "IdentifierDeclarator":
		if len(n.Children) == 1 && n.Children[0].Kind == ast.KindToken {
			t := n.Children[0].Tok
			return []declSite{{name: t.Text, file: t.File, line: t.Line, col: t.Col, c: c, isFunc: inFunc}}
		}
		return nil
	case "InitializedDeclarator":
		if len(n.Children) == 0 {
			return nil
		}
		sites := x.declSites(n.Children[0], c, inFunc)
		for i := range sites {
			sites[i].hasInit = true
		}
		return sites
	case "FunctionDeclarator":
		if len(n.Children) == 0 {
			return nil
		}
		return x.declSites(n.Children[0], c, true)
	case "ArrayDeclarator":
		if len(n.Children) == 0 {
			return nil
		}
		return x.declSites(n.Children[0], c, false)
	case "PointerDeclarator":
		var out []declSite
		for _, ch := range n.Children {
			if ch != nil && ch.Label != "Pointer" {
				out = append(out, x.declSites(ch, c, false)...)
			}
		}
		return out
	}
	// ParenDeclarator, AttributedDeclarator, and defensive defaults pass the
	// classification through.
	var out []declSite
	for _, ch := range n.Children {
		out = append(out, x.declSites(ch, c, inFunc)...)
	}
	return out
}

// sigVar is one signature fragment variant: the canonical words and the
// condition (relative to the fragment's root) selecting them.
type sigVar struct {
	words     []string
	c         cond.Cond
	isTypedef bool
	isExtern  bool
	isStatic  bool
}

// droppedSpecWords are specifier tokens that never affect link-time type
// identity: storage classes (flagged separately) and function specifiers.
var droppedSpecWords = map[string]string{
	"typedef": "t", "extern": "e", "static": "s",
	"auto": "", "register": "", "inline": "", "_Noreturn": "",
	"_Thread_local": "", "__inline": "", "__inline__": "", "__forceinline": "",
}

// sigVariants builds the canonical signature-word variants of a specifier
// or declarator subtree. Choices fork variants (conditions conjoined down
// the path); sequential children cross-multiply, capped at maxSigVariants
// with deterministic drop order. inParam elides parameter names.
func (x *extractor) sigVariants(n *ast.Node, inParam bool) []sigVar {
	unit := []sigVar{{c: x.space.True()}}
	if n == nil {
		return unit
	}
	if n.IsError() {
		return unit
	}
	switch n.Kind {
	case ast.KindToken:
		t := n.Tok.Text
		if flag, dropped := droppedSpecWords[t]; dropped {
			v := sigVar{c: x.space.True()}
			switch flag {
			case "t":
				v.isTypedef = true
			case "e":
				v.isExtern = true
			case "s":
				v.isStatic = true
			}
			return []sigVar{v}
		}
		return []sigVar{{words: []string{t}, c: x.space.True()}}
	case ast.KindChoice:
		var out []sigVar
		for _, alt := range n.Alts {
			ac := alt.Cond
			for _, v := range x.sigVariants(alt.Node, inParam) {
				vc := x.space.And(ac, v.c)
				if x.space.IsFalse(vc) {
					continue
				}
				v.c = vc
				out = append(out, v)
				if len(out) >= maxSigVariants {
					return out
				}
			}
		}
		if len(out) == 0 {
			return unit
		}
		return out
	}
	switch n.Label {
	case "IdentifierDeclarator":
		if inParam {
			return unit // parameter names never affect the type
		}
		return []sigVar{{words: []string{"@"}, c: x.space.True()}}
	case "InitializedDeclarator":
		if len(n.Children) == 0 {
			return unit
		}
		return x.sigVariants(n.Children[0], inParam) // "=" and initializer excluded
	case "ParameterDeclaration":
		return x.crossChildren(n.Children, true)
	case "StructSpecifier", "StructRef", "EnumSpecifier", "EnumRef":
		return []sigVar{{words: collapseTagged(n), c: x.space.True()}}
	}
	return x.crossChildren(n.Children, inParam)
}

// crossChildren multiplies the children's variants left to right.
func (x *extractor) crossChildren(children []*ast.Node, inParam bool) []sigVar {
	out := []sigVar{{c: x.space.True()}}
	for _, ch := range children {
		if ch == nil {
			continue
		}
		next := out[:0:0]
		for _, a := range out {
			for _, b := range x.sigVariants(ch, inParam) {
				c := x.space.And(a.c, b.c)
				if x.space.IsFalse(c) {
					continue
				}
				words := a.words
				if len(b.words) > 0 {
					words = append(append([]string(nil), a.words...), b.words...)
				}
				next = append(next, sigVar{
					words:     words,
					c:         c,
					isTypedef: a.isTypedef || b.isTypedef,
					isExtern:  a.isExtern || b.isExtern,
					isStatic:  a.isStatic || b.isStatic,
				})
				if len(next) >= maxSigVariants {
					break
				}
			}
			if len(next) >= maxSigVariants {
				break
			}
		}
		if len(next) > 0 {
			out = next
		}
	}
	return out
}

// collapseTagged renders a struct/union/enum specifier as its keyword plus
// tag, ignoring a braced body: link-time type identity for aggregates is
// nominal, and two units each defining "struct pt {...}" agree exactly when
// the tags agree.
func collapseTagged(n *ast.Node) []string {
	var words []string
	for _, ch := range n.Children {
		if ch == nil || ch.Kind != ast.KindToken {
			continue
		}
		t := ch.Tok.Text
		if t == "{" {
			break
		}
		words = append(words, t)
	}
	if len(words) == 1 {
		words = append(words, "<anon>")
	}
	return words
}

func joinSig(spec, decl []string) string {
	n := len(spec) + len(decl)
	if n == 0 {
		return ""
	}
	out := make([]byte, 0, n*8)
	for _, w := range spec {
		if len(out) > 0 {
			out = append(out, ' ')
		}
		out = append(out, w...)
	}
	for _, w := range decl {
		if len(out) > 0 {
			out = append(out, ' ')
		}
		out = append(out, w...)
	}
	return string(out)
}

// fact records one def/decl/tentative sighting, merging repeats (choice
// alternatives landing on the same site and signature) by disjunction.
func (x *extractor) fact(site declSite, kind link.FactKind, sig string, c cond.Cond) {
	if site.name == "" || x.space.IsFalse(c) {
		return
	}
	file := site.file
	if file == "" {
		file = x.unit.File
	}
	key := factKey{name: site.name, kind: kind, file: file, line: site.line, col: site.col, sig: sig}
	if acc, ok := x.facts[key]; ok {
		acc.c = x.space.Or(acc.c, c)
		return
	}
	x.facts[key] = &factAcc{c: c}
}

// ref records one reference sighting after subtracting local declarations
// and the unit-internal name set.
func (x *extractor) ref(tok token.Token, c cond.Cond) {
	c = x.space.AndNot(c, x.internal.Declared(tok.Text))
	if x.space.IsFalse(c) {
		return
	}
	file := tok.File
	if file == "" {
		file = x.unit.File
	}
	key := refKey{name: tok.Text, line: tok.Line, col: tok.Col}
	if acc, ok := x.refs[key]; ok {
		acc.c = x.space.Or(acc.c, c)
		return
	}
	x.refs[key] = &refAcc{file: file, c: c}
}

// finish merges facts and references into canonical order and exports every
// condition through one exporter, preserving formula sharing.
func (x *extractor) finish() *link.Facts {
	ex := x.space.NewExporter()
	bySym := make(map[string][]link.Fact)
	keys := make([]factKey, 0, len(x.facts))
	for k := range x.facts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		switch {
		case a.name != b.name:
			return a.name < b.name
		case a.kind != b.kind:
			return a.kind < b.kind
		case a.line != b.line:
			return a.line < b.line
		case a.col != b.col:
			return a.col < b.col
		default:
			return a.sig < b.sig
		}
	})
	for _, k := range keys {
		bySym[k.name] = append(bySym[k.name], link.Fact{
			Kind: k.kind, File: k.file, Line: k.line, Col: k.col, Sig: k.sig,
			Cond: ex.Export(x.facts[k].c),
		})
	}
	rkeys := make([]refKey, 0, len(x.refs))
	for k := range x.refs {
		rkeys = append(rkeys, k)
	}
	sort.Slice(rkeys, func(i, j int) bool {
		a, b := rkeys[i], rkeys[j]
		switch {
		case a.name != b.name:
			return a.name < b.name
		case a.line != b.line:
			return a.line < b.line
		default:
			return a.col < b.col
		}
	})
	for _, k := range rkeys {
		bySym[k.name] = append(bySym[k.name], link.Fact{
			Kind: link.KindRef, File: x.refs[k].file, Line: k.line, Col: k.col,
			Cond: ex.Export(x.refs[k].c),
		})
	}
	out := &link.Facts{Unit: x.unit.File}
	for name, facts := range bySym {
		out.Symbols = append(out.Symbols, link.Symbol{Name: name, Facts: facts})
	}
	out.Normalize()
	return out
}

// refWalker returns the body/initializer reference walker sharing the
// extractor's accumulators. Its symbol table holds only function-local
// names: file-scope names deliberately stay out, so a unit referencing its
// own conditional definition still emits the reference and the linker sees
// the gap when no configuration's definition covers it.
func (x *extractor) refWalker() *linkRefWalker {
	return &linkRefWalker{x: x, space: x.space, table: symtab.New(x.space)}
}

// linkRefWalker mirrors the undefuse pass's traversal — scopes, declarator
// registration, and namespace skips proven there — but records escapes as
// link references instead of diagnostics.
type linkRefWalker struct {
	x     *extractor
	space *cond.Space
	table *symtab.Table
}

func (w *linkRefWalker) walk(n *ast.Node, c cond.Cond, inBody bool) {
	if n == nil || w.space.IsFalse(c) || n.IsError() {
		return
	}
	switch n.Kind {
	case ast.KindToken:
		if inBody && n.Tok.Kind == token.Identifier {
			w.use(*n.Tok, c)
		}
		return
	case ast.KindChoice:
		for _, alt := range n.Alts {
			w.walk(alt.Node, w.space.And(c, alt.Cond), inBody)
		}
		return
	}
	switch n.Label {
	case "CompoundStatement":
		w.table.EnterScope()
		for _, ch := range n.Children {
			w.walk(ch, c, true)
		}
		w.table.ExitScope()
		return
	case "Declaration":
		w.declaration(n, c, inBody)
		return
	case "FunctionDefinition":
		w.functionDefinition(n, c)
		return
	case "MemberExpr", "ArrowExpr":
		if len(n.Children) > 0 {
			w.walk(n.Children[0], c, inBody)
		}
		return
	case "LabelStatement":
		if len(n.Children) > 0 {
			w.walk(n.Children[len(n.Children)-1], c, inBody)
		}
		return
	case "GotoStatement", "TypeName", "StructSpecifier", "EnumSpecifier", "FieldDesignator":
		return
	}
	for _, ch := range n.Children {
		w.walk(ch, c, inBody)
	}
}

func (w *linkRefWalker) declaration(n *ast.Node, c cond.Cond, inBody bool) {
	if len(n.Children) < 2 {
		return
	}
	// Block-scope enumerators are local constants, not references.
	w.declareEnumerators(n.Children[0], c)
	isTypedef := HasLeaf(n.Children[0], "typedef")
	w.declare(n.Children[1], c, isTypedef, inBody)
}

func (w *linkRefWalker) declareEnumerators(n *ast.Node, c cond.Cond) {
	if n == nil || w.space.IsFalse(c) || n.IsError() {
		return
	}
	if n.Kind == ast.KindChoice {
		for _, alt := range n.Alts {
			w.declareEnumerators(alt.Node, w.space.And(c, alt.Cond))
		}
		return
	}
	if n.Label == "Enumerator" && len(n.Children) > 0 && n.Children[0].Kind == ast.KindToken {
		w.table.DefineObject(n.Children[0].Text(), c)
	}
	for _, ch := range n.Children {
		w.declareEnumerators(ch, c)
	}
}

func (w *linkRefWalker) declare(n *ast.Node, c cond.Cond, isTypedef, inBody bool) {
	if n == nil || w.space.IsFalse(c) || n.IsError() {
		return
	}
	switch n.Kind {
	case ast.KindToken:
		return
	case ast.KindChoice:
		for _, alt := range n.Alts {
			w.declare(alt.Node, w.space.And(c, alt.Cond), isTypedef, inBody)
		}
		return
	}
	switch n.Label {
	case "IdentifierDeclarator":
		if len(n.Children) == 1 && n.Children[0].Kind == ast.KindToken {
			w.define(n.Children[0].Text(), c, isTypedef)
		}
		return
	case "InitializedDeclarator":
		if len(n.Children) > 0 {
			w.declare(n.Children[0], c, isTypedef, inBody)
			for _, init := range n.Children[1:] {
				if inBody {
					w.walk(init, c, true)
				}
			}
		}
		return
	case "ParameterDeclaration", "StructSpecifier", "EnumSpecifier":
		return
	}
	for _, ch := range n.Children {
		w.declare(ch, c, isTypedef, inBody)
	}
}

func (w *linkRefWalker) functionDefinition(n *ast.Node, c cond.Cond) {
	if name, _, _ := DeclaredNamePos(n); name != "" {
		w.define(name, c, false)
	}
	w.table.EnterScope()
	w.defineParams(n, c)
	for _, ch := range n.Children {
		if ch != nil && ch.Label == "CompoundStatement" {
			w.walk(ch, c, false)
		}
	}
	w.table.ExitScope()
}

func (w *linkRefWalker) defineParams(n *ast.Node, c cond.Cond) {
	if n == nil || w.space.IsFalse(c) || n.IsError() {
		return
	}
	if n.Kind == ast.KindChoice {
		for _, alt := range n.Alts {
			w.defineParams(alt.Node, w.space.And(c, alt.Cond))
		}
		return
	}
	if n.Label == "ParameterDeclaration" {
		// declaredNamePos prunes at ParameterDeclaration nodes (it digs
		// function names, skipping their params), so dig the children.
		for _, ch := range n.Children {
			if name, _, _ := DeclaredNamePos(ch); name != "" {
				w.define(name, c, false)
				break
			}
		}
		return
	}
	if n.Label == "CompoundStatement" {
		return
	}
	for _, ch := range n.Children {
		w.defineParams(ch, c)
	}
}

func (w *linkRefWalker) define(name string, c cond.Cond, isTypedef bool) {
	if name == "" {
		return
	}
	if isTypedef {
		w.table.DefineTypedef(name, c)
	} else {
		w.table.DefineObject(name, c)
	}
}

// use records an identifier sighting, subtracting the locally-declared
// condition; what escapes becomes a link reference (the extractor further
// subtracts the unit-internal names). Keywords lex as identifiers in this
// pipeline (reclassification is a parse-time concern), so they are filtered
// here — unlike undefuse, the linker cannot rely on the "never declared
// anywhere" filter, because never-declared names are exactly the undef-ref
// candidates.
func (w *linkRefWalker) use(tok token.Token, c cond.Cond) {
	if cgrammar.IsKeyword(tok.Text) {
		return
	}
	escaped := w.space.AndNot(c, w.table.Declared(tok.Text))
	if w.space.IsFalse(escaped) {
		return
	}
	w.x.ref(tok, escaped)
}

// LinkDiagnostic converts a corpus-level linker finding into a framework
// diagnostic, so the linker's output renders through the same text, JSON,
// and SARIF writers as per-unit passes.
func LinkDiagnostic(f link.Finding) Diagnostic {
	return Diagnostic{
		Pass:            f.Pass(),
		File:            f.File,
		Line:            f.Line,
		Col:             f.Col,
		Msg:             f.Message(),
		CondStr:         f.CondStr,
		Witness:         f.Witness,
		WitnessVerified: f.WitnessVerified,
	}
}

// SortDiags sorts diagnostics into the framework's total output order —
// exported for callers that merge diagnostics from several producers
// (per-unit passes plus linker findings).
func SortDiags(diags []Diagnostic) []Diagnostic { return sortDiags(diags) }
