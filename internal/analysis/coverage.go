package analysis

import (
	"repro/internal/cond"
	"repro/internal/preprocessor"
)

// BlockCoverage counts the conditional code blocks of a preprocessed unit
// that a single configuration enables. The paper's introduction motivates
// configuration-preserving analysis with exactly this number: Linux
// allyesconfig enables less than 80% of the code blocks contained in
// conditionals (citing Tartler et al.), so any single-configuration tool is
// blind to the rest.
//
// A "block" is one branch of one static conditional in the token forest
// (nested conditionals count their branches separately, matching the
// coverage literature).
func BlockCoverage(s *cond.Space, segs []preprocessor.Segment, assign map[string]bool) (enabled, total int) {
	var walk func(segs []preprocessor.Segment, live bool)
	walk = func(segs []preprocessor.Segment, live bool) {
		for _, sg := range segs {
			if sg.IsToken() {
				continue
			}
			for _, br := range sg.Cond.Branches {
				total++
				branchLive := live && s.Eval(br.Cond, assign)
				if branchLive {
					enabled++
				}
				walk(br.Segs, branchLive)
			}
		}
	}
	walk(segs, true)
	return enabled, total
}

// AllYes returns the configuration that defines every CONFIG_* style
// variable the space has seen — the analogue of Linux allyesconfig. vars
// lists the presence-condition variable names to enable (typically
// "(defined CONFIG_X)" forms collected by the caller).
func AllYes(vars []string) map[string]bool {
	m := make(map[string]bool, len(vars))
	for _, v := range vars {
		m[v] = true
	}
	return m
}
