package analysis

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/cond"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/preprocessor"
)

func buildIndex(t *testing.T, src string) (*Index, *core.Tool) {
	t.Helper()
	tool := core.New(core.Config{FS: preprocessor.MapFS{"main.c": src}})
	res, err := tool.ParseFile("main.c")
	if err != nil {
		t.Fatal(err)
	}
	if res.AST == nil {
		t.Fatalf("parse failed: %v", res.Parse.Diags)
	}
	ix := NewIndex(tool.Space())
	ix.AddUnit("main.c", res.AST)
	return ix, tool
}

func TestIndexBasics(t *testing.T) {
	ix, _ := buildIndex(t, `
int counter = 0;
typedef unsigned long size_type;
static int helper(int x) { return x + 1; }
extern int tentative_only;
`)
	if got := len(ix.Symbols("counter")); got != 1 {
		t.Errorf("counter: %d", got)
	}
	if sym := ix.Symbols("counter")[0]; sym.Kind != KindVariable {
		t.Errorf("counter kind = %s", sym.Kind)
	}
	if sym := ix.Symbols("size_type"); len(sym) != 1 || sym[0].Kind != KindTypedef {
		t.Errorf("size_type: %+v", sym)
	}
	if sym := ix.Symbols("helper"); len(sym) != 1 || sym[0].Kind != KindFunction {
		t.Errorf("helper: %+v", sym)
	}
	// Tentative (uninitialized, non-typedef) declarations are not indexed
	// as definitions.
	if got := len(ix.Symbols("tentative_only")); got != 0 {
		t.Errorf("tentative declaration indexed: %d", got)
	}
}

func TestConditionalSymbolConditions(t *testing.T) {
	ix, tool := buildIndex(t, `
#ifdef CONFIG_A
int feature(void) { return 1; }
#endif
`)
	syms := ix.Symbols("feature")
	if len(syms) != 1 {
		t.Fatalf("feature: %d", len(syms))
	}
	s := tool.Space()
	if !s.Equal(syms[0].Cond, s.Var("(defined CONFIG_A)")) {
		t.Errorf("cond = %s", s.String(syms[0].Cond))
	}
}

// TestConflictingDefinitions is the headline analysis: two definitions of
// the same function in disjoint branches are fine; overlapping conditions
// are a double definition some configuration will hit.
func TestConflictingDefinitions(t *testing.T) {
	// Disjoint: no conflict.
	ix, _ := buildIndex(t, `
#ifdef CONFIG_A
int handler(void) { return 1; }
#else
int handler(void) { return 2; }
#endif
`)
	if conflicts := ix.ConflictingDefinitions(); len(conflicts) != 0 {
		t.Errorf("disjoint definitions reported as conflict: %+v", conflicts)
	}

	// Overlapping: conflict under A && B.
	ix2, tool := buildIndex(t, `
#ifdef CONFIG_A
int handler(void) { return 1; }
#endif
#ifdef CONFIG_B
int handler(void) { return 2; }
#endif
`)
	conflicts := ix2.ConflictingDefinitions()
	if len(conflicts) != 1 {
		t.Fatalf("conflicts: %+v", conflicts)
	}
	s := tool.Space()
	want := s.And(s.Var("(defined CONFIG_A)"), s.Var("(defined CONFIG_B)"))
	if !s.Equal(conflicts[0].Under, want) {
		t.Errorf("conflict under %s, want %s", s.String(conflicts[0].Under), s.String(want))
	}
}

func TestUnconditionalDoubleDefinition(t *testing.T) {
	ix, tool := buildIndex(t, `
int twice = 1;
int twice = 2;
`)
	conflicts := ix.ConflictingDefinitions()
	if len(conflicts) != 1 {
		t.Fatalf("conflicts: %d", len(conflicts))
	}
	if !tool.Space().IsTrue(conflicts[0].Under) {
		t.Errorf("unconditional conflict should hold everywhere")
	}
}

func TestCoverageReport(t *testing.T) {
	ix, _ := buildIndex(t, `
int always = 1;
#ifdef CONFIG_A
#ifdef CONFIG_B
int rare(void) { return 0; }
#endif
#endif
#ifdef CONFIG_A
int sometimes = 2;
#endif
`)
	cov := ix.CoverageReport()
	if len(cov) != 3 {
		t.Fatalf("coverage entries: %d", len(cov))
	}
	// Sorted least-visible first: rare (1/4), sometimes (1/2), always (1).
	if cov[0].Symbol.Name != "rare" || cov[0].Fraction != 0.25 {
		t.Errorf("least covered: %+v", cov[0])
	}
	if cov[1].Symbol.Name != "sometimes" || cov[1].Fraction != 0.5 {
		t.Errorf("middle: %+v", cov[1])
	}
	if cov[2].Symbol.Name != "always" || cov[2].Fraction != 1 {
		t.Errorf("most covered: %+v", cov[2])
	}
}

func TestMultiUnitIndex(t *testing.T) {
	tool := core.New(core.Config{FS: preprocessor.MapFS{
		"a.c": "#ifdef X\nint shared(void) { return 1; }\n#endif\n",
		"b.c": "#ifndef X\nint shared(void) { return 2; }\n#endif\n",
	}})
	ix := NewIndex(tool.Space())
	for _, f := range []string{"a.c", "b.c"} {
		res, err := tool.ParseFile(f)
		if err != nil || res.AST == nil {
			t.Fatal(err)
		}
		ix.AddUnit(f, res.AST)
	}
	// Defined in both files under complementary conditions: no conflict,
	// and every configuration has exactly one definition.
	if conflicts := ix.ConflictingDefinitions(); len(conflicts) != 0 {
		t.Errorf("complementary cross-file definitions conflict: %+v", conflicts)
	}
	if got := len(ix.Symbols("shared")); got != 2 {
		t.Errorf("shared definitions: %d", got)
	}
}

func TestDeclaredNameSkipsNonSpine(t *testing.T) {
	ix, _ := buildIndex(t, `
struct holder { int inner_member; };
int outer(struct holder *h) { int local; return h->inner_member; }
`)
	if len(ix.Symbols("inner_member")) != 0 {
		t.Error("struct member indexed as top-level symbol")
	}
	if len(ix.Symbols("local")) != 0 {
		t.Error("function-local variable indexed as top-level symbol")
	}
	if len(ix.Symbols("outer")) != 1 {
		t.Error("function definition missing")
	}
	names := strings.Join(ix.Names(), ",")
	if !strings.Contains(names, "outer") {
		t.Errorf("names: %s", names)
	}
}

func TestBlockCoverage(t *testing.T) {
	tool := core.New(core.Config{FS: preprocessor.MapFS{"main.c": `
#ifdef A
int a;
#else
int b;
#endif
#ifdef B
int c;
#ifdef C
int d;
#endif
#endif
`}})
	res, err := tool.ParseFile("main.c")
	if err != nil {
		t.Fatal(err)
	}
	s := tool.Space()
	// Blocks: A-branch, else-branch, B-branch, C-branch = 4.
	enabled, total := BlockCoverage(s, res.Unit.EnsureSegments(), nil)
	if total != 4 {
		t.Fatalf("total blocks = %d, want 4", total)
	}
	if enabled != 1 { // only the else branch
		t.Errorf("no-config enabled = %d, want 1", enabled)
	}
	allYes := AllYes([]string{"(defined A)", "(defined B)", "(defined C)"})
	enabled, _ = BlockCoverage(s, res.Unit.EnsureSegments(), allYes)
	// allyes enables A-branch, B-branch, C-branch but NOT the else branch:
	// 3 of 4 — the single-configuration blindness the paper's intro cites.
	if enabled != 3 {
		t.Errorf("allyes enabled = %d, want 3", enabled)
	}
}

// TestAllYesUnderCoversCorpus reproduces the paper's §1 observation in
// miniature: the all-yes configuration leaves a meaningful fraction of the
// corpus's conditional blocks disabled.
func TestAllYesUnderCoversCorpus(t *testing.T) {
	c := corpus.Generate(corpus.Params{Seed: 4, CFiles: 8, GenHeaders: 8})
	tool := core.New(core.Config{FS: c.FS, IncludePaths: []string{"include", "include/gen", "include/linux"}})
	var vars []string
	for i := 0; i < 32; i++ {
		vars = append(vars, fmt.Sprintf("(defined CONFIG_F%02d)", i))
	}
	for _, extra := range []string{"CONFIG_64BIT", "CONFIG_KERNEL_MODE", "CONFIG_MODULES", "CONFIG_SLUB", "CONFIG_PLAT_B"} {
		vars = append(vars, "(defined "+extra+")")
	}
	allYes := AllYes(vars)
	enabledTotal, blocksTotal := 0, 0
	for _, cf := range c.CFiles {
		res, err := tool.ParseFile(cf)
		if err != nil {
			t.Fatal(err)
		}
		e, b := BlockCoverage(tool.Space(), res.Unit.EnsureSegments(), allYes)
		enabledTotal += e
		blocksTotal += b
	}
	if blocksTotal == 0 {
		t.Fatal("no conditional blocks in corpus")
	}
	frac := float64(enabledTotal) / float64(blocksTotal)
	t.Logf("allyes block coverage: %d/%d = %.0f%%", enabledTotal, blocksTotal, 100*frac)
	if frac >= 1.0 {
		t.Error("allyes should not cover every block (else branches exist)")
	}
	if frac < 0.3 {
		t.Errorf("allyes coverage suspiciously low: %.2f", frac)
	}
}

// TestConflictsInSATMode: the analyses that need only feasibility (not
// model counting) work over the TypeChef-style condition representation
// too.
func TestConflictsInSATMode(t *testing.T) {
	tool := core.New(core.Config{
		FS: preprocessor.MapFS{"main.c": `
#ifdef A
int dup(void) { return 1; }
#endif
#ifdef B
int dup(void) { return 2; }
#endif
`},
		CondMode: cond.ModeSAT,
	})
	res, err := tool.ParseFile("main.c")
	if err != nil || res.AST == nil {
		t.Fatal(err)
	}
	ix := NewIndex(tool.Space())
	ix.AddUnit("main.c", res.AST)
	if got := len(ix.ConflictingDefinitions()); got != 1 {
		t.Errorf("conflicts = %d, want 1", got)
	}
}

func TestIndexLenAndSpace(t *testing.T) {
	ix, tool := buildIndex(t, "int a = 1;\nint b = 2;\n")
	if ix.Len() != 2 {
		t.Errorf("Len = %d", ix.Len())
	}
	if ix.Space() != tool.Space() {
		t.Error("Space accessor mismatch")
	}
	if got := len(ix.Names()); got != 2 {
		t.Errorf("Names = %d", got)
	}
}

// TestCorpusHasNoConflicts: the generated corpus must be a well-formed
// program family — no unit defines the same symbol twice under overlapping
// conditions.
func TestCorpusHasNoConflicts(t *testing.T) {
	c := corpus.Generate(corpus.Params{Seed: 12, CFiles: 10, GenHeaders: 10})
	tool := core.New(core.Config{FS: c.FS, IncludePaths: []string{"include", "include/gen", "include/linux"}})
	for _, cf := range c.CFiles {
		res, err := tool.ParseFile(cf)
		if err != nil || res.AST == nil {
			t.Fatalf("%s: %v", cf, err)
		}
		ix := NewIndex(tool.Space())
		ix.AddUnit(cf, res.AST)
		if conflicts := ix.ConflictingDefinitions(); len(conflicts) > 0 {
			t.Errorf("%s: %s defined twice under %s", cf,
				conflicts[0].Name, tool.Space().String(conflicts[0].Under))
		}
	}
}
