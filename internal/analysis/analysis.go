// Package analysis prototypes configuration-preserving semantic analysis —
// the paper's stated future work (§8: "we expect that [semantic analysis],
// much like our configuration-preserving syntactic analysis, will require
// incorporating presence conditions into all functionality, including by
// maintaining multiply-defined symbols").
//
// It builds a cross-configuration symbol index from a variability AST:
// every top-level definition is recorded with the presence condition under
// which it exists. Two analyses run over the index:
//
//   - ConflictingDefinitions finds names defined more than once under
//     overlapping presence conditions — the variability bug class a
//     single-configuration compiler only detects for the one configuration
//     it builds (cf. the paper's citation of Tartler et al.'s
//     configuration-coverage work);
//   - CoverageReport quantifies, per symbol, how many configurations see
//     it (BDD model counting), surfacing code invisible to common
//     configurations.
package analysis

import (
	"sort"

	"repro/internal/ast"
	"repro/internal/cond"
)

// SymbolKind classifies an indexed definition.
type SymbolKind uint8

// Symbol kinds.
const (
	KindFunction SymbolKind = iota
	KindVariable
	KindTypedef
)

var kindNames = [...]string{"function", "variable", "typedef"}

// String returns the kind's name.
func (k SymbolKind) String() string { return kindNames[k] }

// Symbol is one top-level definition under a presence condition.
type Symbol struct {
	Name string
	Kind SymbolKind
	File string
	Line int // source line of the declarator
	Col  int
	Cond cond.Cond
}

// sourceKey identifies a definition by its source position: FMLR may parse
// the same source tokens several times for different configurations (paper
// §2.1), producing distinct AST nodes for one textual definition.
func (s Symbol) sourceKey() [3]interface{} {
	return [3]interface{}{s.File, s.Line, s.Col}
}

// Index is a cross-configuration symbol index.
type Index struct {
	space   *cond.Space
	byName  map[string][]Symbol
	ordered []string
}

// NewIndex returns an empty index over the given condition space.
func NewIndex(space *cond.Space) *Index {
	return &Index{space: space, byName: make(map[string][]Symbol)}
}

// Space returns the index's condition space.
func (ix *Index) Space() *cond.Space { return ix.space }

// AddUnit indexes the top-level definitions of one compilation unit's AST.
func (ix *Index) AddUnit(file string, root *ast.Node) {
	ix.walk(file, root, ix.space.True())
}

func (ix *Index) walk(file string, n *ast.Node, c cond.Cond) {
	if n == nil || ix.space.IsFalse(c) {
		return
	}
	switch n.Kind {
	case ast.KindChoice:
		for _, alt := range n.Alts {
			ix.walk(file, alt.Node, ix.space.And(c, alt.Cond))
		}
		return
	case ast.KindToken:
		return
	}
	switch n.Label {
	case "FunctionDefinition":
		if name, line, col := declaredNamePos(n); name != "" {
			ix.add(Symbol{Name: name, Kind: KindFunction, File: file, Line: line, Col: col, Cond: c})
		}
		return
	case "Declaration":
		ix.addDeclaration(file, n, c)
		return
	}
	for _, ch := range n.Children {
		ix.walk(file, ch, c)
	}
}

// addDeclaration indexes a top-level declaration: typedefs index as
// typedefs; declarators with initializers index as variable definitions.
// Uninitialized extern/plain declarations are tentative and skipped (they
// do not conflict).
func (ix *Index) addDeclaration(file string, n *ast.Node, c cond.Cond) {
	if len(n.Children) < 2 {
		return
	}
	isTypedef := containsLeaf(n.Children[0], "typedef")
	var walkDecls func(m *ast.Node, c cond.Cond)
	walkDecls = func(m *ast.Node, c cond.Cond) {
		if m == nil || ix.space.IsFalse(c) {
			return
		}
		switch m.Kind {
		case ast.KindChoice:
			for _, alt := range m.Alts {
				walkDecls(alt.Node, ix.space.And(c, alt.Cond))
			}
			return
		case ast.KindToken:
			return
		}
		if m.Label == "InitializedDeclarator" {
			if name, line, col := declaredNamePos(m); name != "" {
				ix.add(Symbol{Name: name, Kind: KindVariable, File: file, Line: line, Col: col, Cond: c})
			}
			return
		}
		if isTypedef && m.Label == "IdentifierDeclarator" && len(m.Children) == 1 {
			leaf := m.Children[0]
			ix.add(Symbol{Name: leaf.Text(), Kind: KindTypedef, File: file,
				Line: leaf.Tok.Line, Col: leaf.Tok.Col, Cond: c})
			return
		}
		for _, ch := range m.Children {
			walkDecls(ch, c)
		}
	}
	walkDecls(n.Children[1], c)
}

// add records a definition. The same textual definition can surface as
// several AST nodes (shared tokens are parsed once per configuration group,
// paper §2.1) and the same node can be reachable through several choice
// alternatives; sightings at one source position are one definition whose
// condition is the disjunction of the paths.
func (ix *Index) add(s Symbol) {
	if _, seen := ix.byName[s.Name]; !seen {
		ix.ordered = append(ix.ordered, s.Name)
	}
	syms := ix.byName[s.Name]
	key := s.sourceKey()
	for i := range syms {
		if syms[i].sourceKey() == key {
			syms[i].Cond = ix.space.Or(syms[i].Cond, s.Cond)
			return
		}
	}
	ix.byName[s.Name] = append(syms, s)
}

// Symbols returns all definitions of a name.
func (ix *Index) Symbols(name string) []Symbol { return ix.byName[name] }

// Names returns the indexed names in first-seen order.
func (ix *Index) Names() []string { return ix.ordered }

// Len returns the total number of indexed definitions.
func (ix *Index) Len() int {
	n := 0
	for _, syms := range ix.byName {
		n += len(syms)
	}
	return n
}

// Conflict reports two definitions of the same name that coexist under a
// feasible configuration.
type Conflict struct {
	Name  string
	A, B  Symbol
	Under cond.Cond // the configurations where both definitions exist
}

// ConflictingDefinitions finds same-name definition pairs whose presence
// conditions overlap. Function-vs-function and variable-vs-anything
// overlaps are real double definitions; typedef-vs-typedef redefinition is
// legal in C11 but still reported (callers may filter by Kind).
func (ix *Index) ConflictingDefinitions() []Conflict {
	var out []Conflict
	names := append([]string(nil), ix.ordered...)
	sort.Strings(names)
	for _, name := range names {
		syms := ix.byName[name]
		for i := 0; i < len(syms); i++ {
			for j := i + 1; j < len(syms); j++ {
				both := ix.space.And(syms[i].Cond, syms[j].Cond)
				if !ix.space.IsFalse(both) {
					out = append(out, Conflict{Name: name, A: syms[i], B: syms[j], Under: both})
				}
			}
		}
	}
	return out
}

// Coverage describes how much of the configuration space sees a symbol.
type Coverage struct {
	Symbol   Symbol
	Fraction float64 // fraction of configurations where the symbol exists
}

// CoverageReport computes, for every definition, the fraction of
// configurations under which it exists (ModeBDD spaces only; model counting
// is not available on the SAT representation). Results are sorted from
// least to most visible — the least-covered symbols are the ones
// maximal-configuration tools like the paper's allyesconfig discussion
// (§1: "less than 80% of the code blocks") are most likely to miss.
func (ix *Index) CoverageReport() []Coverage {
	total := ix.space.SatCount(ix.space.True())
	var out []Coverage
	for _, name := range ix.ordered {
		for _, s := range ix.byName[name] {
			out = append(out, Coverage{
				Symbol:   s,
				Fraction: ix.space.SatCount(s.Cond) / total,
			})
		}
	}
	// Full tie-break chain: Fraction alone leaves equal-coverage symbols in
	// insertion order, which depends on how units were fed to the index —
	// the report must be byte-stable across worker counts.
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		switch {
		case a.Fraction != b.Fraction:
			return a.Fraction < b.Fraction
		case a.Symbol.Name != b.Symbol.Name:
			return a.Symbol.Name < b.Symbol.Name
		case a.Symbol.File != b.Symbol.File:
			return a.Symbol.File < b.Symbol.File
		case a.Symbol.Line != b.Symbol.Line:
			return a.Symbol.Line < b.Symbol.Line
		default:
			return a.Symbol.Col < b.Symbol.Col
		}
	})
	return out
}

// DeclaredName digs out the first identifier declarator beneath a
// declaration or function definition, staying on the declarator spine.
func DeclaredName(n *ast.Node) string {
	name, _, _ := declaredNamePos(n)
	return name
}

// DeclaredNamePos is DeclaredName with the declarator's source position.
func DeclaredNamePos(n *ast.Node) (name string, line, col int) {
	return declaredNamePos(n)
}

// HasLeaf reports whether the subtree contains a token with the given text
// (choice alternatives included) — used by passes to spot storage-class and
// typedef specifiers.
func HasLeaf(n *ast.Node, text string) bool { return containsLeaf(n, text) }

func declaredNamePos(n *ast.Node) (name string, line, col int) {
	ast.Walk(n, func(m *ast.Node) bool {
		if name != "" {
			return false
		}
		if m.Label == "IdentifierDeclarator" && len(m.Children) == 1 && m.Children[0].Kind == ast.KindToken {
			leaf := m.Children[0]
			name, line, col = leaf.Text(), leaf.Tok.Line, leaf.Tok.Col
			return false
		}
		switch m.Label {
		case "CompoundStatement", "BracedInitializer", "StructSpecifier",
			"EnumSpecifier", "ParameterDeclaration":
			return false
		}
		return true
	})
	return name, line, col
}

func containsLeaf(n *ast.Node, text string) bool {
	found := false
	ast.Walk(n, func(m *ast.Node) bool {
		if m.Kind == ast.KindToken && m.Tok.Text == text {
			found = true
		}
		return !found
	})
	return found
}
