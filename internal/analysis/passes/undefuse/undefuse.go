// Package undefuse reports identifier uses that some configurations reach
// without a declaration: the name is declared under one presence condition
// (say, inside #ifdef CONFIG_X) but used under a weaker one, so the
// configurations in the difference fail to compile. Names never declared at
// all are skipped — every configuration fails identically, which an
// ordinary compiler already reports; the variability bug is the partial
// case, and the witness pins a failing configuration.
package undefuse

import (
	"repro/internal/analysis"
	"repro/internal/ast"
	"repro/internal/cond"
	"repro/internal/symtab"
	"repro/internal/token"
)

// Analyzer is the conditionally-undeclared-use pass.
var Analyzer = &analysis.Analyzer{
	Name: "undefuse",
	Doc:  "report identifier uses undeclared under some configurations that reach them",
	Run:  run,
}

func run(p *analysis.Pass) error {
	if p.Unit.AST == nil {
		return nil
	}
	w := &useWalker{
		pass:  p,
		space: p.Unit.Space,
		table: symtab.New(p.Unit.Space),
		uses:  make(map[useKey]*useSite),
	}
	w.walk(p.Unit.AST, p.Unit.Space.True(), false)
	s := p.Unit.Space
	for _, u := range w.uses {
		// Never declared under any configuration containing the use: a
		// uniform error an ordinary compiler reports, not a variability
		// bug. The check is global — hoisting can order an alternative
		// with the use before the alternative with the declaration.
		if s.IsFalse(u.declared) || s.IsFalse(u.missing) {
			continue
		}
		p.Reportf(u.tok, u.missing, "identifier %q is undeclared under some configurations reaching this use", u.tok.Text)
	}
	return nil
}

// useKey merges sightings of one textual use reached through several choice
// alternatives (their conditions are disjoint; the finding is their union).
type useKey struct {
	name      string
	line, col int
}

type useSite struct {
	tok      token.Token
	missing  cond.Cond // union over sightings: path reached without a declaration
	declared cond.Cond // union over sightings: declaration in scope at the use
}

type useWalker struct {
	pass  *analysis.Pass
	space *cond.Space
	table *symtab.Table
	uses  map[useKey]*useSite
}

func (w *useWalker) walk(n *ast.Node, c cond.Cond, inBody bool) {
	if n == nil || w.space.IsFalse(c) || n.IsError() {
		return
	}
	switch n.Kind {
	case ast.KindToken:
		if inBody && n.Tok.Kind == token.Identifier {
			w.use(*n.Tok, c)
		}
		return
	case ast.KindChoice:
		for _, alt := range n.Alts {
			w.walk(alt.Node, w.space.And(c, alt.Cond), inBody)
		}
		return
	}
	switch n.Label {
	case "CompoundStatement":
		w.table.EnterScope()
		for _, ch := range n.Children {
			w.walk(ch, c, true)
		}
		w.table.ExitScope()
		return
	case "Declaration":
		w.declaration(n, c, inBody)
		return
	case "FunctionDefinition":
		w.functionDefinition(n, c)
		return
	case "MemberExpr", "ArrowExpr":
		// The member name lives in the struct's namespace, not the ordinary
		// one; only the object expression contains uses.
		if len(n.Children) > 0 {
			w.walk(n.Children[0], c, inBody)
		}
		return
	case "LabelStatement":
		// "name: stmt" — the label is not an ordinary identifier.
		if len(n.Children) > 0 {
			w.walk(n.Children[len(n.Children)-1], c, inBody)
		}
		return
	case "GotoStatement", "TypeName", "StructSpecifier", "EnumSpecifier", "FieldDesignator":
		return
	}
	for _, ch := range n.Children {
		w.walk(ch, c, inBody)
	}
}

// declaration registers every declared name, then (in a body) walks the
// initializers for uses.
func (w *useWalker) declaration(n *ast.Node, c cond.Cond, inBody bool) {
	if len(n.Children) < 2 {
		return
	}
	isTypedef := analysis.HasLeaf(n.Children[0], "typedef")
	w.declare(n.Children[1], c, isTypedef, inBody)
}

func (w *useWalker) declare(n *ast.Node, c cond.Cond, isTypedef, inBody bool) {
	if n == nil || w.space.IsFalse(c) || n.IsError() {
		return
	}
	switch n.Kind {
	case ast.KindToken:
		return
	case ast.KindChoice:
		for _, alt := range n.Alts {
			w.declare(alt.Node, w.space.And(c, alt.Cond), isTypedef, inBody)
		}
		return
	}
	switch n.Label {
	case "IdentifierDeclarator":
		if len(n.Children) == 1 && n.Children[0].Kind == ast.KindToken {
			w.define(n.Children[0].Text(), c, isTypedef)
		}
		return
	case "InitializedDeclarator":
		if len(n.Children) > 0 {
			w.declare(n.Children[0], c, isTypedef, inBody)
			// C scoping: the declarator is in scope inside its own
			// initializer, so define first, then scan for uses.
			for _, init := range n.Children[1:] {
				if inBody {
					w.walk(init, c, true)
				}
			}
		}
		return
	case "ParameterDeclaration", "StructSpecifier", "EnumSpecifier":
		return
	}
	for _, ch := range n.Children {
		w.declare(ch, c, isTypedef, inBody)
	}
}

// functionDefinition defines the function's name in the enclosing scope,
// then its parameters in a fresh scope wrapping the body.
func (w *useWalker) functionDefinition(n *ast.Node, c cond.Cond) {
	if name, _, _ := analysis.DeclaredNamePos(n); name != "" {
		w.define(name, c, false)
	}
	w.table.EnterScope()
	w.defineParams(n, c)
	for _, ch := range n.Children {
		if ch != nil && ch.Label == "CompoundStatement" {
			w.walk(ch, c, false)
		}
	}
	w.table.ExitScope()
}

func (w *useWalker) defineParams(n *ast.Node, c cond.Cond) {
	if n == nil || w.space.IsFalse(c) || n.IsError() {
		return
	}
	if n.Kind == ast.KindChoice {
		for _, alt := range n.Alts {
			w.defineParams(alt.Node, w.space.And(c, alt.Cond))
		}
		return
	}
	if n.Label == "ParameterDeclaration" {
		if name, _, _ := analysis.DeclaredNamePos(n); name != "" {
			w.define(name, c, false)
		}
		return
	}
	if n.Label == "CompoundStatement" {
		return
	}
	for _, ch := range n.Children {
		w.defineParams(ch, c)
	}
}

func (w *useWalker) define(name string, c cond.Cond, isTypedef bool) {
	if name == "" {
		return
	}
	if isTypedef {
		w.table.DefineTypedef(name, c)
	} else {
		w.table.DefineObject(name, c)
	}
}

func (w *useWalker) use(tok token.Token, c cond.Cond) {
	declared := w.table.Declared(tok.Text)
	missing := w.space.AndNot(c, declared)
	key := useKey{name: tok.Text, line: tok.Line, col: tok.Col}
	if site, ok := w.uses[key]; ok {
		site.missing = w.space.Or(site.missing, missing)
		site.declared = w.space.Or(site.declared, declared)
		return
	}
	w.uses[key] = &useSite{tok: tok, missing: missing, declared: declared}
}
