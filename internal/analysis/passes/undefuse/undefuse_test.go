package undefuse_test

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/passes/undefuse"
	"repro/internal/core"
)

func lint(t *testing.T, src string) (*analysis.Result, *core.Tool) {
	t.Helper()
	tool := core.New(core.Config{})
	res, err := tool.ParseString("main.c", src)
	if err != nil {
		t.Fatal(err)
	}
	r := analysis.Run(&analysis.Unit{
		File:  "main.c",
		Space: tool.Space(),
		AST:   res.AST,
		PP:    res.Unit,
	}, []*analysis.Analyzer{undefuse.Analyzer})
	return r, tool
}

func TestPartiallyDeclaredUse(t *testing.T) {
	r, tool := lint(t, `
#ifdef CONFIG_C
int guarded;
#endif
int use(void) { return guarded; }
`)
	if len(r.Diags) != 1 {
		t.Fatalf("diags: %+v", r.Diags)
	}
	d := r.Diags[0]
	if !strings.Contains(d.Msg, `"guarded"`) {
		t.Errorf("msg: %s", d.Msg)
	}
	// Missing exactly where the declaration is off.
	s := tool.Space()
	if !s.Equal(d.Cond, s.Not(s.Var("(defined CONFIG_C)"))) {
		t.Errorf("cond = %s, want !(defined CONFIG_C)", s.String(d.Cond))
	}
	if d.Witness["(defined CONFIG_C)"] {
		t.Errorf("witness %v should disable CONFIG_C", d.Witness)
	}
	if !d.WitnessVerified {
		t.Error("witness not verified")
	}
}

func TestUnconditionalDeclarationNotFlagged(t *testing.T) {
	r, _ := lint(t, `
int always;
int use(void) { return always; }
`)
	if len(r.Diags) != 0 {
		t.Errorf("diags: %+v", r.Diags)
	}
}

func TestNeverDeclaredNotFlagged(t *testing.T) {
	// Undeclared in every configuration: an ordinary compiler error, not a
	// variability bug — out of scope for this pass.
	r, _ := lint(t, `
int use(void) { return phantom; }
`)
	if len(r.Diags) != 0 {
		t.Errorf("uniformly-undeclared name flagged: %+v", r.Diags)
	}
}

func TestGuardedUseNotFlagged(t *testing.T) {
	// Use sits under the same condition as the declaration: no
	// configuration reaches the use without it.
	r, _ := lint(t, `
#ifdef CONFIG_C
int guarded;
#endif
int use(void) {
#ifdef CONFIG_C
    return guarded;
#else
    return 0;
#endif
}
`)
	if len(r.Diags) != 0 {
		t.Errorf("properly guarded use flagged: %+v", r.Diags)
	}
}

func TestParametersAndLocalsInScope(t *testing.T) {
	r, _ := lint(t, `
int add(int left, int right) {
    int sum = left + right;
    return sum;
}
`)
	if len(r.Diags) != 0 {
		t.Errorf("parameters or locals flagged: %+v", r.Diags)
	}
}

func TestMemberAndLabelNamesNotUses(t *testing.T) {
	r, _ := lint(t, `
struct box { int inner; };
int f(struct box *b) {
    if (b->inner) goto out;
    return 1;
out:
    return b->inner;
}
`)
	if len(r.Diags) != 0 {
		t.Errorf("member/label names treated as uses: %+v", r.Diags)
	}
}

func TestConditionalLocalUse(t *testing.T) {
	r, tool := lint(t, `
int f(void) {
#ifdef CONFIG_T
    int tmp = 1;
#endif
    return tmp;
}
`)
	if len(r.Diags) != 1 {
		t.Fatalf("diags: %+v", r.Diags)
	}
	s := tool.Space()
	if !s.Equal(r.Diags[0].Cond, s.Not(s.Var("(defined CONFIG_T)"))) {
		t.Errorf("cond = %s", s.String(r.Diags[0].Cond))
	}
}
