// Package hygiene lints preprocessor usage: headers included without a
// recognizable include guard (every re-include re-lexes and re-expands the
// file, and double inclusion of definitions is one missing #ifndef away)
// and macros redefined with a different body under overlapping presence
// conditions (the later definition silently wins exactly where the
// conditions overlap — a classic configuration-dependent surprise).
package hygiene

import (
	"repro/internal/analysis"
	"repro/internal/token"
)

// Analyzer is the preprocessor-hygiene pass.
var Analyzer = &analysis.Analyzer{
	Name: "hygiene",
	Doc:  "lint unguarded headers and overlapping macro redefinitions",
	Run:  run,
}

func run(p *analysis.Pass) error {
	u := p.Unit
	if u.PP == nil {
		return nil
	}
	for _, h := range u.PP.Unguarded {
		p.Reportf(token.Token{File: u.File, Line: 1, Col: 1}, u.Space.True(),
			"header %q has no include guard", h)
	}
	for _, r := range u.PP.MacroRedefs {
		p.Reportf(r.Tok, r.Cond,
			"macro %q redefined with a different body under an overlapping condition", r.Msg)
	}
	return nil
}
