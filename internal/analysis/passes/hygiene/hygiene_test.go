package hygiene_test

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/passes/hygiene"
	"repro/internal/core"
)

type mapFS map[string]string

func (m mapFS) ReadFile(p string) ([]byte, error) {
	if s, ok := m[p]; ok {
		return []byte(s), nil
	}
	return nil, errNotFound(p)
}
func (m mapFS) Exists(p string) bool { _, ok := m[p]; return ok }

type errNotFound string

func (e errNotFound) Error() string { return "not found: " + string(e) }

func lint(t *testing.T, fs mapFS, src string) *analysis.Result {
	t.Helper()
	tool := core.New(core.Config{FS: fs, IncludePaths: []string{"."}})
	res, err := tool.ParseString("main.c", src)
	if err != nil {
		t.Fatal(err)
	}
	return analysis.Run(&analysis.Unit{
		File:  "main.c",
		Space: tool.Space(),
		AST:   res.AST,
		PP:    res.Unit,
	}, []*analysis.Analyzer{hygiene.Analyzer})
}

func TestOverlappingMacroRedefinition(t *testing.T) {
	r := lint(t, nil, `
#define LIMIT 10
#ifdef CONFIG_BIG
#define LIMIT 100
#endif
int x;
`)
	if len(r.Diags) != 1 {
		t.Fatalf("diags: %+v", r.Diags)
	}
	if !strings.Contains(r.Diags[0].Msg, `macro "LIMIT" redefined`) {
		t.Errorf("msg: %s", r.Diags[0].Msg)
	}
}

func TestDisjointRedefinitionNotFlagged(t *testing.T) {
	r := lint(t, nil, `
#ifdef CONFIG_BIG
#define LIMIT 100
#else
#define LIMIT 10
#endif
int x;
`)
	if len(r.Diags) != 0 {
		t.Errorf("disjoint redefinition flagged: %+v", r.Diags)
	}
}

func TestSameBodyRedefinitionNotFlagged(t *testing.T) {
	// C11 6.10.3p2 allows benign redefinition with an identical body.
	r := lint(t, nil, `
#define LIMIT 10
#define LIMIT 10
int x;
`)
	if len(r.Diags) != 0 {
		t.Errorf("benign redefinition flagged: %+v", r.Diags)
	}
}

func TestUnguardedHeader(t *testing.T) {
	r := lint(t, mapFS{"bare.h": "int from_header;\n"}, `
#include "bare.h"
int x;
`)
	if len(r.Diags) != 1 {
		t.Fatalf("diags: %+v", r.Diags)
	}
	d := r.Diags[0]
	if !strings.Contains(d.Msg, `"bare.h" has no include guard`) {
		t.Errorf("msg: %s", d.Msg)
	}
	if d.CondStr != "1" {
		t.Errorf("unguarded-header finding should be unconditional, got %s", d.CondStr)
	}
}

func TestGuardedHeaderNotFlagged(t *testing.T) {
	r := lint(t, mapFS{"safe.h": "#ifndef SAFE_H\n#define SAFE_H\nint from_header;\n#endif\n"}, `
#include "safe.h"
#include "safe.h"
int x;
`)
	if len(r.Diags) != 0 {
		t.Errorf("guarded header flagged: %+v", r.Diags)
	}
}
