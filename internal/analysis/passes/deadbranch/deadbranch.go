// Package deadbranch reports conditional branches that no configuration can
// reach: #if/#elif/#else blocks whose condition contradicts the enclosing
// conditionals or whose earlier siblings already cover every configuration
// (the preprocessor records these as it drops the content), plus choice-AST
// alternatives that are infeasible on their path — the same bug class
// undertaker's dead-#ifdef analysis finds, here with a witness.
package deadbranch

import (
	"repro/internal/analysis"
	"repro/internal/ast"
	"repro/internal/cond"
	"repro/internal/token"
)

// Analyzer is the dead-branch pass.
var Analyzer = &analysis.Analyzer{
	Name: "deadbranch",
	Doc:  "report preprocessor branches and AST alternatives no configuration reaches",
	Run:  run,
}

func run(p *analysis.Pass) error {
	u := p.Unit
	if u.PP != nil {
		for _, r := range u.PP.DeadBranches {
			p.Reportf(r.Tok, r.Cond, "%s", r.Msg)
		}
	}
	if u.AST == nil {
		return nil
	}
	// Choice-node invariant: an alternative that is satisfiable on its own
	// but selected by no configuration is dead structure. Merged subparsers
	// share choice nodes across paths, so one incoming path excluding an
	// alternative is normal; the alternative is dead only when the union of
	// every path condition reaching its node misses it.
	reach := make(map[*ast.Node]cond.Cond)
	var order []*ast.Node
	w := &analysis.Walker{Space: u.Space}
	w.Walk(u.AST, u.Space.True(), func(n *ast.Node, c cond.Cond) bool {
		if n.Kind != ast.KindChoice {
			return true
		}
		if have, ok := reach[n]; ok {
			reach[n] = u.Space.Or(have, c)
		} else {
			reach[n] = c
			order = append(order, n)
		}
		return true
	})
	for _, n := range order {
		for _, alt := range n.Alts {
			if alt.Node == nil {
				continue
			}
			if !u.Space.IsFalse(alt.Cond) && u.Space.IsFalse(u.Space.And(reach[n], alt.Cond)) {
				p.Reportf(firstTok(alt.Node), alt.Cond,
					"choice alternative is infeasible on its path: no configuration selects it")
			}
		}
	}
	return nil
}

// firstTok finds the leftmost token beneath n for positioning; the zero
// token (unit-level position) when the subtree has none.
func firstTok(n *ast.Node) token.Token {
	var tok token.Token
	found := false
	ast.Walk(n, func(m *ast.Node) bool {
		if found {
			return false
		}
		if m.Kind == ast.KindToken && m.Tok != nil {
			tok, found = *m.Tok, true
			return false
		}
		return true
	})
	return tok
}
