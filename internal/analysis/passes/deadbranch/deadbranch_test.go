package deadbranch_test

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/passes/deadbranch"
	"repro/internal/ast"
	"repro/internal/cond"
	"repro/internal/core"
	"repro/internal/token"
)

func lint(t *testing.T, src string) *analysis.Result {
	t.Helper()
	tool := core.New(core.Config{})
	res, err := tool.ParseString("main.c", src)
	if err != nil {
		t.Fatal(err)
	}
	return analysis.Run(&analysis.Unit{
		File:  "main.c",
		Space: tool.Space(),
		AST:   res.AST,
		PP:    res.Unit,
	}, []*analysis.Analyzer{deadbranch.Analyzer})
}

func TestContradictingNestedBranch(t *testing.T) {
	r := lint(t, `
#ifdef CONFIG_A
#ifndef CONFIG_A
int dead;
#endif
#endif
int live;
`)
	if len(r.Diags) != 1 {
		t.Fatalf("diags: %+v", r.Diags)
	}
	d := r.Diags[0]
	if !strings.Contains(d.Msg, "contradicts enclosing") {
		t.Errorf("msg: %s", d.Msg)
	}
	if d.Line != 3 {
		t.Errorf("line = %d, want 3 (the #ifndef)", d.Line)
	}
	if !d.WitnessVerified {
		t.Error("witness not verified")
	}
}

func TestUnreachableElseAfterExhaustiveBranches(t *testing.T) {
	r := lint(t, `
#if defined(CONFIG_A)
int a;
#elif !defined(CONFIG_A)
int b;
#else
int never;
#endif
`)
	if len(r.Diags) != 1 {
		t.Fatalf("diags: %+v", r.Diags)
	}
	if !strings.Contains(r.Diags[0].Msg, "#else unreachable") {
		t.Errorf("msg: %s", r.Diags[0].Msg)
	}
}

func TestFeasibleBranchesNotFlagged(t *testing.T) {
	r := lint(t, `
#ifdef CONFIG_A
int a;
#else
int b;
#endif
#if defined(CONFIG_B) && !defined(CONFIG_C)
int c;
#endif
`)
	if len(r.Diags) != 0 {
		t.Errorf("false positives: %+v", r.Diags)
	}
}

// TestIncludeGuardIdiomNotFlagged: the second inclusion of a guarded header
// makes the guard's #ifndef concretely false — classic dead text, but not a
// bug, and flagging it would poison the header cache.
func TestIncludeGuardIdiomNotFlagged(t *testing.T) {
	hdr := "#ifndef GUARD_H\n#define GUARD_H\nint decl;\n#endif\n"
	src := "#include \"g.h\"\n#include \"g.h\"\nint user;\n"
	tool := core.New(core.Config{
		FS:           mapFS{"g.h": hdr},
		IncludePaths: []string{"."},
	})
	res, err := tool.ParseString("main.c", src)
	if err != nil {
		t.Fatal(err)
	}
	r := analysis.Run(&analysis.Unit{
		File: "main.c", Space: tool.Space(), AST: res.AST, PP: res.Unit,
	}, []*analysis.Analyzer{deadbranch.Analyzer})
	if len(r.Diags) != 0 {
		t.Errorf("include-guard idiom flagged: %+v", r.Diags)
	}
}

type mapFS map[string]string

func (m mapFS) ReadFile(p string) ([]byte, error) {
	if s, ok := m[p]; ok {
		return []byte(s), nil
	}
	return nil, errNotFound(p)
}
func (m mapFS) Exists(p string) bool { _, ok := m[p]; return ok }

type errNotFound string

func (e errNotFound) Error() string { return "not found: " + string(e) }

// TestChoiceAlternativeDeadOnEveryPath exercises the AST-level invariant on
// a hand-built DAG: an alternative satisfiable on its own but excluded by
// the union of every path reaching its node is dead; an alternative excluded
// on one path but selected on another is not.
func TestChoiceAlternativeDeadOnEveryPath(t *testing.T) {
	s := cond.NewSpace(cond.ModeBDD)
	a := s.Var("(defined A)")
	leaf := func(text string) *ast.Node {
		return ast.Leaf(token.Token{File: "u.c", Line: 1, Col: 1, Kind: token.Identifier, Text: text})
	}

	// inner's !A alternative can never be selected: the only path to inner
	// runs under A.
	inner := ast.NewChoice(
		ast.Choice{Cond: s.Not(a), Node: leaf("dead")},
		ast.Choice{Cond: a, Node: leaf("ok")},
	)
	root := ast.New("Unit", ast.NewChoice(ast.Choice{Cond: a, Node: inner}))
	r := analysis.Run(&analysis.Unit{File: "u.c", Space: s, AST: root},
		[]*analysis.Analyzer{deadbranch.Analyzer})
	if len(r.Diags) != 1 || !strings.Contains(r.Diags[0].Msg, "no configuration selects it") {
		t.Fatalf("diags: %+v", r.Diags)
	}

	// A shared node reached under A and under !A: each path excludes one
	// alternative, but the union covers both — no report.
	shared := ast.NewChoice(
		ast.Choice{Cond: a, Node: leaf("under_a")},
		ast.Choice{Cond: s.Not(a), Node: leaf("under_not_a")},
	)
	root2 := ast.New("Unit", ast.NewChoice(
		ast.Choice{Cond: a, Node: ast.New("L", shared)},
		ast.Choice{Cond: s.Not(a), Node: ast.New("R", shared)},
	))
	r2 := analysis.Run(&analysis.Unit{File: "u.c", Space: s, AST: root2},
		[]*analysis.Analyzer{deadbranch.Analyzer})
	if len(r2.Diags) != 0 {
		t.Errorf("shared-node alternatives flagged: %+v", r2.Diags)
	}
}
