// Package passes registers the built-in variability-aware analysis passes.
package passes

import (
	"repro/internal/analysis"
	"repro/internal/analysis/passes/condredef"
	"repro/internal/analysis/passes/deadbranch"
	"repro/internal/analysis/passes/errreach"
	"repro/internal/analysis/passes/hygiene"
	"repro/internal/analysis/passes/undefuse"
)

// All returns the built-in passes in registration order (the driver runs
// them in name order regardless).
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		condredef.Analyzer,
		deadbranch.Analyzer,
		errreach.Analyzer,
		hygiene.Analyzer,
		undefuse.Analyzer,
	}
}

// ByName returns the subset of All whose names are listed; unknown names are
// ignored. An empty list selects every pass.
func ByName(names []string) []*analysis.Analyzer {
	if len(names) == 0 {
		return All()
	}
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	var out []*analysis.Analyzer
	for _, a := range All() {
		if want[a.Name] {
			out = append(out, a)
		}
	}
	return out
}
