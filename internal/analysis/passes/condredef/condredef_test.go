package condredef_test

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/passes/condredef"
	"repro/internal/core"
)

func lint(t *testing.T, src string) (*analysis.Result, *core.Tool) {
	t.Helper()
	tool := core.New(core.Config{})
	res, err := tool.ParseString("main.c", src)
	if err != nil {
		t.Fatal(err)
	}
	r := analysis.Run(&analysis.Unit{
		File:  "main.c",
		Space: tool.Space(),
		AST:   res.AST,
		PP:    res.Unit,
	}, []*analysis.Analyzer{condredef.Analyzer})
	return r, tool
}

func TestFileScopeOverlappingDefinitions(t *testing.T) {
	r, tool := lint(t, `
#ifdef CONFIG_B
int x = 1;
#endif
#ifdef CONFIG_C
int x = 2;
#endif
`)
	if len(r.Diags) != 1 {
		t.Fatalf("diags: %+v", r.Diags)
	}
	d := r.Diags[0]
	if !strings.Contains(d.Msg, `"x"`) || !strings.Contains(d.Msg, "twice") {
		t.Errorf("msg: %s", d.Msg)
	}
	// The conflict holds exactly where both branches are on.
	s := tool.Space()
	want := s.And(s.Var("(defined CONFIG_B)"), s.Var("(defined CONFIG_C)"))
	if !s.Equal(d.Cond, want) {
		t.Errorf("cond = %s, want %s", s.String(d.Cond), s.String(want))
	}
	if !d.Witness["(defined CONFIG_B)"] || !d.Witness["(defined CONFIG_C)"] {
		t.Errorf("witness %v", d.Witness)
	}
}

func TestDisjointDefinitionsNotFlagged(t *testing.T) {
	r, _ := lint(t, `
#ifdef CONFIG_B
int both = 1;
#else
int both = 2;
#endif
`)
	if len(r.Diags) != 0 {
		t.Errorf("disjoint definitions flagged: %+v", r.Diags)
	}
}

func TestBlockScopeTypedefObjectClash(t *testing.T) {
	// Object first, typedef second: the reverse order is a parse error in
	// the guarded alternative ("int <typedef-name> = 0" has no declarator
	// reading), so that subparser dies before the analysis ever sees it.
	r, _ := lint(t, `
int f(void) {
    int y = 1;
#ifdef CONFIG_E
    typedef int y;
#endif
    return 0;
}
`)
	if len(r.Diags) != 1 {
		t.Fatalf("diags: %+v", r.Diags)
	}
	if !strings.Contains(r.Diags[0].Msg, "typedef and an object in the same scope") {
		t.Errorf("msg: %s", r.Diags[0].Msg)
	}
}

func TestShadowingInNestedScopeNotFlagged(t *testing.T) {
	// An inner block redeclaring an outer name is shadowing, not
	// redefinition.
	r, _ := lint(t, `
int f(void) {
    int v = 1;
    {
        int v = 2;
    }
    return 0;
}
`)
	if len(r.Diags) != 0 {
		t.Errorf("shadowing flagged: %+v", r.Diags)
	}
}

func TestSameScopeObjectRedefinition(t *testing.T) {
	r, _ := lint(t, `
int f(void) {
    int v = 1;
#ifdef CONFIG_D
    int v = 2;
#endif
    return 0;
}
`)
	if len(r.Diags) != 1 {
		t.Fatalf("diags: %+v", r.Diags)
	}
	if !strings.Contains(r.Diags[0].Msg, "redefined in the same scope") {
		t.Errorf("msg: %s", r.Diags[0].Msg)
	}
}

func TestDisjointBlockScopeNotFlagged(t *testing.T) {
	r, _ := lint(t, `
int f(void) {
#ifdef CONFIG_D
    int v = 1;
#else
    int v = 2;
#endif
    return 0;
}
`)
	if len(r.Diags) != 0 {
		t.Errorf("disjoint block-scope definitions flagged: %+v", r.Diags)
	}
}
