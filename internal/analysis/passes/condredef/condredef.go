// Package condredef reports names defined more than once under overlapping
// presence conditions — the configuration-dependent double definition a
// single-configuration compiler only sees for the one configuration it
// builds. It is scope-aware (an inner-scope definition legally shadows an
// outer one; only same-scope overlap is a redefinition) and type-kind-aware
// (a name that is a typedef under one configuration and an object under an
// overlapping one is reported as a kind conflict, the nastier bug because it
// changes how downstream code parses).
package condredef

import (
	"repro/internal/analysis"
	"repro/internal/ast"
	"repro/internal/cond"
	"repro/internal/symtab"
	"repro/internal/token"
)

// Analyzer is the conditional-redefinition pass.
var Analyzer = &analysis.Analyzer{
	Name: "condredef",
	Doc:  "report same-scope redefinitions under overlapping presence conditions",
	Run:  run,
}

func run(p *analysis.Pass) error {
	u := p.Unit

	// File scope: the shared symbol index already holds every top-level
	// definition with its condition; report overlapping pairs kind-aware.
	for _, c := range p.Facts.ConflictingDefinitions() {
		p.Report(analysis.Diagnostic{
			File: c.B.File, Line: c.B.Line, Col: c.B.Col,
			Cond: c.Under,
			Msg:  conflictMsg(c),
		})
	}

	// Block scopes: walk function bodies with a conditional symbol table,
	// reporting definitions that overlap an existing same-scope entry.
	if u.AST != nil {
		w := &redefWalker{pass: p, space: u.Space, table: symtab.New(u.Space)}
		w.walk(u.AST, u.Space.True(), false)
	}
	return nil
}

func conflictMsg(c analysis.Conflict) string {
	if c.A.Kind == c.B.Kind {
		if c.A.Kind == analysis.KindTypedef {
			return "typedef \"" + c.Name + "\" redefined under an overlapping condition"
		}
		return c.A.Kind.String() + " \"" + c.Name + "\" defined twice under an overlapping condition"
	}
	return "\"" + c.Name + "\" defined as " + c.A.Kind.String() + " and as " +
		c.B.Kind.String() + " under an overlapping condition"
}

// redefWalker traverses the AST tracking C scopes. The file scope is handled
// by the index above, so definitions are only registered and checked once
// inside a function body (inBody).
type redefWalker struct {
	pass  *analysis.Pass
	space *cond.Space
	table *symtab.Table
}

func (w *redefWalker) walk(n *ast.Node, c cond.Cond, inBody bool) {
	if n == nil || w.space.IsFalse(c) || n.IsError() {
		return
	}
	switch n.Kind {
	case ast.KindToken:
		return
	case ast.KindChoice:
		for _, alt := range n.Alts {
			w.walk(alt.Node, w.space.And(c, alt.Cond), inBody)
		}
		return
	}
	switch n.Label {
	case "CompoundStatement":
		w.table.EnterScope()
		for _, ch := range n.Children {
			w.walk(ch, c, true)
		}
		w.table.ExitScope()
		return
	case "Declaration":
		if inBody {
			w.declaration(n, c)
			return
		}
	case "StructSpecifier", "EnumSpecifier":
		// Member and enumerator names live in their own namespaces.
		return
	}
	for _, ch := range n.Children {
		w.walk(ch, c, inBody)
	}
}

// declaration registers a block-scope declaration's names, reporting
// overlaps with existing same-scope entries first. Distinct textual
// definitions visited through different choice alternatives carry disjoint
// conditions, so re-visits of one definition never self-conflict.
func (w *redefWalker) declaration(n *ast.Node, c cond.Cond) {
	if len(n.Children) < 2 {
		return
	}
	isTypedef := analysis.HasLeaf(n.Children[0], "typedef")
	if analysis.HasLeaf(n.Children[0], "extern") {
		return // a block-scope extern declaration refers, it does not define
	}
	w.declarators(n.Children[1], c, isTypedef)
}

func (w *redefWalker) declarators(n *ast.Node, c cond.Cond, isTypedef bool) {
	if n == nil || w.space.IsFalse(c) || n.IsError() {
		return
	}
	switch n.Kind {
	case ast.KindToken:
		return
	case ast.KindChoice:
		for _, alt := range n.Alts {
			w.declarators(alt.Node, w.space.And(c, alt.Cond), isTypedef)
		}
		return
	}
	if n.Label == "IdentifierDeclarator" && len(n.Children) == 1 && n.Children[0].Kind == ast.KindToken {
		leaf := n.Children[0]
		w.define(leaf.Text(), *leaf.Tok, c, isTypedef)
		return
	}
	if n.Label == "InitializedDeclarator" {
		// Stay on the declarator spine: the initializer's identifiers are
		// uses, not definitions.
		if len(n.Children) > 0 {
			w.declarators(n.Children[0], c, isTypedef)
		}
		return
	}
	switch n.Label {
	case "BracedInitializer", "ParameterDeclaration":
		return
	}
	for _, ch := range n.Children {
		w.declarators(ch, c, isTypedef)
	}
}

func (w *redefWalker) define(name string, tok token.Token, c cond.Cond, isTypedef bool) {
	if name == "" {
		return
	}
	if tdCond, objCond, ok := w.table.CurrentScope(name); ok {
		sameKind, crossKind := objCond, tdCond
		if isTypedef {
			sameKind, crossKind = tdCond, objCond
		}
		if ov := andDefined(w.space, crossKind, c); ov != nil {
			kinds := "an object and a typedef"
			if isTypedef {
				kinds = "a typedef and an object"
			}
			w.pass.Reportf(tok, *ov, "%q is %s in the same scope under an overlapping condition", name, kinds)
		} else if ov := andDefined(w.space, sameKind, c); ov != nil {
			w.pass.Reportf(tok, *ov, "%q redefined in the same scope under an overlapping condition", name)
		}
	}
	if isTypedef {
		w.table.DefineTypedef(name, c)
	} else {
		w.table.DefineObject(name, c)
	}
}

// andDefined conjoins, treating the zero Cond as false; nil means the
// overlap is infeasible.
func andDefined(s *cond.Space, a, b cond.Cond) *cond.Cond {
	if a == (cond.Cond{}) {
		return nil
	}
	ov := s.And(a, b)
	if s.IsFalse(ov) {
		return nil
	}
	return &ov
}
