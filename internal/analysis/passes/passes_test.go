package passes_test

import (
	"context"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/passes"
	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/guard"
)

func TestAllAndByName(t *testing.T) {
	all := passes.All()
	if len(all) < 5 {
		t.Fatalf("builtin passes = %d, want >= 5", len(all))
	}
	seen := map[string]bool{}
	for _, a := range all {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("incomplete analyzer: %+v", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate pass name %q", a.Name)
		}
		seen[a.Name] = true
	}
	sub := passes.ByName([]string{"deadbranch", "undefuse"})
	if len(sub) != 2 {
		t.Errorf("ByName subset = %d, want 2", len(sub))
	}
	if got := passes.ByName(nil); len(got) != len(all) {
		t.Errorf("ByName(nil) = %d, want all %d", len(got), len(all))
	}
	if got := passes.ByName([]string{"no-such-pass"}); len(got) != 0 {
		t.Errorf("unknown name matched %d passes", len(got))
	}
}

// degradedSource forks enough subparsers that a Subparsers budget of 1
// trips during the parse, degrading the AST to an _Error region. The code
// itself is variability-clean: any diagnostic on it is a false positive.
const degradedSource = `
#ifdef CONFIG_A
int f(int a) { return a + 1; }
#else
long f(long a) { return a + 2; }
#endif
int g(void) { return 0; }
`

func parseDegraded(t *testing.T) (*core.Tool, *core.Result) {
	t.Helper()
	tool := core.New(core.Config{})
	tool.SetBudget(guard.New(context.Background(), guard.Limits{Subparsers: 1}))
	res, err := tool.ParseString("main.c", degradedSource)
	if err != nil {
		t.Fatal(err)
	}
	if !tool.Budget().Tripped() {
		t.Fatal("subparser budget did not trip; test needs a forkier source")
	}
	hasError := false
	ast.Walk(res.AST, func(n *ast.Node) bool {
		if n.IsError() {
			hasError = true
		}
		return true
	})
	if !hasError {
		t.Fatal("tripped parse produced no _Error region")
	}
	return tool, res
}

// TestNoFalseDiagnosticsOnDegradedAST is the error-opacity contract: when a
// budget trip abandons part of the parse, every pass must treat the _Error
// region as opaque and report nothing it cannot see whole. The degraded AST
// is analyzed under a fresh budget so the passes actually run.
func TestNoFalseDiagnosticsOnDegradedAST(t *testing.T) {
	tool, res := parseDegraded(t)
	r := analysis.Run(&analysis.Unit{
		File:  "main.c",
		Space: tool.Space(),
		AST:   res.AST,
		PP:    res.Unit,
	}, passes.All())
	if len(r.Diags) != 0 {
		t.Errorf("false diagnostics on degraded AST: %+v", r.Diags)
	}
	if r.Stats.ErrorRegions == 0 {
		t.Error("driver did not count the skipped _Error region")
	}
	if r.Stats.PassesRun != len(passes.All()) {
		t.Errorf("passes run = %d, want %d", r.Stats.PassesRun, len(passes.All()))
	}
}

// TestTrippedBudgetSkipsPasses: carrying the already-tripped parse budget
// into the analysis degrades further — no passes run at all, and that is a
// recorded degradation, not a failure.
func TestTrippedBudgetSkipsPasses(t *testing.T) {
	tool, res := parseDegraded(t)
	r := analysis.Run(&analysis.Unit{
		File:   "main.c",
		Space:  tool.Space(),
		AST:    res.AST,
		PP:     res.Unit,
		Budget: tool.Budget(),
	}, passes.All())
	if r.Stats.PassesRun != 0 || len(r.Diags) != 0 {
		t.Errorf("tripped budget: passes=%d diags=%d, want 0/0",
			r.Stats.PassesRun, len(r.Diags))
	}
}
