// Package errreach reports #error directives that some configuration
// reaches. A single-configuration compiler only hits the one #error its
// macro state selects; under configuration-preserving preprocessing every
// reachable #error is visible at once, each with the exact condition that
// triggers it and a concrete offending configuration.
package errreach

import (
	"repro/internal/analysis"
)

// Analyzer is the #error-reachability pass.
var Analyzer = &analysis.Analyzer{
	Name: "errreach",
	Doc:  "report #error directives reachable under some configuration",
	Run:  run,
}

func run(p *analysis.Pass) error {
	if p.Unit.PP == nil {
		return nil
	}
	for _, r := range p.Unit.PP.Errors {
		msg := r.Msg
		if msg == "" {
			msg = "(no message)"
		}
		p.Reportf(r.Tok, r.Cond, "#error reachable: %s", msg)
	}
	return nil
}
