package errreach_test

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/passes/errreach"
	"repro/internal/core"
)

func lint(t *testing.T, src string) (*analysis.Result, *core.Tool) {
	t.Helper()
	tool := core.New(core.Config{})
	res, err := tool.ParseString("main.c", src)
	if err != nil {
		t.Fatal(err)
	}
	r := analysis.Run(&analysis.Unit{
		File:  "main.c",
		Space: tool.Space(),
		AST:   res.AST,
		PP:    res.Unit,
	}, []*analysis.Analyzer{errreach.Analyzer})
	return r, tool
}

func TestReachableErrorDirective(t *testing.T) {
	r, tool := lint(t, `
#if defined(CONFIG_X) && defined(CONFIG_BROKEN)
#error X and BROKEN are incompatible
#endif
int ok;
`)
	if len(r.Diags) != 1 {
		t.Fatalf("diags: %+v", r.Diags)
	}
	d := r.Diags[0]
	if !strings.Contains(d.Msg, "X and BROKEN are incompatible") {
		t.Errorf("msg: %s", d.Msg)
	}
	// The witness must be a configuration that actually hits the #error.
	if !d.Witness["(defined CONFIG_X)"] || !d.Witness["(defined CONFIG_BROKEN)"] {
		t.Errorf("witness %v does not reach the #error", d.Witness)
	}
	if !d.WitnessVerified {
		t.Error("witness not verified")
	}
	if !tool.Space().Eval(d.Cond, d.Witness) {
		t.Error("witness does not satisfy the reported condition")
	}
}

func TestUnreachableErrorNotReported(t *testing.T) {
	// The #error sits in a contradictory region: no configuration reaches
	// it, so the driver's feasibility gate drops it.
	r, _ := lint(t, `
#ifdef CONFIG_A
#ifndef CONFIG_A
#error impossible
#endif
#endif
int ok;
`)
	if len(r.Diags) != 0 {
		t.Errorf("unreachable #error reported: %+v", r.Diags)
	}
}

func TestNoErrorDirectives(t *testing.T) {
	r, _ := lint(t, "int clean;\n")
	if len(r.Diags) != 0 {
		t.Errorf("diags on clean unit: %+v", r.Diags)
	}
}
