package analysis

import (
	"repro/internal/ast"
	"repro/internal/cond"
)

// Walker is the condition-carrying AST traversal every pass shares: it
// visits nodes in preorder with the full presence condition of each node —
// conjoining alternative conditions as it descends through static choice
// nodes — prunes alternatives that are infeasible on the current path, and
// treats degradation error nodes (ast.ErrorLabel) as opaque: neither the
// error node nor anything beneath it is visited, so passes never diagnose
// inside a region whose parse was abandoned under a tripped budget.
type Walker struct {
	Space *cond.Space
	// SkippedErrors counts opaque _Error regions encountered.
	SkippedErrors int
}

// Walk traverses root under base condition c. The visitor runs for every
// feasible non-error node with that node's presence condition; returning
// false prunes the node's subtree. A shared subtree reachable through
// several choice alternatives is visited once per path, each time under that
// path's condition — the path condition, not the node, is the analysis
// subject.
func (w *Walker) Walk(root *ast.Node, c cond.Cond, visit func(n *ast.Node, c cond.Cond) bool) {
	if root == nil || w.Space.IsFalse(c) {
		return
	}
	if root.IsError() {
		w.SkippedErrors++
		return
	}
	if root.Kind == ast.KindChoice {
		// The choice node itself is visited under the path condition (so
		// passes can inspect the raw alternatives); feasible alternatives
		// are then descended under the conjoined condition.
		if !visit(root, c) {
			return
		}
		for _, alt := range root.Alts {
			w.Walk(alt.Node, w.Space.And(c, alt.Cond), visit)
		}
		return
	}
	if !visit(root, c) {
		return
	}
	for _, ch := range root.Children {
		w.Walk(ch, c, visit)
	}
}
