package analysis

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/cond"
	"repro/internal/guard"
	"repro/internal/token"
)

// reportAnalyzer builds a one-shot analyzer that reports fixed diagnostics.
func reportAnalyzer(name string, diags ...Diagnostic) *Analyzer {
	return &Analyzer{
		Name: name,
		Doc:  "test analyzer",
		Run: func(p *Pass) error {
			for _, d := range diags {
				p.Report(d)
			}
			return nil
		},
	}
}

func tok(line, col int) token.Token {
	return token.Token{File: "u.c", Line: line, Col: col, Kind: token.Identifier}
}

func TestRunSortsAndAttachesWitnesses(t *testing.T) {
	s := cond.NewSpace(cond.ModeBDD)
	a := s.Var("(defined A)")
	u := &Unit{File: "u.c", Space: s}
	an := reportAnalyzer("demo",
		Diagnostic{Line: 9, Col: 1, Msg: "later", Cond: s.True()},
		Diagnostic{Line: 2, Col: 5, Msg: "earlier", Cond: a},
	)
	res := Run(u, []*Analyzer{an})
	if len(res.Diags) != 2 {
		t.Fatalf("diags = %d, want 2", len(res.Diags))
	}
	if res.Diags[0].Msg != "earlier" || res.Diags[1].Msg != "later" {
		t.Errorf("order: %q then %q", res.Diags[0].Msg, res.Diags[1].Msg)
	}
	for _, d := range res.Diags {
		if !d.WitnessVerified {
			t.Errorf("%s: witness not verified", d.Msg)
		}
		if d.Pass != "demo" || d.File != "u.c" {
			t.Errorf("driver-filled fields: %+v", d)
		}
	}
	// The conditional diagnostic's witness must enable A.
	if w := res.Diags[0].Witness; !w["(defined A)"] {
		t.Errorf("witness %v does not satisfy (defined A)", w)
	}
	if res.Stats.WitnessChecks != 2 || res.Stats.WitnessFailures != 0 {
		t.Errorf("stats: %+v", res.Stats)
	}
}

func TestRunDropsInfeasibleDiagnostics(t *testing.T) {
	s := cond.NewSpace(cond.ModeBDD)
	a := s.Var("A")
	contradiction := s.And(a, s.Not(a))
	u := &Unit{File: "u.c", Space: s}
	res := Run(u, []*Analyzer{reportAnalyzer("demo",
		Diagnostic{Line: 1, Col: 1, Msg: "impossible", Cond: contradiction},
		Diagnostic{Line: 1, Col: 1, Msg: "possible", Cond: a},
	)})
	if len(res.Diags) != 1 || res.Diags[0].Msg != "possible" {
		t.Fatalf("diags: %+v", res.Diags)
	}
	if res.Stats.InfeasibleDropped != 1 {
		t.Errorf("InfeasibleDropped = %d, want 1", res.Stats.InfeasibleDropped)
	}
}

func TestRunDedupsSharedPathSightings(t *testing.T) {
	// A pass walking a DAG-shaped AST sights one finding once per incoming
	// path; identical (position, pass, message, condition) reports collapse.
	s := cond.NewSpace(cond.ModeBDD)
	a := s.Var("A")
	d := Diagnostic{Line: 3, Col: 7, Msg: "dup", Cond: a}
	res := Run(&Unit{File: "u.c", Space: s}, []*Analyzer{reportAnalyzer("demo", d, d, d)})
	if len(res.Diags) != 1 {
		t.Fatalf("diags = %d, want 1 after dedup", len(res.Diags))
	}
	if res.Stats.Diagnostics != 1 || res.Stats.ByPass["demo"] != 1 {
		t.Errorf("stats count duplicates: %+v", res.Stats)
	}
}

func TestRunPassErrorDoesNotAbortOthers(t *testing.T) {
	s := cond.NewSpace(cond.ModeBDD)
	failing := &Analyzer{Name: "aaa-fails", Doc: "", Run: func(p *Pass) error {
		return fmt.Errorf("deliberate")
	}}
	ok := reportAnalyzer("bbb-ok", Diagnostic{Line: 1, Col: 1, Msg: "fine", Cond: s.True()})
	res := Run(&Unit{File: "u.c", Space: s}, []*Analyzer{failing, ok})
	if len(res.Errs) != 1 || !strings.Contains(res.Errs[0].Error(), "aaa-fails") {
		t.Fatalf("errs: %v", res.Errs)
	}
	if res.Stats.PassErrors != 1 || res.Stats.PassesRun != 1 {
		t.Errorf("stats: %+v", res.Stats)
	}
	if len(res.Diags) != 1 {
		t.Errorf("surviving pass's diagnostics lost: %+v", res.Diags)
	}
}

func TestRunTrippedBudgetDegrades(t *testing.T) {
	s := cond.NewSpace(cond.ModeBDD)
	b := guard.New(context.Background(), guard.Limits{Tokens: 1})
	b.ForceTrip("test", guard.AxisTokens)
	res := Run(&Unit{File: "u.c", Space: s, Budget: b},
		[]*Analyzer{reportAnalyzer("demo", Diagnostic{Line: 1, Col: 1, Msg: "x", Cond: s.True()})})
	if res.Stats.PassesRun != 0 || len(res.Diags) != 0 {
		t.Errorf("tripped budget still ran passes: %+v", res.Stats)
	}
}

func TestRunCountsErrorRegions(t *testing.T) {
	s := cond.NewSpace(cond.ModeBDD)
	a := s.Var("A")
	root := ast.New("Unit", ast.NewChoice(
		ast.Choice{Cond: a, Node: leaf("ok")},
		ast.Choice{Cond: s.Not(a), Node: ast.Error("abandoned")},
	))
	res := Run(&Unit{File: "u.c", Space: s, AST: root}, nil)
	if res.Stats.ErrorRegions != 1 {
		t.Errorf("ErrorRegions = %d, want 1", res.Stats.ErrorRegions)
	}
}

// randomCond builds a random condition term over the variables.
func randomCond(s *cond.Space, rng *rand.Rand, vars []string, depth int) cond.Cond {
	if depth <= 0 || rng.Intn(4) == 0 {
		v := s.Var(vars[rng.Intn(len(vars))])
		if rng.Intn(2) == 0 {
			return s.Not(v)
		}
		return v
	}
	l := randomCond(s, rng, vars, depth-1)
	r := randomCond(s, rng, vars, depth-1)
	if rng.Intn(2) == 0 {
		return s.And(l, r)
	}
	return s.Or(l, r)
}

// TestWitnessProperty is the witness soundness property test: for random
// conditions in both representations, SatOne either proves unsatisfiability
// (the condition is False) or yields an assignment that the independent SAT
// expression evaluation accepts.
func TestWitnessProperty(t *testing.T) {
	vars := []string{"(defined A)", "(defined B)", "(defined C)", "(defined D)", "(defined E)"}
	for _, mode := range []cond.Mode{cond.ModeBDD, cond.ModeSAT} {
		s := cond.NewSpace(mode)
		rng := rand.New(rand.NewSource(11))
		sat, unsat := 0, 0
		for i := 0; i < 300; i++ {
			c := randomCond(s, rng, vars, 4)
			w, ok := s.SatOne(c)
			if !ok {
				unsat++
				if !s.IsFalse(c) {
					t.Fatalf("mode %v: SatOne said unsat for satisfiable %s", mode, s.String(c))
				}
				continue
			}
			sat++
			if !VerifyWitness(s, c, w) {
				t.Fatalf("mode %v: witness %v rejected for %s", mode, w, s.String(c))
			}
			// The witness must also satisfy the condition under the space's
			// own evaluator — two independent routes, one verdict.
			if !s.Eval(c, w) {
				t.Fatalf("mode %v: space evaluation rejects witness %v for %s", mode, w, s.String(c))
			}
		}
		if sat == 0 || unsat == 0 {
			t.Logf("mode %v: coverage sat=%d unsat=%d (want both > 0)", mode, sat, unsat)
		}
	}
}

// TestWitnessNegativeDetection: a corrupted witness must fail the
// independent check — the verifier is not a rubber stamp.
func TestWitnessNegativeDetection(t *testing.T) {
	s := cond.NewSpace(cond.ModeBDD)
	a, b := s.Var("(defined A)"), s.Var("(defined B)")
	c := s.And(a, b)
	w, ok := s.SatOne(c)
	if !ok {
		t.Fatal("A&B unsat?")
	}
	if !VerifyWitness(s, c, w) {
		t.Fatal("good witness rejected")
	}
	w["(defined A)"] = false
	if VerifyWitness(s, c, w) {
		t.Error("corrupted witness accepted")
	}
}

func TestWriteJSONStableAndWellFormed(t *testing.T) {
	s := cond.NewSpace(cond.ModeBDD)
	u := &Unit{File: "u.c", Space: s}
	an := reportAnalyzer("demo",
		Diagnostic{Line: 2, Col: 1, Msg: "m1", Cond: s.Var("(defined A)")},
		Diagnostic{Line: 1, Col: 1, Msg: "m0", Cond: s.True()},
	)
	res := Run(u, []*Analyzer{an})
	var first bytes.Buffer
	if err := WriteJSON(&first, []*Result{res}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		var again bytes.Buffer
		if err := WriteJSON(&again, []*Result{Run(u, []*Analyzer{an})}); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), again.Bytes()) {
			t.Fatalf("JSON output unstable:\n%s\nvs\n%s", first.String(), again.String())
		}
	}
	if !strings.Contains(first.String(), `"witnessVerified": true`) {
		t.Errorf("witness flag missing:\n%s", first.String())
	}
}

func TestWriteSARIFMentionsRulesAndPositions(t *testing.T) {
	s := cond.NewSpace(cond.ModeBDD)
	res := Run(&Unit{File: "u.c", Space: s}, []*Analyzer{
		reportAnalyzer("demo", Diagnostic{Line: 4, Col: 2, Msg: "finding", Cond: s.Var("(defined A)")}),
	})
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, "clint", []*Result{res}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"version": "2.1.0"`, `"ruleId": "demo"`, `"startLine": 4`, "finding"} {
		if !strings.Contains(out, want) {
			t.Errorf("SARIF missing %q:\n%s", want, out)
		}
	}
}
