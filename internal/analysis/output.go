package analysis

import (
	"encoding/json"
	"io"
	"sort"
)

// jsonDiag is the wire form of a Diagnostic. Witness maps marshal with
// sorted keys (encoding/json orders map keys), so the rendering is a pure
// function of the diagnostic.
type jsonDiag struct {
	Pass            string          `json:"pass"`
	File            string          `json:"file"`
	Line            int             `json:"line"`
	Col             int             `json:"col"`
	Message         string          `json:"message"`
	Cond            string          `json:"cond"`
	Witness         map[string]bool `json:"witness"`
	WitnessVerified bool            `json:"witnessVerified"`
}

type jsonUnit struct {
	File        string     `json:"file"`
	Diagnostics []jsonDiag `json:"diagnostics"`
}

func toJSONDiags(diags []Diagnostic) []jsonDiag {
	out := make([]jsonDiag, len(diags))
	for i, d := range diags {
		w := d.Witness
		if w == nil {
			w = map[string]bool{}
		}
		out[i] = jsonDiag{
			Pass:            d.Pass,
			File:            d.File,
			Line:            d.Line,
			Col:             d.Col,
			Message:         d.Msg,
			Cond:            d.CondStr,
			Witness:         w,
			WitnessVerified: d.WitnessVerified,
		}
	}
	return out
}

// WriteJSON renders per-unit results as an indented JSON array in the order
// given (callers pass results in input order, making the bytes independent
// of worker scheduling).
func WriteJSON(w io.Writer, results []*Result) error {
	units := make([]jsonUnit, len(results))
	for i, r := range results {
		units[i] = jsonUnit{File: r.File, Diagnostics: toJSONDiags(r.Diags)}
		if units[i].Diagnostics == nil {
			units[i].Diagnostics = []jsonDiag{}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(units)
}

// Minimal SARIF 2.1.0 structures — enough for standard viewers: one run,
// one rule per pass, one result per diagnostic with the presence condition
// and witness in the message.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID   string `json:"id"`
	Name string `json:"name"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// WriteSARIF renders the results as a SARIF 2.1.0 log.
func WriteSARIF(w io.Writer, toolName string, results []*Result) error {
	ruleSet := make(map[string]bool)
	var sresults []sarifResult
	for _, r := range results {
		for _, d := range r.Diags {
			ruleSet[d.Pass] = true
			msg := d.Msg + " [when " + d.CondStr + "; witness " + witnessString(d.Witness) + "]"
			line, col := d.Line, d.Col
			if line == 0 {
				line = 1
			}
			if col == 0 {
				col = 1
			}
			sresults = append(sresults, sarifResult{
				RuleID:  d.Pass,
				Message: sarifMessage{Text: msg},
				Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: d.File},
					Region:           sarifRegion{StartLine: line, StartColumn: col},
				}}},
			})
		}
	}
	rules := make([]sarifRule, 0, len(ruleSet))
	for id := range ruleSet {
		rules = append(rules, sarifRule{ID: id, Name: id})
	}
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })
	if sresults == nil {
		sresults = []sarifResult{}
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: toolName, Rules: rules}},
			Results: sresults,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// witnessString renders a witness assignment compactly with sorted variable
// names: "A=1 B=0", or "any" for the empty (unconstrained) witness.
func witnessString(w map[string]bool) string {
	if len(w) == 0 {
		return "any"
	}
	names := make([]string, 0, len(w))
	for n := range w {
		names = append(names, n)
	}
	sort.Strings(names)
	out := ""
	for i, n := range names {
		if i > 0 {
			out += " "
		}
		v := "0"
		if w[n] {
			v = "1"
		}
		out += n + "=" + v
	}
	return out
}
