package analysis

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/cond"
	"repro/internal/token"
)

func leaf(text string) *ast.Node {
	return ast.Leaf(token.Token{Kind: token.Identifier, Text: text})
}

// enumerate returns every assignment over the variable names.
func enumerate(vars []string) []map[string]bool {
	out := []map[string]bool{{}}
	for _, v := range vars {
		next := make([]map[string]bool, 0, 2*len(out))
		for _, a := range out {
			on := make(map[string]bool, len(a)+1)
			off := make(map[string]bool, len(a)+1)
			for k, val := range a {
				on[k], off[k] = val, val
			}
			on[v], off[v] = true, false
			next = append(next, on, off)
		}
		out = next
	}
	return out
}

// walkerTokens returns the leaf texts the walker visits whose path condition
// holds under the assignment, in visit order.
func walkerTokens(s *cond.Space, root *ast.Node, assign map[string]bool) []string {
	w := &Walker{Space: s}
	var out []string
	w.Walk(root, s.True(), func(n *ast.Node, c cond.Cond) bool {
		if n.Kind == ast.KindToken && s.Eval(c, assign) {
			out = append(out, n.Tok.Text)
		}
		return true
	})
	return out
}

// projectTokens returns the leaf texts of the brute-force single-
// configuration projection.
func projectTokens(s *cond.Space, root *ast.Node, assign map[string]bool) []string {
	var out []string
	ast.Walk(ast.Project(s, root, assign), func(n *ast.Node) bool {
		if n.Kind == ast.KindToken {
			out = append(out, n.Tok.Text)
		}
		return true
	})
	return out
}

// checkDifferential compares the walker's condition-filtered view against
// brute-force projection under every configuration of the variables.
func checkDifferential(t *testing.T, s *cond.Space, root *ast.Node, vars []string) {
	t.Helper()
	for _, assign := range enumerate(vars) {
		got := strings.Join(walkerTokens(s, root, assign), " ")
		want := strings.Join(projectTokens(s, root, assign), " ")
		if got != want {
			t.Fatalf("config %v:\nwalker:  %q\nproject: %q", assign, got, want)
		}
	}
}

func TestWalkerDeeplyNestedChoices(t *testing.T) {
	s := cond.NewSpace(cond.ModeBDD)
	// A 12-deep tower of binary choices: each level splits on its own
	// variable, the taken branch descends, the other holds a marker leaf.
	const depth = 12
	var vars []string
	inner := leaf("bottom")
	for i := depth - 1; i >= 0; i-- {
		v := fmt.Sprintf("V%02d", i)
		vars = append(vars, v)
		inner = ast.NewChoice(
			ast.Choice{Cond: s.Var(v), Node: ast.New("Level", inner)},
			ast.Choice{Cond: s.Not(s.Var(v)), Node: leaf("stop" + v)},
		)
	}
	root := ast.New("Unit", inner)

	// The bottom leaf's condition must be the conjunction of every level.
	var bottomCond cond.Cond
	found := false
	w := &Walker{Space: s}
	w.Walk(root, s.True(), func(n *ast.Node, c cond.Cond) bool {
		if n.Text() == "bottom" {
			bottomCond, found = c, true
		}
		return true
	})
	if !found {
		t.Fatal("bottom leaf not visited")
	}
	want := s.True()
	for _, v := range vars {
		want = s.And(want, s.Var(v))
	}
	if !s.Equal(bottomCond, want) {
		t.Errorf("bottom cond = %s, want %s", s.String(bottomCond), s.String(want))
	}

	// Differential over a sample of configurations (2^12 is too many to
	// enumerate cheaply; all-on, all-off, and random assignments suffice).
	rng := rand.New(rand.NewSource(7))
	configs := []map[string]bool{{}, {}}
	for _, v := range vars {
		configs[0][v] = true
		configs[1][v] = false
	}
	for i := 0; i < 32; i++ {
		a := make(map[string]bool, len(vars))
		for _, v := range vars {
			a[v] = rng.Intn(2) == 0
		}
		configs = append(configs, a)
	}
	for _, a := range configs {
		got := strings.Join(walkerTokens(s, root, a), " ")
		wantToks := strings.Join(projectTokens(s, root, a), " ")
		if got != wantToks {
			t.Fatalf("config %v: walker %q, project %q", a, got, wantToks)
		}
	}
}

func TestWalkerSharedChoiceNodes(t *testing.T) {
	s := cond.NewSpace(cond.ModeBDD)
	a, b := s.Var("A"), s.Var("B")
	// One subtree shared by both alternatives of an outer choice — the DAG
	// shape subparser merging produces. The walker must visit it once per
	// path, under each path's condition.
	shared := ast.NewChoice(
		ast.Choice{Cond: b, Node: leaf("with_b")},
		ast.Choice{Cond: s.Not(b), Node: leaf("without_b")},
	)
	root := ast.New("Unit", ast.NewChoice(
		ast.Choice{Cond: a, Node: ast.New("Left", leaf("left"), shared)},
		ast.Choice{Cond: s.Not(a), Node: ast.New("Right", leaf("right"), shared)},
	))

	visits := 0
	conds := []cond.Cond{}
	w := &Walker{Space: s}
	w.Walk(root, s.True(), func(n *ast.Node, c cond.Cond) bool {
		if n == shared {
			visits++
			conds = append(conds, c)
		}
		return true
	})
	if visits != 2 {
		t.Fatalf("shared node visited %d times, want 2 (once per path)", visits)
	}
	// The two path conditions are complementary: their union is True.
	if union := s.Or(conds[0], conds[1]); !s.IsTrue(union) {
		t.Errorf("union of path conditions = %s, want 1", s.String(union))
	}
	checkDifferential(t, s, root, []string{"A", "B"})
}

func TestWalkerErrorOpacity(t *testing.T) {
	s := cond.NewSpace(cond.ModeBDD)
	a := s.Var("A")
	// An _Error region under one alternative: nothing inside it may be
	// visited, and the skip is counted.
	root := ast.New("Unit",
		ast.NewChoice(
			ast.Choice{Cond: a, Node: leaf("ok")},
			ast.Choice{Cond: s.Not(a), Node: ast.Error("parse abandoned")},
		),
		leaf("after"),
	)
	w := &Walker{Space: s}
	var seen []string
	w.Walk(root, s.True(), func(n *ast.Node, c cond.Cond) bool {
		if n.Kind == ast.KindToken {
			seen = append(seen, n.Tok.Text)
		}
		return true
	})
	if w.SkippedErrors != 1 {
		t.Errorf("SkippedErrors = %d, want 1", w.SkippedErrors)
	}
	for _, txt := range seen {
		if txt == "parse abandoned" {
			t.Error("walker descended into an _Error region")
		}
	}
	if len(seen) != 2 { // "ok" and "after"
		t.Errorf("visited leaves %v, want [ok after]", seen)
	}
}

func TestWalkerPrunesInfeasibleAlternatives(t *testing.T) {
	s := cond.NewSpace(cond.ModeBDD)
	a := s.Var("A")
	// Under path condition A, the !A alternative must not be entered.
	inner := ast.NewChoice(
		ast.Choice{Cond: a, Node: leaf("feasible")},
		ast.Choice{Cond: s.Not(a), Node: leaf("infeasible")},
	)
	root := ast.NewChoice(ast.Choice{Cond: a, Node: inner})
	var seen []string
	w := &Walker{Space: s}
	w.Walk(root, s.True(), func(n *ast.Node, c cond.Cond) bool {
		if n.Kind == ast.KindToken {
			seen = append(seen, n.Tok.Text)
		}
		return true
	})
	if len(seen) != 1 || seen[0] != "feasible" {
		t.Errorf("visited %v, want [feasible]", seen)
	}
}

// TestWalkerDifferentialRandomTrees builds random choice DAGs (nested
// choices with disjoint alternative conditions, shared subtrees, occasional
// error nodes) and checks the walker against per-configuration projection
// under every assignment.
func TestWalkerDifferentialRandomTrees(t *testing.T) {
	vars := []string{"A", "B", "C", "D"}
	for seed := int64(0); seed < 20; seed++ {
		s := cond.NewSpace(cond.ModeBDD)
		rng := rand.New(rand.NewSource(seed))
		nextLeaf := 0
		var build func(depth int) *ast.Node
		build = func(depth int) *ast.Node {
			if depth <= 0 || rng.Intn(3) == 0 {
				nextLeaf++
				return leaf(fmt.Sprintf("t%d", nextLeaf))
			}
			switch rng.Intn(4) {
			case 0: // binary choice on a fresh variable, disjoint alts
				v := s.Var(vars[rng.Intn(len(vars))])
				return ast.NewChoice(
					ast.Choice{Cond: v, Node: build(depth - 1)},
					ast.Choice{Cond: s.Not(v), Node: build(depth - 1)},
				)
			case 1: // shared subtree under complementary alternatives
				v := s.Var(vars[rng.Intn(len(vars))])
				shared := build(depth - 1)
				return ast.NewChoice(
					ast.Choice{Cond: v, Node: ast.New("L", build(depth-1), shared)},
					ast.Choice{Cond: s.Not(v), Node: ast.New("R", shared)},
				)
			case 2: // interior node
				return ast.New("N", build(depth-1), build(depth-1))
			default: // list with an occasional absent alternative
				v := s.Var(vars[rng.Intn(len(vars))])
				return ast.List("Items",
					build(depth-1),
					ast.NewChoice(ast.Choice{Cond: v, Node: build(depth - 1)}),
				)
			}
		}
		root := ast.New("Unit", build(4))
		checkDifferential(t, s, root, vars)
	}
}
