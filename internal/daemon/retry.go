package daemon

import (
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// ErrBreakerOpen is returned (wrapped) when the client's circuit breaker is
// open: the daemon has failed enough consecutive requests that further
// attempts are pointless until the cooldown expires. Callers treat it like
// any transport error — fall back to the in-process path — but it returns
// without touching the network.
var ErrBreakerOpen = errors.New("daemon: circuit breaker open")

// httpStatusError carries a non-200 response through the retry classifier:
// the status decides retryability and Retry-After bounds the backoff below.
type httpStatusError struct {
	status     int
	retryAfter time.Duration // 0: no header
	msg        string
}

func (e *httpStatusError) Error() string {
	if e.msg != "" {
		return fmt.Sprintf("daemon: %s", e.msg)
	}
	return fmt.Sprintf("daemon: HTTP %d", e.status)
}

// retryable reports whether the failure is worth retrying. Requests are pure
// (the daemon computes deterministic results and its caches are idempotent),
// so every transport-level failure — connection reset, truncated body,
// timeout — is safe to retry. Among HTTP statuses, overload signals (429,
// 503) and transient 5xx retry; other 4xx are the client's own fault and
// repeat identically.
func retryable(err error) bool {
	var se *httpStatusError
	if errors.As(err, &se) {
		return se.status == http.StatusTooManyRequests || se.status >= 500
	}
	return true
}

// shedStatus reports whether the failure is the server shedding load (it
// asked us to back off rather than failing to answer).
func shedStatus(err error) bool {
	var se *httpStatusError
	if errors.As(err, &se) {
		return se.status == http.StatusTooManyRequests || se.status == http.StatusServiceUnavailable
	}
	return false
}

// parseRetryAfter reads a Retry-After header (delay-seconds form only; the
// HTTP-date form is overkill for a local daemon).
func parseRetryAfter(h http.Header) time.Duration {
	v := h.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// backoff computes the attempt'th retry delay: exponential from base, capped
// at max, with deterministic jitter in [50%,100%] derived from (seed, key,
// attempt) — the same FNV+finalizer construction as the fault injector, so a
// chaos run's timing is a pure function of its seeds. The murmur3 fmix64
// finalizer matters: FNV-1a alone barely moves the high bits between
// consecutive attempts, which would collapse the jitter spread.
func backoff(base, max time.Duration, seed int64, key string, attempt int) time.Duration {
	d := base << uint(attempt)
	if d <= 0 || d > max {
		d = max
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d\x00%s\x00%d", seed, key, attempt)
	sum := h.Sum64()
	sum ^= sum >> 33
	sum *= 0xff51afd7ed558ccd
	sum ^= sum >> 33
	sum *= 0xc4ceb9fe1a85ec53
	sum ^= sum >> 33
	frac := float64(sum>>11) / float64(1<<53) // [0,1)
	return time.Duration(float64(d) * (0.5 + 0.5*frac))
}

// breakerState is the circuit breaker's position.
type breakerState int

const (
	breakerClosed   breakerState = iota // normal: requests flow
	breakerOpen                         // failing: requests fast-fail
	breakerHalfOpen                     // cooling down: one probe in flight
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("breakerState(%d)", int(s))
}

// breaker is a consecutive-failure circuit breaker. threshold failures in a
// row open it; after cooldown a single probe is admitted (half-open); the
// probe's outcome closes it again or re-opens for another cooldown. A nil
// breaker is always closed (disabled).
type breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injectable clock for tests

	mu       sync.Mutex
	state    breakerState
	fails    int       // consecutive failures while closed
	openedAt time.Time // when the breaker last opened
	opens    int64     // cumulative closed/half-open → open transitions
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	if threshold <= 0 {
		return nil
	}
	if cooldown <= 0 {
		cooldown = 10 * time.Second
	}
	return &breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// allow reports whether a request may proceed. When the cooldown has expired
// it admits exactly one probe, moving to half-open; concurrent requests keep
// fast-failing until the probe resolves.
func (b *breaker) allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Sub(b.openedAt) >= b.cooldown {
			b.state = breakerHalfOpen
			return true // this caller is the probe
		}
		return false
	case breakerHalfOpen:
		return false // a probe is already in flight
	}
	return true
}

// success records a request that completed; it closes the breaker from any
// state and clears the failure streak.
func (b *breaker) success() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = breakerClosed
	b.fails = 0
}

// failure records a failed request; reaching the threshold — or failing the
// half-open probe — opens the breaker for another cooldown.
func (b *breaker) failure() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		b.open()
	case breakerClosed:
		b.fails++
		if b.fails >= b.threshold {
			b.open()
		}
	}
}

// open transitions to open (caller holds the lock).
func (b *breaker) open() {
	b.state = breakerOpen
	b.openedAt = b.now()
	b.fails = 0
	b.opens++
}

// snapshot returns the state name and cumulative open count.
func (b *breaker) snapshot() (string, int64) {
	if b == nil {
		return "disabled", 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state.String(), b.opens
}
