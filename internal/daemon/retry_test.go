package daemon

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

// rtFunc adapts a function to http.RoundTripper.
type rtFunc func(*http.Request) (*http.Response, error)

func (f rtFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }

func jsonResponse(status int, body string, hdr map[string]string) *http.Response {
	h := make(http.Header)
	h.Set("Content-Type", "application/json")
	for k, v := range hdr {
		h.Set(k, v)
	}
	return &http.Response{
		StatusCode:    status,
		Header:        h,
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
	}
}

// stubClient builds a client whose transport is rt and whose retry sleeps
// are recorded instead of slept.
func stubClient(rt http.RoundTripper, opts ClientOptions) (*Client, *[]time.Duration) {
	opts.Warn = io.Discard
	opts.WrapTransport = func(http.RoundTripper) http.RoundTripper { return rt }
	c := newClient("127.0.0.1:1", opts)
	var slept []time.Duration
	c.sleep = func(ctx context.Context, d time.Duration) error {
		slept = append(slept, d)
		return nil
	}
	return c, &slept
}

func TestBackoffDeterministicAndBounded(t *testing.T) {
	base, max := 100*time.Millisecond, 5*time.Second
	for attempt := 0; attempt < 8; attempt++ {
		d1 := backoff(base, max, 7, "/v1/lint", attempt)
		d2 := backoff(base, max, 7, "/v1/lint", attempt)
		if d1 != d2 {
			t.Fatalf("attempt %d: backoff not deterministic: %v vs %v", attempt, d1, d2)
		}
		ceil := base << uint(attempt)
		if ceil <= 0 || ceil > max {
			ceil = max
		}
		if d1 < ceil/2 || d1 > ceil {
			t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, d1, ceil/2, ceil)
		}
	}
	if backoff(base, max, 7, "k", 2) == backoff(base, max, 8, "k", 2) {
		t.Error("different seeds produced identical jitter")
	}
}

func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{syscall.ECONNRESET, true},
		{io.ErrUnexpectedEOF, true},
		{&httpStatusError{status: 429}, true},
		{&httpStatusError{status: 503}, true},
		{&httpStatusError{status: 500}, true},
		{&httpStatusError{status: 400}, false},
		{&httpStatusError{status: 404}, false},
	}
	for _, tc := range cases {
		if got := retryable(tc.err); got != tc.want {
			t.Errorf("retryable(%v) = %v; want %v", tc.err, got, tc.want)
		}
	}
}

func TestClientRetriesTransportErrors(t *testing.T) {
	var calls atomic.Int64
	rt := rtFunc(func(r *http.Request) (*http.Response, error) {
		if calls.Add(1) <= 2 {
			return nil, fmt.Errorf("dial: %w", syscall.ECONNRESET)
		}
		return jsonResponse(200, `{"version":"`+Version+`","counters":{}}`, nil), nil
	})
	c, slept := stubClient(rt, ClientOptions{})
	resp, err := c.Stats()
	if err != nil {
		t.Fatalf("Stats after 2 transient failures: %v", err)
	}
	if resp.Version != Version {
		t.Fatalf("resp = %+v", resp)
	}
	if calls.Load() != 3 {
		t.Fatalf("transport called %d times; want 3", calls.Load())
	}
	m := c.Metrics()
	if m.Attempts != 3 || m.Retries != 2 {
		t.Fatalf("metrics = %+v; want 3 attempts, 2 retries", m)
	}
	if len(*slept) != 2 {
		t.Fatalf("%d backoff sleeps; want 2", len(*slept))
	}
}

func TestClientHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	rt := rtFunc(func(r *http.Request) (*http.Response, error) {
		if calls.Add(1) <= 2 {
			return jsonResponse(429, `{"error":"server overloaded"}`, map[string]string{"Retry-After": "2"}), nil
		}
		return jsonResponse(200, `{"version":"`+Version+`","counters":{}}`, nil), nil
	})
	c, slept := stubClient(rt, ClientOptions{BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond})
	if _, err := c.Stats(); err != nil {
		t.Fatalf("Stats after sheds: %v", err)
	}
	for i, d := range *slept {
		if d < 2*time.Second {
			t.Errorf("sleep %d = %v; Retry-After demanded >= 2s", i, d)
		}
	}
	if m := c.Metrics(); m.Sheds != 2 {
		t.Fatalf("sheds = %d; want 2", m.Sheds)
	}
}

func TestClientDoesNotRetryClientErrors(t *testing.T) {
	var calls atomic.Int64
	rt := rtFunc(func(r *http.Request) (*http.Response, error) {
		calls.Add(1)
		return jsonResponse(400, `{"error":"unknown mode"}`, nil), nil
	})
	c, _ := stubClient(rt, ClientOptions{})
	_, err := c.Stats()
	if err == nil || !strings.Contains(err.Error(), "unknown mode") {
		t.Fatalf("err = %v", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("400 retried: %d calls", calls.Load())
	}
}

func TestClientSendsDeadlineHeader(t *testing.T) {
	var header atomic.Value
	rt := rtFunc(func(r *http.Request) (*http.Response, error) {
		header.Store(r.Header.Get(DeadlineHeader))
		return jsonResponse(200, `{"version":"`+Version+`","counters":{}}`, nil), nil
	})
	c, _ := stubClient(rt, ClientOptions{RequestTimeout: 10 * time.Second})
	if _, err := c.Stats(); err != nil {
		t.Fatal(err)
	}
	hv, _ := header.Load().(string)
	if hv == "" {
		t.Fatal("request carried no deadline header")
	}
}

func TestHealthSingleAttempt(t *testing.T) {
	var calls atomic.Int64
	rt := rtFunc(func(r *http.Request) (*http.Response, error) {
		calls.Add(1)
		return nil, fmt.Errorf("dial: %w", syscall.ECONNREFUSED)
	})
	c, _ := stubClient(rt, ClientOptions{})
	if _, err := c.Health(); err == nil {
		t.Fatal("Health succeeded against a dead transport")
	}
	if calls.Load() != 1 {
		t.Fatalf("liveness probe made %d attempts; want exactly 1", calls.Load())
	}
}

// TestBreakerLifecycle drives the full closed → open → half-open → closed
// transition and checks fast-fails never touch the transport.
func TestBreakerLifecycle(t *testing.T) {
	var calls atomic.Int64
	var failing atomic.Bool
	failing.Store(true)
	rt := rtFunc(func(r *http.Request) (*http.Response, error) {
		calls.Add(1)
		if failing.Load() {
			return nil, fmt.Errorf("dial: %w", syscall.ECONNRESET)
		}
		return jsonResponse(200, `{"version":"`+Version+`","counters":{}}`, nil), nil
	})
	c, _ := stubClient(rt, ClientOptions{
		Retries:          -1, // isolate the breaker from the retry loop
		BreakerThreshold: 2,
		BreakerCooldown:  10 * time.Second,
	})
	now := time.Unix(1000, 0)
	c.brk.now = func() time.Time { return now }

	// Two consecutive failures open the breaker.
	for i := 0; i < 2; i++ {
		if _, err := c.Stats(); err == nil {
			t.Fatal("Stats succeeded against a failing transport")
		}
	}
	if state, opens := c.brk.snapshot(); state != "open" || opens != 1 {
		t.Fatalf("breaker = %s/%d opens; want open/1", state, opens)
	}

	// While open: fast-fail with ErrBreakerOpen, no network traffic.
	before := calls.Load()
	_, err := c.Stats()
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("err = %v; want ErrBreakerOpen", err)
	}
	if calls.Load() != before {
		t.Fatal("open breaker let a request reach the transport")
	}
	if m := c.Metrics(); m.FastFails != 1 || m.BreakerState != "open" {
		t.Fatalf("metrics = %+v", m)
	}

	// Cooldown expires; a failing probe re-opens.
	now = now.Add(11 * time.Second)
	if _, err := c.Stats(); err == nil {
		t.Fatal("failing probe succeeded")
	}
	if state, opens := c.brk.snapshot(); state != "open" || opens != 2 {
		t.Fatalf("after failed probe: %s/%d; want open/2", state, opens)
	}

	// Next cooldown: the daemon has recovered, the probe closes the breaker.
	now = now.Add(11 * time.Second)
	failing.Store(false)
	if _, err := c.Stats(); err != nil {
		t.Fatalf("recovered probe failed: %v", err)
	}
	if state, _ := c.brk.snapshot(); state != "closed" {
		t.Fatalf("after recovered probe: %s; want closed", state)
	}
	// And traffic flows normally again.
	if _, err := c.Stats(); err != nil {
		t.Fatalf("post-recovery request failed: %v", err)
	}
	if m := c.Metrics(); m.BreakerOpens != 2 {
		t.Fatalf("cumulative opens = %d; want 2", m.BreakerOpens)
	}
}

// TestBreakerHalfOpenSingleProbe pins the half-open contract: exactly one
// probe is admitted; concurrent calls keep fast-failing until it resolves.
func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	b := newBreaker(1, time.Second)
	now := time.Unix(0, 0)
	b.now = func() time.Time { return now }
	b.failure() // threshold 1: open immediately
	if b.allow() {
		t.Fatal("open breaker allowed a request inside cooldown")
	}
	now = now.Add(2 * time.Second)
	if !b.allow() {
		t.Fatal("cooldown expired but no probe admitted")
	}
	if b.allow() {
		t.Fatal("second probe admitted while the first is in flight")
	}
	b.success()
	if !b.allow() {
		t.Fatal("breaker not closed after a successful probe")
	}
}
