package daemon

import "flag"

// FlagClientOptions registers the thin-client resilience flags on fs and
// returns the options they fill, for the -daemon CLIs (superc, clint,
// cstats). Zero values keep the client defaults.
func FlagClientOptions(fs *flag.FlagSet) *ClientOptions {
	o := &ClientOptions{}
	fs.DurationVar(&o.RequestTimeout, "daemon-timeout", 0,
		"overall per-operation deadline for -daemon requests, retries included (0: 2m, negative: none)")
	fs.IntVar(&o.Retries, "daemon-retries", 0,
		"retries per failed -daemon request; safe, requests are pure (0: 3, negative: none)")
	fs.IntVar(&o.BreakerThreshold, "daemon-breaker", 0,
		"consecutive -daemon failures that open the client circuit breaker (0: 5, negative: disabled)")
	return o
}
