package daemon

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestAdmissionFastPathAndShed(t *testing.T) {
	a := newAdmission(1, 0, 10*time.Millisecond)
	release, ok := a.acquire(context.Background())
	if !ok {
		t.Fatal("empty valve shed the first request")
	}
	if a.ready() {
		t.Error("saturated valve (no queue) reports ready")
	}
	if _, ok := a.acquire(context.Background()); ok {
		t.Fatal("second request admitted past maxInFlight=1 with no queue")
	}
	release()
	if !a.ready() {
		t.Error("released valve not ready")
	}
	if a.admitted.Load() != 1 || a.shed.Load() != 1 {
		t.Fatalf("admitted=%d shed=%d; want 1, 1", a.admitted.Load(), a.shed.Load())
	}
}

func TestAdmissionQueueHandoff(t *testing.T) {
	a := newAdmission(1, 1, time.Minute)
	release, ok := a.acquire(context.Background())
	if !ok {
		t.Fatal("first acquire failed")
	}
	got := make(chan bool)
	go func() {
		r2, ok := a.acquire(context.Background())
		if ok {
			defer r2()
		}
		got <- ok
	}()
	// Wait until the second request is queued, then free the slot.
	for i := 0; a.queued.Load() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	if a.queued.Load() != 1 {
		t.Fatal("second request never queued")
	}
	release()
	if !<-got {
		t.Fatal("queued request shed despite a freed slot")
	}
	if a.queuedTotal.Load() != 1 {
		t.Fatalf("queuedTotal = %d; want 1", a.queuedTotal.Load())
	}
}

func TestAdmissionQueueWaitExpires(t *testing.T) {
	a := newAdmission(1, 1, 5*time.Millisecond)
	release, _ := a.acquire(context.Background())
	defer release()
	start := time.Now()
	if _, ok := a.acquire(context.Background()); ok {
		t.Fatal("request admitted while the only slot was held")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("queue wait far exceeded its bound")
	}
}

func TestAdmissionCallerDeadline(t *testing.T) {
	a := newAdmission(1, 1, time.Minute)
	release, _ := a.acquire(context.Background())
	defer release()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, ok := a.acquire(ctx); ok {
		t.Fatal("request admitted past its own deadline")
	}
}

func TestAdmissionDrain(t *testing.T) {
	a := newAdmission(4, 4, time.Second)
	release, ok := a.acquire(context.Background())
	if !ok {
		t.Fatal("acquire before drain failed")
	}
	a.drain()
	if a.ready() {
		t.Error("draining valve reports ready")
	}
	if _, ok := a.acquire(context.Background()); ok {
		t.Fatal("request admitted while draining")
	}
	release() // in-flight work finishes normally
}

// postLint sends a raw lint request so status codes and headers are visible
// without the client's retry layer.
func postLint(t *testing.T, url string, files []string) *http.Response {
	t.Helper()
	body, _ := json.Marshal(LintRequest{Files: files, IncludePaths: []string{"inc"}, Mode: "bdd"})
	resp, err := http.Post(url+"/v1/lint", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/lint: %v", err)
	}
	return resp
}

// TestServerShedsWith429 saturates a MaxInFlight=1, no-queue server and
// checks the overload surface: 429 with Retry-After, shed counter, readiness
// flipped false, and the in-flight request unharmed.
func TestServerShedsWith429(t *testing.T) {
	s := NewServer(Config{Root: writeTestTree(t), MaxInFlight: 1, QueueDepth: -1})
	block := make(chan struct{})
	admitted := make(chan struct{}, 8)
	s.afterAdmit = func() {
		admitted <- struct{}{}
		<-block
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	first := make(chan *http.Response, 1)
	go func() { first <- postLint(t, ts.URL, []string{"a.c"}) }()
	<-admitted // the slot is held

	resp := postLint(t, ts.URL, []string{"a.c"})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated POST = %d; want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 carries no Retry-After")
	}

	// Readiness is down while saturated; liveness stays up.
	var h HealthResponse
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(hr.Body).Decode(&h)
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK || !h.OK || h.Ready {
		t.Fatalf("saturated healthz = %d %+v; want 200, ok, not ready", hr.StatusCode, h)
	}

	close(block)
	fr := <-first
	defer fr.Body.Close()
	if fr.StatusCode != http.StatusOK {
		t.Fatalf("in-flight request got %d after a shed; want 200", fr.StatusCode)
	}
	if got := s.counters()["admission_shed"]; got != 1 {
		t.Errorf("admission_shed = %d; want 1", got)
	}
}

// TestGracefulDrain proves the drain contract: an in-flight request runs to
// completion and returns a full response, while the readiness probe reports
// not-ready and new requests are shed with 503.
func TestGracefulDrain(t *testing.T) {
	s := NewServer(Config{Root: writeTestTree(t)})
	block := make(chan struct{})
	admitted := make(chan struct{}, 8)
	s.afterAdmit = func() {
		admitted <- struct{}{}
		<-block
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	first := make(chan *http.Response, 1)
	go func() { first <- postLint(t, ts.URL, []string{"a.c"}) }()
	<-admitted
	s.Drain()

	// New work is shed with 503 (drain, not overload).
	resp := postLint(t, ts.URL, []string{"a.c"})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST during drain = %d; want 503", resp.StatusCode)
	}

	// The readiness probe fails; plain liveness still answers 200.
	rr, err := http.Get(ts.URL + "/healthz?probe=readiness")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, rr.Body)
	rr.Body.Close()
	if rr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readiness probe during drain = %d; want 503", rr.StatusCode)
	}
	lr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, lr.Body)
	lr.Body.Close()
	if lr.StatusCode != http.StatusOK {
		t.Fatalf("liveness probe during drain = %d; want 200", lr.StatusCode)
	}

	// The in-flight request completes with a full, valid response.
	close(block)
	fr := <-first
	defer fr.Body.Close()
	if fr.StatusCode != http.StatusOK {
		t.Fatalf("in-flight request during drain = %d; want 200", fr.StatusCode)
	}
	var lintResp LintResponse
	if err := json.NewDecoder(fr.Body).Decode(&lintResp); err != nil {
		t.Fatalf("in-flight response torn by drain: %v", err)
	}
	if len(lintResp.Units) != 1 || lintResp.Units[0].Failed {
		t.Fatalf("in-flight response incomplete: %+v", lintResp)
	}
	if got := s.counters()["draining"]; got != 1 {
		t.Errorf("draining counter = %d; want 1", got)
	}
}

// TestDeadlineHeaderPropagates proves the client deadline header becomes the
// handler's context deadline — the path into every unit's guard budget.
func TestDeadlineHeaderPropagates(t *testing.T) {
	s := NewServer(Config{Root: t.TempDir()})
	var deadline time.Time
	var has bool
	h := s.admit(func(w http.ResponseWriter, r *http.Request) {
		deadline, has = r.Context().Deadline()
	})

	req := httptest.NewRequest(http.MethodPost, "/v1/lint", strings.NewReader("{}"))
	req.Header.Set(DeadlineHeader, "5000")
	h(httptest.NewRecorder(), req)
	if !has {
		t.Fatal("deadline header did not reach the handler context")
	}
	if until := time.Until(deadline); until <= 0 || until > 5*time.Second {
		t.Fatalf("context deadline %v away; want within (0, 5s]", until)
	}

	has = false
	h(httptest.NewRecorder(), httptest.NewRequest(http.MethodPost, "/v1/lint", strings.NewReader("{}")))
	if has {
		t.Fatal("handler context has a deadline without the header")
	}
}
