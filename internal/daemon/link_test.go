package daemon

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/link"
	"repro/internal/store"
)

// writeLinkTree populates a daemon root with a two-unit corpus seeding all
// three link-finding families (the same shape as examples/link).
func writeLinkTree(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	files := map[string]string{
		"proto.h": `#ifndef PROTO_H
#define PROTO_H
extern int buffer_size;
int checksum(int v);
#endif
`,
		"a.c": `#include "proto.h"
int init_table(void) { return 0; }
int process(int v) {
  log_event();
  return checksum(v) + buffer_size;
}
`,
		"b.c": `#ifdef CONFIG_LARGE_BUFFERS
long buffer_size = 4096;
#else
int buffer_size = 512;
#endif
#ifdef CONFIG_LOGGING
void log_event(void) {}
#endif
#ifdef CONFIG_FASTBOOT
int init_table(void) { return 1; }
#endif
int checksum(int v) { return v ^ buffer_size; }
`,
	}
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(root, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func linkReq() LinkRequest {
	return LinkRequest{
		Files:        []string{"a.c", "b.c"},
		IncludePaths: []string{"."},
		Mode:         "bdd",
	}
}

// linkInProcess mirrors cmd/clint's in-process -link path over the same
// tree: per-unit extraction, then one corpus-wide join.
func linkInProcess(t *testing.T, root string, files []string) []LinkFinding {
	t.Helper()
	facts := make([]*link.Facts, 0, len(files))
	for _, file := range files {
		tool := core.New(core.Config{FS: rootFS{root}, IncludePaths: []string{"."}})
		res, err := tool.ParseFile(file)
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		facts = append(facts, analysis.ExtractLinkFacts(&analysis.Unit{
			File:  file,
			Space: tool.Space(),
			AST:   res.AST,
			PP:    res.Unit,
		}))
	}
	r := link.Link(facts, nil)
	out := make([]LinkFinding, len(r.Findings))
	for i, f := range r.Findings {
		out[i] = FromLink(f)
	}
	return out
}

func TestLinkDifferential(t *testing.T) {
	root := writeLinkTree(t)
	c := startServer(t, NewServer(Config{Root: root}))

	req := linkReq()
	req.Jobs = 1
	r1, err := c.Link(&req)
	if err != nil {
		t.Fatal(err)
	}
	req8 := linkReq()
	req8.Jobs = 8
	req8.ParseWorkers = 4
	r8, err := c.Link(&req8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r8) {
		t.Errorf("link responses differ between jobs=1 and jobs=8/parse-workers=4:\n%+v\n%+v", r1, r8)
	}

	fams := map[string]bool{}
	for _, f := range r1.Findings {
		fams[f.Family] = true
		if !f.WitnessVerified {
			t.Errorf("unverified witness: %+v", f)
		}
	}
	for _, want := range []string{"undef-ref", "multidef", "type-mismatch"} {
		if !fams[want] {
			t.Errorf("family %s missing from findings: %+v", want, r1.Findings)
		}
	}
	if r1.Units != 2 || len(r1.Failed) != 0 {
		t.Errorf("units = %d, failed = %+v; want 2 clean units", r1.Units, r1.Failed)
	}

	// Compare against a direct in-process run through the wire encoding (the
	// canonical byte-identity claim clients rely on).
	got, err := json.Marshal(r1.Findings)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(linkInProcess(t, root, req.Files))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("daemon findings differ from in-process link:\n%s\n%s", got, want)
	}
}

func TestLinkFailedUnits(t *testing.T) {
	root := writeLinkTree(t)
	c := startServer(t, NewServer(Config{Root: root}))

	// The front end is error-tolerant (#error and stray directives still
	// yield an AST), so the failed-unit path is an unreadable file.
	req := linkReq()
	req.Files = []string{"a.c", "b.c", "missing.c"}
	resp, err := c.Link(&req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Units != 2 {
		t.Errorf("units = %d, want 2 (failed units must not join)", resp.Units)
	}
	if len(resp.Failed) != 1 || resp.Failed[0].File != "missing.c" || resp.Failed[0].Errors == "" {
		t.Fatalf("failed = %+v, want missing.c with error text", resp.Failed)
	}

	// The good units still link: same findings as the clean two-unit run.
	clean, err := c.Link(&LinkRequest{Files: []string{"a.c", "b.c"}, IncludePaths: []string{"."}, Mode: "bdd"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resp.Findings, clean.Findings) {
		t.Errorf("findings changed when failed units joined the request:\n%+v\n%+v", resp.Findings, clean.Findings)
	}
}

func TestLinkFactsAcrossRestart(t *testing.T) {
	root := writeLinkTree(t)
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := startServer(t, NewServer(Config{Root: root, Store: st}))
	req := linkReq()

	cold, err := c.Link(&req)
	if err != nil {
		t.Fatal(err)
	}
	if cold.FactsHits != 0 || cold.FactsMisses != 2 {
		t.Fatalf("cold facts: %d hits, %d misses", cold.FactsHits, cold.FactsMisses)
	}

	// Same server, second request: both units served from persisted facts,
	// findings byte-identical.
	warm, err := c.Link(&req)
	if err != nil {
		t.Fatal(err)
	}
	if warm.FactsHits != 2 || warm.FactsMisses != 0 {
		t.Fatalf("warm facts: %d hits, %d misses", warm.FactsHits, warm.FactsMisses)
	}
	if !reflect.DeepEqual(cold.Findings, warm.Findings) {
		t.Error("facts-served findings differ from computed findings")
	}

	// Restarted daemon over the same store directory: facts survive the
	// process and still produce identical findings.
	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c2 := startServer(t, NewServer(Config{Root: root, Store: st2}))
	restart, err := c2.Link(&req)
	if err != nil {
		t.Fatal(err)
	}
	if restart.FactsHits != 2 || restart.FactsMisses != 0 {
		t.Fatalf("restart facts: %d hits, %d misses", restart.FactsHits, restart.FactsMisses)
	}
	if !reflect.DeepEqual(cold.Findings, restart.Findings) {
		t.Error("findings served across a restart differ from the original run")
	}

	// NoFacts bypasses the cache entirely but changes nothing observable.
	nofacts := linkReq()
	nofacts.NoFacts = true
	r, err := c2.Link(&nofacts)
	if err != nil {
		t.Fatal(err)
	}
	if r.FactsHits != 0 {
		t.Errorf("no-facts request hit the cache: %d hits", r.FactsHits)
	}
	if !reflect.DeepEqual(cold.Findings, r.Findings) {
		t.Error("no-facts findings differ from cached findings")
	}

	// Editing a root file invalidates that unit's facts (content-hashed key)
	// while the untouched unit still hits.
	a := filepath.Join(root, "a.c")
	data, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(a, append(data, []byte("/* touched */\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	edited, err := c2.Link(&req)
	if err != nil {
		t.Fatal(err)
	}
	if edited.FactsHits != 1 || edited.FactsMisses != 1 {
		t.Errorf("after edit: %d hits, %d misses; want 1/1", edited.FactsHits, edited.FactsMisses)
	}

	// A different fingerprint (new defines) must not reuse stale facts.
	defreq := linkReq()
	defreq.Defines = map[string]string{"CONFIG_LOGGING": "1"}
	d, err := c2.Link(&defreq)
	if err != nil {
		t.Fatal(err)
	}
	if d.FactsHits != 0 {
		t.Errorf("facts reused across a defines change: %d hits", d.FactsHits)
	}
	for _, f := range d.Findings {
		if f.Family == "undef-ref" && f.Symbol == "log_event" {
			t.Errorf("log_event still undefined with CONFIG_LOGGING pinned: %+v", f)
		}
	}
}
