package daemon

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/analysis/passes"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/fmlr"
	"repro/internal/guard"
	"repro/internal/harness"
	"repro/internal/store"
)

// startServer runs s on an httptest TCP listener and returns a protocol
// client dialed at it.
func startServer(t *testing.T, s *Server) *Client {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	c, err := Dial(strings.TrimPrefix(ts.URL, "http://"))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	return c
}

// writeTestTree populates a daemon root with small variational C files that
// trigger both parse-time conditionals and analysis diagnostics.
func writeTestTree(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	files := map[string]string{
		"inc/config.h": `#ifndef CONFIG_H
#define CONFIG_H
#ifdef CONFIG_WIDE
typedef long cell_t;
#else
typedef int cell_t;
#endif
#endif
`,
		"a.c": `#include "config.h"
cell_t table[4];
int first(void) {
#ifdef CONFIG_FAST
  return 1;
#else
  return 2;
#endif
}
`,
		"b.c": `#include "config.h"
#ifdef CONFIG_DEAD
#if 0
int never(void) { return 0; }
#endif
#endif
cell_t second(void) { return (cell_t)3; }
`,
		"broken.c": "#error always broken\n",
	}
	for name, src := range files {
		path := filepath.Join(root, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestHealthVersionGate(t *testing.T) {
	c := startServer(t, NewServer(Config{Root: t.TempDir()}))
	h, err := c.Health()
	if err != nil {
		t.Fatal(err)
	}
	if !h.OK || h.Version != Version {
		t.Fatalf("health = %+v", h)
	}
}

func TestClamp(t *testing.T) {
	caps := guard.Limits{Wall: time.Second, Tokens: 1000}
	got := Clamp(guard.Limits{}, caps)
	if got.Wall != time.Second || got.Tokens != 1000 {
		t.Fatalf("unlimited request not capped: %+v", got)
	}
	got = Clamp(guard.Limits{Wall: time.Minute, Tokens: 500, Hoist: 7}, caps)
	if got.Wall != time.Second {
		t.Fatalf("over-cap wall not clamped: %v", got.Wall)
	}
	if got.Tokens != 500 {
		t.Fatalf("under-cap tokens changed: %d", got.Tokens)
	}
	if got.Hoist != 7 {
		t.Fatalf("uncapped axis changed: %d", got.Hoist)
	}
}

func TestPathConfinement(t *testing.T) {
	c := startServer(t, NewServer(Config{Root: writeTestTree(t)}))
	for _, files := range [][]string{{"../outside.c"}, {"/etc/passwd"}} {
		_, err := c.Lint(&LintRequest{Files: files, Mode: "bdd"})
		if err == nil {
			t.Fatalf("lint of %v accepted", files)
		}
	}
	_, err := c.Parse(&ParseRequest{Files: []string{"a.c"}, IncludePaths: []string{"../inc"}, Mode: "bdd", Opt: "all"})
	if err == nil {
		t.Fatal("escape via include path accepted")
	}
}

// lintInProcess mirrors cmd/clint's lintFile over the same tree, for the
// differential oracle.
func lintInProcess(t *testing.T, root, file string) ([]analysis.Diagnostic, analysis.Stats, string) {
	t.Helper()
	tool := core.New(core.Config{
		FS:           rootFS{root},
		IncludePaths: []string{"inc"},
	})
	res, err := tool.ParseFile(file)
	if err != nil {
		return nil, analysis.Stats{}, err.Error()
	}
	r := analysis.Run(&analysis.Unit{
		File:  file,
		Space: tool.Space(),
		AST:   res.AST,
		PP:    res.Unit,
	}, passes.All())
	return r.Diags, r.Stats, ""
}

func TestLintDifferential(t *testing.T) {
	root := writeTestTree(t)
	c := startServer(t, NewServer(Config{Root: root}))
	req := LintRequest{
		Files:        []string{"a.c", "b.c", "broken.c", "missing.c"},
		IncludePaths: []string{"inc"},
		Mode:         "bdd",
	}
	resp, err := c.Lint(&req)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Units) != 4 {
		t.Fatalf("%d units; want 4", len(resp.Units))
	}

	// broken.c survives (#error is a diagnostic, not a parse failure) but
	// carries the in-process stderr text; missing.c fails outright.
	bu := resp.Units[2]
	if bu.Failed || !strings.HasPrefix(bu.Errors, "clint: broken.c:") {
		t.Fatalf("broken.c unit = %+v", bu)
	}
	mu := resp.Units[3]
	if !mu.Failed || !strings.HasPrefix(mu.Errors, "clint: missing.c: ") {
		t.Fatalf("missing.c unit = %+v", mu)
	}

	// The good units match an in-process run diagnostic by diagnostic.
	for i, file := range []string{"a.c", "b.c"} {
		u := resp.Units[i]
		if u.Failed {
			t.Fatalf("%s failed: %s", file, u.Errors)
		}
		wantDiags, wantStats, wantErr := lintInProcess(t, root, file)
		if wantErr != "" {
			t.Fatalf("in-process %s: %s", file, wantErr)
		}
		if len(u.Diags) != len(wantDiags) {
			t.Fatalf("%s: %d diags via daemon, %d in-process", file, len(u.Diags), len(wantDiags))
		}
		for j := range u.Diags {
			got := u.Diags[j].ToAnalysis()
			want := wantDiags[j] // Cond is space-tied; only CondStr crosses the wire
			if got.CondStr != want.CondStr || got.Msg != want.Msg || got.Pass != want.Pass ||
				got.Line != want.Line || got.Col != want.Col ||
				got.WitnessVerified != want.WitnessVerified {
				t.Errorf("%s diag %d:\n daemon     %+v\n in-process %+v", file, j, got, want)
			}
		}
		if u.Stats.Diagnostics != wantStats.Diagnostics || u.Stats.PassesRun != wantStats.PassesRun {
			t.Errorf("%s stats diverge: %+v vs %+v", file, u.Stats, wantStats)
		}
	}

	// Scheduling independence: jobs 1 and jobs 8 give identical responses.
	j1, err1 := c.Lint(&LintRequest{Files: req.Files, IncludePaths: req.IncludePaths, Mode: "bdd", Jobs: 1})
	j8, err8 := c.Lint(&LintRequest{Files: req.Files, IncludePaths: req.IncludePaths, Mode: "bdd", Jobs: 8})
	if err1 != nil || err8 != nil {
		t.Fatal(err1, err8)
	}
	if !reflect.DeepEqual(j1, j8) {
		t.Error("lint response differs between -j1 and -j8")
	}
}

func TestParseDeterminismAndErrors(t *testing.T) {
	root := writeTestTree(t)
	c := startServer(t, NewServer(Config{Root: root}))
	req := ParseRequest{
		Files:        []string{"a.c", "b.c", "missing.c"},
		IncludePaths: []string{"inc"},
		Mode:         "bdd",
		Opt:          "all",
	}
	resp, err := c.Parse(&req)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Units[0].HasAST || !resp.Units[1].HasAST {
		t.Fatalf("good units missing ASTs: %+v, %+v", resp.Units[0], resp.Units[1])
	}
	if resp.Units[0].Pre.LexTime != 0 {
		t.Error("LexTime crossed the wire")
	}
	if resp.Units[2].Err == "" || resp.Units[2].HasAST {
		t.Fatalf("missing.c unit = %+v", resp.Units[2])
	}
	if resp.TableCache == "" {
		t.Error("TableCache not reported")
	}
	req.Jobs = 8
	resp8, err := c.Parse(&req)
	if err != nil {
		t.Fatal(err)
	}
	resp8.TableCache = resp.TableCache // may flip miss->hit between requests
	if !reflect.DeepEqual(resp, resp8) {
		t.Error("parse response differs between default jobs and -j8")
	}
	// The intra-unit axis must be equally invisible: region-parallel
	// parsing is proven equivalent server-side or falls back.
	req.ParseWorkers = 4
	respPW, err := c.Parse(&req)
	if err != nil {
		t.Fatal(err)
	}
	respPW.TableCache = resp.TableCache
	if !reflect.DeepEqual(resp, respPW) {
		t.Error("parse response differs between sequential and parseWorkers=4")
	}
}

// corpusReq is the canonical differential corpus request.
func corpusReq() CorpusRequest {
	return CorpusRequest{
		Seed:    1,
		CFiles:  8,
		Headers: 8,
		Mode:    "bdd",
		Opt:     "all",
		Passes:  []string{"all"},
	}
}

// inProcessCorpus runs the same sweep the daemon would and reduces it with
// the same projection.
func inProcessCorpus(req CorpusRequest) []CorpusUnit {
	c := corpus.Generate(corpus.Params{Seed: req.Seed, CFiles: req.CFiles, GenHeaders: req.Headers})
	results, _ := harness.RunMetered(context.Background(), c, harness.RunConfig{
		Parser:    fmlr.OptAll,
		Analyzers: passes.All(),
	})
	units := make([]CorpusUnit, len(results))
	for i := range results {
		units[i] = toCorpusUnit(&results[i])
	}
	return units
}

func TestCorpusDifferential(t *testing.T) {
	c := startServer(t, NewServer(Config{Root: t.TempDir()}))
	req := corpusReq()
	req.Jobs = 1
	r1, err := c.Corpus(&req)
	if err != nil {
		t.Fatal(err)
	}
	req.Jobs = 8
	r8, err := c.Corpus(&req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1.Units, r8.Units) {
		t.Error("corpus units differ between jobs=1 and jobs=8")
	}
	// Compare through the wire encoding: the daemon response made a JSON
	// round trip (nil vs empty maps collapse under omitempty), so the
	// canonical form for both sides is their marshaled bytes — which is also
	// the byte-identity claim clients rely on.
	got, err := json.Marshal(r1.Units)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(inProcessCorpus(req))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Error("daemon corpus units differ from a direct in-process harness run")
	}
}

func TestCorpusFactsAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := startServer(t, NewServer(Config{Root: t.TempDir(), Store: st}))
	req := corpusReq()

	cold, err := c.Corpus(&req)
	if err != nil {
		t.Fatal(err)
	}
	if cold.FactsHits != 0 || cold.FactsMisses != int64(req.CFiles) {
		t.Fatalf("cold facts: %d hits, %d misses", cold.FactsHits, cold.FactsMisses)
	}

	// Same server, second request: every unit served from the facts cache.
	warm, err := c.Corpus(&req)
	if err != nil {
		t.Fatal(err)
	}
	if warm.FactsHits != int64(req.CFiles) || warm.FactsMisses != 0 {
		t.Fatalf("warm facts: %d hits, %d misses", warm.FactsHits, warm.FactsMisses)
	}
	if !reflect.DeepEqual(cold.Units, warm.Units) {
		t.Error("facts-served units differ from computed units")
	}

	// Restarted server over the same directory: facts survive the process.
	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c2 := startServer(t, NewServer(Config{Root: t.TempDir(), Store: st2}))
	restart, err := c2.Corpus(&req)
	if err != nil {
		t.Fatal(err)
	}
	if restart.FactsHits != int64(req.CFiles) {
		t.Fatalf("restart facts hits = %d; want %d", restart.FactsHits, req.CFiles)
	}
	if !reflect.DeepEqual(cold.Units, restart.Units) {
		t.Error("units served across a restart differ from the original run")
	}

	// A different fingerprint (changed limits) must not reuse stale facts.
	capped := req
	capped.Limits = Limits{Subparsers: 2}
	r, err := c2.Corpus(&capped)
	if err != nil {
		t.Fatal(err)
	}
	if r.FactsHits != 0 {
		t.Errorf("facts reused across a limits change: %d hits", r.FactsHits)
	}
}

// TestWarmHeaderStoreHitRate is the acceptance bound for the header-artifact
// store: a restarted daemon recomputing the corpus (facts bypassed) replays
// shared headers from disk with a >90% store hit rate.
func TestWarmHeaderStoreHitRate(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := startServer(t, NewServer(Config{Root: t.TempDir(), Store: st}))
	req := corpusReq()
	req.NoFacts = true
	if _, err := c.Corpus(&req); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c2 := startServer(t, NewServer(Config{Root: t.TempDir(), Store: st2}))
	if _, err := c2.Corpus(&req); err != nil {
		t.Fatal(err)
	}
	snap := st2.Stats()
	total := snap.Hits + snap.Misses
	if total == 0 {
		t.Fatal("restarted daemon never consulted the store")
	}
	if rate := float64(snap.Hits) / float64(total); rate < 0.9 {
		t.Errorf("warm header store hit rate %.2f (%d/%d); want > 0.9", rate, snap.Hits, total)
	}
}

func TestStatsAndMetrics(t *testing.T) {
	c := startServer(t, NewServer(Config{Root: writeTestTree(t)}))
	if _, err := c.Lint(&LintRequest{Files: []string{"a.c"}, IncludePaths: []string{"inc"}, Mode: "bdd"}); err != nil {
		t.Fatal(err)
	}
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Version != Version {
		t.Fatalf("stats version = %q", stats.Version)
	}
	if stats.Counters["requests_lint"] != 1 || stats.Counters["units_total"] != 1 {
		t.Fatalf("counters = %v", stats.Counters)
	}
	if _, ok := stats.Counters["hcache_header_hits"]; !ok {
		t.Error("hcache counters missing from stats")
	}
}
