package daemon

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/analysis/passes"
	"repro/internal/cgrammar"
	"repro/internal/cond"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/fmlr"
	"repro/internal/guard"
	"repro/internal/harness"
	"repro/internal/hcache"
	"repro/internal/link"
	"repro/internal/preprocessor"
	"repro/internal/stats"
	"repro/internal/store"
)

// Config configures a Server.
type Config struct {
	// Root confines file-serving requests: every file and include path must
	// be a local (no "..", not absolute) path resolved beneath it.
	Root string
	// MaxJobs clamps per-request worker counts; 0 means GOMAXPROCS.
	MaxJobs int
	// Caps are per-axis guard maximums clamped onto request limits (QoS):
	// a request asking for more — or for no limit — gets the cap.
	Caps guard.Limits
	// Store, when non-nil, backs the header cache and the corpus facts
	// cache, persisting warm state across daemon restarts.
	Store *store.Store
	// NoStream disables the stream-fused token pipeline for every request
	// (core.Config.NoStream). A server-side kill switch, not a request knob:
	// the two modes are proven byte-identical, so clients cannot observe the
	// difference and the facts fingerprint deliberately excludes it.
	NoStream bool
	// MaxInFlight bounds concurrently executing batch requests; beyond it
	// requests queue briefly, then are shed with 429 + Retry-After. 0 means
	// 2×MaxJobs (two batches can interleave on the worker pool).
	MaxInFlight int
	// QueueDepth is the size of the admission waiting room; 0 means a small
	// default, negative disables queueing (immediate shed at saturation).
	QueueDepth int
	// QueueWait bounds how long a queued request waits for an execution slot
	// before being shed; 0 means 1s.
	QueueWait time.Duration
	// ReadTimeout/WriteTimeout bound each connection's request read and
	// response write (http.Server); zero values get generous defaults sized
	// for batch bodies rather than being unlimited.
	ReadTimeout  time.Duration
	WriteTimeout time.Duration
}

// Server is the superd request handler: one warm header cache and an
// optional artifact store shared by every request.
type Server struct {
	cfg   Config
	hc    *hcache.Cache
	mux   *http.ServeMux
	http  *http.Server
	adm   *admission
	start time.Time

	// afterAdmit, when set, runs after a request is admitted and before its
	// handler (drain tests hold requests in flight with it).
	afterAdmit func()

	reqLint, reqParse, reqCorpus stats.Counter
	reqLink                      stats.Counter
	units                        stats.Counter
	factsHits, factsMisses       stats.Counter
	linkUnits, linkFindings      stats.Counter
	linkFactsHits, linkFactsMiss stats.Counter
	failedUnits, killedUnits     stats.Counter
	budgetTrips                  stats.Counter
	forks, merges                stats.Counter
}

// NewServer builds a server over cfg. The header cache is created here —
// backed by cfg.Store when present — and lives for the server's lifetime.
func NewServer(cfg Config) *Server {
	if cfg.Root == "" {
		cfg.Root = "."
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 2 * cfg.MaxJobs
	}
	queueDepth := cfg.QueueDepth
	switch {
	case queueDepth == 0:
		queueDepth = 16
	case queueDepth < 0:
		queueDepth = 0
	}
	if cfg.ReadTimeout <= 0 {
		cfg.ReadTimeout = 60 * time.Second
	}
	if cfg.WriteTimeout <= 0 {
		// Batch responses are written only after the whole batch computes;
		// the write timeout must cover the slowest admissible batch.
		cfg.WriteTimeout = 10 * time.Minute
	}
	var backing hcache.Backing
	if cfg.Store != nil {
		backing = store.NewHeaderBacking(cfg.Store, preprocessor.PayloadCodec())
	}
	s := &Server{
		cfg:   cfg,
		hc:    hcache.New(hcache.Options{Backing: backing}),
		mux:   http.NewServeMux(),
		adm:   newAdmission(cfg.MaxInFlight, queueDepth, cfg.QueueWait),
		start: time.Now(),
	}
	s.mux.HandleFunc("POST /v1/lint", s.admit(s.handleLint))
	s.mux.HandleFunc("POST /v1/parse", s.admit(s.handleParse))
	s.mux.HandleFunc("POST /v1/link", s.admit(s.handleLink))
	s.mux.HandleFunc("POST /v1/corpus", s.admit(s.handleCorpus))
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.http = &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       cfg.ReadTimeout,
		WriteTimeout:      cfg.WriteTimeout,
		IdleTimeout:       2 * time.Minute,
	}
	return s
}

// admit gates a batch handler behind the admission valve. The client's
// remaining deadline (DeadlineHeader, milliseconds) becomes the request
// context's deadline, bounding both queue wait and the guard budgets inside
// the handler. Shed requests get 429 (503 while draining) with Retry-After,
// so well-behaved clients back off instead of hammering.
func (s *Server) admit(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if ms := r.Header.Get(DeadlineHeader); ms != "" {
			if n, err := strconv.ParseInt(ms, 10, 64); err == nil && n > 0 {
				ctx, cancel := context.WithTimeout(r.Context(), time.Duration(n)*time.Millisecond)
				defer cancel()
				r = r.WithContext(ctx)
			}
		}
		release, ok := s.adm.acquire(r.Context())
		if !ok {
			status := http.StatusTooManyRequests
			msg := "server overloaded"
			if s.adm.draining.Load() {
				status = http.StatusServiceUnavailable
				msg = "server draining"
			}
			w.Header().Set("Retry-After", "1")
			httpError(w, status, "%s; retry after backoff", msg)
			return
		}
		defer release()
		if s.afterAdmit != nil {
			s.afterAdmit()
		}
		h(w, r)
	}
}

// Handler exposes the route table (for tests via httptest).
func (s *Server) Handler() http.Handler { return s.mux }

// Serve accepts connections on l until Shutdown.
func (s *Server) Serve(l net.Listener) error { return s.http.Serve(l) }

// Drain flips the server to not-ready: new batch requests are shed with 503
// and the /healthz readiness probe fails, while in-flight batches keep
// running. Shutdown calls it implicitly; calling it earlier lets a load
// balancer move traffic before the listener closes.
func (s *Server) Drain() { s.adm.drain() }

// Shutdown drains in-flight requests (http.Server.Shutdown): readiness goes
// false, the listener closes immediately, running batches finish, then Serve
// returns.
func (s *Server) Shutdown(ctx context.Context) error {
	s.Drain()
	return s.http.Shutdown(ctx)
}

// Listen opens the listener for a -listen style address: "unix:PATH" or a
// path containing a slash listens on a unix socket (removing a stale socket
// file first); "tcp:ADDR" or a host:port listens on TCP.
func Listen(addr string) (net.Listener, error) {
	if path, ok := strings.CutPrefix(addr, "unix:"); ok {
		return listenUnix(path)
	}
	if hostport, ok := strings.CutPrefix(addr, "tcp:"); ok {
		return net.Listen("tcp", hostport)
	}
	if strings.Contains(addr, "/") {
		return listenUnix(addr)
	}
	return net.Listen("tcp", addr)
}

func listenUnix(path string) (net.Listener, error) {
	// A previous daemon that died without cleanup leaves a stale socket
	// file; binding requires removing it. A live daemon is detected by the
	// remove-then-bind race window being negligible for a local tool.
	os.Remove(path)
	return net.Listen("unix", path)
}

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// rootFS confines all file access to the server root: paths must be local
// (relative, no traversal above the root) and are resolved beneath it.
type rootFS struct{ root string }

func (f rootFS) resolve(p string) (string, error) {
	p = filepath.Clean(filepath.FromSlash(p))
	if !filepath.IsLocal(p) {
		return "", fmt.Errorf("daemon: path escapes server root: %s", p)
	}
	return filepath.Join(f.root, p), nil
}

func (f rootFS) ReadFile(p string) ([]byte, error) {
	full, err := f.resolve(p)
	if err != nil {
		return nil, err
	}
	return os.ReadFile(full)
}

func (f rootFS) Exists(p string) bool {
	full, err := f.resolve(p)
	if err != nil {
		return false
	}
	_, err = os.Stat(full)
	return err == nil
}

// checkLocal rejects any request path that would escape the root.
func checkLocal(paths []string) error {
	for _, p := range paths {
		if !filepath.IsLocal(filepath.Clean(filepath.FromSlash(p))) {
			return fmt.Errorf("path escapes server root: %s", p)
		}
	}
	return nil
}

func condMode(name string) (cond.Mode, error) {
	switch name {
	case "", "bdd":
		return cond.ModeBDD, nil
	case "sat":
		return cond.ModeSAT, nil
	}
	return 0, fmt.Errorf("unknown mode %q", name)
}

func parserOpts(name string) (fmlr.Options, error) {
	switch name {
	case "", "all":
		return fmlr.OptAll, nil
	case "sharedlazy":
		return fmlr.OptSharedLazy, nil
	case "shared":
		return fmlr.OptShared, nil
	case "lazy":
		return fmlr.OptLazy, nil
	case "follow":
		return fmlr.OptFollowOnly, nil
	case "mapr":
		return fmlr.OptMAPR, nil
	case "mapr-largest":
		return fmlr.OptMAPRLargest, nil
	}
	return fmlr.Options{}, fmt.Errorf("unknown optimization level %q", name)
}

func selectPasses(names []string) ([]*analysis.Analyzer, error) {
	if len(names) == 0 {
		return nil, nil
	}
	known := make(map[string]bool)
	for _, a := range passes.All() {
		known[a.Name] = true
	}
	for _, n := range names {
		if n == "all" {
			return passes.All(), nil
		}
		if !known[n] {
			return nil, fmt.Errorf("unknown pass %q", n)
		}
	}
	return passes.ByName(names), nil
}

// jobs clamps a requested worker count to the server bound.
func (s *Server) jobs(req, n int) int {
	j := req
	if j <= 0 || j > s.cfg.MaxJobs {
		j = s.cfg.MaxJobs
	}
	if j > n {
		j = n
	}
	if j < 1 {
		j = 1
	}
	return j
}

// parseWorkers clamps a requested intra-unit worker count to the server
// bound. Unlike jobs, zero means sequential, not "use the maximum":
// region-parallel parsing is opt-in per request.
func (s *Server) parseWorkers(req int) int {
	if req <= 0 {
		return 0
	}
	if req > s.cfg.MaxJobs {
		return s.cfg.MaxJobs
	}
	return req
}

// forEach runs fn over indices 0..n-1 on a bounded worker pool.
func forEach(n, workers int, fn func(i int)) {
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
}

func (s *Server) handleLint(w http.ResponseWriter, r *http.Request) {
	s.reqLint.Inc()
	var req LintRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	mode, err := condMode(req.Mode)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	analyzers, err := selectPasses(req.Passes)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if analyzers == nil {
		analyzers = passes.All()
	}
	if err := checkLocal(req.Files); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := checkLocal(req.IncludePaths); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	limits := Clamp(req.Limits.ToGuard(), s.cfg.Caps)
	cfg := core.Config{
		FS:           rootFS{s.cfg.Root},
		IncludePaths: req.IncludePaths,
		Defines:      req.Defines,
		CondMode:     mode,
		HeaderCache:  s.hc,
		ParseWorkers: s.parseWorkers(req.ParseWorkers),
		NoStream:     s.cfg.NoStream,
	}
	resp := LintResponse{Units: make([]LintUnit, len(req.Files))}
	forEach(len(req.Files), s.jobs(req.Jobs, len(req.Files)), func(i int) {
		resp.Units[i] = s.lintUnit(r.Context(), cfg, req.Files[i], analyzers, limits)
	})
	s.units.Add(int64(len(req.Files)))
	writeJSON(w, &resp)
}

// lintUnit mirrors cmd/clint's lintFile: same tool construction, same error
// text, so the client's reassembled output is byte-identical.
func (s *Server) lintUnit(ctx context.Context, cfg core.Config, file string, analyzers []*analysis.Analyzer, limits guard.Limits) LintUnit {
	u := LintUnit{File: file}
	tool := core.New(cfg)
	budget := guard.New(ctx, limits)
	tool.SetBudget(budget)
	res, err := tool.ParseFile(file)
	if err != nil {
		u.Failed = true
		u.Errors = fmt.Sprintf("clint: %s: %v\n", file, err)
		return u
	}
	var errs strings.Builder
	for _, d := range res.Unit.Diags {
		if !d.Warning {
			fmt.Fprintf(&errs, "clint: %s\n", d)
		}
	}
	u.Errors = errs.String()
	result := analysis.Run(&analysis.Unit{
		File:   file,
		Space:  tool.Space(),
		AST:    res.AST,
		PP:     res.Unit,
		Budget: tool.Budget(),
	}, analyzers)
	u.Diags = make([]Diag, len(result.Diags))
	for i, d := range result.Diags {
		u.Diags[i] = FromAnalysis(d)
	}
	u.Stats = result.Stats
	if d := budget.Trip(); d != nil {
		s.budgetTrips.Inc()
	}
	return u
}

func (s *Server) handleParse(w http.ResponseWriter, r *http.Request) {
	s.reqParse.Inc()
	var req ParseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	mode, err := condMode(req.Mode)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	opts, err := parserOpts(req.Opt)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := checkLocal(req.Files); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := checkLocal(req.IncludePaths); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	limits := Clamp(req.Limits.ToGuard(), s.cfg.Caps)
	cfg := core.Config{
		FS:           rootFS{s.cfg.Root},
		IncludePaths: req.IncludePaths,
		Defines:      req.Defines,
		CondMode:     mode,
		Parser:       &opts,
		SingleConfig: req.Single,
		ParseWorkers: s.parseWorkers(req.ParseWorkers),
		NoStream:     s.cfg.NoStream,
	}
	if !req.Single {
		cfg.HeaderCache = s.hc
	}
	resp := ParseResponse{Units: make([]ParseUnit, len(req.Files))}
	forEach(len(req.Files), s.jobs(req.Jobs, len(req.Files)), func(i int) {
		resp.Units[i] = s.parseUnit(r.Context(), cfg, req.Files[i], limits)
	})
	resp.TableCache = cgrammar.TableCacheState()
	s.units.Add(int64(len(req.Files)))
	writeJSON(w, &resp)
}

// parseUnit runs one superc-style unit and extracts the deterministic
// summary (timings excluded; space-tied parse diagnostics pre-rendered).
func (s *Server) parseUnit(ctx context.Context, cfg core.Config, file string, limits guard.Limits) ParseUnit {
	u := ParseUnit{File: file}
	tool := core.New(cfg)
	budget := guard.New(ctx, limits)
	tool.SetBudget(budget)
	res, err := tool.ParseFile(file)
	if err != nil {
		u.Err = err.Error()
		return u
	}
	u.PreDiags = res.Unit.Diags
	for _, d := range res.Parse.Diags {
		u.ParseErrs = append(u.ParseErrs, fmt.Sprintf("%s: parse error under %s: %s",
			d.Tok.Pos(), tool.Space().String(d.Cond), d.Msg))
	}
	u.Killed = res.Parse.Killed
	u.Pre = res.Unit.Stats
	u.Pre.LexTime = 0
	p := res.Parse.Stats
	u.Parse = ParseStats{
		Iterations:    p.Iterations,
		MaxSubparsers: p.MaxSubparsers,
		P99:           p.Percentile(0.99),
		Forks:         p.Forks,
		Merges:        p.Merges,
		TypedefForks:  p.TypedefForks,
	}
	if res.AST != nil {
		u.HasAST = true
		u.Parse.ASTNodes = res.AST.Count()
		u.Parse.ChoiceNodes = res.AST.CountChoices()
	}
	if d := budget.Trip(); d != nil {
		u.BudgetErr = fmt.Sprintf("%v", d)
		s.budgetTrips.Inc()
	}
	s.forks.Add(int64(p.Forks))
	s.merges.Add(int64(p.Merges))
	if res.Parse.Killed {
		s.killedUnits.Inc()
	}
	if res.AST == nil {
		s.failedUnits.Inc()
	}
	return u
}

func (s *Server) handleLink(w http.ResponseWriter, r *http.Request) {
	s.reqLink.Inc()
	var req LinkRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	mode, err := condMode(req.Mode)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := checkLocal(req.Files); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := checkLocal(req.IncludePaths); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	limits := Clamp(req.Limits.ToGuard(), s.cfg.Caps)
	fs := rootFS{s.cfg.Root}
	cfg := core.Config{
		FS:           fs,
		IncludePaths: req.IncludePaths,
		Defines:      req.Defines,
		CondMode:     mode,
		HeaderCache:  s.hc,
		ParseWorkers: s.parseWorkers(req.ParseWorkers),
		NoStream:     s.cfg.NoStream,
	}
	fp := s.linkFingerprint(req, limits)
	useFacts := s.cfg.Store != nil && !req.NoFacts
	facts := make([]*link.Facts, len(req.Files))
	unitErrs := make([]string, len(req.Files))
	var hits, misses stats.Counter
	forEach(len(req.Files), s.jobs(req.Jobs, len(req.Files)), func(i int) {
		file := req.Files[i]
		// The cache key folds in the root file's content hash, so editing a
		// .c file invalidates its facts across restarts. Header edits are not
		// tracked here; flush with -no-facts (or a fresh store) after
		// changing shared headers.
		var key string
		if useFacts {
			if data, err := fs.ReadFile(file); err == nil {
				key = fmt.Sprintf("%s\x00%s\x00%x", fp, file, sha256.Sum256(data))
				if raw, ok := s.cfg.Store.Get(store.NSLink, key); ok {
					if f, err := link.DecodeFacts(raw); err == nil {
						facts[i] = f
						hits.Inc()
						return
					}
					s.cfg.Store.Delete(store.NSLink, key)
				}
			}
		}
		misses.Inc()
		tool := core.New(cfg)
		budget := guard.New(r.Context(), limits)
		tool.SetBudget(budget)
		res, err := tool.ParseFile(file)
		if err != nil {
			unitErrs[i] = fmt.Sprintf("%s: %v\n", file, err)
			return
		}
		if res.AST == nil {
			unitErrs[i] = fmt.Sprintf("%s: no AST (parse failed)\n", file)
			return
		}
		f := analysis.ExtractLinkFacts(&analysis.Unit{
			File:   file,
			Space:  tool.Space(),
			AST:    res.AST,
			PP:     res.Unit,
			Budget: tool.Budget(),
		})
		facts[i] = f
		tripped := budget.Trip() != nil
		if tripped {
			s.budgetTrips.Inc()
		}
		// Budget-tripped extractions may be truncated; only complete fact
		// sets persist.
		if key != "" && !tripped {
			if data, err := f.Encode(); err == nil {
				s.cfg.Store.Put(store.NSLink, key, data)
			}
		}
	})
	joined := make([]*link.Facts, 0, len(facts))
	for _, f := range facts {
		if f != nil {
			joined = append(joined, f)
		}
	}
	lr := link.Link(joined, s.hc.Canon())
	resp := LinkResponse{
		Units:       lr.Stats.Units,
		Symbols:     lr.Stats.Symbols,
		Facts:       lr.Stats.Facts,
		Findings:    make([]LinkFinding, len(lr.Findings)),
		FactsHits:   hits.Load(),
		FactsMisses: misses.Load(),
	}
	for i, f := range lr.Findings {
		resp.Findings[i] = FromLink(f)
	}
	for i, e := range unitErrs {
		if e != "" {
			resp.Failed = append(resp.Failed, LinkUnit{File: req.Files[i], Errors: e})
		}
	}
	s.units.Add(int64(len(req.Files)))
	s.linkUnits.Add(int64(lr.Stats.Units))
	s.linkFindings.Add(int64(len(lr.Findings)))
	s.linkFactsHits.Add(hits.Load())
	s.linkFactsMiss.Add(misses.Load())
	writeJSON(w, &resp)
}

// linkFingerprint keys the persisted link-fact cache: every request knob
// that affects one unit's extracted facts, plus the protocol version (fact
// shapes may change between builds). Jobs and ParseWorkers are deliberately
// excluded — extraction is deterministic at any worker count.
func (s *Server) linkFingerprint(req LinkRequest, limits guard.Limits) string {
	defs := make([]string, 0, len(req.Defines))
	for k, v := range req.Defines {
		defs = append(defs, k+"="+v)
	}
	sort.Strings(defs)
	return fmt.Sprintf("%s;mode=%s;inc=%s;defs=%s;limits=%+v",
		Version, req.Mode, strings.Join(req.IncludePaths, ","), strings.Join(defs, ","), limits)
}

func (s *Server) handleCorpus(w http.ResponseWriter, r *http.Request) {
	s.reqCorpus.Inc()
	var req CorpusRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	mode, err := condMode(req.Mode)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	opts, err := parserOpts(req.Opt)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	analyzers, err := selectPasses(req.Passes)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	limits := Clamp(req.Limits.ToGuard(), s.cfg.Caps)
	c := corpus.Generate(corpus.Params{Seed: req.Seed, CFiles: req.CFiles, GenHeaders: req.Headers})
	fp := s.factsFingerprint(req, limits)

	resp := CorpusResponse{Units: make([]CorpusUnit, len(c.CFiles))}
	var missing []int
	useFacts := s.cfg.Store != nil && !req.NoFacts
	for i, f := range c.CFiles {
		if useFacts && store.GetGob(s.cfg.Store, store.NSFacts, fp+"\x00"+f, &resp.Units[i]) {
			resp.FactsHits++
			continue
		}
		missing = append(missing, i)
	}
	if len(missing) > 0 {
		resp.FactsMisses = int64(len(missing))
		sub := *c
		sub.CFiles = make([]string, len(missing))
		for j, i := range missing {
			sub.CFiles[j] = c.CFiles[i]
		}
		results, m := harness.RunMetered(r.Context(), &sub, harness.RunConfig{
			Mode:         mode,
			Parser:       opts,
			Single:       req.Single,
			Jobs:         s.jobs(req.Jobs, len(missing)),
			ParseWorkers: s.parseWorkers(req.ParseWorkers),
			HeaderCache:  s.hc,
			NoStream:     s.cfg.NoStream,
			Budget:       limits,
			Analyzers:    analyzers,
		})
		for j, i := range missing {
			u := toCorpusUnit(&results[j])
			resp.Units[i] = u
			// A unit that errored (cancelled run, panic) is not a
			// deterministic fact; everything else is a pure function of
			// (corpus, config, limits) and may be served across restarts.
			if useFacts && u.Err == "" {
				store.PutGob(s.cfg.Store, store.NSFacts, fp+"\x00"+c.CFiles[i], &u)
			}
		}
		s.failedUnits.Add(int64(m.FailedUnits))
		s.killedUnits.Add(int64(m.KilledUnits))
		s.budgetTrips.Add(int64(m.BudgetTrips))
		s.forks.Add(m.Forks)
		s.merges.Add(m.Merges)
	}
	s.factsHits.Add(resp.FactsHits)
	s.factsMisses.Add(resp.FactsMisses)
	s.units.Add(int64(len(c.CFiles)))
	writeJSON(w, &resp)
}

// factsFingerprint keys the facts cache: every request knob that affects a
// unit's deterministic result, plus the protocol version (result shapes may
// change between builds). ParseWorkers is deliberately excluded: the
// region-parallel strategy is proven equivalent to sequential, so the
// deterministic facts are identical at every worker count.
func (s *Server) factsFingerprint(req CorpusRequest, limits guard.Limits) string {
	names := append([]string(nil), req.Passes...)
	sort.Strings(names)
	return fmt.Sprintf("%s;seed=%d;cfiles=%d;headers=%d;mode=%s;opt=%s;single=%t;passes=%s;limits=%+v",
		Version, req.Seed, req.CFiles, req.Headers, req.Mode, req.Opt, req.Single,
		strings.Join(names, ","), limits)
}

// toCorpusUnit extracts the deterministic subset of a harness result.
func toCorpusUnit(r *harness.UnitResult) CorpusUnit {
	u := CorpusUnit{
		File:      r.File,
		Bytes:     r.Bytes,
		Tokens:    r.Tokens,
		Pre:       r.Pre,
		Killed:    r.Killed,
		ParseFail: r.ParseFail,
		Err:       r.Err,
		Parse: ParseStats{
			Iterations:    r.Parse.Iterations,
			MaxSubparsers: r.Parse.MaxSubparsers,
			P99:           r.Parse.Percentile(0.99),
			Forks:         r.Parse.Forks,
			Merges:        r.Parse.Merges,
			TypedefForks:  r.Parse.TypedefForks,
			ChoiceNodes:   r.ChoiceNodes,
		},
	}
	u.Pre.LexTime = 0
	if a := r.Analysis; a != nil {
		u.HasAnalysis = true
		u.Diags = make([]Diag, len(a.Diags))
		for i, d := range a.Diags {
			u.Diags[i] = FromAnalysis(d)
		}
		u.Stats = a.Stats
	}
	return u
}

// counters collects every exposed counter under stable names.
func (s *Server) counters() map[string]int64 {
	m := map[string]int64{
		"requests_lint":        s.reqLint.Load(),
		"requests_parse":       s.reqParse.Load(),
		"requests_link":        s.reqLink.Load(),
		"requests_corpus":      s.reqCorpus.Load(),
		"units_total":          s.units.Load(),
		"facts_hits":           s.factsHits.Load(),
		"facts_misses":         s.factsMisses.Load(),
		"link_units":           s.linkUnits.Load(),
		"link_findings":        s.linkFindings.Load(),
		"link_facts_hits":      s.linkFactsHits.Load(),
		"link_facts_misses":    s.linkFactsMiss.Load(),
		"harness_failed_units": s.failedUnits.Load(),
		"harness_killed_units": s.killedUnits.Load(),
		"harness_budget_trips": s.budgetTrips.Load(),
		"harness_forks":        s.forks.Load(),
		"harness_merges":       s.merges.Load(),
	}
	m["admission_admitted"] = s.adm.admitted.Load()
	m["admission_queued_total"] = s.adm.queuedTotal.Load()
	m["admission_shed"] = s.adm.shed.Load()
	m["admission_in_flight"] = s.adm.inFlight.Load()
	m["admission_queued"] = s.adm.queued.Load()
	m["draining"] = b2i(s.adm.draining.Load())
	m["ready"] = b2i(s.adm.ready())
	hc := s.hc.Stats()
	m["hcache_header_hits"] = hc.HeaderHits
	m["hcache_header_misses"] = hc.HeaderMisses
	m["hcache_lex_hits"] = hc.LexHits
	m["hcache_lex_misses"] = hc.LexMisses
	m["hcache_bytes_saved"] = hc.BytesSaved
	m["hcache_evictions"] = hc.Evictions
	if s.cfg.Store != nil {
		st := s.cfg.Store.Stats()
		m["store_hits"] = st.Hits
		m["store_misses"] = st.Misses
		m["store_writes"] = st.Writes
		m["store_evictions"] = st.Evictions
		m["store_corrupt"] = st.Corrupt
		m["store_entries"] = st.Entries
		m["store_bytes"] = st.Bytes
		m["store_scrubbed"] = st.Scrubbed
		m["store_tmp_swept"] = st.TmpSwept
		m["store_write_errors"] = st.WriteErrors
		m["store_read_errors"] = st.ReadErrors
		m["store_degraded"] = st.Degraded
	}
	return m
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, &StatsResponse{
		Version:  Version,
		Uptime:   time.Since(s.start).Round(time.Millisecond).String(),
		Counters: s.counters(),
	})
}

// handleMetrics renders the counters in Prometheus text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	c := s.counters()
	names := make([]string, 0, len(c))
	for n := range c {
		names = append(names, n)
	}
	sort.Strings(names)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	for _, n := range names {
		fmt.Fprintf(w, "superd_%s %d\n", n, c[n])
	}
}

// handleHealthz serves both probes. Liveness (the default) is always 200
// while the process serves HTTP — existing clients Dial against it.
// Readiness (?probe=readiness) turns 503 during drain or full saturation so
// load balancers stop routing new work; the body carries both bits either
// way.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	ready := s.adm.ready()
	if r.URL.Query().Get("probe") == "readiness" && !ready {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(&HealthResponse{OK: true, Ready: false, Version: Version})
		return
	}
	writeJSON(w, &HealthResponse{OK: true, Ready: ready, Version: Version})
}
