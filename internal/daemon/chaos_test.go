package daemon

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/guard/faultinject"
)

// chaosSeeds returns the fault-schedule seed matrix. CHAOS_SEED pins a
// single seed, replaying one schedule exactly — every fault decision is a
// pure function of (seed, request key, attempt).
func chaosSeeds(t *testing.T) []int64 {
	t.Helper()
	if s := os.Getenv("CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("CHAOS_SEED=%q: %v", s, err)
		}
		return []int64{v}
	}
	return []int64{1, 2, 3}
}

// chaosClient builds a thin client whose transport injects cfg's faults and
// whose retry sleeps are skipped (schedules stay deterministic; wall clocks
// don't). The breaker is disabled so the retry layer alone must absorb the
// faults.
func chaosClient(t *testing.T, ts *httptest.Server, cfg faultinject.HTTPConfig, retries int) (*Client, *faultinject.Transport) {
	t.Helper()
	if cfg.Stall == 0 {
		cfg.Stall = time.Millisecond
	}
	var ft *faultinject.Transport
	c := newClient(strings.TrimPrefix(ts.URL, "http://"), ClientOptions{
		RequestTimeout:   time.Minute,
		Retries:          retries,
		BackoffBase:      time.Millisecond,
		BackoffMax:       2 * time.Millisecond,
		BreakerThreshold: -1,
		JitterSeed:       cfg.Seed,
		Warn:             io.Discard,
		WrapTransport: func(base http.RoundTripper) http.RoundTripper {
			ft = faultinject.NewTransport(base, cfg)
			return ft
		},
	})
	c.sleep = func(context.Context, time.Duration) error { return nil }
	return c, ft
}

// TestChaosDifferentialLint proves the byte-identity guarantee under fire:
// for every fault kind and every seed, a lint batch served through a
// fault-injecting transport marshals to exactly the bytes a fault-free
// client gets. Rate 1 with a bounded burst guarantees every operation both
// suffers faults and eventually succeeds.
func TestChaosDifferentialLint(t *testing.T) {
	root := writeTestTree(t)
	s := NewServer(Config{Root: root})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	req := &LintRequest{
		Files:        []string{"a.c", "b.c", "broken.c"},
		IncludePaths: []string{"inc"},
		Mode:         "bdd",
	}

	clean, err := Dial(strings.TrimPrefix(ts.URL, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	cleanResp, err := clean.Lint(req)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(cleanResp)
	if err != nil {
		t.Fatal(err)
	}

	for _, seed := range chaosSeeds(t) {
		for _, kind := range faultinject.AllHTTPKinds {
			t.Run(fmt.Sprintf("seed%d/%s", seed, kind), func(t *testing.T) {
				c, ft := chaosClient(t, ts, faultinject.HTTPConfig{
					Seed:  seed,
					Rate:  1,
					Kinds: []faultinject.HTTPKind{kind},
					Burst: 2,
				}, 4)
				resp, err := c.Lint(req)
				if err != nil {
					t.Fatalf("lint under %s faults: %v", kind, err)
				}
				got, err := json.Marshal(resp)
				if err != nil {
					t.Fatal(err)
				}
				if string(got) != string(want) {
					t.Errorf("response under %s faults differs from fault-free bytes", kind)
				}
				if ft.Injected(kind) == 0 {
					t.Errorf("no %s faults injected at rate 1", kind)
				}
				if m := c.Metrics(); m.Retries == 0 {
					t.Error("faults absorbed without any retry — injection did not reach the client")
				}
			})
		}
		t.Run(fmt.Sprintf("seed%d/mixed", seed), func(t *testing.T) {
			c, ft := chaosClient(t, ts, faultinject.HTTPConfig{
				Seed:  seed,
				Rate:  0.6,
				Burst: 3,
			}, 8)
			// At Rate 0.6 a seed may deterministically spare the first few
			// attempts, so keep lints coming (up to 12 rounds) until the
			// schedule fires; 3 rounds minimum keeps differential coverage.
			rounds := 0
			for rounds < 3 || (rounds < 12 && ft.InjectedTotal() == 0) {
				resp, err := c.Lint(req)
				if err != nil {
					t.Fatalf("round %d: %v", rounds, err)
				}
				got, err := json.Marshal(resp)
				if err != nil {
					t.Fatal(err)
				}
				if string(got) != string(want) {
					t.Errorf("round %d: mixed-fault response differs from fault-free bytes", rounds)
				}
				rounds++
			}
			if ft.InjectedTotal() == 0 {
				t.Errorf("mixed schedule injected nothing across %d rounds", rounds)
			}
		})
	}
}

// TestChaosDifferentialCorpus runs the corpus sweep through mixed fault
// schedules and compares against a direct in-process harness run — the full
// thin-client-equals-in-process claim, with the transport actively hostile.
func TestChaosDifferentialCorpus(t *testing.T) {
	s := NewServer(Config{Root: t.TempDir()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	req := corpusReq()
	req.CFiles = 4
	want, err := json.Marshal(inProcessCorpus(req))
	if err != nil {
		t.Fatal(err)
	}

	for _, seed := range chaosSeeds(t) {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			c, _ := chaosClient(t, ts, faultinject.HTTPConfig{
				Seed:  seed,
				Rate:  0.6,
				Burst: 3,
			}, 8)
			resp, err := c.Corpus(&req)
			if err != nil {
				t.Fatalf("corpus under mixed faults: %v", err)
			}
			got, err := json.Marshal(resp.Units)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != string(want) {
				t.Error("corpus units under faults differ from a direct in-process run")
			}
		})
	}
}

// TestChaosSeedReplay pins replayability: two fresh transports with the same
// seed, driven through the same operation sequence, inject the identical
// fault schedule — the property CHAOS_SEED relies on to reproduce a failure.
func TestChaosSeedReplay(t *testing.T) {
	root := writeTestTree(t)
	s := NewServer(Config{Root: root})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	req := &LintRequest{Files: []string{"a.c"}, IncludePaths: []string{"inc"}, Mode: "bdd"}

	run := func() (*faultinject.Transport, ClientMetrics) {
		c, ft := chaosClient(t, ts, faultinject.HTTPConfig{Seed: 42, Rate: 0.6, Burst: 3}, 8)
		for i := 0; i < 3; i++ {
			if _, err := c.Lint(req); err != nil {
				t.Fatal(err)
			}
		}
		return ft, c.Metrics()
	}
	ft1, m1 := run()
	ft2, m2 := run()
	for _, k := range faultinject.AllHTTPKinds {
		if ft1.Injected(k) != ft2.Injected(k) {
			t.Errorf("%s: %d vs %d injections for the same seed", k, ft1.Injected(k), ft2.Injected(k))
		}
	}
	if ft1.Passed() != ft2.Passed() || m1.Attempts != m2.Attempts || m1.Retries != m2.Retries {
		t.Errorf("replay diverged: passed %d/%d, attempts %d/%d, retries %d/%d",
			ft1.Passed(), ft2.Passed(), m1.Attempts, m2.Attempts, m1.Retries, m2.Retries)
	}
}

// TestChaosBreakerFallback proves a persistently dead daemon trips the
// breaker and later operations fail instantly without network traffic — the
// signal the CLIs turn into their in-process fallback.
func TestChaosBreakerFallback(t *testing.T) {
	s := NewServer(Config{Root: writeTestTree(t)})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var ft *faultinject.Transport
	c := newClient(strings.TrimPrefix(ts.URL, "http://"), ClientOptions{
		Retries:          1,
		BackoffBase:      time.Millisecond,
		BreakerThreshold: 1,
		BreakerCooldown:  time.Hour,
		Warn:             io.Discard,
		WrapTransport: func(base http.RoundTripper) http.RoundTripper {
			// Burst 0: a persistent fault that outlasts any retry budget.
			ft = faultinject.NewTransport(base, faultinject.HTTPConfig{
				Seed: 1, Rate: 1, Burst: 0,
				Kinds: []faultinject.HTTPKind{faultinject.HTTPConnReset},
			})
			return ft
		},
	})
	c.sleep = func(context.Context, time.Duration) error { return nil }
	req := &LintRequest{Files: []string{"a.c"}, IncludePaths: []string{"inc"}, Mode: "bdd"}

	if _, err := c.Lint(req); err == nil {
		t.Fatal("lint succeeded through a dead transport")
	}
	injectedAfterFirst := ft.InjectedTotal()
	if injectedAfterFirst == 0 {
		t.Fatal("no faults injected")
	}
	_, err := c.Lint(req)
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("second op err = %v; want ErrBreakerOpen", err)
	}
	if ft.InjectedTotal() != injectedAfterFirst {
		t.Error("open breaker let an operation reach the transport")
	}
	if m := c.Metrics(); m.BreakerOpens != 1 || m.FastFails == 0 {
		t.Fatalf("metrics = %+v", m)
	}
}
