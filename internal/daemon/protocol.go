// Package daemon implements the superd parse server and its thin client.
//
// The daemon keeps a corpus warm across requests: one process-wide header
// cache (internal/hcache), optionally backed by the on-disk artifact store
// (internal/store), plus a facts cache of per-unit corpus results, serve
// repeat batches without re-preprocessing shared headers or re-parsing
// unchanged units. Clients (superc, clint, cstats with -daemon) send batch
// requests over HTTP+JSON — on a unix socket or a TCP loopback address —
// and render the structured results locally with the same code paths as
// their in-process modes, so daemon-served output is byte-identical to a
// local run.
//
// Endpoints:
//
//	POST /v1/lint    clint batches: analysis diagnostics per unit
//	POST /v1/parse   superc batches: parse summaries per unit
//	POST /v1/link    whole-corpus link analysis: cross-unit findings
//	POST /v1/corpus  harness runs over the synthetic corpus (cstats, bench)
//	GET  /v1/stats   JSON snapshot of cache/store/server counters
//	GET  /metrics    the same counters in Prometheus text format
//	GET  /healthz    liveness + protocol version
//
// Requests carry per-request guard.Limits as a quality-of-service bound;
// the server clamps them against its own -timeout/-budget-* caps so one
// client cannot monopolize the worker pool with an unbounded unit.
package daemon

import (
	"time"

	"repro/internal/analysis"
	"repro/internal/guard"
	"repro/internal/link"
	"repro/internal/preprocessor"
)

// Version gates protocol compatibility between client and server; bump on
// any wire-visible change.
const Version = "superd/v1"

// DeadlineHeader carries the client's remaining per-request deadline in
// milliseconds. The server folds it into the request context, so the guard
// budgets of every unit in the batch observe the client's deadline and the
// admission queue never holds work the client has already abandoned.
const DeadlineHeader = "X-Superd-Deadline-Ms"

// Limits is the wire form of guard.Limits.
type Limits struct {
	WallMS     int64 `json:"wallMs,omitempty"`
	Tokens     int64 `json:"tokens,omitempty"`
	MacroSteps int64 `json:"macroSteps,omitempty"`
	Hoist      int64 `json:"hoist,omitempty"`
	BDDNodes   int64 `json:"bddNodes,omitempty"`
	Subparsers int64 `json:"subparsers,omitempty"`
}

// FromGuard converts resolved limits to the wire form.
func FromGuard(l guard.Limits) Limits {
	return Limits{
		WallMS:     l.Wall.Milliseconds(),
		Tokens:     l.Tokens,
		MacroSteps: l.MacroSteps,
		Hoist:      l.Hoist,
		BDDNodes:   l.BDDNodes,
		Subparsers: l.Subparsers,
	}
}

// ToGuard converts wire limits back to guard.Limits.
func (l Limits) ToGuard() guard.Limits {
	return guard.Limits{
		Wall:       time.Duration(l.WallMS) * time.Millisecond,
		Tokens:     l.Tokens,
		MacroSteps: l.MacroSteps,
		Hoist:      l.Hoist,
		BDDNodes:   l.BDDNodes,
		Subparsers: l.Subparsers,
	}
}

// clampAxis applies a server cap to one requested ceiling: an unlimited
// request (0) gets the cap, a request beyond the cap is cut to it.
func clampAxis(req, cap int64) int64 {
	if cap <= 0 {
		return req
	}
	if req <= 0 || req > cap {
		return cap
	}
	return req
}

// Clamp bounds requested limits by the server's caps, axis by axis.
func Clamp(req, caps guard.Limits) guard.Limits {
	return guard.Limits{
		Wall:       time.Duration(clampAxis(int64(req.Wall), int64(caps.Wall))),
		Tokens:     clampAxis(req.Tokens, caps.Tokens),
		MacroSteps: clampAxis(req.MacroSteps, caps.MacroSteps),
		Hoist:      clampAxis(req.Hoist, caps.Hoist),
		BDDNodes:   clampAxis(req.BDDNodes, caps.BDDNodes),
		Subparsers: clampAxis(req.Subparsers, caps.Subparsers),
	}
}

// Diag is an analysis diagnostic with its presence condition rendered to a
// string — conditions are space-tied and never cross the wire.
type Diag struct {
	Pass            string          `json:"pass"`
	File            string          `json:"file"`
	Line            int             `json:"line"`
	Col             int             `json:"col"`
	Msg             string          `json:"msg"`
	CondStr         string          `json:"cond"`
	Witness         map[string]bool `json:"witness,omitempty"`
	WitnessVerified bool            `json:"witnessVerified"`
}

// ToAnalysis rebuilds the client-side analysis.Diagnostic (Cond stays nil:
// every renderer reads CondStr).
func (d Diag) ToAnalysis() analysis.Diagnostic {
	return analysis.Diagnostic{
		Pass:            d.Pass,
		File:            d.File,
		Line:            d.Line,
		Col:             d.Col,
		Msg:             d.Msg,
		CondStr:         d.CondStr,
		Witness:         d.Witness,
		WitnessVerified: d.WitnessVerified,
	}
}

// FromAnalysis converts a server-side diagnostic to the wire form.
func FromAnalysis(d analysis.Diagnostic) Diag {
	return Diag{
		Pass:            d.Pass,
		File:            d.File,
		Line:            d.Line,
		Col:             d.Col,
		Msg:             d.Msg,
		CondStr:         d.CondStr,
		Witness:         d.Witness,
		WitnessVerified: d.WitnessVerified,
	}
}

// LintRequest is one clint batch: analyze Files (relative to the server's
// root) under the given configuration.
type LintRequest struct {
	Files        []string          `json:"files"`
	IncludePaths []string          `json:"includePaths,omitempty"`
	Defines      map[string]string `json:"defines,omitempty"`
	Mode         string            `json:"mode"` // "bdd" or "sat"
	Passes       []string          `json:"passes,omitempty"`
	Jobs         int               `json:"jobs,omitempty"`
	// ParseWorkers enables intra-unit region-parallel parsing per unit
	// (clamped by the server like Jobs; 0 = sequential).
	ParseWorkers int    `json:"parseWorkers,omitempty"`
	Limits       Limits `json:"limits,omitempty"`
}

// LintUnit is one file's lint outcome. Failed units carry the rendered
// error text in Errors and no diagnostics.
type LintUnit struct {
	File   string         `json:"file"`
	Failed bool           `json:"failed,omitempty"`
	Errors string         `json:"errors,omitempty"` // stderr text, newline-terminated lines
	Diags  []Diag         `json:"diags"`
	Stats  analysis.Stats `json:"stats"`
}

// LintResponse carries one unit per requested file, in request order.
type LintResponse struct {
	Units []LintUnit `json:"units"`
}

// LinkRequest is one whole-corpus link batch: parse every file, extract
// conditional link facts, and join them into cross-unit findings. Per-unit
// facts persist in the artifact store (namespace "link") keyed by the
// request fingerprint plus each root file's content hash, so warm batches
// skip re-parsing unchanged units.
type LinkRequest struct {
	Files        []string          `json:"files"`
	IncludePaths []string          `json:"includePaths,omitempty"`
	Defines      map[string]string `json:"defines,omitempty"`
	Mode         string            `json:"mode"` // "bdd" or "sat"
	Jobs         int               `json:"jobs,omitempty"`
	// ParseWorkers enables intra-unit region-parallel parsing per unit
	// (clamped by the server like Jobs; 0 = sequential).
	ParseWorkers int    `json:"parseWorkers,omitempty"`
	Limits       Limits `json:"limits,omitempty"`
	// NoFacts bypasses the persisted link-fact cache (for measuring cold
	// runs and for determinism tests that compare cached vs. fresh).
	NoFacts bool `json:"noFacts,omitempty"`
}

// LinkFinding is the wire form of link.Finding. The space-tied Cond never
// crosses the wire; CondStr and the witness assignment carry everything
// clients render, and ToLink rebuilds a link.Finding the client feeds
// through the same merge path as an in-process run, so daemon-served link
// output is byte-identical to local output.
type LinkFinding struct {
	Family          string          `json:"family"`
	Symbol          string          `json:"symbol"`
	Unit            string          `json:"unit"`
	File            string          `json:"file"`
	Line            int             `json:"line"`
	Col             int             `json:"col"`
	OtherUnit       string          `json:"otherUnit,omitempty"`
	OtherFile       string          `json:"otherFile,omitempty"`
	OtherLine       int             `json:"otherLine,omitempty"`
	OtherCol        int             `json:"otherCol,omitempty"`
	SigA            string          `json:"sigA,omitempty"`
	SigB            string          `json:"sigB,omitempty"`
	CondStr         string          `json:"cond"`
	Witness         map[string]bool `json:"witness,omitempty"`
	WitnessVerified bool            `json:"witnessVerified"`
}

// FromLink converts a server-side finding to the wire form.
func FromLink(f link.Finding) LinkFinding {
	return LinkFinding{
		Family:          f.Family,
		Symbol:          f.Symbol,
		Unit:            f.Unit,
		File:            f.File,
		Line:            f.Line,
		Col:             f.Col,
		OtherUnit:       f.OtherUnit,
		OtherFile:       f.OtherFile,
		OtherLine:       f.OtherLine,
		OtherCol:        f.OtherCol,
		SigA:            f.SigA,
		SigB:            f.SigB,
		CondStr:         f.CondStr,
		Witness:         f.Witness,
		WitnessVerified: f.WitnessVerified,
	}
}

// ToLink rebuilds the client-side link.Finding (Cond stays nil: renderers
// read CondStr, exactly like Diag.ToAnalysis).
func (f LinkFinding) ToLink() link.Finding {
	return link.Finding{
		Family:          f.Family,
		Symbol:          f.Symbol,
		Unit:            f.Unit,
		File:            f.File,
		Line:            f.Line,
		Col:             f.Col,
		OtherUnit:       f.OtherUnit,
		OtherFile:       f.OtherFile,
		OtherLine:       f.OtherLine,
		OtherCol:        f.OtherCol,
		SigA:            f.SigA,
		SigB:            f.SigB,
		CondStr:         f.CondStr,
		Witness:         f.Witness,
		WitnessVerified: f.WitnessVerified,
	}
}

// LinkUnit reports one file that failed to parse or extract; units that
// succeed contribute facts to the joined findings and are not listed.
type LinkUnit struct {
	File   string `json:"file"`
	Errors string `json:"errors,omitempty"` // rendered error text, newline-terminated lines
}

// LinkResponse carries the joined corpus-wide findings in the linker's
// total deterministic order, plus fact-volume stats and per-unit failures.
type LinkResponse struct {
	Units    int           `json:"units"`   // units contributing facts
	Symbols  int           `json:"symbols"` // distinct external symbols joined
	Facts    int           `json:"facts"`   // total conditional facts joined
	Findings []LinkFinding `json:"findings"`
	Failed   []LinkUnit    `json:"failed,omitempty"`
	// FactsHits counts units whose facts were served from the persisted
	// link-fact store; FactsMisses counts units extracted this request.
	FactsHits   int64 `json:"factsHits"`
	FactsMisses int64 `json:"factsMisses"`
}

// ParseRequest is one superc batch (summary mode: the daemon serves parse
// statistics and diagnostics; AST printing, projection, and refactoring
// stay in-process).
type ParseRequest struct {
	Files        []string          `json:"files"`
	IncludePaths []string          `json:"includePaths,omitempty"`
	Defines      map[string]string `json:"defines,omitempty"`
	Mode         string            `json:"mode"` // "bdd" or "sat"
	Opt          string            `json:"opt"`  // fmlr optimization level name
	Single       bool              `json:"single,omitempty"`
	Jobs         int               `json:"jobs,omitempty"`
	// ParseWorkers enables intra-unit region-parallel parsing per unit
	// (clamped by the server like Jobs; 0 = sequential).
	ParseWorkers int    `json:"parseWorkers,omitempty"`
	Limits       Limits `json:"limits,omitempty"`
}

// ParseStats is the deterministic subset of fmlr.Stats plus AST counts.
type ParseStats struct {
	Iterations    int `json:"iterations"`
	MaxSubparsers int `json:"maxSubparsers"`
	P99           int `json:"p99"`
	Forks         int `json:"forks"`
	Merges        int `json:"merges"`
	TypedefForks  int `json:"typedefForks"`
	ASTNodes      int `json:"astNodes"`
	ChoiceNodes   int `json:"choiceNodes"`
}

// ParseUnit is one file's parse outcome. Space-tied diagnostics arrive
// pre-rendered; everything else is structured so the client renders with
// its own code.
type ParseUnit struct {
	File      string                    `json:"file"`
	Err       string                    `json:"err,omitempty"` // unit could not be processed at all
	Pre       preprocessor.UnitStats    `json:"pre"`           // timings zeroed: unstable across runs
	PreDiags  []preprocessor.Diagnostic `json:"preDiags,omitempty"`
	ParseErrs []string                  `json:"parseErrs,omitempty"` // rendered "pos: parse error under C: msg"
	Parse     ParseStats                `json:"parse"`
	HasAST    bool                      `json:"hasAST"`
	Killed    bool                      `json:"killed,omitempty"`
	BudgetErr string                    `json:"budgetErr,omitempty"` // rendered guard.Diagnostic, "" if none
}

// ParseResponse carries one unit per requested file, in request order.
// TableCache is the daemon's parse-table cache state (the client has no
// tables loaded of its own in daemon mode).
type ParseResponse struct {
	Units      []ParseUnit `json:"units"`
	TableCache string      `json:"tableCache"`
}

// CorpusRequest runs the evaluation harness over the deterministic
// synthetic corpus (corpus.Generate is a pure function of the params, so
// results are cacheable across daemon restarts as facts).
type CorpusRequest struct {
	Seed    int64    `json:"seed"`
	CFiles  int      `json:"cfiles"`
	Headers int      `json:"headers"`
	Mode    string   `json:"mode"` // "bdd" or "sat"
	Opt     string   `json:"opt"`  // fmlr optimization level name
	Single  bool     `json:"single,omitempty"`
	Passes  []string `json:"passes,omitempty"` // analysis passes; empty = none
	Jobs    int      `json:"jobs,omitempty"`
	// ParseWorkers enables intra-unit region-parallel parsing per unit
	// (clamped by the server like Jobs; 0 = sequential).
	ParseWorkers int    `json:"parseWorkers,omitempty"`
	Limits       Limits `json:"limits,omitempty"`
	// NoFacts bypasses the per-unit facts cache (for measuring cold runs).
	NoFacts bool `json:"noFacts,omitempty"`
}

// CorpusUnit is the deterministic subset of harness.UnitResult: everything
// the table renderers and differential tests read, none of the timings or
// pool/cache counters that vary run to run.
type CorpusUnit struct {
	File        string                 `json:"file"`
	Bytes       int                    `json:"bytes"`
	Tokens      int                    `json:"tokens"`
	Pre         preprocessor.UnitStats `json:"pre"` // LexTime zeroed
	Parse       ParseStats             `json:"parse"`
	Killed      bool                   `json:"killed,omitempty"`
	ParseFail   bool                   `json:"parseFail,omitempty"`
	Err         string                 `json:"err,omitempty"`
	Diags       []Diag                 `json:"diags,omitempty"`
	Stats       analysis.Stats         `json:"stats"`
	HasAnalysis bool                   `json:"hasAnalysis,omitempty"`
}

// CorpusResponse carries one unit per corpus file, in corpus order.
type CorpusResponse struct {
	Units []CorpusUnit `json:"units"`
	// FactsHits counts units served from the persisted facts cache without
	// recomputation; FactsMisses counts units computed this request.
	FactsHits   int64 `json:"factsHits"`
	FactsMisses int64 `json:"factsMisses"`
}

// StatsResponse is the /v1/stats snapshot.
type StatsResponse struct {
	Version  string           `json:"version"`
	Uptime   string           `json:"uptime"`
	Counters map[string]int64 `json:"counters"`
}

// HealthResponse is the /healthz body. OK is liveness (the process serves
// HTTP); Ready is readiness (new work would be admitted rather than shed) —
// it flips false during drain and overload. GET /healthz?probe=readiness
// additionally reports not-ready as 503, for load balancers that read only
// the status code.
type HealthResponse struct {
	OK      bool   `json:"ok"`
	Ready   bool   `json:"ready"`
	Version string `json:"version"`
}
