package daemon

import (
	"context"
	"sync/atomic"
	"time"

	"repro/internal/stats"
)

// admission is the server's overload valve: a semaphore bounds how many
// batch requests execute concurrently, and a short deadline-aware queue
// absorbs bursts. Anything beyond slots+queue — or anything that would wait
// past its own deadline — is shed immediately with 429 + Retry-After, so
// under overload the daemon degrades to fast, honest rejections instead of
// stacking goroutines until everything times out. Draining flips the same
// valve shut: readiness goes false and new work is shed while in-flight
// batches finish.
type admission struct {
	slots chan struct{} // in-flight execution permits
	queue chan struct{} // waiting-room positions
	wait  time.Duration // longest a request may wait for a permit

	draining atomic.Bool
	inFlight atomic.Int64
	queued   atomic.Int64

	admitted, queuedTotal, shed stats.Counter
}

// newAdmission sizes the valve: maxInFlight concurrent batches, queueDepth
// waiting positions, wait as the queue's patience.
func newAdmission(maxInFlight, queueDepth int, wait time.Duration) *admission {
	if maxInFlight < 1 {
		maxInFlight = 1
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	if wait <= 0 {
		wait = time.Second
	}
	return &admission{
		slots: make(chan struct{}, maxInFlight),
		queue: make(chan struct{}, queueDepth),
		wait:  wait,
	}
}

// acquire tries to admit one request. It returns a release closure and true
// on admission; nil and false when the request was shed (draining, queue
// full, queue wait exhausted, or the request's own deadline closer than any
// useful wait).
func (a *admission) acquire(ctx context.Context) (func(), bool) {
	if a.draining.Load() {
		a.shed.Inc()
		return nil, false
	}
	release := func() {
		<-a.slots
		a.inFlight.Add(-1)
	}
	// Fast path: a free execution slot, no queueing.
	select {
	case a.slots <- struct{}{}:
		a.inFlight.Add(1)
		a.admitted.Inc()
		return release, true
	default:
	}
	// Saturated: take a waiting-room position or shed.
	select {
	case a.queue <- struct{}{}:
	default:
		a.shed.Inc()
		return nil, false
	}
	a.queuedTotal.Inc()
	a.queued.Add(1)
	defer func() {
		<-a.queue
		a.queued.Add(-1)
	}()
	// Wait for a slot, but never longer than the queue's patience or the
	// caller's own deadline — serving a request its client already gave up
	// on is the slowest possible way to shed it.
	timer := time.NewTimer(a.wait)
	defer timer.Stop()
	select {
	case a.slots <- struct{}{}:
		if a.draining.Load() {
			// Drain began while we queued: hand the slot back and shed.
			<-a.slots
			a.shed.Inc()
			return nil, false
		}
		a.inFlight.Add(1)
		a.admitted.Inc()
		return release, true
	case <-timer.C:
		a.shed.Inc()
		return nil, false
	case <-ctx.Done():
		a.shed.Inc()
		return nil, false
	}
}

// ready reports whether the valve would admit new work without shedding:
// not draining, and slots or queue positions are open. Load balancers read
// this through the /healthz readiness probe.
func (a *admission) ready() bool {
	if a.draining.Load() {
		return false
	}
	return len(a.slots) < cap(a.slots) || len(a.queue) < cap(a.queue)
}

// drain flips the valve shut for new work; in-flight requests finish.
func (a *admission) drain() { a.draining.Store(true) }
