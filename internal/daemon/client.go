package daemon

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"time"
)

// Client is a thin superd client. The zero value is not usable; Dial
// constructs one bound to a -daemon style address.
type Client struct {
	base string // always http://superd for unix sockets, http://host:port for TCP
	hc   *http.Client
}

// Dial builds a client for addr ("unix:PATH", a socket path containing a
// slash, "tcp:HOST:PORT", or a plain host:port) and verifies the daemon is
// alive and speaks this protocol version. It does not keep a connection
// open; each request dials through the shared transport.
func Dial(addr string) (*Client, error) {
	c := newClient(addr)
	h, err := c.Health()
	if err != nil {
		return nil, fmt.Errorf("daemon at %s unreachable: %w", addr, err)
	}
	if h.Version != Version {
		return nil, fmt.Errorf("daemon at %s speaks %s, this client needs %s", addr, h.Version, Version)
	}
	return c, nil
}

func newClient(addr string) *Client {
	network, dialAddr := "tcp", addr
	base := "http://" + addr
	if path, ok := strings.CutPrefix(addr, "unix:"); ok {
		network, dialAddr, base = "unix", path, "http://superd"
	} else if strings.Contains(addr, "/") {
		network, dialAddr, base = "unix", addr, "http://superd"
	} else if hostport, ok := strings.CutPrefix(addr, "tcp:"); ok {
		dialAddr, base = hostport, "http://"+hostport
	}
	transport := &http.Transport{
		DialContext: func(ctx context.Context, _, _ string) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, network, dialAddr)
		},
	}
	return &Client{base: base, hc: &http.Client{Transport: transport}}
}

// post sends a JSON request body and decodes the JSON response into out.
func (c *Client) post(path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	resp, err := c.hc.Post(c.base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return decode(resp, out)
}

func (c *Client) get(path string, out any) error {
	resp, err := c.hc.Get(c.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return decode(resp, out)
}

func decode(resp *http.Response, out any) error {
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return fmt.Errorf("daemon: %s", e.Error)
		}
		return fmt.Errorf("daemon: HTTP %d", resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Health checks liveness without the version gate (Dial applies it).
func (c *Client) Health() (*HealthResponse, error) {
	// A liveness probe should fail fast when nothing is listening.
	prev := c.hc.Timeout
	c.hc.Timeout = 5 * time.Second
	defer func() { c.hc.Timeout = prev }()
	var h HealthResponse
	if err := c.get("/healthz", &h); err != nil {
		return nil, err
	}
	return &h, nil
}

// Lint runs a clint batch on the daemon.
func (c *Client) Lint(req *LintRequest) (*LintResponse, error) {
	var resp LintResponse
	if err := c.post("/v1/lint", req, &resp); err != nil {
		return nil, err
	}
	if len(resp.Units) != len(req.Files) {
		return nil, fmt.Errorf("daemon: %d units for %d files", len(resp.Units), len(req.Files))
	}
	return &resp, nil
}

// Parse runs a superc batch on the daemon.
func (c *Client) Parse(req *ParseRequest) (*ParseResponse, error) {
	var resp ParseResponse
	if err := c.post("/v1/parse", req, &resp); err != nil {
		return nil, err
	}
	if len(resp.Units) != len(req.Files) {
		return nil, fmt.Errorf("daemon: %d units for %d files", len(resp.Units), len(req.Files))
	}
	return &resp, nil
}

// Corpus runs a harness sweep on the daemon.
func (c *Client) Corpus(req *CorpusRequest) (*CorpusResponse, error) {
	var resp CorpusResponse
	if err := c.post("/v1/corpus", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Stats fetches the daemon's counter snapshot.
func (c *Client) Stats() (*StatsResponse, error) {
	var resp StatsResponse
	if err := c.get("/v1/stats", &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}
