package daemon

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/stats"
)

// ClientOptions tunes the thin client's survivability layer. The zero value
// gets production defaults; explicit negatives disable a knob.
type ClientOptions struct {
	// RequestTimeout bounds one batch operation end to end, retries
	// included; the remaining budget is forwarded to the server per attempt
	// via DeadlineHeader. 0 means 2m; negative means no deadline.
	RequestTimeout time.Duration
	// HealthTimeout bounds one /healthz probe (0: 5s). Probes never retry —
	// Dial's caller decides what an unreachable daemon means.
	HealthTimeout time.Duration
	// Retries is how many times a failed attempt is retried (0: 3 retries;
	// negative: none). Retrying is always safe: requests are pure.
	Retries int
	// BackoffBase/BackoffMax shape the exponential retry delay
	// (0: 100ms base, 5s cap). A server Retry-After raises the delay floor.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// BreakerThreshold opens the circuit breaker after that many consecutive
	// failed operations (0: 5; negative: breaker disabled). While open,
	// operations fail instantly with ErrBreakerOpen until a cooldown probe
	// succeeds, so callers fall back to in-process work without waiting out
	// timeouts against a dead daemon.
	BreakerThreshold int
	// BreakerCooldown is how long the breaker stays open before admitting a
	// half-open probe (0: 10s).
	BreakerCooldown time.Duration
	// JitterSeed makes retry jitter deterministic for a given seed; 0 is a
	// fixed default seed (jitter is still well-spread across attempts).
	JitterSeed int64
	// WrapTransport, when set, wraps the client's dialing transport — the
	// chaos suite injects its fault transport here.
	WrapTransport func(http.RoundTripper) http.RoundTripper
	// Warn receives deduplicated one-line warnings (retry storms, breaker
	// opening). nil means os.Stderr; io.Discard silences them.
	Warn io.Writer
}

func (o ClientOptions) withDefaults() ClientOptions {
	if o.RequestTimeout == 0 {
		o.RequestTimeout = 2 * time.Minute
	}
	if o.HealthTimeout <= 0 {
		o.HealthTimeout = 5 * time.Second
	}
	if o.Retries == 0 {
		o.Retries = 3
	}
	if o.Retries < 0 {
		o.Retries = 0
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 100 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 5 * time.Second
	}
	if o.BreakerThreshold == 0 {
		o.BreakerThreshold = 5
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 10 * time.Second
	}
	if o.Warn == nil {
		o.Warn = os.Stderr
	}
	return o
}

// ClientMetrics is a snapshot of the client's resilience counters, surfaced
// through harness.Metrics and cstats -metrics.
type ClientMetrics struct {
	Attempts     int64  // HTTP attempts issued (first tries + retries)
	Retries      int64  // attempts that were retries
	Sheds        int64  // 429/503 overload responses observed
	BreakerOpens int64  // closed/half-open → open transitions
	FastFails    int64  // operations rejected locally by the open breaker
	BreakerState string // "closed", "open", "half-open", or "disabled"
}

// Client is a thin superd client. The zero value is not usable; Dial or
// DialOptions constructs one bound to a -daemon style address.
type Client struct {
	base string // always http://superd for unix sockets, http://host:port for TCP
	hc   *http.Client
	opts ClientOptions
	brk  *breaker

	// sleep is the retry delay, injectable so chaos tests run at full speed.
	sleep func(ctx context.Context, d time.Duration) error

	attempts, retries stats.Counter
	sheds, fastFails  stats.Counter

	warnMu sync.Mutex
	warned map[string]bool
}

// Dial builds a client with default options and verifies the daemon is alive
// and speaks this protocol version.
func Dial(addr string) (*Client, error) { return DialOptions(addr, ClientOptions{}) }

// DialOptions is Dial with explicit resilience options.
func DialOptions(addr string, opts ClientOptions) (*Client, error) {
	c := newClient(addr, opts)
	h, err := c.Health()
	if err != nil {
		return nil, fmt.Errorf("daemon at %s unreachable: %w", addr, err)
	}
	if h.Version != Version {
		return nil, fmt.Errorf("daemon at %s speaks %s, this client needs %s", addr, h.Version, Version)
	}
	return c, nil
}

func newClient(addr string, opts ClientOptions) *Client {
	opts = opts.withDefaults()
	network, dialAddr := "tcp", addr
	base := "http://" + addr
	if path, ok := strings.CutPrefix(addr, "unix:"); ok {
		network, dialAddr, base = "unix", path, "http://superd"
	} else if strings.Contains(addr, "/") {
		network, dialAddr, base = "unix", addr, "http://superd"
	} else if hostport, ok := strings.CutPrefix(addr, "tcp:"); ok {
		dialAddr, base = hostport, "http://"+hostport
	}
	var rt http.RoundTripper = &http.Transport{
		DialContext: func(ctx context.Context, _, _ string) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, network, dialAddr)
		},
	}
	if opts.WrapTransport != nil {
		rt = opts.WrapTransport(rt)
	}
	return &Client{
		base: base,
		hc:   &http.Client{Transport: rt},
		opts: opts,
		brk:  newBreaker(opts.BreakerThreshold, opts.BreakerCooldown),
		sleep: func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-t.C:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		},
		warned: make(map[string]bool),
	}
}

// Metrics snapshots the resilience counters.
func (c *Client) Metrics() ClientMetrics {
	state, opens := c.brk.snapshot()
	return ClientMetrics{
		Attempts:     c.attempts.Load(),
		Retries:      c.retries.Load(),
		Sheds:        c.sheds.Load(),
		BreakerOpens: opens,
		FastFails:    c.fastFails.Load(),
		BreakerState: state,
	}
}

// warnf writes one line to opts.Warn, once per distinct key.
func (c *Client) warnf(key, format string, args ...any) {
	c.warnMu.Lock()
	seen := c.warned[key]
	c.warned[key] = true
	c.warnMu.Unlock()
	if !seen {
		fmt.Fprintf(c.opts.Warn, format+"\n", args...)
	}
}

// do runs one operation through the full resilience stack: overall deadline,
// circuit breaker, retry loop with exponential backoff honoring Retry-After.
// Every request is pure, so every failure mode is safe to retry.
func (c *Client) do(path string, body []byte, out any) error {
	ctx := context.Background()
	if c.opts.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.opts.RequestTimeout)
		defer cancel()
	}
	for attempt := 0; ; attempt++ {
		if !c.brk.allow() {
			c.fastFails.Inc()
			return fmt.Errorf("%w (%s)", ErrBreakerOpen, path)
		}
		c.attempts.Inc()
		err := c.once(ctx, path, body, out)
		if err == nil {
			c.brk.success()
			return nil
		}
		c.brk.failure()
		if shedStatus(err) {
			c.sheds.Inc()
		}
		if state, _ := c.brk.snapshot(); state == "open" {
			c.warnf("breaker", "superd client: circuit breaker opened after repeated failures (%v); falling back until the daemon recovers", err)
		}
		if !retryable(err) || attempt >= c.opts.Retries || ctx.Err() != nil {
			return err
		}
		delay := backoff(c.opts.BackoffBase, c.opts.BackoffMax, c.opts.JitterSeed, path, attempt)
		var se *httpStatusError
		if errors.As(err, &se) && se.retryAfter > delay {
			delay = se.retryAfter
		}
		c.warnf("retry:"+path, "superd client: %s failed (%v); retrying with backoff", path, err)
		if c.sleep(ctx, delay) != nil {
			return err // deadline spent mid-backoff: surface the real failure
		}
		c.retries.Inc()
	}
}

// once issues a single HTTP attempt. The server learns the remaining client
// deadline through DeadlineHeader so it never queues work past it.
func (c *Client) once(ctx context.Context, path string, body []byte, out any) error {
	method, url := http.MethodGet, c.base+path
	var rd io.Reader
	if body != nil {
		method, rd = http.MethodPost, bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if dl, ok := ctx.Deadline(); ok {
		if ms := time.Until(dl).Milliseconds(); ms > 0 {
			req.Header.Set(DeadlineHeader, fmt.Sprintf("%d", ms))
		}
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return decode(resp, out)
}

// post sends a JSON request body through the retry stack and decodes the
// JSON response into out.
func (c *Client) post(path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	return c.do(path, body, out)
}

func (c *Client) get(path string, out any) error {
	return c.do(path, nil, out)
}

func decode(resp *http.Response, out any) error {
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		se := &httpStatusError{
			status:     resp.StatusCode,
			retryAfter: parseRetryAfter(resp.Header),
		}
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			se.msg = e.Error
		}
		return se
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Health checks liveness without the version gate (Dial applies it). It is a
// single bounded attempt — a probe should fail fast when nothing listens,
// never spend a retry budget (fixing the old implementation's racy swap of
// the shared http.Client timeout).
func (c *Client) Health() (*HealthResponse, error) {
	ctx, cancel := context.WithTimeout(context.Background(), c.opts.HealthTimeout)
	defer cancel()
	var h HealthResponse
	if err := c.once(ctx, "/healthz", nil, &h); err != nil {
		return nil, err
	}
	return &h, nil
}

// Lint runs a clint batch on the daemon.
func (c *Client) Lint(req *LintRequest) (*LintResponse, error) {
	var resp LintResponse
	if err := c.post("/v1/lint", req, &resp); err != nil {
		return nil, err
	}
	if len(resp.Units) != len(req.Files) {
		return nil, fmt.Errorf("daemon: %d units for %d files", len(resp.Units), len(req.Files))
	}
	return &resp, nil
}

// Parse runs a superc batch on the daemon.
func (c *Client) Parse(req *ParseRequest) (*ParseResponse, error) {
	var resp ParseResponse
	if err := c.post("/v1/parse", req, &resp); err != nil {
		return nil, err
	}
	if len(resp.Units) != len(req.Files) {
		return nil, fmt.Errorf("daemon: %d units for %d files", len(resp.Units), len(req.Files))
	}
	return &resp, nil
}

// Link runs a whole-corpus link batch on the daemon.
func (c *Client) Link(req *LinkRequest) (*LinkResponse, error) {
	var resp LinkResponse
	if err := c.post("/v1/link", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Corpus runs a harness sweep on the daemon.
func (c *Client) Corpus(req *CorpusRequest) (*CorpusResponse, error) {
	var resp CorpusResponse
	if err := c.post("/v1/corpus", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Stats fetches the daemon's counter snapshot.
func (c *Client) Stats() (*StatsResponse, error) {
	var resp StatsResponse
	if err := c.get("/v1/stats", &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}
