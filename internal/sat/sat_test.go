package sat

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestExprConstructors(t *testing.T) {
	a, b := Var("A"), Var("B")
	cases := []struct {
		name string
		e    *Expr
		want string
	}{
		{"var", a, "A"},
		{"not", Not(a), "!A"},
		{"double not", Not(Not(a)), "A"},
		{"and", And(a, b), "A && B"},
		{"or", Or(a, b), "A || B"},
		{"and true", And(a, TrueExpr), "A"},
		{"and false", And(a, FalseExpr), "0"},
		{"or true", Or(a, TrueExpr), "1"},
		{"or false", Or(a, FalseExpr), "A"},
		{"implies", Implies(a, b), "!A || B"},
		{"nested paren", And(Or(a, b), Not(And(a, b))), "(A || B) && !(A && B)"},
		{"flatten and", And(And(a, b), a), "A && B && A"},
		{"empty and", And(), "1"},
		{"empty or", Or(), "0"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("%s: got %q, want %q", c.name, got, c.want)
		}
	}
}

func TestExprEval(t *testing.T) {
	a, b := Var("A"), Var("B")
	e := Or(And(a, Not(b)), And(Not(a), b)) // xor
	cases := []struct {
		m    map[string]bool
		want bool
	}{
		{map[string]bool{"A": true}, true},
		{map[string]bool{"B": true}, true},
		{map[string]bool{"A": true, "B": true}, false},
		{map[string]bool{}, false},
	}
	for _, c := range cases {
		if got := e.Eval(c.m); got != c.want {
			t.Errorf("Eval(%v) = %v, want %v", c.m, got, c.want)
		}
	}
}

func TestExprVarsAndSize(t *testing.T) {
	e := And(Var("A"), Or(Var("B"), Not(Var("A"))))
	vars := e.Vars()
	if len(vars) != 2 || !vars["A"] || !vars["B"] {
		t.Errorf("Vars = %v", vars)
	}
	if e.Size() != 6 {
		t.Errorf("Size = %d, want 6", e.Size())
	}
}

func TestNNF(t *testing.T) {
	a, b := Var("A"), Var("B")
	e := Not(And(a, Not(Or(b, a))))
	nnf := toNNF(e, false)
	// Check no Not above non-variables.
	var checkNNF func(e *Expr) bool
	checkNNF = func(e *Expr) bool {
		if e.Op == OpNot && e.Args[0].Op != OpVar {
			return false
		}
		for _, x := range e.Args {
			if !checkNNF(x) {
				return false
			}
		}
		return true
	}
	if !checkNNF(nnf) {
		t.Errorf("not in NNF: %s", nnf)
	}
	// Semantic equivalence on all assignments.
	for bits := 0; bits < 4; bits++ {
		m := map[string]bool{"A": bits&1 != 0, "B": bits&2 != 0}
		if e.Eval(m) != nnf.Eval(m) {
			t.Errorf("NNF changed semantics at %v", m)
		}
	}
}

func TestNaiveCNFSimple(t *testing.T) {
	a, b := Var("A"), Var("B")
	cnf, stats, ok := NaiveCNF(And(a, Or(b, Not(a))), 0)
	if !ok {
		t.Fatal("conversion failed without a limit")
	}
	if stats.Clauses != 2 {
		t.Errorf("clauses = %d, want 2", stats.Clauses)
	}
	var s Solver
	model, sat := s.Solve(cnf)
	if !sat {
		t.Fatal("A && (B || !A) should be satisfiable")
	}
	// Check the model satisfies the original.
	m := map[string]bool{}
	for v := 1; v <= cnf.NumVars; v++ {
		if name := cnf.VarName(v); name != "" {
			m[name] = model[v] > 0
		}
	}
	if !And(a, Or(b, Not(a))).Eval(m) {
		t.Errorf("model %v does not satisfy the source expression", m)
	}
}

func TestNaiveCNFLimit(t *testing.T) {
	// OR of many ANDs distributes into an exponential number of clauses.
	var ors []*Expr
	for i := 0; i < 12; i++ {
		ors = append(ors, And(Var(vn(2*i)), Var(vn(2*i+1))))
	}
	e := Or(ors...)
	if _, _, ok := NaiveCNF(e, 100); ok {
		t.Error("expected the clause limit to trip")
	}
	if _, _, ok := NaiveCNF(e, 0); !ok {
		t.Error("unlimited conversion should succeed")
	}
}

func TestTseitinEquisatisfiable(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		e := randomSatExpr(r, 4, 4)
		naive, _, ok := NaiveCNF(e, 0)
		if !ok {
			t.Fatal("unlimited naive conversion failed")
		}
		tseitin, _ := TseitinCNF(e)
		var s1, s2 Solver
		if s1.Satisfiable(naive) != s2.Satisfiable(tseitin) {
			t.Fatalf("trial %d: naive and Tseitin disagree on %s", trial, e)
		}
	}
}

func TestUnsatisfiable(t *testing.T) {
	a := Var("A")
	cases := []*Expr{
		And(a, Not(a)),
		And(Or(a, Var("B")), Not(a), Not(Var("B"))),
		FalseExpr,
	}
	for _, e := range cases {
		if sat, _, _ := ExprSatisfiable(e, 0); sat {
			t.Errorf("%s should be unsatisfiable", e)
		}
	}
}

func TestExprEquivalent(t *testing.T) {
	a, b := Var("A"), Var("B")
	if !ExprEquivalent(Not(And(a, b)), Or(Not(a), Not(b)), 0) {
		t.Error("De Morgan equivalence not detected")
	}
	if ExprEquivalent(a, b, 0) {
		t.Error("distinct variables reported equivalent")
	}
	if !ExprEquivalent(And(a, Not(a)), FalseExpr, 0) {
		t.Error("contradiction should equal false")
	}
}

func TestPureLiteralAndUnits(t *testing.T) {
	// (A) && (A || B) — unit A then B pure.
	cnf := NewCNF()
	va := Lit(cnf.VarIndex("A"))
	vb := Lit(cnf.VarIndex("B"))
	cnf.AddClause(va)
	cnf.AddClause(va, vb)
	var s Solver
	if !s.Satisfiable(cnf) {
		t.Fatal("should be satisfiable")
	}
	if s.Decisions != 0 {
		t.Errorf("expected no branching, got %d decisions", s.Decisions)
	}
}

func randomSatExpr(r *rand.Rand, nvars, depth int) *Expr {
	if depth == 0 || r.Intn(4) == 0 {
		switch r.Intn(8) {
		case 0:
			return TrueExpr
		case 1:
			return FalseExpr
		default:
			return Var(vn(r.Intn(nvars)))
		}
	}
	switch r.Intn(4) {
	case 0:
		return And(randomSatExpr(r, nvars, depth-1), randomSatExpr(r, nvars, depth-1))
	case 1:
		return Or(randomSatExpr(r, nvars, depth-1), randomSatExpr(r, nvars, depth-1))
	default:
		return Not(randomSatExpr(r, nvars, depth-1))
	}
}

func vn(i int) string { return "V" + string(rune('A'+i%26)) }

// TestQuickDPLLAgainstTruthTable: DPLL's verdict must match brute-force
// enumeration for random small formulas.
func TestQuickDPLLAgainstTruthTable(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	check := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		e := randomSatExpr(rr, 4, 4)
		vars := []string{vn(0), vn(1), vn(2), vn(3)}
		bruteSat := false
		for bits := 0; bits < 16; bits++ {
			m := map[string]bool{}
			for i, v := range vars {
				m[v] = bits&(1<<i) != 0
			}
			if e.Eval(m) {
				bruteSat = true
				break
			}
		}
		got, _, _ := ExprSatisfiable(e, 0)
		return got == bruteSat
	}
	cfg := &quick.Config{
		MaxCount: 300,
		Values: func(vals []reflect.Value, _ *rand.Rand) {
			vals[0] = reflect.ValueOf(r.Int63())
		},
	}
	if err := quick.Check(check, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickNNFPreservesSemantics: the NNF transform must preserve evaluation.
func TestQuickNNFPreservesSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	check := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		e := randomSatExpr(rr, 3, 5)
		nnf := toNNF(e, false)
		for bits := 0; bits < 8; bits++ {
			m := map[string]bool{vn(0): bits&1 != 0, vn(1): bits&2 != 0, vn(2): bits&4 != 0}
			if e.Eval(m) != nnf.Eval(m) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 300,
		Values: func(vals []reflect.Value, _ *rand.Rand) {
			vals[0] = reflect.ValueOf(r.Int63())
		},
	}
	if err := quick.Check(check, cfg); err != nil {
		t.Error(err)
	}
}

func BenchmarkNaiveCNFWide(b *testing.B) {
	var ors []*Expr
	for i := 0; i < 10; i++ {
		ors = append(ors, And(Var(vn(2*i%26)), Not(Var(vn((2*i+1)%26)))))
	}
	e := Or(ors...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NaiveCNF(e, 0)
	}
}

func BenchmarkTseitinWide(b *testing.B) {
	var ors []*Expr
	for i := 0; i < 10; i++ {
		ors = append(ors, And(Var(vn(2*i%26)), Not(Var(vn((2*i+1)%26)))))
	}
	e := Or(ors...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TseitinCNF(e)
	}
}

func BenchmarkDPLLChain(b *testing.B) {
	// Conjunction of negated distinct variables, the common presence-
	// condition shape from conditional sequences.
	var conj []*Expr
	for i := 0; i < 26; i++ {
		conj = append(conj, Not(Var(vn(i))))
	}
	e := And(conj...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ExprSatisfiable(e, 0)
	}
}
